// Package units parses and formats byte sizes for the CLIs and
// examples (binary units: KiB/MiB/GiB, plus bare K/M/G shorthand).
package units

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// ErrBadSize reports an unparseable size string.
var ErrBadSize = errors.New("units: bad size")

// ParseSize converts strings like "64KiB", "8M", "1GiB", or "4096" to
// bytes.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(s)
	if t == "" {
		return 0, fmt.Errorf("%w: %q", ErrBadSize, s)
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "GiB"):
		mult, t = 1<<30, strings.TrimSuffix(t, "GiB")
	case strings.HasSuffix(t, "MiB"):
		mult, t = 1<<20, strings.TrimSuffix(t, "MiB")
	case strings.HasSuffix(t, "KiB"):
		mult, t = 1<<10, strings.TrimSuffix(t, "KiB")
	case strings.HasSuffix(t, "G"):
		mult, t = 1<<30, strings.TrimSuffix(t, "G")
	case strings.HasSuffix(t, "M"):
		mult, t = 1<<20, strings.TrimSuffix(t, "M")
	case strings.HasSuffix(t, "K"):
		mult, t = 1<<10, strings.TrimSuffix(t, "K")
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("%w: %q", ErrBadSize, s)
	}
	if n > math.MaxInt64/mult {
		return 0, fmt.Errorf("%w: %q overflows int64", ErrBadSize, s)
	}
	return n * mult, nil
}

// FormatSize renders bytes with the largest exact binary unit
// (1536 -> "1536", 2048 -> "2KiB", 3<<20 -> "3MiB").
func FormatSize(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return strconv.FormatInt(n>>30, 10) + "GiB"
	case n >= 1<<20 && n%(1<<20) == 0:
		return strconv.FormatInt(n>>20, 10) + "MiB"
	case n >= 1<<10 && n%(1<<10) == 0:
		return strconv.FormatInt(n>>10, 10) + "KiB"
	default:
		return strconv.FormatInt(n, 10)
	}
}
