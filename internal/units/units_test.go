package units

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestParseSize(t *testing.T) {
	tests := []struct {
		in   string
		want int64
		ok   bool
	}{
		{"4096", 4096, true},
		{"0", 0, true},
		{"64KiB", 64 << 10, true},
		{"8MiB", 8 << 20, true},
		{"1GiB", 1 << 30, true},
		{"8M", 8 << 20, true},
		{"2G", 2 << 30, true},
		{"16K", 16 << 10, true},
		{" 64KiB ", 64 << 10, true},
		{"", 0, false},
		{"abc", 0, false},
		{"-5", 0, false},
		{"12XiB", 0, false},
		{"KiB", 0, false},
		{"G", 0, false},
		{"  ", 0, false},
		{"8 MiB", 8 << 20, true},
		{"\t1GiB\n", 1 << 30, true},
		// Overflow: 2^63-1 bytes is the ceiling; anything scaling past
		// it must error instead of wrapping negative.
		{"9223372036854775807", 1<<63 - 1, true},
		{"9223372036854775808", 0, false},
		{"9999999999G", 0, false},
		{"8796093022208G", 0, false}, // 2^43 * 2^30 == 2^73
		{"8589934592GiB", 0, false},
		{"9007199254740992M", 0, false},
		{"8388607G", (1<<23 - 1) << 30, true}, // largest whole-G value
	}
	for _, tt := range tests {
		got, err := ParseSize(tt.in)
		if (err == nil) != tt.ok {
			t.Errorf("ParseSize(%q) err = %v, want ok=%v", tt.in, err, tt.ok)
			continue
		}
		if err != nil {
			if !errors.Is(err, ErrBadSize) {
				t.Errorf("ParseSize(%q) err = %v, want ErrBadSize", tt.in, err)
			}
			continue
		}
		if got != tt.want {
			t.Errorf("ParseSize(%q) = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFormatSize(t *testing.T) {
	tests := []struct {
		in   int64
		want string
	}{
		{0, "0"},
		{1536, "1536"},
		{2048, "2KiB"},
		{3 << 20, "3MiB"},
		{5 << 30, "5GiB"},
		{(1 << 20) + 1, "1048577"},
	}
	for _, tt := range tests {
		if got := FormatSize(tt.in); got != tt.want {
			t.Errorf("FormatSize(%d) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	f := func(raw int64) bool {
		n := raw
		if n < 0 {
			n = -n
		}
		n %= 1 << 40
		got, err := ParseSize(FormatSize(n))
		return err == nil && got == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
