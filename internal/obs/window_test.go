package obs

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// windowClock is a settable monotonic clock for window tests.
type windowClock struct {
	ns atomic.Int64
}

func (c *windowClock) now() time.Duration      { return time.Duration(c.ns.Load()) }
func (c *windowClock) advance(d time.Duration) { c.ns.Add(int64(d)) }
func (c *windowClock) set(d time.Duration)     { c.ns.Store(int64(d)) }

func newTestWindow(t *testing.T, clk *windowClock, span time.Duration, slots int) *WindowedHistogram {
	t.Helper()
	w, err := NewWindowedHistogram(clk.now, span, slots)
	if err != nil {
		t.Fatalf("NewWindowedHistogram: %v", err)
	}
	return w
}

func TestWindowedHistogramValidation(t *testing.T) {
	clk := &windowClock{}
	if _, err := NewWindowedHistogram(nil, time.Minute, 12); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewWindowedHistogram(clk.now, time.Minute, 1); err == nil {
		t.Fatal("single slot accepted")
	}
	if _, err := NewWindowedHistogram(clk.now, 5*time.Nanosecond, 12); err == nil {
		t.Fatal("sub-nanosecond slot width accepted")
	}
	w, err := NewWindowedHistogram(clk.now, time.Minute, 0)
	if err != nil {
		t.Fatalf("default slots: %v", err)
	}
	if got := len(w.slots); got != DefaultWindowBuckets {
		t.Fatalf("default slots = %d, want %d", got, DefaultWindowBuckets)
	}
	if w.Span() != time.Minute {
		t.Fatalf("Span = %v, want 1m", w.Span())
	}
}

// TestWindowedHistogramAgeOut proves old buckets leave the window as
// the injected clock advances (satellite: clock-injected age-out).
func TestWindowedHistogramAgeOut(t *testing.T) {
	clk := &windowClock{}
	w := newTestWindow(t, clk, time.Minute, 12) // 5s slots

	w.Observe(2 * time.Millisecond)
	w.Observe(3 * time.Millisecond)
	if s := w.Snapshot(); s.Count != 2 {
		t.Fatalf("fresh snapshot count = %d, want 2", s.Count)
	}

	// Still inside the window: half the span later the samples remain.
	clk.advance(30 * time.Second)
	w.Observe(4 * time.Millisecond)
	if s := w.Snapshot(); s.Count != 3 {
		t.Fatalf("mid-window snapshot count = %d, want 3", s.Count)
	}

	// Another 35s: the first two samples' slot (epoch 0) is now older
	// than the 60s window, only the 30s sample remains.
	clk.advance(35 * time.Second)
	s := w.Snapshot()
	if s.Count != 1 {
		t.Fatalf("aged snapshot count = %d, want 1", s.Count)
	}
	// 4ms lands in bucket [2^21, 2^22) ns: upper edge 2^22 ns ≈ 4.19ms.
	if q := s.Quantile(0.5); q != time.Duration(uint64(1)<<22) {
		t.Fatalf("aged p50 = %v, want %v", q, time.Duration(uint64(1)<<22))
	}

	// Far past the window: everything ages out.
	clk.advance(2 * time.Minute)
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("stale snapshot count = %d, want 0", s.Count)
	}

	// The ring is still usable after wrapping many epochs.
	w.Observe(time.Millisecond)
	if s := w.Snapshot(); s.Count != 1 {
		t.Fatalf("post-wrap snapshot count = %d, want 1", s.Count)
	}
}

// TestWindowedHistogramSlotReuse drives the clock through several full
// ring revolutions and checks rotation resets slot contents.
func TestWindowedHistogramSlotReuse(t *testing.T) {
	clk := &windowClock{}
	w := newTestWindow(t, clk, 12*time.Second, 12) // 1s slots
	for rev := 0; rev < 3; rev++ {
		for slot := 0; slot < 12; slot++ {
			w.Observe(time.Millisecond)
			clk.advance(time.Second)
		}
	}
	// Exactly one observation per live slot; the oldest epoch just
	// rotated out, so 11 or 12 remain depending on edge alignment.
	s := w.Snapshot()
	if s.Count < 11 || s.Count > 12 {
		t.Fatalf("snapshot count after reuse = %d, want 11..12", s.Count)
	}
}

func TestHistogramSnapshotQuantileMean(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty snapshot should report zero")
	}
	h := &Histogram{}
	for i := 0; i < 90; i++ {
		h.Observe(time.Millisecond) // bucket upper edge 2^20 ns
	}
	for i := 0; i < 10; i++ {
		h.Observe(100 * time.Millisecond) // bucket upper edge 2^27 ns
	}
	s = h.Snapshot()
	if got, want := s.Quantile(0.5), time.Duration(uint64(1)<<20); got != want {
		t.Fatalf("p50 = %v, want %v", got, want)
	}
	if got, want := s.Quantile(0.99), time.Duration(uint64(1)<<27); got != want {
		t.Fatalf("p99 = %v, want %v", got, want)
	}
	// Snapshot quantiles must agree with the live estimator.
	if s.Quantile(0.99) != h.Quantile(0.99) {
		t.Fatal("snapshot and live p99 disagree")
	}
	if s.Mean() != h.Mean() {
		t.Fatal("snapshot and live mean disagree")
	}
}

// TestWindowedHistogramConcurrent hammers Observe/Snapshot from many
// goroutines while the clock advances, for the -race job (satellite:
// concurrent window hammer).
func TestWindowedHistogramConcurrent(t *testing.T) {
	clk := &windowClock{}
	w := newTestWindow(t, clk, 100*time.Millisecond, 4)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			d := time.Duration(g+1) * time.Millisecond
			for {
				select {
				case <-stop:
					return
				default:
				}
				w.Observe(d)
				clk.advance(7 * time.Microsecond)
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 2000; i++ {
			s := w.Snapshot()
			var sum int64
			for _, b := range s.Buckets {
				sum += b
			}
			// Totals can race ahead of bucket sums (documented), but a
			// snapshot must never fabricate samples wholesale.
			if sum < 0 || s.Count < 0 {
				t.Error("negative snapshot")
				return
			}
		}
	}()
	time.Sleep(20 * time.Millisecond)
	close(stop)
	wg.Wait()
	if w.Snapshot().Count == 0 && clk.now() < 100*time.Millisecond {
		t.Fatal("no samples survived inside the window")
	}
}

// TestWindowedHistogramRolloverConcurrent forces epoch rotation to
// race: observers hammer the window while a driver goroutine jumps the
// clock across slot boundaries (including multi-span leaps that make
// every slot stale at once). The approximate contract allows samples
// to be *dropped* during rotation, but never duplicated or fabricated
// — a snapshot must not exceed the number of observations made, and
// after a quiet full span the window must drain to empty (satellite:
// rollover under concurrent observers, run under -race).
func TestWindowedHistogramRolloverConcurrent(t *testing.T) {
	clk := &windowClock{}
	const span = 80 * time.Nanosecond // 4 slots × 20ns: tiny widths maximize rotations
	w := newTestWindow(t, clk, span, 4)

	var observed atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Counted before the observe so `observed` is always an
				// upper bound on samples the window can hold.
				observed.Add(1)
				w.Observe(time.Millisecond)
			}
		}()
	}
	// The driver walks the clock one slot width at a time, snapshotting
	// at every boundary, and every few steps leaps several spans ahead
	// so rotation has to reclaim slots stamped many epochs back.
	for step := 0; step < 400; step++ {
		if step%16 == 15 {
			clk.advance(3 * span)
		} else {
			clk.advance(span / 4)
		}
		s := w.Snapshot()
		if s.Count > observed.Load() {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot fabricated samples: count %d > observed %d", s.Count, observed.Load())
		}
		var sum int64
		for _, b := range s.Buckets {
			sum += b
		}
		if sum < 0 || s.Count < 0 {
			close(stop)
			wg.Wait()
			t.Fatalf("negative snapshot: sum=%d count=%d", sum, s.Count)
		}
	}
	close(stop)
	wg.Wait()

	// Quiesced: a full span with no observations drains the window.
	clk.advance(2 * span)
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("window did not drain after a quiet span: count=%d", s.Count)
	}
	// And the ring is still usable after the storm.
	w.Observe(2 * time.Millisecond)
	if s := w.Snapshot(); s.Count != 1 || s.Sum != 2*time.Millisecond {
		t.Fatalf("post-storm observe lost: %+v", s)
	}
}

func TestEWMA(t *testing.T) {
	var nilE *EWMA
	nilE.Observe(time.Second) // must not panic
	if nilE.Value() != 0 {
		t.Fatal("nil EWMA should read zero")
	}

	e := NewEWMA(0.5)
	if e.Value() != 0 {
		t.Fatal("unseeded EWMA should read zero")
	}
	e.Observe(100 * time.Millisecond)
	if e.Value() != 100*time.Millisecond {
		t.Fatalf("seed = %v, want 100ms", e.Value())
	}
	e.Observe(200 * time.Millisecond)
	if got := e.Value(); got != 150*time.Millisecond {
		t.Fatalf("after 0.5-blend = %v, want 150ms", got)
	}
	e.Observe(-time.Second) // clamps to zero
	if got := e.Value(); got != 75*time.Millisecond {
		t.Fatalf("after clamp-blend = %v, want 75ms", got)
	}

	// Default alpha path.
	d := NewEWMA(0)
	d.Observe(time.Second)
	d.Observe(2 * time.Second)
	want := time.Duration((1-DefaultEWMAAlpha)*float64(time.Second) + DefaultEWMAAlpha*float64(2*time.Second))
	if got := d.Value(); got != want {
		t.Fatalf("default alpha blend = %v, want %v", got, want)
	}
}

func TestEWMAConcurrent(t *testing.T) {
	e := NewEWMA(0.1)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 5000; i++ {
				e.Observe(time.Millisecond)
				_ = e.Value()
			}
		}()
	}
	wg.Wait()
	if got := e.Value(); got != time.Millisecond {
		t.Fatalf("constant stream EWMA = %v, want 1ms", got)
	}
}

func TestRegistryWindowFamily(t *testing.T) {
	clk := &windowClock{}
	reg := NewRegistry()
	w := newTestWindow(t, clk, time.Minute, 12)
	reg.Window("test_latency_window_seconds", "windowed latency", w)
	w.Observe(time.Millisecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE test_latency_window_seconds histogram",
		"test_latency_window_seconds_count 1",
		`test_latency_window_seconds_bucket{le="+Inf"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}

	vars := reg.Vars()
	m, ok := vars["test_latency_window_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("vars entry = %T, want map", vars["test_latency_window_seconds"])
	}
	if m["count"].(int64) != 1 {
		t.Fatalf("vars count = %v, want 1", m["count"])
	}
	if m["window_ns"].(int64) != int64(time.Minute) {
		t.Fatalf("vars window_ns = %v", m["window_ns"])
	}

	// Aged-out windows expose empty families, not stale data.
	clk.advance(5 * time.Minute)
	var b2 strings.Builder
	if err := reg.WritePrometheus(&b2); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(b2.String(), "test_latency_window_seconds_count 0") {
		t.Fatalf("aged window should report count 0:\n%s", b2.String())
	}

	// Rebinding replaces the instrument (server rebuild idiom).
	w2 := newTestWindow(t, clk, time.Minute, 12)
	w2.Observe(2 * time.Millisecond)
	reg.Window("test_latency_window_seconds", "windowed latency", w2)
	m2, _ := reg.Vars()["test_latency_window_seconds"].(map[string]any)
	if m2["count"].(int64) != 1 {
		t.Fatalf("rebound vars count = %v, want 1", m2["count"])
	}
}

// TestWindowedHistogramCoverageAtLeastSpan pins the slot-width rounding
// bug: truncating span/slots made the ring cover less than the declared
// span whenever the division had a remainder, so a sample observed at
// t=0 aged out before span elapsed. Width must round up instead.
func TestWindowedHistogramCoverageAtLeastSpan(t *testing.T) {
	const span = 7 * time.Second
	for _, slots := range []int{3, 5, 7, 9, 11} {
		clk := &windowClock{}
		w := newTestWindow(t, clk, span, slots)
		if got := time.Duration(w.width) * time.Duration(slots); got < span {
			t.Fatalf("slots=%d: ring covers %v < span %v", slots, got, span)
		}
		w.Observe(time.Millisecond)
		clk.set(span - time.Nanosecond)
		if s := w.Snapshot(); s.Count != 1 {
			t.Fatalf("slots=%d: sample aged out %v before the span elapsed", slots, span)
		}
	}
}

// TestEWMASeeded covers the unseeded sentinel: an EWMA with no samples
// must say so, because Value()'s zero would otherwise rank an idle disk
// as the fastest replica.
func TestEWMASeeded(t *testing.T) {
	var nilE *EWMA
	if nilE.Seeded() {
		t.Fatal("nil EWMA reports seeded")
	}
	e := NewEWMA(0)
	if e.Seeded() {
		t.Fatal("fresh EWMA reports seeded")
	}
	if v := e.Value(); v != 0 {
		t.Fatalf("fresh EWMA value = %v, want 0", v)
	}
	// Even an all-zero sample seeds the estimate: "observed something
	// fast" and "observed nothing" must stay distinguishable.
	e.Observe(0)
	if !e.Seeded() {
		t.Fatal("EWMA unseeded after Observe(0)")
	}
	e2 := NewEWMA(0.5)
	e2.Observe(10 * time.Millisecond)
	if !e2.Seeded() {
		t.Fatal("EWMA unseeded after a sample")
	}
	if v := e2.Value(); v != 10*time.Millisecond {
		t.Fatalf("first sample should seed directly: %v", v)
	}
}
