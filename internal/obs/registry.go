package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increases the counter by n. Negative n is ignored (counters are
// monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add shifts the gauge by n (n may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the number of power-of-two histogram buckets: bucket
// i holds durations in [2^i, 2^(i+1)) nanoseconds, with bucket 0 also
// absorbing zero and sub-nanosecond observations.
const histBuckets = 64

// Histogram accumulates duration observations in power-of-two buckets
// (the same scheme as metrics.LatencySummary) with lock-free Observe,
// so it can replace ad-hoc summaries on concurrent paths.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one duration sample. Negative samples are clamped to
// zero.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sum.Add(int64(d))
	h.buckets[histBucketOf(d)].Add(1)
}

func histBucketOf(d time.Duration) int {
	n := uint64(d)
	if n == 0 {
		return 0
	}
	b := 63
	for n&(1<<63) == 0 {
		n <<= 1
		b--
	}
	return b
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average sample, or zero with no samples.
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile returns an upper bound of the p-quantile (0 <= p <= 1): the
// top of the bucket containing the p-th sample. The top bucket, whose
// upper edge exceeds the duration range, reports MaxInt64.
//
// The bound is computed from a racy read of the buckets; under
// concurrent Observe it is approximate, which is the intended use
// (live exposition, not settlement).
func (h *Histogram) Quantile(p float64) time.Duration {
	count := h.count.Load()
	if count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			// Bucket 62's upper edge is 2^63 ns, which overflows a
			// Duration; saturate to MaxInt64 from there up.
			if i >= 62 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(math.MaxInt64)
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64
	Sum     time.Duration
	Buckets [histBuckets]int64
}

// Snapshot copies the histogram state. The copy is not atomic across
// buckets; totals can be momentarily ahead of the bucket sum under
// concurrent Observe.
func (h *Histogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	s.Count = h.count.Load()
	s.Sum = time.Duration(h.sum.Load())
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// metricKind discriminates registry entries.
type metricKind int

const (
	kindCounter metricKind = iota + 1
	kindGauge
	kindGaugeFunc
	kindHistogram
	kindWindow
)

func (k metricKind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindGaugeFunc:
		return "gauge (func)"
	case kindHistogram:
		return "histogram"
	case kindWindow:
		return "windowed histogram"
	default:
		return fmt.Sprintf("metricKind(%d)", int(k))
	}
}

// metric is one registered family.
type metric struct {
	name string
	help string
	kind metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
	win     *WindowedHistogram
}

// Registry holds named metric families and renders them for
// exposition. Registration is idempotent: asking for an existing name
// with the same kind returns the existing instrument, so repeated
// experiment cells (or server rebuilds) accumulate into one family.
// Asking for an existing name with a different kind panics — that is a
// programming error, caught at wiring time.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric //lint:guardedby mu
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metric)}
}

// lookup returns the named metric, creating it with mk on first use.
func (r *Registry) lookup(name, help string, kind metricKind, mk func(*metric)) *metric {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("obs: metric %q already registered as %s, requested %s",
				name, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, kind: kind}
	mk(m)
	r.metrics[name] = m
	return m
}

// validName reports whether name matches the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Counter returns the named counter, registering it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.lookup(name, help, kindCounter, func(m *metric) { m.counter = &Counter{} })
	return m.counter
}

// Gauge returns the named gauge, registering it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.lookup(name, help, kindGauge, func(m *metric) { m.gauge = &Gauge{} })
	return m.gauge
}

// fnOf reads a gauge-func callback under the registry lock (the
// callback can be replaced by a later GaugeFunc registration).
func (r *Registry) fnOf(m *metric) func() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return m.fn
}

// GaugeFunc registers a gauge whose value is computed by fn at
// exposition time. Re-registering an existing name replaces the
// callback (last writer wins), so sequential simulation runs can
// rebind the family to the live engine. fn must be safe to call from
// the scraping goroutine; callers exposing single-threaded state
// (e.g. a simulation engine) must only scrape while that state is
// quiescent.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	m := r.lookup(name, help, kindGaugeFunc, func(m *metric) {})
	r.mu.Lock()
	m.fn = fn
	r.mu.Unlock()
}

// Histogram returns the named histogram, registering it on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	m := r.lookup(name, help, kindHistogram, func(m *metric) { m.hist = &Histogram{} })
	return m.hist
}

// winOf reads a windowed-histogram binding under the registry lock
// (the instrument can be replaced by a later Window registration).
func (r *Registry) winOf(m *metric) *WindowedHistogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	return m.win
}

// Window registers a caller-built windowed histogram under name.
// Unlike Histogram the registry cannot construct the instrument (it
// needs an injected clock), so the caller supplies it; re-registering
// an existing name rebinds the family to the new instrument (last
// writer wins, mirroring GaugeFunc), so sequential server rebuilds
// expose the live window.
func (r *Registry) Window(name, help string, w *WindowedHistogram) {
	m := r.lookup(name, help, kindWindow, func(m *metric) {})
	r.mu.Lock()
	m.win = w
	r.mu.Unlock()
}

// Names returns the registered family names in sorted order.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// sorted returns the registered metrics in name order.
func (r *Registry) sorted() []*metric {
	r.mu.Lock()
	out := make([]*metric, 0, len(r.metrics))
	for _, m := range r.metrics {
		out = append(out, m)
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}

// WritePrometheus renders every family in the Prometheus text
// exposition format (version 0.0.4). Histogram bucket edges and sums
// are reported in seconds, the Prometheus convention for latency.
// Each histogram family is followed by a derived <name>_quantiles
// gauge family carrying p50/p95/p99 upper bounds computed at scrape
// time, so dashboards get quantiles without histogram_quantile()
// recording rules.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, m := range r.sorted() {
		var err error
		switch m.kind {
		case kindCounter:
			err = writeScalar(w, m, "counter", float64(m.counter.Value()))
		case kindGauge:
			err = writeScalar(w, m, "gauge", float64(m.gauge.Value()))
		case kindGaugeFunc:
			v := 0.0
			if fn := r.fnOf(m); fn != nil {
				v = fn()
			}
			err = writeScalar(w, m, "gauge", v)
		case kindHistogram:
			s := m.hist.Snapshot()
			if err = writeHistogram(w, m, s); err == nil {
				err = writeQuantiles(w, m, s)
			}
		case kindWindow:
			if win := r.winOf(m); win != nil {
				s := win.Snapshot()
				if err = writeHistogram(w, m, s); err == nil {
					err = writeQuantiles(w, m, s)
				}
			}
		}
		if err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	return nil
}

// writeQuantiles emits the derived <name>_quantiles gauge family from
// one histogram snapshot: bucket upper bounds in seconds, so the
// values are directly comparable to the _bucket le edges. Empty
// histograms are skipped — a zero quantile from zero samples reads as
// "instant", not "no data".
func writeQuantiles(w io.Writer, m *metric, s HistogramSnapshot) error {
	if s.Count == 0 {
		return nil
	}
	// The quantile points precomputed for every histogram family at
	// exposition time.
	scrapeQuantiles := []struct {
		label string
		p     float64
	}{{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}}
	name := m.name + "_quantiles"
	if _, err := fmt.Fprintf(w, "# HELP %s scrape-time quantile upper bounds of %s\n", name, m.name); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n", name); err != nil {
		return err
	}
	for _, q := range scrapeQuantiles {
		if _, err := fmt.Fprintf(w, "%s{quantile=%q} %s\n",
			name, q.label, formatFloat(s.Quantile(q.p).Seconds())); err != nil {
			return err
		}
	}
	return nil
}

func writeHeader(w io.Writer, m *metric, typ string) error {
	if m.help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", m.name, m.help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.name, typ)
	return err
}

func writeScalar(w io.Writer, m *metric, typ string, v float64) error {
	if err := writeHeader(w, m, typ); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s %s\n", m.name, formatFloat(v))
	return err
}

func writeHistogram(w io.Writer, m *metric, s HistogramSnapshot) error {
	if err := writeHeader(w, m, "histogram"); err != nil {
		return err
	}
	// Emit cumulative buckets up to the highest occupied one; the rest
	// collapse into +Inf.
	highest := -1
	for i, c := range s.Buckets {
		if c > 0 {
			highest = i
		}
	}
	var cum int64
	for i := 0; i <= highest; i++ {
		cum += s.Buckets[i]
		le := float64(uint64(1)<<uint(i+1)) / 1e9
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, formatFloat(le), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, s.Count); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", m.name, formatFloat(s.Sum.Seconds())); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", m.name, s.Count)
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Vars returns the registry as a JSON-marshalable map for
// expvar-style exposition: scalars as numbers, histograms as
// {count, mean_ns, p50_ns, p99_ns, max... } objects.
func (r *Registry) Vars() map[string]any {
	out := make(map[string]any)
	for _, m := range r.sorted() {
		switch m.kind {
		case kindCounter:
			out[m.name] = m.counter.Value()
		case kindGauge:
			out[m.name] = m.gauge.Value()
		case kindGaugeFunc:
			if fn := r.fnOf(m); fn != nil {
				out[m.name] = fn()
			} else {
				out[m.name] = 0.0
			}
		case kindHistogram:
			out[m.name] = map[string]any{
				"count":   m.hist.Count(),
				"sum_ns":  int64(m.hist.Sum()),
				"mean_ns": int64(m.hist.Mean()),
				"p50_ns":  int64(m.hist.Quantile(0.5)),
				"p99_ns":  int64(m.hist.Quantile(0.99)),
			}
		case kindWindow:
			if win := r.winOf(m); win != nil {
				s := win.Snapshot()
				out[m.name] = map[string]any{
					"count":     s.Count,
					"sum_ns":    int64(s.Sum),
					"mean_ns":   int64(s.Mean()),
					"p50_ns":    int64(s.Quantile(0.5)),
					"p99_ns":    int64(s.Quantile(0.99)),
					"window_ns": int64(win.Span()),
				}
			}
		}
	}
	return out
}
