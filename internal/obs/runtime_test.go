package obs

import (
	"runtime"
	"strings"
	"testing"
)

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	runtime.GC() // make the pause metrics nonzero

	vars := reg.Vars()
	for _, name := range []string{
		"seqstream_runtime_goroutines",
		"seqstream_runtime_heap_inuse_bytes",
		"seqstream_runtime_gc_pause_last_seconds",
		"seqstream_runtime_gc_pause_total_seconds",
		"seqstream_runtime_sched_latency_seconds",
	} {
		v, ok := vars[name]
		if !ok {
			t.Fatalf("metric %s not registered", name)
		}
		f, ok := v.(float64)
		if !ok {
			t.Fatalf("metric %s is %T, want float64", name, v)
		}
		if f < 0 {
			t.Fatalf("metric %s = %v, want >= 0", name, f)
		}
	}
	if vars["seqstream_runtime_goroutines"].(float64) < 1 {
		t.Fatal("goroutine gauge should count at least this test")
	}
	if vars["seqstream_runtime_heap_inuse_bytes"].(float64) == 0 {
		t.Fatal("heap in-use gauge is zero")
	}
	if vars["seqstream_runtime_gc_pause_total_seconds"].(float64) == 0 {
		t.Fatal("GC pause total is zero after an explicit GC")
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "seqstream_runtime_goroutines") {
		t.Fatal("runtime gauges missing from prometheus exposition")
	}
}
