package obs

import (
	"testing"
	"time"
)

// fakeClock is a hand-advanced clock for span tests.
type fakeClock struct{ now time.Duration }

func (c *fakeClock) Now() time.Duration { return c.now }

func TestSpanLogTimeline(t *testing.T) {
	clk := &fakeClock{}
	l, err := NewSpanLog(clk.Now, 16)
	if err != nil {
		t.Fatal(err)
	}
	clk.now = 10
	l.Record(1, 0, StageClassify, 0, 0)
	clk.now = 20
	l.Record(1, 0, StageFetch, 4096, 1024)
	clk.now = 25
	l.Record(2, 1, StageClassify, 0, 0)
	clk.now = 30
	l.Record(1, 0, StageStaged, 4096, 1024)
	clk.now = 40
	l.Record(1, 0, StageDeliver, 4096, 512)

	tl := l.Timeline(1)
	if len(tl) != 4 {
		t.Fatalf("stream 1 timeline has %d events, want 4", len(tl))
	}
	wantStages := []Stage{StageClassify, StageFetch, StageStaged, StageDeliver}
	for i, e := range tl {
		if e.Stage != wantStages[i] {
			t.Errorf("event %d stage = %v, want %v", i, e.Stage, wantStages[i])
		}
	}
	if tl[1].At != 20 || tl[3].At != 40 {
		t.Errorf("timestamps not taken from the injected clock: %+v", tl)
	}

	if ids := l.Streams(); len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Errorf("Streams() = %v, want [1 2]", ids)
	}

	durs := StageDurations(tl)
	if durs[StageStaged] != 10 {
		t.Errorf("fetch->staged duration = %v, want 10ns", durs[StageStaged])
	}
	if durs[StageDeliver] != 10 {
		t.Errorf("staged->deliver duration = %v, want 10ns", durs[StageDeliver])
	}
}

func TestSpanLogRingWrap(t *testing.T) {
	clk := &fakeClock{}
	l, err := NewSpanLog(clk.Now, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		clk.now = time.Duration(i)
		l.Record(i, 0, StageFetch, 0, 0)
	}
	if l.Len() != 4 {
		t.Fatalf("len = %d, want capacity 4", l.Len())
	}
	snap := l.Snapshot()
	for i, e := range snap {
		if e.Stream != 6+i {
			t.Fatalf("snapshot[%d].Stream = %d, want %d (oldest-first after wrap)", i, e.Stream, 6+i)
		}
	}
}

func TestSpanLogValidation(t *testing.T) {
	if _, err := NewSpanLog(nil, 4); err == nil {
		t.Error("nil clock accepted")
	}
	clk := &fakeClock{}
	if _, err := NewSpanLog(clk.Now, 0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func TestStageStrings(t *testing.T) {
	stages := []Stage{StageClassify, StageEnqueue, StageDispatch, StageFetch, StageStaged,
		StageDeliver, StageEvict, StageRotate, StageGC, StageRetire}
	seen := make(map[string]bool)
	for _, s := range stages {
		str := s.String()
		if str == "unknown" || seen[str] {
			t.Errorf("stage %d has bad or duplicate name %q", int(s), str)
		}
		seen[str] = true
	}
	if Stage(99).String() != "unknown" {
		t.Error("out-of-range stage should stringify as unknown")
	}
}
