package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestDebugServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("seqstream_test_requests_total", "requests").Add(7)
	reg.Histogram("seqstream_test_latency_seconds", "latency").Observe(time.Millisecond)

	vars := map[string]VarFunc{
		"stack": func() any { return map[string]int{"disks": 2} },
	}
	srv, err := Serve("127.0.0.1:0", Handler(reg, vars))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	get := func(path string) (string, string) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}

	metrics, ctype := get("/metrics")
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/metrics content type = %q", ctype)
	}
	if !strings.Contains(metrics, "seqstream_test_requests_total 7") {
		t.Errorf("/metrics missing counter:\n%s", metrics)
	}
	if !strings.Contains(metrics, "seqstream_test_latency_seconds_count 1") {
		t.Errorf("/metrics missing histogram:\n%s", metrics)
	}

	varsBody, ctype := get("/debug/vars")
	if !strings.HasPrefix(ctype, "application/json") {
		t.Errorf("/debug/vars content type = %q", ctype)
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(varsBody), &decoded); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if _, ok := decoded["metrics"]; !ok {
		t.Error("/debug/vars missing registry snapshot")
	}
	if _, ok := decoded["stack"]; !ok {
		t.Error("/debug/vars missing caller var")
	}

	pprofIndex, _ := get("/debug/pprof/")
	if !strings.Contains(pprofIndex, "goroutine") {
		t.Error("/debug/pprof/ does not look like a pprof index")
	}

	index, _ := get("/")
	if !strings.Contains(index, "/metrics") {
		t.Error("index page does not list /metrics")
	}

	resp, err := http.Get(base + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown path status = %d, want 404", resp.StatusCode)
	}
}
