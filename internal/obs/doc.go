// Package obs is the unified instrumentation layer: a typed metric
// registry (counters, gauges, histograms), stream-lifecycle span
// recording, and HTTP exposition (/metrics, /debug/vars, pprof) for a
// running storage node.
//
// The package is clock-free by construction: nothing in it reads the
// wall clock, so the same instruments serve both the discrete-event
// simulator (virtual time) and real nodes (wall time). Callers stamp
// durations and instants themselves — histograms observe durations the
// caller measured, and span logs take an injected now() function. The
// simdet analyzer gates the package to keep it that way.
//
// All instruments are safe for concurrent use and cheap enough for the
// scheduler's dispatch hot path: counters and gauges are single atomic
// words, histogram observation is two atomic adds plus one atomic
// bucket increment. With the scheduler sharded (see internal/core),
// instruments are the only state shards update without holding their
// own lock, so everything here must stay lock-free; gauges mirroring
// the scheduler's global accounting are synced from atomics, never
// computed under a shard mutex.
package obs
