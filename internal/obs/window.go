package obs

import (
	"fmt"
	"math"
	"sync/atomic"
	"time"
)

// DefaultWindowBuckets is the number of ring slots a windowed
// histogram uses when the caller passes zero: 12 slots of span/12 each
// (e.g. a 60s window rotates a 5s slot).
const DefaultWindowBuckets = 12

// windowSlot is one time slice of a WindowedHistogram: a full
// power-of-two latency histogram stamped with the epoch (slice index
// since time zero) it currently holds. epoch stores epoch+1 so that
// zero means "never written".
type windowSlot struct {
	epoch   atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// WindowedHistogram is a sliding-window latency histogram: a ring of
// epoch-stamped slots, each covering span/len(slots) of time. Observe
// is lock-free (atomic adds plus an epoch CAS on slot rotation) and
// allocation-free; Snapshot merges the slots whose epoch still falls
// inside the window, so samples older than the span age out without
// any background sweeper.
//
// Semantics are deliberately approximate, matching Histogram's racy
// snapshot contract: a sample observed while another goroutine rotates
// the same slot may be dropped, and a snapshot taken mid-rotation can
// see a partially reset slot. The window covers between len(slots)-1
// and len(slots) slot widths, depending on how far the current slot
// has filled.
//
// The clock is injected (a monotonic `now` func, same discipline as
// SpanLog and the flight recorder) so simulation code can drive
// windows deterministically.
type WindowedHistogram struct {
	now   func() time.Duration
	width int64 // slot width, nanoseconds
	span  time.Duration
	slots []windowSlot
}

// NewWindowedHistogram returns a windowed histogram covering span,
// split into the given number of ring slots (DefaultWindowBuckets when
// zero). now must be monotonic; span must exceed the slot count so
// every slot covers at least a nanosecond.
func NewWindowedHistogram(now func() time.Duration, span time.Duration, slots int) (*WindowedHistogram, error) {
	if now == nil {
		return nil, fmt.Errorf("obs: windowed histogram needs a clock")
	}
	if slots == 0 {
		slots = DefaultWindowBuckets
	}
	if slots < 2 {
		return nil, fmt.Errorf("obs: windowed histogram needs >= 2 slots, got %d", slots)
	}
	if int64(span) < int64(slots) {
		return nil, fmt.Errorf("obs: window span %v too short for %d slots", span, slots)
	}
	// Ceiling division: a truncated width would make len(slots) slices
	// cover less than the declared span whenever span % slots != 0, so
	// the oldest samples inside the span would age out early.
	width := (int64(span) + int64(slots) - 1) / int64(slots)
	return &WindowedHistogram{
		now:   now,
		width: width,
		span:  span,
		slots: make([]windowSlot, slots),
	}, nil
}

// Span returns the window length the histogram was built with.
func (w *WindowedHistogram) Span() time.Duration { return w.span }

// epochNow returns the current epoch stamp (slice index + 1, so zero
// is reserved for never-written slots).
func (w *WindowedHistogram) epochNow() int64 {
	return int64(w.now())/w.width + 1
}

// Observe records one duration sample into the current slot, rotating
// the slot to the current epoch first if it still holds an older
// slice. Negative samples clamp to zero. Nil receivers are no-ops so
// call sites can stay unconditional.
func (w *WindowedHistogram) Observe(d time.Duration) {
	w.ObserveN(d, 1)
}

// ObserveN records n identical samples in one shot — the batched form
// of Observe for callers that coalesce hot-path samples and publish
// them periodically. Every sample lands in the flush-time slot, so
// batches must stay small next to the slot width or the window skews.
// Non-positive n is a no-op.
func (w *WindowedHistogram) ObserveN(d time.Duration, n int64) {
	if w == nil || n <= 0 {
		return
	}
	if d < 0 {
		d = 0
	}
	e := w.epochNow()
	s := &w.slots[int(e%int64(len(w.slots)))]
	for {
		cur := s.epoch.Load()
		if cur == e {
			break
		}
		if cur > e {
			// Another observer already rotated the slot to a newer
			// epoch (our clock read raced); the sample belongs to a
			// slice that no longer exists, drop it.
			return
		}
		if s.epoch.CompareAndSwap(cur, e) {
			// We own the rotation: clear the stale slice. Concurrent
			// observers that saw the new epoch before this reset may
			// lose their sample — accepted, see the type comment.
			s.count.Store(0)
			s.sum.Store(0)
			for i := range s.buckets {
				s.buckets[i].Store(0)
			}
			break
		}
	}
	s.count.Add(n)
	s.sum.Add(n * int64(d))
	s.buckets[histBucketOf(d)].Add(n)
}

// Snapshot merges every slot whose epoch still falls inside the window
// into one HistogramSnapshot. Slots older than the span (or never
// written) are skipped, which is how samples age out.
func (w *WindowedHistogram) Snapshot() HistogramSnapshot {
	var s HistogramSnapshot
	if w == nil {
		return s
	}
	nowE := w.epochNow()
	minE := nowE - int64(len(w.slots)) + 1
	for i := range w.slots {
		sl := &w.slots[i]
		e := sl.epoch.Load()
		if e == 0 || e < minE || e > nowE {
			continue
		}
		s.Count += sl.count.Load()
		s.Sum += time.Duration(sl.sum.Load())
		for b := range sl.buckets {
			s.Buckets[b] += sl.buckets[b].Load()
		}
	}
	return s
}

// Tally returns the window's sample count and its zero-bucket count
// ([0, 2) ns) without copying the full bucket array — the cheap form
// of Snapshot for ratio arithmetic over many windows, where callers
// encode "good" samples as zero observations. Same approximate
// contract as Snapshot.
func (w *WindowedHistogram) Tally() (count, zero int64) {
	if w == nil {
		return 0, 0
	}
	nowE := w.epochNow()
	minE := nowE - int64(len(w.slots)) + 1
	for i := range w.slots {
		sl := &w.slots[i]
		e := sl.epoch.Load()
		if e == 0 || e < minE || e > nowE {
			continue
		}
		count += sl.count.Load()
		zero += sl.buckets[0].Load()
	}
	return count, zero
}

// Mean returns the average sample in the snapshot, or zero with no
// samples.
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile returns an upper bound of the p-quantile of the snapshot:
// the top of the power-of-two bucket containing the p-th sample (the
// same estimator as Histogram.Quantile, usable on merged windowed
// snapshots).
func (s HistogramSnapshot) Quantile(p float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range s.Buckets {
		seen += s.Buckets[i]
		if seen >= target {
			if i >= 62 {
				return time.Duration(math.MaxInt64)
			}
			return time.Duration(uint64(1) << uint(i+1))
		}
	}
	return time.Duration(math.MaxInt64)
}

// DefaultEWMAAlpha is the smoothing factor an EWMA uses when built
// with alpha zero: each new sample contributes 20% of the estimate.
const DefaultEWMAAlpha = 0.2

// EWMA is an exponentially weighted moving average of durations with
// lock-free Observe (a CAS loop over the float bits). The zero bit
// pattern is reserved as "no samples yet"; the first observation seeds
// the estimate directly. Use by pointer only — the struct embeds an
// atomic.
type EWMA struct {
	alpha float64
	bits  atomic.Uint64 // math.Float64bits of the estimate, 0 = unseeded
}

// NewEWMA returns an EWMA with the given smoothing factor in (0, 1];
// zero selects DefaultEWMAAlpha.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		alpha = DefaultEWMAAlpha
	}
	return &EWMA{alpha: alpha}
}

// Observe folds one sample into the estimate. Negative samples clamp
// to zero. Nil receivers are no-ops.
func (e *EWMA) Observe(d time.Duration) {
	if e == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	for {
		old := e.bits.Load()
		var next float64
		if old == 0 {
			next = float64(d)
		} else {
			next = (1-e.alpha)*math.Float64frombits(old) + e.alpha*float64(d)
		}
		nb := math.Float64bits(next)
		if nb == 0 {
			nb = 1 // keep the unseeded sentinel unambiguous
		}
		if e.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Seeded reports whether the estimate has absorbed at least one
// sample. Callers ranking disks by EWMA must check this first: an
// unseeded estimate reads as zero, which would otherwise sort an
// idle disk as the fastest one.
func (e *EWMA) Seeded() bool {
	return e != nil && e.bits.Load() != 0
}

// Value returns the current estimate, or zero before any sample.
func (e *EWMA) Value() time.Duration {
	if e == nil {
		return 0
	}
	b := e.bits.Load()
	if b == 0 {
		return 0
	}
	return time.Duration(math.Float64frombits(b))
}
