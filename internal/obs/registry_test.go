package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := reg.Gauge("test_gauge", "a gauge")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("dup_total", "first")
	b := reg.Counter("dup_total", "second registration returns the first")
	if a != b {
		t.Fatal("re-registering the same counter returned a different instrument")
	}
	a.Inc()
	if b.Value() != 1 {
		t.Fatal("instruments from repeated registration do not share state")
	}
}

func TestRegistrationKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("conflict", "")
	defer func() {
		if recover() == nil {
			t.Fatal("registering an existing name with a different kind did not panic")
		}
	}()
	reg.Gauge("conflict", "")
}

func TestInvalidNamePanics(t *testing.T) {
	reg := NewRegistry()
	for _, name := range []string{"", "1bad", "has space", "has-dash"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("name %q did not panic", name)
				}
			}()
			reg.Counter(name, "")
		}()
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("node_requests_total", "requests").Add(3)
	reg.Gauge("node_memory_bytes", "staged bytes").Set(1 << 20)
	reg.GaugeFunc("node_time_seconds", "clock", func() float64 { return 1.5 })
	h := reg.Histogram("node_latency_seconds", "latency")
	h.Observe(1500 * time.Nanosecond) // bucket [1024, 2048) ns
	h.Observe(1500 * time.Nanosecond)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE node_requests_total counter",
		"node_requests_total 3",
		"# TYPE node_memory_bytes gauge",
		"node_memory_bytes 1.048576e+06",
		"node_time_seconds 1.5",
		"# TYPE node_latency_seconds histogram",
		`node_latency_seconds_bucket{le="+Inf"} 2`,
		"node_latency_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// Bucket lines are cumulative and end at the occupied bucket.
	if !strings.Contains(out, `node_latency_seconds_bucket{le="2.048e-06"} 2`) {
		t.Errorf("missing cumulative bucket for [1024,2048)ns in:\n%s", out)
	}
}

// TestWritePrometheusQuantiles checks the derived _quantiles gauge
// family emitted after each histogram (satellite: scrape-time p50/p95/
// p99 precomputation).
func TestWritePrometheusQuantiles(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("q_latency_seconds", "latency")
	for i := 0; i < 99; i++ {
		h.Observe(1500 * time.Nanosecond) // bucket [1024, 2048) → upper edge 2048ns
	}
	h.Observe(3 * time.Millisecond) // bucket [2^21, 2^22)ns → upper edge ~4.19ms

	clk := &windowClock{}
	w := newTestWindow(t, clk, time.Second, 4)
	w.Observe(1500 * time.Nanosecond)
	reg.Window("q_window_seconds", "windowed latency", w)

	reg.Histogram("q_empty_seconds", "never observed")

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE q_latency_seconds_quantiles gauge",
		`q_latency_seconds_quantiles{quantile="0.5"} 2.048e-06`,
		`q_latency_seconds_quantiles{quantile="0.95"} 2.048e-06`,
		`q_latency_seconds_quantiles{quantile="0.99"} 2.048e-06`,
		"# TYPE q_window_seconds_quantiles gauge",
		`q_window_seconds_quantiles{quantile="0.99"} 2.048e-06`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
	// 100 samples: the p-th sample for p=0.99 is sample 99, still in the
	// low bucket; the straggler only surfaces at p=1.0 — but the slow
	// bucket must appear in the histogram itself.
	if !strings.Contains(out, `q_latency_seconds_bucket{le="0.004194304"} 100`) {
		t.Errorf("slow bucket missing in:\n%s", out)
	}
	// Empty histograms emit no quantile family (zero would read as
	// "instant", not "no data").
	if strings.Contains(out, "q_empty_seconds_quantiles") {
		t.Errorf("empty histogram emitted quantiles:\n%s", out)
	}
}

func TestGaugeFuncReplacement(t *testing.T) {
	reg := NewRegistry()
	reg.GaugeFunc("replace_me", "", func() float64 { return 1 })
	reg.GaugeFunc("replace_me", "", func() float64 { return 2 })
	if v := reg.Vars()["replace_me"]; v != 2.0 {
		t.Fatalf("gauge func = %v, want the replacement's 2", v)
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	for i := 0; i < 90; i++ {
		h.Observe(100 * time.Nanosecond) // bucket [64,128)
	}
	for i := 0; i < 10; i++ {
		h.Observe(10 * time.Microsecond) // bucket [8192,16384)
	}
	if got := h.Quantile(0.5); got != 128 {
		t.Errorf("p50 = %v, want 128ns (bucket top)", got)
	}
	if got := h.Quantile(0.99); got != 16384 {
		t.Errorf("p99 = %v, want 16384ns (bucket top)", got)
	}
	if got := h.Quantile(0); got != 128 {
		t.Errorf("p0 = %v, want first occupied bucket top", got)
	}
}

func TestHistogramSaturation(t *testing.T) {
	var h Histogram
	h.Observe(time.Duration(math.MaxInt64))
	if got := h.Quantile(1); got != time.Duration(math.MaxInt64) {
		t.Fatalf("top-bucket quantile = %v, want MaxInt64 sentinel", got)
	}
	h.Observe(-5) // clamps to zero, bucket 0
	if got := h.Count(); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := h.Quantile(0.5); got != 2 {
		t.Fatalf("p50 = %v, want bucket-0 top (2ns)", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h.Observe(time.Duration(w*1000+i) * time.Nanosecond)
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*perWorker {
		t.Fatalf("count = %d, want %d", got, workers*perWorker)
	}
	s := h.Snapshot()
	var inBuckets int64
	for _, c := range s.Buckets {
		inBuckets += c
	}
	if inBuckets != s.Count {
		t.Fatalf("buckets hold %d samples, count says %d", inBuckets, s.Count)
	}
}

func TestVars(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total", "").Add(2)
	reg.Histogram("h_seconds", "").Observe(time.Millisecond)
	vars := reg.Vars()
	if vars["c_total"] != int64(2) {
		t.Fatalf("c_total = %v, want 2", vars["c_total"])
	}
	hv, ok := vars["h_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("h_seconds var is %T, want map", vars["h_seconds"])
	}
	if hv["count"] != int64(1) {
		t.Fatalf("histogram count var = %v, want 1", hv["count"])
	}
}
