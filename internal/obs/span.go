package obs

import (
	"encoding/json"
	"errors"
	"io"
	"sort"
	"sync"
	"time"
)

// Stage is one step of a stream's lifecycle through the storage node:
// detection by the classifier, admission to the candidate queue, entry
// into the dispatch set, the fetch/stage round-trips that move its data
// into host memory, delivery to the client, and the ways staged state
// leaves the node (eviction, rotation, GC, retirement).
type Stage int

// Lifecycle stages, in the order a healthy stream traverses them.
const (
	// StageClassify marks stream detection (§4.1).
	StageClassify Stage = iota + 1
	// StageEnqueue marks (re-)admission to the candidate queue.
	StageEnqueue
	// StageDispatch marks entry into the dispatch set (§4.2).
	StageDispatch
	// StageFetch marks a read-ahead disk request being issued.
	StageFetch
	// StageStaged marks a fetch completing into the buffered set.
	StageStaged
	// StageDeliver marks a client request served from staged memory.
	StageDeliver
	// StageEvict marks a staged buffer reclaimed under memory pressure.
	StageEvict
	// StageRotate marks rotation out of the dispatch set after N
	// requests (§4.2).
	StageRotate
	// StageGC marks stream state collected by the periodic GC (§4.3).
	StageGC
	// StageRetire marks a stream that consumed its disk to the end.
	StageRetire
)

// String implements fmt.Stringer.
func (s Stage) String() string {
	switch s {
	case StageClassify:
		return "classify"
	case StageEnqueue:
		return "enqueue"
	case StageDispatch:
		return "dispatch"
	case StageFetch:
		return "fetch"
	case StageStaged:
		return "staged"
	case StageDeliver:
		return "deliver"
	case StageEvict:
		return "evict"
	case StageRotate:
		return "rotate"
	case StageGC:
		return "gc"
	case StageRetire:
		return "retire"
	default:
		return "unknown"
	}
}

// SpanEvent is one stage transition of one stream.
type SpanEvent struct {
	Stream int           `json:"stream"`
	Disk   int           `json:"disk"`
	Stage  Stage         `json:"stage"`
	At     time.Duration `json:"atNanos"`
	Offset int64         `json:"offset"`
	Length int64         `json:"length"`
}

// SpanLog records stream-lifecycle events in a bounded ring, stamped
// with an injected clock so simulated (virtual-time) and real nodes
// share one recorder. It is safe for concurrent use.
type SpanLog struct {
	now func() time.Duration

	mu      sync.Mutex
	events  []SpanEvent //lint:guardedby mu
	next    int         //lint:guardedby mu
	wrapped bool        //lint:guardedby mu

	// sink receives flushed events as JSON lines; nil discards. total
	// and flushed are absolute event counts (recorded ever / flushed
	// through), so a flush emits exactly the retained events that were
	// not flushed before — ring overwrites can drop events between
	// flushes, but never duplicate them.
	sink    io.Writer //lint:guardedby mu
	total   int64     //lint:guardedby mu
	flushed int64     //lint:guardedby mu
}

// NewSpanLog builds a span log holding up to capacity events (older
// events are overwritten once full). now supplies timestamps — a
// simulation clock or a real clock's Now.
func NewSpanLog(now func() time.Duration, capacity int) (*SpanLog, error) {
	if now == nil {
		return nil, errors.New("obs: nil clock")
	}
	if capacity <= 0 {
		return nil, errors.New("obs: span capacity must be positive")
	}
	return &SpanLog{now: now, events: make([]SpanEvent, 0, capacity)}, nil
}

// Record stamps and appends one stage transition.
func (l *SpanLog) Record(stream, disk int, stage Stage, off, length int64) {
	e := SpanEvent{Stream: stream, Disk: disk, Stage: stage, At: l.now(), Offset: off, Length: length}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.total++
	if len(l.events) < cap(l.events) {
		l.events = append(l.events, e)
		return
	}
	l.events[l.next] = e
	l.next = (l.next + 1) % cap(l.events)
	l.wrapped = true
}

// SetSink directs flushed events to w as JSON lines (one SpanEvent per
// line, the ReadJSONL-style framing). Nil detaches the sink. The log
// does not own w: the caller closes it after Close.
func (l *SpanLog) SetSink(w io.Writer) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.sink = w
	l.mu.Unlock()
}

// Flush writes the retained events recorded since the last flush to
// the sink. Events the ring overwrote between flushes are lost (the
// log is bounded by design); nothing is ever written twice. Safe on a
// nil log or with no sink.
func (l *SpanLog) Flush() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.flushLocked()
}

// Close flushes and detaches the sink, so process-exit paths can hook
// it without racing later flushes. It does not close the underlying
// writer. Safe on a nil log.
func (l *SpanLog) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	err := l.flushLocked()
	l.sink = nil
	return err
}

// flushLocked emits the unflushed retained events. Caller holds l.mu.
//
//lint:holds mu
func (l *SpanLog) flushLocked() error {
	if l.sink == nil {
		l.flushed = l.total
		return nil
	}
	start := l.total - int64(len(l.events))
	if l.flushed > start {
		start = l.flushed
	}
	enc := json.NewEncoder(l.sink)
	size := int64(cap(l.events))
	for a := start; a < l.total; a++ {
		if err := enc.Encode(l.events[a%size]); err != nil {
			l.flushed = a
			return err
		}
	}
	l.flushed = l.total
	return nil
}

// Len returns the number of retained events.
func (l *SpanLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Snapshot returns the retained events in record order.
func (l *SpanLog) Snapshot() []SpanEvent {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]SpanEvent, 0, len(l.events))
	if l.wrapped {
		out = append(out, l.events[l.next:]...)
		out = append(out, l.events[:l.next]...)
	} else {
		out = append(out, l.events...)
	}
	return out
}

// Timeline returns the retained events of one stream, in record order.
func (l *SpanLog) Timeline(stream int) []SpanEvent {
	var out []SpanEvent
	for _, e := range l.Snapshot() {
		if e.Stream == stream {
			out = append(out, e)
		}
	}
	return out
}

// Streams returns the distinct stream ids present in the log, sorted.
func (l *SpanLog) Streams() []int {
	seen := make(map[int]struct{})
	for _, e := range l.Snapshot() {
		seen[e.Stream] = struct{}{}
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// StageDurations reduces one stream's timeline to the interval spent
// between consecutive fetch/staged/deliver transitions: for each
// StageStaged it reports the duration since the matching StageFetch,
// and for each StageDeliver the duration since the stream's previous
// event. It is a convenience for tests and offline analysis.
func StageDurations(timeline []SpanEvent) map[Stage]time.Duration {
	out := make(map[Stage]time.Duration)
	fetchAt := make(map[int64]time.Duration) // by offset
	var prev time.Duration
	for _, e := range timeline {
		switch e.Stage {
		case StageFetch:
			fetchAt[e.Offset] = e.At
		case StageStaged:
			if at, ok := fetchAt[e.Offset]; ok {
				out[StageStaged] += e.At - at
				delete(fetchAt, e.Offset)
			}
		case StageDeliver:
			out[StageDeliver] += e.At - prev
		}
		prev = e.At
	}
	return out
}
