package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
)

// VarFunc produces one /debug/vars entry; it must be safe to call from
// the serving goroutine and return a JSON-marshalable value.
type VarFunc func() any

// Handler serves the debug surface of a node:
//
//	/metrics        Prometheus text exposition of reg
//	/debug/vars     JSON snapshot: registry values plus caller vars
//	/debug/pprof/*  runtime profiles (net/http/pprof)
//
// vars maps names to snapshot functions (core stats, config, ...) and
// may be nil.
func Handler(reg *Registry, vars map[string]VarFunc) http.Handler {
	return HandlerExtra(reg, vars, nil)
}

// HandlerExtra is Handler plus caller-mounted endpoints (path →
// handler), e.g. the flight recorder's /debug/flight snapshot. Extra
// paths appear on the index page alongside the built-ins.
func HandlerExtra(reg *Registry, vars map[string]VarFunc, extra map[string]http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if err := reg.WritePrometheus(w); err != nil {
			// Headers are gone; all we can do is drop the connection.
			return
		}
	})
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		out := map[string]any{"metrics": reg.Vars()}
		for name, fn := range vars {
			if fn != nil {
				out[name] = fn()
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	endpoints := []string{"/metrics", "/debug/vars", "/debug/pprof/"}
	for path, h := range extra {
		if h != nil {
			mux.Handle(path, h)
			endpoints = append(endpoints, path)
		}
	}
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		sort.Strings(endpoints)
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "seqstream debug endpoints:")
		for _, e := range endpoints {
			fmt.Fprintf(w, "  %s\n", e)
		}
	})
	return mux
}

// DebugServer is a running debug HTTP listener.
type DebugServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve binds addr (host:port; port 0 picks a free port) and serves h
// on it in a background goroutine.
func Serve(addr string, h http.Handler) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	s := &DebugServer{ln: ln, srv: &http.Server{Handler: h}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *DebugServer) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and any in-flight handlers.
func (s *DebugServer) Close() error { return s.srv.Close() }
