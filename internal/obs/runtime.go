package obs

import (
	"runtime"
	"runtime/metrics"
)

// RegisterRuntimeMetrics exports Go runtime health into the registry
// as gauge funcs, sampled at scrape time: goroutine count, heap
// in-use, GC pause totals, and a scheduling-latency proxy. These are
// the signals that explain a node that is "up" but slow — a goroutine
// leak, GC thrash, or a saturated scheduler — without attaching pprof.
func RegisterRuntimeMetrics(reg *Registry) {
	reg.GaugeFunc("seqstream_runtime_goroutines",
		"live goroutines",
		func() float64 { return float64(runtime.NumGoroutine()) })
	reg.GaugeFunc("seqstream_runtime_heap_inuse_bytes",
		"bytes in in-use heap spans",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.HeapInuse)
		})
	reg.GaugeFunc("seqstream_runtime_gc_pause_last_seconds",
		"most recent stop-the-world GC pause",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.NumGC == 0 {
				return 0
			}
			return float64(ms.PauseNs[(ms.NumGC+255)%256]) / 1e9
		})
	reg.GaugeFunc("seqstream_runtime_gc_pause_total_seconds",
		"cumulative stop-the-world GC pause time",
		func() float64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return float64(ms.PauseTotalNs) / 1e9
		})
	reg.GaugeFunc("seqstream_runtime_sched_latency_seconds",
		"approximate mean time goroutines spend runnable before running (scheduler saturation proxy)",
		func() float64 { return schedLatencyMean() })
}

// schedLatencyMean reduces the runtime's /sched/latencies:seconds
// histogram to a weighted mean. A mean loses the tail but gives a
// single scrape-friendly saturation signal; attach pprof for detail.
func schedLatencyMean() float64 {
	sample := []metrics.Sample{{Name: "/sched/latencies:seconds"}}
	metrics.Read(sample)
	if sample[0].Value.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	h := sample[0].Value.Float64Histogram()
	var count, sum float64
	for i, n := range h.Counts {
		if n == 0 {
			continue
		}
		// Boundary buckets can be open-ended (±Inf); credit those
		// samples at the finite edge.
		lo, hi := h.Buckets[i], h.Buckets[i+1]
		var mid float64
		switch {
		case isInf(-lo) && isInf(hi):
			continue
		case isInf(-lo):
			mid = hi
		case isInf(hi):
			mid = lo
		default:
			mid = (lo + hi) / 2
		}
		count += float64(n)
		sum += float64(n) * mid
	}
	if count == 0 {
		return 0
	}
	return sum / count
}

// isInf avoids importing math for one check.
func isInf(f float64) bool { return f > 1e300 }
