package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// decodeLines parses a JSON-lines buffer back into span events.
func decodeLines(t *testing.T, buf *bytes.Buffer) []SpanEvent {
	t.Helper()
	var out []SpanEvent
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var e SpanEvent
		if err := json.Unmarshal([]byte(line), &e); err != nil {
			t.Fatalf("bad flushed line %q: %v", line, err)
		}
		out = append(out, e)
	}
	return out
}

func spanClock() func() time.Duration {
	var t time.Duration
	return func() time.Duration { t += time.Millisecond; return t }
}

func TestSpanLogFlushNoDuplicates(t *testing.T) {
	l, err := NewSpanLog(spanClock(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l.SetSink(&buf)

	for i := 0; i < 3; i++ {
		l.Record(i, 0, StageClassify, int64(i)*4096, 4096)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := decodeLines(t, &buf); len(got) != 3 || got[0].Stream != 0 || got[2].Stream != 2 {
		t.Fatalf("first flush = %+v", got)
	}

	// A second flush with nothing new writes nothing.
	mark := buf.Len()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != mark {
		t.Fatal("idle flush duplicated events")
	}

	// New events flush incrementally.
	l.Record(9, 1, StageRetire, 0, 0)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := decodeLines(t, &buf)
	if len(got) != 4 || got[3].Stream != 9 || got[3].Stage != StageRetire {
		t.Fatalf("incremental flush = %+v", got)
	}
}

func TestSpanLogFlushAfterOverwrite(t *testing.T) {
	l, err := NewSpanLog(spanClock(), 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l.SetSink(&buf)

	// 10 events through a 4-slot ring: the first flush can only emit
	// the 4 retained, and must be the newest 4 (streams 6..9).
	for i := 0; i < 10; i++ {
		l.Record(i, 0, StageDeliver, 0, 0)
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got := decodeLines(t, &buf)
	if len(got) != 4 {
		t.Fatalf("flushed %d events, want 4", len(got))
	}
	for i, e := range got {
		if e.Stream != 6+i {
			t.Fatalf("flushed[%d].Stream = %d, want %d", i, e.Stream, 6+i)
		}
	}

	// Overwrite two more; only those two flush (7 and 8 were already
	// written — never again).
	l.Record(10, 0, StageDeliver, 0, 0)
	l.Record(11, 0, StageDeliver, 0, 0)
	buf.Reset()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	got = decodeLines(t, &buf)
	if len(got) != 2 || got[0].Stream != 10 || got[1].Stream != 11 {
		t.Fatalf("post-wrap flush = %+v", got)
	}
}

func TestSpanLogCloseFlushesAndDetaches(t *testing.T) {
	l, err := NewSpanLog(spanClock(), 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	l.SetSink(&buf)
	l.Record(1, 0, StageClassify, 0, 4096)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := decodeLines(t, &buf); len(got) != 1 {
		t.Fatalf("close flushed %d events, want 1", len(got))
	}
	// After Close, the sink is detached: further flushes write nothing.
	l.Record(2, 0, StageRetire, 0, 0)
	mark := buf.Len()
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != mark {
		t.Fatal("flush after Close still wrote to the sink")
	}
}

// failWriter fails every write.
type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink broke") }

func TestSpanLogFlushSinkError(t *testing.T) {
	l, err := NewSpanLog(spanClock(), 8)
	if err != nil {
		t.Fatal(err)
	}
	l.SetSink(failWriter{})
	l.Record(1, 0, StageClassify, 0, 0)
	if err := l.Flush(); err == nil {
		t.Fatal("sink error swallowed")
	}
	// The failed event is retried on the next flush (flushed cursor did
	// not advance past it).
	var buf bytes.Buffer
	l.SetSink(&buf)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if got := decodeLines(t, &buf); len(got) != 1 || got[0].Stream != 1 {
		t.Fatalf("retry flush = %+v", got)
	}
}

func TestSpanLogNilSafety(t *testing.T) {
	var l *SpanLog
	l.SetSink(nil)
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}
