// Package lib is the callee side of the unitcheck cross-package
// fixture.
package lib

// Reserve stages capacityBytes of memory for a stream.
func Reserve(stream int, capacityBytes int64) {}
