// Package caller is the caller side of the unitcheck cross-package
// fixture: the parameter name lives in another package and is resolved
// through the load index.
package caller

import "seqstream/internal/analysis/unitcheck/testdata/xpkg/lib"

func use() {
	lib.Reserve(1, 134217728) // want "bare literal 134217728 flows into bytes parameter \"capacityBytes\""
	lib.Reserve(2, 128<<20)
}
