// Package bad is a unitcheck fixture: every bare literal here must
// trigger a diagnostic. It is parsed by the analyzer tests, never
// built.
package bad

type config struct {
	Memory    int64
	CacheSize int64
	TimeoutMs int64
}

// stage declares unit-bearing parameter names.
func stage(disk int, sizeBytes int64, nblocks int, timeoutMs int64) {}

func calls() {
	stage(0, 1048576, 4, 10)  // want "bare literal 1048576 flows into bytes parameter \"sizeBytes\""
	stage(0, 64, 1000000, 10) // want "bare literal 1000000 flows into blocks parameter \"nblocks\""
	stage(0, 64, 4, 5000)     // want "bare literal 5000 flows into milliseconds parameter \"timeoutMs\""
}

func literals() config {
	return config{
		Memory:    67108864, // want "bare literal 67108864 flows into bytes parameter \"Memory\""
		CacheSize: 16777216, // want "bare literal 16777216 flows into bytes parameter \"CacheSize\""
	}
}

func assigns(c *config) {
	c.Memory = 33554432 // want "bare literal 33554432 flows into bytes parameter \"Memory\""
	c.TimeoutMs = 30000 // want "bare literal 30000 flows into milliseconds parameter \"TimeoutMs\""
}
