// Package good is a unitcheck fixture: nothing here may trigger a
// diagnostic.
package good

type config struct {
	Memory    int64
	CacheSize int64
	TimeoutMs int64
	Streams   int
}

const mib = 1 << 20

func stage(disk int, sizeBytes int64, nblocks int, timeoutMs int64) {}

func calls() {
	stage(0, 64<<20, 4, 10)  // shifted expressions are composed, not bare
	stage(0, 8*mib, 4, 250)  // products of named constants are composed
	stage(0, 4096, 4, 999)   // below the per-unit thresholds
	stage(0, 0x100000, 4, 1) // hex reads as a deliberate bit pattern
}

func literals() config {
	return config{
		Memory:    64 << 20,
		CacheSize: 16 * mib,
		Streams:   100000, // no unit in the name: not checked
	}
}

func assigns(c *config) {
	c.Memory = 2 * mib
	c.TimeoutMs = 30_000 // underscore grouping marks a reviewed value
}

// allowEscape waives a deliberate raw byte count.
func allowEscape(c *config) {
	c.CacheSize = 67108864 //lint:allow unitcheck matches the vendor datasheet value
}
