package unitcheck

import (
	"strings"
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: bare large literals against unit-named call
// parameters, composite-literal fields, and field assignments are all
// reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/unitfixture", Analyzer)
}

// TestGoodFixture: composed expressions, sub-threshold values, hex,
// underscore grouping, unit-free names, and //lint:allow pass.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/unitfixture", Analyzer)
}

// TestCrossPackage: the parameter name is declared in another loaded
// package and resolved through the index.
func TestCrossPackage(t *testing.T) {
	lib, err := framework.ParseDirFiles("testdata/xpkg/lib",
		"seqstream/internal/analysis/unitcheck/testdata/xpkg/lib", []string{"lib.go"})
	if err != nil {
		t.Fatal(err)
	}
	caller, err := framework.ParseDirFiles("testdata/xpkg/caller",
		"seqstream/internal/analysis/unitcheck/testdata/xpkg/caller", []string{"caller.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{lib, caller}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, `bytes parameter "capacityBytes"`) {
		t.Fatalf("unexpected diagnostic: %s", diags[0])
	}
}

// TestNameClass pins the name heuristic.
func TestNameClass(t *testing.T) {
	cases := []struct {
		name string
		want string
	}{
		{"sizeBytes", "bytes"},
		{"Memory", "bytes"},
		{"CacheSize", "bytes"},
		{"readAhead", "bytes"},
		{"nblocks", "blocks"},
		{"RegionBlocks", "blocks"},
		{"timeoutMs", "milliseconds"},
		{"Streams", ""},
		{"disk", ""},
		{"count", ""},
	}
	for _, c := range cases {
		got := ""
		if cl := nameClass(c.name); cl != nil {
			got = cl.name
		}
		if got != c.want {
			t.Errorf("nameClass(%q) = %q, want %q", c.name, got, c.want)
		}
	}
}
