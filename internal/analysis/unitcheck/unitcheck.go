// Package unitcheck flags bare large integer literals flowing into
// parameters and fields whose names mark them as bytes, blocks, or
// milliseconds — the unit-confusion bug class internal/units exists to
// prevent. Writing 67108864 where 64<<20 (or units.MiB multiples) was
// meant is unreviewable; writing a block count where bytes are
// expected is a silent 512x error. The analyzer accepts any composed
// expression (64<<20, 8*units.MiB, time.Second) and only rejects bare
// decimal literals at or above the per-unit threshold.
package unitcheck

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"

	"seqstream/internal/analysis/framework"
)

// unitClass describes one recognized unit with its literal threshold:
// bare decimal literals >= threshold are suspicious for that unit.
type unitClass struct {
	name      string
	threshold int64
	hint      string
}

var (
	classBytes  = unitClass{"bytes", 1 << 16, "compose it (64<<20) or use units.KiB/MiB/GiB"}
	classBlocks = unitClass{"blocks", 1 << 16, "derive it from a byte size and the block size"}
	classMillis = unitClass{"milliseconds", 1000, "use a time.Duration expression instead"}
)

// nameClass maps a parameter or field name to the unit its name
// declares, or nil. Matching is deliberately conservative: exact
// well-known names plus unit-bearing suffixes.
func nameClass(name string) *unitClass {
	lower := strings.ToLower(name)
	switch {
	case strings.HasSuffix(lower, "bytes"),
		strings.HasSuffix(lower, "size"),
		strings.HasSuffix(lower, "sizes"),
		strings.HasSuffix(lower, "memory"),
		strings.HasSuffix(lower, "capacity"),
		strings.HasSuffix(lower, "readahead"),
		lower == "mem", lower == "length", lower == "len":
		return &classBytes
	case strings.HasSuffix(lower, "blocks"), lower == "nblocks":
		return &classBlocks
	case strings.HasSuffix(name, "Ms"), lower == "ms",
		strings.HasSuffix(lower, "millis"), strings.HasSuffix(lower, "milliseconds"):
		return &classMillis
	default:
		return nil
	}
}

// Analyzer is the unitcheck check.
var Analyzer = &framework.Analyzer{
	Name: "unitcheck",
	Doc: "flag bare large integer literals passed to parameters/fields " +
		"named as bytes, blocks, or milliseconds",
	Run: run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Pkg.Files {
		imports := framework.FileImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(pass, imports, n)
			case *ast.CompositeLit:
				checkCompositeLit(pass, n)
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

// bareLiteral returns the value of e when it is a bare decimal integer
// literal (not hex/octal/binary, no underscores, not part of an
// arithmetic expression — those are considered deliberately composed).
func bareLiteral(e ast.Expr) (int64, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.INT {
		return 0, false
	}
	if strings.ContainsAny(lit.Value, "_xXoObB") {
		return 0, false
	}
	v, err := strconv.ParseInt(lit.Value, 10, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

func report(pass *framework.Pass, pos token.Pos, v int64, name string, cl *unitClass) {
	pass.Reportf(pos, "bare literal %d flows into %s parameter %q; %s", v, cl.name, name, cl.hint)
}

// checkCall resolves the callee to a function declaration (same
// package by name, cross-package through the load index) and checks
// each bare-literal argument against the parameter name it binds to.
func checkCall(pass *framework.Pass, imports map[string]string, call *ast.CallExpr) {
	var fd *ast.FuncDecl
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fd = localFunc(pass.Pkg, fun.Name)
	case *ast.SelectorExpr:
		id, ok := fun.X.(*ast.Ident)
		if !ok {
			return
		}
		path, ok := imports[id.Name]
		if !ok {
			return
		}
		fd = pass.Index.FuncDecl(path, fun.Sel.Name)
	}
	if fd == nil || fd.Type.Params == nil {
		return
	}
	params := flattenParams(fd.Type.Params)
	for i, arg := range call.Args {
		if i >= len(params) {
			break // variadic tail or mismatch: stop rather than guess
		}
		v, ok := bareLiteral(arg)
		if !ok {
			continue
		}
		if cl := nameClass(params[i]); cl != nil && v >= cl.threshold {
			report(pass, arg.Pos(), v, params[i], cl)
		}
	}
}

// checkCompositeLit checks keyed literal fields (Config{Memory: N}).
func checkCompositeLit(pass *framework.Pass, lit *ast.CompositeLit) {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		v, ok := bareLiteral(kv.Value)
		if !ok {
			continue
		}
		if cl := nameClass(key.Name); cl != nil && v >= cl.threshold {
			report(pass, kv.Value.Pos(), v, key.Name, cl)
		}
	}
}

// checkAssign checks field assignments (cfg.Memory = N).
func checkAssign(pass *framework.Pass, as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok {
			continue
		}
		v, ok := bareLiteral(as.Rhs[i])
		if !ok {
			continue
		}
		if cl := nameClass(sel.Sel.Name); cl != nil && v >= cl.threshold {
			report(pass, as.Rhs[i].Pos(), v, sel.Sel.Name, cl)
		}
	}
}

// localFunc finds a top-level function declared in the package.
func localFunc(pkg *framework.Package, name string) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// flattenParams expands grouped parameters ("a, b int64") into an
// ordered name list.
func flattenParams(fields *ast.FieldList) []string {
	var out []string
	for _, f := range fields.List {
		if len(f.Names) == 0 {
			out = append(out, "")
			continue
		}
		for _, n := range f.Names {
			out = append(out, n.Name)
		}
	}
	return out
}
