package atomiccheck

import (
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: mixed atomic/plain access and lock-bearing copies
// are reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/core/atomicfixture", Analyzer)
}

// TestGoodFixture: consistent atomics, method-style types, pointer
// iteration, and //lint:allow pass.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/flight/atomicfixture", Analyzer)
}

// TestUngatedPackage: atomiccheck scopes itself to the concurrent
// packages.
func TestUngatedPackage(t *testing.T) {
	pkg, err := framework.ParseDirFiles("testdata/bad", "seqstream/internal/sim", []string{"bad.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ungated package reported %d diagnostics: %v", len(diags), diags)
	}
}
