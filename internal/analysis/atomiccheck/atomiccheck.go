// Package atomiccheck enforces atomics discipline in the concurrent
// packages. A struct field that is accessed through sync/atomic
// anywhere (atomic.LoadInt64(&s.n), atomic.AddInt64(&s.n, 1), ...)
// must be accessed that way everywhere: one plain read racing an
// atomic write is undefined behavior the race detector only catches
// when a test happens to interleave it. The check also flags by-value
// copies of structs containing atomics or sync primitives (mutexes,
// wait groups, ...) — a copied atomic silently forks the counter, a
// copied mutex silently forks the critical section.
//
// Method-style atomics (atomic.Int64 et al.) need no mixed-access
// check — the type system already prevents plain access — so only
// their copies are diagnosed. False positives (e.g. a plain read in a
// constructor before the value is shared) can be silenced with
// //lint:allow atomiccheck.
package atomiccheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"seqstream/internal/analysis/framework"
)

// GatedPackages lists the import-path prefixes the analyzer applies to.
var GatedPackages = []string{
	"seqstream/internal/core",
	"seqstream/internal/netserve",
	"seqstream/internal/flight",
	"seqstream/internal/bufpool",
	"seqstream/internal/obs",
	"seqstream/internal/health",
}

// Analyzer is the atomiccheck check.
var Analyzer = &framework.Analyzer{
	Name: "atomiccheck",
	Doc: "flag plain reads/writes of fields accessed via sync/atomic " +
		"elsewhere, and by-value copies of structs holding atomics or mutexes",
	NeedTypes: true,
	Run:       run,
}

func gated(path string) bool {
	for _, p := range GatedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !gated(pass.Pkg.Path) {
		return nil
	}
	info := pass.Pkg.Info

	// Pass 1 (package-wide): every field whose address feeds a
	// sync/atomic call is an atomic field; the selector nodes consumed
	// by those calls are exempt from the plain-access check.
	atomicFields := make(map[*types.Var]bool)
	consumed := make(map[*ast.SelectorExpr]bool)
	for _, f := range pass.Pkg.Files {
		imports := framework.FileImports(f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok || imports[pkgID.Name] != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				fsel, ok := un.X.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				if fv := fieldOf(info, fsel); fv != nil {
					atomicFields[fv] = true
					consumed[fsel] = true
				}
			}
			return true
		})
	}

	// Pass 2: plain accesses of atomic fields, and struct copies.
	for _, f := range pass.Pkg.Files {
		writes := writeTargets(f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if consumed[n] {
					return true
				}
				fv := fieldOf(info, n)
				if fv == nil || !atomicFields[fv] {
					return true
				}
				verb := "read"
				if writes[n] {
					verb = "write"
				}
				pass.Reportf(n.Pos(), "plain %s of %s: the field is accessed with sync/atomic elsewhere", verb, renderSel(n))
			case *ast.AssignStmt:
				checkAssignCopy(pass, info, n)
			case *ast.RangeStmt:
				if n.Value != nil {
					if tv, ok := info.Types[stripParens(n.X)]; ok {
						if elem := rangeElem(tv.Type); elem != nil {
							if name := noCopyIn(elem); name != "" {
								pass.Reportf(n.Value.Pos(), "range copies %s values by value; each copy forks its %s — iterate by index or over pointers", elem.String(), name)
							}
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// fieldOf resolves a selector to the struct field it names, or nil.
func fieldOf(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	if s, ok := info.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
		return nil
	}
	// Qualified identifiers (pkg.Var) land in Uses, not Selections.
	if v, ok := info.Uses[sel.Sel].(*types.Var); ok && v.IsField() {
		return v
	}
	return nil
}

// writeTargets marks selector expressions that are assignment or
// inc/dec targets, so reports can say read vs write.
func writeTargets(f *ast.File) map[*ast.SelectorExpr]bool {
	out := make(map[*ast.SelectorExpr]bool)
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if sel, ok := stripParens(lhs).(*ast.SelectorExpr); ok {
					out[sel] = true
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := stripParens(n.X).(*ast.SelectorExpr); ok {
				out[sel] = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if sel, ok := stripParens(n.X).(*ast.SelectorExpr); ok {
					out[sel] = true // address-taken: treat as a write
				}
			}
		}
		return true
	})
	return out
}

// checkAssignCopy flags `x = y` where y's type carries a no-copy
// component and y names an existing value (copying it). Composite
// literals and calls construct fresh values and pass.
func checkAssignCopy(pass *framework.Pass, info *types.Info, n *ast.AssignStmt) {
	if len(n.Lhs) != len(n.Rhs) {
		return
	}
	for i, rhs := range n.Rhs {
		src := stripParens(rhs)
		switch src.(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
		default:
			continue
		}
		if id, ok := src.(*ast.Ident); ok && (id.Name == "nil" || id.Name == "true" || id.Name == "false") {
			continue
		}
		tv, ok := info.Types[src]
		if !ok {
			continue
		}
		if name := noCopyIn(tv.Type); name != "" {
			pass.Reportf(n.Lhs[i].Pos(), "assignment copies a %s value containing %s; use a pointer", tv.Type.String(), name)
		}
	}
}

func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// rangeElem returns the by-value element type of a ranged expression,
// or nil when iteration does not copy (pointers, maps of pointers...).
func rangeElem(t types.Type) types.Type {
	switch t := t.Underlying().(type) {
	case *types.Slice:
		return t.Elem()
	case *types.Array:
		return t.Elem()
	case *types.Map:
		return t.Elem()
	case *types.Chan:
		return t.Elem()
	}
	return nil
}

// noCopyIn returns the name of a sync/atomic or sync primitive buried
// in t ("sync.Mutex", "atomic.Int64"), or "" when t copies safely.
func noCopyIn(t types.Type) string {
	return noCopy(t, make(map[types.Type]bool))
}

func noCopy(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "WaitGroup", "Once", "Cond", "Map", "Pool":
					return "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					return "atomic." + obj.Name()
				}
			}
		}
		return noCopy(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if name := noCopy(t.Field(i).Type(), seen); name != "" {
				return name
			}
		}
	case *types.Array:
		return noCopy(t.Elem(), seen)
	}
	return ""
}

// renderSel prints a selector for diagnostics ("s.count").
func renderSel(sel *ast.SelectorExpr) string {
	if id, ok := sel.X.(*ast.Ident); ok {
		return id.Name + "." + sel.Sel.Name
	}
	return sel.Sel.Name
}
