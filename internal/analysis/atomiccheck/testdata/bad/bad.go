// Fixture: atomics-discipline violations atomiccheck must catch.
package atomicfixture

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits  int64
	mu    sync.Mutex
	state int
}

type gauge struct {
	v atomic.Int64
}

// hits is atomic here...
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

// ...so plain accesses elsewhere race it.
func peek(c *counter) int64 {
	return c.hits // want "plain read of c.hits"
}

func reset(c *counter) {
	c.hits = 0 // want "plain write of c.hits"
}

// Copying the struct copies the mutex (and the atomic counter).
func clone(c *counter) counter {
	d := *c // want "containing sync.Mutex"
	return d
}

func copyField(g *gauge) gauge {
	out := *g // want "atomic.Int64"
	return out
}

// Ranging by value forks every element's mutex.
func sum(cs []counter) int {
	n := 0
	for _, c := range cs { // want "range copies"
		n += c.state
	}
	return n
}
