// Fixture: patterns atomiccheck must accept.
package atomicfixture

import (
	"sync"
	"sync/atomic"
)

type counter struct {
	hits int64
	mu   sync.Mutex
	cold int
}

type gauge struct {
	v atomic.Int64
}

type plain struct {
	a, b int
}

// Consistent atomic access everywhere is fine.
func bump(c *counter) {
	atomic.AddInt64(&c.hits, 1)
}

func read(c *counter) int64 {
	return atomic.LoadInt64(&c.hits)
}

// Fields never touched atomically are free to be plain.
func touchCold(c *counter) {
	c.mu.Lock()
	c.cold++
	c.mu.Unlock()
}

// Method-style atomics are safe by construction.
func methodStyle(g *gauge) int64 {
	g.v.Add(1)
	return g.v.Load()
}

// Pointers move freely; construction from a literal is not a copy.
func construct() *counter {
	c := counter{}
	return &c
}

func viaPointer(cs []*counter) int64 {
	var n int64
	for _, c := range cs {
		n += atomic.LoadInt64(&c.hits)
	}
	return n
}

// Plain structs copy freely.
func copyPlain(p plain) plain {
	q := p
	return q
}

// Ranging by index avoids the copy.
func sumByIndex(cs []counter) int64 {
	var n int64
	for i := range cs {
		n += atomic.LoadInt64(&cs[i].hits)
	}
	return n
}

// Suppression works for deliberate pre-publication access.
func freshInit() *counter {
	c := &counter{}
	c.hits = 1 //lint:allow atomiccheck value not shared yet
	return c
}
