package simdet

import (
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: every forbidden construct in a gated package is
// reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/sim/simdetfixture", Analyzer)
}

// TestGoodFixture: sentinel errors, blank assertions, model-owned
// clocks, and //lint:allow lines pass in a gated package.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/disk/simdetfixture", Analyzer)
}

// TestUngatedPackage: the same violations outside the gated package
// list produce no diagnostics (the analyzer scopes itself).
func TestUngatedPackage(t *testing.T) {
	pkg, err := framework.ParseDirFiles("testdata/bad", "seqstream/internal/experiments", []string{"bad.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ungated package reported %d diagnostics: %v", len(diags), diags)
	}
}

// TestGating pins the gate semantics: exact match and subpackages.
func TestGating(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"seqstream/internal/sim", true},
		{"seqstream/internal/sim/sub", true},
		{"seqstream/internal/simother", false},
		{"seqstream/internal/core", false},
		{"seqstream/internal/blockdev", true},
	}
	for _, c := range cases {
		if got := gated(c.path); got != c.want {
			t.Errorf("gated(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}
