// Package simdet checks that the discrete-event simulation packages
// stay deterministic: every §3 sweep is reproducible only if no model
// reads the wall clock, global randomness, or the process environment,
// and keeps no mutable package-level state. Violations inside the
// gated packages are reported; the real-clock shims in
// internal/blockdev opt out per line with `//lint:allow simdet`.
package simdet

import (
	"go/ast"
	"go/token"
	"strings"

	"seqstream/internal/analysis/framework"
)

// GatedPackages lists the import-path prefixes the analyzer applies
// to. A package is gated when its path equals a prefix or sits below
// it.
var GatedPackages = []string{
	"seqstream/internal/sim",
	"seqstream/internal/disk",
	"seqstream/internal/controller",
	"seqstream/internal/bus",
	"seqstream/internal/geom",
	"seqstream/internal/workload",
	"seqstream/internal/blockdev",
	// obs is deliberately clock-free (SpanLog takes an injected `now`
	// func), so simulation code can instrument without breaking
	// determinism; gate it to keep it that way.
	"seqstream/internal/obs",
	// flight records inside the simulation too: its Recorder takes an
	// injected `now` func, so the same discipline applies.
	"seqstream/internal/flight",
	// health runs over an injected blockdev.Clock so the engine ticks
	// deterministically under virtual time; keep wall clocks out.
	"seqstream/internal/health",
}

// forbiddenCalls maps import path -> function name -> the suggested
// replacement named in the diagnostic.
var forbiddenCalls = map[string]map[string]string{
	"time": {
		"Now":       "the engine clock (sim.Engine.Now)",
		"Since":     "engine-clock arithmetic",
		"Until":     "engine-clock arithmetic",
		"Sleep":     "sim.Engine.Schedule",
		"After":     "sim.Engine.Schedule",
		"Tick":      "sim.Engine.Schedule",
		"NewTimer":  "sim.Engine.Schedule",
		"NewTicker": "sim.Engine.Schedule",
		"AfterFunc": "sim.Engine.Schedule",
	},
	"os": {
		"Getenv":    "explicit configuration",
		"LookupEnv": "explicit configuration",
		"Environ":   "explicit configuration",
	},
}

// forbiddenImports are packages whose mere import breaks seeded
// reproducibility (global generator state).
var forbiddenImports = map[string]string{
	"math/rand":    "sim.Rand (seeded, per-model)",
	"math/rand/v2": "sim.Rand (seeded, per-model)",
}

// Analyzer is the simdet check.
var Analyzer = &framework.Analyzer{
	Name: "simdet",
	Doc: "forbid wall-clock time, global randomness, environment reads, " +
		"and package-level mutable state in the simulation packages",
	Run: run,
}

func gated(path string) bool {
	for _, p := range GatedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !gated(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		imports := framework.FileImports(f)
		checkImports(pass, f)
		checkPackageVars(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			path, ok := imports[id.Name]
			if !ok {
				return true
			}
			if repl, bad := forbiddenCalls[path][sel.Sel.Name]; bad {
				pass.Reportf(call.Pos(), "%s.%s breaks simulation determinism; use %s",
					path, sel.Sel.Name, repl)
			}
			return true
		})
	}
	return nil
}

func checkImports(pass *framework.Pass, f *ast.File) {
	for _, im := range f.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		if repl, bad := forbiddenImports[path]; bad {
			pass.Reportf(im.Pos(), "import of %s breaks simulation determinism; use %s", path, repl)
		}
	}
}

// checkPackageVars flags package-level var declarations: shared
// mutable state makes results depend on call order across models.
// Immutable sentinel errors (var ErrX = errors.New/fmt.Errorf) and
// blank compile-time assertions (var _ Iface = ...) are allowed.
func checkPackageVars(pass *framework.Pass, f *ast.File) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || allowedVarSpec(vs) {
				continue
			}
			names := make([]string, len(vs.Names))
			for i, n := range vs.Names {
				names[i] = n.Name
			}
			pass.Reportf(vs.Pos(), "package-level mutable state (var %s) breaks simulation determinism; "+
				"keep model state inside the struct that owns it", strings.Join(names, ", "))
		}
	}
}

func allowedVarSpec(vs *ast.ValueSpec) bool {
	for i, name := range vs.Names {
		if name.Name == "_" {
			continue
		}
		if !strings.HasPrefix(name.Name, "Err") && !strings.HasPrefix(name.Name, "err") {
			return false
		}
		if i >= len(vs.Values) || !isErrorCtor(vs.Values[i]) {
			return false
		}
	}
	return true
}

// isErrorCtor reports whether e is errors.New(...) or fmt.Errorf(...).
func isErrorCtor(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (id.Name == "errors" && sel.Sel.Name == "New") ||
		(id.Name == "fmt" && sel.Sel.Name == "Errorf")
}
