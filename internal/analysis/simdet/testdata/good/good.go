// Package good is a simdet fixture: nothing here may trigger a
// diagnostic even though the package is gated.
package good

import (
	"errors"
	"fmt"
	"time"
)

// Sentinel errors are immutable and allowed at package level.
var ErrBad = errors.New("good: bad")

var errWrapped = fmt.Errorf("good: %w", ErrBad)

// Blank compile-time assertions are allowed.
var _ interface{ Now() time.Duration } = (*clock)(nil)

type clock struct{ now time.Duration }

// Now uses model-owned time, not the wall clock.
func (c *clock) Now() time.Duration { return c.now }

// Advance moves the model clock; time.Duration arithmetic is fine.
func (c *clock) Advance(d time.Duration) { c.now += d }

// escapeHatch shows the per-line opt-out for real-clock shims.
func escapeHatch() time.Time {
	return time.Now() //lint:allow simdet real-clock shim fixture
}
