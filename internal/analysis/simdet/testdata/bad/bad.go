// Package bad is a simdet fixture: every construct here must trigger
// a diagnostic. It is parsed by the analyzer tests, never built.
package bad

import (
	"math/rand" // want "import of math/rand breaks simulation determinism"
	"os"
	"time"
)

var counter int // want "package-level mutable state"

var lookup = map[string]int{} // want "package-level mutable state"

func model() time.Duration {
	start := time.Now()          // want "time.Now breaks simulation determinism"
	time.Sleep(time.Millisecond) // want "time.Sleep breaks simulation determinism"
	if os.Getenv("SEED") != "" { // want "os.Getenv breaks simulation determinism"
		counter = rand.Int()
	}
	return time.Since(start) // want "time.Since breaks simulation determinism"
}

func timers(fn func()) {
	time.AfterFunc(time.Second, fn) // want "time.AfterFunc breaks simulation determinism"
}
