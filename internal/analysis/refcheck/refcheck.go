// Package refcheck proves bufpool reference-count discipline
// intra-procedurally: every path from a `pool.Get` (or `v.Retain`)
// that makes a local variable own a `*bufpool.Buf` reference must
// reach exactly one `Release` or one explicit ownership transfer —
// returning the buffer, sending it on a channel, storing it into a
// struct field or map, or passing it to a call site annotated
// `//lint:owns`. Missing releases (leaks), second releases, and uses
// after a release or transfer are reported.
//
// The analysis is deliberately local and conservative: variables that
// escape its model — captured by a closure, address-taken, aliased
// into another variable, or handed to `go`/`defer` calls it does not
// understand — are silently untracked rather than guessed at. Borrowed
// references (parameters, plain call arguments) carry no obligation;
// a callee that takes ownership is marked at the call site:
//
//	srv.deliver(b) //lint:owns deliver releases after write
//
// False positives can be silenced with //lint:allow refcheck.
package refcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"seqstream/internal/analysis/framework"
)

// GatedPackages lists the import-path prefixes the analyzer applies to.
var GatedPackages = []string{
	"seqstream/internal/core",
	"seqstream/internal/bufpool",
	"seqstream/internal/netserve",
}

// Analyzer is the refcheck check.
var Analyzer = &framework.Analyzer{
	Name: "refcheck",
	Doc: "track *bufpool.Buf ownership per path: a Get/Retain must reach " +
		"exactly one Release or ownership transfer",
	NeedTypes: true,
	Run:       run,
}

func gated(path string) bool {
	for _, p := range GatedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !gated(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		owns := ownsLines(pass, f)
		// Every function body — declarations and literals — is an
		// independent flow. A literal's body is skipped while analyzing
		// its enclosing function (closures untrack what they capture).
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				analyzeBody(pass, fd.Body, owns)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzeBody(pass, fl.Body, owns)
			}
			return true
		})
	}
	return nil
}

// ownsLines collects the file lines carrying a //lint:owns marker. A
// marker covers its own line and the line below, like //lint:allow.
func ownsLines(pass *framework.Pass, f *ast.File) map[int]bool {
	out := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if text == "lint:owns" || strings.HasPrefix(text, "lint:owns ") {
				out[pass.Fset().Position(c.Pos()).Line] = true
			}
		}
	}
	return out
}

// isBufPtr reports whether t is *bufpool.Buf.
func isBufPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Buf" && obj.Pkg() != nil && obj.Pkg().Name() == "bufpool"
}

// Ownership states of one tracked variable on one path.
const (
	stNone     = iota // no obligation (untracked, nil, or mixed paths)
	stOwned           // holds a reference this function must resolve
	stReleased        // reference given back to the pool
	stMoved           // ownership transferred out of the function
)

// Per-occurrence actions resolved during classification; idents
// without an entry are plain uses.
const (
	actUse = iota
	actOrigin
	actRetain
	actRelease
	actTransfer
	actClear // v = nil
	actSkip  // nil comparison, defer-Release receiver: no effect
)

type funcAnalysis struct {
	pass *framework.Pass
	owns map[int]bool
	body *ast.BlockStmt

	// tracked maps the variables under analysis to the position of
	// their first origin (for leak reports).
	tracked map[*types.Var]token.Pos
	// deferRelease holds variables resolved by a `defer v.Release()`;
	// an owned state at exit is not a leak for them.
	deferRelease map[*types.Var]bool

	cfg      *framework.CFG
	reported map[string]bool
}

func analyzeBody(pass *framework.Pass, body *ast.BlockStmt, owns map[int]bool) {
	a := &funcAnalysis{
		pass:         pass,
		owns:         owns,
		body:         body,
		tracked:      make(map[*types.Var]token.Pos),
		deferRelease: make(map[*types.Var]bool),
		reported:     make(map[string]bool),
	}
	a.prescan()
	if len(a.tracked) == 0 {
		return
	}
	a.cfg = framework.NewCFG(body)
	a.solve()
}

// walkLocal visits the body's nodes without descending into nested
// function literals (their bodies are separate flows).
func walkLocal(n ast.Node, fn func(ast.Node) bool) {
	ast.Inspect(n, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// obj resolves an expression to the local variable it names, if any.
func (a *funcAnalysis) obj(e ast.Expr) *types.Var {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	info := a.pass.Pkg.Info
	o := info.Uses[id]
	if o == nil {
		o = info.Defs[id]
	}
	v, ok := o.(*types.Var)
	if !ok || v.IsField() {
		return nil
	}
	return v
}

// prescan selects the variables to track: locals of type *bufpool.Buf
// defined in this body with at least one origin (a Get-style call
// assignment or a Retain), excluding anything that escapes the local
// model — captured by a closure, address-taken, aliased, or passed to
// go/defer calls other than `defer v.Release()`.
func (a *funcAnalysis) prescan() {
	info := a.pass.Pkg.Info
	defined := make(map[*types.Var]bool)
	walkLocal(a.body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok && !v.IsField() && isBufPtr(v.Type()) {
				defined[v] = true
			}
		}
		return true
	})
	if len(defined) == 0 {
		return
	}

	disqualify := func(e ast.Expr) {
		if v := a.obj(e); v != nil {
			delete(defined, v)
		}
	}
	// Closures untrack captures: any tracked ident inside a FuncLit.
	ast.Inspect(a.body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if v, ok := info.Uses[id].(*types.Var); ok {
					delete(defined, v)
				}
			}
			return true
		})
		return false
	})
	walkLocal(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				disqualify(n.X)
			}
		case *ast.AssignStmt:
			// Aliasing (w := v) unlinks the source; a tracked LHS
			// assigned anything but an origin call or nil unlinks too.
			for i, rhs := range n.Rhs {
				if len(n.Lhs) == len(n.Rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						disqualify(rhs)
					}
					if a.obj(n.Lhs[i]) != nil && !isOriginRHS(info, rhs) {
						disqualify(n.Lhs[i])
					}
				}
			}
			if len(n.Lhs) > 1 && len(n.Rhs) == 1 {
				if _, isCall := n.Rhs[0].(*ast.CallExpr); !isCall {
					for _, lhs := range n.Lhs {
						disqualify(lhs)
					}
				}
			}
		case *ast.GoStmt:
			for _, arg := range n.Call.Args {
				disqualify(arg)
			}
		case *ast.DeferStmt:
			if v, method := a.recvCall(n.Call); v != nil && method == "Release" {
				a.deferRelease[v] = true
				return true
			}
			for _, arg := range n.Call.Args {
				disqualify(arg)
			}
		case *ast.RangeStmt:
			// for _, v := range bufs: v is a container alias.
			disqualify(n.Key)
			disqualify(n.Value)
		}
		return true
	})

	// Keep only variables with an origin, remembering where.
	walkLocal(a.body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				v := a.obj(lhs)
				if v == nil || !defined[v] {
					continue
				}
				var rhs ast.Expr
				if len(n.Lhs) == len(n.Rhs) {
					rhs = n.Rhs[i]
				} else if len(n.Rhs) == 1 {
					rhs = n.Rhs[0]
				}
				if rhs != nil && isOriginRHS(info, rhs) {
					if _, ok := a.tracked[v]; !ok {
						a.tracked[v] = lhs.Pos()
					}
				}
			}
		case *ast.CallExpr:
			if v, method := a.recvCall(n); v != nil && defined[v] && method == "Retain" {
				if _, ok := a.tracked[v]; !ok {
					a.tracked[v] = n.Pos()
				}
			}
		}
		return true
	})
	for v := range a.deferRelease {
		if _, ok := a.tracked[v]; !ok {
			delete(a.deferRelease, v)
		}
	}
}

// isOriginRHS reports whether rhs creates an owned reference when
// assigned: a call producing *bufpool.Buf (possibly in a tuple), or
// nil (which only resets state).
func isOriginRHS(info *types.Info, rhs ast.Expr) bool {
	if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
		return true
	}
	call, ok := rhs.(*ast.CallExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ast.Expr(call)]
	if !ok {
		return false
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isBufPtr(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isBufPtr(tv.Type)
}

// recvCall matches `v.Method()` on a tracked-shaped receiver ident.
func (a *funcAnalysis) recvCall(call *ast.CallExpr) (*types.Var, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	v := a.obj(sel.X)
	if v == nil || !isBufPtr(v.Type()) {
		return nil, ""
	}
	return v, sel.Sel.Name
}

type flowState map[*types.Var]int

func (st flowState) clone() flowState {
	out := make(flowState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

func (st flowState) equal(other flowState) bool {
	if len(st) != len(other) {
		return false
	}
	for k, v := range st {
		if other[k] != v {
			return false
		}
	}
	return true
}

// merge joins predecessor states: agreement keeps the state, any
// OWNED path keeps the obligation alive (so the leak surfaces at
// exit), and other disagreements go quiet (NONE) rather than guess.
func merge(states []flowState, vars []*types.Var) flowState {
	out := make(flowState, len(vars))
	for _, v := range vars {
		first, agree := 0, true
		for i, st := range states {
			s := st[v]
			if i == 0 {
				first = s
			} else if s != first {
				agree = false
			}
		}
		if agree {
			out[v] = first
			continue
		}
		owned := false
		for _, st := range states {
			if st[v] == stOwned {
				owned = true
			}
		}
		if owned {
			out[v] = stOwned
		} else {
			out[v] = stNone
		}
	}
	return out
}

// solve runs the fixpoint over the CFG, then one reporting pass.
func (a *funcAnalysis) solve() {
	vars := make([]*types.Var, 0, len(a.tracked))
	for v := range a.tracked {
		vars = append(vars, v)
	}
	blocks := a.cfg.Blocks
	preds := make(map[*framework.Block][]*framework.Block)
	for _, b := range blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := make(map[*framework.Block]flowState, len(blocks))
	for _, b := range blocks {
		in[b] = make(flowState)
	}
	changed := true
	for rounds := 0; changed && rounds < 4*len(blocks)+8; rounds++ {
		changed = false
		for _, b := range blocks {
			var st flowState
			if ps := preds[b]; len(ps) == 0 {
				st = make(flowState)
			} else {
				states := make([]flowState, 0, len(ps))
				for _, p := range ps {
					states = append(states, a.apply(p, in[p], false))
				}
				st = merge(states, vars)
			}
			if !st.equal(in[b]) {
				in[b] = st
				changed = true
			}
		}
	}
	// Report pass: walk each block once from its solved entry state.
	for _, b := range blocks {
		a.apply(b, in[b], true)
	}
	for v, st := range in[a.cfg.Exit] {
		if st == stOwned && !a.deferRelease[v] {
			a.reportf(a.tracked[v], "%s: buffer obtained here is not released on every path (missing Release or ownership transfer)", v.Name())
		}
	}
}

func (a *funcAnalysis) reportf(pos token.Pos, format string, args ...any) {
	p := a.pass.Fset().Position(pos)
	key := p.String() + format
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, format, args...)
}

// apply runs one block's transfer function from state st. With report
// set it emits diagnostics; the fixpoint runs it silently.
func (a *funcAnalysis) apply(b *framework.Block, st flowState, report bool) flowState {
	st = st.clone()
	for _, n := range b.Nodes {
		actions := a.classify(n)
		walkLocal(n, func(nd ast.Node) bool {
			id, ok := nd.(*ast.Ident)
			if !ok {
				return true
			}
			v := a.obj(id)
			if v == nil {
				return true
			}
			if _, ok := a.tracked[v]; !ok {
				return true
			}
			act := actions[id]
			cur := st[v]
			switch act {
			case actSkip:
			case actOrigin:
				if cur == stOwned && report {
					a.reportf(id.Pos(), "%s reassigned while owning a buffer: previous reference leaks", v.Name())
				}
				st[v] = stOwned
			case actClear:
				if cur == stOwned && report {
					a.reportf(id.Pos(), "%s set to nil while owning a buffer: reference leaks", v.Name())
				}
				st[v] = stNone
			case actRetain:
				// Retaining a moved reference is how code keeps using a
				// buffer it stored: a fresh obligation starts here.
				if cur == stReleased && report {
					a.reportf(id.Pos(), "use of %s after Release", v.Name())
				}
				st[v] = stOwned
			case actRelease:
				switch cur {
				case stOwned:
					st[v] = stReleased
				case stReleased:
					if report {
						a.reportf(id.Pos(), "second Release of %s: already released on this path", v.Name())
					}
				case stMoved:
					if report {
						a.reportf(id.Pos(), "Release of %s after ownership transfer", v.Name())
					}
				}
			case actTransfer:
				switch cur {
				case stOwned:
					st[v] = stMoved
				case stReleased:
					if report {
						a.reportf(id.Pos(), "use of %s after Release", v.Name())
					}
				case stMoved:
					if report {
						a.reportf(id.Pos(), "second ownership transfer of %s: reference was already moved", v.Name())
					}
				}
			default:
				// Plain reads stay legal after a transfer (the reference
				// is stored, not freed) but not after a Release.
				if cur == stReleased && report {
					a.reportf(id.Pos(), "use of %s after Release", v.Name())
				}
			}
			return true
		})
	}
	return st
}

// classify resolves the special ident occurrences of one CFG node:
// origins, releases, retains, transfers, nil-resets, and no-op
// positions (nil comparisons, defer receivers).
func (a *funcAnalysis) classify(n ast.Node) map[*ast.Ident]int {
	actions := make(map[*ast.Ident]int)
	mark := func(e ast.Expr, act int) {
		if id, ok := e.(*ast.Ident); ok {
			if v := a.obj(id); v != nil {
				if _, tracked := a.tracked[v]; tracked {
					actions[id] = act
				}
			}
		}
	}
	line := func(pos token.Pos) int { return a.pass.Fset().Position(pos).Line }

	switch s := n.(type) {
	case *ast.AssignStmt:
		for i, lhs := range s.Lhs {
			var rhs ast.Expr
			if len(s.Lhs) == len(s.Rhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			if rhs == nil {
				continue
			}
			if a.obj(lhs) != nil {
				if id, ok := rhs.(*ast.Ident); ok && id.Name == "nil" {
					mark(lhs, actClear)
				} else if isOriginRHS(a.pass.Pkg.Info, rhs) {
					mark(lhs, actOrigin)
				}
				continue
			}
			// Store into a field, map, or slice element transfers the
			// reference out of the local frame.
			switch lhs.(type) {
			case *ast.SelectorExpr, *ast.IndexExpr:
				mark(rhs, actTransfer)
			}
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			mark(r, actTransfer)
		}
	case *ast.SendStmt:
		mark(s.Value, actTransfer)
	case *ast.DeferStmt:
		// `defer v.Release()` was folded into the exit check; the
		// receiver occurrence itself must not count as a use.
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Release" {
			mark(sel.X, actSkip)
		}
	}

	walkLocal(n, func(nd ast.Node) bool {
		switch nd := nd.(type) {
		case *ast.CallExpr:
			if sel, ok := nd.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Release":
					if _, marked := actions[selIdent(sel.X)]; !marked {
						mark(sel.X, actRelease)
					}
				case "Retain":
					mark(sel.X, actRetain)
				}
			}
			l := line(nd.Pos())
			if a.owns[l] || a.owns[l-1] {
				for _, arg := range nd.Args {
					mark(arg, actTransfer)
				}
			}
		case *ast.BinaryExpr:
			// Comparing against nil reads nothing through the pointer:
			// guard checks after a release/transfer stay legal.
			if nd.Op == token.EQL || nd.Op == token.NEQ {
				if isNil(nd.X) {
					mark(nd.Y, actSkip)
				}
				if isNil(nd.Y) {
					mark(nd.X, actSkip)
				}
			}
		}
		return true
	})
	return actions
}

func selIdent(e ast.Expr) *ast.Ident {
	id, _ := e.(*ast.Ident)
	return id
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}
