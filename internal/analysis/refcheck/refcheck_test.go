package refcheck

import (
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: leaks, double releases, use-after-release, and
// double transfers are reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/core/reffixture", Analyzer)
}

// TestGoodFixture: releases, defers, every transfer form, borrows,
// closures, and //lint:allow pass.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/core/reffixture", Analyzer)
}

// TestUngatedPackage: refcheck scopes itself to the buffer-handling
// packages.
func TestUngatedPackage(t *testing.T) {
	pkg, err := framework.ParseDirFiles("testdata/bad", "seqstream/internal/sim", []string{"bad.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ungated package reported %d diagnostics: %v", len(diags), diags)
	}
}
