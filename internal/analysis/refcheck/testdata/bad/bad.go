// Fixture: ownership violations refcheck must catch.
package reffixture

import "seqstream/internal/bufpool"

type holder struct {
	buf *bufpool.Buf
}

// An early return skips the release: the reference leaks.
func earlyReturnLeak(p *bufpool.Pool, fail bool) *bufpool.Buf {
	b := p.Get(64) // want "not released on every path"
	if fail {
		return nil
	}
	return b
}

// No path releases at all.
func plainLeak(p *bufpool.Pool) int {
	b := p.Get(64) // want "not released on every path"
	return len(b.Data)
}

// The same reference released twice corrupts the refcount.
func doubleRelease(p *bufpool.Pool) {
	b := p.Get(64)
	b.Release()
	b.Release() // want "second Release of b"
}

// Reading through the pointer after Release races the pool's reuse.
func useAfterRelease(p *bufpool.Pool) int {
	b := p.Get(64)
	b.Release()
	return len(b.Data) // want "use of b after Release"
}

// Releasing after the reference was sent away releases the receiver's
// reference.
func releaseAfterSend(p *bufpool.Pool, ch chan *bufpool.Buf) {
	b := p.Get(64)
	ch <- b
	b.Release() // want "Release of b after ownership transfer"
}

// Transferring the same reference twice hands out one refcount two
// ways.
func doubleTransfer(p *bufpool.Pool, h *holder, ch chan *bufpool.Buf) {
	b := p.Get(64)
	h.buf = b
	ch <- b // want "second ownership transfer of b"
}

// Overwriting an owned reference drops it without a Release.
func reassignLeak(p *bufpool.Pool) {
	b := p.Get(64)
	b = p.Get(128) // want "reassigned while owning"
	b.Release()
}

// Nil-ing out an owned reference drops it without a Release.
func nilLeak(p *bufpool.Pool) {
	b := p.Get(64)
	b = nil // want "set to nil while owning"
	if b == nil {
		return
	}
}
