// Fixture: ownership patterns refcheck must accept.
package reffixture

import "seqstream/internal/bufpool"

type holder struct {
	buf *bufpool.Buf
}

// Straight-line get and release.
func getRelease(p *bufpool.Pool) {
	b := p.Get(64)
	_ = b.Data
	b.Release()
}

// Deferred release covers every path.
func deferRelease(p *bufpool.Pool, fail bool) int {
	b := p.Get(64)
	defer b.Release()
	if fail {
		return 0
	}
	return len(b.Data)
}

// Error path releases; success path transfers ownership by returning.
func getOrReturn(p *bufpool.Pool, fail bool) *bufpool.Buf {
	b := p.Get(64)
	if fail {
		b.Release()
		return nil
	}
	return b
}

// Storing into a struct field transfers ownership; reading through the
// moved reference afterwards is fine (nothing was freed).
func stash(p *bufpool.Pool, h *holder) int {
	b := p.Get(64)
	h.buf = b
	return len(b.Data)
}

// Sending on a channel transfers ownership.
func send(p *bufpool.Pool, ch chan *bufpool.Buf) {
	b := p.Get(64)
	ch <- b
}

// An annotated call site takes ownership.
func handoff(p *bufpool.Pool) {
	b := p.Get(64)
	consume(b) //lint:owns consume releases when done
}

func consume(b *bufpool.Buf) {
	b.Release()
}

// Plain calls borrow: the caller keeps the release obligation.
func borrow(p *bufpool.Pool) {
	b := p.Get(64)
	inspect(b)
	b.Release()
}

func inspect(b *bufpool.Buf) { _ = b.Data }

// Each loop iteration resolves its own reference.
func loopGetRelease(p *bufpool.Pool) {
	for i := 0; i < 4; i++ {
		b := p.Get(32)
		b.Release()
	}
}

// Retaining a stored reference starts a fresh obligation, resolved
// below.
func retainUse(p *bufpool.Pool, h *holder) {
	b := p.Get(64)
	h.buf = b
	b.Retain()
	b.Release()
}

// A nil comparison after the flow resolved the reference reads nothing
// through the pointer.
func nilGuard(p *bufpool.Pool) bool {
	b := p.Get(64)
	b.Release()
	return b != nil
}

// Closures take captured buffers out of the local model.
func captured(p *bufpool.Pool, run func(func())) {
	b := p.Get(64)
	run(func() { b.Release() })
}

// Suppression: leaks silenced with //lint:allow stay silent.
func allowed(p *bufpool.Pool) *holder {
	b := p.Get(64) //lint:allow refcheck ownership tracked by the holder's close path
	return &holder{buf: b}
}
