package framework

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of a function body. Nodes holds the
// statements executed in order, plus the condition/range expressions
// evaluated on the way out of the block (so flow analyses see every
// expression evaluation exactly where it happens). Succs are the
// possible next blocks.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is an intra-procedural control-flow graph over one function
// body. It is approximate in the ways a lint-grade analysis tolerates:
// goto is modeled as an exit, a call to panic terminates its block,
// and function literals are opaque (analyze their bodies as separate
// functions). Entry is the first block; Exit is a virtual empty block
// every return (and the fall-off-the-end path) feeds into.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// NewCFG builds the control-flow graph of one function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: make(map[string]cfgLabel)}
	b.cfg.Entry = b.newBlock()
	b.cfg.Exit = b.newBlock()
	b.cur = b.cfg.Entry
	b.stmts(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

// cfgLabel records the break/continue targets of a labeled construct.
type cfgLabel struct {
	brk, cont *Block
}

type cfgBuilder struct {
	cfg *CFG
	// cur is the block under construction; nil after a terminator
	// (return, break, ...), in which case subsequent statements start a
	// fresh unreachable block.
	cur *Block
	// brks/conts are the innermost-last break/continue targets.
	brks, conts []*Block
	// labels maps label names to their targets; pendingLabel carries a
	// label to the construct it prefixes.
	labels       map[string]cfgLabel
	pendingLabel string
	// nextCase is the following case block while building a switch, the
	// target of fallthrough.
	nextCase *Block
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.cfg.Blocks)}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// block returns the block under construction, starting an unreachable
// one after a terminator so dead code is still analyzed (and does not
// crash the walker).
func (b *cfgBuilder) block() *Block {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	return b.cur
}

func (b *cfgBuilder) add(n ast.Node) {
	if n == nil {
		return
	}
	blk := b.block()
	blk.Nodes = append(blk.Nodes, n)
}

func (b *cfgBuilder) stmts(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label (if any), registering the given
// targets under it.
func (b *cfgBuilder) takeLabel(brk, cont *Block) string {
	name := b.pendingLabel
	b.pendingLabel = ""
	if name != "" {
		b.labels[name] = cfgLabel{brk: brk, cont: cont}
	}
	return name
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmts(s.List)

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Cond)
		cond := b.block()
		thenB := b.newBlock()
		b.edge(cond, thenB)
		b.cur = thenB
		b.stmts(s.Body.List)
		thenEnd := b.cur
		elseEnd := cond // no else: flow falls through the condition
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cond, elseB)
			b.cur = elseB
			b.stmt(s.Else)
			elseEnd = b.cur
		}
		if thenEnd == nil && elseEnd == nil {
			b.cur = nil
			return
		}
		join := b.newBlock()
		if thenEnd != nil {
			b.edge(thenEnd, join)
		}
		if elseEnd != nil {
			b.edge(elseEnd, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		head := b.newBlock()
		b.edge(b.block(), head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		exit := b.newBlock()
		if s.Cond != nil {
			b.edge(head, exit)
		}
		contTarget := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock()
			contTarget = post
		}
		name := b.takeLabel(exit, contTarget)
		b.brks, b.conts = append(b.brks, exit), append(b.conts, contTarget)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, contTarget)
		}
		if post != nil {
			b.cur = post
			b.stmt(s.Post)
			b.edge(b.block(), head)
		}
		b.brks, b.conts = b.brks[:len(b.brks)-1], b.conts[:len(b.conts)-1]
		delete(b.labels, name)
		b.cur = exit

	case *ast.RangeStmt:
		b.add(s.X)
		head := b.newBlock()
		b.edge(b.block(), head)
		exit := b.newBlock()
		b.edge(head, exit) // the range may be empty
		name := b.takeLabel(exit, head)
		b.brks, b.conts = append(b.brks, exit), append(b.conts, head)
		body := b.newBlock()
		b.edge(head, body)
		b.cur = body
		b.stmts(s.Body.List)
		if b.cur != nil {
			b.edge(b.cur, head)
		}
		b.brks, b.conts = b.brks[:len(b.brks)-1], b.conts[:len(b.conts)-1]
		delete(b.labels, name)
		b.cur = exit

	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		b.switchLike(s)

	case *ast.ReturnStmt:
		b.add(s)
		b.edge(b.block(), b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			target := b.cfg.Exit
			if s.Label != nil {
				if l, ok := b.labels[s.Label.Name]; ok && l.brk != nil {
					target = l.brk
				}
			} else if len(b.brks) > 0 {
				target = b.brks[len(b.brks)-1]
			}
			b.edge(b.block(), target)
		case token.CONTINUE:
			target := b.cfg.Exit
			if s.Label != nil {
				if l, ok := b.labels[s.Label.Name]; ok && l.cont != nil {
					target = l.cont
				}
			} else if len(b.conts) > 0 {
				target = b.conts[len(b.conts)-1]
			}
			b.edge(b.block(), target)
		case token.FALLTHROUGH:
			if b.nextCase != nil {
				b.edge(b.block(), b.nextCase)
			}
		case token.GOTO:
			// Approximation: goto leaves the analysis. The repo's style
			// has no gotos; a flow that uses one simply under-reports.
			b.edge(b.block(), b.cfg.Exit)
		}
		b.cur = nil

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.edge(b.block(), b.cfg.Exit)
				b.cur = nil
			}
		}

	default:
		// Assignments, declarations, sends, defers, go, inc/dec, empty:
		// straight-line.
		b.add(s)
	}
}

// switchLike builds switch/type-switch/select: a head evaluating the
// init/tag, one block per clause, all joining at a common exit (which
// is also the break target).
func (b *cfgBuilder) switchLike(s ast.Stmt) {
	var clauses []ast.Stmt
	hasDefault := false
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Tag)
		clauses = s.Body.List
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.stmt(s.Init)
		}
		b.add(s.Assign)
		clauses = s.Body.List
	case *ast.SelectStmt:
		clauses = s.Body.List
	}
	head := b.block()
	exit := b.newBlock()
	name := b.takeLabel(exit, nil)
	b.brks = append(b.brks, exit)

	// Pre-create the case blocks so fallthrough can target the next one.
	blocks := make([]*Block, len(clauses))
	for i := range clauses {
		blocks[i] = b.newBlock()
		b.edge(head, blocks[i])
	}
	savedNext := b.nextCase
	for i, cl := range clauses {
		b.nextCase = nil
		if i+1 < len(blocks) {
			b.nextCase = blocks[i+1]
		}
		b.cur = blocks[i]
		switch cl := cl.(type) {
		case *ast.CaseClause:
			if cl.List == nil {
				hasDefault = true
			}
			for _, e := range cl.List {
				b.add(e)
			}
			b.stmts(cl.Body)
		case *ast.CommClause:
			if cl.Comm == nil {
				hasDefault = true
			} else {
				b.stmt(cl.Comm)
			}
			b.stmts(cl.Body)
		}
		if b.cur != nil {
			b.edge(b.cur, exit)
		}
	}
	b.nextCase = savedNext

	// A switch with no default may match nothing; a select without a
	// default always takes some case (or blocks forever — same thing
	// for flow purposes).
	if _, isSelect := s.(*ast.SelectStmt); !hasDefault && (!isSelect || len(clauses) == 0) {
		b.edge(head, exit)
	}
	b.brks = b.brks[:len(b.brks)-1]
	delete(b.labels, name)
	b.cur = exit
}
