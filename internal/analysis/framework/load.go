package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"io"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// Load resolves the given package patterns (e.g. "./...") with the go
// command and parses every non-test source file, comments included.
// Test files are excluded on purpose: the analyzers gate production
// code, and fixtures with deliberate violations live in testdata.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("framework: %w", err)
	}
	// Capture stderr: when go list fails (bad pattern, broken module),
	// its diagnostics are the only thing that makes the failure
	// actionable in CI logs.
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("framework: go list: %w", err)
	}
	var pkgs []*Package
	dec := json.NewDecoder(out)
	for {
		var lp listPackage
		if err := dec.Decode(&lp); err != nil {
			if err == io.EOF {
				break
			}
			_ = cmd.Wait()
			return nil, fmt.Errorf("framework: go list output: %w%s", err, stderrSuffix(&stderr))
		}
		p, err := ParseDirFiles(lp.Dir, lp.ImportPath, lp.GoFiles)
		if err != nil {
			_ = cmd.Wait()
			return nil, err
		}
		if p != nil {
			p.Name = lp.Name
			pkgs = append(pkgs, p)
		}
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("framework: go list: %w%s", err, stderrSuffix(&stderr))
	}
	return pkgs, nil
}

// stderrSuffix formats captured go-list stderr for inclusion in an
// error message (empty when the command wrote nothing).
func stderrSuffix(buf *bytes.Buffer) string {
	s := strings.TrimSpace(buf.String())
	if s == "" {
		return ""
	}
	return "\n" + s
}

// ParseDirFiles parses the named files of one directory as a package
// with the given import path. It returns nil for an empty file list.
func ParseDirFiles(dir, importPath string, files []string) (*Package, error) {
	if len(files) == 0 {
		return nil, nil
	}
	fset := token.NewFileSet()
	p := &Package{Path: importPath, Dir: dir, Fset: fset}
	for _, name := range files {
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("framework: %w", err)
		}
		if p.Name == "" {
			p.Name = f.Name.Name
		}
		p.Files = append(p.Files, f)
	}
	return p, nil
}
