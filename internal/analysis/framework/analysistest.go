package framework

import (
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TB is the subset of *testing.T the fixture runner needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunFixture parses every .go file under dir as one package with the
// given import path, runs the analyzer, and checks its diagnostics
// against the fixture's expectations, in the style of
// golang.org/x/tools/go/analysis/analysistest:
//
//	ch <- v // want "channel send"
//
// Every `// want "substr"` comment must be matched by a diagnostic on
// its line containing substr, and every diagnostic must be matched by
// a want. Several quoted strings may follow one want.
func RunFixture(t TB, dir, pkgPath string, a *Analyzer) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("fixture dir: %v", err)
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, e.Name())
		}
	}
	pkg, err := ParseDirFiles(dir, pkgPath, files)
	if err != nil {
		t.Fatalf("fixture parse: %v", err)
	}
	if pkg == nil {
		t.Fatalf("fixture dir %s holds no .go files", dir)
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{a})
	if err != nil {
		t.Fatalf("analyzer %s: %v", a.Name, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != filepath.Base(d.Pos.Filename) || w.line != d.Pos.Line {
				continue
			}
			if strings.Contains(d.Message, w.substr) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matching %q", w.file, w.line, w.substr)
		}
	}
}

type want struct {
	file   string
	line   int
	substr string
}

// collectWants extracts `// want "..." ["..."]...` expectations.
func collectWants(t TB, pkg *Package) []want {
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, s := range splitQuoted(text[len("want "):]) {
					sub, err := strconv.Unquote(s)
					if err != nil {
						t.Fatalf("%s:%d: bad want string %s", pos.Filename, pos.Line, s)
					}
					out = append(out, want{file: filepath.Base(pos.Filename), line: pos.Line, substr: sub})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// splitQuoted returns the double-quoted segments of s, quotes kept.
func splitQuoted(s string) []string {
	var out []string
	for {
		start := strings.IndexByte(s, '"')
		if start < 0 {
			return out
		}
		end := start + 1
		for end < len(s) {
			if s[end] == '\\' {
				end += 2
				continue
			}
			if s[end] == '"' {
				break
			}
			end++
		}
		if end >= len(s) {
			return out
		}
		out = append(out, s[start:end+1])
		s = s[end+1:]
	}
}
