package framework

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"strings"
	"sync"
)

// typeMu serializes type-checking. The fallback source importer caches
// the packages it has checked (stdlib, mostly) and is not safe for
// concurrent use; serializing here also keeps that cache warm across
// fixture runs inside one test binary.
var typeMu sync.Mutex

// srcImporter is the shared fallback importer: it type-checks packages
// outside the current load — the standard library and, for fixture
// packages, this module's own packages — from source. Built lazily so
// analyzer suites that never ask for types pay nothing.
var srcImporter types.ImporterFrom

// chainImporter resolves imports against the current load first, so
// every package of one lint run shares one types.Package per import
// path, and falls back to compiling from source for everything else.
type chainImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

func (c chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := c.local[path]; p != nil {
		return p, nil
	}
	return c.fallback.ImportFrom(path, srcDir, mode)
}

// TypeCheck type-checks every package of the load that does not carry
// type information yet, in dependency order, filling Package.Types and
// Package.Info. Imports between loaded packages resolve to the loaded
// packages themselves; everything else (the standard library, and the
// module's packages when checking a fixture) is compiled from source
// by the go/importer "source" importer — no export data or external
// tooling required.
//
// Production packages are expected to be compilable, so any type error
// is a hard failure: analyzers must not run on partial type
// information, where a nil types.Object would silently disable a
// check.
func TypeCheck(pkgs []*Package) error {
	typeMu.Lock()
	defer typeMu.Unlock()
	if srcImporter == nil {
		srcImporter = importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
	}

	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	// Postorder DFS over the in-load import edges gives a dependency
	// order (import cycles cannot type-check anyway and fail cleanly).
	seen := make(map[string]bool, len(pkgs))
	order := make([]*Package, 0, len(pkgs))
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.Path] {
			return
		}
		seen[p.Path] = true
		for _, f := range p.Files {
			for _, im := range f.Imports {
				if dep := byPath[strings.Trim(im.Path.Value, `"`)]; dep != nil {
					visit(dep)
				}
			}
		}
		order = append(order, p)
	}
	for _, p := range pkgs {
		visit(p)
	}

	local := make(map[string]*types.Package, len(pkgs))
	for _, p := range pkgs {
		if p.Types != nil {
			local[p.Path] = p.Types
		}
	}
	for _, p := range order {
		if p.Types != nil {
			continue
		}
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
		}
		var terrs []error
		conf := types.Config{
			Importer: chainImporter{local: local, fallback: srcImporter},
			Error:    func(err error) { terrs = append(terrs, err) },
		}
		tpkg, err := conf.Check(p.Path, p.Fset, p.Files, info)
		if len(terrs) > 0 {
			// Show every error (capped), not just the first: a missing
			// import cascades and the root cause may not come first.
			msgs := make([]string, 0, len(terrs))
			for i, e := range terrs {
				if i == 10 {
					msgs = append(msgs, fmt.Sprintf("... and %d more", len(terrs)-i))
					break
				}
				msgs = append(msgs, e.Error())
			}
			return fmt.Errorf("framework: type-checking %s:\n\t%s", p.Path, strings.Join(msgs, "\n\t"))
		}
		if err != nil {
			return fmt.Errorf("framework: type-checking %s: %w", p.Path, err)
		}
		p.Types, p.Info = tpkg, info
		local[p.Path] = tpkg
	}
	return nil
}
