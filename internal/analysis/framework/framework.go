// Package framework is a self-contained static-analysis harness
// modeled on golang.org/x/tools/go/analysis (which this module cannot
// depend on): an Analyzer runs over one package's syntax and reports
// Diagnostics. It exists so the repo can enforce simulator determinism
// and scheduler invariants mechanically (see internal/analysis/simdet,
// lockcheck, unitcheck and cmd/lint).
//
// Suppression: a diagnostic is dropped when the line it points at, or
// the line above it, carries a comment of the form
//
//	//lint:allow <name>[,<name>...] [reason]
//
// naming the analyzer. The escape hatch is for code that is outside an
// analyzer's model (for example the real-clock shims in
// internal/blockdev, which legitimately read the wall clock).
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check.
type Analyzer struct {
	// Name identifies the analyzer in output and in //lint:allow
	// comments. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description.
	Doc string
	// NeedTypes requests type-checked packages: Run sees Pkg.Types and
	// Pkg.Info populated (and fails the whole run if the code does not
	// type-check).
	NeedTypes bool
	// Run inspects a package and reports findings via pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one loaded package: parsed files plus identity.
type Package struct {
	// Path is the import path ("seqstream/internal/sim").
	Path string
	// Name is the package name ("sim").
	Name string
	// Dir is the directory the files were read from.
	Dir string
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Fset positions all Files.
	Fset *token.FileSet
	// Types and Info carry the go/types view of the package. They are
	// nil until TypeCheck runs (Run does so when any analyzer sets
	// NeedTypes).
	Types *types.Package
	Info  *types.Info
}

// Index resolves import paths to loaded packages, so analyzers can
// look across package boundaries (syntactically).
type Index struct {
	byPath map[string]*Package
}

// NewIndex builds an index over the given packages.
func NewIndex(pkgs []*Package) *Index {
	ix := &Index{byPath: make(map[string]*Package, len(pkgs))}
	for _, p := range pkgs {
		ix.byPath[p.Path] = p
	}
	return ix
}

// Package returns the loaded package with the given import path, or
// nil when it was not part of the load.
func (ix *Index) Package(path string) *Package {
	if ix == nil {
		return nil
	}
	return ix.byPath[path]
}

// FuncDecl returns the declaration of a top-level function in the
// package with the given import path, or nil.
func (ix *Index) FuncDecl(path, name string) *ast.FuncDecl {
	p := ix.Package(path)
	if p == nil {
		return nil
	}
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == name {
				return fd
			}
		}
	}
	return nil
}

// Pass carries one analyzer run over one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	// Index spans every package of the load (nil in narrow tests).
	Index *Index

	diags []Diagnostic
}

// Fset returns the file set positioning the package.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      p.Pkg.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// FileImports maps the local names of a file's imports to their import
// paths ("rand" -> "math/rand", aliases respected).
func FileImports(f *ast.File) map[string]string {
	out := make(map[string]string, len(f.Imports))
	for _, im := range f.Imports {
		path := strings.Trim(im.Path.Value, `"`)
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if im.Name != nil {
			name = im.Name.Name
		}
		if name == "_" || name == "." {
			continue
		}
		out[name] = path
	}
	return out
}

// Run executes analyzers over packages and returns the surviving
// diagnostics sorted by position. //lint:allow suppression is applied
// here so every analyzer gets it uniformly.
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	for _, a := range analyzers {
		if a.NeedTypes {
			if err := TypeCheck(pkgs); err != nil {
				return nil, err
			}
			break
		}
	}
	ix := NewIndex(pkgs)
	var out []Diagnostic
	for _, pkg := range pkgs {
		allowed := allowLines(pkg)
		for _, a := range analyzers {
			pass := &Pass{Analyzer: a, Pkg: pkg, Index: ix}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			for _, d := range pass.diags {
				if allowed[allowKey{d.Pos.Filename, d.Pos.Line, a.Name}] {
					continue
				}
				out = append(out, d)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out, nil
}

type allowKey struct {
	file     string
	line     int
	analyzer string
}

// allowLines collects the (file, line, analyzer) triples suppressed by
// //lint:allow comments. A comment covers its own line and the line
// below it, so both trailing and preceding placements work.
func allowLines(pkg *Package) map[allowKey]bool {
	out := make(map[allowKey]bool)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "lint:allow") {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, "lint:allow"))
				names, _, _ := strings.Cut(rest, " ")
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(names, ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					out[allowKey{pos.Filename, pos.Line, name}] = true
					out[allowKey{pos.Filename, pos.Line + 1, name}] = true
				}
			}
		}
	}
	return out
}
