package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parseFunc parses src (one file holding one function) and returns the
// function's body.
func parseFunc(t *testing.T, src string) *ast.BlockStmt {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			return fd.Body
		}
	}
	t.Fatal("no function in src")
	return nil
}

// reachable walks successor edges from the entry.
func reachable(c *CFG) map[*Block]bool {
	seen := make(map[*Block]bool)
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			visit(s)
		}
	}
	visit(c.Entry)
	return seen
}

func TestCFGStraightLine(t *testing.T) {
	c := NewCFG(parseFunc(t, "package p\nfunc f() { x := 1; _ = x }"))
	if len(c.Entry.Nodes) != 2 {
		t.Fatalf("entry holds %d nodes, want 2", len(c.Entry.Nodes))
	}
	if len(c.Entry.Succs) != 1 || c.Entry.Succs[0] != c.Exit {
		t.Fatalf("entry does not fall through to exit: %v", c.Entry.Succs)
	}
}

func TestCFGIfElse(t *testing.T) {
	c := NewCFG(parseFunc(t, `package p
func f(a bool) int {
	if a {
		return 1
	}
	return 2
}`))
	// Both returns must reach Exit; the then-branch must not fall into
	// the trailing return.
	if !reachable(c)[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// Entry ends in the condition and branches two ways: then-block and
	// the fall-through join.
	if len(c.Entry.Succs) != 2 {
		t.Fatalf("condition has %d successors, want 2", len(c.Entry.Succs))
	}
}

func TestCFGForLoop(t *testing.T) {
	c := NewCFG(parseFunc(t, `package p
func f() {
	for i := 0; i < 3; i++ {
		if i == 1 {
			continue
		}
		if i == 2 {
			break
		}
	}
}`))
	// The loop produces a cycle: some reachable block has a successor
	// with a lower index (the back edge).
	back := false
	for b := range reachable(c) {
		for _, s := range b.Succs {
			if s.Index < b.Index && s != c.Exit {
				back = true
			}
		}
	}
	if !back {
		t.Fatalf("for loop produced no back edge")
	}
	if !reachable(c)[c.Exit] {
		t.Fatalf("exit unreachable")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	c := NewCFG(parseFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		fallthrough
	case 2:
		_ = x
	default:
		_ = x
	}
}`))
	if !reachable(c)[c.Exit] {
		t.Fatalf("exit unreachable")
	}
	// Find the block holding the fallthrough's case-1 body: it must
	// have exactly one successor — the case-2 block — not the join.
	// Identify case blocks as the entry's successors (entry is the
	// switch head).
	if len(c.Entry.Succs) != 3 {
		t.Fatalf("switch head has %d successors, want 3 (no implicit none-match edge with a default)", len(c.Entry.Succs))
	}
}

func TestCFGTerminatedPaths(t *testing.T) {
	c := NewCFG(parseFunc(t, `package p
func f(a bool) int {
	if a {
		panic("a")
	} else {
		return 2
	}
}`))
	// Both arms terminate: nothing may fall off the end, i.e. no block
	// other than the arms reaches Exit... simply assert Exit has
	// incoming edges only from the two arms (2 preds).
	preds := 0
	for _, b := range c.Blocks {
		for _, s := range b.Succs {
			if s == c.Exit {
				preds++
			}
		}
	}
	if preds != 2 {
		t.Fatalf("exit has %d predecessors, want 2 (panic arm + return arm)", preds)
	}
}

func TestCFGSelect(t *testing.T) {
	c := NewCFG(parseFunc(t, `package p
func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case ch <- 1:
	}
	return 0
}`))
	if !reachable(c)[c.Exit] {
		t.Fatalf("exit unreachable")
	}
}
