package framework

import (
	"go/ast"
	"go/types"
	"strings"
	"testing"
)

// TestTypeCheck: packages type-check against the stdlib from source,
// imports between loaded packages resolve to the loaded packages, and
// the resulting Info answers identity questions.
func TestTypeCheck(t *testing.T) {
	base := parsePkg(t, "example.com/base", `package base

import "sync"

type Counter struct {
	Mu sync.Mutex
	N  int
}

func (c *Counter) Bump() { c.N++ }
`)
	user := parsePkg(t, "example.com/user", `package user

import "example.com/base"

func Use() int {
	var c base.Counter
	c.Bump()
	return c.N
}
`)
	if err := TypeCheck([]*Package{base, user}); err != nil {
		t.Fatalf("TypeCheck: %v", err)
	}
	if base.Types == nil || base.Info == nil || user.Types == nil || user.Info == nil {
		t.Fatalf("TypeCheck left Types/Info unset")
	}
	// The in-load import must resolve to the very types.Package we
	// checked, not a shadow copy.
	found := false
	for _, imp := range user.Types.Imports() {
		if imp == base.Types {
			found = true
		}
	}
	if !found {
		t.Fatalf("user's import of base resolved to %v, not the loaded package", user.Types.Imports())
	}
	// Field selections carry types: find c.N and check it is an int.
	sawSel := false
	for _, f := range user.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "N" {
				return true
			}
			sawSel = true
			tv, ok := user.Info.Types[ast.Expr(sel)]
			if !ok {
				t.Errorf("no type recorded for c.N")
				return true
			}
			if b, ok := tv.Type.(*types.Basic); !ok || b.Kind() != types.Int {
				t.Errorf("c.N has type %v, want int", tv.Type)
			}
			return true
		})
	}
	if !sawSel {
		t.Fatalf("selector c.N not found in fixture")
	}
	// Re-checking is a no-op, not a duplicate-definition error.
	if err := TypeCheck([]*Package{base, user}); err != nil {
		t.Fatalf("second TypeCheck: %v", err)
	}
}

// TestTypeCheckError: a package that does not compile fails the run
// with the type errors in the message.
func TestTypeCheckError(t *testing.T) {
	bad := parsePkg(t, "example.com/bad", `package bad

func f() int { return "not an int" }
`)
	err := TypeCheck([]*Package{bad})
	if err == nil {
		t.Fatalf("TypeCheck accepted a type error")
	}
	if !strings.Contains(err.Error(), "cannot use") {
		t.Fatalf("error does not carry the type-checker message: %v", err)
	}
}

// TestRunNeedTypes: Run type-checks exactly when an analyzer asks.
func TestRunNeedTypes(t *testing.T) {
	var sawInfo bool
	typed := &Analyzer{
		Name:      "typedprobe",
		Doc:       "test analyzer",
		NeedTypes: true,
		Run: func(pass *Pass) error {
			sawInfo = pass.Pkg.Info != nil && pass.Pkg.Types != nil
			return nil
		},
	}
	pkg := parsePkg(t, "example.com/t", "package t\n\nfunc F() {}\n")
	if _, err := Run([]*Package{pkg}, []*Analyzer{typed}); err != nil {
		t.Fatal(err)
	}
	if !sawInfo {
		t.Fatalf("NeedTypes analyzer ran without type info")
	}
}
