package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func parsePkg(t *testing.T, path, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "x.go")
	if err := os.WriteFile(file, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := ParseDirFiles(dir, path, []string{"x.go"})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// reportAll flags every function declaration, to exercise suppression.
var reportAll = &Analyzer{
	Name: "reportall",
	Doc:  "test analyzer",
	Run: func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok {
					pass.Reportf(fd.Pos(), "func %s", fd.Name.Name)
				}
			}
		}
		return nil
	},
}

// TestAllowSuppression: //lint:allow on the same line or the line
// above drops the diagnostic; other analyzers' names do not.
func TestAllowSuppression(t *testing.T) {
	src := `package p

func a() {} //lint:allow reportall trailing comment

//lint:allow reportall preceding comment
func b() {}

//lint:allow otheranalyzer wrong name
func c() {}

func d() {}
`
	pkg := parsePkg(t, "example.com/p", src)
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportAll})
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range diags {
		got = append(got, d.Message)
	}
	want := []string{"func c", "func d"}
	if len(got) != len(want) {
		t.Fatalf("diagnostics = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostics = %v, want %v", got, want)
		}
	}
}

// TestFileImports: aliases resolve, blank and dot imports are skipped.
func TestFileImports(t *testing.T) {
	src := `package p

import (
	"time"
	r "math/rand"
	_ "os"
	u "example.com/some/units"
)

var _ = time.Second
var _ = r.Int
var _ = u.X
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	im := FileImports(f)
	cases := map[string]string{
		"time": "time",
		"r":    "math/rand",
		"u":    "example.com/some/units",
	}
	for name, path := range cases {
		if im[name] != path {
			t.Errorf("import %q = %q, want %q", name, im[name], path)
		}
	}
	if _, ok := im["os"]; ok {
		t.Errorf("blank import leaked into the name map")
	}
}

// TestLoad: the go-list loader resolves this module's own packages and
// excludes test files.
func TestLoad(t *testing.T) {
	pkgs, err := Load("../../..", "./internal/analysis/framework")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	if p.Path != "seqstream/internal/analysis/framework" || p.Name != "framework" {
		t.Fatalf("loaded %q (%s)", p.Path, p.Name)
	}
	for _, f := range p.Files {
		name := filepath.Base(p.Fset.Position(f.Pos()).Filename)
		if name == "framework_test.go" {
			t.Fatalf("test file leaked into the load")
		}
	}
	if NewIndex(pkgs).FuncDecl(p.Path, "Load") == nil {
		t.Fatalf("index did not resolve framework.Load")
	}
}

// TestLoadBadPattern: go list failures surface the go command's own
// stderr, not a bare exit status.
func TestLoadBadPattern(t *testing.T) {
	_, err := Load("../../..", "./does/not/exist")
	if err == nil {
		t.Fatalf("Load accepted a nonexistent package pattern")
	}
	if !strings.Contains(err.Error(), "does/not/exist") {
		t.Fatalf("error does not carry go list stderr: %v", err)
	}
}

// TestSplitQuoted pins the want-comment scanner.
func TestSplitQuoted(t *testing.T) {
	got := splitQuoted(`"a" junk "b\"c" tail`)
	want := []string{`"a"`, `"b\"c"`}
	if len(got) != len(want) {
		t.Fatalf("splitQuoted = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("splitQuoted = %v, want %v", got, want)
		}
	}
}
