// Package shardcheck machine-checks the shard-ownership rules that
// internal/core/doc.go states in prose: struct fields annotated
//
//	streams map[int]*stream //lint:guardedby mu
//
// may only be accessed while the struct's named mutex is held. The
// analysis tracks must-hold lock sets through each function with the
// framework CFG: X.mu.Lock() adds X.mu, X.mu.Unlock() removes it,
// `defer X.mu.Unlock()` keeps it to the end, and joining paths keep
// only the locks held on every path. Functions whose contract is
// "caller holds the lock" declare it:
//
//	//lint:holds mu
//	func (sh *shard) pump(...) { ... }
//
// which seeds the receiver's mutex as held on entry. Values still
// being constructed are exempt: a local built from a composite
// literal in the same function is not yet shared, so its guarded
// fields are free. Closures are independent flows (they usually run
// after the enclosing critical section); accesses inside them need
// their own locking or an //lint:allow shardcheck.
package shardcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"seqstream/internal/analysis/framework"
)

// GatedPackages lists the import-path prefixes the analyzer applies to.
var GatedPackages = []string{
	"seqstream/internal/core",
	"seqstream/internal/netserve",
	"seqstream/internal/obs",
	"seqstream/internal/health",
}

// Analyzer is the shardcheck check.
var Analyzer = &framework.Analyzer{
	Name: "shardcheck",
	Doc: "enforce //lint:guardedby annotations: guarded struct fields are " +
		"only touched while the named mutex is held",
	NeedTypes: true,
	Run:       run,
}

func gated(path string) bool {
	for _, p := range GatedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !gated(pass.Pkg.Path) {
		return nil
	}
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			held := make(lockSet)
			if mu := holdsAnnotation(fd); mu != "" {
				if recv := recvName(fd); recv != "" {
					held[recv+"."+mu] = true
				}
			}
			analyzeBody(pass, guards, fd.Body, held)
		}
		// Function literals run outside the lexical critical section
		// (callbacks, goroutines): they start with nothing held.
		ast.Inspect(f, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				analyzeBody(pass, guards, fl.Body, make(lockSet))
			}
			return true
		})
	}
	return nil
}

// collectGuards maps annotated struct fields to the name of the mutex
// field guarding them, reading //lint:guardedby comments off struct
// type declarations in this package.
func collectGuards(pass *framework.Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

// guardAnnotation extracts the mutex name from a field's
// `//lint:guardedby <mu>` doc or trailing comment.
func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if rest, ok := strings.CutPrefix(text, "lint:guardedby "); ok {
				name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
				return name
			}
		}
	}
	return ""
}

// holdsAnnotation extracts the mutex name from a function's
// `//lint:holds <mu>` doc comment.
func holdsAnnotation(fd *ast.FuncDecl) string {
	if fd.Doc == nil {
		return ""
	}
	for _, c := range fd.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if rest, ok := strings.CutPrefix(text, "lint:holds "); ok {
			name, _, _ := strings.Cut(strings.TrimSpace(rest), " ")
			return name
		}
	}
	return ""
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// lockSet is a must-hold set of rendered mutex expressions ("sh.mu").
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func (s lockSet) equal(other lockSet) bool {
	if len(s) != len(other) {
		return false
	}
	for k := range s {
		if !other[k] {
			return false
		}
	}
	return true
}

// intersect keeps only locks held on every path.
func intersect(sets []lockSet) lockSet {
	if len(sets) == 0 {
		return make(lockSet)
	}
	out := sets[0].clone()
	for _, s := range sets[1:] {
		for k := range out {
			if !s[k] {
				delete(out, k)
			}
		}
	}
	return out
}

type bodyAnalysis struct {
	pass   *framework.Pass
	guards map[*types.Var]string
	cfg    *framework.CFG
	// fresh holds locals constructed from composite literals in this
	// body: not yet shared, so their guarded fields are exempt.
	fresh map[*types.Var]bool
	// entry is the lock set seeded by a //lint:holds annotation.
	entry    lockSet
	reported map[string]bool
}

func analyzeBody(pass *framework.Pass, guards map[*types.Var]string, body *ast.BlockStmt, entry lockSet) {
	a := &bodyAnalysis{
		pass:     pass,
		guards:   guards,
		fresh:    make(map[*types.Var]bool),
		entry:    entry,
		reported: make(map[string]bool),
	}
	a.findFresh(body)
	a.cfg = framework.NewCFG(body)
	a.solve()
}

// findFresh records locals assigned a composite literal (or its
// address): values under construction, not yet visible to other
// goroutines.
func (a *bodyAnalysis) findFresh(body *ast.BlockStmt) {
	info := a.pass.Pkg.Info
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			e := rhs
			if un, ok := e.(*ast.UnaryExpr); ok {
				e = un.X
			}
			if _, ok := e.(*ast.CompositeLit); !ok {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok {
				if v, ok := info.Defs[id].(*types.Var); ok {
					a.fresh[v] = true
				}
			}
		}
		return true
	})
}

// solve runs the must-hold fixpoint over the CFG, then reports.
func (a *bodyAnalysis) solve() {
	blocks := a.cfg.Blocks
	preds := make(map[*framework.Block][]*framework.Block)
	for _, b := range blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := make(map[*framework.Block]lockSet, len(blocks))
	for _, b := range blocks {
		// Start optimistic (everything held) so the intersection
		// converges downward; entry starts from the annotation seed.
		in[b] = nil
	}
	in[a.cfg.Entry] = a.entry.clone()
	changed := true
	for rounds := 0; changed && rounds < 4*len(blocks)+8; rounds++ {
		changed = false
		for _, b := range blocks {
			if b == a.cfg.Entry {
				continue
			}
			var states []lockSet
			for _, p := range preds[b] {
				if in[p] == nil {
					continue // not yet reached: no constraint
				}
				states = append(states, a.apply(p, in[p], false))
			}
			if len(states) == 0 {
				continue
			}
			st := intersect(states)
			if in[b] == nil || !st.equal(in[b]) {
				in[b] = st
				changed = true
			}
		}
	}
	for _, b := range blocks {
		if in[b] == nil {
			in[b] = make(lockSet) // unreachable: check pessimistically
		}
		a.apply(b, in[b], true)
	}
}

// apply runs one block's transfer function; with report set it flags
// guarded-field accesses outside their mutex.
func (a *bodyAnalysis) apply(b *framework.Block, held lockSet, report bool) lockSet {
	held = held.clone()
	for _, n := range b.Nodes {
		// Lock-state transitions: a deferred unlock keeps the lock held
		// to function exit, so it is no transition at all.
		if d, ok := n.(*ast.DeferStmt); ok {
			if key, _ := lockCall(d.Call); key != "" {
				continue
			}
			if report {
				a.checkNode(n, held) // defer args are evaluated here
			}
			continue
		}
		if es, ok := n.(*ast.ExprStmt); ok {
			if call, ok := es.X.(*ast.CallExpr); ok {
				if key, op := lockCall(call); key != "" {
					switch op {
					case "Lock", "RLock":
						held[key] = true
					case "Unlock", "RUnlock":
						delete(held, key)
					}
					continue
				}
			}
		}
		if report {
			a.checkNode(n, held)
		}
	}
	return held
}

// checkNode reports guarded-field selectors not covered by held.
func (a *bodyAnalysis) checkNode(n ast.Node, held lockSet) {
	info := a.pass.Pkg.Info
	ast.Inspect(n, func(nd ast.Node) bool {
		if _, ok := nd.(*ast.FuncLit); ok {
			return false // separate flow
		}
		sel, ok := nd.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s, ok := info.Selections[sel]
		if !ok || s.Kind() != types.FieldVal {
			return true
		}
		fv, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		mu, guarded := a.guards[fv]
		if !guarded {
			return true
		}
		base := exprKey(sel.X)
		if base == "" {
			return true // complex base: out of the model, under-report
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if v, ok := info.Uses[id].(*types.Var); ok && a.fresh[v] {
				return true // still under construction
			}
		}
		if !held[base+"."+mu] {
			key := a.pass.Fset().Position(sel.Pos()).String() + fv.Name()
			if !a.reported[key] {
				a.reported[key] = true
				a.pass.Reportf(sel.Pos(), "access to %s.%s without holding %s.%s (//lint:guardedby)", base, fv.Name(), base, mu)
			}
		}
		return true
	})
}

// lockCall matches X.Lock/RLock/Unlock/RUnlock() and returns the
// rendered lock expression and method.
func lockCall(call *ast.CallExpr) (key, op string) {
	if len(call.Args) != 0 {
		return "", ""
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprKey(sel.X), sel.Sel.Name
	}
	return "", ""
}

// exprKey renders a simple expression ("sh.mu"); anything complex
// yields "".
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	default:
		return ""
	}
}
