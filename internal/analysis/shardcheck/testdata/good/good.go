// Fixture: guarded-field access patterns shardcheck must accept.
package shardfixture

import "sync"

type shard struct {
	mu sync.Mutex

	streams map[int]int //lint:guardedby mu
	//lint:guardedby mu
	memUsed int64

	hot int // unguarded: free access
}

// Lock/Unlock brackets the access.
func (sh *shard) touch(id int) {
	sh.mu.Lock()
	sh.streams[id]++
	sh.mu.Unlock()
}

// A deferred unlock holds the lock to the end.
func (sh *shard) account(n int64) int64 {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.memUsed += n
	return sh.memUsed
}

// The caller-holds contract is declared, not guessed.
//
//lint:holds mu
func (sh *shard) evictLocked(id int) {
	delete(sh.streams, id)
	sh.memUsed = 0
}

// Holds-annotated helpers may call through to other annotated code.
//
//lint:holds mu
func (sh *shard) resetLocked() {
	sh.evictLocked(0)
}

// Unguarded fields need no lock.
func (sh *shard) poke() {
	sh.hot++
}

// Both branches keep the lock: the intersection holds it at the use.
func (sh *shard) branchy(cold bool) {
	sh.mu.Lock()
	if cold {
		sh.memUsed = 0
	} else {
		sh.memUsed++
	}
	sh.streams[0] = int(sh.memUsed)
	sh.mu.Unlock()
}

// A value under construction is not yet shared.
func newShard() *shard {
	sh := &shard{streams: make(map[int]int)}
	sh.memUsed = 0
	return sh
}

// Suppression for documented exceptions.
func (sh *shard) snapshotRacy() int64 {
	return sh.memUsed //lint:allow shardcheck read is advisory, torn values acceptable
}
