// Fixture: guarded-field violations shardcheck must catch.
package shardfixture

import "sync"

type shard struct {
	mu sync.Mutex

	streams map[int]int //lint:guardedby mu
	//lint:guardedby mu
	memUsed int64
}

// No lock at all.
func (sh *shard) bareRead(id int) int {
	return sh.streams[id] // want "without holding sh.mu"
}

// The lock was already dropped.
func (sh *shard) afterUnlock(n int64) {
	sh.mu.Lock()
	sh.streams[0] = 1
	sh.mu.Unlock()
	sh.memUsed += n // want "without holding sh.mu"
}

// One branch unlocks early: the join no longer holds the lock on
// every path.
func (sh *shard) earlyUnlock(cold bool) {
	sh.mu.Lock()
	if cold {
		sh.mu.Unlock()
	}
	sh.memUsed++ // want "without holding sh.mu"
	if !cold {
		sh.mu.Unlock()
	}
}

// Closures run after the critical section: the captured access needs
// its own locking.
func (sh *shard) callback(run func(func())) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	run(func() {
		sh.memUsed++ // want "without holding sh.mu"
	})
}

// Locking a different shard's mutex does not cover this one.
func crossShard(a, b *shard) {
	a.mu.Lock()
	b.memUsed++ // want "access to b.memUsed without holding b.mu"
	a.mu.Unlock()
}
