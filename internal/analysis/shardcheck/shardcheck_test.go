package shardcheck

import (
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: unlocked, early-unlocked, closure, and cross-shard
// accesses are reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/core/shardfixture", Analyzer)
}

// TestGoodFixture: bracketed, deferred, //lint:holds, construction,
// and //lint:allow pass.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/core/shardfixture", Analyzer)
}

// TestUngatedPackage: shardcheck scopes itself to the shard-owning
// packages.
func TestUngatedPackage(t *testing.T) {
	pkg, err := framework.ParseDirFiles("testdata/bad", "seqstream/internal/sim", []string{"bad.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ungated package reported %d diagnostics: %v", len(diags), diags)
	}
}
