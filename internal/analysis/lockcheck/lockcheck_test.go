package lockcheck

import (
	"testing"

	"seqstream/internal/analysis/framework"
)

// TestBadFixture: held-across-blocking and leaked-lock returns are
// reported.
func TestBadFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/bad", "seqstream/internal/core/lockfixture", Analyzer)
}

// TestGoodFixture: defer pairs, unlock-before-return branches, closure
// isolation, and //lint:allow pass.
func TestGoodFixture(t *testing.T) {
	framework.RunFixture(t, "testdata/good", "seqstream/internal/netserve/lockfixture", Analyzer)
}

// TestUngatedPackage: lockcheck scopes itself to core and netserve.
func TestUngatedPackage(t *testing.T) {
	pkg, err := framework.ParseDirFiles("testdata/bad", "seqstream/internal/sim", []string{"bad.go"})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := framework.Run([]*framework.Package{pkg}, []*framework.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("ungated package reported %d diagnostics: %v", len(diags), diags)
	}
}
