// Package bad is a lockcheck fixture: every construct here must
// trigger a diagnostic. It is parsed by the analyzer tests, never
// built.
package bad

import (
	"sync"
	"time"
)

type server struct {
	mu sync.Mutex
	ch chan int
	wg sync.WaitGroup
}

func (s *server) sendHeld() {
	s.mu.Lock()
	s.ch <- 1 // want "channel send while s.mu is held"
	s.mu.Unlock()
}

func (s *server) recvHeld() {
	s.mu.Lock()
	<-s.ch // want "channel receive while s.mu is held"
	s.mu.Unlock()
}

func (s *server) sleepHeld() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want "time.Sleep while s.mu is held"
	s.mu.Unlock()
}

func (s *server) waitHeld() {
	s.mu.Lock()
	s.wg.Wait() // want "s.wg.Wait() while s.mu is held"
	s.mu.Unlock()
}

func (s *server) selectHeld() {
	s.mu.Lock()
	select { // want "select with channel cases while s.mu is held"
	case v := <-s.ch:
		_ = v
	default:
	}
	s.mu.Unlock()
}

func (s *server) leakReturn(fail bool) error {
	s.mu.Lock()
	if fail {
		return nil // want "return while s.mu is held"
	}
	s.mu.Unlock()
	return nil
}

func (s *server) leakTail() {
	s.mu.Lock()
	s.ch = make(chan int)
	return // want "return while s.mu is held"
}

func (s *server) rlockSend() {
	var rw sync.RWMutex
	rw.RLock()
	s.ch <- 2 // want "channel send while rw is held"
	rw.RUnlock()
}
