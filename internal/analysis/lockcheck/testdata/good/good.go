// Package good is a lockcheck fixture: nothing here may trigger a
// diagnostic. The shapes mirror the patterns internal/core and
// internal/netserve actually use.
package good

import (
	"errors"
	"sync"
	"time"
)

type server struct {
	mu     sync.Mutex
	ch     chan int
	wg     sync.WaitGroup
	closed bool
	stats  int
}

// deferUnlock: the canonical safe accessor.
func (s *server) deferUnlock() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// earlyReturn: every return path unlocks first.
func (s *server) earlyReturn() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("closed")
	}
	s.stats++
	s.mu.Unlock()
	return nil
}

// sendAfterUnlock: blocking operations after release are fine.
func (s *server) sendAfterUnlock() {
	s.mu.Lock()
	s.stats++
	s.mu.Unlock()
	s.ch <- 1
	time.Sleep(time.Millisecond)
	s.wg.Wait()
}

// callbackIsolation: a function literal is its own flow; its channel
// send does not run under the enclosing lock.
func (s *server) callbackIsolation() func() {
	s.mu.Lock()
	cb := func() { s.ch <- 1 }
	s.mu.Unlock()
	return cb
}

// lockPerIteration: the flushIO shape — lock and unlock inside each
// loop iteration, blocking work outside the critical section.
func (s *server) lockPerIteration(work []func()) {
	for {
		s.mu.Lock()
		n := s.stats
		s.mu.Unlock()
		if n == 0 {
			return
		}
		for _, fn := range work {
			fn()
		}
		s.ch <- n
	}
}

// branchReturnThenHeld: a terminating branch does not clear the outer
// path's obligation, and the outer path unlocks properly.
func (s *server) branchReturnThenHeld(fail bool) error {
	s.mu.Lock()
	if fail {
		s.mu.Unlock()
		return errors.New("fail")
	}
	s.stats++
	s.mu.Unlock()
	s.ch <- s.stats
	return nil
}

// allowEscape: a deliberate send under the lock can be waived.
func (s *server) allowEscape() {
	s.mu.Lock()
	s.ch <- 1 //lint:allow lockcheck buffered channel, never blocks
	s.mu.Unlock()
}
