// Package lockcheck flags mutexes held across blocking operations and
// return paths that leak a held lock, in the concurrent server
// packages (internal/core, internal/netserve). It goes beyond go
// vet's copylocks: the scheduler's contract is that completion
// callbacks never run under the server lock and that no lock is held
// across a channel operation, time.Sleep, or Wait — any of which can
// deadlock the dispatch path under load.
//
// The check is syntactic and flow-approximate: it tracks Lock/Unlock
// pairs per lock expression ("s.mu") through straight-line code and
// branches. Branches that diverge in lock state make the state
// unknown, which suppresses further reports rather than guessing
// (false positives can be silenced with //lint:allow lockcheck).
package lockcheck

import (
	"go/ast"
	"go/token"
	"strings"

	"seqstream/internal/analysis/framework"
)

// GatedPackages lists the import-path prefixes the analyzer applies to.
var GatedPackages = []string{
	"seqstream/internal/core",
	"seqstream/internal/netserve",
	"seqstream/internal/health",
}

// Analyzer is the lockcheck check.
var Analyzer = &framework.Analyzer{
	Name: "lockcheck",
	Doc: "flag mutexes held across channel operations, sleeps, and Waits, " +
		"and return paths that miss an Unlock",
	Run: run,
}

func gated(path string) bool {
	for _, p := range GatedPackages {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}

func run(pass *framework.Pass) error {
	if !gated(pass.Pkg.Path) {
		return nil
	}
	for _, f := range pass.Pkg.Files {
		imports := framework.FileImports(f)
		c := &checker{pass: pass, imports: imports}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Body != nil {
				c.stmts(fd.Body.List, lockState{})
			}
		}
	}
	return nil
}

// lockInfo tracks one lock expression within one flow path.
type lockInfo struct {
	// held: the lock is taken (a blocking operation now is a bug).
	held bool
	// needs: a return now leaks the lock (cleared by Unlock or a
	// deferred Unlock).
	needs bool
}

type lockState map[string]*lockInfo

func (st lockState) clone() lockState {
	out := make(lockState, len(st))
	for k, v := range st {
		cp := *v
		out[k] = &cp
	}
	return out
}

func (st lockState) get(key string) *lockInfo {
	li := st[key]
	if li == nil {
		li = &lockInfo{}
		st[key] = li
	}
	return li
}

// anyHeld returns the rendering of one held lock, or "".
func (st lockState) anyHeld() string {
	for k, v := range st {
		if v.held {
			return k
		}
	}
	return ""
}

type checker struct {
	pass    *framework.Pass
	imports map[string]string
}

// stmts analyzes a statement list, mutating st, and reports whether
// control cannot continue past it (ends in return/branch/panic).
func (c *checker) stmts(list []ast.Stmt, st lockState) bool {
	terminated := false
	for _, s := range list {
		if c.stmt(s, st) {
			terminated = true
		}
	}
	return terminated
}

func (c *checker) stmt(s ast.Stmt, st lockState) bool {
	switch s := s.(type) {
	case *ast.ExprStmt:
		if key, op, ok := lockCall(s.X); ok {
			li := st.get(key)
			switch op {
			case "Lock", "RLock":
				li.held, li.needs = true, true
			case "Unlock", "RUnlock":
				li.held, li.needs = false, false
			}
			return false
		}
		return c.expr(s.X, st)
	case *ast.SendStmt:
		if held := st.anyHeld(); held != "" {
			c.pass.Reportf(s.Pos(), "channel send while %s is held; release the lock before blocking", held)
		}
		c.expr(s.Value, st)
		return false
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.expr(e, st)
		}
		return false
	case *ast.DeclStmt:
		ast.Inspect(s, func(n ast.Node) bool {
			if fl, ok := n.(*ast.FuncLit); ok {
				c.stmts(fl.Body.List, lockState{})
				return false
			}
			return true
		})
		return false
	case *ast.DeferStmt:
		if key, op, ok := lockCall(s.Call); ok && (op == "Unlock" || op == "RUnlock") {
			st.get(key).needs = false
			return false
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, lockState{})
		}
		return false
	case *ast.GoStmt:
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			c.stmts(fl.Body.List, lockState{})
		}
		return false
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.expr(e, st)
		}
		for key, li := range st {
			if li.needs {
				c.pass.Reportf(s.Pos(), "return while %s is held: missing %s.Unlock() on this path", key, key)
			}
		}
		return true
	case *ast.BranchStmt:
		return true
	case *ast.LabeledStmt:
		return c.stmt(s.Stmt, st)
	case *ast.BlockStmt:
		return c.stmts(s.List, st)
	case *ast.IfStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		c.expr(s.Cond, st)
		bodySt := st.clone()
		bodyTerm := c.stmts(s.Body.List, bodySt)
		elseSt := st.clone()
		elseTerm := false
		if s.Else != nil {
			elseTerm = c.stmt(s.Else, elseSt)
		}
		mergeBranches(st, []branch{{bodySt, bodyTerm}, {elseSt, elseTerm}})
		return bodyTerm && elseTerm && s.Else != nil
	case *ast.ForStmt:
		c.loopBody(s.Body, st, s.Init, s.Cond, s.Post)
		return false
	case *ast.RangeStmt:
		c.expr(s.X, st)
		c.loopBody(s.Body, st, nil, nil, nil)
		return false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		c.clauses(s, st)
		return false
	case *ast.SelectStmt:
		if held := st.anyHeld(); held != "" && hasCommClause(s) {
			c.pass.Reportf(s.Pos(), "select with channel cases while %s is held; release the lock before blocking", held)
		}
		c.clauses(s, st)
		return false
	default:
		return false
	}
}

type branch struct {
	st   lockState
	term bool
}

// mergeBranches folds branch outcomes back into st. Branches that
// terminated do not rejoin the flow; surviving branches that disagree
// with each other make the key unknown (held=false, needs=false), so
// the analysis under-reports rather than guessing.
func mergeBranches(st lockState, branches []branch) {
	keys := map[string]bool{}
	for k := range st {
		keys[k] = true
	}
	for _, b := range branches {
		for k := range b.st {
			keys[k] = true
		}
	}
	for k := range keys {
		var live []*lockInfo
		for _, b := range branches {
			if !b.term {
				live = append(live, b.st.get(k))
			}
		}
		if len(live) == 0 {
			continue // all branches exited; parent state stands
		}
		first := *live[0]
		agree := true
		for _, li := range live[1:] {
			if *li != first {
				agree = false
				break
			}
		}
		target := st.get(k)
		if agree {
			*target = first
		} else {
			target.held, target.needs = false, false
		}
	}
}

// loopBody analyzes a loop body on a cloned state; a body that changes
// lock state makes the post-loop state unknown.
func (c *checker) loopBody(body *ast.BlockStmt, st lockState, init ast.Stmt, cond ast.Expr, post ast.Stmt) {
	if init != nil {
		c.stmt(init, st)
	}
	if cond != nil {
		c.expr(cond, st)
	}
	bodySt := st.clone()
	c.stmts(body.List, bodySt)
	if post != nil {
		c.stmt(post, bodySt)
	}
	mergeBranches(st, []branch{{bodySt, false}, {st.clone(), false}})
}

// clauses analyzes the case bodies of a switch or select.
func (c *checker) clauses(s ast.Stmt, st lockState) {
	var bodies [][]ast.Stmt
	switch s := s.(type) {
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.expr(s.Tag, st)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
	case *ast.SelectStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				bodies = append(bodies, cc.Body)
			}
		}
	}
	branches := []branch{{st.clone(), false}} // the no-case-taken path
	for _, body := range bodies {
		bSt := st.clone()
		term := c.stmts(body, bSt)
		branches = append(branches, branch{bSt, term})
	}
	mergeBranches(st, branches)
}

// expr scans an expression for blocking operations performed while a
// lock is held. Function literals are analyzed as independent flows.
func (c *checker) expr(e ast.Expr, st lockState) bool {
	if e == nil {
		return false
	}
	terminated := false
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.stmts(n.Body.List, lockState{})
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				if held := st.anyHeld(); held != "" {
					c.pass.Reportf(n.Pos(), "channel receive while %s is held; release the lock before blocking", held)
				}
			}
		case *ast.CallExpr:
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" {
				terminated = true
			}
			if held := st.anyHeld(); held != "" {
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && c.imports[id.Name] == "time" && sel.Sel.Name == "Sleep" {
						c.pass.Reportf(n.Pos(), "time.Sleep while %s is held; release the lock before blocking", held)
					} else if sel.Sel.Name == "Wait" && len(n.Args) == 0 {
						c.pass.Reportf(n.Pos(), "%s.Wait() while %s is held; release the lock before blocking",
							exprKey(sel.X), held)
					}
				}
			}
		}
		return true
	})
	return terminated
}

// lockCall reports whether e is a call X.Lock/RLock/Unlock/RUnlock()
// and returns the rendered lock expression X and the method name.
func lockCall(e ast.Expr) (key, op string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall || len(call.Args) != 0 {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
		key = exprKey(sel.X)
		if key == "" {
			return "", "", false
		}
		return key, sel.Sel.Name, true
	}
	return "", "", false
}

// exprKey renders a lock expression ("s.mu"); non-trivial expressions
// yield "" and are ignored.
func exprKey(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprKey(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprKey(e.X)
	default:
		return ""
	}
}

func hasCommClause(s *ast.SelectStmt) bool {
	for _, cl := range s.Body.List {
		if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
			return true
		}
	}
	return false
}
