// Package trace records per-request events from a storage node run
// and exports them as CSV or JSON lines for offline analysis (latency
// CDFs, per-stream timelines, figure regeneration outside Go).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Kind classifies a traced event.
type Kind int

// Event kinds.
const (
	// KindClient is a completed client request.
	KindClient Kind = iota + 1
	// KindFetch is a completed read-ahead disk request.
	KindFetch
	// KindDirect is a completed direct (non-sequential) disk request.
	KindDirect
	// KindEvict is a buffered-set reclaim.
	KindEvict
	// KindRotate is a stream rotating out of the dispatch set (§4.2).
	KindRotate
	// KindGC is a stream's state collected by the periodic GC (§4.3).
	KindGC
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindClient:
		return "client"
	case KindFetch:
		return "fetch"
	case KindDirect:
		return "direct"
	case KindEvict:
		return "evict"
	case KindRotate:
		return "rotate"
	case KindGC:
		return "gc"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind inverts String for the named kinds.
func ParseKind(s string) (Kind, error) {
	for k := KindClient; k <= KindGC; k++ {
		if k.String() == s {
			return k, nil
		}
	}
	return 0, fmt.Errorf("trace: unknown kind %q", s)
}

// NoStream is the Stream value of events not attributed to a
// classified stream (direct reads, classifier-path requests).
const NoStream = -1

// Event is one traced record.
type Event struct {
	Kind Kind `json:"kind"`
	// Stream is the classified stream the event belongs to, or
	// NoStream. Together with Start/End it lets a full per-stream
	// timeline be reconstructed offline.
	Stream int           `json:"stream"`
	Disk   int           `json:"disk"`
	Offset int64         `json:"offset"`
	Length int64         `json:"length"`
	Start  time.Duration `json:"startNanos"`
	End    time.Duration `json:"endNanos"`
	// Hit marks delivery from staged memory (client events).
	Hit bool `json:"hit,omitempty"`
	// Err carries a failure message, empty on success.
	Err string `json:"err,omitempty"`
}

// Latency returns End-Start.
func (e Event) Latency() time.Duration { return e.End - e.Start }

// Tracer accumulates events in a bounded ring. It is safe for
// concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped int64
	enabled bool
}

// New builds a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) (*Tracer, error) {
	if capacity <= 0 {
		return nil, errors.New("trace: capacity must be positive")
	}
	return &Tracer{events: make([]Event, 0, capacity), enabled: true}, nil
}

// SetEnabled toggles recording (disabled tracers drop events).
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = on
}

// Record appends an event.
func (t *Tracer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		t.dropped++
		return
	}
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % cap(t.events)
	t.wrapped = true
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events dropped while disabled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the retained events in record order.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.wrapped {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// csvHeader is the WriteCSV column set; ReadCSV requires it.
var csvHeader = []string{"kind", "stream", "disk", "offset", "length", "start_ns", "end_ns", "latency_ns", "hit", "err"}

// WriteCSV exports the retained events with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range t.Snapshot() {
		rec := []string{
			e.Kind.String(),
			strconv.Itoa(e.Stream),
			strconv.Itoa(e.Disk),
			strconv.FormatInt(e.Offset, 10),
			strconv.FormatInt(e.Length, 10),
			strconv.FormatInt(int64(e.Start), 10),
			strconv.FormatInt(int64(e.End), 10),
			strconv.FormatInt(int64(e.Latency()), 10),
			strconv.FormatBool(e.Hit),
			e.Err,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// ReadCSV parses events exported by WriteCSV (header required). The
// derived latency column is checked against Start/End.
func ReadCSV(r io.Reader) ([]Event, error) {
	cr := csv.NewReader(r)
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("trace: reading CSV header: %w", err)
	}
	if len(header) != len(csvHeader) {
		return nil, fmt.Errorf("trace: CSV header has %d columns, want %d", len(header), len(csvHeader))
	}
	for i, col := range csvHeader {
		if header[i] != col {
			return nil, fmt.Errorf("trace: CSV column %d is %q, want %q", i, header[i], col)
		}
	}
	var events []Event
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		e, err := parseCSVRecord(rec)
		if err != nil {
			return nil, err
		}
		events = append(events, e)
	}
}

func parseCSVRecord(rec []string) (Event, error) {
	var e Event
	kind, err := ParseKind(rec[0])
	if err != nil {
		return e, err
	}
	e.Kind = kind
	ints := []struct {
		col  int
		name string
		dst  *int64
	}{
		{3, "offset", &e.Offset},
		{4, "length", &e.Length},
	}
	if e.Stream, err = strconv.Atoi(rec[1]); err != nil {
		return e, fmt.Errorf("trace: bad stream %q: %w", rec[1], err)
	}
	if e.Disk, err = strconv.Atoi(rec[2]); err != nil {
		return e, fmt.Errorf("trace: bad disk %q: %w", rec[2], err)
	}
	for _, f := range ints {
		if *f.dst, err = strconv.ParseInt(rec[f.col], 10, 64); err != nil {
			return e, fmt.Errorf("trace: bad %s %q: %w", f.name, rec[f.col], err)
		}
	}
	start, err := strconv.ParseInt(rec[5], 10, 64)
	if err != nil {
		return e, fmt.Errorf("trace: bad start_ns %q: %w", rec[5], err)
	}
	end, err := strconv.ParseInt(rec[6], 10, 64)
	if err != nil {
		return e, fmt.Errorf("trace: bad end_ns %q: %w", rec[6], err)
	}
	e.Start, e.End = time.Duration(start), time.Duration(end)
	lat, err := strconv.ParseInt(rec[7], 10, 64)
	if err != nil {
		return e, fmt.Errorf("trace: bad latency_ns %q: %w", rec[7], err)
	}
	if time.Duration(lat) != e.Latency() {
		return e, fmt.Errorf("trace: latency column %d disagrees with end-start %d", lat, e.Latency())
	}
	if e.Hit, err = strconv.ParseBool(rec[8]); err != nil {
		return e, fmt.Errorf("trace: bad hit %q: %w", rec[8], err)
	}
	e.Err = rec[9]
	return e, nil
}

// ReadJSONL parses events exported by WriteJSONL.
func ReadJSONL(r io.Reader) ([]Event, error) {
	dec := json.NewDecoder(r)
	var events []Event
	for {
		var e Event
		if err := dec.Decode(&e); err != nil {
			if errors.Is(err, io.EOF) {
				return events, nil
			}
			return nil, fmt.Errorf("trace: %w", err)
		}
		events = append(events, e)
	}
}

// WriteJSONL exports the retained events as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// Summary aggregates the retained events.
type Summary struct {
	Events    int
	Clients   int
	Fetches   int
	Directs   int
	Evicts    int
	Rotates   int
	GCs       int
	Streams   int // distinct stream ids (NoStream excluded)
	ClientHit int
	Errors    int
	MeanLat   time.Duration
}

// Summarize computes aggregate counts over the retained events.
func (t *Tracer) Summarize() Summary {
	var s Summary
	var latSum time.Duration
	var latCount int64
	streams := make(map[int]struct{})
	for _, e := range t.Snapshot() {
		s.Events++
		if e.Stream != NoStream {
			streams[e.Stream] = struct{}{}
		}
		switch e.Kind {
		case KindClient:
			s.Clients++
			if e.Hit {
				s.ClientHit++
			}
			latSum += e.Latency()
			latCount++
		case KindFetch:
			s.Fetches++
		case KindDirect:
			s.Directs++
		case KindEvict:
			s.Evicts++
		case KindRotate:
			s.Rotates++
		case KindGC:
			s.GCs++
		}
		if e.Err != "" {
			s.Errors++
		}
	}
	s.Streams = len(streams)
	if latCount > 0 {
		s.MeanLat = time.Duration(int64(latSum) / latCount)
	}
	return s
}
