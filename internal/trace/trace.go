// Package trace records per-request events from a storage node run
// and exports them as CSV or JSON lines for offline analysis (latency
// CDFs, per-stream timelines, figure regeneration outside Go).
package trace

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// Kind classifies a traced event.
type Kind int

// Event kinds.
const (
	// KindClient is a completed client request.
	KindClient Kind = iota + 1
	// KindFetch is a completed read-ahead disk request.
	KindFetch
	// KindDirect is a completed direct (non-sequential) disk request.
	KindDirect
	// KindEvict is a buffered-set reclaim.
	KindEvict
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindClient:
		return "client"
	case KindFetch:
		return "fetch"
	case KindDirect:
		return "direct"
	case KindEvict:
		return "evict"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one traced record.
type Event struct {
	Kind   Kind          `json:"kind"`
	Disk   int           `json:"disk"`
	Offset int64         `json:"offset"`
	Length int64         `json:"length"`
	Start  time.Duration `json:"startNanos"`
	End    time.Duration `json:"endNanos"`
	// Hit marks delivery from staged memory (client events).
	Hit bool `json:"hit,omitempty"`
	// Err carries a failure message, empty on success.
	Err string `json:"err,omitempty"`
}

// Latency returns End-Start.
func (e Event) Latency() time.Duration { return e.End - e.Start }

// Tracer accumulates events in a bounded ring. It is safe for
// concurrent use.
type Tracer struct {
	mu      sync.Mutex
	events  []Event
	next    int
	wrapped bool
	dropped int64
	enabled bool
}

// New builds a tracer holding up to capacity events (older events are
// overwritten once full).
func New(capacity int) (*Tracer, error) {
	if capacity <= 0 {
		return nil, errors.New("trace: capacity must be positive")
	}
	return &Tracer{events: make([]Event, 0, capacity), enabled: true}, nil
}

// SetEnabled toggles recording (disabled tracers drop events).
func (t *Tracer) SetEnabled(on bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.enabled = on
}

// Record appends an event.
func (t *Tracer) Record(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.enabled {
		t.dropped++
		return
	}
	if len(t.events) < cap(t.events) {
		t.events = append(t.events, e)
		return
	}
	t.events[t.next] = e
	t.next = (t.next + 1) % cap(t.events)
	t.wrapped = true
}

// Len returns the number of retained events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dropped returns the number of events dropped while disabled.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot returns the retained events in record order.
func (t *Tracer) Snapshot() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.events))
	if t.wrapped {
		out = append(out, t.events[t.next:]...)
		out = append(out, t.events[:t.next]...)
	} else {
		out = append(out, t.events...)
	}
	return out
}

// WriteCSV exports the retained events with a header row.
func (t *Tracer) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"kind", "disk", "offset", "length", "start_ns", "end_ns", "latency_ns", "hit", "err"}); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	for _, e := range t.Snapshot() {
		rec := []string{
			e.Kind.String(),
			strconv.Itoa(e.Disk),
			strconv.FormatInt(e.Offset, 10),
			strconv.FormatInt(e.Length, 10),
			strconv.FormatInt(int64(e.Start), 10),
			strconv.FormatInt(int64(e.End), 10),
			strconv.FormatInt(int64(e.Latency()), 10),
			strconv.FormatBool(e.Hit),
			e.Err,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	return nil
}

// WriteJSONL exports the retained events as JSON lines.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range t.Snapshot() {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
	}
	return nil
}

// Summary aggregates the retained events.
type Summary struct {
	Events    int
	Clients   int
	Fetches   int
	Directs   int
	Evicts    int
	ClientHit int
	Errors    int
	MeanLat   time.Duration
}

// Summarize computes aggregate counts over the retained events.
func (t *Tracer) Summarize() Summary {
	var s Summary
	var latSum time.Duration
	var latCount int64
	for _, e := range t.Snapshot() {
		s.Events++
		switch e.Kind {
		case KindClient:
			s.Clients++
			if e.Hit {
				s.ClientHit++
			}
			latSum += e.Latency()
			latCount++
		case KindFetch:
			s.Fetches++
		case KindDirect:
			s.Directs++
		case KindEvict:
			s.Evicts++
		}
		if e.Err != "" {
			s.Errors++
		}
	}
	if latCount > 0 {
		s.MeanLat = time.Duration(int64(latSum) / latCount)
	}
	return s
}
