package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEvent(kind Kind, off int64) Event {
	return Event{
		Kind: kind, Stream: 3, Disk: 0, Offset: off, Length: 4096,
		Start: 10 * time.Millisecond, End: 15 * time.Millisecond,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		tr.Record(sampleEvent(KindClient, i))
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	snap := tr.Snapshot()
	for i, e := range snap {
		if e.Offset != int64(i) {
			t.Errorf("snapshot order broken: %v", snap)
		}
	}
}

func TestRingWraps(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tr.Record(sampleEvent(KindFetch, i))
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", tr.Len())
	}
	snap := tr.Snapshot()
	want := []int64{6, 7, 8, 9}
	for i, e := range snap {
		if e.Offset != want[i] {
			t.Fatalf("wrapped snapshot = %v, want offsets %v", snap, want)
		}
	}
}

func TestSetEnabled(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetEnabled(false)
	tr.Record(sampleEvent(KindClient, 1))
	if tr.Len() != 0 || tr.Dropped() != 1 {
		t.Errorf("disabled tracer recorded: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.SetEnabled(true)
	tr.Record(sampleEvent(KindClient, 1))
	if tr.Len() != 1 {
		t.Error("re-enabled tracer did not record")
	}
}

func TestLatency(t *testing.T) {
	e := sampleEvent(KindClient, 0)
	if e.Latency() != 5*time.Millisecond {
		t.Errorf("Latency = %v", e.Latency())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClient: "client", KindFetch: "fetch", KindDirect: "direct", KindEvict: "evict",
		KindRotate: "rotate", KindGC: "gc",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestParseKindRoundTrip(t *testing.T) {
	for k := KindClient; k <= KindGC; k++ {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("ParseKind(%q) = %v, want %v", k.String(), got, k)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("unknown kind name accepted")
	}
}

func TestWriteCSV(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	e := sampleEvent(KindClient, 42)
	e.Hit = true
	tr.Record(e)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "kind,stream,disk,offset") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "client,3,0,42,4096") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[1], "true") {
		t.Errorf("hit flag missing: %q", lines[1])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(sampleEvent(KindFetch, 7))
	tr.Record(sampleEvent(KindEvict, 9))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var got Event
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindFetch || got.Offset != 7 {
		t.Errorf("decoded = %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	tr, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	hit := sampleEvent(KindClient, 0)
	hit.Hit = true
	tr.Record(hit)
	tr.Record(sampleEvent(KindClient, 1))
	tr.Record(sampleEvent(KindFetch, 2))
	tr.Record(sampleEvent(KindDirect, 3))
	ev := sampleEvent(KindEvict, 4)
	tr.Record(ev)
	bad := sampleEvent(KindClient, 5)
	bad.Err = "boom"
	tr.Record(bad)

	rot := sampleEvent(KindRotate, 6)
	rot.Stream = 4
	tr.Record(rot)
	gc := sampleEvent(KindGC, 7)
	gc.Stream = 5
	tr.Record(gc)
	direct := sampleEvent(KindDirect, 8)
	direct.Stream = NoStream
	tr.Record(direct)

	s := tr.Summarize()
	if s.Events != 9 || s.Clients != 3 || s.Fetches != 1 || s.Directs != 2 || s.Evicts != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.Rotates != 1 || s.GCs != 1 {
		t.Errorf("rotate/gc counts = %+v", s)
	}
	if s.Streams != 3 { // streams 3, 4, 5; NoStream excluded
		t.Errorf("Streams = %d, want 3", s.Streams)
	}
	if s.ClientHit != 1 || s.Errors != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanLat != 5*time.Millisecond {
		t.Errorf("MeanLat = %v", s.MeanLat)
	}
}

// roundTripEvents is a kind-diverse sample set for the codec tests.
func roundTripEvents() []Event {
	evs := []Event{
		sampleEvent(KindClient, 0),
		sampleEvent(KindFetch, 4096),
		sampleEvent(KindDirect, 8192),
		sampleEvent(KindEvict, 12288),
		sampleEvent(KindRotate, 0),
		sampleEvent(KindGC, 0),
	}
	evs[0].Hit = true
	evs[2].Stream = NoStream
	evs[3].Err = "io failure"
	evs[4].Stream = 9
	return evs
}

func TestCSVRoundTrip(t *testing.T) {
	tr, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	want := roundTripEvents()
	for _, e := range want {
		tr.Record(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestReadCSVRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"wrong header":  "kind,disk\nclient,0\n",
		"unknown kind":  strings.Join(csvHeader, ",") + "\nwarp,1,0,0,0,0,0,0,false,\n",
		"bad latency":   strings.Join(csvHeader, ",") + "\nclient,1,0,0,0,10,20,999,false,\n",
		"non-int disk":  strings.Join(csvHeader, ",") + "\nclient,1,x,0,0,10,20,10,false,\n",
		"non-bool hit":  strings.Join(csvHeader, ",") + "\nclient,1,0,0,0,10,20,10,maybe,\n",
		"bad stream id": strings.Join(csvHeader, ",") + "\nclient,x,0,0,0,10,20,10,false,\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	want := roundTripEvents()
	for _, e := range want {
		tr.Record(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("round-trip returned %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
