package trace

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func sampleEvent(kind Kind, off int64) Event {
	return Event{
		Kind: kind, Disk: 0, Offset: off, Length: 4096,
		Start: 10 * time.Millisecond, End: 15 * time.Millisecond,
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New(-1); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestRecordAndSnapshot(t *testing.T) {
	tr, err := New(10)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 5; i++ {
		tr.Record(sampleEvent(KindClient, i))
	}
	if tr.Len() != 5 {
		t.Errorf("Len = %d", tr.Len())
	}
	snap := tr.Snapshot()
	for i, e := range snap {
		if e.Offset != int64(i) {
			t.Errorf("snapshot order broken: %v", snap)
		}
	}
}

func TestRingWraps(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < 10; i++ {
		tr.Record(sampleEvent(KindFetch, i))
	}
	if tr.Len() != 4 {
		t.Errorf("Len = %d, want capacity 4", tr.Len())
	}
	snap := tr.Snapshot()
	want := []int64{6, 7, 8, 9}
	for i, e := range snap {
		if e.Offset != want[i] {
			t.Fatalf("wrapped snapshot = %v, want offsets %v", snap, want)
		}
	}
}

func TestSetEnabled(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.SetEnabled(false)
	tr.Record(sampleEvent(KindClient, 1))
	if tr.Len() != 0 || tr.Dropped() != 1 {
		t.Errorf("disabled tracer recorded: len=%d dropped=%d", tr.Len(), tr.Dropped())
	}
	tr.SetEnabled(true)
	tr.Record(sampleEvent(KindClient, 1))
	if tr.Len() != 1 {
		t.Error("re-enabled tracer did not record")
	}
}

func TestLatency(t *testing.T) {
	e := sampleEvent(KindClient, 0)
	if e.Latency() != 5*time.Millisecond {
		t.Errorf("Latency = %v", e.Latency())
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		KindClient: "client", KindFetch: "fetch", KindDirect: "direct", KindEvict: "evict",
	} {
		if k.String() != want {
			t.Errorf("%d.String() = %q", k, k.String())
		}
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should format")
	}
}

func TestWriteCSV(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	e := sampleEvent(KindClient, 42)
	e.Hit = true
	tr.Record(e)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "kind,disk,offset") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], "client,0,42,4096") {
		t.Errorf("row = %q", lines[1])
	}
	if !strings.Contains(lines[1], "true") {
		t.Errorf("hit flag missing: %q", lines[1])
	}
}

func TestWriteJSONL(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	tr.Record(sampleEvent(KindFetch, 7))
	tr.Record(sampleEvent(KindEvict, 9))
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("jsonl lines = %d", len(lines))
	}
	var got Event
	if err := json.Unmarshal([]byte(lines[0]), &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != KindFetch || got.Offset != 7 {
		t.Errorf("decoded = %+v", got)
	}
}

func TestSummarize(t *testing.T) {
	tr, err := New(16)
	if err != nil {
		t.Fatal(err)
	}
	hit := sampleEvent(KindClient, 0)
	hit.Hit = true
	tr.Record(hit)
	tr.Record(sampleEvent(KindClient, 1))
	tr.Record(sampleEvent(KindFetch, 2))
	tr.Record(sampleEvent(KindDirect, 3))
	ev := sampleEvent(KindEvict, 4)
	tr.Record(ev)
	bad := sampleEvent(KindClient, 5)
	bad.Err = "boom"
	tr.Record(bad)

	s := tr.Summarize()
	if s.Events != 6 || s.Clients != 3 || s.Fetches != 1 || s.Directs != 1 || s.Evicts != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.ClientHit != 1 || s.Errors != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.MeanLat != 5*time.Millisecond {
		t.Errorf("MeanLat = %v", s.MeanLat)
	}
}
