package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// TestReadCSVMalformedFields exercises every per-field parse error in
// parseCSVRecord plus structural CSV failures.
func TestReadCSVMalformedFields(t *testing.T) {
	hdr := strings.Join(csvHeader, ",")
	cases := map[string]string{
		"no header":      "",
		"bad offset":     hdr + "\nrotate,1,0,zzz,0,10,20,10,false,\n",
		"bad length":     hdr + "\ngc,1,0,0,zzz,10,20,10,false,\n",
		"bad start_ns":   hdr + "\nclient,1,0,0,0,zzz,20,10,false,\n",
		"bad end_ns":     hdr + "\nclient,1,0,0,0,10,zzz,10,false,\n",
		"short record":   hdr + "\nclient,1,0\n",
		"extra column":   hdr + "\nclient,1,0,0,0,10,20,10,false,,surplus\n",
		"header too big": hdr + ",surplus\nclient,1,0,0,0,10,20,10,false,\n",
	}
	for name, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestReadCSVRotateGCRoundTrip pins the two bookkeeping kinds (rotate,
// gc) through the CSV codec on their own: both are instant events with
// zero length whose kind strings must survive the trip.
func TestReadCSVRotateGCRoundTrip(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindRotate, Stream: 3, Disk: 1, Offset: 1 << 30, Start: time.Millisecond, End: time.Millisecond},
		{Kind: KindGC, Stream: 4, Disk: 2, Start: 2 * time.Millisecond, End: 2 * time.Millisecond},
	}
	for _, e := range want {
		tr.Record(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadJSONLMalformed(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json at all\n",
		"truncated":     `{"kind":1,"stream":`,
		"wrong type":    `{"kind":"client"}` + "\n",
		"trailing junk": `{"kind":1,"stream":0,"disk":0,"offset":0,"length":0,"startNanos":0,"endNanos":0}` + "\n[]\n",
		"bare array":    `[{"kind":1}]` + "\n",
	}
	for name, in := range cases {
		if _, err := ReadJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadJSONLRotateGCRoundTrip(t *testing.T) {
	tr, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	want := []Event{
		{Kind: KindRotate, Stream: 7, Disk: 0, Offset: 4096, Start: time.Second, End: time.Second},
		{Kind: KindGC, Stream: NoStream, Disk: 3},
	}
	for _, e := range want {
		tr.Record(e)
	}
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
	}
}

func TestReadEmptyInputs(t *testing.T) {
	if got, err := ReadJSONL(strings.NewReader("")); err != nil || len(got) != 0 {
		t.Fatalf("empty JSONL: %v %v", got, err)
	}
	// A header-only CSV is a valid empty export.
	if got, err := ReadCSV(strings.NewReader(strings.Join(csvHeader, ",") + "\n")); err != nil || len(got) != 0 {
		t.Fatalf("header-only CSV: %v %v", got, err)
	}
}

// TestCSVRoundTripAfterWrap verifies the codec exports exactly the
// retained window of a wrapped ring, oldest first.
func TestCSVRoundTripAfterWrap(t *testing.T) {
	tr, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 7; i++ {
		tr.Record(Event{Kind: KindClient, Stream: i, Start: time.Duration(i), End: time.Duration(i + 1)})
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("wrapped export has %d events, want 3", len(got))
	}
	for i, e := range got {
		if e.Stream != 4+i {
			t.Fatalf("event %d is stream %d, want %d", i, e.Stream, 4+i)
		}
	}
}
