package bufpool

import (
	"sync"
	"testing"

	"seqstream/internal/invariants"
	"seqstream/internal/obs"
)

func TestClassFor(t *testing.T) {
	cases := []struct {
		n    int64
		want int
	}{
		{1, 0}, {4096, 0}, {4097, 1}, {8192, 1},
		{64 << 10, 4}, {1 << 20, 8}, {8 << 20, 11},
		{128 << 20, 15}, {128<<20 + 1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.want {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	p := New()
	b := p.Get(64 << 10)
	if len(b.Data) != 64<<10 {
		t.Fatalf("len = %d", len(b.Data))
	}
	if cap(b.Data) != 64<<10 {
		t.Fatalf("cap = %d, want class size", cap(b.Data))
	}
	b.Data[0] = 1
	b.Release()
	st := p.Stats()
	if st.Gets != 1 || st.Puts != 1 || st.CheckedOut != 0 || st.BytesOut != 0 {
		t.Errorf("stats after release: %+v", st)
	}
	// The recycled buffer should come back (sync.Pool may drop it, but
	// never across a single goroutine without GC pressure).
	b2 := p.Get(64 << 10)
	if p.Stats().Misses != 1 {
		t.Errorf("second Get missed: %+v", p.Stats())
	}
	b2.Release()
}

func TestRetainDefersRecycle(t *testing.T) {
	p := New()
	b := p.Get(4096)
	b.Retain()
	b.Release()
	if got := p.Stats().CheckedOut; got != 1 {
		t.Fatalf("CheckedOut = %d with a live ref", got)
	}
	if b.Refs() != 1 {
		t.Fatalf("refs = %d", b.Refs())
	}
	b.Release()
	if got := p.Stats().CheckedOut; got != 0 {
		t.Fatalf("CheckedOut = %d after final release", got)
	}
}

func TestOversizedNeverPooled(t *testing.T) {
	p := New()
	b := p.Get(256 << 20)
	if b.class != -1 {
		t.Fatalf("class = %d for oversized buffer", b.class)
	}
	b.Release()
	if st := p.Stats(); st.Puts != 0 {
		t.Errorf("oversized buffer was pooled: %+v", st)
	}
}

func TestNilSafety(t *testing.T) {
	var b *Buf
	b.Retain()
	b.Release() // must not panic
}

func TestDoublePutDetection(t *testing.T) {
	p := New()
	b := p.Get(4096)
	b.Release()
	if invariants.Enabled {
		defer func() {
			if recover() == nil {
				t.Error("double release did not panic under invariants tag")
			}
		}()
		b.Release()
		return
	}
	// Release builds absorb the double-put: the pool must not hand the
	// same buffer out twice.
	b.Release()
	x, y := p.Get(4096), p.Get(4096)
	if x == y {
		t.Fatal("double-put made the pool hand out one buffer twice")
	}
	x.Release()
	y.Release()
}

func TestUseAfterPutDetection(t *testing.T) {
	if !invariants.Enabled {
		t.Skip("poisoning only under the invariants tag")
	}
	p := New()
	b := p.Get(4096)
	stale := b.Data
	b.Release()
	stale[17] = 42 // write through a stale slice
	defer func() {
		if recover() == nil {
			t.Error("use-after-put not detected at next Get")
		}
	}()
	p.Get(4096)
}

func TestConcurrentChurn(t *testing.T) {
	p := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				b := p.Get(int64(4096 << (i % 4)))
				b.Data[0] = byte(i)
				b.Retain()
				b.Release()
				b.Release()
			}
		}()
	}
	wg.Wait()
	if st := p.Stats(); st.CheckedOut != 0 || st.BytesOut != 0 {
		t.Errorf("leaked checkouts: %+v", st)
	}
}

func TestRegisterObs(t *testing.T) {
	p := New()
	reg := obs.NewRegistry()
	RegisterObs(reg, p)
	b := p.Get(4096)
	vars := reg.Vars()
	got, ok := vars["seqstream_bufpool_checked_out"].(float64)
	if !ok {
		t.Fatalf("checked_out gauge not registered: %T", vars["seqstream_bufpool_checked_out"])
	}
	if got != 1 {
		t.Errorf("checked_out = %v with one live buffer", got)
	}
	b.Release()
}
