package bufpool

import "seqstream/internal/obs"

// RegisterObs exposes a pool's accounting on a metric registry:
// checkout/return counters and live checked-out gauges. Registration
// is idempotent per registry (the registry deduplicates by family
// name), but the gauge callbacks read from the pool passed here, so
// register each registry against a single pool.
func RegisterObs(reg *obs.Registry, p *Pool) {
	reg.GaugeFunc("seqstream_bufpool_checked_out", "buffers currently checked out of the pool",
		func() float64 { return float64(p.out.Load()) })
	reg.GaugeFunc("seqstream_bufpool_bytes_out", "backing bytes of checked-out buffers",
		func() float64 { return float64(p.bytes.Load()) })
	reg.GaugeFunc("seqstream_bufpool_gets_total", "buffer checkouts",
		func() float64 { return float64(p.gets.Load()) })
	reg.GaugeFunc("seqstream_bufpool_puts_total", "buffers recycled into the pool",
		func() float64 { return float64(p.puts.Load()) })
	reg.GaugeFunc("seqstream_bufpool_misses_total", "checkouts that allocated fresh memory",
		func() float64 { return float64(p.misses.Load()) })
}
