// Package bufpool provides size-classed, reference-counted byte
// buffers backed by sync.Pool, so the staging and ingest hot paths
// recycle I/O memory instead of allocating per fetch.
//
// Ownership model: Get checks a buffer out with a reference count of
// one. Every party that holds the buffer past the current call chain
// takes its own reference with Retain and drops it with Release; the
// buffer returns to the pool only when the count reaches zero. A
// holder that never calls Release does not corrupt anything — the
// buffer is simply garbage collected instead of recycled — so the
// pool degrades to plain allocation under misuse rather than handing
// out aliased memory.
//
// A reference may also be handed off wholesale instead of
// retained/released in pairs: the storage node's payload delivery
// path detaches the staged buffer from a core.Response
// (Response.TakeBuf) and parks it on the wire frame, and the
// connection writer performs the single Release only after the
// vectored write has drained the bytes onto the socket
// (drain-then-release). At no point does the payload get copied; the
// reference count is what keeps the staging logic free to recycle or
// evict the buffer independently of how long the network takes.
//
// Under the `invariants` build tag, buffers are poisoned on their way
// back into the pool and verified on the way out, so double-releases
// and writes after release panic at the pool boundary instead of
// surfacing as silent data corruption.
package bufpool

import (
	"math/bits"
	"sync"
	"sync/atomic"

	"seqstream/internal/invariants"
)

// minClassBits is the smallest size class (4 KiB).
const minClassBits = 12

// numClasses covers 4 KiB through 128 MiB in powers of two.
const numClasses = 16

// poison is the byte written over released buffers under the
// invariants tag; a disturbed poison pattern at Get time means some
// holder wrote through a stale slice after releasing it.
const poison = 0xDB

// Stats is a point-in-time snapshot of a pool's accounting.
type Stats struct {
	// Gets counts checkouts (pool hits plus fresh allocations).
	Gets int64
	// Puts counts buffers returned to the pool by the final Release.
	Puts int64
	// Misses counts Gets that allocated because the class was empty
	// (or the request exceeded the largest class).
	Misses int64
	// CheckedOut is the number of buffers currently held by callers.
	CheckedOut int64
	// BytesOut is the backing capacity of the checked-out buffers.
	BytesOut int64
	// PeakBytesOut is the high-water mark of BytesOut over the pool's
	// lifetime. Backpressure tests use it to prove a slow consumer
	// never pinned more than its budget of staged memory, even
	// transiently.
	PeakBytesOut int64
}

// Pool hands out reference-counted byte buffers in power-of-two size
// classes. The zero value is not usable; call New. A Pool is safe for
// concurrent use.
type Pool struct {
	classes [numClasses]sync.Pool

	gets   atomic.Int64
	puts   atomic.Int64
	misses atomic.Int64
	out    atomic.Int64
	bytes  atomic.Int64
	peak   atomic.Int64
}

// Buf is one checked-out buffer. Data is sized to the Get request;
// its capacity is the size class. The zero value is invalid.
type Buf struct {
	// Data is the caller-visible slice. Holders must not grow it past
	// its capacity (that would detach it from the pooled backing).
	Data []byte

	pool    *Pool
	class   int
	backing []byte
	refs    atomic.Int32
}

// New builds an empty pool.
func New() *Pool { return &Pool{} }

// classFor returns the class index for a request of n bytes, or -1
// when n exceeds the largest class (such requests are plain
// allocations that never return to the pool).
func classFor(n int64) int {
	if n <= 0 {
		return 0
	}
	b := bits.Len64(uint64(n - 1)) // ceil(log2 n)
	if b < minClassBits {
		return 0
	}
	c := b - minClassBits
	if c >= numClasses {
		return -1
	}
	return c
}

// classSize returns the byte capacity of a class.
func classSize(c int) int64 { return 1 << (minClassBits + c) }

// Get checks out a buffer with len(Data) == n and a reference count
// of one. n must be positive.
func (p *Pool) Get(n int64) *Buf {
	p.gets.Add(1)
	c := classFor(n)
	var b *Buf
	if c >= 0 {
		if v := p.classes[c].Get(); v != nil {
			b = v.(*Buf)
		}
	}
	if b == nil {
		p.misses.Add(1)
		size := n
		if c >= 0 {
			size = classSize(c)
		}
		b = &Buf{pool: p, class: c, backing: make([]byte, size)}
	} else if invariants.Enabled {
		b.checkPoison()
	}
	if invariants.Enabled {
		invariants.Check(b.refs.Load() == 0, "bufpool: Get returned a buffer with %d live refs", b.refs.Load())
	}
	b.refs.Store(1)
	b.Data = b.backing[:n]
	p.out.Add(1)
	now := p.bytes.Add(int64(cap(b.backing)))
	for {
		peak := p.peak.Load()
		if now <= peak || p.peak.CompareAndSwap(peak, now) {
			break
		}
	}
	return b
}

// Retain takes one more reference. Safe on a nil receiver so callers
// can thread optional buffers without guards.
func (b *Buf) Retain() {
	if b == nil {
		return
	}
	n := b.refs.Add(1)
	if invariants.Enabled {
		invariants.Check(n > 1, "bufpool: Retain on a released buffer (refs=%d)", n)
	}
}

// Release drops one reference; the final release returns the buffer
// to its pool. Safe on a nil receiver. Releasing more times than
// retained is a double-put: it panics under the invariants tag and is
// silently absorbed otherwise.
func (b *Buf) Release() {
	if b == nil {
		return
	}
	n := b.refs.Add(-1)
	if n > 0 {
		return
	}
	if invariants.Enabled {
		invariants.Check(n == 0, "bufpool: double release (refs=%d)", n)
	}
	if n < 0 {
		b.refs.Store(0) // absorb the double-put in release builds
		return
	}
	p := b.pool
	p.out.Add(-1)
	p.bytes.Add(-int64(cap(b.backing)))
	if b.class < 0 {
		return // oversized: let the GC take it
	}
	p.puts.Add(1)
	b.Data = nil
	if invariants.Enabled {
		b.applyPoison()
	}
	p.classes[b.class].Put(b)
}

// Refs returns the current reference count (for tests).
func (b *Buf) Refs() int32 { return b.refs.Load() }

// Stats returns the pool's accounting counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:         p.gets.Load(),
		Puts:         p.puts.Load(),
		Misses:       p.misses.Load(),
		CheckedOut:   p.out.Load(),
		BytesOut:     p.bytes.Load(),
		PeakBytesOut: p.peak.Load(),
	}
}

// applyPoison fills the backing with the poison pattern (invariants
// builds only).
func (b *Buf) applyPoison() {
	for i := range b.backing {
		b.backing[i] = poison
	}
}

// checkPoison panics if any byte was written after release
// (invariants builds only).
func (b *Buf) checkPoison() {
	for i, v := range b.backing {
		invariants.Check(v == poison,
			"bufpool: use after release: byte %d of a pooled %d-byte buffer was overwritten", i, cap(b.backing))
		_ = v
	}
}
