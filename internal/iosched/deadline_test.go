package iosched

import (
	"testing"
	"time"
)

func TestDeadlinePolicyString(t *testing.T) {
	if Deadline.String() != "deadline" {
		t.Errorf("String = %q", Deadline.String())
	}
	if err := DefaultConfig(Deadline).Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestDeadlineElevatorOrder(t *testing.T) {
	// Without aged requests, deadline behaves like the elevator.
	eng, s, _ := newSched(t, Deadline, nil)
	var order []int64
	offs := []int64{0, 50 << 20, 10 << 20, 30 << 20}
	for i, off := range offs {
		off := off
		if err := s.Read(i, off, 4096, func() { order = append(order, off) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 10 << 20, 30 << 20, 50 << 20}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestDeadlineExpiryJumpsQueue(t *testing.T) {
	// An aged low-priority request must be serviced ahead of the sweep
	// once it expires.
	eng, s, d := newSched(t, Deadline, func(c *Config) {
		c.Deadline = 50 * time.Millisecond
	})
	var order []string
	// Proc 0 streams from the front of the disk, keeping the sweep
	// near offset 0; proc 1 posts one request far away.
	served1 := false
	if err := s.Read(0, 0, 4096, func() { order = append(order, "p0") }); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(1, d.Capacity()-1<<20, 4096, func() {
		served1 = true
		order = append(order, "p1")
	}); err != nil {
		t.Fatal(err)
	}
	// Keep proc 0 issuing near the front so the elevator alone would
	// starve proc 1.
	count := 0
	var issue0 func()
	issue0 = func() {
		count++
		if count > 60 || served1 {
			return
		}
		off := int64(count) * 128 << 10
		if err := s.Read(0, off, 4096, func() { order = append(order, "p0"); issue0() }); err != nil {
			t.Fatal(err)
		}
	}
	eng.Schedule(time.Millisecond, issue0)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !served1 {
		t.Fatal("far request starved under deadline policy")
	}
	// p1 must have been served before proc 0 finished all 60 requests.
	p1Idx := -1
	for i, who := range order {
		if who == "p1" {
			p1Idx = i
			break
		}
	}
	if p1Idx < 0 || p1Idx == len(order)-1 {
		t.Errorf("expired request served last (idx %d of %d)", p1Idx, len(order))
	}
}

func TestDeadlineRunsManyStreams(t *testing.T) {
	mbps := runStreams(t, Deadline, 16, 32)
	if mbps <= 0 {
		t.Fatal("no throughput")
	}
	// Deadline should sit between noop and anticipatory.
	noop := runStreams(t, Noop, 16, 32)
	if mbps < noop {
		t.Errorf("deadline (%.1f) should be >= noop (%.1f)", mbps, noop)
	}
}
