package iosched

import (
	"testing"
	"time"

	"seqstream/internal/disk"
	"seqstream/internal/sim"
)

func newSched(t *testing.T, p Policy, mutate func(*Config)) (*sim.Engine, *Scheduler, *disk.Disk) {
	t.Helper()
	eng := sim.NewEngine()
	// The drive does no prefetching of its own: the OS readahead model
	// is the unit under test.
	dcfg := disk.ProfileTuned(128<<10, 64, 0, 1)
	d, err := disk.New(eng, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(p)
	if mutate != nil {
		mutate(&cfg)
	}
	s, err := New(eng, d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s, d
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"default", nil, true},
		{"bad policy", func(c *Config) { c.Policy = 0 }, false},
		{"zero max window", func(c *Config) { c.MaxWindow = 0 }, false},
		{"min over max", func(c *Config) { c.MinWindow = c.MaxWindow * 2 }, false},
		{"zero budget", func(c *Config) { c.ReadAheadBudget = 0 }, false},
		{"negative antic", func(c *Config) { c.AnticWait = -1 }, false},
		{"negative deadline", func(c *Config) { c.Deadline = -1 }, false},
		{"zero slice", func(c *Config) { c.CFQSliceBytes = 0 }, false},
		{"negative hit time", func(c *Config) { c.HitTime = -1 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig(Noop)
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewValidation(t *testing.T) {
	eng := sim.NewEngine()
	d, err := disk.New(eng, disk.ProfileWD800JD(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, d, DefaultConfig(Noop)); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(eng, nil, DefaultConfig(Noop)); err == nil {
		t.Error("nil disk accepted")
	}
	if _, err := New(eng, d, Config{}); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Noop: "noop", Elevator: "elevator", Anticipatory: "anticipatory", CFQ: "cfq",
	} {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
	if Policy(42).String() == "" {
		t.Error("unknown policy should format")
	}
}

func TestReadValidation(t *testing.T) {
	_, s, d := newSched(t, Noop, nil)
	if err := s.Read(0, -1, 4096, nil); err == nil {
		t.Error("negative offset accepted")
	}
	if err := s.Read(0, 0, 0, nil); err == nil {
		t.Error("zero length accepted")
	}
	if err := s.Read(0, d.Capacity(), 4096, nil); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestReadaheadWindowHits(t *testing.T) {
	eng, s, _ := newSched(t, Noop, nil)
	var completions int
	read := func(off int64) {
		if err := s.Read(1, off, 4096, func() { completions++ }); err != nil {
			t.Fatal(err)
		}
	}
	// First read misses and fetches a window; run to completion, then
	// the next sequential reads hit the window.
	read(0)
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i < 16; i++ {
		read(i * 4096)
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if completions != 16 {
		t.Fatalf("completions = %d", completions)
	}
	if st.DiskReads != 1 {
		t.Errorf("DiskReads = %d, want 1 (window covers 16 reads)", st.DiskReads)
	}
	if st.CacheHits != 15 {
		t.Errorf("CacheHits = %d, want 15", st.CacheHits)
	}
}

func TestRandomReaderGetsNoWindow(t *testing.T) {
	eng, s, d := newSched(t, Noop, nil)
	// Two scattered reads from the same process: no sequential pattern,
	// so each fetch is exactly the request.
	if err := s.Read(1, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := s.Read(1, d.Capacity()/2, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	// The first read of a fresh process starts at lastEnd==0==off, so it
	// is treated as sequential; the second (scattered) read must not be.
	if st.DiskBytes > s.window()+4096 {
		t.Errorf("DiskBytes = %d; scattered read fetched a window", st.DiskBytes)
	}
}

func TestWindowShrinksUnderPressure(t *testing.T) {
	_, s, _ := newSched(t, Noop, func(c *Config) {
		c.ReadAheadBudget = 1 << 20
		c.MaxWindow = 128 << 10
		c.MinWindow = 16 << 10
	})
	// One process: full window.
	if err := s.Read(0, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if got := s.window(); got != 128<<10 {
		t.Errorf("window with 1 proc = %d, want 128K", got)
	}
	// 64 processes: 1MB/64 = 16K.
	for p := 1; p < 64; p++ {
		if err := s.Read(p, int64(p)*1<<20, 4096, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.window(); got != 16<<10 {
		t.Errorf("window with 64 procs = %d, want 16K", got)
	}
	// 256 processes: clamped at MinWindow.
	for p := 64; p < 256; p++ {
		if err := s.Read(p, int64(p)*64<<20, 4096, nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.window(); got != 16<<10 {
		t.Errorf("window with 256 procs = %d, want MinWindow", got)
	}
}

func TestElevatorOrdersByOffset(t *testing.T) {
	eng, s, _ := newSched(t, Elevator, nil)
	var order []int64
	// Queue scattered one-shot reads from distinct processes while the
	// disk is busy with the first.
	offs := []int64{0, 50 << 20, 10 << 20, 30 << 20}
	for i, off := range offs {
		off := off
		if err := s.Read(i, off, 4096, func() { order = append(order, off) }); err != nil {
			t.Fatal(err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 10 << 20, 30 << 20, 50 << 20}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestAnticipationRewarded(t *testing.T) {
	eng, s, _ := newSched(t, Anticipatory, nil)
	// Process 0 reads sequentially with sub-antic think time; process 1
	// has a distant pending request. AS should keep serving process 0.
	var p0done int
	var issue0 func()
	issue0 = func() {
		off := int64(p0done) * 128 << 10 // window-sized strides: each misses
		if err := s.Read(0, off, 4096, func() {
			p0done++
			if p0done < 8 {
				eng.Schedule(time.Millisecond, issue0) // within AnticWait
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	issue0()
	if err := s.Read(1, 40<<30, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.AnticWaits == 0 {
		t.Error("anticipatory never idled the disk")
	}
	if st.AnticHits == 0 {
		t.Error("anticipation never rewarded")
	}
	if p0done != 8 {
		t.Errorf("p0done = %d", p0done)
	}
}

func TestAnticipationDeadlineSwitches(t *testing.T) {
	eng, s, _ := newSched(t, Anticipatory, func(c *Config) {
		c.Deadline = 20 * time.Millisecond
	})
	// Process 0 streams; process 1's single request must not starve.
	var p1done bool
	var p0count int
	var issue0 func()
	issue0 = func() {
		off := int64(p0count) * 128 << 10
		if err := s.Read(0, off, 4096, func() {
			p0count++
			if !p1done && p0count < 100 {
				eng.Schedule(time.Millisecond, issue0)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	issue0()
	if err := s.Read(1, 40<<30, 4096, func() { p1done = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !p1done {
		t.Error("aged request starved")
	}
	if p0count >= 100 {
		t.Error("process 0 ran to its cap; deadline never bound")
	}
}

// runStreams emulates S xdd processes doing 4 KB sequential sync reads,
// each over its own 1 GB-spaced region, and returns aggregate MB/s.
func runStreams(t *testing.T, p Policy, streams, reads int) float64 {
	t.Helper()
	eng, s, d := newSched(t, p, nil)
	spacing := d.Capacity() / int64(streams)
	spacing -= spacing % 512
	var bytes int64
	for proc := 0; proc < streams; proc++ {
		proc := proc
		base := int64(proc) * spacing
		var n int
		var issue func()
		issue = func() {
			if n >= reads {
				return
			}
			off := base + int64(n)*4096
			n++
			if err := s.Read(proc, off, 4096, func() {
				bytes += 4096
				issue()
			}); err != nil {
				t.Fatal(err)
			}
		}
		issue()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() == 0 {
		return 0
	}
	return float64(bytes) / eng.Now().Seconds() / 1e6
}

func TestFig2Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-stream sweep")
	}
	// Anticipatory beats noop under many streams, and every policy
	// degrades significantly from few to many streams (Fig. 2).
	anticFew := runStreams(t, Anticipatory, 2, 256)
	anticMany := runStreams(t, Anticipatory, 64, 32)
	noopMany := runStreams(t, Noop, 64, 32)
	if anticMany <= noopMany {
		t.Errorf("anticipatory (%.1f MB/s) should beat noop (%.1f MB/s) at 64 streams", anticMany, noopMany)
	}
	if anticFew < 2*anticMany {
		t.Errorf("anticipatory should degrade >=2x from 2 (%.1f) to 64 (%.1f) streams", anticFew, anticMany)
	}
}

func TestCFQServesAllProcesses(t *testing.T) {
	eng, s, d := newSched(t, CFQ, nil)
	spacing := d.Capacity() / 4
	spacing -= spacing % 512
	done := make(map[int]int)
	for proc := 0; proc < 4; proc++ {
		proc := proc
		base := int64(proc) * spacing
		var n int
		var issue func()
		issue = func() {
			if n >= 8 {
				return
			}
			off := base + int64(n)*4096
			n++
			if err := s.Read(proc, off, 4096, func() {
				done[proc]++
				issue()
			}); err != nil {
				t.Fatal(err)
			}
		}
		issue()
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	for proc := 0; proc < 4; proc++ {
		if done[proc] != 8 {
			t.Errorf("proc %d completed %d reads, want 8", proc, done[proc])
		}
	}
}
