package iosched

import (
	"testing"
)

func TestRampValidation(t *testing.T) {
	cfg := DefaultConfig(Noop)
	cfg.RampStart = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative ramp accepted")
	}
	cfg.RampStart = 16 << 10
	if err := cfg.Validate(); err != nil {
		t.Errorf("valid ramp rejected: %v", err)
	}
}

func TestRampDoublesWindows(t *testing.T) {
	eng, s, _ := newSched(t, Noop, func(c *Config) {
		c.RampStart = 16 << 10
		c.MaxWindow = 128 << 10
	})
	// Drive one sequential reader; record the fetch sizes.
	var next int64
	var fetched []int64
	before := int64(0)
	for i := 0; i < 60; i++ {
		if err := s.Read(0, next, 4096, nil); err != nil {
			t.Fatal(err)
		}
		next += 4096
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		if db := s.Stats().DiskBytes; db != before {
			fetched = append(fetched, db-before)
			before = db
		}
	}
	if len(fetched) < 3 {
		t.Fatalf("too few fetches: %v", fetched)
	}
	// Windows ramp 16K -> 32K -> 64K -> 128K (cap).
	want := []int64{16 << 10, 32 << 10, 64 << 10, 128 << 10}
	for i := 0; i < len(want) && i < len(fetched); i++ {
		if fetched[i] != want[i] {
			t.Fatalf("fetch sizes = %v, want prefix %v", fetched, want)
		}
	}
	last := fetched[len(fetched)-1]
	if last != 128<<10 {
		t.Errorf("steady window = %d, want capped at 128K", last)
	}
}

func TestRampResetsOnSeek(t *testing.T) {
	eng, s, d := newSched(t, Noop, func(c *Config) {
		c.RampStart = 16 << 10
	})
	// Sequential run to grow the window.
	var next int64
	for i := 0; i < 40; i++ {
		if err := s.Read(0, next, 4096, nil); err != nil {
			t.Fatal(err)
		}
		next += 4096
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
	}
	// Seek far away, then resume sequentially: the first window after
	// the seek restarts at RampStart.
	far := d.Capacity() / 2
	far -= far % 512
	before := s.Stats().DiskBytes
	if err := s.Read(0, far, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	seekFetch := s.Stats().DiskBytes - before
	if seekFetch != 4096 {
		t.Errorf("seek fetch = %d, want bare request", seekFetch)
	}
	before = s.Stats().DiskBytes
	if err := s.Read(0, far+4096, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	resumeFetch := s.Stats().DiskBytes - before
	if resumeFetch != 16<<10 {
		t.Errorf("post-seek window = %d, want RampStart 16K", resumeFetch)
	}
}

func TestNoRampGrantsFullWindow(t *testing.T) {
	eng, s, _ := newSched(t, Noop, nil) // RampStart = 0
	if err := s.Read(0, 0, 4096, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if db := s.Stats().DiskBytes; db != 128<<10 {
		t.Errorf("first fetch = %d, want full 128K window", db)
	}
}
