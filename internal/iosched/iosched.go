// Package iosched models host I/O schedulers in the style of the Linux
// 2.6 elevators the paper benchmarks in Figure 2: noop (FIFO), a
// C-LOOK elevator, the anticipatory scheduler, and CFQ. The schedulers
// sit between emulated processes issuing small synchronous reads and a
// simulated drive, together with an OS readahead model (per-process
// sequential windows fed from a shared page-cache budget).
//
// The models capture the decision rules that matter for many-stream
// sequential workloads:
//
//   - noop: service window reads in arrival order.
//   - elevator: service in ascending-offset order (C-LOOK sweep).
//   - anticipatory: after serving a process, briefly idle the disk for
//     that process's next sequential read; keep following one process
//     until the oldest waiting request exceeds an aging deadline.
//   - cfq: round-robin across per-process queues with a per-visit byte
//     quantum and idling within the slice.
package iosched

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/disk"
	"seqstream/internal/sim"
)

// Policy selects the scheduling discipline.
type Policy int

// Supported policies.
const (
	Noop Policy = iota + 1
	Elevator
	Anticipatory
	CFQ
	// Deadline is the Linux deadline elevator: C-LOOK order with a
	// per-request expiry that forces aged requests to the head.
	Deadline
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case Noop:
		return "noop"
	case Elevator:
		return "elevator"
	case Anticipatory:
		return "anticipatory"
	case CFQ:
		return "cfq"
	case Deadline:
		return "deadline"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Config tunes the scheduler and the OS readahead model.
type Config struct {
	// Policy is the scheduling discipline.
	Policy Policy
	// MaxWindow is the largest per-process readahead window (Linux
	// default 128 KB).
	MaxWindow int64
	// MinWindow is the smallest window granted to a sequential reader.
	MinWindow int64
	// ReadAheadBudget is the shared page-cache budget for readahead
	// pages; per-process windows shrink to budget/processes under
	// pressure.
	ReadAheadBudget int64
	// AnticWait is how long anticipatory/CFQ idles the disk waiting
	// for the served process's next request.
	AnticWait time.Duration
	// Deadline is the aging bound: anticipation is abandoned when the
	// oldest queued request has waited this long.
	Deadline time.Duration
	// CFQSliceBytes is CFQ's per-visit quantum.
	CFQSliceBytes int64
	// HitTime is the service time of a page-cache hit.
	HitTime time.Duration
	// RampStart, when positive, enables Linux-style window ramp-up: a
	// fresh sequential reader starts with this window and doubles it on
	// every consumed window, up to the pressure-adjusted maximum. Zero
	// grants the full window immediately.
	RampStart int64
}

// DefaultConfig mirrors Linux 2.6.11-era defaults.
func DefaultConfig(p Policy) Config {
	return Config{
		Policy:          p,
		MaxWindow:       128 << 10,
		MinWindow:       16 << 10,
		ReadAheadBudget: 16 << 20,
		AnticWait:       6 * time.Millisecond,
		Deadline:        2 * time.Second,
		CFQSliceBytes:   512 << 10,
		HitTime:         5 * time.Microsecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.Policy < Noop || c.Policy > Deadline:
		return errors.New("iosched: unknown policy")
	case c.MaxWindow <= 0 || c.MinWindow <= 0 || c.MinWindow > c.MaxWindow:
		return errors.New("iosched: need 0 < MinWindow <= MaxWindow")
	case c.ReadAheadBudget <= 0:
		return errors.New("iosched: read-ahead budget must be positive")
	case c.AnticWait < 0 || c.Deadline < 0 || c.HitTime < 0:
		return errors.New("iosched: durations must be >= 0")
	case c.CFQSliceBytes <= 0:
		return errors.New("iosched: CFQ slice must be positive")
	case c.RampStart < 0:
		return errors.New("iosched: ramp start must be >= 0")
	}
	return nil
}

// pendingRead is a process read waiting for a window fetch.
type pendingRead struct {
	proc    int
	off     int64
	length  int64
	window  int64 // disk fetch size
	arrived sim.Time
	done    func()
}

// procState tracks one emulated process.
type procState struct {
	id          int
	cachedStart int64
	cachedEnd   int64
	lastEnd     int64 // end of the last read issued by the process
	sliceUsed   int64 // CFQ: bytes consumed in the current visit
	rampWindow  int64 // current ramped window (0 = fresh)
}

// Stats accumulates scheduler counters.
type Stats struct {
	Reads      int64
	CacheHits  int64
	DiskReads  int64
	DiskBytes  int64
	AnticWaits int64 // times the disk was idled waiting for a process
	AnticHits  int64 // idles that were rewarded with a sequential read
}

// Scheduler dispatches process reads to a drive under a policy. All
// access must happen on the engine loop.
type Scheduler struct {
	eng   *sim.Engine
	cfg   Config
	d     *disk.Disk
	procs map[int]*procState
	queue []*pendingRead

	busy         bool
	lastProc     int // process served by the last window fetch
	hasLastProc  bool
	lastOffset   int64 // elevator position
	anticipating bool
	anticCancel  *sim.Event
	rrOrder      []int // CFQ round-robin order of process ids
	stats        Stats
}

// New builds a scheduler over a drive.
func New(eng *sim.Engine, d *disk.Disk, cfg Config) (*Scheduler, error) {
	if eng == nil {
		return nil, errors.New("iosched: nil engine")
	}
	if d == nil {
		return nil, errors.New("iosched: nil disk")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{eng: eng, cfg: cfg, d: d, procs: make(map[int]*procState)}, nil
}

// Stats returns a copy of the counters.
func (s *Scheduler) Stats() Stats { return s.stats }

// Config returns the configuration.
func (s *Scheduler) Config() Config { return s.cfg }

// window returns the readahead window granted to a sequential reader
// under the current memory pressure.
func (s *Scheduler) window() int64 {
	n := int64(len(s.procs))
	if n < 1 {
		n = 1
	}
	w := s.cfg.ReadAheadBudget / n
	if w > s.cfg.MaxWindow {
		w = s.cfg.MaxWindow
	}
	if w < s.cfg.MinWindow {
		w = s.cfg.MinWindow
	}
	return w
}

// Read submits a synchronous read from process proc. done runs on the
// engine loop when the data is available.
func (s *Scheduler) Read(proc int, off, length int64, done func()) error {
	if off < 0 || length <= 0 || off+length > s.d.Capacity() {
		return fmt.Errorf("iosched: read out of range (off=%d len=%d)", off, length)
	}
	p := s.procs[proc]
	if p == nil {
		p = &procState{id: proc}
		s.procs[proc] = p
		s.rrOrder = append(s.rrOrder, proc)
	}
	s.stats.Reads++

	// Page-cache hit: the readahead window already covers the range.
	if off >= p.cachedStart && off+length <= p.cachedEnd && p.cachedEnd > p.cachedStart {
		s.stats.CacheHits++
		p.lastEnd = off + length
		s.eng.Schedule(s.cfg.HitTime, done)
		return nil
	}

	// Miss: build a window fetch. Sequential readers (picking up where
	// they left off) get a readahead window; others fetch exactly the
	// request. With ramping enabled the window starts small and doubles
	// per consumed window (Linux readahead ramp-up).
	win := length
	if p.lastEnd == off || p.cachedEnd == off {
		grant := s.window()
		if s.cfg.RampStart > 0 {
			if p.rampWindow == 0 {
				p.rampWindow = s.cfg.RampStart
			} else if p.rampWindow < grant {
				p.rampWindow *= 2
			}
			if p.rampWindow < grant {
				grant = p.rampWindow
			}
		}
		if grant > win {
			win = grant
		}
	} else if s.cfg.RampStart > 0 {
		p.rampWindow = 0 // seek: restart the ramp
	}
	if rem := s.d.Capacity() - off; win > rem {
		win = rem
	}
	p.lastEnd = off + length
	req := &pendingRead{proc: proc, off: off, length: length, window: win, arrived: s.eng.Now(), done: done}
	s.queue = append(s.queue, req)

	// An anticipation idle is rewarded when the awaited process issues
	// its next read.
	if s.anticipating && s.hasLastProc && proc == s.lastProc {
		s.stats.AnticHits++
		s.stopAnticipating()
		s.pump()
		return nil
	}
	if !s.busy && !s.anticipating {
		s.pump()
	}
	return nil
}

func (s *Scheduler) stopAnticipating() {
	s.anticipating = false
	if s.anticCancel != nil {
		s.eng.Cancel(s.anticCancel)
		s.anticCancel = nil
	}
}

// pump starts the next window fetch if the disk is free.
func (s *Scheduler) pump() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	idx := s.pick()
	req := s.queue[idx]
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	s.busy = true
	s.lastOffset = req.off + req.window
	err := s.d.Submit(req.off, req.window, func(disk.Result) {
		s.busy = false
		s.finish(req)
	})
	if err != nil {
		// Requests are validated in Read; a failure here means the
		// window overran the disk, which the clamp prevents. Complete
		// the read degenerately to avoid wedging the queue.
		s.busy = false
		s.finish(req)
		return
	}
	s.stats.DiskReads++
	s.stats.DiskBytes += req.window
}

// finish installs the fetched window and completes the process read.
func (s *Scheduler) finish(req *pendingRead) {
	p := s.procs[req.proc]
	p.cachedStart = req.off
	p.cachedEnd = req.off + req.window
	p.sliceUsed += req.window
	s.lastProc = req.proc
	s.hasLastProc = true
	if req.done != nil {
		req.done()
	}
	s.afterService()
}

// afterService decides what the disk does next per policy.
func (s *Scheduler) afterService() {
	switch s.cfg.Policy {
	case Anticipatory, CFQ:
		s.anticipatoryNext()
	default:
		s.pump()
	}
}

// anticipatoryNext keeps following the last process while fairness
// allows, idling the disk briefly for its next request.
func (s *Scheduler) anticipatoryNext() {
	if len(s.queue) > 0 {
		// Aging: switch away when the oldest request has waited too
		// long (AS), or when the slice quantum is spent (CFQ).
		oldest := s.queue[0].arrived
		for _, r := range s.queue {
			if r.arrived < oldest {
				oldest = r.arrived
			}
		}
		expired := s.eng.Now()-oldest > s.cfg.Deadline
		sliceDone := false
		if s.cfg.Policy == CFQ && s.hasLastProc {
			if p := s.procs[s.lastProc]; p != nil && p.sliceUsed >= s.cfg.CFQSliceBytes {
				sliceDone = true
			}
		}
		if expired || sliceDone {
			if sliceDone {
				if p := s.procs[s.lastProc]; p != nil {
					p.sliceUsed = 0
				}
			}
			s.pump()
			return
		}
		// A queued request from the favored process wins immediately.
		if s.hasLastProc {
			for _, r := range s.queue {
				if r.proc == s.lastProc {
					s.pump()
					return
				}
			}
		}
	}
	// Idle the disk briefly, betting on the favored process.
	if !s.hasLastProc {
		s.pump()
		return
	}
	s.stats.AnticWaits++
	s.anticipating = true
	s.anticCancel = s.eng.Schedule(s.cfg.AnticWait, func() {
		s.anticipating = false
		s.anticCancel = nil
		s.pump()
	})
}

// pick chooses the queue index to service next.
func (s *Scheduler) pick() int {
	switch s.cfg.Policy {
	case Elevator:
		return s.pickElevator()
	case Anticipatory:
		return s.pickFavoredOr(s.pickOldest)
	case CFQ:
		return s.pickFavoredOr(s.pickRoundRobin)
	case Deadline:
		return s.pickDeadline()
	default:
		return 0 // FIFO
	}
}

// pickFavoredOr returns a request from the favored process if present,
// else defers to fallback.
func (s *Scheduler) pickFavoredOr(fallback func() int) int {
	if s.hasLastProc {
		p := s.procs[s.lastProc]
		sliceOK := s.cfg.Policy != CFQ || (p != nil && p.sliceUsed < s.cfg.CFQSliceBytes)
		if sliceOK {
			for i, r := range s.queue {
				if r.proc == s.lastProc {
					return i
				}
			}
		}
	}
	return fallback()
}

func (s *Scheduler) pickOldest() int {
	best := 0
	for i, r := range s.queue {
		if r.arrived < s.queue[best].arrived {
			best = i
		}
	}
	return best
}

// pickRoundRobin walks the process order after the favored process.
func (s *Scheduler) pickRoundRobin() int {
	if len(s.rrOrder) == 0 {
		return 0
	}
	start := 0
	if s.hasLastProc {
		for i, id := range s.rrOrder {
			if id == s.lastProc {
				start = i + 1
				break
			}
		}
	}
	for k := 0; k < len(s.rrOrder); k++ {
		id := s.rrOrder[(start+k)%len(s.rrOrder)]
		if p := s.procs[id]; p != nil {
			p.sliceUsed = 0
		}
		for i, r := range s.queue {
			if r.proc == id {
				return i
			}
		}
	}
	return 0
}

// pickElevator picks the smallest offset at or beyond the sweep
// position, wrapping to the global smallest (C-LOOK).
func (s *Scheduler) pickElevator() int {
	bestAbove, bestAny := -1, 0
	for i, r := range s.queue {
		if r.off < s.queue[bestAny].off {
			bestAny = i
		}
		if r.off >= s.lastOffset {
			if bestAbove < 0 || r.off < s.queue[bestAbove].off {
				bestAbove = i
			}
		}
	}
	if bestAbove >= 0 {
		return bestAbove
	}
	return bestAny
}

// pickDeadline services in elevator order unless the oldest queued
// request has exceeded the deadline, in which case it jumps the queue
// (the Linux deadline scheduler's expired-FIFO check).
func (s *Scheduler) pickDeadline() int {
	oldest := s.pickOldest()
	if s.eng.Now()-s.queue[oldest].arrived > s.cfg.Deadline {
		return oldest
	}
	return s.pickElevator()
}
