package sim

import (
	"testing"
	"time"

	"seqstream/internal/obs"
)

func TestInstrument(t *testing.T) {
	eng := NewEngine()
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	eng.Schedule(time.Second, func() {})
	eng.Schedule(2*time.Second, func() {})
	vars := reg.Vars()
	if got := vars["seqstream_sim_pending_events"]; got != float64(2) {
		t.Errorf("pending = %v, want 2", got)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	vars = reg.Vars()
	if got := vars["seqstream_sim_virtual_time_seconds"]; got != float64(2) {
		t.Errorf("virtual time = %v, want 2", got)
	}
	if got := vars["seqstream_sim_processed_events_total"]; got != float64(2) {
		t.Errorf("processed = %v, want 2", got)
	}
	if got := vars["seqstream_sim_pending_events"]; got != float64(0) {
		t.Errorf("pending after drain = %v", got)
	}

	// A second engine over the same registry rebinds the callbacks.
	eng2 := NewEngine()
	eng2.Instrument(reg)
	if got := reg.Vars()["seqstream_sim_virtual_time_seconds"]; got != float64(0) {
		t.Errorf("rebound virtual time = %v, want 0", got)
	}
}
