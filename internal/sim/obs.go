package sim

import "seqstream/internal/obs"

// Instrument registers gauge callbacks exposing the engine's virtual
// clock and event-queue state on reg. The callbacks read engine state
// directly, so they must run on the engine loop or after it stops
// (cmd/experiment snapshots the registry between runs); a live scrape
// of a running engine is not supported. Re-instrumenting a registry
// rebinds the families to the newest engine.
func (e *Engine) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("seqstream_sim_virtual_time_seconds",
		"simulated time elapsed", func() float64 {
			return e.Now().Seconds()
		})
	reg.GaugeFunc("seqstream_sim_pending_events",
		"events waiting in the simulation queue", func() float64 {
			return float64(e.Pending())
		})
	reg.GaugeFunc("seqstream_sim_processed_events_total",
		"events the simulation has executed", func() float64 {
			return float64(e.Processed())
		})
}
