package sim

import (
	"testing"
	"time"
)

func BenchmarkScheduleRun(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.Schedule(time.Duration(i%1000)*time.Microsecond, func() {})
		if i%1024 == 1023 {
			if err := e.Run(); err != nil {
				b.Fatal(err)
			}
		}
	}
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkNestedEvents(b *testing.B) {
	e := NewEngine()
	remaining := b.N
	var tick func()
	tick = func() {
		if remaining > 0 {
			remaining--
			e.Schedule(time.Microsecond, tick)
		}
	}
	e.Schedule(0, tick)
	if err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
