package sim

import (
	"testing"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var order []int
	e.Schedule(3*time.Millisecond, func() { order = append(order, 3) })
	e.Schedule(1*time.Millisecond, func() { order = append(order, 1) })
	e.Schedule(2*time.Millisecond, func() { order = append(order, 2) })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int{1, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if e.Now() != 3*time.Millisecond {
		t.Errorf("Now = %v, want 3ms", e.Now())
	}
}

func TestEngineFIFOTieBreak(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(time.Millisecond, func() { order = append(order, i) })
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-break not FIFO: order = %v", order)
		}
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var hits int
	var rec func()
	rec = func() {
		hits++
		if hits < 5 {
			e.Schedule(time.Millisecond, rec)
		}
	}
	e.Schedule(0, rec)
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if hits != 5 {
		t.Errorf("hits = %d, want 5", hits)
	}
	if e.Now() != 4*time.Millisecond {
		t.Errorf("Now = %v, want 4ms", e.Now())
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.Schedule(time.Millisecond, func() { fired = true })
	e.Cancel(ev)
	e.Cancel(ev) // double cancel is a no-op
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineCancelNil(t *testing.T) {
	e := NewEngine()
	e.Cancel(nil) // must not panic
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	for _, d := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond} {
		d := d
		e.Schedule(d, func() { fired = append(fired, d) })
	}
	if err := e.RunUntil(6 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if e.Now() != 6*time.Millisecond {
		t.Errorf("Now = %v, want 6ms", e.Now())
	}
	if e.Pending() != 1 {
		t.Errorf("Pending = %d, want 1", e.Pending())
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 3 {
		t.Errorf("fired %d events after drain, want 3", len(fired))
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(2*time.Millisecond, func() { count++ })
	if err := e.RunFor(time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 0 {
		t.Error("event fired too early")
	}
	if err := e.RunFor(time.Millisecond); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if count != 1 {
		t.Error("event did not fire")
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() {
			count++
			if count == 3 {
				e.Stop()
			}
		})
	}
	if err := e.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Errorf("count = %d, want 3", count)
	}
}

func TestEngineRunWhile(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 0; i < 10; i++ {
		e.Schedule(time.Duration(i)*time.Millisecond, func() { count++ })
	}
	if err := e.RunWhile(func() bool { return count < 4 }); err != nil {
		t.Fatalf("RunWhile: %v", err)
	}
	if count != 4 {
		t.Errorf("count = %d, want 4", count)
	}
	if err := e.RunWhile(func() bool { return true }); err != nil {
		t.Fatalf("RunWhile drain: %v", err)
	}
	if count != 10 {
		t.Errorf("count = %d, want 10", count)
	}
}

func TestEngineScheduleAtPast(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	e.Schedule(5*time.Millisecond, func() {
		e.ScheduleAt(0, func() { at = e.Now() })
	})
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 5*time.Millisecond {
		t.Errorf("past event ran at %v, want clamped to 5ms", at)
	}
}

func TestEngineNegativeDelay(t *testing.T) {
	e := NewEngine()
	fired := false
	e.Schedule(-time.Second, func() { fired = true })
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !fired || e.Now() != 0 {
		t.Errorf("negative delay: fired=%v now=%v", fired, e.Now())
	}
}

func TestEngineProcessedCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.Schedule(time.Duration(i), func() {})
	}
	if err := e.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if e.Processed() != 7 {
		t.Errorf("Processed = %d, want 7", e.Processed())
	}
}

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	c := NewRand(43)
	same := true
	a = NewRand(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical sequences")
	}
}

func TestRandRanges(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %v", n)
		}
		if n := r.Int63n(1 << 40); n < 0 || n >= 1<<40 {
			t.Fatalf("Int63n out of range: %v", n)
		}
	}
	if r.Intn(0) != 0 || r.Int63n(-5) != 0 || r.Duration(-1) != 0 {
		t.Error("degenerate bounds should return 0")
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(1)
	p := r.Perm(20)
	seen := make(map[int]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}
