package sim

// Rand is a small, seeded, deterministic pseudo-random generator
// (SplitMix64). The simulator avoids math/rand so that every model owns
// an independent stream and results never depend on global state.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Seed zero is valid.
func NewRand(seed uint64) *Rand {
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a value in [0, n). It returns 0 when n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a value in [0, n). It returns 0 when n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Duration returns a duration uniformly distributed in [0, d).
func (r *Rand) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Int63n(int64(d)))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
