// Package sim provides a deterministic discrete-event simulation engine.
//
// All disk, controller, and host models in this repository advance a
// shared virtual clock owned by an Engine. Events are ordered by their
// virtual timestamp with FIFO tie-breaking, so a simulation run with a
// fixed seed is fully reproducible.
package sim

import (
	"container/heap"
	"errors"
	"time"
)

// Time is a virtual instant, expressed as nanoseconds since the start of
// the simulation. It deliberately reuses time.Duration semantics so that
// durations and instants compose with the standard library.
type Time = time.Duration

// ErrStopped is returned by Run variants when the engine was stopped
// explicitly before the run condition was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. Cancel prevents a pending event from
// firing; cancelling an already-fired event is a no-op.
type Event struct {
	at    Time
	seq   uint64
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// At returns the virtual time the event is scheduled for.
func (e *Event) At() Time { return e.at }

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Engine owns the virtual clock and the pending event queue. The zero
// value is not usable; construct with NewEngine.
type Engine struct {
	now     Time
	seq     uint64
	queue   eventQueue
	stopped bool
	// processed counts events executed since construction; useful for
	// runaway detection in tests.
	processed uint64
}

// NewEngine returns an engine with the clock at zero and no pending
// events.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Processed returns the number of events executed so far.
func (e *Engine) Processed() uint64 { return e.processed }

// Pending returns the number of events waiting to fire.
func (e *Engine) Pending() int { return len(e.queue) }

// Schedule runs fn after delay of virtual time. A negative delay is
// treated as zero. The returned Event may be cancelled.
func (e *Engine) Schedule(delay time.Duration, fn func()) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.ScheduleAt(e.now+delay, fn)
}

// ScheduleAt runs fn at the given virtual instant. Instants in the past
// fire at the current time, after already-queued events for that time.
func (e *Engine) ScheduleAt(at Time, fn func()) *Event {
	if at < e.now {
		at = e.now
	}
	ev := &Event{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// Cancel removes a pending event. It is safe to cancel an event that has
// already fired or been cancelled.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.index < 0 {
		return
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	ev.fn = nil
}

// Stop aborts the current Run call after the in-flight event returns.
func (e *Engine) Stop() { e.stopped = true }

// step pops and executes the earliest event. It reports false when the
// queue is empty.
func (e *Engine) step() bool {
	if len(e.queue) == 0 {
		return false
	}
	popped := heap.Pop(&e.queue)
	ev, ok := popped.(*Event)
	if !ok {
		return false
	}
	e.now = ev.at
	e.processed++
	if ev.fn != nil {
		ev.fn()
	}
	return true
}

// Run executes events until the queue drains. It returns ErrStopped if
// Stop was called during execution.
func (e *Engine) Run() error {
	e.stopped = false
	for e.step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}

// RunUntil executes events with timestamps at or before deadline. Events
// scheduled later remain queued and the clock advances to the deadline.
func (e *Engine) RunUntil(deadline Time) error {
	e.stopped = false
	for len(e.queue) > 0 && e.queue[0].at <= deadline {
		e.step()
		if e.stopped {
			return ErrStopped
		}
	}
	if e.now < deadline {
		e.now = deadline
	}
	return nil
}

// RunFor advances the clock by d, executing all events in that window.
func (e *Engine) RunFor(d time.Duration) error {
	return e.RunUntil(e.now + d)
}

// RunWhile executes events while cond returns true and events remain.
// cond is evaluated before each event.
func (e *Engine) RunWhile(cond func() bool) error {
	e.stopped = false
	for cond() {
		if !e.step() {
			return nil
		}
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}
