package blackbox

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"seqstream/internal/flight"
)

type fakeClock struct {
	mu sync.Mutex
	at time.Duration
}

func (c *fakeClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.at
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.at += d
	c.mu.Unlock()
}

func newCapturer(t *testing.T, cfg Config, src Sources) (*Capturer, *fakeClock) {
	t.Helper()
	clk := &fakeClock{}
	c, err := New(cfg, clk.Now, src)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return c, clk
}

func TestCaptureBasics(t *testing.T) {
	rec, err := flight.New(func() time.Duration { return 0 }, 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec.Ring(0).Record(flight.Event{Op: flight.OpSubmit, Trace: 42})
	c, _ := newCapturer(t, Config{}, Sources{
		Flight: rec,
		Stats:  func() any { return map[string]int{"requests": 7} },
		Wall:   func() string { return "2026-08-08T00:00:00Z" },
		Config: map[string]int{"disks": 4},
	})
	b := c.Capture("test trigger")
	if b == nil || b.Seq != 1 || b.SchemaVersion != SchemaVersion {
		t.Fatalf("bundle = %+v", b)
	}
	if b.Flight == nil || len(b.Flight.Rings) != 1 || len(b.Flight.Rings[0]) != 1 {
		t.Fatalf("flight snapshot missing: %+v", b.Flight)
	}
	if b.WallTime == "" || b.Stats == nil || b.Config == nil {
		t.Fatalf("sources missing: %+v", b)
	}
	// The bundle must round-trip through JSON.
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Bundle
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if back.Reason != "test trigger" {
		t.Fatalf("round-trip reason = %q", back.Reason)
	}
}

func TestCaptureThrottleAndFold(t *testing.T) {
	c, clk := newCapturer(t, Config{MinInterval: time.Second}, Sources{})
	b1 := c.Capture("alpha")
	b2 := c.Capture("beta") // within MinInterval: folded
	if b1 != b2 {
		t.Fatalf("trigger within MinInterval made a new bundle")
	}
	if !strings.Contains(b1.Reason, "alpha") || !strings.Contains(b1.Reason, "beta") {
		t.Fatalf("folded reason = %q", b1.Reason)
	}
	c.Capture("beta") // duplicate reason does not repeat
	if strings.Count(b1.Reason, "beta") != 1 {
		t.Fatalf("duplicate reason repeated: %q", b1.Reason)
	}
	clk.Advance(2 * time.Second)
	b3 := c.Capture("gamma")
	if b3 == b1 || b3.Seq != 2 {
		t.Fatalf("post-interval capture did not make a new bundle: %+v", b3)
	}
}

func TestRingBound(t *testing.T) {
	c, clk := newCapturer(t, Config{Keep: 3, MinInterval: -1}, Sources{})
	for i := 0; i < 10; i++ {
		clk.Advance(time.Minute)
		c.Capture("r")
	}
	got := c.Bundles()
	if len(got) != 3 {
		t.Fatalf("ring holds %d bundles, want 3", len(got))
	}
	if got[0].Seq != 8 || got[2].Seq != 10 {
		t.Fatalf("ring kept wrong bundles: %d..%d", got[0].Seq, got[2].Seq)
	}
	if c.Latest().Seq != 10 {
		t.Fatalf("latest = %d", c.Latest().Seq)
	}
}

func TestDiskPersistence(t *testing.T) {
	dir := t.TempDir()
	c, clk := newCapturer(t, Config{Dir: dir, MinInterval: -1}, Sources{})
	c.Capture("one")
	clk.Advance(time.Minute)
	c.Capture("two")
	if err := c.DiskErr(); err != nil {
		t.Fatalf("disk error: %v", err)
	}
	names, _ := filepath.Glob(filepath.Join(dir, "bundle-*.json"))
	if len(names) != 2 {
		t.Fatalf("wrote %d files, want 2: %v", len(names), names)
	}
	b, err := ReadFile(filepath.Join(dir, "bundle-2.json"))
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if b.Seq != 2 || b.Reason != "two" {
		t.Fatalf("loaded bundle = %+v", b)
	}
	// No torn temp files left behind.
	if tmp, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(tmp) != 0 {
		t.Fatalf("temp files left: %v", tmp)
	}
}

func TestReadFileRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "x.json")
	if err := os.WriteFile(p, []byte(`{"foo": 1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(p); err == nil {
		t.Fatal("schema-less JSON accepted as a bundle")
	}
	if err := os.WriteFile(p, []byte(`{"schema_version": 999}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(p); err == nil {
		t.Fatal("future schema version accepted")
	}
}

func TestProfiles(t *testing.T) {
	c, _ := newCapturer(t, Config{Profiles: true}, Sources{})
	b := c.Capture("p")
	if !strings.Contains(b.GoroutineProfile, "goroutine") {
		t.Fatalf("goroutine profile missing: %q", b.GoroutineProfile[:min(80, len(b.GoroutineProfile))])
	}
	if b.HeapProfile == "" {
		t.Fatal("heap profile missing")
	}
}

func TestHandler(t *testing.T) {
	c, clk := newCapturer(t, Config{MinInterval: -1}, Sources{})
	srv := httptest.NewServer(Handler(c))
	defer srv.Close()

	get := func(path string) (int, string, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, rerr := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if rerr != nil {
				break
			}
		}
		return resp.StatusCode, resp.Header.Get("Content-Type"), sb.String()
	}

	code, ct, body := get("/debug/bundle")
	if code != 200 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("empty index: code=%d ct=%q", code, ct)
	}
	if !strings.Contains(body, `"count": 0`) {
		t.Fatalf("empty index body: %s", body)
	}
	if code, ct, _ = get("/debug/bundle?latest=1"); code != 404 || !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("empty latest: code=%d ct=%q", code, ct)
	}

	c.Capture("first")
	clk.Advance(time.Minute)
	c.Capture("second")

	if code, _, body = get("/debug/bundle"); code != 200 || !strings.Contains(body, `"count": 2`) {
		t.Fatalf("index after captures: code=%d body=%s", code, body)
	}
	if code, _, body = get("/debug/bundle?latest=1"); code != 200 || !strings.Contains(body, `"second"`) {
		t.Fatalf("latest: code=%d body=%s", code, body)
	}
	if code, _, body = get("/debug/bundle?seq=1"); code != 200 || !strings.Contains(body, `"first"`) {
		t.Fatalf("seq=1: code=%d body=%s", code, body)
	}
	if code, _, _ = get("/debug/bundle?seq=99"); code != 404 {
		t.Fatalf("missing seq: code=%d", code)
	}
	if code, _, _ = get("/debug/bundle?seq=x"); code != 400 {
		t.Fatalf("bad seq: code=%d", code)
	}
}
