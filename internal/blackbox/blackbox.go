// Package blackbox is the node's flight-data recorder for incidents:
// when a burn-rate alert trips or the health engine raises an anomaly,
// the capturer atomically snapshots everything a postmortem needs —
// flight rings, SLO ledgers, breaker/steering state, health verdicts,
// scheduler counters, goroutine and heap profiles, and the span-log
// tail — into one versioned bundle. The evidence the anomaly detectors
// run on rotates out of the live rings within seconds; the bundle
// freezes it at the moment of the trip.
//
// Bundles live in a bounded in-memory ring served at /debug/bundle and
// are optionally written to disk, so a crash loses at most the bundle
// being written. Capture is throttled (one per MinInterval) because an
// incident that trips several detectors in one tick should produce one
// bundle, not a bundle per detector.
package blackbox

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"
	"time"

	"seqstream/internal/flight"
	"seqstream/internal/obs"
	"seqstream/internal/slo"
)

// SchemaVersion stamps the bundle JSON format for offline tooling.
const SchemaVersion = 1

// Defaults for Config zero fields.
const (
	// DefaultKeep is how many bundles the in-memory ring retains.
	DefaultKeep = 8
	// DefaultMinInterval throttles captures: triggers arriving within
	// it of the previous capture are folded into that bundle.
	DefaultMinInterval = 30 * time.Second
)

// Sources are the node subsystems a bundle snapshots. Every field is
// optional — a nil source simply leaves its section empty — and the
// closure-valued ones decouple the capturer from the packages that own
// the state (core stays free of a blackbox dependency).
type Sources struct {
	// Flight is the flight recorder whose rings are snapshotted.
	Flight *flight.Recorder
	// Spans is the lifecycle span log whose retained tail is captured.
	Spans *obs.SpanLog
	// SLO is the SLO ledger whose full report is embedded.
	SLO *slo.Ledger
	// Health returns the health engine's current report (any
	// JSON-marshalable value).
	Health func() any
	// Breakers returns the per-disk circuit-breaker states.
	Breakers func() any
	// Stats returns the scheduler's counter snapshot.
	Stats func() any
	// Config is the node's effective configuration, embedded verbatim.
	Config any
	// Wall returns the wall-clock time as a string. The capturer's own
	// clock is the injected monotonic one (simulation-safe); wall time
	// is only for humans reading bundles and must be supplied by the
	// binary, which knows whether a wall clock exists.
	Wall func() string
}

// Config parameterizes a Capturer.
type Config struct {
	// Keep bounds the in-memory bundle ring (default DefaultKeep).
	Keep int
	// MinInterval throttles captures (default DefaultMinInterval;
	// negative disables throttling, for tests).
	MinInterval time.Duration
	// Dir, when non-empty, persists each bundle to
	// Dir/bundle-<seq>.json as it is captured.
	Dir string
	// Profiles enables goroutine and heap profile capture. Profile
	// text is the one part of a bundle that is expensive to render
	// (milliseconds, allocations), so simulations keep it off.
	Profiles bool
}

// Bundle is one captured incident snapshot.
type Bundle struct {
	SchemaVersion int `json:"schema_version"`
	// Seq numbers bundles monotonically within one capturer.
	Seq int `json:"seq"`
	// CapturedAt is the node's monotonic clock at capture.
	CapturedAt time.Duration `json:"captured_at_ns"`
	// WallTime is human-readable wall time, empty when the node has no
	// wall clock (simulations).
	WallTime string `json:"wall_time,omitempty"`
	// Reason is what tripped the capture ("burn-rate fast alert",
	// "anomaly: straggler-fetch disk 3", ...). Folded triggers arriving
	// within MinInterval append to the previous bundle's reason.
	Reason string `json:"reason"`

	Flight   *flight.Snapshot `json:"flight,omitempty"`
	Spans    []obs.SpanEvent  `json:"spans,omitempty"`
	SLO      *slo.Report      `json:"slo,omitempty"`
	Health   any              `json:"health,omitempty"`
	Breakers any              `json:"breakers,omitempty"`
	Stats    any              `json:"stats,omitempty"`
	Config   any              `json:"config,omitempty"`

	// GoroutineProfile and HeapProfile hold pprof debug-text dumps.
	GoroutineProfile string `json:"goroutine_profile,omitempty"`
	HeapProfile      string `json:"heap_profile,omitempty"`
}

// Capturer owns the bundle ring. Build one with New; Capture is safe
// for concurrent use and from any goroutine (it never runs under a
// shard or engine lock — callers snapshot their trigger state first).
type Capturer struct {
	cfg Config
	now func() time.Duration
	src Sources

	mu      sync.Mutex
	bundles []*Bundle     //lint:guardedby mu
	seq     int           //lint:guardedby mu
	lastAt  time.Duration //lint:guardedby mu
	ever    bool          //lint:guardedby mu
	diskErr error         //lint:guardedby mu
}

// New builds a capturer. now must be the node's monotonic clock.
func New(cfg Config, now func() time.Duration, src Sources) (*Capturer, error) {
	if now == nil {
		return nil, fmt.Errorf("blackbox: nil clock")
	}
	if cfg.Keep == 0 {
		cfg.Keep = DefaultKeep
	}
	if cfg.Keep < 1 {
		return nil, fmt.Errorf("blackbox: keep must be >= 1, got %d", cfg.Keep)
	}
	if cfg.MinInterval == 0 {
		cfg.MinInterval = DefaultMinInterval
	}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("blackbox: %w", err)
		}
	}
	return &Capturer{cfg: cfg, now: now, src: src}, nil
}

// Capture snapshots every source into a new bundle, unless a bundle
// was captured within MinInterval — then the trigger is folded into
// that bundle's reason instead (one incident, one bundle). It returns
// the bundle the reason landed in. Safe on a nil capturer.
func (c *Capturer) Capture(reason string) *Bundle {
	if c == nil {
		return nil
	}
	now := c.now()
	c.mu.Lock()
	if c.ever && c.cfg.MinInterval >= 0 && now-c.lastAt < c.cfg.MinInterval && len(c.bundles) > 0 {
		b := c.bundles[len(c.bundles)-1]
		if !strings.Contains(b.Reason, reason) {
			b.Reason += "; " + reason
		}
		c.mu.Unlock()
		return b
	}
	c.seq++
	seq := c.seq
	c.lastAt = now
	c.ever = true
	c.mu.Unlock()

	// Snapshot the sources outside the capturer lock: each source does
	// its own (brief) locking, and a concurrent Capture racing here
	// only costs a duplicate snapshot.
	b := &Bundle{
		SchemaVersion: SchemaVersion,
		Seq:           seq,
		CapturedAt:    now,
		Reason:        reason,
	}
	if c.src.Wall != nil {
		b.WallTime = c.src.Wall()
	}
	if c.src.Flight != nil {
		b.Flight = c.src.Flight.Snapshot()
	}
	if c.src.Spans != nil {
		b.Spans = c.src.Spans.Snapshot()
	}
	if c.src.SLO != nil {
		b.SLO = c.src.SLO.Report()
	}
	if c.src.Health != nil {
		b.Health = c.src.Health()
	}
	if c.src.Breakers != nil {
		b.Breakers = c.src.Breakers()
	}
	if c.src.Stats != nil {
		b.Stats = c.src.Stats()
	}
	b.Config = c.src.Config
	if c.cfg.Profiles {
		b.GoroutineProfile = profileText("goroutine")
		b.HeapProfile = profileText("heap")
	}

	c.mu.Lock()
	c.bundles = append(c.bundles, b)
	if len(c.bundles) > c.cfg.Keep {
		c.bundles = c.bundles[len(c.bundles)-c.cfg.Keep:]
	}
	c.mu.Unlock()

	if c.cfg.Dir != "" {
		if err := c.writeDisk(b); err != nil {
			c.mu.Lock()
			c.diskErr = err
			c.mu.Unlock()
		}
	}
	return b
}

// profileText renders one pprof profile as debug text.
func profileText(name string) string {
	p := pprof.Lookup(name)
	if p == nil {
		return ""
	}
	var sb strings.Builder
	if err := p.WriteTo(&sb, 1); err != nil {
		return fmt.Sprintf("profile %s: %v", name, err)
	}
	return sb.String()
}

// writeDisk persists one bundle as Dir/bundle-<seq>.json, written to a
// temp file first so readers never see a torn bundle.
func (c *Capturer) writeDisk(b *Bundle) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	final := filepath.Join(c.cfg.Dir, fmt.Sprintf("bundle-%d.json", b.Seq))
	tmp := final + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, final)
}

// Bundles returns the retained bundles, oldest first. Safe on nil.
func (c *Capturer) Bundles() []*Bundle {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Bundle, len(c.bundles))
	copy(out, c.bundles)
	return out
}

// Latest returns the most recent bundle, nil when none was captured.
func (c *Capturer) Latest() *Bundle {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.bundles) == 0 {
		return nil
	}
	return c.bundles[len(c.bundles)-1]
}

// DiskErr returns the most recent disk-write failure, nil when disk
// persistence is off or healthy.
func (c *Capturer) DiskErr() error {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.diskErr
}

// bundleIndex is the /debug/bundle listing.
type bundleIndex struct {
	SchemaVersion int           `json:"schema_version"`
	Count         int           `json:"count"`
	Bundles       []bundleEntry `json:"bundles"`
}

type bundleEntry struct {
	Seq        int           `json:"seq"`
	CapturedAt time.Duration `json:"captured_at_ns"`
	WallTime   string        `json:"wall_time,omitempty"`
	Reason     string        `json:"reason"`
}

// Handler serves the bundle ring:
//
//	GET /debug/bundle           → index of retained bundles
//	GET /debug/bundle?latest=1  → the most recent bundle
//	GET /debug/bundle?seq=N     → the bundle with that sequence number
func Handler(c *Capturer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if r.URL.Query().Get("latest") != "" {
			b := c.Latest()
			if b == nil {
				jsonError(w, "no bundles captured", http.StatusNotFound)
				return
			}
			_ = enc.Encode(b)
			return
		}
		if s := r.URL.Query().Get("seq"); s != "" {
			seq, err := strconv.Atoi(s)
			if err != nil {
				jsonError(w, "bad seq", http.StatusBadRequest)
				return
			}
			for _, b := range c.Bundles() {
				if b.Seq == seq {
					_ = enc.Encode(b)
					return
				}
			}
			jsonError(w, "bundle not found", http.StatusNotFound)
			return
		}
		idx := bundleIndex{SchemaVersion: SchemaVersion, Bundles: []bundleEntry{}}
		for _, b := range c.Bundles() {
			idx.Bundles = append(idx.Bundles, bundleEntry{
				Seq: b.Seq, CapturedAt: b.CapturedAt, WallTime: b.WallTime, Reason: b.Reason,
			})
		}
		idx.Count = len(idx.Bundles)
		_ = enc.Encode(idx)
	})
}

// jsonError writes a JSON error body with the given status (the
// handler's Content-Type is already set; http.Error would clobber it
// with text/plain).
func jsonError(w http.ResponseWriter, msg string, code int) {
	w.WriteHeader(code)
	fmt.Fprintf(w, "{\"error\":%q}\n", msg)
}

// ReadFile loads one bundle from disk (the tracetool -bundle entry
// point) and validates its schema version.
func ReadFile(path string) (*Bundle, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Bundle
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("blackbox: %s: %w", path, err)
	}
	if b.SchemaVersion == 0 {
		return nil, fmt.Errorf("blackbox: %s: missing schema_version (not a bundle?)", path)
	}
	if b.SchemaVersion > SchemaVersion {
		return nil, fmt.Errorf("blackbox: %s: schema version %d newer than this tool understands (%d)",
			path, b.SchemaVersion, SchemaVersion)
	}
	return &b, nil
}
