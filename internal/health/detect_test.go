package health

import (
	"strings"
	"testing"
	"time"

	"seqstream/internal/flight"
)

// seqEvents stamps ascending Seq values so hand-built event lists
// order the way recorded ones do.
func seqEvents(events []flight.Event) []flight.Event {
	for i := range events {
		events[i].Seq = uint64(i + 1)
	}
	return events
}

func TestDetectRotationStarvation(t *testing.T) {
	// Stream 1 enqueues, then 10 rotations pass before it dispatches.
	var events []flight.Event
	events = append(events, flight.Event{Op: flight.OpEnqueue, Stream: 1, Disk: 0})
	for i := 0; i < 10; i++ {
		events = append(events, flight.Event{Op: flight.OpRotate, Stream: 2, Disk: 1})
	}
	events = append(events, flight.Event{Op: flight.OpDispatch, Stream: 1, Disk: 0})
	events = seqEvents(events)

	got := Detect(events, DetectorConfig{StarveRotations: 5})
	if len(got) != 1 || got[0].Kind != KindRotationStarvation || got[0].Stream != 1 {
		t.Fatalf("anomalies = %+v", got)
	}
	if !strings.Contains(got[0].Detail, "waited through 10 rotations") {
		t.Fatalf("detail = %q", got[0].Detail)
	}
	// Above the threshold: quiet.
	if got := Detect(events, DetectorConfig{StarveRotations: 11}); len(got) != 0 {
		t.Fatalf("expected no anomalies, got %+v", got)
	}
	// A stream still waiting at snapshot end counts too.
	events = []flight.Event{{Op: flight.OpEnqueue, Stream: 9, Disk: 0}}
	for i := 0; i < 6; i++ {
		events = append(events, flight.Event{Op: flight.OpRotate, Stream: 2, Disk: 1})
	}
	if got := Detect(seqEvents(events), DetectorConfig{StarveRotations: 5}); len(got) != 1 || got[0].Stream != 9 {
		t.Fatalf("open-ended wait not flagged: %+v", got)
	}
}

// TestDetectStarvationPrunesTerminated checks the bounded-memory
// behavior the online engine relies on: streams that retire below the
// threshold drop out of the state map, streams that starved stay.
func TestDetectStarvationPrunesTerminated(t *testing.T) {
	d := NewDetectors(DetectorConfig{StarveRotations: 5})
	var events []flight.Event
	// Stream 1 starves (6 rotations) then retires; stream 2 dispatches
	// promptly and retires.
	events = append(events, flight.Event{Op: flight.OpEnqueue, Stream: 1})
	for i := 0; i < 6; i++ {
		events = append(events, flight.Event{Op: flight.OpRotate, Stream: 3})
	}
	events = append(events,
		flight.Event{Op: flight.OpDispatch, Stream: 1},
		flight.Event{Op: flight.OpRetire, Stream: 1},
		flight.Event{Op: flight.OpEnqueue, Stream: 2},
		flight.Event{Op: flight.OpDispatch, Stream: 2},
		flight.Event{Op: flight.OpRetire, Stream: 2},
	)
	for _, e := range seqEvents(events) {
		d.Observe(e)
	}
	if len(d.streams) != 1 {
		t.Fatalf("stream state entries = %d, want only the starved one", len(d.streams))
	}
	got := d.Findings()
	if len(got) != 1 || got[0].Stream != 1 {
		t.Fatalf("findings = %+v", got)
	}
	// Findings must be repeatable without mutating state.
	if again := d.Findings(); len(again) != 1 || again[0] != got[0] {
		t.Fatalf("second findings = %+v", again)
	}
}

func TestDetectMPressure(t *testing.T) {
	events := seqEvents([]flight.Event{
		{Op: flight.OpFetch, Stream: 1, Length: 100},
		{Op: flight.OpFetch, Stream: 2, Length: 100},
		{Op: flight.OpEvict, Stream: 1, Length: 50},
	})
	got := Detect(events, DetectorConfig{StarveRotations: 1 << 30, EvictChurnRatio: 0.20})
	if len(got) != 1 || got[0].Kind != KindMPressure || got[0].Disk != NoDisk {
		t.Fatalf("anomalies = %+v", got)
	}
	if got := Detect(events, DetectorConfig{StarveRotations: 1 << 30, EvictChurnRatio: 0.50}); len(got) != 0 {
		t.Fatalf("below-threshold churn flagged: %+v", got)
	}
}

func TestDetectBreakerFlaps(t *testing.T) {
	events := seqEvents([]flight.Event{
		{Op: flight.OpBreakerOpen, Stream: flight.NoStream, Disk: 4},
		{Op: flight.OpBreakerClose, Stream: flight.NoStream, Disk: 4},
		{Op: flight.OpBreakerOpen, Stream: flight.NoStream, Disk: 4},
		{Op: flight.OpBreakerOpen, Stream: flight.NoStream, Disk: 6},
	})
	got := Detect(events, DetectorConfig{})
	if len(got) != 1 || got[0].Kind != KindBreakerFlap || got[0].Disk != 4 {
		t.Fatalf("anomalies = %+v", got)
	}
}

func TestDetectStragglers(t *testing.T) {
	var events []flight.Event
	// Nine healthy disks at 1ms, one straggler at 10ms, all on shard 0.
	for d := 0; d < 10; d++ {
		dur := time.Millisecond
		if d == 9 {
			dur = 10 * time.Millisecond
		}
		for i := 0; i < 8; i++ {
			events = append(events, flight.Event{Op: flight.OpStaged, Stream: int32(d), Disk: uint16(d), Shard: 0, Dur: dur})
		}
	}
	got := Detect(seqEvents(events), DetectorConfig{StarveRotations: 1 << 30})
	if len(got) != 1 || got[0].Kind != KindStragglerFetch || got[0].Disk != 9 {
		t.Fatalf("anomalies = %+v", got)
	}
	// Too few samples: quiet.
	got = Detect(seqEvents(events), DetectorConfig{StarveRotations: 1 << 30, StragglerMinFetches: 9})
	if len(got) != 0 {
		t.Fatalf("under-sampled disk flagged: %+v", got)
	}
}

// TestDetectIncrementalMatchesBatch feeds the same events through the
// one-shot Detect entry point and through piecemeal Observe calls
// (the online engine's path) and requires identical findings.
func TestDetectIncrementalMatchesBatch(t *testing.T) {
	var events []flight.Event
	events = append(events, flight.Event{Op: flight.OpEnqueue, Stream: 1, Disk: 2})
	for i := 0; i < 7; i++ {
		events = append(events, flight.Event{Op: flight.OpRotate, Stream: 5})
	}
	events = append(events,
		flight.Event{Op: flight.OpDispatch, Stream: 1, Disk: 2},
		flight.Event{Op: flight.OpFetch, Stream: 1, Disk: 2, Length: 1000},
		flight.Event{Op: flight.OpEvict, Stream: 1, Disk: 2, Length: 900},
		flight.Event{Op: flight.OpBreakerOpen, Stream: flight.NoStream, Disk: 2},
		flight.Event{Op: flight.OpBreakerOpen, Stream: flight.NoStream, Disk: 2},
	)
	for d := 0; d < 4; d++ {
		dur := time.Millisecond
		if d == 3 {
			dur = 20 * time.Millisecond
		}
		for i := 0; i < 10; i++ {
			events = append(events, flight.Event{Op: flight.OpStaged, Stream: int32(d), Disk: uint16(d), Shard: 0, Dur: dur})
		}
	}
	events = seqEvents(events)

	cfg := DetectorConfig{StarveRotations: 5}
	batch := Detect(events, cfg)

	inc := NewDetectors(cfg)
	for _, e := range events {
		inc.Observe(e)
	}
	live := inc.Findings()

	if len(batch) != len(live) {
		t.Fatalf("batch found %d, incremental found %d:\n%+v\n%+v", len(batch), len(live), batch, live)
	}
	for i := range batch {
		if batch[i] != live[i] {
			t.Fatalf("finding %d differs:\nbatch: %+v\nlive:  %+v", i, batch[i], live[i])
		}
	}
	// All four kinds must be present in this scenario.
	kinds := map[string]bool{}
	for _, a := range batch {
		kinds[a.Kind] = true
	}
	for _, k := range []string{KindRotationStarvation, KindMPressure, KindBreakerFlap, KindStragglerFetch} {
		if !kinds[k] {
			t.Fatalf("kind %s missing from %+v", k, batch)
		}
	}
}
