// Package health is the node's online health engine: the four anomaly
// detectors that used to run only offline in cmd/tracetool, rebuilt as
// incremental state machines that consume flight-recorder events one
// at a time — so the same code serves both the offline tool (feed a
// sorted snapshot, read the findings) and the live engine (tail the
// rings through flight cursors and keep the findings current). On top
// of the detectors sits a rollup that combines sliding-window latency
// quantiles, circuit-breaker state, and active anomalies into
// per-disk/per-shard/node verdicts served at /debug/health.
package health

import (
	"fmt"
	"sort"
	"time"

	"seqstream/internal/flight"
	"seqstream/internal/obs"
)

// Anomaly kinds, one per detector.
const (
	KindRotationStarvation = "rotation-starvation"
	KindMPressure          = "m-pressure"
	KindBreakerFlap        = "breaker-flap"
	KindStragglerFetch     = "straggler-fetch"
)

// NoDisk marks node-wide anomalies not attributed to one disk.
const NoDisk = -1

// Anomaly is one detector finding.
type Anomaly struct {
	// Kind is the detector: KindRotationStarvation, KindMPressure,
	// KindBreakerFlap, or KindStragglerFetch.
	Kind string `json:"kind"`
	// Stream is the affected stream, flight.NoStream for node/disk
	// findings.
	Stream int32 `json:"stream"`
	// Disk is the affected disk, NoDisk for node-wide findings.
	Disk int `json:"disk"`
	// Detail is a human-readable description with the numbers.
	Detail string `json:"detail"`
}

// DetectorConfig tunes the anomaly thresholds. The zero value gets
// ApplyDefaults'd by NewDetectors and Detect.
type DetectorConfig struct {
	// StarveRotations flags a stream that waited in the candidate
	// queue while at least this many rotations happened node-wide
	// (default 64): the §4.2 round-robin should have reached it.
	StarveRotations int
	// StragglerFactor flags a disk whose median fetch latency exceeds
	// this multiple of its shard's median (default 3.0).
	StragglerFactor float64
	// StragglerMinFetches is the minimum per-disk sample size before a
	// disk can be flagged (default 8).
	StragglerMinFetches int
	// EvictChurnRatio flags M-invariant pressure when evicted bytes
	// exceed this fraction of fetched bytes (default 0.10): staged data
	// is being reclaimed before its stream consumes it.
	EvictChurnRatio float64
	// FlapOpens flags a disk whose breaker opened at least this many
	// times (default 2: open→close→open is a flap).
	FlapOpens int
}

// ApplyDefaults fills zero fields.
func (c *DetectorConfig) ApplyDefaults() {
	if c.StarveRotations == 0 {
		c.StarveRotations = 64
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 3.0
	}
	if c.StragglerMinFetches == 0 {
		c.StragglerMinFetches = 8
	}
	if c.EvictChurnRatio == 0 {
		c.EvictChurnRatio = 0.10
	}
	if c.FlapOpens == 0 {
		c.FlapOpens = 2
	}
}

// streamWait is the per-stream rotation-starvation state: how many
// node-wide rotations passed while the stream sat in the candidate
// queue.
type streamWait struct {
	disk       uint16
	waiting    bool
	waitFrom   uint64 // Seq of the enqueue that started the wait
	rotAtWait  int    // node rotation count at that enqueue
	worst      int    // worst completed wait, in rotations
	worstSince uint64 // Seq the worst wait started at
}

// Detectors runs the four anomaly detectors incrementally: feed every
// flight event (in Seq order) through Observe, read the current
// anomalies with Findings at any point. State is bounded: per-stream
// wait entries are dropped when a stream terminates below threshold,
// and fetch latencies are held as power-of-two histogram sketches
// (obs.Histogram) rather than raw samples, so medians are bucket
// upper-bound estimates — the offline tool and the online engine share
// this estimator and therefore agree.
//
// Detectors is not safe for concurrent use; the engine serializes
// access, and the offline path is single-threaded.
type Detectors struct {
	cfg DetectorConfig

	// rotation starvation
	rotations int
	streams   map[int32]*streamWait

	// M pressure
	fetched int64
	evicted int64
	evicts  int

	// breaker flaps
	opens map[uint16]int

	// straggler fetches
	diskLat  map[uint16]*obs.Histogram
	shardLat map[uint16]*obs.Histogram
	shardOf  map[uint16]uint16

	// speculation: duplicates armed against a disk's slow legs, and
	// wins delivered by each replica. A straggling disk with armed
	// speculations is a disk the scheduler is already routing around,
	// which the straggler detail notes.
	specs    map[uint16]int
	specWins map[uint16]int
}

// NewDetectors returns an empty detector set with cfg (defaults
// applied).
func NewDetectors(cfg DetectorConfig) *Detectors {
	cfg.ApplyDefaults()
	return &Detectors{
		cfg:      cfg,
		streams:  make(map[int32]*streamWait),
		opens:    make(map[uint16]int),
		diskLat:  make(map[uint16]*obs.Histogram),
		shardLat: make(map[uint16]*obs.Histogram),
		shardOf:  make(map[uint16]uint16),
		specs:    make(map[uint16]int),
		specWins: make(map[uint16]int),
	}
}

// Config returns the thresholds in effect (defaults applied).
func (d *Detectors) Config() DetectorConfig { return d.cfg }

// Observe feeds one event. Events must arrive in Seq order for the
// starvation rotation counts to match the offline analyzer exactly;
// out-of-order delivery only skews those counts, it cannot corrupt
// state.
func (d *Detectors) Observe(e flight.Event) {
	switch e.Op {
	case flight.OpRotate:
		d.rotations++
	case flight.OpFetch:
		d.fetched += e.Length
	case flight.OpEvict:
		d.evicted += e.Length
		d.evicts++
	case flight.OpBreakerOpen:
		d.opens[e.Disk]++
	case flight.OpSpeculate:
		d.specs[e.Disk]++
	case flight.OpSpecWin:
		d.specWins[e.Disk]++
	case flight.OpStaged:
		if e.Dur > 0 {
			if d.diskLat[e.Disk] == nil {
				d.diskLat[e.Disk] = &obs.Histogram{}
			}
			if d.shardLat[e.Shard] == nil {
				d.shardLat[e.Shard] = &obs.Histogram{}
			}
			d.diskLat[e.Disk].Observe(e.Dur)
			d.shardLat[e.Shard].Observe(e.Dur)
			d.shardOf[e.Disk] = e.Shard
		}
	}

	if e.Stream == flight.NoStream {
		return
	}
	switch e.Op {
	case flight.OpEnqueue:
		w := d.streams[e.Stream]
		if w == nil {
			w = &streamWait{disk: e.Disk}
			d.streams[e.Stream] = w
		}
		if !w.waiting {
			w.waiting = true
			w.waitFrom = e.Seq
			w.rotAtWait = d.rotations
		}
	case flight.OpDispatch:
		if w := d.streams[e.Stream]; w != nil && w.waiting {
			w.endWait(d.rotations)
		}
	case flight.OpGC, flight.OpRetire:
		if w := d.streams[e.Stream]; w != nil {
			if w.waiting {
				w.endWait(d.rotations)
			}
			// Terminated below threshold: the stream can never be
			// flagged, drop its state so live memory stays bounded.
			if w.worst < d.cfg.StarveRotations {
				delete(d.streams, e.Stream)
			}
		}
	}
}

// endWait closes the current wait and keeps it if it is the worst.
func (w *streamWait) endWait(rotations int) {
	if n := rotations - w.rotAtWait; n > w.worst {
		w.worst = n
		w.worstSince = w.waitFrom
	}
	w.waiting = false
}

// Findings returns the current anomalies, in the detector order and
// detail format the offline tool has always printed: starvation by
// stream id, then M pressure, breaker flaps by disk, stragglers by
// disk. It does not mutate state and may be called repeatedly.
func (d *Detectors) Findings() []Anomaly {
	var out []Anomaly
	out = append(out, d.findStarvation()...)
	out = append(out, d.findMPressure()...)
	out = append(out, d.findBreakerFlaps()...)
	out = append(out, d.findStragglers()...)
	return out
}

func (d *Detectors) findStarvation() []Anomaly {
	ids := make([]int32, 0, len(d.streams))
	for id := range d.streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var out []Anomaly
	for _, id := range ids {
		w := d.streams[id]
		worst, since := w.worst, w.worstSince
		if w.waiting {
			// An open-ended wait counts against everything seen so far.
			if n := d.rotations - w.rotAtWait; n > worst {
				worst, since = n, w.waitFrom
			}
		}
		if worst >= d.cfg.StarveRotations {
			out = append(out, Anomaly{
				Kind:   KindRotationStarvation,
				Stream: id,
				Disk:   int(w.disk),
				Detail: fmt.Sprintf("stream %d waited through %d rotations (threshold %d) after seq %d",
					id, worst, d.cfg.StarveRotations, since),
			})
		}
	}
	return out
}

func (d *Detectors) findMPressure() []Anomaly {
	if d.fetched == 0 || d.evicts == 0 {
		return nil
	}
	ratio := float64(d.evicted) / float64(d.fetched)
	if ratio < d.cfg.EvictChurnRatio {
		return nil
	}
	return []Anomaly{{
		Kind:   KindMPressure,
		Stream: flight.NoStream,
		Disk:   NoDisk,
		Detail: fmt.Sprintf("%d evictions reclaimed %d of %d fetched bytes (%.1f%%, threshold %.1f%%): staging memory M is under pressure",
			d.evicts, d.evicted, d.fetched, ratio*100, d.cfg.EvictChurnRatio*100),
	}}
}

func (d *Detectors) findBreakerFlaps() []Anomaly {
	disks := make([]uint16, 0, len(d.opens))
	for disk := range d.opens {
		disks = append(disks, disk)
	}
	sort.Slice(disks, func(i, j int) bool { return disks[i] < disks[j] })
	var out []Anomaly
	for _, disk := range disks {
		if d.opens[disk] >= d.cfg.FlapOpens {
			out = append(out, Anomaly{
				Kind:   KindBreakerFlap,
				Stream: flight.NoStream,
				Disk:   int(disk),
				Detail: fmt.Sprintf("disk %d's circuit opened %d times (threshold %d)", disk, d.opens[disk], d.cfg.FlapOpens),
			})
		}
	}
	return out
}

func (d *Detectors) findStragglers() []Anomaly {
	disks := make([]uint16, 0, len(d.diskLat))
	for disk := range d.diskLat {
		disks = append(disks, disk)
	}
	sort.Slice(disks, func(i, j int) bool { return disks[i] < disks[j] })
	var out []Anomaly
	for _, disk := range disks {
		h := d.diskLat[disk]
		n := h.Count()
		if n < int64(d.cfg.StragglerMinFetches) {
			continue
		}
		shard := d.shardOf[disk]
		base := d.shardLat[shard].Quantile(0.5)
		if base <= 0 {
			continue
		}
		m := h.Quantile(0.5)
		if float64(m) >= d.cfg.StragglerFactor*float64(base) {
			detail := fmt.Sprintf("disk %d's median fetch latency %v is %.1fx shard %d's median %v (threshold %.1fx, %d fetches)",
				disk, m, float64(m)/float64(base), shard, base, d.cfg.StragglerFactor, n)
			if s := d.specs[disk]; s > 0 {
				detail += fmt.Sprintf("; %d speculative re-issues armed against it", s)
			}
			out = append(out, Anomaly{
				Kind:   KindStragglerFetch,
				Stream: flight.NoStream,
				Disk:   int(disk),
				Detail: detail,
			})
		}
	}
	return out
}

// DiskSpeculations returns how many speculative duplicates were armed
// against disk's slow fetch legs.
func (d *Detectors) DiskSpeculations(disk uint16) int { return d.specs[disk] }

// DiskSpecWins returns how many speculative legs disk delivered first
// as a replica.
func (d *Detectors) DiskSpecWins(disk uint16) int { return d.specWins[disk] }

// DiskFetchMedian returns the bucketed median fetch latency the
// straggler detector holds for disk, zero with no samples. The rollup
// uses it to enrich per-disk reports.
func (d *Detectors) DiskFetchMedian(disk uint16) time.Duration {
	h := d.diskLat[disk]
	if h == nil {
		return 0
	}
	return h.Quantile(0.5)
}

// Detect runs all four detectors over an event slice (a snapshot's
// Merged() output, or any event list — it is re-sorted by Seq before
// feeding). This is the offline entry point cmd/tracetool uses; it
// shares every line of detector logic with the online engine.
func Detect(events []flight.Event, cfg DetectorConfig) []Anomaly {
	sorted := append([]flight.Event(nil), events...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Seq < sorted[j].Seq })
	d := NewDetectors(cfg)
	for _, e := range sorted {
		d.Observe(e)
	}
	return d.Findings()
}
