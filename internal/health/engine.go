package health

import (
	"errors"
	"sort"
	"sync"
	"time"

	"fmt"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/flight"
	"seqstream/internal/obs"
	"seqstream/internal/slo"
)

// Capturer receives incident triggers: the engine calls Capture once
// per newly raised anomaly and per newly tripped burn-rate alert,
// outside its own lock. The blackbox package provides the production
// implementation; the indirection keeps health free of a blackbox
// dependency (and vice versa).
type Capturer interface {
	Capture(reason string)
}

// Defaults for Config zero fields.
const (
	// DefaultInterval is how often the engine polls the flight rings.
	DefaultInterval = time.Second
	// DefaultWindow is the recency horizon for verdict inputs
	// (exemplars) when neither Config nor the core windows supply one.
	DefaultWindow = time.Minute
	// DefaultJournalCap bounds the health-event journal.
	DefaultJournalCap = 256
)

// Config parameterizes an Engine.
type Config struct {
	// Interval is the ring poll period (default DefaultInterval).
	Interval time.Duration
	// Window is the recency horizon for slow-fetch exemplars (default:
	// the core server's WindowSpan when set, else DefaultWindow).
	Window time.Duration
	// Detectors tunes the anomaly thresholds (zero fields defaulted).
	Detectors DetectorConfig
	// JournalCap bounds the raised/cleared journal (default
	// DefaultJournalCap).
	JournalCap int
}

// Verdict is a health rollup outcome, ordered by severity.
type Verdict string

const (
	VerdictHealthy   Verdict = "healthy"
	VerdictStraggler Verdict = "straggler"
	VerdictDegraded  Verdict = "degraded"
)

// rank orders verdicts: healthy < straggler < degraded.
func (v Verdict) rank() int {
	switch v {
	case VerdictDegraded:
		return 2
	case VerdictStraggler:
		return 1
	default:
		return 0
	}
}

// worse returns the more severe of two verdicts.
func (v Verdict) worse(o Verdict) Verdict {
	if o.rank() > v.rank() {
		return o
	}
	return v
}

// JournalEntry is one health-state transition: an anomaly appearing
// ("raised") or disappearing ("cleared"), stamped on the engine clock.
type JournalEntry struct {
	At      time.Duration `json:"at_ns"`
	Change  string        `json:"change"` // "raised" or "cleared"
	Anomaly Anomaly       `json:"anomaly"`
}

// anomalyKey identifies an anomaly across ticks: the detail string
// carries evolving numbers, the (kind, stream, disk) triple does not.
type anomalyKey struct {
	kind   string
	stream int32
	disk   int
}

// exemplar links a disk's slow window to a concrete flight trace: the
// slowest traced staged/deliver/direct event seen recently.
type exemplar struct {
	trace uint64
	dur   time.Duration
	at    time.Duration
}

// Engine is the online health engine: it tails every flight ring
// through incremental cursors (no snapshot, no dump), feeds the shared
// detectors, journals anomaly transitions, and rolls windowed latency
// + breaker state + active anomalies into per-disk/per-shard/node
// verdicts. Start schedules periodic ticks on the injected clock; Tick
// may also be driven manually (tests, one-shot tools).
//
// Everything mutable sits behind mu; the hot request path is never
// touched — the engine's only coupling to the scheduler is reading
// rings the shards already write and the accessors Server exposes.
type Engine struct {
	cfg   Config
	rec   *flight.Recorder
	srv   *core.Server
	clock blockdev.Clock

	mu         sync.Mutex
	det        *Detectors             //lint:guardedby mu
	cursors    []*flight.Cursor       //lint:guardedby mu
	buf        []flight.Event         //lint:guardedby mu
	active     map[anomalyKey]Anomaly //lint:guardedby mu
	journal    []JournalEntry         //lint:guardedby mu
	exemplars  map[int]exemplar       //lint:guardedby mu
	eventsSeen uint64                 //lint:guardedby mu
	armed      bool                   //lint:guardedby mu
	closed     bool                   //lint:guardedby mu
	cancel     func()                 //lint:guardedby mu
	ledger     *slo.Ledger            //lint:guardedby mu
	capturer   Capturer               //lint:guardedby mu
}

// SetSLO attaches an SLO ledger: every tick evaluates its burn rates
// (recording alert-state transitions) and Report embeds its rollup,
// with burn alerts folded into the verdicts. Call before Start.
func (e *Engine) SetSLO(l *slo.Ledger) {
	e.mu.Lock()
	e.ledger = l
	e.mu.Unlock()
}

// SetCapturer attaches an incident capturer, invoked (outside the
// engine lock) on every newly raised anomaly and newly tripped
// burn-rate alert. Call before Start.
func (e *Engine) SetCapturer(c Capturer) {
	e.mu.Lock()
	e.capturer = c
	e.mu.Unlock()
}

// NewEngine builds an engine over a recorder. srv may be nil (the
// rollup then lacks breaker state and windowed quantiles, but the
// detectors still run); rec and clock are required.
func NewEngine(rec *flight.Recorder, srv *core.Server, clock blockdev.Clock, cfg Config) (*Engine, error) {
	if rec == nil {
		return nil, errors.New("health: nil flight recorder")
	}
	if clock == nil {
		return nil, errors.New("health: nil clock")
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Window <= 0 {
		if srv != nil && srv.Windows().Span() > 0 {
			cfg.Window = srv.Windows().Span()
		} else {
			cfg.Window = DefaultWindow
		}
	}
	if cfg.JournalCap <= 0 {
		cfg.JournalCap = DefaultJournalCap
	}
	cfg.Detectors.ApplyDefaults()
	e := &Engine{
		cfg:       cfg,
		rec:       rec,
		srv:       srv,
		clock:     clock,
		det:       NewDetectors(cfg.Detectors),
		cursors:   make([]*flight.Cursor, rec.Rings()),
		active:    make(map[anomalyKey]Anomaly),
		exemplars: make(map[int]exemplar),
	}
	for i := range e.cursors {
		e.cursors[i] = rec.Ring(i).NewCursor()
	}
	return e, nil
}

// Config returns the effective engine configuration.
func (e *Engine) Config() Config { return e.cfg }

// Start schedules the periodic tick loop. Idempotent; a no-op after
// Close.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.closed || e.armed {
		return
	}
	e.armed = true
	e.arm()
}

// arm schedules the next tick. Caller holds mu.
//
//lint:holds mu
func (e *Engine) arm() {
	e.cancel = e.clock.Schedule(e.cfg.Interval, e.tickAndRearm)
}

func (e *Engine) tickAndRearm() {
	e.Tick()
	e.mu.Lock()
	if !e.closed && e.armed {
		e.arm()
	}
	e.mu.Unlock()
}

// Close stops the tick loop. The last computed state stays readable
// through Report and Journal.
func (e *Engine) Close() {
	e.mu.Lock()
	cancel := e.cancel
	e.cancel = nil
	e.closed = true
	e.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// Tick polls every ring cursor once, feeds the new events through the
// detectors in Seq order, refreshes the active-anomaly set and
// journal, and evaluates the SLO burn rates when a ledger is attached.
// Newly raised anomalies and newly tripped burn alerts fire the
// capturer — after the engine lock is released, so the capturer can
// read the engine (and the scheduler) freely. Safe to call manually at
// any time, concurrently with the scheduled loop.
func (e *Engine) Tick() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.buf = e.buf[:0]
	for _, c := range e.cursors {
		e.buf = c.Poll(e.buf)
	}
	// Rings are polled independently; restore the global merge order
	// the offline analyzer sees. (Local alias: the sort closure runs
	// entirely under mu but shardcheck cannot see into it.)
	batch := e.buf
	sort.Slice(batch, func(i, j int) bool { return batch[i].Seq < batch[j].Seq })
	now := e.clock.Now()
	for i := range e.buf {
		e.det.Observe(e.buf[i])
		e.noteExemplar(&e.buf[i], now)
	}
	e.eventsSeen += uint64(len(e.buf))
	raised := e.refreshAnomalies(now)
	var reasons []string
	for _, a := range raised {
		if a.Disk != NoDisk {
			reasons = append(reasons, fmt.Sprintf("anomaly raised: %s (disk %d): %s", a.Kind, a.Disk, a.Detail))
		} else {
			reasons = append(reasons, fmt.Sprintf("anomaly raised: %s: %s", a.Kind, a.Detail))
		}
	}
	if e.ledger != nil {
		for _, al := range e.ledger.Evaluate().Tripped {
			reasons = append(reasons, al.Detail)
		}
	}
	capturer := e.capturer
	e.mu.Unlock()
	if capturer != nil {
		for _, r := range reasons {
			capturer.Capture(r)
		}
	}
}

// noteExemplar keeps, per disk, the slowest recent traced event so a
// slow window links back to a concrete flight trace. Caller holds mu.
//
//lint:holds mu
func (e *Engine) noteExemplar(ev *flight.Event, now time.Duration) {
	if ev.Trace == 0 || ev.Dur <= 0 {
		return
	}
	switch ev.Op {
	case flight.OpStaged, flight.OpDeliver, flight.OpDirect:
	default:
		return
	}
	disk := int(ev.Disk)
	cur, ok := e.exemplars[disk]
	if !ok || ev.Dur >= cur.dur || cur.at < now-e.cfg.Window {
		e.exemplars[disk] = exemplar{trace: ev.Trace, dur: ev.Dur, at: now}
	}
}

// refreshAnomalies diffs the detectors' findings against the active
// set, journals every transition, and returns the newly raised
// anomalies (the capture triggers). Caller holds mu.
//
//lint:holds mu
func (e *Engine) refreshAnomalies(now time.Duration) []Anomaly {
	findings := e.det.Findings()
	next := make(map[anomalyKey]Anomaly, len(findings))
	var raised []Anomaly
	for _, a := range findings {
		k := anomalyKey{a.Kind, a.Stream, a.Disk}
		next[k] = a
		if _, was := e.active[k]; !was {
			e.journalAppend(JournalEntry{At: now, Change: "raised", Anomaly: a})
			raised = append(raised, a)
		}
	}
	for k, a := range e.active {
		if _, still := next[k]; !still {
			e.journalAppend(JournalEntry{At: now, Change: "cleared", Anomaly: a})
		}
	}
	e.active = next
	return raised
}

// journalAppend appends one entry, dropping the oldest past the cap.
// Caller holds mu.
//
//lint:holds mu
func (e *Engine) journalAppend(entry JournalEntry) {
	if len(e.journal) >= e.cfg.JournalCap {
		n := copy(e.journal, e.journal[len(e.journal)-e.cfg.JournalCap+1:])
		e.journal = e.journal[:n]
	}
	e.journal = append(e.journal, entry)
}

// Journal returns a copy of the bounded transition journal, oldest
// first.
func (e *Engine) Journal() []JournalEntry {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]JournalEntry(nil), e.journal...)
}

// Anomalies returns the currently active anomalies in detector order.
func (e *Engine) Anomalies() []Anomaly {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.det.Findings()
}

// WindowStats summarizes one latency window for the rollup.
type WindowStats struct {
	Count int64         `json:"count"`
	Mean  time.Duration `json:"mean_ns"`
	P50   time.Duration `json:"p50_ns"`
	P99   time.Duration `json:"p99_ns"`
}

// DiskReport is one disk's health rollup.
type DiskReport struct {
	Disk    int     `json:"disk"`
	Shard   int     `json:"shard"`
	Verdict Verdict `json:"verdict"`
	// Breaker is the circuit state ("closed", "open", "half-open"),
	// empty when the breaker is disabled or the disk never tripped.
	Breaker string `json:"breaker,omitempty"`
	// Fetch summarizes the disk's windowed fetch latency (zero without
	// core windows).
	Fetch WindowStats `json:"fetch_window"`
	// EWMA is the disk's smoothed fetch latency (zero without core
	// windows) — the dispatch signal the straggler-aware scheduler
	// work consumes.
	EWMA time.Duration `json:"fetch_ewma_ns"`
	// Speculations counts speculative duplicates armed against this
	// disk's slow fetch legs; SpecWins counts speculative legs this
	// disk delivered first as a replica. A straggler verdict with
	// nonzero Speculations is a disk the scheduler is already routing
	// around.
	Speculations int `json:"speculations,omitempty"`
	SpecWins     int `json:"spec_wins,omitempty"`
	// Anomalies lists the kinds of active anomalies attributed to this
	// disk.
	Anomalies []string `json:"anomalies,omitempty"`
	// SlowTrace/SlowDur are the slow-fetch exemplar: the flight trace
	// id of the slowest recent traced event on this disk.
	SlowTrace uint64        `json:"slow_trace,omitempty"`
	SlowDur   time.Duration `json:"slow_dur_ns,omitempty"`
}

// ShardReport is one scheduler shard's rollup: the worst verdict of
// the disks it owns.
type ShardReport struct {
	Shard   int     `json:"shard"`
	Verdict Verdict `json:"verdict"`
}

// Report is the full health rollup served at /debug/health.
type Report struct {
	At      time.Duration `json:"at_ns"`
	Verdict Verdict       `json:"verdict"`
	Window  time.Duration `json:"window_ns"`
	// Request/Fetch are the node-wide windowed latencies (zero without
	// core windows).
	Request    WindowStats    `json:"request_window"`
	Fetch      WindowStats    `json:"fetch_window"`
	Disks      []DiskReport   `json:"disks"`
	Shards     []ShardReport  `json:"shards"`
	Anomalies  []Anomaly      `json:"anomalies"`
	EventsSeen uint64         `json:"events_seen"`
	EventsLost uint64         `json:"events_lost"`
	Journal    []JournalEntry `json:"journal,omitempty"`
	// SLO is the SLO ledger's rollup (SLIs + burn-rate status), nil
	// when no ledger is attached. An active fast burn alert degrades
	// the node verdict; an active slow alert marks it straggler.
	SLO *slo.Report `json:"slo,omitempty"`
}

// windowStats converts a snapshot.
func windowStats(s obs.HistogramSnapshot) WindowStats {
	return WindowStats{Count: s.Count, Mean: s.Mean(), P50: s.Quantile(0.5), P99: s.Quantile(0.99)}
}

// Report computes the rollup: per-disk verdicts from breaker state and
// active anomalies, shard verdicts as the worst of their disks, the
// node verdict as the worst overall (node-wide anomalies — M pressure,
// rotation starvation — degrade the node directly). The verdict rules
// are documented in DESIGN.md §8.2.
func (e *Engine) Report() Report {
	e.mu.Lock()
	defer e.mu.Unlock()

	now := e.clock.Now()
	rep := Report{
		At:         now,
		Verdict:    VerdictHealthy,
		Window:     e.cfg.Window,
		Anomalies:  e.det.Findings(),
		EventsSeen: e.eventsSeen,
		Journal:    append([]JournalEntry(nil), e.journal...),
	}
	for _, c := range e.cursors {
		rep.EventsLost += c.Lost()
	}
	if e.ledger != nil {
		// Report (the ledger's and this one) never consumes trip edges:
		// only Tick's Evaluate does, so scraping cannot swallow a
		// capture trigger.
		rep.SLO = e.ledger.Report()
		if rep.SLO.Burn.FastActive {
			rep.Verdict = rep.Verdict.worse(VerdictDegraded)
		} else if rep.SLO.Burn.SlowActive {
			rep.Verdict = rep.Verdict.worse(VerdictStraggler)
		}
	}

	var win *core.LatencyWindows
	numShards := 1
	var disks []int
	if e.srv != nil {
		win = e.srv.Windows()
		numShards = e.srv.NumShards()
		for d := 0; d < e.srv.Disks(); d++ {
			disks = append(disks, d)
		}
	} else {
		seen := map[int]bool{}
		for d := range e.det.diskLat {
			seen[int(d)] = true
		}
		for d := range e.det.opens {
			seen[int(d)] = true
		}
		for d := range e.exemplars {
			seen[d] = true
		}
		for d := range seen {
			disks = append(disks, d)
		}
		sort.Ints(disks)
	}

	rep.Request = windowStats(win.Request())
	rep.Fetch = windowStats(win.Fetch())

	breakerOf := map[int]string{}
	if e.srv != nil {
		for _, b := range e.srv.BreakerInfos() {
			breakerOf[b.Disk] = b.State
		}
	}

	diskAnoms := map[int][]string{}
	for _, a := range rep.Anomalies {
		if a.Disk != NoDisk {
			diskAnoms[a.Disk] = append(diskAnoms[a.Disk], a.Kind)
		}
		// Node-wide anomalies (and starvation, a scheduling failure)
		// degrade the node verdict directly.
		switch a.Kind {
		case KindMPressure, KindRotationStarvation:
			rep.Verdict = rep.Verdict.worse(VerdictDegraded)
		}
	}

	shardVerdicts := make([]Verdict, numShards)
	for i := range shardVerdicts {
		shardVerdicts[i] = VerdictHealthy
	}
	for _, d := range disks {
		dr := DiskReport{
			Disk:    d,
			Shard:   d % numShards,
			Verdict: VerdictHealthy,
			Breaker: breakerOf[d],
		}
		dr.Fetch = windowStats(win.DiskFetch(d))
		dr.EWMA = win.DiskEWMA(d)
		dr.Speculations = e.det.DiskSpeculations(uint16(d))
		dr.SpecWins = e.det.DiskSpecWins(uint16(d))
		dr.Anomalies = diskAnoms[d]
		for _, kind := range dr.Anomalies {
			switch kind {
			case KindStragglerFetch:
				dr.Verdict = dr.Verdict.worse(VerdictStraggler)
			case KindBreakerFlap:
				dr.Verdict = dr.Verdict.worse(VerdictDegraded)
			case KindRotationStarvation:
				// A starving stream marks its disk degraded too: the
				// round-robin is not reaching work parked on it.
				dr.Verdict = dr.Verdict.worse(VerdictDegraded)
			}
		}
		if dr.Breaker == "open" || dr.Breaker == "half-open" {
			dr.Verdict = dr.Verdict.worse(VerdictDegraded)
		}
		if ex, ok := e.exemplars[d]; ok && ex.at >= now-e.cfg.Window {
			dr.SlowTrace = ex.trace
			dr.SlowDur = ex.dur
		}
		if dr.Shard >= 0 && dr.Shard < numShards {
			shardVerdicts[dr.Shard] = shardVerdicts[dr.Shard].worse(dr.Verdict)
		}
		rep.Verdict = rep.Verdict.worse(dr.Verdict)
		rep.Disks = append(rep.Disks, dr)
	}
	for i, v := range shardVerdicts {
		rep.Shards = append(rep.Shards, ShardReport{Shard: i, Verdict: v})
	}
	return rep
}
