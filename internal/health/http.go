package health

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// verdictValue maps a verdict to its numeric gauge value for the
// Prometheus rendering: 0 healthy, 1 straggler, 2 degraded.
func verdictValue(v Verdict) int { return v.rank() }

// boolGauge renders a boolean as a 0/1 gauge value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// Handler serves the engine's rollup. JSON by default;
// ?format=prom renders Prometheus text exposition (verdict gauges,
// windowed quantiles, anomaly counts by kind, ring-loss counters) with
// slow-fetch trace-id exemplars as comments, since the classic text
// format has no exemplar syntax.
func Handler(e *Engine) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rep := e.Report()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4")
			writeProm(w, rep)
			return
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(rep)
	})
}

// writeProm renders the rollup in Prometheus text format.
func writeProm(w http.ResponseWriter, rep Report) {
	fmt.Fprintf(w, "# HELP seqstream_health_verdict node health verdict (0 healthy, 1 straggler, 2 degraded)\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_verdict gauge\n")
	fmt.Fprintf(w, "seqstream_health_verdict %d\n", verdictValue(rep.Verdict))

	fmt.Fprintf(w, "# HELP seqstream_health_disk_verdict per-disk health verdict (0 healthy, 1 straggler, 2 degraded)\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_disk_verdict gauge\n")
	for _, d := range rep.Disks {
		fmt.Fprintf(w, "seqstream_health_disk_verdict{disk=\"%d\",shard=\"%d\"} %d\n", d.Disk, d.Shard, verdictValue(d.Verdict))
	}

	fmt.Fprintf(w, "# HELP seqstream_health_shard_verdict per-shard health verdict (0 healthy, 1 straggler, 2 degraded)\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_shard_verdict gauge\n")
	for _, s := range rep.Shards {
		fmt.Fprintf(w, "seqstream_health_shard_verdict{shard=\"%d\"} %d\n", s.Shard, verdictValue(s.Verdict))
	}

	fmt.Fprintf(w, "# HELP seqstream_health_window_latency_seconds windowed latency quantiles by path\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_window_latency_seconds gauge\n")
	for _, p := range []struct {
		path string
		s    WindowStats
	}{{"request", rep.Request}, {"fetch", rep.Fetch}} {
		fmt.Fprintf(w, "seqstream_health_window_latency_seconds{path=%q,quantile=\"0.5\"} %g\n", p.path, p.s.P50.Seconds())
		fmt.Fprintf(w, "seqstream_health_window_latency_seconds{path=%q,quantile=\"0.99\"} %g\n", p.path, p.s.P99.Seconds())
	}
	fmt.Fprintf(w, "# HELP seqstream_health_disk_fetch_latency_seconds windowed per-disk fetch latency quantiles\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_disk_fetch_latency_seconds gauge\n")
	for _, d := range rep.Disks {
		fmt.Fprintf(w, "seqstream_health_disk_fetch_latency_seconds{disk=\"%d\",quantile=\"0.5\"} %g\n", d.Disk, d.Fetch.P50.Seconds())
		fmt.Fprintf(w, "seqstream_health_disk_fetch_latency_seconds{disk=\"%d\",quantile=\"0.99\"} %g\n", d.Disk, d.Fetch.P99.Seconds())
		fmt.Fprintf(w, "seqstream_health_disk_fetch_ewma_seconds{disk=\"%d\"} %g\n", d.Disk, d.EWMA.Seconds())
		if d.SlowTrace != 0 {
			// Exemplar: link the slow bucket to a flight trace id.
			fmt.Fprintf(w, "# exemplar disk=%d trace=%016x dur=%v\n", d.Disk, d.SlowTrace, d.SlowDur)
		}
	}

	counts := map[string]int{}
	for _, a := range rep.Anomalies {
		counts[a.Kind]++
	}
	kinds := make([]string, 0, len(counts))
	for k := range counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	fmt.Fprintf(w, "# HELP seqstream_health_anomalies active anomalies by kind\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_anomalies gauge\n")
	for _, k := range kinds {
		fmt.Fprintf(w, "seqstream_health_anomalies{kind=%q} %d\n", k, counts[k])
	}

	if rep.SLO != nil {
		fmt.Fprintf(w, "# HELP seqstream_health_slo_on_time_ratio cumulative on-time delivery ratio\n")
		fmt.Fprintf(w, "# TYPE seqstream_health_slo_on_time_ratio gauge\n")
		fmt.Fprintf(w, "seqstream_health_slo_on_time_ratio %g\n", rep.SLO.Node.OnTimeRatio)
		fmt.Fprintf(w, "# HELP seqstream_health_slo_burn_rate error-budget burn rate by window\n")
		fmt.Fprintf(w, "# TYPE seqstream_health_slo_burn_rate gauge\n")
		fmt.Fprintf(w, "seqstream_health_slo_burn_rate{window=\"fast\"} %g\n", rep.SLO.Burn.Fast.Burn)
		fmt.Fprintf(w, "seqstream_health_slo_burn_rate{window=\"mid\"} %g\n", rep.SLO.Burn.Mid.Burn)
		fmt.Fprintf(w, "seqstream_health_slo_burn_rate{window=\"slow\"} %g\n", rep.SLO.Burn.Slow.Burn)
		fmt.Fprintf(w, "# HELP seqstream_health_slo_alert_active burn-rate alert state (1 active) by severity\n")
		fmt.Fprintf(w, "# TYPE seqstream_health_slo_alert_active gauge\n")
		fmt.Fprintf(w, "seqstream_health_slo_alert_active{severity=\"fast\"} %d\n", boolGauge(rep.SLO.Burn.FastActive))
		fmt.Fprintf(w, "seqstream_health_slo_alert_active{severity=\"slow\"} %d\n", boolGauge(rep.SLO.Burn.SlowActive))
	}

	fmt.Fprintf(w, "# HELP seqstream_health_events_seen_total flight events consumed by the health engine\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_events_seen_total counter\n")
	fmt.Fprintf(w, "seqstream_health_events_seen_total %d\n", rep.EventsSeen)
	fmt.Fprintf(w, "# HELP seqstream_health_events_lost_total flight events overwritten before the engine read them\n")
	fmt.Fprintf(w, "# TYPE seqstream_health_events_lost_total counter\n")
	fmt.Fprintf(w, "seqstream_health_events_lost_total %d\n", rep.EventsLost)
}
