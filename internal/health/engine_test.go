package health

import (
	"encoding/json"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/flight"
)

// manualClock is a hand-advanced blockdev.Clock for engine tests:
// Schedule captures the callback, fire runs it.
type manualClock struct {
	mu     sync.Mutex
	now    time.Duration
	timers []*manualTimer
}

type manualTimer struct {
	at       time.Duration
	fn       func()
	canceled bool
}

func (c *manualClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *manualClock) Schedule(d time.Duration, fn func()) (cancel func()) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &manualTimer{at: c.now + d, fn: fn}
	c.timers = append(c.timers, t)
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		t.canceled = true
	}
}

// advance moves time forward and runs every due, uncanceled timer.
func (c *manualClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d
	var due []*manualTimer
	rest := c.timers[:0]
	for _, t := range c.timers {
		if !t.canceled && t.at <= c.now {
			due = append(due, t)
		} else if !t.canceled {
			rest = append(rest, t)
		}
	}
	c.timers = rest
	c.mu.Unlock()
	for _, t := range due {
		t.fn()
	}
}

func (c *manualClock) pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, t := range c.timers {
		if !t.canceled {
			n++
		}
	}
	return n
}

var _ blockdev.Clock = (*manualClock)(nil)

// recordAll routes each event to the recorder ring matching its Shard
// stamp, the way core shards do.
func recordAll(rec *flight.Recorder, events []flight.Event) {
	for _, e := range events {
		rec.Ring(int(e.Shard)).Record(e)
	}
}

// anomalyScenario emits events that trip all four detectors (with the
// thresholds in anomalyConfig): stream 1 starves open-endedly (its
// enqueue is ring 0's first claim, so it globally precedes the ring-1
// rotations in Seq order), M churns, disk 1's breaker flaps, disk 1
// straggles behind shard 0.
func anomalyScenario() []flight.Event {
	var events []flight.Event
	events = append(events, flight.Event{Op: flight.OpEnqueue, Stream: 1, Disk: 0})
	for i := 0; i < 6; i++ {
		events = append(events, flight.Event{Op: flight.OpRotate, Stream: 2, Disk: 1, Shard: 1})
	}
	events = append(events,
		flight.Event{Op: flight.OpFetch, Length: 1000},
		flight.Event{Op: flight.OpEvict, Length: 500},
		flight.Event{Op: flight.OpBreakerOpen, Disk: 1},
		flight.Event{Op: flight.OpBreakerOpen, Disk: 1},
	)
	for i := 0; i < 8; i++ {
		events = append(events, flight.Event{Op: flight.OpStaged, Disk: 0, Shard: 0, Dur: time.Millisecond})
		events = append(events, flight.Event{Op: flight.OpStaged, Disk: 1, Shard: 0, Dur: 10 * time.Millisecond})
	}
	return events
}

func anomalyConfig() DetectorConfig {
	return DetectorConfig{StarveRotations: 5}
}

func newTestEngine(t *testing.T, rec *flight.Recorder, clk *manualClock, cfg Config) *Engine {
	t.Helper()
	e, err := NewEngine(rec, nil, clk, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestEngineOnlineMatchesOffline is the parity acceptance check: the
// live engine, tailing the rings incrementally across several ticks,
// must report exactly what the offline detector finds on a snapshot of
// the same run.
func TestEngineOnlineMatchesOffline(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 2, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{Detectors: anomalyConfig()})

	// Feed the scenario in three chunks with a tick after each, so the
	// cursors genuinely run incrementally.
	events := anomalyScenario()
	for _, chunk := range [][]flight.Event{events[:5], events[5:14], events[14:]} {
		recordAll(rec, chunk)
		e.Tick()
	}

	online := e.Anomalies()
	offline := Detect(rec.Snapshot().Merged(), anomalyConfig())
	if len(online) == 0 {
		t.Fatal("engine found no anomalies")
	}
	if !reflect.DeepEqual(online, offline) {
		t.Fatalf("online/offline mismatch:\n online: %+v\noffline: %+v", online, offline)
	}
	kinds := map[string]bool{}
	for _, a := range online {
		kinds[a.Kind] = true
	}
	for _, k := range []string{KindRotationStarvation, KindMPressure, KindBreakerFlap, KindStragglerFetch} {
		if !kinds[k] {
			t.Fatalf("missing kind %s in %+v", k, online)
		}
	}
	if rep := e.Report(); rep.EventsSeen != uint64(len(events)) || rep.EventsLost != 0 {
		t.Fatalf("seen=%d lost=%d, want %d/0", rep.EventsSeen, rep.EventsLost, len(events))
	}
}

// TestEngineJournal checks raise/clear transitions land in the journal
// with timestamps: M pressure raises when eviction churn crosses the
// ratio, clears when enough fetched bytes dilute it.
func TestEngineJournal(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{})

	recordAll(rec, []flight.Event{
		{Op: flight.OpFetch, Length: 1000},
		{Op: flight.OpEvict, Length: 500},
	})
	clk.advance(time.Second)
	e.Tick()
	j := e.Journal()
	if len(j) != 1 || j[0].Change != "raised" || j[0].Anomaly.Kind != KindMPressure {
		t.Fatalf("journal after raise = %+v", j)
	}
	if j[0].At != time.Second {
		t.Fatalf("raise stamped at %v", j[0].At)
	}

	recordAll(rec, []flight.Event{{Op: flight.OpFetch, Length: 100000}})
	clk.advance(time.Second)
	e.Tick()
	j = e.Journal()
	if len(j) != 2 || j[1].Change != "cleared" || j[1].Anomaly.Kind != KindMPressure {
		t.Fatalf("journal after clear = %+v", j)
	}
	if len(e.Anomalies()) != 0 {
		t.Fatalf("anomaly still active after clear: %+v", e.Anomalies())
	}

	// A steady state adds nothing.
	e.Tick()
	if len(e.Journal()) != 2 {
		t.Fatalf("journal grew without transitions: %+v", e.Journal())
	}
}

// TestEngineJournalBounded checks the journal drops oldest entries
// past JournalCap.
func TestEngineJournalBounded(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{JournalCap: 2})

	fetched := int64(1000)
	for i := 0; i < 2; i++ {
		// Evict half of everything fetched so far: raise.
		recordAll(rec, []flight.Event{{Op: flight.OpFetch, Length: fetched}, {Op: flight.OpEvict, Length: fetched}})
		fetched *= 2
		e.Tick()
		// Fetch 100× more: ratio collapses, clear.
		recordAll(rec, []flight.Event{{Op: flight.OpFetch, Length: fetched * 100}})
		fetched += fetched * 100
		e.Tick()
	}
	j := e.Journal()
	if len(j) != 2 {
		t.Fatalf("journal len = %d, want cap 2 (%+v)", len(j), j)
	}
	if j[0].Change != "raised" || j[1].Change != "cleared" {
		t.Fatalf("journal kept wrong entries: %+v", j)
	}
}

// TestEngineVerdicts exercises the rollup rules without a core server:
// breaker flaps degrade their disk, stragglers mark theirs, node-wide
// M pressure degrades the node only.
func TestEngineVerdicts(t *testing.T) {
	build := func(events []flight.Event) *Engine {
		clk := &manualClock{}
		rec, err := flight.New(clk.Now, 1, 256)
		if err != nil {
			t.Fatal(err)
		}
		e := newTestEngine(t, rec, clk, Config{Detectors: anomalyConfig()})
		recordAll(rec, events)
		e.Tick()
		return e
	}

	var flap []flight.Event
	flap = append(flap, flight.Event{Op: flight.OpBreakerOpen, Disk: 1})
	flap = append(flap, flight.Event{Op: flight.OpBreakerOpen, Disk: 1})
	rep := build(flap).Report()
	if rep.Verdict != VerdictDegraded {
		t.Fatalf("flap node verdict = %s", rep.Verdict)
	}
	if len(rep.Disks) != 1 || rep.Disks[0].Disk != 1 || rep.Disks[0].Verdict != VerdictDegraded {
		t.Fatalf("flap disks = %+v", rep.Disks)
	}
	if len(rep.Shards) != 1 || rep.Shards[0].Verdict != VerdictDegraded {
		t.Fatalf("flap shards = %+v", rep.Shards)
	}

	var strag []flight.Event
	for i := 0; i < 8; i++ {
		strag = append(strag, flight.Event{Op: flight.OpStaged, Disk: 0, Shard: 0, Dur: time.Millisecond})
		strag = append(strag, flight.Event{Op: flight.OpStaged, Disk: 1, Shard: 0, Dur: 10 * time.Millisecond})
	}
	rep = build(strag).Report()
	if rep.Verdict != VerdictStraggler {
		t.Fatalf("straggler node verdict = %s", rep.Verdict)
	}
	found := false
	for _, d := range rep.Disks {
		if d.Disk == 1 {
			found = true
			if d.Verdict != VerdictStraggler {
				t.Fatalf("straggler disk verdict = %s", d.Verdict)
			}
		} else if d.Verdict != VerdictHealthy {
			t.Fatalf("disk %d verdict = %s, want healthy", d.Disk, d.Verdict)
		}
	}
	if !found {
		t.Fatalf("disk 1 missing from report: %+v", rep.Disks)
	}

	rep = build([]flight.Event{
		{Op: flight.OpFetch, Length: 1000},
		{Op: flight.OpEvict, Length: 500},
	}).Report()
	if rep.Verdict != VerdictDegraded {
		t.Fatalf("m-pressure node verdict = %s", rep.Verdict)
	}
	for _, d := range rep.Disks {
		if d.Verdict != VerdictHealthy {
			t.Fatalf("m-pressure should not mark disks: %+v", d)
		}
	}

	rep = build(nil).Report()
	if rep.Verdict != VerdictHealthy || len(rep.Anomalies) != 0 {
		t.Fatalf("idle report = %+v", rep)
	}
}

// TestEngineExemplar checks a traced slow event surfaces as the disk's
// slow-fetch exemplar and ages out of the report past the window.
func TestEngineExemplar(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{Window: time.Minute})

	recordAll(rec, []flight.Event{
		{Op: flight.OpStaged, Disk: 0, Trace: 0xabcd, Dur: 5 * time.Millisecond},
		{Op: flight.OpStaged, Disk: 0, Trace: 0x1234, Dur: 2 * time.Millisecond},
	})
	e.Tick()
	rep := e.Report()
	if len(rep.Disks) != 1 || rep.Disks[0].SlowTrace != 0xabcd || rep.Disks[0].SlowDur != 5*time.Millisecond {
		t.Fatalf("exemplar = %+v", rep.Disks)
	}
	// Past the window the exemplar no longer represents current
	// behavior and drops out.
	clk.advance(2 * time.Minute)
	if rep := e.Report(); rep.Disks[0].SlowTrace != 0 {
		t.Fatalf("stale exemplar survived: %+v", rep.Disks)
	}
}

// TestEngineStartClose drives the scheduled loop on the manual clock:
// Start arms a timer, each firing ticks and re-arms, Close cancels.
func TestEngineStartClose(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{Interval: time.Second})

	e.Start()
	e.Start() // idempotent
	if n := clk.pending(); n != 1 {
		t.Fatalf("timers after Start = %d", n)
	}
	recordAll(rec, []flight.Event{{Op: flight.OpRotate}})
	clk.advance(time.Second)
	if rep := e.Report(); rep.EventsSeen != 1 {
		t.Fatalf("tick did not run: seen=%d", rep.EventsSeen)
	}
	if n := clk.pending(); n != 1 {
		t.Fatalf("loop did not re-arm: %d timers", n)
	}
	e.Close()
	if n := clk.pending(); n != 0 {
		t.Fatalf("Close left %d timers", n)
	}
	// A racing fire after Close would be a no-op anyway.
	recordAll(rec, []flight.Event{{Op: flight.OpRotate}})
	clk.advance(time.Second)
	if rep := e.Report(); rep.EventsSeen != 1 {
		t.Fatalf("tick ran after Close: seen=%d", rep.EventsSeen)
	}
}

// TestHandler checks both response formats at /debug/health.
func TestHandler(t *testing.T) {
	clk := &manualClock{}
	rec, err := flight.New(clk.Now, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	e := newTestEngine(t, rec, clk, Config{})
	recordAll(rec, []flight.Event{
		{Op: flight.OpBreakerOpen, Disk: 1},
		{Op: flight.OpBreakerOpen, Disk: 1},
	})
	e.Tick()
	h := Handler(e)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/health", nil))
	if ct := w.Header().Get("Content-Type"); ct != "application/json; charset=utf-8" {
		t.Fatalf("content type %q", ct)
	}
	var rep Report
	if err := json.Unmarshal(w.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Verdict != VerdictDegraded || len(rep.Anomalies) != 1 || rep.Anomalies[0].Kind != KindBreakerFlap {
		t.Fatalf("JSON report = %+v", rep)
	}
	if len(rep.Journal) != 1 || rep.Journal[0].Change != "raised" {
		t.Fatalf("JSON journal = %+v", rep.Journal)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/debug/health?format=prom", nil))
	body := w.Body.String()
	for _, want := range []string{
		"seqstream_health_verdict 2\n",
		"seqstream_health_disk_verdict{disk=\"1\",shard=\"0\"} 2\n",
		"seqstream_health_anomalies{kind=\"breaker-flap\"} 1\n",
		"seqstream_health_events_seen_total 2\n",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("prom output missing %q:\n%s", want, body)
		}
	}
}

// TestBufferHitZeroAllocWithEngine repeats the core buffer-hit
// allocation guard with the full health stack attached — windows on,
// flight recorder on, engine built over the rings. The measured
// request path must stay allocation-free; the engine's own work
// (cursor polling, detector state) happens on its tick, outside the
// request path, and is ticked around the measured loop here so the
// guard proves the attachment itself costs nothing per request.
func TestBufferHitZeroAllocWithEngine(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewRealClock()
	rec, err := flight.New(clock.Now, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64<<20, 1<<20)
	cfg.NearSeqWindow = 1 << 20
	cfg.GCPeriod = time.Hour
	cfg.EvictIdle = time.Hour
	cfg.WindowSpan = time.Minute
	cfg.Flight = rec
	srv, err := core.NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	e, err := NewEngine(rec, srv, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	const req = 64 << 10
	ch := make(chan struct{}, 1)
	done := func(r core.Response) {
		r.Release()
		ch <- struct{}{}
	}
	for i := 0; i < 16; i++ {
		if err := srv.Submit(core.Request{Disk: 0, Offset: int64(i) * req, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	}
	e.Tick()

	target := core.Request{Disk: 0, Offset: 14 * req, Length: req, Done: done}
	avg := testing.AllocsPerRun(200, func() {
		if err := srv.Submit(target); err != nil {
			t.Fatal(err)
		}
		<-ch
	})
	if avg != 0 {
		t.Errorf("buffer-hit path with health attached allocates: %.2f allocs/op, want 0", avg)
	}
	e.Tick()
	if rep := e.Report(); rep.EventsSeen == 0 {
		t.Fatal("engine consumed no events — the attachment was not live")
	}
}

// TestEngineWithServer attaches the engine to a real scheduler: the
// report carries windowed latency, per-disk telemetry, and breaker
// states, and the online findings agree with an offline snapshot of
// the same recorder.
func TestEngineWithServer(t *testing.T) {
	dev, err := blockdev.NewMemDevice(2, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewRealClock()
	rec, err := flight.New(clock.Now, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64<<20, 1<<20)
	cfg.GCPeriod = time.Hour
	cfg.EvictIdle = time.Hour
	cfg.WindowSpan = time.Minute
	cfg.Flight = rec
	srv, err := core.NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	e, err := NewEngine(rec, srv, clock, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Config().Window != time.Minute {
		t.Fatalf("engine window = %v, want server span", e.Config().Window)
	}

	const req = 64 << 10
	ch := make(chan struct{}, 1)
	done := func(r core.Response) {
		if r.Err != nil {
			t.Errorf("read failed: %v", r.Err)
		}
		r.Release()
		ch <- struct{}{}
	}
	for i := 0; i < 16; i++ {
		if err := srv.Submit(core.Request{Disk: 0, Offset: int64(i) * req, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	}

	e.Tick()
	rep := e.Report()
	if rep.Verdict != VerdictHealthy {
		t.Fatalf("verdict = %s: %+v", rep.Verdict, rep.Anomalies)
	}
	if rep.Request.Count == 0 || rep.Request.P50 <= 0 {
		t.Fatalf("request window empty: %+v", rep.Request)
	}
	if rep.Fetch.Count == 0 {
		t.Fatalf("fetch window empty: %+v", rep.Fetch)
	}
	if len(rep.Disks) != 2 {
		t.Fatalf("disks = %+v", rep.Disks)
	}
	d0 := rep.Disks[0]
	if d0.Fetch.Count == 0 || d0.EWMA <= 0 {
		t.Fatalf("disk 0 telemetry empty: %+v", d0)
	}
	if d0.Breaker != "" && d0.Breaker != "closed" {
		t.Fatalf("disk 0 breaker = %q", d0.Breaker)
	}
	if rep.EventsSeen == 0 {
		t.Fatal("engine consumed no flight events")
	}
	if len(rep.Shards) != srv.NumShards() {
		t.Fatalf("shards = %d, want %d", len(rep.Shards), srv.NumShards())
	}

	online := e.Anomalies()
	offline := Detect(rec.Snapshot().Merged(), e.Config().Detectors)
	if !reflect.DeepEqual(online, offline) {
		t.Fatalf("online/offline mismatch:\n online: %+v\noffline: %+v", online, offline)
	}
}
