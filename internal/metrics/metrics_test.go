package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestLatencySummaryBasics(t *testing.T) {
	var l LatencySummary
	if l.Mean() != 0 || l.Count() != 0 || l.Quantile(0.5) != 0 {
		t.Error("empty summary should be zeroed")
	}
	l.Observe(10 * time.Millisecond)
	l.Observe(20 * time.Millisecond)
	l.Observe(30 * time.Millisecond)
	if l.Count() != 3 {
		t.Errorf("Count = %d", l.Count())
	}
	if l.Mean() != 20*time.Millisecond {
		t.Errorf("Mean = %v", l.Mean())
	}
	if l.Min() != 10*time.Millisecond || l.Max() != 30*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", l.Min(), l.Max())
	}
}

func TestLatencyNegativeClamped(t *testing.T) {
	var l LatencySummary
	l.Observe(-5 * time.Millisecond)
	if l.Min() != 0 || l.Mean() != 0 {
		t.Error("negative sample not clamped")
	}
}

func TestLatencyQuantileBounds(t *testing.T) {
	var l LatencySummary
	for i := 1; i <= 100; i++ {
		l.Observe(time.Duration(i) * time.Millisecond)
	}
	q50 := l.Quantile(0.5)
	if q50 < 30*time.Millisecond || q50 > 130*time.Millisecond {
		t.Errorf("Quantile(0.5) = %v, out of plausible range", q50)
	}
	if l.Quantile(1.0) != l.Max() {
		t.Errorf("Quantile(1.0) = %v, want max %v", l.Quantile(1.0), l.Max())
	}
	if l.Quantile(-1) == 0 && l.Count() > 0 {
		// p clamped to 0 still returns the first bucket top; just make
		// sure it does not panic and is <= max.
		if l.Quantile(-1) > l.Max() {
			t.Error("clamped quantile above max")
		}
	}
	if l.Quantile(2) != l.Max() {
		t.Error("p>1 should clamp to max")
	}
}

func TestLatencyQuantileMonotonic(t *testing.T) {
	var l LatencySummary
	seed := uint64(99)
	for i := 0; i < 1000; i++ {
		seed = seed*6364136223846793005 + 1442695040888963407
		l.Observe(time.Duration(seed % uint64(time.Second)))
	}
	f := func(a, b float64) bool {
		pa := math.Abs(math.Mod(a, 1))
		pb := math.Abs(math.Mod(b, 1))
		if pa > pb {
			pa, pb = pb, pa
		}
		return l.Quantile(pa) <= l.Quantile(pb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyMerge(t *testing.T) {
	var a, b LatencySummary
	a.Observe(10 * time.Millisecond)
	b.Observe(30 * time.Millisecond)
	a.Merge(&b)
	if a.Count() != 2 || a.Mean() != 20*time.Millisecond {
		t.Errorf("merged count=%d mean=%v", a.Count(), a.Mean())
	}
	if a.Min() != 10*time.Millisecond || a.Max() != 30*time.Millisecond {
		t.Error("merged min/max wrong")
	}
	a.Merge(nil) // no-op
	var empty LatencySummary
	a.Merge(&empty) // no-op
	if a.Count() != 2 {
		t.Error("no-op merges changed count")
	}
	empty.Merge(&a)
	if empty.Count() != 2 || empty.Min() != 10*time.Millisecond {
		t.Error("merge into empty lost samples")
	}
}

func TestLatencyMergeEmptyPair(t *testing.T) {
	var a, b LatencySummary
	a.Merge(&b)
	if a.Count() != 0 || a.Min() != 0 || a.Max() != 0 || a.Quantile(0.99) != 0 {
		t.Errorf("empty×empty merge produced samples: %+v", a)
	}
}

func TestLatencyFractionUnder(t *testing.T) {
	var l LatencySummary
	for i := 0; i < 90; i++ {
		l.Observe(3 * time.Microsecond) // bucket [2048ns, 4096ns)
	}
	for i := 0; i < 10; i++ {
		l.Observe(3 * time.Millisecond) // bucket [2^21, 2^22)ns
	}
	if got := l.FractionUnder(4096 * time.Nanosecond); got != 0.9 {
		t.Errorf("FractionUnder(4096ns) = %v, want 0.9", got)
	}
	if got := l.FractionUnder(10 * time.Millisecond); got != 1.0 {
		t.Errorf("FractionUnder(10ms) = %v, want 1", got)
	}
	// A deadline inside the fast bucket conservatively excludes it.
	if got := l.FractionUnder(3 * time.Microsecond); got != 0 {
		t.Errorf("FractionUnder(3µs) = %v, want the conservative 0", got)
	}
	var empty LatencySummary
	if got := empty.FractionUnder(time.Second); got != 0 {
		t.Errorf("empty FractionUnder = %v", got)
	}
}

func TestLatencyQuantileSingleBucket(t *testing.T) {
	// Samples confined to one bucket: every quantile is that bucket's
	// top, clamped to the observed max.
	var l LatencySummary
	for i := 0; i < 100; i++ {
		l.Observe(3 * time.Microsecond) // bucket [2048ns, 4096ns)
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := l.Quantile(p); got != 3*time.Microsecond {
			t.Errorf("Quantile(%v) = %v, want clamped max 3µs", p, got)
		}
	}
}

func TestLatencyQuantileMaxBucketSaturation(t *testing.T) {
	// A sample in the top buckets must not overflow the 2^(i+1) bucket
	// edge into a negative Duration; the tracked max bounds it.
	var l LatencySummary
	huge := time.Duration(math.MaxInt64)
	l.Observe(huge)
	l.Observe(time.Millisecond)
	for _, p := range []float64{0.9, 1} {
		got := l.Quantile(p)
		if got < 0 {
			t.Fatalf("Quantile(%v) = %v, overflowed negative", p, got)
		}
		if got != huge {
			t.Errorf("Quantile(%v) = %v, want max %v", p, got, huge)
		}
	}
	// 1ms lands in bucket 19 ([2^19, 2^20) ns), whose top is 2^20 ns.
	if got := l.Quantile(0.5); got != time.Duration(1<<20) {
		t.Errorf("Quantile(0.5) = %v, want 2^20ns bucket top", got)
	}
}

func TestRecorderThroughput(t *testing.T) {
	r := NewRecorder()
	// One stream delivering 10 MB over 1 second.
	for i := 0; i < 10; i++ {
		start := time.Duration(i) * 100 * time.Millisecond
		r.Record(0, 1e6, start, start+100*time.Millisecond)
	}
	if got := r.AggregateMBps(); math.Abs(got-10) > 0.01 {
		t.Errorf("AggregateMBps = %v, want 10", got)
	}
	if r.TotalBytes() != 10e6 {
		t.Errorf("TotalBytes = %d", r.TotalBytes())
	}
	if r.TotalRequests() != 10 {
		t.Errorf("TotalRequests = %d", r.TotalRequests())
	}
}

func TestRecorderAggregatesAcrossStreams(t *testing.T) {
	r := NewRecorder()
	// Two concurrent streams, each 5 MB/s for 1 second.
	for s := 0; s < 2; s++ {
		for i := 0; i < 5; i++ {
			start := time.Duration(i) * 200 * time.Millisecond
			r.Record(s, 1e6, start, start+200*time.Millisecond)
		}
	}
	if got := r.AggregateMBps(); math.Abs(got-10) > 0.01 {
		t.Errorf("AggregateMBps = %v, want 10 (5+5)", got)
	}
	if got := r.WallThroughput() / 1e6; math.Abs(got-10) > 0.01 {
		t.Errorf("WallThroughput = %v MB/s, want 10", got)
	}
	if r.Streams() != 2 {
		t.Errorf("Streams = %d", r.Streams())
	}
	ids := r.StreamIDs()
	if len(ids) != 2 || ids[0] != 0 || ids[1] != 1 {
		t.Errorf("StreamIDs = %v", ids)
	}
}

func TestRecorderEmpty(t *testing.T) {
	r := NewRecorder()
	if r.AggregateThroughput() != 0 || r.WallThroughput() != 0 {
		t.Error("empty recorder should report 0 throughput")
	}
	if r.Stream(5) != nil {
		t.Error("missing stream should be nil")
	}
	if s := r.String(); s == "" {
		t.Error("String should not be empty")
	}
}

func TestStreamStatsZeroSpan(t *testing.T) {
	s := &StreamStats{Bytes: 100}
	if s.Throughput() != 0 {
		t.Error("zero-span throughput should be 0")
	}
}

func TestRecorderMergedLatency(t *testing.T) {
	r := NewRecorder()
	r.Record(0, 100, 0, 10*time.Millisecond)
	r.Record(1, 100, 0, 30*time.Millisecond)
	lat := r.MergedLatency()
	if lat.Count() != 2 || lat.Mean() != 20*time.Millisecond {
		t.Errorf("merged latency count=%d mean=%v", lat.Count(), lat.Mean())
	}
}

func TestBucketOf(t *testing.T) {
	if bucketOf(0) != 0 || bucketOf(-1) != 0 {
		t.Error("non-positive should map to bucket 0")
	}
	if bucketOf(1) != 0 {
		t.Errorf("bucketOf(1ns) = %d", bucketOf(1))
	}
	if bucketOf(time.Duration(1024)) != 10 {
		t.Errorf("bucketOf(1024ns) = %d, want 10", bucketOf(time.Duration(1024)))
	}
}
