// Package metrics accumulates throughput and response-time statistics
// for simulated and real runs. Aggregate throughput follows the paper's
// method (§5): the throughput delivered by a disk is the sum of the
// throughputs of the individual streams it services.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// LatencySummary accumulates response-time observations with a
// power-of-two histogram for quantile estimation.
type LatencySummary struct {
	count   int64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	buckets [64]int64 // bucket i holds latencies in [2^i, 2^(i+1)) ns
}

// Observe records one latency sample. Negative samples are clamped to
// zero.
func (l *LatencySummary) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	if l.count == 0 || d < l.min {
		l.min = d
	}
	if d > l.max {
		l.max = d
	}
	l.count++
	l.sum += d
	l.buckets[bucketOf(d)]++
}

func bucketOf(d time.Duration) int {
	n := int64(d)
	if n <= 0 {
		return 0
	}
	b := 63 - leadingZeros(uint64(n))
	if b > 63 {
		b = 63
	}
	return b
}

func leadingZeros(x uint64) int {
	n := 0
	for i := 63; i >= 0; i-- {
		if x&(1<<uint(i)) != 0 {
			return n
		}
		n++
	}
	return 64
}

// Count returns the number of samples.
func (l *LatencySummary) Count() int64 { return l.count }

// Mean returns the average latency, or zero with no samples.
func (l *LatencySummary) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return time.Duration(int64(l.sum) / l.count)
}

// Min returns the smallest sample.
func (l *LatencySummary) Min() time.Duration { return l.min }

// Max returns the largest sample.
func (l *LatencySummary) Max() time.Duration { return l.max }

// Quantile returns an upper bound of the p-quantile (0 <= p <= 1) from
// the histogram: the top of the bucket containing the p-th sample.
func (l *LatencySummary) Quantile(p float64) time.Duration {
	if l.count == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	target := int64(math.Ceil(p * float64(l.count)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i, c := range l.buckets {
		seen += c
		if seen >= target {
			if i >= 62 {
				// Bucket 62's upper edge is 2^63 ns, which overflows a
				// Duration; the tracked maximum is the tightest bound.
				return l.max
			}
			top := time.Duration(uint64(1) << uint(i+1))
			if top > l.max {
				top = l.max
			}
			return top
		}
	}
	return l.max
}

// FractionUnder returns a lower bound on the fraction of samples at or
// below d, from the histogram: only full power-of-two buckets whose
// upper edge does not exceed d are counted, so samples in the bucket
// straddling d are conservatively treated as over it. Zero with no
// samples.
func (l *LatencySummary) FractionUnder(d time.Duration) float64 {
	if l.count == 0 || d <= 0 {
		return 0
	}
	var under int64
	for i, c := range l.buckets {
		if i >= 62 || time.Duration(uint64(1)<<uint(i+1)) > d {
			break
		}
		under += c
	}
	return float64(under) / float64(l.count)
}

// Merge folds other into l.
func (l *LatencySummary) Merge(other *LatencySummary) {
	if other == nil || other.count == 0 {
		return
	}
	if l.count == 0 || other.min < l.min {
		l.min = other.min
	}
	if other.max > l.max {
		l.max = other.max
	}
	l.count += other.count
	l.sum += other.sum
	for i := range l.buckets {
		l.buckets[i] += other.buckets[i]
	}
}

// StreamStats accumulates one stream's delivery record.
type StreamStats struct {
	Bytes    int64
	Requests int64
	First    time.Duration // time of first issue
	Last     time.Duration // time of last completion
	Latency  LatencySummary
	hasFirst bool
}

// Throughput returns the stream's delivered bytes/second across its
// active interval.
func (s *StreamStats) Throughput() float64 {
	span := s.Last - s.First
	if span <= 0 || s.Bytes == 0 {
		return 0
	}
	return float64(s.Bytes) / span.Seconds()
}

// Recorder collects per-stream statistics.
type Recorder struct {
	streams map[int]*StreamStats
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{streams: make(map[int]*StreamStats)}
}

// Record notes a completed request on a stream: n bytes issued at
// start, completed at end (both on the same clock).
func (r *Recorder) Record(stream int, n int64, start, end time.Duration) {
	s := r.streams[stream]
	if s == nil {
		s = &StreamStats{}
		r.streams[stream] = s
	}
	if !s.hasFirst || start < s.First {
		s.First = start
		s.hasFirst = true
	}
	if end > s.Last {
		s.Last = end
	}
	s.Bytes += n
	s.Requests++
	s.Latency.Observe(end - start)
}

// Streams returns the number of streams observed.
func (r *Recorder) Streams() int { return len(r.streams) }

// Stream returns the stats for one stream, or nil.
func (r *Recorder) Stream(id int) *StreamStats { return r.streams[id] }

// StreamIDs returns the observed stream ids in ascending order.
func (r *Recorder) StreamIDs() []int {
	ids := make([]int, 0, len(r.streams))
	for id := range r.streams {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// TotalBytes returns bytes delivered across all streams.
func (r *Recorder) TotalBytes() int64 {
	var total int64
	for _, s := range r.streams {
		total += s.Bytes
	}
	return total
}

// TotalRequests returns completed requests across all streams.
func (r *Recorder) TotalRequests() int64 {
	var total int64
	for _, s := range r.streams {
		total += s.Requests
	}
	return total
}

// AggregateThroughput returns the sum of per-stream throughputs in
// bytes/second (the paper's reporting convention).
func (r *Recorder) AggregateThroughput() float64 {
	var total float64
	for _, s := range r.streams {
		total += s.Throughput()
	}
	return total
}

// AggregateMBps returns AggregateThroughput in MB/s (decimal).
func (r *Recorder) AggregateMBps() float64 {
	return r.AggregateThroughput() / 1e6
}

// WallThroughput returns total bytes divided by the wall interval from
// the earliest issue to the latest completion, in bytes/second.
func (r *Recorder) WallThroughput() float64 {
	var first, last time.Duration
	started := false
	for _, s := range r.streams {
		if !s.hasFirst {
			continue
		}
		if !started || s.First < first {
			first = s.First
			started = true
		}
		if s.Last > last {
			last = s.Last
		}
	}
	span := last - first
	if !started || span <= 0 {
		return 0
	}
	return float64(r.TotalBytes()) / span.Seconds()
}

// MergedLatency returns the latency summary across all streams.
func (r *Recorder) MergedLatency() LatencySummary {
	var merged LatencySummary
	for _, s := range r.streams {
		merged.Merge(&s.Latency)
	}
	return merged
}

// String summarizes the recorder.
func (r *Recorder) String() string {
	lat := r.MergedLatency()
	return fmt.Sprintf("streams=%d reqs=%d bytes=%d agg=%.1fMB/s mean_lat=%v",
		r.Streams(), r.TotalRequests(), r.TotalBytes(), r.AggregateMBps(), lat.Mean())
}
