package experiments

import (
	"reflect"
	"testing"
)

// TestDeterministicReplay runs one registry experiment twice with the
// same options and asserts the Results are identical — every float in
// every row. The whole pipeline (workload arrivals, disk service
// times, scheduler decisions) must be a pure function of the seed; a
// single stray time.Now, map iteration, or goroutine race shows up
// here as a diverging value.
func TestDeterministicReplay(t *testing.T) {
	entry, err := Lookup("fig10")
	if err != nil {
		t.Fatal(err)
	}
	opts := Quick()
	opts.Seed = 42

	first, err := entry.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	second, err := entry.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("replay diverged:\nrun 1:\n%s\nrun 2:\n%s", first.Table(), second.Table())
	}
	if len(first.Rows) == 0 {
		t.Fatal("empty result")
	}
}
