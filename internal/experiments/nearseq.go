package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// AblationNearSeq measures the near-sequential extension (§4.1 calls
// handling near-sequential streams future work): readers that skip a
// fraction of their blocks (stride patterns, container metadata) run
// against the strict matcher and the windowed matcher.
func AblationNearSeq(opts Options) (Result, error) {
	opts = opts.withDefaults(6*time.Second, 10*time.Second)
	skipEvery := []int{0, 8, 4, 2} // 0 = fully sequential

	res := Result{
		ID:     "abl-nearseq",
		Title:  "Near-sequential streams ablation (30 streams, R=1M)",
		XLabel: "skip 1 of N blocks",
		YLabel: "MB/s",
		Series: []string{"strict", "near-seq window=1M"},
	}
	for _, skip := range skipEvery {
		label := "none"
		if skip > 0 {
			label = fmt.Sprintf("1/%d", skip)
		}
		row := Row{X: label}
		for _, window := range []int64{0, 1 << 20} {
			mbps, err := runGappedStreams(skip, window, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, mbps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runGappedStreams drives 30 readers that skip one of every `skip`
// blocks (0 = none) through a node with the given near-seq window.
func runGappedStreams(skip int, window int64, opts Options) (float64, error) {
	eng := sim.NewEngine()
	host, err := newHost(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return 0, err
	}
	const streams = 30
	cfg := coreConfig(streams, 1<<20, streams<<20, 1)
	cfg.NearSeqWindow = window
	srv, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	capacity := dev.Capacity(0)
	spacing := capacity / streams
	spacing -= spacing % 512
	warmEnd := opts.Warmup
	measureEnd := opts.Warmup + opts.Measure
	var bytes int64
	submit := coreSubmit(srv)

	for s := 0; s < streams; s++ {
		base := int64(s) * spacing
		block := int64(0)
		var issue func()
		issue = func() {
			if skip > 0 && (block+1)%int64(skip) == 0 {
				block++ // stride: skip this block
			}
			off := base + block*clientReq
			block++
			err := submit(0, off, clientReq, func() {
				if end := eng.Now(); end >= warmEnd && end <= measureEnd {
					bytes += clientReq
				}
				issue()
			})
			if err != nil {
				return
			}
		}
		issue()
	}
	if err := eng.RunUntil(measureEnd); err != nil {
		return 0, err
	}
	return float64(bytes) / opts.Measure.Seconds() / 1e6, nil
}
