package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/iostack"
)

// AblationLatencyDistribution quantifies §5.5's observation that under
// the scheduler, request response times split into two categories:
// requests served from memory (fast) and requests that wait for a
// dispatch round (slow). The direct path has one category — every
// request pays the disk. Rows are latency statistics in milliseconds.
func AblationLatencyDistribution(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 20*time.Second)
	const streams = 60
	const ra = 1 << 20

	res := Result{
		ID:     "abl-latency",
		Title:  fmt.Sprintf("Response-time distribution (%d streams, 64K requests)", streams),
		XLabel: "statistic",
		YLabel: "latency (ms)",
		Series: []string{"direct", "scheduled R=1M"},
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	placements := PlacePerDisk(1, streams, capacity)

	direct, err := runDirect(stackCfg, placements, clientReq, opts)
	if err != nil {
		return Result{}, err
	}
	cfg := coreConfig(streams, ra, streams*ra, 1)
	sched, err := runCore(stackCfg, cfg, placements, clientReq, opts)
	if err != nil {
		return Result{}, err
	}

	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	res.Rows = []Row{
		{X: "p50", Values: []float64{ms(direct.P50Lat), ms(sched.P50Lat)}},
		{X: "mean", Values: []float64{ms(direct.MeanLat), ms(sched.MeanLat)}},
		{X: "p99", Values: []float64{ms(direct.P99Lat), ms(sched.P99Lat)}},
	}
	return res, nil
}
