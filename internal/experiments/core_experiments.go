package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/core"
	"seqstream/internal/iostack"
)

// clientReq is the fixed client request size used throughout §5.
const clientReq = 64 << 10

// coreConfig builds the scheduler configuration for an experiment,
// with fast-reacting reclaim so short simulations reach steady state.
func coreConfig(d int, r, m int64, n int) core.Config {
	cfg := core.Config{
		DispatchSize:      d,
		ReadAhead:         r,
		RequestsPerStream: n,
		Memory:            m,
		GCPeriod:          250 * time.Millisecond,
		EvictIdle:         500 * time.Millisecond,
	}
	cfg.ApplyDefaults()
	return cfg
}

// Fig10 reproduces Figure 10: the effect of read-ahead R when the node
// has enough memory to stage and dispatch every stream (M = S·R·N,
// D = S, N = 1), on one disk. The "no readahead" series is the direct
// baseline.
func Fig10(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 12*time.Second)
	readAheads := []int64{8 << 20, 2 << 20, 1 << 20, 512 << 10, 128 << 10}
	streamCounts := []int{10, 30, 60, 100}

	res := Result{
		ID:     "fig10",
		Title:  "Effect of read-ahead (adequate memory: M=S*R*N, D=S)",
		XLabel: "streams per disk",
		YLabel: "MB/s",
	}
	for _, ra := range readAheads {
		res.Series = append(res.Series, "R="+kbLabel(ra))
	}
	res.Series = append(res.Series, "no readahead")

	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		placements := PlacePerDisk(1, s, capacity)
		for _, ra := range readAheads {
			cfg := coreConfig(s, ra, int64(s)*ra, 1)
			sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		sample, err := runDirect(stackCfg, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		row.Values = append(row.Values, sample.MBps)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig11 reproduces Figure 11: the effect of storage memory size M on
// throughput for combinations of stream count and read-ahead, with the
// dispatch set derived as D = M/(R·N).
func Fig11(opts Options) (Result, error) {
	opts = opts.withDefaults(10*time.Second, 15*time.Second)
	memories := []int64{8 << 20, 16 << 20, 64 << 20, 128 << 20, 256 << 20}
	combos := []struct {
		streams   int
		readAhead int64
	}{
		{1, 8 << 20}, {10, 8 << 20}, {100, 8 << 20},
		{1, 1 << 20}, {10, 1 << 20}, {100, 1 << 20},
		{1, 256 << 10}, {10, 256 << 10}, {100, 256 << 10},
	}

	res := Result{
		ID:     "fig11",
		Title:  "Effect of storage memory size on throughput (D=M/(R*N))",
		XLabel: "memory (MB)",
		YLabel: "MB/s",
	}
	for _, c := range combos {
		res.Series = append(res.Series, fmt.Sprintf("S=%d RA=%s", c.streams, kbLabel(c.readAhead)))
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, m := range memories {
		row := Row{X: fmt.Sprintf("%d", m>>20)}
		for _, c := range combos {
			if c.readAhead > m {
				// One buffer must fit in memory.
				row.Values = append(row.Values, 0)
				continue
			}
			cfg := coreConfig(core.DeriveDispatch(m, c.readAhead, 1), c.readAhead, m, 1)
			placements := PlacePerDisk(1, c.streams, capacity)
			sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig12 reproduces Figure 12: the 8-disk setup with every staged
// stream also dispatched (D = S·disks, M = D·R·N). Throughput is far
// below the 450 MB/s controller ceiling because the host must manage a
// large number of large buffers.
func Fig12(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 12*time.Second)
	readAheads := []int64{2 << 20, 1 << 20, 512 << 10}
	streamCounts := []int{10, 30, 60, 100}
	const disks = 8

	res := Result{
		ID:     "fig12",
		Title:  "Throughput for an 8-disk setup (D = S, all staged dispatched)",
		XLabel: "streams per disk",
		YLabel: "MB/s",
	}
	for _, ra := range readAheads {
		res.Series = append(res.Series, "R="+kbLabel(ra))
	}
	res.Series = append(res.Series, "no readahead")

	stackCfg := iostack.Testbed8Config(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		placements := PlacePerDisk(disks, s, capacity)
		total := s * disks
		for _, ra := range readAheads {
			cfg := coreConfig(total, ra, int64(total)*ra, 1)
			sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		sample, err := runDirect(stackCfg, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		row.Values = append(row.Values, sample.MBps)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig13 reproduces Figure 13: dispatching far fewer streams than are
// staged on the 8-disk setup (D = #disks, N = 128, R = 512K), which
// recovers most of the available 450 MB/s by cutting buffer-management
// overhead. The Fig12 D=S series at the same R is included for
// comparison, as in the paper.
func Fig13(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 12*time.Second)
	streamCounts := []int{10, 30, 60, 100}
	const disks = 8
	const ra = 512 << 10

	res := Result{
		ID:     "fig13",
		Title:  "Throughput when fewer streams are dispatched than staged (8 disks)",
		XLabel: "streams per disk",
		YLabel: "MB/s",
		Series: []string{"D=#disks N=128", "D=S (from Fig12)"},
	}
	stackCfg := iostack.Testbed8Config(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		placements := PlacePerDisk(disks, s, capacity)
		total := s * disks

		// D = #disks, N = 128: memory follows the staged streams.
		cfgSplit := coreConfig(disks, ra, int64(total)*ra*2, 128)
		sample, err := runCore(stackCfg, cfgSplit, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		row.Values = append(row.Values, sample.MBps)

		// D = S baseline from Figure 12.
		cfgAll := coreConfig(total, ra, int64(total)*ra, 1)
		sample, err = runCore(stackCfg, cfgAll, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		row.Values = append(row.Values, sample.MBps)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig14 reproduces Figure 14: a single disk with a small dispatch set
// (D = 1, N = 128, R = 512K) against the Figure 10 configurations
// where every staged stream is dispatched.
func Fig14(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 12*time.Second)
	streamCounts := []int{10, 30, 60, 100}

	res := Result{
		ID:     "fig14",
		Title:  "Single-disk throughput with a small dispatch set",
		XLabel: "streams per disk",
		YLabel: "MB/s",
		Series: []string{"D=1 N=128 R=512K", "R=2M D=S (Fig10)", "R=8M D=S (Fig10)"},
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		placements := PlacePerDisk(1, s, capacity)

		cfgSmall := coreConfig(1, 512<<10, int64(s)*512<<10*2, 128)
		sample, err := runCore(stackCfg, cfgSmall, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		row.Values = append(row.Values, sample.MBps)

		for _, ra := range []int64{2 << 20, 8 << 20} {
			cfg := coreConfig(s, ra, int64(s)*ra, 1)
			sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig15 reproduces Figure 15: average stream response time versus
// read-ahead for several stream counts and node memory sizes. Values
// are reported in milliseconds.
func Fig15(opts Options) (Result, error) {
	opts = opts.withDefaults(10*time.Second, 30*time.Second)
	readAheads := []int64{256 << 10, 1 << 20, 8 << 20}
	memories := []int64{8 << 20, 64 << 20, 256 << 20}
	streamCounts := []int{1, 10, 100}

	res := Result{
		ID:     "fig15",
		Title:  "Average stream response time (64KB requests)",
		XLabel: "read-ahead",
		YLabel: "mean latency (ms)",
	}
	for _, s := range streamCounts {
		for _, m := range memories {
			res.Series = append(res.Series, fmt.Sprintf("S=%d M=%dMB", s, m>>20))
		}
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, ra := range readAheads {
		row := Row{X: kbLabel(ra)}
		for _, s := range streamCounts {
			for _, m := range memories {
				if ra > m {
					row.Values = append(row.Values, 0)
					continue
				}
				cfg := coreConfig(core.DeriveDispatch(m, ra, 1), ra, m, 1)
				placements := PlacePerDisk(1, s, capacity)
				sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
				if err != nil {
					return Result{}, err
				}
				row.Values = append(row.Values, float64(sample.MeanLat)/float64(time.Millisecond))
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
