package experiments

import (
	"fmt"
	"sort"
)

// Func runs one experiment.
type Func func(Options) (Result, error)

// Entry describes a registered experiment.
type Entry struct {
	ID    string
	Title string
	Run   Func
}

// registry lists every reproducible figure and ablation.
var registry = []Entry{
	{"fig01", "Throughput collapse for multiple sequential streams (60 disks)", Fig01},
	{"fig02", "I/O scheduler performance", Fig02},
	{"fig04", "Impact of request size on throughput", Fig04},
	{"fig05", "Xdd throughput with a single disk", Fig05},
	{"fig06", "Effect of prefetching with increasing disk segment size", Fig06},
	{"fig07", "Effect of read-ahead on throughput (fixed cache)", Fig07},
	{"fig08", "Prefetching at the controller level", Fig08},
	{"fig10", "Effect of read-ahead (core scheduler)", Fig10},
	{"fig11", "Effect of storage memory size on throughput", Fig11},
	{"fig12", "Throughput for an 8-disk setup", Fig12},
	{"fig13", "Throughput when fewer streams are dispatched than staged", Fig13},
	{"fig14", "Single-disk throughput with a small dispatch set", Fig14},
	{"fig15", "Average stream response time", Fig15},
	{"abl-policy", "Dispatch policy ablation", AblationDispatchPolicy},
	{"abl-region", "Classifier region width ablation", AblationClassifierRegion},
	{"abl-gc", "Reclaim latency ablation", AblationGCPeriod},
	{"abl-nearseq", "Near-sequential streams ablation", AblationNearSeq},
	{"abl-outstanding", "Outstanding requests per stream", AblationOutstanding},
	{"abl-latency", "Response-time distribution", AblationLatencyDistribution},
	{"abl-ramp", "OS readahead ramp-up", AblationReadaheadRamp},
}

// List returns the registered experiments sorted by id.
func List() []Entry {
	out := make([]Entry, len(registry))
	copy(out, registry)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Lookup returns the experiment with the given id.
func Lookup(id string) (Entry, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Entry{}, fmt.Errorf("experiments: unknown id %q", id)
}
