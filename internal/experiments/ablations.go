package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// AblationDispatchPolicy compares the paper's round-robin dispatch
// policy against the locality-aware nearest-offset alternative §4.2
// sketches, across stream counts on one disk.
func AblationDispatchPolicy(opts Options) (Result, error) {
	opts = opts.withDefaults(8*time.Second, 12*time.Second)
	streamCounts := []int{10, 30, 60, 100}

	res := Result{
		ID:     "abl-policy",
		Title:  "Dispatch policy ablation (R=1M, D=S/4)",
		XLabel: "streams per disk",
		YLabel: "MB/s",
		Series: []string{"round-robin", "nearest-offset"},
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	const ra = 1 << 20
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		placements := PlacePerDisk(1, s, capacity)
		d := s / 4
		if d < 1 {
			d = 1
		}
		for _, policy := range []core.DispatchPolicy{core.RoundRobin{}, core.NearestOffset{}} {
			cfg := coreConfig(d, ra, int64(s)*ra, 1)
			cfg.Policy = policy
			sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// AblationClassifierRegion sweeps the classifier's region width (the
// paper's bitmap "offset", §4.1): wider regions cost more bitmap
// memory but detection behaves the same for strictly sequential
// streams; the sweep verifies throughput is insensitive to it.
func AblationClassifierRegion(opts Options) (Result, error) {
	opts = opts.withDefaults(6*time.Second, 10*time.Second)
	widths := []int{8, 16, 64, 256}

	res := Result{
		ID:     "abl-region",
		Title:  "Classifier region width ablation (60 streams, R=1M)",
		XLabel: "region blocks",
		YLabel: "MB/s",
		Series: []string{"60 streams"},
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	const s = 60
	for _, w := range widths {
		cfg := coreConfig(s, 1<<20, int64(s)<<20, 1)
		cfg.RegionBlocks = w
		placements := PlacePerDisk(1, s, capacity)
		sample, err := runCore(stackCfg, cfg, placements, clientReq, opts)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{X: fmt.Sprintf("%d", w), Values: []float64{sample.MBps}})
	}
	return res, nil
}

// AblationGCPeriod sweeps the buffered set's reclaim latency (§4.3's
// garbage collection of buffers "allocated to streams that are
// inactive"). Half the streams abandon their read-ahead after a few
// requests; their staged buffers pin memory until reclaim, throttling
// the continuing streams when reclaim is slow.
func AblationGCPeriod(opts Options) (Result, error) {
	opts = opts.withDefaults(4*time.Second, 8*time.Second)
	idles := []time.Duration{100 * time.Millisecond, 500 * time.Millisecond, 2 * time.Second, 8 * time.Second}

	res := Result{
		ID:     "abl-gc",
		Title:  "Reclaim latency ablation (20 live + 20 abandoning streams, M=8MB, R=1M)",
		XLabel: "reclaim idle threshold",
		YLabel: "MB/s (live streams)",
		Series: []string{"live streams"},
	}
	for _, idle := range idles {
		mbps, err := runReclaim(idle, opts)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{X: idle.String(), Values: []float64{mbps}})
	}
	return res, nil
}

// runReclaim measures 50 continuous streams sharing a tight buffered
// set with 50 streams that stop after detection (abandoning their
// prefetch), for a given eviction idle threshold.
func runReclaim(idle time.Duration, opts Options) (float64, error) {
	// Reclaim effects need the post-detection regime: enforce minimum
	// windows regardless of quick options.
	if opts.Warmup < 4*time.Second {
		opts.Warmup = 4 * time.Second
	}
	if opts.Measure < 12*time.Second {
		opts.Measure = 12 * time.Second
	}
	eng := sim.NewEngine()
	host, err := newHost(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		return 0, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return 0, err
	}
	cfg := coreConfig(core.DeriveDispatch(8<<20, 1<<20, 1), 1<<20, 8<<20, 1)
	cfg.EvictIdle = idle
	cfg.BufferTimeout = 2 * idle
	srv, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		return 0, err
	}
	defer srv.Close()

	const live = 20
	const ghosts = 20
	capacity := dev.Capacity(0)
	spacing := capacity / (live + ghosts)
	spacing -= spacing % 512
	warmEnd := opts.Warmup
	measureEnd := opts.Warmup + opts.Measure
	var bytes int64

	submit := coreSubmit(srv)
	for i := 0; i < live+ghosts; i++ {
		i := i
		next := int64(i) * spacing
		count := 0
		var issue func()
		issue = func() {
			off := next
			next += clientReq
			count++
			// Ghost streams stop right after triggering read-ahead.
			stop := i >= live && count > 6
			err := submit(0, off, clientReq, func() {
				end := eng.Now()
				if i < live && end >= warmEnd && end <= measureEnd {
					bytes += clientReq
				}
				if !stop {
					issue()
				}
			})
			if err != nil {
				return
			}
		}
		issue()
	}
	if err := eng.RunUntil(measureEnd); err != nil {
		return 0, err
	}
	return float64(bytes) / opts.Measure.Seconds() / 1e6, nil
}
