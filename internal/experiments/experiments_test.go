package experiments

import (
	"strings"
	"testing"
	"time"
)

// fast returns options small enough for unit tests while keeping the
// qualitative shapes.
func fast() Options {
	return Options{Warmup: time.Second, Measure: 2 * time.Second, Seed: 1}
}

func TestResultTableAndValue(t *testing.T) {
	r := Result{
		ID: "x", Title: "T", XLabel: "a", YLabel: "b",
		Series: []string{"s1", "s2"},
		Rows:   []Row{{X: "r1", Values: []float64{1, 2}}, {X: "r2", Values: []float64{3, 4}}},
	}
	tab := r.Table()
	for _, want := range []string{"x — T", "s1", "s2", "r1", "r2", "3.00"} {
		if !strings.Contains(tab, want) {
			t.Errorf("table missing %q:\n%s", want, tab)
		}
	}
	if v, ok := r.Value("r2", "s2"); !ok || v != 4 {
		t.Errorf("Value(r2,s2) = %v,%v", v, ok)
	}
	if _, ok := r.Value("r2", "nope"); ok {
		t.Error("missing series should not resolve")
	}
	if _, ok := r.Value("nope", "s2"); ok {
		t.Error("missing row should not resolve")
	}
}

func TestRegistry(t *testing.T) {
	entries := List()
	if len(entries) < 13 {
		t.Fatalf("registry has %d entries, want >= 13 (every figure + ablations)", len(entries))
	}
	for i := 1; i < len(entries); i++ {
		if entries[i-1].ID >= entries[i].ID {
			t.Error("List not sorted")
		}
	}
	for _, id := range []string{"fig01", "fig02", "fig04", "fig05", "fig06", "fig07",
		"fig08", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"} {
		if _, err := Lookup(id); err != nil {
			t.Errorf("Lookup(%s): %v", id, err)
		}
	}
	if _, err := Lookup("fig99"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestPlacement(t *testing.T) {
	p := PlacePerDisk(2, 3, 3000000)
	if len(p) != 6 {
		t.Fatalf("len = %d", len(p))
	}
	if p[0].Disk != 0 || p[3].Disk != 1 {
		t.Error("disk assignment wrong")
	}
	if p[1].Start%512 != 0 {
		t.Error("unaligned start")
	}
	q := PlaceTotal(3, 7, 3000000)
	if len(q) != 7 {
		t.Fatalf("len = %d", len(q))
	}
	disks := map[int]int{}
	for _, pl := range q {
		disks[pl.Disk]++
	}
	if disks[0] != 3 || disks[1] != 2 || disks[2] != 2 {
		t.Errorf("round-robin spread wrong: %v", disks)
	}
}

func TestFig04Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig04(fast())
	if err != nil {
		t.Fatal(err)
	}
	// One stream beats 30 streams by >= 4x at 64K (the paper's
	// collapse).
	one, _ := res.Value("64K", "1 streams")
	many, ok := res.Value("64K", "30 streams")
	if !ok {
		t.Fatal("missing cells")
	}
	if one < 4*many {
		t.Errorf("collapse factor %0.1f (1 stream %.1f vs 30 streams %.1f), want >= 4", one/many, one, many)
	}
	// Throughput grows with request size for a single stream.
	small, _ := res.Value("8K", "1 streams")
	large, _ := res.Value("256K", "1 streams")
	if large <= small {
		t.Errorf("1-stream throughput should grow with request size: 8K=%.1f 256K=%.1f", small, large)
	}
}

func TestFig07ThrashShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig07(fast())
	if err != nil {
		t.Fatal(err)
	}
	// With 8 segments of 1M, 10+ streams must collapse below the
	// many-small-segments configuration (prefetch reclaimed before
	// use).
	smallSeg, _ := res.Value("128x64K", "30 streams")
	bigSeg, ok := res.Value("8x1M", "30 streams")
	if !ok {
		t.Fatal("missing cells")
	}
	if bigSeg >= smallSeg {
		t.Errorf("8x1M (%.1f) should collapse below 128x64K (%.1f) at 30 streams", bigSeg, smallSeg)
	}
	// One stream still benefits from bigger segments.
	oneBig, _ := res.Value("8x1M", "1 streams")
	if oneBig < smallSeg {
		t.Errorf("1-stream 8x1M (%.1f) should stay high", oneBig)
	}
}

func TestFig08ControllerCollapse(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig08(fast())
	if err != nil {
		t.Fatal(err)
	}
	// Moderate read-ahead rescues 60 streams; 4M read-ahead collapses
	// them toward zero (60 x 4M >> 128M cache).
	good, _ := res.Value("512K", "60 streams")
	bad, ok := res.Value("4M", "60 streams")
	if !ok {
		t.Fatal("missing cells")
	}
	if bad > good/4 {
		t.Errorf("4M/60-stream (%.1f) should collapse vs 512K (%.1f)", bad, good)
	}
	// One stream is unaffected by read-ahead size.
	one4M, _ := res.Value("4M", "1 streams")
	if one4M < 20 {
		t.Errorf("1-stream at 4M = %.1f, want high", one4M)
	}
}

func TestFig10Insensitivity(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig10(Options{Warmup: 4 * time.Second, Measure: 6 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// R=8M at 100 streams beats the no-readahead baseline by >= 4x
	// (the paper's headline).
	sched, _ := res.Value("100", "R=8M")
	base, ok := res.Value("100", "no readahead")
	if !ok {
		t.Fatal("missing cells")
	}
	if sched < 4*base {
		t.Errorf("R=8M at 100 streams %.1f vs baseline %.1f, want >= 4x", sched, base)
	}
	// Insensitivity: 10 vs 100 streams within 2x at R=8M.
	few, _ := res.Value("10", "R=8M")
	if sched < few/2 {
		t.Errorf("sensitivity too high: 10 streams %.1f vs 100 streams %.1f", few, sched)
	}
	// Larger R dominates smaller R at 100 streams.
	small, _ := res.Value("100", "R=128K")
	if sched <= small {
		t.Errorf("R=8M (%.1f) should beat R=128K (%.1f)", sched, small)
	}
}

func TestFig13DispatchSplit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig13(fast())
	if err != nil {
		t.Fatal(err)
	}
	split, _ := res.Value("30", "D=#disks N=128")
	all, ok := res.Value("30", "D=S (from Fig12)")
	if !ok {
		t.Fatal("missing cells")
	}
	if split <= all {
		t.Errorf("small dispatch set (%.1f) should beat D=S (%.1f)", split, all)
	}
	// ~80% of the 450 MB/s controller ceiling.
	if split < 250 {
		t.Errorf("split throughput %.1f, want near 80%% of 450", split)
	}
}

func TestFig15LatencyShape(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	res, err := Fig15(Options{Warmup: 3 * time.Second, Measure: 8 * time.Second, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Latency rises with stream count.
	one, _ := res.Value("1M", "S=1 M=64MB")
	hundred, ok := res.Value("1M", "S=100 M=64MB")
	if !ok {
		t.Fatal("missing cells")
	}
	if hundred <= one {
		t.Errorf("latency should grow with streams: S=1 %.2fms vs S=100 %.2fms", one, hundred)
	}
	// Larger read-ahead lowers latency at fixed streams/memory.
	small, _ := res.Value("256K", "S=100 M=256MB")
	large, _ := res.Value("8M", "S=100 M=256MB")
	if large >= small {
		t.Errorf("8M RA latency %.2fms should be below 256K RA %.2fms", large, small)
	}
}

func TestQuickOptions(t *testing.T) {
	q := Quick()
	if q.Warmup <= 0 || q.Measure <= 0 {
		t.Error("Quick options must set durations")
	}
	o := Options{}.withDefaults(3*time.Second, 4*time.Second)
	if o.Warmup != 3*time.Second || o.Measure != 4*time.Second {
		t.Error("withDefaults did not fill")
	}
	o2 := Options{Warmup: time.Second, Measure: time.Second}.withDefaults(9*time.Second, 9*time.Second)
	if o2.Warmup != time.Second || o2.Measure != time.Second {
		t.Error("withDefaults overrode explicit values")
	}
}

func TestResultWriteCSV(t *testing.T) {
	r := Result{
		ID: "x", XLabel: "size", Series: []string{"a", "b"},
		Rows: []Row{{X: "8K", Values: []float64{1.5, 2}}},
	}
	var buf strings.Builder
	if err := r.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "size,a,b\n8K,1.500,2.000\n"
	if got != want {
		t.Errorf("csv = %q, want %q", got, want)
	}
}
