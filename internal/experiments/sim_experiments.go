package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/controller"
	"seqstream/internal/disk"
	"seqstream/internal/iosched"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

func kbLabel(n int64) string {
	switch {
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dM", n>>20)
	default:
		return fmt.Sprintf("%dK", n>>10)
	}
}

// tunedDiskOptions builds per-disk configurations with explicit cache
// geometry (segment size, count, read-ahead).
func tunedDiskOptions(segmentSize, segments, readAhead int64) iostack.Options {
	return iostack.Options{
		DiskConfig: func(seed uint64) disk.Config {
			return disk.ProfileTuned(segmentSize, segments, readAhead, seed)
		},
	}
}

// Fig01 reproduces Figure 1: throughput collapse on a 60-disk setup as
// total sequential streams grow, for several request sizes. The
// workload runs directly against the large I/O hierarchy.
func Fig01(opts Options) (Result, error) {
	opts = opts.withDefaults(2*time.Second, 6*time.Second)
	reqSizes := []int64{8 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10}
	streamCounts := []int{60, 100, 300, 500}
	const disks = 60

	res := Result{
		ID:     "fig01",
		Title:  "Throughput collapse for multiple sequential streams (60 disks)",
		XLabel: "request size",
		YLabel: "aggregate MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	stackCfg := iostack.LargeConfig(iostack.Options{})
	for _, rs := range reqSizes {
		row := Row{X: kbLabel(rs)}
		for _, s := range streamCounts {
			capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
			placements := PlaceTotal(disks, s, capacity)
			sample, err := runDirect(stackCfg, placements, rs, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig02 reproduces Figure 2: Linux I/O scheduler throughput for 4 KB
// sequential reads as the number of concurrent streams grows from 1 to
// 256, over a single drive with OS readahead.
func Fig02(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 4*time.Second)
	streamCounts := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	policies := []iosched.Policy{iosched.Anticipatory, iosched.CFQ, iosched.Noop}

	res := Result{
		ID:     "fig02",
		Title:  "I/O scheduler performance (xdd, 4KB reads, single disk)",
		XLabel: "streams",
		YLabel: "aggregate MB/s",
	}
	for _, p := range policies {
		res.Series = append(res.Series, p.String())
	}
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		for _, p := range policies {
			mbps, err := runSchedulerStreams(p, s, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, mbps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// runSchedulerStreams drives S 4KB-read processes through an iosched
// policy over one drive and returns steady-state MB/s.
func runSchedulerStreams(policy iosched.Policy, streams int, opts Options) (float64, error) {
	return runSchedulerStreamsCfg(iosched.DefaultConfig(policy), streams, opts)
}

// runSchedulerStreamsCfg is runSchedulerStreams with an explicit
// scheduler configuration.
func runSchedulerStreamsCfg(cfg iosched.Config, streams int, opts Options) (float64, error) {
	eng := sim.NewEngine()
	// The drive does no prefetch of its own; the OS readahead model
	// under test owns sequential detection.
	d, err := disk.New(eng, disk.ProfileTuned(128<<10, 64, 0, opts.Seed))
	if err != nil {
		return 0, err
	}
	sched, err := iosched.New(eng, d, cfg)
	if err != nil {
		return 0, err
	}
	spacing := d.Capacity() / int64(streams)
	spacing -= spacing % 512
	submit := func(_ int, off, length int64, done func()) error {
		// The process id is recovered from the stream's start region.
		proc := int(off / spacing)
		if proc >= streams {
			proc = streams - 1
		}
		return sched.Read(proc, off, length, done)
	}
	placements := PlaceTotal(1, streams, d.Capacity())
	sample, err := measureRun(eng, submit, placements, 4<<10, 1, opts)
	if err != nil {
		return 0, err
	}
	return sample.MBps, nil
}

// Fig04 reproduces Figure 4: request size vs throughput with the disk
// cache tuned so no prefetching occurs (segment size and read-ahead
// equal to the request size, 8 MB cache).
func Fig04(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 5*time.Second)
	reqSizes := []int64{8 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10}
	streamCounts := []int{1, 10, 30, 60, 100}

	res := Result{
		ID:     "fig04",
		Title:  "Impact of request size on throughput (no disk prefetch)",
		XLabel: "request size",
		YLabel: "MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	for _, rs := range reqSizes {
		row := Row{X: kbLabel(rs)}
		segments := (8 << 20) / rs
		stackCfg := iostack.BaseConfig(tunedDiskOptions(rs, segments, rs))
		capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
		for _, s := range streamCounts {
			sample, err := runDirect(stackCfg, PlacePerDisk(1, s, capacity), rs, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig05 reproduces Figure 5: the same sweep on the "real" drive whose
// firmware keeps a fixed segment size (256 KB) and always prefetches a
// full segment — which is why small requests fare better than in
// Figure 4. Streams are placed 1 GB apart as in the xdd runs.
func Fig05(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 5*time.Second)
	reqSizes := []int64{8 << 10, 16 << 10, 64 << 10, 128 << 10, 256 << 10}
	streamCounts := []int{1, 10, 20, 30, 50}

	res := Result{
		ID:     "fig05",
		Title:  "Xdd throughput with a single disk (fixed segment size)",
		XLabel: "request size",
		YLabel: "MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	for _, rs := range reqSizes {
		row := Row{X: kbLabel(rs)}
		for _, s := range streamCounts {
			// 1 GB intervals (§3.1).
			placements := make([]Placement, s)
			for i := range placements {
				placements[i] = Placement{Disk: 0, Start: int64(i) << 30}
			}
			sample, err := runDirect(stackCfg, placements, rs, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig06 reproduces Figure 6: disk prefetching with growing segment
// size at a fixed segment count (32), 30 streams, 64 KB requests. The
// cache grows with the segment size.
func Fig06(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 5*time.Second)
	segSizes := []int64{32 << 10, 64 << 10, 256 << 10, 512 << 10, 1 << 20, 2 << 20}

	res := Result{
		ID:     "fig06",
		Title:  "Effect of disk prefetching with increasing segment size (30 streams)",
		XLabel: "segment size",
		YLabel: "MB/s",
		Series: []string{"30 streams"},
	}
	for _, seg := range segSizes {
		stackCfg := iostack.BaseConfig(tunedDiskOptions(seg, 32, seg))
		capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
		sample, err := runDirect(stackCfg, PlacePerDisk(1, 30, capacity), 64<<10, opts)
		if err != nil {
			return Result{}, err
		}
		res.Rows = append(res.Rows, Row{X: kbLabel(seg), Values: []float64{sample.MBps}})
	}
	return res, nil
}

// Fig07 reproduces Figure 7: read-ahead under a fixed 8 MB cache. The
// segment geometry sweeps from many small segments to few large ones;
// throughput collapses once streams outnumber segments, and large
// prefetch is then worse than none.
func Fig07(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 5*time.Second)
	geometries := []struct {
		segments int64
		size     int64
	}{
		{128, 64 << 10}, {64, 128 << 10}, {32, 256 << 10}, {16, 512 << 10}, {8, 1 << 20},
	}
	streamCounts := []int{1, 10, 20, 30, 50, 100}

	res := Result{
		ID:     "fig07",
		Title:  "Effect of read-ahead on throughput (fixed 8MB cache)",
		XLabel: "#segments x size",
		YLabel: "MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	for _, g := range geometries {
		row := Row{X: fmt.Sprintf("%dx%s", g.segments, kbLabel(g.size))}
		stackCfg := iostack.BaseConfig(tunedDiskOptions(g.size, g.segments, g.size))
		capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
		for _, s := range streamCounts {
			sample, err := runDirect(stackCfg, PlacePerDisk(1, s, capacity), 64<<10, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Fig08 reproduces Figure 8: controller-level prefetching with a
// 128 MB controller cache. Small read-ahead rescues multi-stream
// throughput; read-ahead beyond cache/streams collapses it.
func Fig08(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 5*time.Second)
	readAheads := []int64{64 << 10, 256 << 10, 512 << 10, 2 << 20, 4 << 20}
	streamCounts := []int{1, 10, 30, 60, 100}

	res := Result{
		ID:     "fig08",
		Title:  "Prefetching at the controller level (128MB controller cache)",
		XLabel: "prefetch size",
		YLabel: "MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	for _, ra := range readAheads {
		row := Row{X: kbLabel(ra)}
		ra := ra
		stackCfg := iostack.BaseConfig(iostack.Options{
			ControllerConfig: func() controller.Config {
				c := controller.ProfileBC4810()
				c.CacheSize = 128 << 20
				c.ReadAhead = ra
				return c
			},
		})
		capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
		for _, s := range streamCounts {
			sample, err := runDirect(stackCfg, PlacePerDisk(1, s, capacity), 64<<10, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
