//go:build invariants

package experiments

import (
	"testing"

	"seqstream/internal/invariants"
)

// TestRegistryUnderInvariants runs every registered experiment at
// Quick scale with the runtime invariant layer compiled in. Any
// scheduler-state violation (memory accounting, dispatch bounds,
// queue-depth overrun) panics inside the run and fails the subtest.
// This is the tier-2 CI job: go test -tags invariants ./internal/experiments/...
func TestRegistryUnderInvariants(t *testing.T) {
	if !invariants.Enabled {
		t.Fatal("test compiled without the invariants build tag")
	}
	for _, e := range List() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			res, err := e.Run(Quick())
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(res.Rows) == 0 {
				t.Fatalf("%s: empty result", e.ID)
			}
		})
	}
}
