package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// AblationOutstanding sweeps the per-stream outstanding-request count
// on the direct path (§2's observation, echoed from the Windows
// sequential-I/O studies the paper cites: high performance needs
// multiple outstanding requests). Deeper per-stream pipelines hide
// request turnaround but cannot fix seek-bound interleaving.
func AblationOutstanding(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 4*time.Second)
	depths := []int{1, 2, 4, 8}
	streamCounts := []int{1, 30}

	res := Result{
		ID:     "abl-outstanding",
		Title:  "Outstanding requests per stream (direct path, 64K requests)",
		XLabel: "outstanding",
		YLabel: "MB/s",
	}
	for _, s := range streamCounts {
		res.Series = append(res.Series, fmt.Sprintf("%d streams", s))
	}
	stackCfg := iostack.BaseConfig(iostack.Options{})
	capacity := stackCfg.Controllers[0].Disks[0].Geometry.Capacity
	for _, depth := range depths {
		row := Row{X: fmt.Sprintf("%d", depth)}
		for _, s := range streamCounts {
			eng := sim.NewEngine()
			host, err := newHost(eng, stackCfg)
			if err != nil {
				return Result{}, err
			}
			sample, err := measureRun(eng, directSubmit(host),
				PlacePerDisk(1, s, capacity), 64<<10, depth, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, sample.MBps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
