package experiments

import (
	"fmt"
	"time"

	"seqstream/internal/iosched"
)

// AblationReadaheadRamp compares the OS readahead model with and
// without Linux-style window ramp-up (16 KB doubling to 128 KB) under
// the anticipatory scheduler. Ramping trades a slow start per stream
// for less wasted prefetch on short or abandoned sequences; for the
// paper's long sequential streams it converges to the full window.
func AblationReadaheadRamp(opts Options) (Result, error) {
	opts = opts.withDefaults(time.Second, 4*time.Second)
	streamCounts := []int{1, 4, 16, 64}

	res := Result{
		ID:     "abl-ramp",
		Title:  "OS readahead ramp-up (anticipatory, 4K reads)",
		XLabel: "streams",
		YLabel: "MB/s",
		Series: []string{"full window", "ramped 16K->128K"},
	}
	for _, s := range streamCounts {
		row := Row{X: fmt.Sprintf("%d", s)}
		for _, ramp := range []int64{0, 16 << 10} {
			cfg := iosched.DefaultConfig(iosched.Anticipatory)
			cfg.RampStart = ramp
			mbps, err := runSchedulerStreamsCfg(cfg, s, opts)
			if err != nil {
				return Result{}, err
			}
			row.Values = append(row.Values, mbps)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}
