// Package experiments regenerates every figure of the paper's
// evaluation: the §3 simulation sweeps (request size, disk cache
// geometry, disk and controller prefetching), the Figure 2 Linux
// scheduler comparison, and the §5 experiments with the host-level
// stream scheduler (read-ahead, memory size, multi-disk, dispatch/
// staging split, response time).
//
// Each experiment returns a Result whose rows and series mirror the
// axes of the corresponding paper figure. Absolute values come from
// the simulator; EXPERIMENTS.md records the paper-vs-measured shapes.
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/controller"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/metrics"
	"seqstream/internal/obs"
	"seqstream/internal/sim"
)

// Result is one reproduced figure: a labeled table of series.
type Result struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Series labels the columns; Rows holds one x-value per entry.
	Series []string
	Rows   []Row
}

// Row is one x-axis point across all series.
type Row struct {
	X      string
	Values []float64
}

// Table renders the result as an aligned text table, one row per
// x-value, matching the paper's figure axes.
func (r Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	fmt.Fprintf(&b, "%s (x) vs %s (y)\n", r.XLabel, r.YLabel)
	fmt.Fprintf(&b, "%-16s", r.XLabel)
	for _, s := range r.Series {
		fmt.Fprintf(&b, "%16s", s)
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-16s", row.X)
		for _, v := range row.Values {
			fmt.Fprintf(&b, "%16.2f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// WriteCSV exports the result as CSV: a header of the x-label and
// series names, one row per x-value.
func (r Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{r.XLabel}, r.Series...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	for _, row := range r.Rows {
		rec := make([]string, 0, len(row.Values)+1)
		rec = append(rec, row.X)
		for _, v := range row.Values {
			rec = append(rec, strconv.FormatFloat(v, 'f', 3, 64))
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("experiments: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("experiments: %w", err)
	}
	return nil
}

// Value returns the cell for (x, series), and whether it exists.
func (r Result) Value(x, series string) (float64, bool) {
	col := -1
	for i, s := range r.Series {
		if s == series {
			col = i
			break
		}
	}
	if col < 0 {
		return 0, false
	}
	for _, row := range r.Rows {
		if row.X == x && col < len(row.Values) {
			return row.Values[col], true
		}
	}
	return 0, false
}

// Options tune experiment scale. The zero value uses full-fidelity
// durations; Quick() shrinks them for tests and CI.
type Options struct {
	// Warmup is ignored for measurement (detection, cache fill).
	Warmup time.Duration
	// Measure is the steady-state window.
	Measure time.Duration
	// Seed drives every stochastic component.
	Seed uint64
	// Registry, when non-nil, receives the instrumentation of every
	// cell the experiment runs: core scheduler and controller counters
	// accumulate across cells, while the sim gauges rebind to each
	// cell's engine. Snapshot it after Run returns — the same metric
	// families streamnode serves live on /metrics.
	Registry *obs.Registry
}

func (o Options) withDefaults(warm, measure time.Duration) Options {
	if o.Warmup == 0 {
		o.Warmup = warm
	}
	if o.Measure == 0 {
		o.Measure = measure
	}
	return o
}

// Quick returns options scaled for fast runs (unit tests, smoke
// checks): shapes remain, absolute noise grows.
func Quick() Options {
	return Options{Warmup: 2 * time.Second, Measure: 4 * time.Second, Seed: 1}
}

// Placement locates one stream.
type Placement struct {
	Disk  int
	Start int64
}

// PlacePerDisk spreads perDisk streams uniformly over each of ndisks
// drives (the paper's placement: disksize/#streams apart).
func PlacePerDisk(ndisks, perDisk int, capacity int64) []Placement {
	spacing := capacity / int64(perDisk)
	spacing -= spacing % 512
	out := make([]Placement, 0, ndisks*perDisk)
	for d := 0; d < ndisks; d++ {
		for s := 0; s < perDisk; s++ {
			out = append(out, Placement{Disk: d, Start: int64(s) * spacing})
		}
	}
	return out
}

// PlaceTotal spreads total streams round-robin across ndisks drives,
// each disk's share placed uniformly.
func PlaceTotal(ndisks, total int, capacity int64) []Placement {
	perDisk := (total + ndisks - 1) / ndisks
	spacing := capacity / int64(perDisk)
	spacing -= spacing % 512
	out := make([]Placement, 0, total)
	for i := 0; i < total; i++ {
		d := i % ndisks
		slot := i / ndisks
		out = append(out, Placement{Disk: d, Start: int64(slot) * spacing})
	}
	return out
}

// Sample is one measured cell.
type Sample struct {
	MBps    float64
	MeanLat time.Duration
	P50Lat  time.Duration
	P99Lat  time.Duration
}

// submitFunc matches workload.SubmitFunc without importing it here.
type submitFunc func(disk int, off, length int64, done func()) error

// measureRun drives synchronous sequential streams against submit and
// measures delivered bytes and response times inside the
// [warmup, warmup+measure] window of virtual time.
func measureRun(eng *sim.Engine, submit submitFunc, placements []Placement,
	reqSize int64, outstanding int, opts Options) (Sample, error) {
	clock := blockdev.NewSimClock(eng)
	warmEnd := opts.Warmup
	measureEnd := opts.Warmup + opts.Measure

	var bytes int64
	var lat metrics.LatencySummary

	next := make([]int64, len(placements))
	for i, p := range placements {
		next[i] = p.Start
	}
	stopped := false
	var issue func(i int)
	issue = func(i int) {
		if stopped {
			return
		}
		p := placements[i]
		for attempt := 0; attempt < 2; attempt++ {
			off := next[i]
			next[i] += reqSize
			start := clock.Now()
			err := submit(p.Disk, off, reqSize, func() {
				end := clock.Now()
				if end >= warmEnd && end <= measureEnd {
					bytes += reqSize
					lat.Observe(end - start)
				}
				issue(i)
			})
			if err == nil {
				return
			}
			// The stream ran off the disk: wrap to its start region
			// and retry once; a second failure drops the stream.
			next[i] = p.Start
		}
	}
	if outstanding <= 0 {
		outstanding = 1
	}
	for i := range placements {
		for k := 0; k < outstanding; k++ {
			issue(i)
		}
	}
	if err := eng.RunUntil(measureEnd); err != nil {
		return Sample{}, err
	}
	stopped = true
	s := Sample{MBps: float64(bytes) / opts.Measure.Seconds() / 1e6}
	if lat.Count() > 0 {
		s.MeanLat = lat.Mean()
		s.P50Lat = lat.Quantile(0.5)
		s.P99Lat = lat.Quantile(0.99)
	}
	return s, nil
}

// newHost builds a simulated host or fails the experiment.
func newHost(eng *sim.Engine, cfg iostack.Config) (*iostack.Host, error) {
	host, err := iostack.New(eng, cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return host, nil
}

// instrumentHost attaches the options' registry (if any) to a cell's
// engine and controllers. Controller counters aggregate across cells
// and controllers; the sim gauges track the newest engine.
func instrumentHost(opts Options, eng *sim.Engine, host *iostack.Host) {
	if opts.Registry == nil {
		return
	}
	eng.Instrument(opts.Registry)
	ctrlObs := controller.NewObs(opts.Registry)
	for i := 0; i < host.Controllers(); i++ {
		host.Controller(i).SetObs(ctrlObs)
	}
}

// directSubmit issues requests straight to the host (no stream
// scheduler) — the paper's baseline path.
func directSubmit(host *iostack.Host) submitFunc {
	return func(disk int, off, length int64, done func()) error {
		return host.ReadAt(disk, off, length, func(iostack.Result) { done() })
	}
}

// coreSubmit routes requests through the stream scheduler.
func coreSubmit(srv *core.Server) submitFunc {
	return func(disk int, off, length int64, done func()) error {
		return srv.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}
}

// runDirect measures the baseline path on a host configuration.
func runDirect(stackCfg iostack.Config, placements []Placement, reqSize int64, opts Options) (Sample, error) {
	eng := sim.NewEngine()
	host, err := newHost(eng, stackCfg)
	if err != nil {
		return Sample{}, err
	}
	instrumentHost(opts, eng, host)
	return measureRun(eng, directSubmit(host), placements, reqSize, 1, opts)
}

// runCore measures the stream scheduler on a host configuration.
func runCore(stackCfg iostack.Config, coreCfg core.Config, placements []Placement,
	reqSize int64, opts Options) (Sample, error) {
	eng := sim.NewEngine()
	host, err := newHost(eng, stackCfg)
	if err != nil {
		return Sample{}, err
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		return Sample{}, err
	}
	instrumentHost(opts, eng, host)
	if opts.Registry != nil && coreCfg.Obs == nil {
		coreCfg.Obs = core.NewObs(opts.Registry, nil)
	}
	srv, err := core.NewServer(dev, blockdev.NewSimClock(eng), coreCfg)
	if err != nil {
		return Sample{}, err
	}
	defer srv.Close()
	return measureRun(eng, coreSubmit(srv), placements, reqSize, 1, opts)
}
