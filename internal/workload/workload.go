// Package workload drives block devices with the request patterns the
// paper evaluates: large numbers of synchronous sequential read streams
// placed uniformly across each disk (§5), plus random-access generators
// used as negative inputs for the classifier.
package workload

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/metrics"
)

// SubmitFunc issues one read. done must be called exactly once when the
// data has been delivered.
type SubmitFunc func(disk int, off, length int64, done func()) error

// StreamSpec describes one sequential stream.
type StreamSpec struct {
	// ID labels the stream in the metrics recorder.
	ID int
	// Disk is the target drive.
	Disk int
	// Start is the first byte offset.
	Start int64
	// RequestSize is the size of every read.
	RequestSize int64
	// Requests is the number of reads to issue (must be positive).
	Requests int
	// Outstanding bounds in-flight reads (defaults to 1: the paper's
	// synchronous clients).
	Outstanding int
	// Think delays each follow-up read after a completion.
	Think time.Duration
	// WrapAt, when positive, restarts the stream at Start once the
	// next request would cross this offset, so long-running streams
	// loop within their region instead of running off the disk.
	WrapAt int64
}

// Validate reports spec errors against a device.
func (s StreamSpec) Validate(dev blockdev.Device) error {
	if s.Disk < 0 || s.Disk >= dev.Disks() {
		return fmt.Errorf("workload: stream %d: disk %d out of range", s.ID, s.Disk)
	}
	if s.RequestSize <= 0 {
		return fmt.Errorf("workload: stream %d: request size must be positive", s.ID)
	}
	if s.Requests <= 0 {
		return fmt.Errorf("workload: stream %d: requests must be positive", s.ID)
	}
	if s.Start < 0 || s.Start+s.RequestSize > dev.Capacity(s.Disk) {
		return fmt.Errorf("workload: stream %d: start %d out of range", s.ID, s.Start)
	}
	return nil
}

// PlaceUniform returns nStreams start offsets spaced capacity/nStreams
// apart (the paper's placement: each stream disksize/#streams blocks
// away from the previous one), aligned down to align bytes.
func PlaceUniform(nStreams int, capacity, align int64) []int64 {
	if nStreams <= 0 {
		return nil
	}
	if align <= 0 {
		align = 512
	}
	spacing := capacity / int64(nStreams)
	spacing -= spacing % align
	offs := make([]int64, nStreams)
	for i := range offs {
		offs[i] = int64(i) * spacing
	}
	return offs
}

// UniformStreams builds one spec per stream for a disk, with uniform
// placement and the given request size and count.
func UniformStreams(firstID, disk, nStreams int, capacity, reqSize int64, requests int) []StreamSpec {
	offs := PlaceUniform(nStreams, capacity, 512)
	specs := make([]StreamSpec, 0, nStreams)
	for i, off := range offs {
		specs = append(specs, StreamSpec{
			ID:          firstID + i,
			Disk:        disk,
			Start:       off,
			RequestSize: reqSize,
			Requests:    requests,
		})
	}
	return specs
}

// Generator runs a set of streams against a submit function, recording
// per-stream throughput and latency. It is single-threaded: all
// callbacks must arrive on the same loop that calls Start (true for
// simulated devices; real devices need external serialization).
type Generator struct {
	clock   blockdev.Clock
	submit  SubmitFunc
	rec     *metrics.Recorder
	specs   []StreamSpec
	randoms []randomState
	pending int
	onDone  func()
	started bool
}

// NewGenerator builds a generator. rec may be nil, in which case a new
// recorder is created.
func NewGenerator(clock blockdev.Clock, submit SubmitFunc, rec *metrics.Recorder) (*Generator, error) {
	if clock == nil {
		return nil, errors.New("workload: nil clock")
	}
	if submit == nil {
		return nil, errors.New("workload: nil submit")
	}
	if rec == nil {
		rec = metrics.NewRecorder()
	}
	return &Generator{clock: clock, submit: submit, rec: rec}, nil
}

// Recorder returns the metrics recorder.
func (g *Generator) Recorder() *metrics.Recorder { return g.rec }

// Add registers streams. It must be called before Start.
func (g *Generator) Add(specs ...StreamSpec) error {
	if g.started {
		return errors.New("workload: Add after Start")
	}
	g.specs = append(g.specs, specs...)
	return nil
}

// Remaining returns the number of streams that have not finished.
func (g *Generator) Remaining() int { return g.pending }

// Start issues the initial requests of every stream. onDone, if
// non-nil, runs once when every stream has completed all its requests.
func (g *Generator) Start(onDone func()) error {
	if g.started {
		return errors.New("workload: already started")
	}
	if len(g.specs) == 0 && len(g.randoms) == 0 {
		return errors.New("workload: no streams")
	}
	g.started = true
	g.onDone = onDone
	g.pending = len(g.specs) + len(g.randoms)
	for i := range g.specs {
		if err := g.startStream(&g.specs[i]); err != nil {
			return err
		}
	}
	return g.startRandoms()
}

type streamState struct {
	spec      *StreamSpec
	nextOff   int64
	issued    int
	completed int
	inflight  int
}

func (g *Generator) startStream(spec *StreamSpec) error {
	st := &streamState{spec: spec, nextOff: spec.Start}
	outstanding := spec.Outstanding
	if outstanding <= 0 {
		outstanding = 1
	}
	var firstErr error
	for i := 0; i < outstanding && st.issued < spec.Requests; i++ {
		if err := g.issue(st); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// issue sends the stream's next request.
func (g *Generator) issue(st *streamState) error {
	spec := st.spec
	if spec.WrapAt > 0 && st.nextOff+spec.RequestSize > spec.WrapAt {
		st.nextOff = spec.Start
	}
	off := st.nextOff
	st.nextOff += spec.RequestSize
	st.issued++
	st.inflight++
	start := g.clock.Now()
	return g.submit(spec.Disk, off, spec.RequestSize, func() {
		end := g.clock.Now()
		g.rec.Record(spec.ID, spec.RequestSize, start, end)
		st.inflight--
		st.completed++
		g.afterCompletion(st)
	})
}

func (g *Generator) afterCompletion(st *streamState) {
	spec := st.spec
	if st.completed >= spec.Requests {
		g.pending--
		if g.pending == 0 && g.onDone != nil {
			g.onDone()
		}
		return
	}
	if st.issued >= spec.Requests {
		return // tail completions of a multi-outstanding stream
	}
	next := func() {
		// Silently stop the stream on a malformed follow-up (the spec
		// was validated up front; this only triggers at disk end).
		if err := g.issue(st); err != nil {
			st.issued = spec.Requests
			st.completed = spec.Requests
			g.pending--
			if g.pending == 0 && g.onDone != nil {
				g.onDone()
			}
		}
	}
	if spec.Think > 0 {
		g.clock.Schedule(spec.Think, next)
		return
	}
	next()
}
