package workload

import (
	"fmt"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/sim"
)

// RandomSpec describes a random-access reader: the non-sequential
// traffic the storage node must keep on the direct path.
type RandomSpec struct {
	// ID labels the reader in the metrics recorder.
	ID int
	// Disk is the target drive.
	Disk int
	// RequestSize is the size of every read.
	RequestSize int64
	// Requests is the number of reads to issue.
	Requests int
	// Think delays each follow-up read.
	Think time.Duration
	// Seed drives the offset sequence.
	Seed uint64
	// Align rounds offsets down (default 512).
	Align int64
}

// Validate reports spec errors against a device.
func (r RandomSpec) Validate(dev blockdev.Device) error {
	if r.Disk < 0 || r.Disk >= dev.Disks() {
		return fmt.Errorf("workload: random %d: disk %d out of range", r.ID, r.Disk)
	}
	if r.RequestSize <= 0 || r.RequestSize > dev.Capacity(r.Disk) {
		return fmt.Errorf("workload: random %d: bad request size %d", r.ID, r.RequestSize)
	}
	if r.Requests <= 0 {
		return fmt.Errorf("workload: random %d: requests must be positive", r.ID)
	}
	return nil
}

// AddRandom registers a random reader with the generator, targeting
// the given device for capacity bounds. It must be called before
// Start.
func (g *Generator) AddRandom(dev blockdev.Device, spec RandomSpec) error {
	if err := spec.Validate(dev); err != nil {
		return err
	}
	if g.started {
		return fmt.Errorf("workload: AddRandom after Start")
	}
	align := spec.Align
	if align <= 0 {
		align = 512
	}
	rng := sim.NewRand(spec.Seed ^ 0xabcd)
	span := dev.Capacity(spec.Disk) - spec.RequestSize
	g.randoms = append(g.randoms, randomState{
		spec:  spec,
		align: align,
		rng:   rng,
		span:  span,
	})
	return nil
}

type randomState struct {
	spec  RandomSpec
	align int64
	rng   *sim.Rand
	span  int64
	done  int
}

// startRandoms issues the initial request of every random reader.
func (g *Generator) startRandoms() error {
	var firstErr error
	for i := range g.randoms {
		if err := g.issueRandom(&g.randoms[i]); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

func (g *Generator) issueRandom(st *randomState) error {
	spec := st.spec
	off := st.rng.Int63n(st.span + 1)
	off -= off % st.align
	start := g.clock.Now()
	return g.submit(spec.Disk, off, spec.RequestSize, func() {
		end := g.clock.Now()
		g.rec.Record(spec.ID, spec.RequestSize, start, end)
		st.done++
		if st.done >= spec.Requests {
			g.pending--
			if g.pending == 0 && g.onDone != nil {
				g.onDone()
			}
			return
		}
		next := func() {
			if err := g.issueRandom(st); err != nil {
				st.done = spec.Requests
				g.pending--
				if g.pending == 0 && g.onDone != nil {
					g.onDone()
				}
			}
		}
		if spec.Think > 0 {
			g.clock.Schedule(spec.Think, next)
			return
		}
		next()
	})
}
