package workload

import (
	"testing"
	"time"
)

func TestRandomSpecValidate(t *testing.T) {
	_, dev, _ := newSimTarget(t)
	good := RandomSpec{ID: 0, Disk: 0, RequestSize: 4096, Requests: 4}
	if err := good.Validate(dev); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []RandomSpec{
		{Disk: 1, RequestSize: 4096, Requests: 1},
		{Disk: -1, RequestSize: 4096, Requests: 1},
		{Disk: 0, RequestSize: 0, Requests: 1},
		{Disk: 0, RequestSize: dev.Capacity(0) + 1, Requests: 1},
		{Disk: 0, RequestSize: 4096, Requests: 0},
	}
	for i, spec := range bad {
		if err := spec.Validate(dev); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestRandomReadersRun(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 0, Disk: 0, RequestSize: 8192, Requests: 20, Seed: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 1, Disk: 0, RequestSize: 8192, Requests: 20, Seed: 2, Think: time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := g.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("random readers never finished")
	}
	rec := g.Recorder()
	if rec.TotalRequests() != 40 {
		t.Errorf("TotalRequests = %d", rec.TotalRequests())
	}
	if rec.Streams() != 2 {
		t.Errorf("Streams = %d", rec.Streams())
	}
}

func TestRandomOffsetsAligned(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	var offs []int64
	submit := func(disk int, off, length int64, done func()) error {
		offs = append(offs, off)
		return dev.ReadAt(disk, off, length, func([]byte, error) { done() })
	}
	g, err := NewGenerator(clock, submit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 0, Disk: 0, RequestSize: 4096, Requests: 50, Seed: 9, Align: 4096}); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	distinct := make(map[int64]bool)
	for _, off := range offs {
		if off%4096 != 0 {
			t.Fatalf("offset %d not aligned", off)
		}
		distinct[off] = true
	}
	if len(distinct) < 40 {
		t.Errorf("only %d distinct offsets in 50 random reads", len(distinct))
	}
}

func TestMixedWorkload(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(UniformStreams(0, 0, 3, dev.Capacity(0), 64<<10, 16)...); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 100, Disk: 0, RequestSize: 4096, Requests: 16, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := g.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("mixed workload never finished")
	}
	if g.Recorder().TotalRequests() != 3*16+16 {
		t.Errorf("TotalRequests = %d", g.Recorder().TotalRequests())
	}
}

func TestAddRandomAfterStart(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 0, Disk: 0, RequestSize: 4096, Requests: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := g.AddRandom(dev, RandomSpec{ID: 1, Disk: 0, RequestSize: 4096, Requests: 1}); err == nil {
		t.Error("AddRandom after Start accepted")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}
