package workload

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
	"seqstream/internal/metrics"
	"seqstream/internal/sim"
)

func newSimTarget(t *testing.T) (*sim.Engine, *blockdev.SimDevice, blockdev.Clock) {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	return eng, dev, blockdev.NewSimClock(eng)
}

func deviceSubmit(dev blockdev.Device) SubmitFunc {
	return func(disk int, off, length int64, done func()) error {
		return dev.ReadAt(disk, off, length, func([]byte, error) { done() })
	}
}

func TestPlaceUniform(t *testing.T) {
	offs := PlaceUniform(4, 4096*100, 512)
	if len(offs) != 4 {
		t.Fatalf("len = %d", len(offs))
	}
	if offs[0] != 0 {
		t.Errorf("first offset = %d", offs[0])
	}
	spacing := offs[1] - offs[0]
	for i := 1; i < len(offs); i++ {
		if offs[i]-offs[i-1] != spacing {
			t.Errorf("uneven spacing: %v", offs)
		}
		if offs[i]%512 != 0 {
			t.Errorf("offset %d not aligned", offs[i])
		}
	}
	if PlaceUniform(0, 1000, 512) != nil {
		t.Error("zero streams should return nil")
	}
	// Default alignment when align <= 0.
	offs = PlaceUniform(3, 3000000, 0)
	for _, o := range offs {
		if o%512 != 0 {
			t.Errorf("offset %d not 512-aligned by default", o)
		}
	}
}

func TestUniformStreams(t *testing.T) {
	specs := UniformStreams(10, 2, 5, 1e9, 64<<10, 100)
	if len(specs) != 5 {
		t.Fatalf("len = %d", len(specs))
	}
	for i, s := range specs {
		if s.ID != 10+i {
			t.Errorf("ID = %d, want %d", s.ID, 10+i)
		}
		if s.Disk != 2 || s.RequestSize != 64<<10 || s.Requests != 100 {
			t.Errorf("spec %d = %+v", i, s)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	_, dev, _ := newSimTarget(t)
	valid := StreamSpec{Disk: 0, Start: 0, RequestSize: 4096, Requests: 1}
	if err := valid.Validate(dev); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
	bad := []StreamSpec{
		{Disk: 1, RequestSize: 4096, Requests: 1},
		{Disk: -1, RequestSize: 4096, Requests: 1},
		{Disk: 0, RequestSize: 0, Requests: 1},
		{Disk: 0, RequestSize: 4096, Requests: 0},
		{Disk: 0, Start: -1, RequestSize: 4096, Requests: 1},
		{Disk: 0, Start: dev.Capacity(0), RequestSize: 4096, Requests: 1},
	}
	for i, s := range bad {
		if err := s.Validate(dev); err == nil {
			t.Errorf("bad spec %d accepted", i)
		}
	}
}

func TestGeneratorValidation(t *testing.T) {
	_, dev, clock := newSimTarget(t)
	if _, err := NewGenerator(nil, deviceSubmit(dev), nil); err == nil {
		t.Error("nil clock accepted")
	}
	if _, err := NewGenerator(clock, nil, nil); err == nil {
		t.Error("nil submit accepted")
	}
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err == nil {
		t.Error("Start with no streams accepted")
	}
}

func TestGeneratorRunsStreams(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	rec := metrics.NewRecorder()
	g, err := NewGenerator(clock, deviceSubmit(dev), rec)
	if err != nil {
		t.Fatal(err)
	}
	specs := UniformStreams(0, 0, 4, dev.Capacity(0), 64<<10, 8)
	if err := g.Add(specs...); err != nil {
		t.Fatal(err)
	}
	doneCalled := false
	if err := g.Start(func() { doneCalled = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !doneCalled {
		t.Error("onDone never called")
	}
	if g.Remaining() != 0 {
		t.Errorf("Remaining = %d", g.Remaining())
	}
	if rec.TotalRequests() != 32 {
		t.Errorf("TotalRequests = %d, want 32", rec.TotalRequests())
	}
	if rec.TotalBytes() != 32*64<<10 {
		t.Errorf("TotalBytes = %d", rec.TotalBytes())
	}
	if rec.Streams() != 4 {
		t.Errorf("Streams = %d", rec.Streams())
	}
	if rec.AggregateMBps() <= 0 {
		t.Error("nonpositive throughput")
	}
}

func TestGeneratorAddAfterStart(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(StreamSpec{ID: 0, RequestSize: 4096, Requests: 1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := g.Add(StreamSpec{ID: 1, RequestSize: 4096, Requests: 1}); err == nil {
		t.Error("Add after Start accepted")
	}
	if err := g.Start(nil); err == nil {
		t.Error("double Start accepted")
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratorThinkTime(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	const think = 50 * time.Millisecond
	if err := g.Add(StreamSpec{ID: 0, RequestSize: 4096, Requests: 4, Think: think}); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if eng.Now() < 3*think {
		t.Errorf("run finished at %v, want at least 3 think periods", eng.Now())
	}
}

func TestGeneratorOutstanding(t *testing.T) {
	// With outstanding=2 the stream pipelines: two requests in flight
	// through the device.
	eng, dev, clock := newSimTarget(t)
	g, err := NewGenerator(clock, deviceSubmit(dev), nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(StreamSpec{ID: 0, RequestSize: 64 << 10, Requests: 16, Outstanding: 2}); err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := g.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Error("pipelined stream never finished")
	}
	if g.Recorder().TotalRequests() != 16 {
		t.Errorf("TotalRequests = %d", g.Recorder().TotalRequests())
	}
}

func TestGeneratorWrapAt(t *testing.T) {
	eng, dev, clock := newSimTarget(t)
	var offsets []int64
	submit := func(disk int, off, length int64, done func()) error {
		offsets = append(offsets, off)
		return dev.ReadAt(disk, off, length, func([]byte, error) { done() })
	}
	g, err := NewGenerator(clock, submit, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Add(StreamSpec{
		ID: 0, RequestSize: 4096, Requests: 6,
		Start: 0, WrapAt: 4 * 4096,
	}); err != nil {
		t.Fatal(err)
	}
	if err := g.Start(nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 4096, 8192, 12288, 0, 4096}
	if len(offsets) != len(want) {
		t.Fatalf("offsets = %v", offsets)
	}
	for i := range want {
		if offsets[i] != want[i] {
			t.Fatalf("offsets = %v, want %v", offsets, want)
		}
	}
}
