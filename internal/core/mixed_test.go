package core

import (
	"testing"

	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// TestMixedWorkloadSeparation is §4's core duty: sequential streams are
// separated from other I/O — streams get staged read-ahead, random
// traffic flows down the direct path, and both complete.
func TestMixedWorkloadSeparation(t *testing.T) {
	n := baseNode(t, DefaultConfig(128<<20, 1<<20))
	capacity := n.dev.Capacity(0)
	rng := sim.NewRand(11)

	const seqStreams = 4
	const seqReqs = 24
	const randomReqs = 24
	const req = 64 << 10

	total := seqStreams*seqReqs + randomReqs
	completed := 0
	buffered := 0
	randomDirect := 0

	// Sequential streams.
	spacing := capacity / seqStreams
	spacing -= spacing % 512
	for s := 0; s < seqStreams; s++ {
		base := int64(s) * spacing
		var issue func(i int)
		issue = func(i int) {
			if i >= seqReqs {
				return
			}
			if err := n.server.Submit(Request{
				Disk: 0, Offset: base + int64(i)*req, Length: req,
				Done: func(r Response) {
					completed++
					if r.FromBuffer {
						buffered++
					}
					issue(i + 1)
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		issue(0)
	}
	// Random reader interleaved.
	var issueRandom func(i int)
	issueRandom = func(i int) {
		if i >= randomReqs {
			return
		}
		off := rng.Int63n(capacity - req)
		off -= off % 512
		if err := n.server.Submit(Request{
			Disk: 0, Offset: off, Length: 4096,
			Done: func(r Response) {
				completed++
				if r.Direct {
					randomDirect++
				}
				issueRandom(i + 1)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	issueRandom(0)

	n.await(t, func() bool { return completed >= total })

	if buffered == 0 {
		t.Error("sequential streams never hit staged buffers amid random traffic")
	}
	if randomDirect < randomReqs*9/10 {
		t.Errorf("random requests direct = %d/%d; classifier leaked them into streams", randomDirect, randomReqs)
	}
	st := n.server.Stats()
	if st.StreamsDetected != seqStreams {
		t.Errorf("StreamsDetected = %d, want %d", st.StreamsDetected, seqStreams)
	}
}

// TestFairDispatchAcrossDisks checks that burst-detected streams cannot
// capture the whole dispatch set for one disk (the ceil(D/#disks)
// admission bound).
func TestFairDispatchAcrossDisks(t *testing.T) {
	cfg := DefaultConfig(512<<20, 1<<20)
	cfg.DispatchSize = 8
	n := newNode(t, iostack.Testbed8Config(iostack.Options{}), cfg)

	const perDisk = 4
	const reqs = 24
	const req = 64 << 10
	completedPerDisk := make([]int, 8)
	completed := 0
	spacing := n.dev.Capacity(0) / perDisk
	spacing -= spacing % 512
	for d := 0; d < 8; d++ {
		for s := 0; s < perDisk; s++ {
			d := d
			base := int64(s) * spacing
			var issue func(i int)
			issue = func(i int) {
				if i >= reqs {
					return
				}
				if err := n.server.Submit(Request{
					Disk: d, Offset: base + int64(i)*req, Length: req,
					Done: func(Response) {
						completed++
						completedPerDisk[d]++
						issue(i + 1)
					},
				}); err != nil {
					t.Fatal(err)
				}
			}
			issue(0)
		}
	}
	// Run a bounded window rather than to completion: fairness shows up
	// as balanced progress.
	if err := n.eng.RunUntil(3_000_000_000); err != nil { // 3s virtual
		t.Fatal(err)
	}
	minDone, maxDone := completedPerDisk[0], completedPerDisk[0]
	for _, c := range completedPerDisk[1:] {
		if c < minDone {
			minDone = c
		}
		if c > maxDone {
			maxDone = c
		}
	}
	if minDone == 0 {
		t.Errorf("a disk made no progress: %v", completedPerDisk)
	}
	if maxDone > 4*minDone && maxDone-minDone > 16 {
		t.Errorf("unbalanced progress across disks: %v", completedPerDisk)
	}
}
