package core

import (
	"strings"
	"testing"
	"time"

	"seqstream/internal/obs"
	"seqstream/internal/trace"
)

// obsNode builds a simulated node with a registry, span log, and
// tracer attached.
func obsNode(t *testing.T, cfg Config) (*testNode, *obs.Registry, *obs.SpanLog) {
	t.Helper()
	reg := obs.NewRegistry()
	// The span log needs the node's clock, which newNode creates, so
	// build the plain node first and swap in an instrumented server.
	n := baseNode(t, cfg)
	spans, err := obs.NewSpanLog(n.clock.Now, 1024)
	if err != nil {
		t.Fatal(err)
	}
	// Rebuild the server with instruments attached.
	cfg.Obs = NewObs(reg, spans)
	tr, err := trace.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Trace = tr
	srv, err := NewServer(n.dev, n.clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.server.Close()
	n.server = srv
	t.Cleanup(srv.Close)
	return n, reg, spans
}

func TestObsCountersMatchStats(t *testing.T) {
	cfg := DefaultConfig(8<<20, 1<<20)
	n, reg, _ := obsNode(t, cfg)
	n.runStreams(t, 4, 32)

	st := n.server.Stats()
	vars := reg.Vars()
	checks := map[string]int64{
		"seqstream_core_requests_total":         st.Requests,
		"seqstream_core_direct_reads_total":     st.DirectReads,
		"seqstream_core_buffer_hits_total":      st.BufferHits,
		"seqstream_core_queued_served_total":    st.QueuedServed,
		"seqstream_core_streams_detected_total": st.StreamsDetected,
		"seqstream_core_fetches_total":          st.Fetches,
		"seqstream_core_fetched_bytes_total":    st.BytesFetched,
		"seqstream_core_delivered_bytes_total":  st.BytesDelivered,
		"seqstream_core_memory_in_use_bytes":    st.MemoryInUse,
		"seqstream_core_live_buffers":           st.LiveBuffers,
	}
	for name, want := range checks {
		if got := vars[name]; got != want {
			t.Errorf("%s = %v, want %d (Stats)", name, got, want)
		}
	}
	if st.StreamsDetected == 0 {
		t.Fatal("workload detected no streams; instrumentation untested")
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, family := range []string{
		"seqstream_core_dispatched_streams",
		"seqstream_core_candidate_queue_depth",
		"seqstream_core_request_latency_seconds_count",
		"seqstream_core_fetch_latency_seconds_count",
	} {
		if !strings.Contains(out, family) {
			t.Errorf("exposition missing family %s", family)
		}
	}
}

func TestObsSpansReconstructLifecycle(t *testing.T) {
	cfg := DefaultConfig(8<<20, 1<<20)
	n, _, spans := obsNode(t, cfg)
	n.runStreams(t, 2, 16)

	ids := spans.Streams()
	if len(ids) == 0 {
		t.Fatal("no stream spans recorded")
	}
	tl := spans.Timeline(ids[0])
	seen := make(map[obs.Stage]bool)
	for _, e := range tl {
		seen[e.Stage] = true
	}
	for _, want := range []obs.Stage{obs.StageClassify, obs.StageEnqueue, obs.StageDispatch,
		obs.StageFetch, obs.StageStaged, obs.StageDeliver} {
		if !seen[want] {
			t.Errorf("stream %d timeline missing stage %v (stages: %v)", ids[0], want, tl)
		}
	}
	// The first event of a stream's life is its classification.
	if tl[0].Stage != obs.StageClassify {
		t.Errorf("first span = %v, want classify", tl[0].Stage)
	}
	// Timestamps are monotone in record order.
	for i := 1; i < len(tl); i++ {
		if tl[i].At < tl[i-1].At {
			t.Fatalf("span timestamps regress at %d: %v -> %v", i, tl[i-1].At, tl[i].At)
		}
	}
}

func TestObsTraceCarriesStreamIDsAndRotation(t *testing.T) {
	cfg := DefaultConfig(4<<20, 1<<20) // D=4: rotation under stream pressure
	n, _, _ := obsNode(t, cfg)
	n.runStreams(t, 8, 16)

	sum := n.server.cfg.Trace.Summarize()
	if sum.Rotates == 0 {
		t.Error("no rotate events traced under stream pressure")
	}
	if sum.Streams == 0 {
		t.Error("no stream ids on traced events")
	}
	var sawStreamFetch, sawNoStreamDirect bool
	for _, e := range n.server.cfg.Trace.Snapshot() {
		switch e.Kind {
		case trace.KindFetch:
			if e.Stream != trace.NoStream {
				sawStreamFetch = true
			}
		case trace.KindDirect:
			if e.Stream == trace.NoStream {
				sawNoStreamDirect = true
			}
		}
	}
	if !sawStreamFetch {
		t.Error("fetch events lack stream attribution")
	}
	if !sawNoStreamDirect {
		t.Error("direct events should carry NoStream")
	}
}

func TestObsGCEvents(t *testing.T) {
	cfg := DefaultConfig(8<<20, 1<<20)
	cfg.StreamTimeout = 10 * time.Millisecond
	cfg.BufferTimeout = 10 * time.Millisecond
	cfg.GCPeriod = 5 * time.Millisecond
	n, reg, spans := obsNode(t, cfg)
	n.runStreams(t, 2, 8)

	// Let the GC collect the now-idle streams.
	if err := n.eng.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	st := n.server.Stats()
	if st.StreamsGCed+st.StreamsRetired == 0 {
		t.Fatal("no streams collected or retired; GC path untested")
	}
	vars := reg.Vars()
	if got := vars["seqstream_core_gc_ticks_total"]; got == int64(0) {
		t.Error("gc ticks not counted")
	}
	if st.StreamsGCed > 0 {
		if got := vars["seqstream_core_streams_gced_total"]; got != st.StreamsGCed {
			t.Errorf("streams_gced = %v, want %d", got, st.StreamsGCed)
		}
		var sawGCSpan bool
		for _, e := range spans.Snapshot() {
			if e.Stage == obs.StageGC {
				sawGCSpan = true
			}
		}
		if !sawGCSpan {
			t.Error("no GC span recorded")
		}
		if n.server.cfg.Trace.Summarize().GCs == 0 {
			t.Error("no KindGC trace events")
		}
	}
}

func TestSnapshotConsistency(t *testing.T) {
	cfg := DefaultConfig(8<<20, 1<<20)
	n := baseNode(t, cfg)
	n.runStreams(t, 4, 16)
	snap := n.server.Snapshot()
	if snap.Stats.Requests != n.server.Stats().Requests {
		t.Error("snapshot counters disagree with Stats")
	}
	if snap.ActiveStreams != n.server.ActiveStreams() {
		t.Error("snapshot gauge disagrees with ActiveStreams")
	}
	if snap.DispatchedStreams < 0 || snap.DispatchedStreams > cfg.DispatchSize {
		t.Errorf("dispatched = %d outside [0, D]", snap.DispatchedStreams)
	}
}
