package core

import (
	"testing"
	"time"
)

// TestSpecLoserPayloadNoDoubleRelease is the payload-mode companion to
// TestSpeculationConcurrencyNoLeak: consumers detach the pooled buffer
// with TakeBuf — the hand-off the wire path performs when it parks a
// response on a v2 frame — and release it from a separate goroutine,
// the way a connection writer does after the vectored write drains.
// Speculative losers drain concurrently with those deferred releases,
// so a leg that released a drained buffer a second time would drive
// pool checkouts below the scheduler's staged-buffer count (or trip
// the pool's poisoning under the invariants tag). It runs under -race
// in CI.
//
// Unlike the steering test, the config here is tuned so losing legs
// arm densely rather than racing steering for a warm-up window:
// steering stays off (with SteerFactor set, fetches migrate away from
// the slow disk as soon as its EWMA is learned and speculation stops
// arming), pinning every post-warmup fetch to the slow disk; the 5th-
// percentile trigger keeps the arm delay at the fast warm-up bucket
// (floored to SpecMinDelay) for the whole run instead of climbing to
// the injected delay as losers accumulate in the window; and the
// 100ms injected delay dwarfs trigger jitter so armed duplicates win.
func TestSpecLoserPayloadNoDoubleRelease(t *testing.T) {
	for attempt := 1; ; attempt++ {
		st := runSpecWorkload(t, 100*time.Millisecond, func(cfg *Config) {
			cfg.SpecQuantile = 0.05
		}, true)
		if st.Speculations > 0 && st.SpecWins > 0 {
			break
		}
		if attempt == specAttempts {
			t.Fatalf("no speculative win in %d attempts (last: %d speculations, %d wins) — the loser-drain path was not exercised",
				specAttempts, st.Speculations, st.SpecWins)
		}
		t.Logf("attempt %d: %d speculations, %d wins — timing missed the race, retrying",
			attempt, st.Speculations, st.SpecWins)
	}
}
