package core

import (
	"testing"
	"time"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig(64<<20, 8<<20)
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if cfg.DispatchSize != 8 {
		t.Errorf("DispatchSize = %d, want 8 (64MB / 8MB / N=1)", cfg.DispatchSize)
	}
	if cfg.RequestsPerStream != 1 {
		t.Errorf("N = %d", cfg.RequestsPerStream)
	}
	if cfg.Policy == nil {
		t.Error("nil policy after defaults")
	}
	if cfg.MemoryFloor() != 64<<20 {
		t.Errorf("MemoryFloor = %d", cfg.MemoryFloor())
	}
}

func TestDeriveDispatch(t *testing.T) {
	tests := []struct {
		m, r int64
		n    int
		want int
	}{
		{800 << 20, 8 << 20, 1, 100},
		{16 << 20, 8 << 20, 1, 2},
		{8 << 20, 8 << 20, 1, 1},
		{1 << 20, 8 << 20, 1, 1}, // floor of 1
		{64 << 20, 512 << 10, 128, 1},
		{0, 0, 0, 1},
	}
	for _, tt := range tests {
		if got := DeriveDispatch(tt.m, tt.r, tt.n); got != tt.want {
			t.Errorf("DeriveDispatch(%d,%d,%d) = %d, want %d", tt.m, tt.r, tt.n, got, tt.want)
		}
	}
}

func TestConfigValidate(t *testing.T) {
	base := func() Config {
		c := DefaultConfig(64<<20, 1<<20)
		return c
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero D", func(c *Config) { c.DispatchSize = 0 }},
		{"zero R", func(c *Config) { c.ReadAhead = 0 }},
		{"zero N", func(c *Config) { c.RequestsPerStream = 0 }},
		{"memory below R", func(c *Config) { c.Memory = c.ReadAhead - 1 }},
		{"zero block", func(c *Config) { c.BlockSize = 0 }},
		{"single-block region", func(c *Config) { c.RegionBlocks = 1 }},
		{"threshold 1", func(c *Config) { c.DetectThreshold = 1 }},
		{"threshold over region", func(c *Config) { c.DetectThreshold = c.RegionBlocks + 1 }},
		{"zero gc period", func(c *Config) { c.GCPeriod = 0 }},
		{"zero buffer timeout", func(c *Config) { c.BufferTimeout = 0 }},
		{"zero stream timeout", func(c *Config) { c.StreamTimeout = 0 }},
		{"nil policy", func(c *Config) { c.Policy = nil }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := base()
			tt.mutate(&cfg)
			if err := cfg.Validate(); err == nil {
				t.Error("invalid config accepted")
			}
		})
	}
	if err := base().Validate(); err != nil {
		t.Errorf("base config rejected: %v", err)
	}
}

func TestApplyDefaultsIdempotent(t *testing.T) {
	cfg := Config{ReadAhead: 1 << 20, Memory: 16 << 20}
	cfg.ApplyDefaults()
	want := cfg
	cfg.ApplyDefaults()
	if cfg.DispatchSize != want.DispatchSize || cfg.BlockSize != want.BlockSize ||
		cfg.GCPeriod != want.GCPeriod {
		t.Error("ApplyDefaults not idempotent")
	}
	if cfg.DispatchSize != 16 {
		t.Errorf("derived D = %d, want 16", cfg.DispatchSize)
	}
	if cfg.BufferTimeout != 30*time.Second || cfg.StreamTimeout != 60*time.Second {
		t.Error("timeout defaults wrong")
	}
}

func TestExplicitDispatchPreserved(t *testing.T) {
	cfg := Config{DispatchSize: 3, ReadAhead: 1 << 20, Memory: 100 << 20}
	cfg.ApplyDefaults()
	if cfg.DispatchSize != 3 {
		t.Errorf("explicit D overwritten: %d", cfg.DispatchSize)
	}
}
