package core

import (
	"time"

	"seqstream/internal/bufpool"
	"seqstream/internal/flight"
)

// Batched device-completion reaping.
//
// Device completions (fetches and direct reads) used to take the
// shard lock one at a time, straight from whatever goroutine the
// device invoked the callback on. With many disks completing
// concurrently that is one lock handoff — and one wakeup of a parked
// waiter — per completion. The reaper amortizes both the same way
// the completion flush batches delivery: callbacks enqueue their
// completion on a small leaf-locked queue, and the first caller to
// arrive drains the queue in bounded batches (Config.CompletionBatch
// per shard-lock hold) while later callers enqueue and return
// immediately.
//
// Ordering stays deterministic under the simulator: its single
// engine thread enqueues and immediately reaps, so completions are
// processed inline in FIFO arrival order, exactly as before. Under
// real concurrency the queue is FIFO per shard and the batch
// boundary only changes when the lock is released, not the order
// completions are observed in.

// completion is one queued device completion awaiting the reaper.
type completion struct {
	kind uint8 // compFetch or compDirect

	// Fetch completions.
	st *stream
	b  *buffer

	// Direct-read completions.
	req   Request
	start time.Duration
	pb    *bufpool.Buf

	// Shared result.
	data []byte
	err  error
}

const (
	compFetch = uint8(iota)
	compDirect
)

// enqueueCompletion queues one device completion and reaps the queue
// unless another goroutine already is. Callable from any goroutine;
// no locks held.
func (sh *shard) enqueueCompletion(c completion) {
	sh.compMu.Lock()
	sh.compQ = append(sh.compQ, c)
	sh.compMu.Unlock()
	sh.reapCompletions()
}

// takeCompletionBatch moves up to CompletionBatch queued completions
// into the recycled batch slice, returning nil when the queue is
// empty.
func (sh *shard) takeCompletionBatch() []completion {
	limit := sh.srv.cfg.CompletionBatch
	sh.compMu.Lock()
	n := len(sh.compQ)
	if n == 0 {
		sh.compMu.Unlock()
		return nil
	}
	if n > limit {
		n = limit
	}
	batch := append(sh.compSpare[:0], sh.compQ[:n]...)
	sh.compSpare = nil
	rest := copy(sh.compQ, sh.compQ[n:])
	clear(sh.compQ[rest:])
	sh.compQ = sh.compQ[:rest]
	sh.compMu.Unlock()
	return batch
}

// recycleCompletionBatch returns a drained batch slice for reuse.
// Under concurrent reaps a slice may be dropped to the garbage
// collector instead, which is only a missed reuse.
func (sh *shard) recycleCompletionBatch(batch []completion) {
	clear(batch)
	sh.compMu.Lock()
	if sh.compSpare == nil {
		sh.compSpare = batch[:0]
	}
	sh.compMu.Unlock()
}

// reapCompletions drains the completion queue: each batch is
// processed under one shard-lock hold, then flushed (device calls
// and batched deliveries the handlers queued), then the next batch
// is taken, until the queue is empty. Exactly one goroutine reaps at
// a time; the CAS handoff below closes the race where an enqueuer
// saw the flag still set just as the reaper observed an empty queue.
func (sh *shard) reapCompletions() {
	if !sh.reaping.CompareAndSwap(false, true) {
		return // the running reaper picks the entry up
	}
	for {
		batch := sh.takeCompletionBatch()
		if batch == nil {
			sh.reaping.Store(false)
			// An enqueue between the empty check and the flag store
			// would otherwise strand its completion: re-check, and
			// resume only if we win the flag back.
			sh.compMu.Lock()
			again := len(sh.compQ) > 0
			sh.compMu.Unlock()
			if again && sh.reaping.CompareAndSwap(false, true) {
				continue
			}
			return
		}
		sh.mu.Lock()
		if sh.fr != nil && len(batch) > 1 {
			sh.fr.Record(flight.Event{Op: flight.OpReap, Stream: flight.NoStream,
				Length: int64(len(batch)), T: sh.srv.clock.Now()})
		}
		for i := range batch {
			c := &batch[i]
			switch c.kind {
			case compFetch:
				sh.onFetchDoneLocked(c.st, c.b, c.data, c.err)
			case compDirect:
				sh.onDirectDoneLocked(c.req, c.start, c.pb, c.data, c.err)
			}
		}
		sh.mu.Unlock()
		sh.recycleCompletionBatch(batch)
		sh.flush()
	}
}
