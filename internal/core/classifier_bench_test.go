package core

import (
	"testing"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// small indirections keep the benchmark body readable.
func iostackNew(eng *sim.Engine) (*iostack.Host, error) {
	return iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
}

func blockdevNew(h *iostack.Host) (*blockdev.SimDevice, error) {
	return blockdev.NewSimDevice(h)
}

func blockdevClock(eng *sim.Engine) blockdev.Clock {
	return blockdev.NewSimClock(eng)
}

func BenchmarkClassifierSequential(b *testing.B) {
	cfg := DefaultConfig(64<<20, 1<<20)
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.observe(0, int64(i)*bs, bs, 0)
	}
}

func BenchmarkClassifierScattered(b *testing.B) {
	cfg := DefaultConfig(64<<20, 1<<20)
	c := newClassifier(cfg)
	rng := sim.NewRand(1)
	span := bsSpan(cfg)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.observe(0, rng.Int63n(span), cfg.BlockSize, 0)
		if c.regionCount() > 1<<16 {
			c.gc(1) // bound memory during long bench runs
		}
	}
}

func bsSpan(cfg Config) int64 {
	return cfg.BlockSize * int64(cfg.RegionBlocks) * 1024
}

func BenchmarkServerStagedHitPath(b *testing.B) {
	// Measures the host-side cost of staged 64K deliveries through the
	// full Submit path (sim engine included).
	eng := sim.NewEngine()
	host, err := iostackNew(eng)
	if err != nil {
		b.Fatal(err)
	}
	dev, err := blockdevNew(host)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := NewServer(dev, blockdevClock(eng), DefaultConfig(900<<20, 8<<20))
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	const req = 64 << 10
	completed := 0
	i := 0
	var issue func()
	issue = func() {
		off := int64(i) * req
		i++
		if off+req > dev.Capacity(0) {
			return
		}
		srv.Submit(Request{Disk: 0, Offset: off, Length: req,
			Done: func(Response) { completed++; issue() }})
	}
	issue()
	b.ResetTimer()
	target := b.N
	if err := eng.RunWhile(func() bool { return completed < target }); err != nil {
		b.Fatal(err)
	}
}
