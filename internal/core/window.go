package core

import (
	"time"

	"seqstream/internal/obs"
)

// LatencyWindows is the scheduler's sliding-window latency telemetry,
// built when Config.WindowSpan is positive: a node-wide request
// window, a node-wide fetch window, and a per-disk fetch window plus
// EWMA. Unlike the cumulative Obs histograms these cover only the last
// span of traffic, which is what the health rollup (and the
// straggler-aware dispatch work it feeds) actually needs — a disk that
// was slow an hour ago is not slow now.
//
// All observation paths are lock-free and allocation-free; the
// observe hooks sit beside the cumulative histogram calls on the
// shard hot paths and are nil-guarded the same way.
type LatencyWindows struct {
	span    time.Duration
	request *obs.WindowedHistogram
	fetch   *obs.WindowedHistogram
	disks   []diskWindow
}

// diskWindow is one disk's windowed fetch telemetry.
type diskWindow struct {
	fetch *obs.WindowedHistogram
	ewma  *obs.EWMA
}

// newLatencyWindows sizes the per-disk slice for disks and builds
// every window over the injected clock.
func newLatencyWindows(now func() time.Duration, span time.Duration, buckets, disks int) (*LatencyWindows, error) {
	w := &LatencyWindows{span: span, disks: make([]diskWindow, disks)}
	var err error
	if w.request, err = obs.NewWindowedHistogram(now, span, buckets); err != nil {
		return nil, err
	}
	if w.fetch, err = obs.NewWindowedHistogram(now, span, buckets); err != nil {
		return nil, err
	}
	for i := range w.disks {
		if w.disks[i].fetch, err = obs.NewWindowedHistogram(now, span, buckets); err != nil {
			return nil, err
		}
		w.disks[i].ewma = obs.NewEWMA(0)
	}
	return w, nil
}

// Span returns the window length.
func (w *LatencyWindows) Span() time.Duration {
	if w == nil {
		return 0
	}
	return w.span
}

// Disks returns how many per-disk windows exist.
func (w *LatencyWindows) Disks() int {
	if w == nil {
		return 0
	}
	return len(w.disks)
}

// Request returns the node-wide windowed request-latency snapshot.
func (w *LatencyWindows) Request() obs.HistogramSnapshot {
	if w == nil {
		return obs.HistogramSnapshot{}
	}
	return w.request.Snapshot()
}

// Fetch returns the node-wide windowed fetch-latency snapshot.
func (w *LatencyWindows) Fetch() obs.HistogramSnapshot {
	if w == nil {
		return obs.HistogramSnapshot{}
	}
	return w.fetch.Snapshot()
}

// DiskFetch returns disk's windowed fetch-latency snapshot (zero for
// out-of-range disks).
func (w *LatencyWindows) DiskFetch(disk int) obs.HistogramSnapshot {
	if w == nil || disk < 0 || disk >= len(w.disks) {
		return obs.HistogramSnapshot{}
	}
	return w.disks[disk].fetch.Snapshot()
}

// DiskEWMA returns disk's fetch-latency EWMA (zero for out-of-range
// disks or before any fetch).
func (w *LatencyWindows) DiskEWMA(disk int) time.Duration {
	if w == nil || disk < 0 || disk >= len(w.disks) {
		return 0
	}
	return w.disks[disk].ewma.Value()
}

// DiskEWMASeeded reports whether disk's EWMA has absorbed at least one
// fetch sample. Steering and speculation consult it before ranking:
// an unseeded EWMA reads zero, which would make an idle (never
// measured) disk look like the fastest replica.
func (w *LatencyWindows) DiskEWMASeeded(disk int) bool {
	if w == nil || disk < 0 || disk >= len(w.disks) {
		return false
	}
	return w.disks[disk].ewma.Seeded()
}

// observeRequest records one served client request (buffer hit or
// direct read) into the request window.
func (w *LatencyWindows) observeRequest(d time.Duration) {
	w.request.Observe(d)
}

// observeFetch records one completed read-ahead fetch into the
// node-wide and per-disk fetch windows and the disk's EWMA.
func (w *LatencyWindows) observeFetch(disk int, d time.Duration) {
	w.fetch.Observe(d)
	if disk >= 0 && disk < len(w.disks) {
		w.disks[disk].fetch.Observe(d)
		w.disks[disk].ewma.Observe(d)
	}
}
