package core

import (
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/bufpool"
)

// specAttempts bounds the workload retries in the speculation race
// tests. Their exercise guard — "at least one speculative leg armed
// and won" — rides a real-clock race between an injected device delay
// and the speculation trigger timer, and on a loaded single-CPU host
// (doubly so under the invariants tag's assertion overhead) one pass
// can demonstrably miss the window: every timer fires after its fetch
// completed, or every duplicate loses. The safety assertions the
// tests exist for — no leak, no double release, race-detector
// cleanliness — run on every attempt regardless; only the exercise
// guard retries.
const specAttempts = 4

// runSpecWorkload builds a two-disk replicated server whose disk 0
// delays every large fetch from the 4th onward, drives 8 concurrent
// streams × 120 sequential reads across both disks, and returns the
// run's stats. When takeBufs is set, consumers detach each response's
// pooled buffer with TakeBuf and hand it to a separate goroutine that
// releases it later — the hand-off shape the wire path performs when
// it parks a response on a v2 frame and releases after writev drains.
// Before returning, the pool-accounting safety check runs: once the
// losing legs' injected delays elapse, outstanding pool checkouts
// must equal the buffers still staged. A leg that double-released a
// drained buffer drives checkouts below that; one that skipped its
// release holds them above.
func runSpecWorkload(t *testing.T, delay time.Duration, tune func(*Config), takeBufs bool) Stats {
	t.Helper()
	mem, err := blockdev.NewMemDevice(2, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewRealClock()
	dev, err := blockdev.NewScriptDevice(mem, clock, []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: delay, From: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(256<<20, 1<<20)
	cfg.Replicas = 2
	cfg.WindowSpan = time.Minute
	cfg.SpecMinSamples = 2
	tune(&cfg)
	srv, err := NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The "writer": buffers detached from responses are released here,
	// off the completion path, after a scheduling delay — mirroring a
	// connection writer releasing frames once writev drains them.
	var bufCh chan *bufpool.Buf
	var writerWG sync.WaitGroup
	if takeBufs {
		bufCh = make(chan *bufpool.Buf, 512)
		writerWG.Add(1)
		go func() {
			defer writerWG.Done()
			for b := range bufCh {
				b.Release()
			}
		}()
	}

	const (
		streams  = 8
		requests = 120
		req      = 64 << 10
	)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := int64(s/2) * (64 << 20)
			ch := make(chan error, 1)
			for i := 0; i < requests; i++ {
				err := srv.Submit(Request{
					Disk: s % 2, Offset: base + int64(i)*req, Length: req,
					Done: func(r Response) {
						if takeBufs {
							if pb := r.TakeBuf(); pb != nil {
								bufCh <- pb
							}
						}
						r.Release() // with takeBufs: no-op for the buffer, ownership moved
						ch <- r.Err
					},
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if err := <-ch; err != nil {
					t.Errorf("stream %d read %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if takeBufs {
		close(bufCh)
		writerWG.Wait()
	}

	st := srv.Stats()
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := srv.Pool().Stats().CheckedOut
		live := srv.Stats().LiveBuffers
		if out == live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool CheckedOut = %d but LiveBuffers = %d: speculative legs leaked or double-released buffers", out, live)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return st
}

// TestSpeculationConcurrencyNoLeak drives speculative re-issue on a
// real clock with a materializing device, so winning legs swap pooled
// buffers while the losing leg's read is still writing into its own.
// It exists to run under -race: the win/lose protocol must neither
// race the in-flight device write, double-release a buffer, nor leak
// one. From read 4 onward disk 0 delays every fetch 10ms, far past the
// speculation trigger, so replica legs win constantly while concurrent
// streams on both disks keep the shards, the breaker notes, and the
// buffer pool hot.
func TestSpeculationConcurrencyNoLeak(t *testing.T) {
	for attempt := 1; ; attempt++ {
		st := runSpecWorkload(t, 10*time.Millisecond, func(cfg *Config) {
			cfg.SteerFactor = 4
			cfg.SpecQuantile = 0.5
		}, false)
		if st.Speculations > 0 && st.SpecWins > 0 {
			break
		}
		if attempt == specAttempts {
			t.Fatalf("no speculative win in %d attempts (last: %d speculations, %d wins) — the buffer-swap path was not exercised",
				specAttempts, st.Speculations, st.SpecWins)
		}
		t.Logf("attempt %d: %d speculations, %d wins — timing missed the race, retrying",
			attempt, st.Speculations, st.SpecWins)
	}
}
