package core

import (
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
)

// TestSpeculationConcurrencyNoLeak drives speculative re-issue on a
// real clock with a materializing device, so winning legs swap pooled
// buffers while the losing leg's read is still writing into its own.
// It exists to run under -race: the win/lose protocol must neither
// race the in-flight device write, double-release a buffer, nor leak
// one. From read 4 onward disk 0 delays every fetch 10ms, far past the
// speculation trigger, so replica legs win constantly while concurrent
// streams on both disks keep the shards, the breaker notes, and the
// buffer pool hot.
func TestSpeculationConcurrencyNoLeak(t *testing.T) {
	mem, err := blockdev.NewMemDevice(2, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewRealClock()
	dev, err := blockdev.NewScriptDevice(mem, clock, []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 10 * time.Millisecond, From: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(256<<20, 1<<20)
	cfg.Replicas = 2
	cfg.WindowSpan = time.Minute
	cfg.SteerFactor = 4
	cfg.SpecQuantile = 0.5
	cfg.SpecMinSamples = 2
	srv, err := NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		streams  = 8
		requests = 120
		req      = 64 << 10
	)
	var wg sync.WaitGroup
	for s := 0; s < streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			base := int64(s/2) * (64 << 20)
			ch := make(chan error, 1)
			for i := 0; i < requests; i++ {
				err := srv.Submit(Request{
					Disk: s % 2, Offset: base + int64(i)*req, Length: req,
					Done: func(r Response) {
						r.Release()
						ch <- r.Err
					},
				})
				if err != nil {
					t.Errorf("Submit: %v", err)
					return
				}
				if err := <-ch; err != nil {
					t.Errorf("stream %d read %d: %v", s, i, err)
					return
				}
			}
		}(s)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Speculations == 0 {
		t.Error("no speculative legs armed — the race path was not exercised")
	}
	if st.SpecWins == 0 {
		t.Error("no speculative wins — the buffer-swap path was not exercised")
	}

	// Every losing primary leg completes within its injected 10ms
	// delay; after that, outstanding pool checkouts must equal the
	// buffers still staged (no stashed loser may linger unreleased).
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := srv.Pool().Stats().CheckedOut
		live := srv.Stats().LiveBuffers
		if out == live {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool CheckedOut = %d but LiveBuffers = %d: speculative legs leaked buffers", out, live)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
