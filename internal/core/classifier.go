package core

import (
	"math/bits"
	"time"
)

// regionKey identifies a dynamically-allocated bitmap region: a disk
// and an aligned window of RegionBlocks blocks.
type regionKey struct {
	disk   int
	region int64 // block number / RegionBlocks
}

// region is a small bitmap over consecutive blocks (§4.1). Regions are
// allocated on demand as requests arrive, so the memory cost scales
// with the active footprint rather than the disk capacity.
type region struct {
	bits      []uint64
	set       int // distinct set bits
	lastTouch time.Duration
	promoted  bool // a stream has already been created from this region
}

// classifier detects sequential streams from the raw request arrivals.
// The mechanism follows §4.1: set one bit per accessed block in the
// request's region; when the number of distinct set bits crosses the
// threshold, declare a sequential stream. Out-of-order requests,
// duplicates, and gaps merely set bits — only proximity in (time,
// space) matters.
type classifier struct {
	cfg     Config
	regions map[regionKey]*region
}

func newClassifier(cfg Config) *classifier {
	return &classifier{cfg: cfg, regions: make(map[regionKey]*region)}
}

// observe records a request and reports whether it completes a
// sequential pattern (threshold reached for the first time in its
// region). The caller creates the stream.
func (c *classifier) observe(disk int, off, length int64, now time.Duration) bool {
	firstBlock := off / c.cfg.BlockSize
	lastBlock := (off + length - 1) / c.cfg.BlockSize
	rb := int64(c.cfg.RegionBlocks)
	detected := false
	for b := firstBlock; b <= lastBlock; b++ {
		key := regionKey{disk: disk, region: b / rb}
		r := c.regions[key]
		if r == nil {
			r = &region{bits: make([]uint64, (c.cfg.RegionBlocks+63)/64)}
			c.regions[key] = r
		}
		r.lastTouch = now
		idx := int(b % rb)
		word, mask := idx/64, uint64(1)<<uint(idx%64)
		if r.bits[word]&mask == 0 {
			r.bits[word] |= mask
			r.set++
		}
		if !r.promoted && r.set >= c.cfg.DetectThreshold {
			r.promoted = true
			detected = true
		}
	}
	return detected
}

// gc drops regions untouched since cutoff and returns how many were
// freed.
func (c *classifier) gc(cutoff time.Duration) int {
	freed := 0
	for key, r := range c.regions {
		if r.lastTouch < cutoff {
			delete(c.regions, key)
			freed++
		}
	}
	return freed
}

// regionCount returns the number of live regions.
func (c *classifier) regionCount() int { return len(c.regions) }

// memoryBytes estimates the classifier's bitmap memory.
func (c *classifier) memoryBytes() int64 {
	perRegion := int64((c.cfg.RegionBlocks+63)/64) * 8
	return int64(len(c.regions)) * perRegion
}

// popcount is exposed for tests.
func popcount(words []uint64) int {
	total := 0
	for _, w := range words {
		total += bits.OnesCount64(w)
	}
	return total
}
