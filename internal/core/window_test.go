package core

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/obs"
)

// TestLatencyWindowsWiring runs real traffic through a server with
// WindowSpan set and checks the request and fetch paths both land in
// the windows, per-disk telemetry included, and that the node-wide
// families reach an attached registry.
func TestLatencyWindowsWiring(t *testing.T) {
	dev, err := blockdev.NewMemDevice(2, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.GCPeriod = time.Hour
	cfg.EvictIdle = time.Hour
	cfg.WindowSpan = time.Minute
	cfg.Obs = NewObs(reg, nil)
	srv, err := NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const req = 64 << 10
	ch := make(chan struct{}, 1)
	done := func(r Response) {
		if r.Err != nil {
			t.Errorf("read failed: %v", r.Err)
		}
		r.Release()
		ch <- struct{}{}
	}
	// Sequential reads on disk 0 to trigger classification + fetches;
	// disk 1 stays idle.
	for i := 0; i < 16; i++ {
		if err := srv.Submit(Request{Disk: 0, Offset: int64(i) * req, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	}

	w := srv.Windows()
	if w == nil {
		t.Fatal("Windows() is nil with WindowSpan set")
	}
	if w.Span() != time.Minute {
		t.Fatalf("Span = %v", w.Span())
	}
	if w.Disks() != 2 {
		t.Fatalf("Disks = %d, want 2", w.Disks())
	}
	if s := w.Request(); s.Count == 0 {
		t.Fatal("request window saw no samples")
	}
	if s := w.Fetch(); s.Count == 0 {
		t.Fatal("fetch window saw no samples")
	}
	if s := w.DiskFetch(0); s.Count == 0 {
		t.Fatal("disk 0 fetch window saw no samples")
	}
	if w.DiskEWMA(0) <= 0 {
		t.Fatal("disk 0 EWMA unseeded after fetches")
	}
	if s := w.DiskFetch(1); s.Count != 0 {
		t.Fatalf("idle disk 1 window has %d samples", s.Count)
	}
	// Out-of-range accessors are safe.
	if s := w.DiskFetch(99); s.Count != 0 {
		t.Fatal("out-of-range disk window not empty")
	}
	if w.DiskEWMA(-1) != 0 {
		t.Fatal("out-of-range EWMA not zero")
	}

	// The node-wide windowed families landed on the registry.
	vars := reg.Vars()
	for _, name := range []string{
		"seqstream_core_request_latency_window_seconds",
		"seqstream_core_fetch_latency_window_seconds",
	} {
		m, ok := vars[name].(map[string]any)
		if !ok {
			t.Fatalf("registry missing window family %s", name)
		}
		if m["count"].(int64) == 0 {
			t.Fatalf("window family %s empty", name)
		}
	}

	// Nil-receiver accessors keep disabled-window call sites simple.
	var nilW *LatencyWindows
	if nilW.Span() != 0 || nilW.Disks() != 0 || nilW.DiskEWMA(0) != 0 {
		t.Fatal("nil LatencyWindows accessors not zero")
	}
	if s := nilW.Request(); s.Count != 0 {
		t.Fatal("nil LatencyWindows snapshot not empty")
	}
}

// TestWindowConfigValidation covers the new Config fields.
func TestWindowConfigValidation(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.WindowSpan = -time.Second
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative WindowSpan accepted")
	}
	cfg = DefaultConfig(64<<20, 1<<20)
	cfg.WindowBuckets = -1
	if err := cfg.Validate(); err == nil {
		t.Fatal("negative WindowBuckets accepted")
	}
	// WindowSpan too short for the bucket count fails server build.
	dev, err := blockdev.NewMemDevice(1, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg = DefaultConfig(64<<20, 1<<20)
	cfg.WindowSpan = 5 * time.Nanosecond
	if _, err := NewServer(dev, blockdev.NewRealClock(), cfg); err == nil {
		t.Fatal("unusable window span accepted")
	}
}
