package core

import (
	"sort"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
)

// specConfig is the common replica-enabled scheduler config for the
// speculation tests: two-way mirroring with sliding windows attached.
// Steering and speculation are toggled per test.
func specConfig() Config {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.Replicas = 2
	cfg.WindowSpan = time.Minute
	return cfg
}

func TestSpecWinDeliversFromReplica(t *testing.T) {
	// Disk 0's fetch window is seeded by four fast fetches; from the
	// fifth fetch on, disk 0 delays every read-ahead by five seconds.
	// Speculation must re-issue the slow leg on the mirror (disk 1) and
	// deliver from it long before the primary completes.
	cfg := specConfig()
	cfg.SpecQuantile = 0.5
	cfg.SpecMinSamples = 4
	rules := []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 5 * time.Second, From: 5},
	}
	n, _ := scriptNode(t, twoDiskConfig(), rules, cfg)

	// 96 sequential 64K reads cover six 1M fetches: four seed the
	// window, the remaining two hit the delay.
	last := driveStream(t, n, 0, 96)

	st := n.server.Stats()
	if st.Speculations == 0 {
		t.Fatal("no speculative re-issues armed against the slow disk")
	}
	if st.SpecWins == 0 {
		t.Fatal("no speculative leg won against the 5s primary")
	}
	// The client never waited out a 5s primary leg: the whole stream
	// finishes well inside one injected delay.
	if last >= 5*time.Second {
		t.Errorf("stream finished at %v, want < 5s (speculation did not rescue the waiters)", last)
	}

	// Drain the late primary completions (and the GC ticks between
	// them): the won-spec path must recycle the stashed buffers and
	// release all staged memory.
	if err := n.eng.RunFor(6 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if st := n.server.Stats(); st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after drain, want 0", st.MemoryInUse)
	}
}

func TestSteeringRoutesAroundSlowPrimary(t *testing.T) {
	// Every disk-0 fetch takes two seconds. Once disk 0's EWMA is
	// seeded by the first slow fetch, dispatch must steer the stream's
	// remaining fetches to the fast mirror (disk 1).
	cfg := specConfig()
	cfg.SteerFactor = 2
	rules := []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 2 * time.Second},
	}
	n, _ := scriptNode(t, twoDiskConfig(), rules, cfg)

	// Seed disk 1's EWMA with its own healthy stream first: unseeded
	// replicas are never steering targets.
	seeded := driveStream(t, n, 1, 48)

	// 80 reads cover five fetches. Only the first (the EWMA-seeding
	// one) should pay the 2s delay; the rest steer to disk 1.
	last := driveStream(t, n, 0, 80)

	st := n.server.Stats()
	if st.SteeredFetches < 3 {
		t.Errorf("SteeredFetches = %d, want >= 3", st.SteeredFetches)
	}
	if elapsed := last - seeded; elapsed >= 4*time.Second {
		t.Errorf("slow-primary stream took %v, want < 4s (one 2s seeding fetch plus steered remainder)", elapsed)
	}
}

func TestUnseededReplicaNotSteeredTo(t *testing.T) {
	// Satellite (d): an unseeded EWMA reads zero, which would make an
	// untouched replica look infinitely fast. Steering must skip
	// unseeded disks entirely, even when the primary is much slower.
	cfg := specConfig()
	cfg.SteerFactor = 2
	rules := []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 2 * time.Second},
	}
	n, _ := scriptNode(t, twoDiskConfig(), rules, cfg)

	// Disk 1 is never touched, so its EWMA stays unseeded.
	driveStream(t, n, 0, 48)

	st := n.server.Stats()
	if st.Fetches < 2 {
		t.Fatalf("Fetches = %d, want >= 2 (stream never formed)", st.Fetches)
	}
	if st.SteeredFetches != 0 {
		t.Errorf("SteeredFetches = %d onto an unseeded replica, want 0", st.SteeredFetches)
	}
}

func TestLosingSpeculationHarmless(t *testing.T) {
	// Satellite (e), fairness half: disk 1's fetches turn mildly slow
	// (200ms) after seeding, so speculation re-issues them on the
	// mirror — but the mirror (disk 0) is far slower (2s), so every
	// speculative leg loses. The client must ride the primary
	// untouched: losing legs cost nothing and leak nothing.
	cfg := specConfig()
	cfg.SpecQuantile = 0.5
	cfg.SpecMinSamples = 2
	rules := []blockdev.FaultRule{
		{Disk: 1, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 200 * time.Millisecond, From: 4},
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 1 << 20, Delay: 2 * time.Second},
	}
	n, _ := scriptNode(t, twoDiskConfig(), rules, cfg)

	last := driveStream(t, n, 1, 96)

	st := n.server.Stats()
	if st.Speculations == 0 {
		t.Fatal("no speculative legs armed against the 200ms fetches")
	}
	if st.SpecWins != 0 {
		t.Errorf("SpecWins = %d via the 2s mirror, want 0", st.SpecWins)
	}
	// Six fetches, three of them delayed 200ms: nowhere near the 2s a
	// client would see if it ever waited on a losing leg.
	if last >= 2*time.Second {
		t.Errorf("stream finished at %v, want < 2s (client waited on a losing speculative leg)", last)
	}

	// Drain the losing legs and the GC: no staged memory, no pool
	// checkout, and no breaker confusion may remain.
	if err := n.eng.RunFor(3 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	st = n.server.Stats()
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after drain, want 0", st.MemoryInUse)
	}
	if st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after successful (if slow) legs, want 0", st.DisksDegraded)
	}
}

// driveConcurrentStreams runs one chained sequential stream per spec
// concurrently and returns every request's service latency.
func driveConcurrentStreams(t *testing.T, n *testNode, specs []struct {
	disk  int
	base  int64
	count int
}) []time.Duration {
	t.Helper()
	var latencies []time.Duration
	completed, total := 0, 0
	for _, sp := range specs {
		total += sp.count
	}
	for _, sp := range specs {
		sp := sp
		var issue func(i int)
		issue = func(i int) {
			if i >= sp.count {
				return
			}
			err := n.server.Submit(Request{
				Disk: sp.disk, Offset: sp.base + int64(i)*failReq, Length: failReq,
				Done: func(r Response) {
					if r.Err != nil {
						t.Errorf("disk %d read %d: %v", sp.disk, i, r.Err)
					}
					latencies = append(latencies, r.End-r.Start)
					completed++
					issue(i + 1)
				},
			})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		issue(0)
	}
	n.await(t, func() bool { return completed >= total })
	return latencies
}

func durQuantile(lat []time.Duration, q float64) time.Duration {
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)))
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func TestSpeculationTailLatency64Disks(t *testing.T) {
	// The ISSUE acceptance scenario: a 64-disk sim with one disk at
	// ~10x fetch latency. With straggler-aware dispatch and
	// speculation on, p99 over all request latencies must improve at
	// least 2x versus the same workload with them off.
	rules := []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultDelay, MinLen: 256 << 10, Delay: 250 * time.Millisecond},
	}

	run := func(on bool) []time.Duration {
		cfg := DefaultConfig(256<<20, 256<<10)
		cfg.WindowSpan = time.Minute
		if on {
			cfg.Replicas = 2
			cfg.SteerFactor = 2
			cfg.SpecQuantile = 0.9
			cfg.SpecMinSamples = 4
		}
		n, _ := scriptNode(t, iostack.LargeConfig(iostack.Options{}), rules, cfg)

		// Four streams share the straggling disk 0 (widely spaced so
		// they stay distinct streams); every other disk carries one.
		var specs []struct {
			disk  int
			base  int64
			count int
		}
		for s := 0; s < 4; s++ {
			specs = append(specs, struct {
				disk  int
				base  int64
				count int
			}{disk: 0, base: int64(s) * (64 << 20), count: 64})
		}
		for d := 1; d < 64; d++ {
			specs = append(specs, struct {
				disk  int
				base  int64
				count int
			}{disk: d, base: 0, count: 64})
		}
		return driveConcurrentStreams(t, n, specs)
	}

	p99Off := durQuantile(run(false), 0.99)
	p99On := durQuantile(run(true), 0.99)
	if p99On <= 0 {
		t.Fatalf("p99 with speculation = %v, want > 0", p99On)
	}
	if p99Off < 2*p99On {
		t.Errorf("p99 off = %v, on = %v: improvement %.2fx, want >= 2x",
			p99Off, p99On, float64(p99Off)/float64(p99On))
	}
}
