package core

import (
	"testing"
	"time"
)

func TestTuneDefaults(t *testing.T) {
	cfg, err := Tune(NodeSpec{Disks: 1, Memory: 64 << 20, MediaRate: 60e6})
	if err != nil {
		t.Fatal(err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("tuned config invalid: %v", err)
	}
	// 60MB/s * 13ms * 9 = ~7MB -> rounds to 8MB.
	if cfg.ReadAhead != 8<<20 {
		t.Errorf("R = %d, want 8MB", cfg.ReadAhead)
	}
	if cfg.DispatchSize != 8 {
		t.Errorf("D = %d, want 8 (64MB/8MB)", cfg.DispatchSize)
	}
	if cfg.RequestsPerStream != 1 {
		t.Errorf("N = %d", cfg.RequestsPerStream)
	}
}

func TestTuneCapsRToMemoryPerDisk(t *testing.T) {
	cfg, err := Tune(NodeSpec{Disks: 8, Memory: 16 << 20, MediaRate: 60e6})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReadAhead > 2<<20 {
		t.Errorf("R = %d, must fit one buffer per disk in 16MB", cfg.ReadAhead)
	}
	if cfg.DispatchSize < 8 {
		t.Errorf("D = %d, want at least one per disk", cfg.DispatchSize)
	}
	if cfg.MemoryFloor() > cfg.Memory*2 {
		t.Errorf("floor %d far exceeds memory %d", cfg.MemoryFloor(), cfg.Memory)
	}
}

func TestTuneEfficiencyScalesR(t *testing.T) {
	low, err := Tune(NodeSpec{Disks: 1, Memory: 1 << 30, MediaRate: 60e6, Efficiency: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	high, err := Tune(NodeSpec{Disks: 1, Memory: 1 << 30, MediaRate: 60e6, Efficiency: 0.95})
	if err != nil {
		t.Fatal(err)
	}
	if high.ReadAhead <= low.ReadAhead {
		t.Errorf("R at 95%% eff (%d) should exceed R at 50%% (%d)", high.ReadAhead, low.ReadAhead)
	}
}

func TestTuneValidation(t *testing.T) {
	bad := []NodeSpec{
		{Disks: 0, Memory: 1 << 20, MediaRate: 1e6},
		{Disks: 1, Memory: 0, MediaRate: 1e6},
		{Disks: 1, Memory: 1 << 20, MediaRate: 0},
		{Disks: 1, Memory: 1 << 20, MediaRate: 1e6, Efficiency: 1.5},
		{Disks: 4, Memory: 1024, MediaRate: 1e6}, // too little memory
	}
	for i, spec := range bad {
		if _, err := Tune(spec); err == nil {
			t.Errorf("spec %d accepted: %+v", i, spec)
		}
	}
}

func TestTunePositionBudget(t *testing.T) {
	slow, err := Tune(NodeSpec{Disks: 1, Memory: 1 << 30, MediaRate: 60e6,
		PositionBudget: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Tune(NodeSpec{Disks: 1, Memory: 1 << 30, MediaRate: 60e6,
		PositionBudget: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if slow.ReadAhead <= fast.ReadAhead {
		t.Errorf("slower positioning should demand larger R: %d vs %d", slow.ReadAhead, fast.ReadAhead)
	}
}

func TestTunedConfigDrivesANode(t *testing.T) {
	cfg, err := Tune(NodeSpec{Disks: 1, Memory: 128 << 20, MediaRate: 60e6})
	if err != nil {
		t.Fatal(err)
	}
	n := baseNode(t, cfg)
	mbps := n.runStreams(t, 20, 256)
	if mbps < 25 {
		t.Errorf("tuned node delivered %.1f MB/s with 20 streams, want near max", mbps)
	}
}
