package core

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

type testNode struct {
	eng    *sim.Engine
	host   *iostack.Host
	dev    *blockdev.SimDevice
	clock  blockdev.Clock
	server *Server
}

func newNode(t *testing.T, stackCfg iostack.Config, cfg Config) *testNode {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, stackCfg)
	if err != nil {
		t.Fatalf("iostack.New: %v", err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatalf("NewSimDevice: %v", err)
	}
	clock := blockdev.NewSimClock(eng)
	srv, err := NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatalf("NewServer: %v", err)
	}
	t.Cleanup(srv.Close)
	return &testNode{eng: eng, host: host, dev: dev, clock: clock, server: srv}
}

func baseNode(t *testing.T, cfg Config) *testNode {
	return newNode(t, iostack.BaseConfig(iostack.Options{}), cfg)
}

// await runs the engine until cond holds (or the event queue drains).
func (n *testNode) await(t *testing.T, cond func() bool) {
	t.Helper()
	if err := n.eng.RunWhile(func() bool { return !cond() }); err != nil {
		t.Fatalf("RunWhile: %v", err)
	}
	if !cond() {
		t.Fatal("event queue drained before condition held")
	}
}

// do submits one request and runs the engine until it completes.
func (n *testNode) do(t *testing.T, req Request) Response {
	t.Helper()
	var resp Response
	got := false
	userDone := req.Done
	req.Done = func(r Response) {
		resp, got = r, true
		if userDone != nil {
			userDone(r)
		}
	}
	if err := n.server.Submit(req); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	n.await(t, func() bool { return got })
	return resp
}

// runStreams drives S synchronous 64K-read streams through the server
// for `requests` reads each and returns aggregate MB/s of simulated
// delivery (bytes / time of last completion).
func (n *testNode) runStreams(t *testing.T, streams, requests int) float64 {
	t.Helper()
	capacity := n.dev.Capacity(0)
	spacing := capacity / int64(streams)
	spacing -= spacing % 512
	const req = 64 << 10
	var completed int
	var warmEnd, coolEnd, lastEnd time.Duration
	total := streams * requests
	warmup := total / 4
	cooldown := total * 3 / 4
	for s := 0; s < streams; s++ {
		base := int64(s) * spacing
		var issue func(i int)
		issue = func(i int) {
			if i >= requests {
				return
			}
			err := n.server.Submit(Request{
				Disk: 0, Offset: base + int64(i)*req, Length: req,
				Done: func(r Response) {
					if r.Err != nil {
						t.Errorf("request error: %v", r.Err)
					}
					completed++
					if completed == warmup {
						warmEnd = r.End
					}
					if completed == cooldown {
						coolEnd = r.End
					}
					if r.End > lastEnd {
						lastEnd = r.End
					}
					issue(i + 1)
				},
			})
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		issue(0)
	}
	n.await(t, func() bool { return completed >= total })
	span := coolEnd - warmEnd
	if span <= 0 {
		return 0
	}
	// Steady-state throughput: the middle half of completions over the
	// corresponding span (excludes detection warmup and tail effects).
	return float64(int64(cooldown-warmup)*req) / span.Seconds() / 1e6
}

func TestNewServerValidation(t *testing.T) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewSimClock(eng)
	if _, err := NewServer(nil, clock, DefaultConfig(8<<20, 1<<20)); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewServer(dev, nil, DefaultConfig(8<<20, 1<<20)); err == nil {
		t.Error("nil clock accepted")
	}
	bad := DefaultConfig(8<<20, 1<<20)
	bad.DetectThreshold = 1
	if _, err := NewServer(dev, clock, bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestSubmitValidation(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	capacity := n.dev.Capacity(0)
	bad := []Request{
		{Disk: -1, Offset: 0, Length: 4096},
		{Disk: 1, Offset: 0, Length: 4096},
		{Disk: 0, Offset: -1, Length: 4096},
		{Disk: 0, Offset: 0, Length: 0},
		{Disk: 0, Offset: capacity, Length: 4096},
	}
	for i, req := range bad {
		if err := n.server.Submit(req); err == nil {
			t.Errorf("bad request %d accepted", i)
		}
	}
}

func TestDetectionThenStaging(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	const req = 64 << 10
	direct, buffered := 0, 0
	for i := 0; i < 32; i++ {
		r := n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if r.Direct {
			direct++
		}
		if r.FromBuffer {
			buffered++
		}
	}
	// The first DetectThreshold requests go direct; later ones are
	// served from staged buffers.
	if direct != n.server.Config().DetectThreshold {
		t.Errorf("direct = %d, want %d (threshold)", direct, n.server.Config().DetectThreshold)
	}
	if buffered == 0 {
		t.Error("no buffered deliveries after detection")
	}
	st := n.server.Stats()
	if st.StreamsDetected != 1 {
		t.Errorf("StreamsDetected = %d, want 1", st.StreamsDetected)
	}
	if st.Fetches == 0 || st.BytesFetched == 0 {
		t.Error("no read-ahead issued")
	}
}

func TestRandomRequestsStayDirect(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	capacity := n.dev.Capacity(0)
	rng := sim.NewRand(3)
	for i := 0; i < 50; i++ {
		off := rng.Int63n(capacity - 1<<20)
		off -= off % 512
		r := n.do(t, Request{Disk: 0, Offset: off, Length: 4096})
		if !r.Direct {
			t.Errorf("random request %d not served directly", i)
		}
	}
	st := n.server.Stats()
	if st.StreamsDetected != 0 {
		t.Errorf("StreamsDetected = %d for random workload", st.StreamsDetected)
	}
	if st.DirectReads != 50 {
		t.Errorf("DirectReads = %d, want 50", st.DirectReads)
	}
}

func TestThroughputInsensitivity(t *testing.T) {
	// The paper's headline claim (§5, Fig 10): with adequate memory and
	// large read-ahead the node delivers near-max disk throughput
	// regardless of stream count, and is insensitive to it.
	if testing.Short() {
		t.Skip("long sweep")
	}
	run := func(streams int) float64 {
		cfg := DefaultConfig(900<<20, 8<<20)
		n := baseNode(t, cfg)
		return n.runStreams(t, streams, 384)
	}
	few := run(10)
	many := run(100)
	if many < few*0.75 {
		t.Errorf("throughput sensitive to streams: 10 -> %.1f MB/s, 100 -> %.1f MB/s", few, many)
	}
	if many < 35 {
		t.Errorf("100-stream throughput %.1f MB/s, want near disk max (>=35)", many)
	}
}

func TestSchedulerBeatsDirectPath(t *testing.T) {
	if testing.Short() {
		t.Skip("long sweep")
	}
	// Direct baseline: same workload straight to the device.
	direct := func(streams, requests int) float64 {
		eng := sim.NewEngine()
		host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		capacity := host.DiskCapacity(0)
		spacing := capacity / int64(streams)
		spacing -= spacing % 512
		const req = 64 << 10
		var bytes int64
		for s := 0; s < streams; s++ {
			base := int64(s) * spacing
			var issue func(i int)
			issue = func(i int) {
				if i >= requests {
					return
				}
				if err := host.ReadAt(0, base+int64(i)*req, req, func(iostack.Result) {
					bytes += req
					issue(i + 1)
				}); err != nil {
					t.Fatal(err)
				}
			}
			issue(0)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(bytes) / eng.Now().Seconds() / 1e6
	}
	base := direct(50, 128)
	n := baseNode(t, DefaultConfig(900<<20, 8<<20))
	sched := n.runStreams(t, 50, 256)
	if sched < 3*base {
		t.Errorf("scheduler %.1f MB/s vs direct %.1f MB/s; want >= 3x", sched, base)
	}
}

func TestMemoryBoundRespected(t *testing.T) {
	cfg := DefaultConfig(16<<20, 8<<20) // D derives to 2
	n := baseNode(t, cfg)
	n.runStreams(t, 20, 16)
	st := n.server.Stats()
	if st.PeakMemory > 16<<20 {
		t.Errorf("PeakMemory = %d exceeds M = %d", st.PeakMemory, int64(16<<20))
	}
	if st.MemoryInUse < 0 {
		t.Errorf("MemoryInUse = %d went negative", st.MemoryInUse)
	}
}

func TestDispatchSetBounded(t *testing.T) {
	cfg := DefaultConfig(900<<20, 1<<20)
	cfg.DispatchSize = 3
	n := baseNode(t, cfg)
	maxDispatched := 0
	completed := 0
	const streams, perStream = 10, 24
	var issue func(s, i int)
	issue = func(s, i int) {
		if i >= perStream {
			return
		}
		base := int64(s) * (n.dev.Capacity(0) / streams)
		base -= base % 512
		if err := n.server.Submit(Request{
			Disk: 0, Offset: base + int64(i)*64<<10, Length: 64 << 10,
			Done: func(Response) {
				completed++
				if d := n.server.DispatchedStreams(); d > maxDispatched {
					maxDispatched = d
				}
				issue(s, i+1)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	for s := 0; s < streams; s++ {
		issue(s, 0)
	}
	n.await(t, func() bool { return completed >= streams*perStream })
	if maxDispatched > 3 {
		t.Errorf("dispatch set reached %d, bound is 3", maxDispatched)
	}
	if maxDispatched == 0 {
		t.Error("dispatch set never populated")
	}
}

func TestRotationAfterNRequests(t *testing.T) {
	cfg := DefaultConfig(900<<20, 512<<10)
	cfg.RequestsPerStream = 4
	cfg.DispatchSize = 1
	n := baseNode(t, cfg)
	n.runStreams(t, 2, 64)
	st := n.server.Stats()
	if st.Fetches == 0 {
		t.Fatal("no fetches")
	}
	if st.StreamsDetected != 2 {
		t.Errorf("StreamsDetected = %d", st.StreamsDetected)
	}
	if st.BufferHits+st.QueuedServed == 0 {
		t.Error("nothing served from staged buffers")
	}
}

func TestGCFreesIdleBuffers(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BufferTimeout = 100 * time.Millisecond
	cfg.StreamTimeout = 300 * time.Millisecond
	cfg.GCPeriod = 50 * time.Millisecond
	n := baseNode(t, cfg)
	// Detect a stream, let it prefetch, then abandon it.
	const req = 64 << 10
	for i := 0; i < 6; i++ {
		n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
	}
	if n.server.Stats().Fetches == 0 {
		t.Fatal("no prefetch to abandon")
	}
	// Idle long enough for buffer and stream GC.
	if err := n.eng.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	st := n.server.Stats()
	if st.BuffersGCed == 0 {
		t.Error("idle buffers not garbage collected")
	}
	if st.StreamsGCed == 0 {
		t.Error("idle stream not garbage collected")
	}
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after GC, want 0", st.MemoryInUse)
	}
	if n.server.ActiveStreams() != 0 {
		t.Errorf("ActiveStreams = %d after GC", n.server.ActiveStreams())
	}
}

func TestStreamRetiresAtDiskEnd(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	n := baseNode(t, cfg)
	capacity := n.dev.Capacity(0)
	const req = 64 << 10
	// Read the tail of the disk sequentially to the very end.
	start := capacity - 32*req
	count := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= 32 {
			return
		}
		if err := n.server.Submit(Request{
			Disk: 0, Offset: start + int64(i)*req, Length: req,
			Done: func(r Response) {
				if r.Err != nil {
					t.Errorf("tail read: %v", r.Err)
				}
				count++
				issue(i + 1)
			},
		}); err != nil {
			t.Fatal(err)
		}
	}
	issue(0)
	n.await(t, func() bool { return count >= 32 })
	// Let the tail buffers drain/retire.
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.server.Stats()
	if st.StreamsRetired+st.StreamsGCed == 0 {
		t.Error("tail stream neither retired nor collected")
	}
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after retirement", st.MemoryInUse)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	n.server.Close()
	n.server.Close() // idempotent
	if err := n.server.Submit(Request{Disk: 0, Offset: 0, Length: 4096}); err == nil {
		t.Error("Submit after Close accepted")
	}
}

func TestResponsesCarryTimings(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	r := n.do(t, Request{Disk: 0, Offset: 0, Length: 4096})
	if r.End <= r.Start {
		t.Errorf("End %v <= Start %v", r.End, r.Start)
	}
	if !r.Direct {
		t.Error("single cold read should be direct")
	}
}

func TestLiveBufferAccountingForwarded(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	n := baseNode(t, cfg)
	n.runStreams(t, 4, 32)
	// Drain completely (GC collects leftovers) and check the gauge
	// returns to zero.
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if n.host.LiveBuffers() != 0 {
		t.Errorf("host live buffers = %d at quiescence", n.host.LiveBuffers())
	}
	if n.server.Stats().LiveBuffers != 0 {
		t.Errorf("server live buffers = %d at quiescence", n.server.Stats().LiveBuffers)
	}
}
