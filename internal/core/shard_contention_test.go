package core

import (
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/flight"
)

// TestShardContention drives concurrent classification, dispatch,
// direct reads, and read-side polling across at least 8 scheduler
// shards on a real clock. It exists to run under -race: every
// cross-shard interaction (global memory/slot budgets, repump,
// cross-shard eviction, gauge sync) gets exercised while every shard
// lock is hot.
func TestShardContention(t *testing.T) {
	const disks = 16
	dev, err := blockdev.NewMemDevice(disks, 1<<30, 20*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	// Memory is sized well below streams×R so shards starve and must
	// steal via cross-shard eviction and repump.
	cfg := DefaultConfig(24<<20, 1<<20)
	srv, err := NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if got := srv.NumShards(); got < 8 {
		t.Fatalf("NumShards = %d, want >= 8", got)
	}

	const (
		writers  = disks
		requests = 150
		req      = 64 << 10
	)
	var wg, pending sync.WaitGroup
	stop := make(chan struct{})

	// One sequential reader per disk: all shards classify and dispatch
	// concurrently.
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				pending.Add(1)
				err := srv.Submit(Request{
					Disk:   w % disks,
					Offset: int64(i) * req,
					Length: req,
					Done:   func(r Response) { r.Release(); pending.Done() },
				})
				if err != nil {
					pending.Done()
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(w)
	}
	// Random readers exercise the direct path on the same shards.
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < requests; i++ {
				pending.Add(1)
				off := (int64(i*2654435761+w*97) % ((1 << 30) / req)) * req
				if off < 0 {
					off = -off
				}
				err := srv.Submit(Request{
					Disk:   (w * 5) % disks,
					Offset: off,
					Length: req,
					Done:   func(r Response) { r.Release(); pending.Done() },
				})
				if err != nil {
					pending.Done()
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(w)
	}
	// Read-side pollers take the all-shard Snapshot and per-shard Stats
	// while the write path is hot.
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := srv.Stats()
				if st.MemoryInUse < 0 || st.MemoryInUse > cfg.Memory {
					t.Errorf("MemoryInUse = %d outside [0, %d]", st.MemoryInUse, cfg.Memory)
					return
				}
				snap := srv.Snapshot()
				if snap.DispatchedStreams > cfg.DispatchSize {
					t.Errorf("dispatched %d > D=%d", snap.DispatchedStreams, cfg.DispatchSize)
					return
				}
				_ = srv.ActiveStreams()
			}
		}()
	}

	pending.Wait()
	close(stop)
	wg.Wait()

	want := int64((writers + 4) * requests)
	if got := srv.Stats().Requests; got != want {
		t.Errorf("requests = %d, want %d", got, want)
	}
}

// TestBufferHitZeroAlloc is the steady-state allocation guard: serving
// a request from an already-staged buffer must not allocate. It pins
// the pooled-buffer and batched-delivery fast path — a regression here
// means a per-request allocation crept back in (CI's bench-smoke job
// runs this test).
func TestBufferHitZeroAlloc(t *testing.T) {
	bufferHitZeroAlloc(t, false, false)
}

// TestBufferHitZeroAllocWithFlight repeats the allocation guard with
// the flight recorder attached and the measured request carrying a
// trace id, so every iteration records submit and deliver events. The
// always-on recorder is only viable if its hot path is alloc-free too.
func TestBufferHitZeroAllocWithFlight(t *testing.T) {
	bufferHitZeroAlloc(t, true, false)
}

// TestBufferHitZeroAllocWithWindows repeats the guard with the
// sliding-window latency telemetry enabled: the windowed Observe on
// the buffer-hit path must stay allocation-free too (the health
// engine's remaining cost — cursor polling — runs off-path and is
// covered by the bench health budget).
func TestBufferHitZeroAllocWithWindows(t *testing.T) {
	bufferHitZeroAlloc(t, false, true)
}

// TestBufferHitZeroAllocWithSpeculation repeats the guard with the
// full replica stack enabled — mirroring, steering, and speculative
// re-issue. Their cost lives on the fetch path (disk picks, trigger
// timers); the buffer-hit path must not pay a single allocation for
// them.
func TestBufferHitZeroAllocWithSpeculation(t *testing.T) {
	bufferHitZeroAlloc(t, false, true, func(c *Config) {
		c.Replicas = 2
		c.SteerFactor = 2
		c.SpecQuantile = 0.9
	})
}

// TestBufferHitZeroAllocWithSLO repeats the guard with the SLO engine
// attached (flight recorder too, since violations record flight
// events): scoring a delivery — deadline math, verdict counters,
// lateness-window observes — must not cost the buffer-hit path an
// allocation, or the ledger could never run always-on.
func TestBufferHitZeroAllocWithSLO(t *testing.T) {
	bufferHitZeroAlloc(t, true, true, func(c *Config) {
		c.SLOTarget = 50 * time.Millisecond
	})
}

func bufferHitZeroAlloc(t *testing.T, withFlight, withWindows bool, mutate ...func(*Config)) {
	t.Helper()
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.NearSeqWindow = 1 << 20
	// Park the background sweeps so their timer re-arms cannot be
	// charged to the measured loop.
	cfg.GCPeriod = time.Hour
	cfg.EvictIdle = time.Hour
	clock := blockdev.NewRealClock()
	if withWindows {
		cfg.WindowSpan = time.Minute
	}
	for _, m := range mutate {
		m(&cfg)
	}
	disks := 1
	if cfg.Replicas > disks {
		disks = cfg.Replicas
	}
	dev, err := blockdev.NewMemDevice(disks, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	if withFlight {
		rec, err := flight.New(clock.Now, 1, 0)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Flight = rec
	}
	srv, err := NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const req = 64 << 10
	ch := make(chan struct{}, 1)
	done := func(r Response) {
		r.Release()
		ch <- struct{}{}
	}
	// Establish a stream and stage data well past block 14.
	for i := 0; i < 16; i++ {
		if err := srv.Submit(Request{Disk: 0, Offset: int64(i) * req, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	}

	// Re-read a staged block just behind the stream position: a pure
	// buffer hit (near-seq backward match), no fetch, no direct read.
	target := Request{Disk: 0, Offset: 14 * req, Length: req, Done: done}
	if withFlight {
		target.Trace = cfg.Flight.NextTrace()
	}
	avg := testing.AllocsPerRun(200, func() {
		if err := srv.Submit(target); err != nil {
			t.Fatal(err)
		}
		<-ch
	})
	if avg != 0 {
		t.Errorf("buffer-hit path allocates: %.2f allocs/op, want 0", avg)
	}
	st := srv.Stats()
	if st.BufferHits == 0 {
		t.Fatalf("no buffer hits recorded (stats: %+v) — the measured path was not the hit path", st)
	}
	if withFlight {
		n := 0
		for _, ev := range cfg.Flight.Snapshot().Merged() {
			if ev.Trace == target.Trace {
				n++
			}
		}
		if n == 0 {
			t.Fatalf("no flight events carry the measured trace id — the recorder was not on the measured path")
		}
	}
}
