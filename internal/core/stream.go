package core

import (
	"time"

	"seqstream/internal/bufpool"
	"seqstream/internal/slo"
)

// pendingReq is a client request waiting for prefetched data.
type pendingReq struct {
	off    int64
	length int64
	start  time.Duration
	trace  uint64 // flight-recorder trace id, 0 = untraced
	done   func(Response)
}

// stream is one detected sequential stream (§4.1): a private request
// queue plus read-ahead state.
type stream struct {
	id   int
	disk int

	// nextClient is the offset the next in-order client request is
	// expected at. Requests that do not match go down the direct path.
	nextClient int64
	// nextFetch is the next disk offset to prefetch.
	nextFetch int64

	// queue holds in-order client requests whose data is not staged
	// yet.
	queue []pendingReq

	// issuedInResidency counts disk requests in the current dispatch
	// residency; at N the stream rotates out.
	issuedInResidency int
	// fetchInFlight marks an outstanding disk request.
	fetchInFlight bool
	// dispatched marks membership in the dispatch set.
	dispatched bool
	// queued marks membership in the candidate queue.
	queued bool

	// buffers are this stream's staged (or in-flight) buffers, in
	// fetch order.
	buffers []*buffer

	lastActive time.Duration
	// totalFetched counts bytes of read-ahead issued for the stream.
	totalFetched int64

	// slo is the stream's SLO ledger entry, nil unless Config.SLOTarget
	// enabled the engine. Admitted in createStream, retired with the
	// stream; scoring through a nil entry is a no-op.
	slo *slo.StreamLedger
}

// buffer is one staged I/O buffer in the buffered set (§4.3).
type buffer struct {
	disk  int
	start int64
	end   int64
	// data holds the device bytes for backends that materialize them.
	data []byte
	// pbuf is the pooled memory the fetch reads into on devices that
	// support blockdev.ReaderInto (data aliases it when ready). It is
	// recycled when the buffer is freed — or, for abandoned fetches,
	// only when the late device completion arrives, because the device
	// may still be writing into it (see shard.onFetchTimeout).
	pbuf *bufpool.Buf
	// inDevice marks a window in which the primary device call is
	// outstanding: set when a fetch is (re-)issued, cleared when its
	// completion arrives. While set, pbuf (when the device reads into
	// pooled memory) must not be recycled — and a winning speculative
	// leg must keep the spec record parked on the buffer so the late
	// primary completion is recognized and recycled instead of
	// replaying a full completion on a buffer that already delivered.
	inDevice bool
	// ready marks fetch completion.
	ready bool
	// consumed counts bytes delivered to clients from this buffer; the
	// buffer is freed when consumed reaches its size.
	consumed int64
	// lastActive drives the GC timeout.
	lastActive time.Duration
	// issuedAt is when the fetch was generated (tracing).
	issuedAt time.Duration
	owner    *stream

	// attempts counts retries of this buffer's fetch after transient
	// device errors.
	attempts int
	// abandoned marks a fetch that hit FetchTimeout: its memory is
	// already reclaimed and its waiters failed, so a late device
	// completion (or queued retry) must be dropped.
	abandoned bool
	// cancelTimeout stops the pending fetch-deadline timer.
	cancelTimeout func()

	// readDisk is the disk the fetch was actually issued to: the
	// stream's primary unless steering routed it to a replica. Device
	// calls, latency observation, and breaker noting use readDisk;
	// dispatch accounting (perDisk, the fair share) stays on the
	// stream's logical disk.
	readDisk int
	// spec is the in-flight (or won) speculative duplicate of this
	// buffer's fetch on a replica, nil when none was armed. See
	// shard.onSpecTimer for the lifecycle.
	spec *specFetch
	// specCancel stops the pending speculation-trigger timer.
	specCancel func()
	// primaryFailed marks a terminal primary-leg error parked while a
	// speculative leg is still in flight; the spec completion decides
	// the buffer's fate (spec.go).
	primaryFailed bool
}

func (b *buffer) size() int64 { return b.end - b.start }

// covers reports whether the buffer spans [off, off+n).
func (b *buffer) covers(off, n int64) bool {
	return off >= b.start && off+n <= b.end
}

// slice returns the data backing [off, off+n), or nil when the backend
// does not materialize bytes.
func (b *buffer) slice(off, n int64) []byte {
	if b.data == nil {
		return nil
	}
	lo := off - b.start
	if lo < 0 || lo+n > int64(len(b.data)) {
		return nil
	}
	return b.data[lo : lo+n]
}

// DispatchPolicy picks the next candidate stream admitted to the
// dispatch set. Implementations see the candidate queue in FIFO order
// and return the index to admit.
type DispatchPolicy interface {
	// Next returns the index in candidates to admit. candidates is
	// never empty. lastOffset is the most recent fetch offset per
	// disk, for locality-aware policies.
	Next(candidates []*stream, lastOffset map[int]int64) int
}

// RoundRobin admits candidates in FIFO order — the paper's default
// policy (§4.2).
type RoundRobin struct{}

var _ DispatchPolicy = RoundRobin{}

// Next implements DispatchPolicy.
func (RoundRobin) Next(candidates []*stream, _ map[int]int64) int { return 0 }

// NearestOffset admits the candidate whose next fetch is closest to
// the disk head's recent position — the locality-aware alternative the
// paper sketches but does not adopt (§4.2). Used by the ablation
// benches.
type NearestOffset struct{}

var _ DispatchPolicy = NearestOffset{}

// Next implements DispatchPolicy.
func (NearestOffset) Next(candidates []*stream, lastOffset map[int]int64) int {
	best := 0
	bestDist := int64(-1)
	for i, s := range candidates {
		last, ok := lastOffset[s.disk]
		if !ok {
			continue
		}
		dist := s.nextFetch - last
		if dist < 0 {
			dist = -dist
		}
		if bestDist < 0 || dist < bestDist {
			best, bestDist = i, dist
		}
	}
	return best
}
