package core

import (
	"errors"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/disk"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// scriptNode builds a node whose device faults follow a script.
func scriptNode(t *testing.T, stackCfg iostack.Config, rules []blockdev.FaultRule, cfg Config) (*testNode, *blockdev.ScriptDevice) {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, stackCfg)
	if err != nil {
		t.Fatal(err)
	}
	simDev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewSimClock(eng)
	sd, err := blockdev.NewScriptDevice(simDev, clock, rules)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sd, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &testNode{eng: eng, host: host, dev: simDev, clock: clock, server: srv}, sd
}

// twoDiskConfig is BaseConfig with a second drive on the controller.
func twoDiskConfig() iostack.Config {
	cfg := iostack.BaseConfig(iostack.Options{})
	cfg.Controllers[0].Disks = append(cfg.Controllers[0].Disks, disk.ProfileWD800JD(2))
	return cfg
}

const failReq = 64 << 10

// detectStream drives the four direct detection reads of a sequential
// stream on disk and returns the next in-order offset. Detection
// triggers the stream's first read-ahead fetch; fault rules target
// fetches (not these 64K direct reads) via MinLen = the 1M read-ahead.
func detectStream(t *testing.T, n *testNode, disk int) int64 {
	t.Helper()
	for i := 0; i < 4; i++ {
		if r := n.do(t, Request{Disk: disk, Offset: int64(i) * failReq, Length: failReq}); r.Err != nil {
			t.Fatalf("detection read %d: %v", i, r.Err)
		}
	}
	return 4 * failReq
}

// startStream submits the four detection reads plus one in-order read
// that waits on the stream's first fetch — all before the engine runs,
// so the waiter is queued when the fetch resolves — then runs the
// engine until the waiter completes and returns its response.
func startStream(t *testing.T, n *testNode, disk int) Response {
	t.Helper()
	var resp Response
	waiterDone := false
	for i := 0; i < 5; i++ {
		i := i
		req := Request{Disk: disk, Offset: int64(i) * failReq, Length: failReq}
		if i < 4 {
			req.Done = func(r Response) {
				if r.Err != nil {
					t.Errorf("detection read %d: %v", i, r.Err)
				}
			}
		} else {
			req.Done = func(r Response) { resp, waiterDone = r, true }
		}
		if err := n.server.Submit(req); err != nil {
			t.Fatalf("Submit read %d: %v", i, err)
		}
	}
	n.await(t, func() bool { return waiterDone })
	return resp
}

func TestFailureConfigValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.FetchTimeout = -time.Second },
		func(c *Config) { c.FetchRetries = -1 },
		func(c *Config) { c.FetchRetries = 2; c.RetryBackoff = -time.Millisecond },
		func(c *Config) { c.BreakerThreshold = -1 },
		func(c *Config) { c.BreakerThreshold = 2; c.BreakerCooldown = -time.Second },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(64<<20, 1<<20)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}

	// Enabling retries / the breaker defaults the paired duration.
	cfg := Config{ReadAhead: 1 << 20, Memory: 64 << 20, FetchRetries: 2, BreakerThreshold: 3}
	cfg.ApplyDefaults()
	if cfg.RetryBackoff <= 0 {
		t.Error("RetryBackoff not defaulted")
	}
	if cfg.BreakerCooldown <= 0 {
		t.Error("BreakerCooldown not defaulted")
	}
}

func TestHungFetchTimesOutAndStreamCollects(t *testing.T) {
	// The stream's first read-ahead fetch never completes. The waiter must receive ErrFetchTimeout, the staged
	// memory must be reclaimed immediately, and the stream must be
	// collectable (gcTick used to skip it forever via fetchInFlight).
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchTimeout = 200 * time.Millisecond
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultHang, MinLen: 1 << 20}}, cfg)

	r := startStream(t, n, 0)
	if !errors.Is(r.Err, ErrFetchTimeout) {
		t.Fatalf("waiter err = %v, want ErrFetchTimeout", r.Err)
	}
	if sd.Hung() != 1 {
		t.Errorf("Hung = %d, want 1", sd.Hung())
	}
	st := n.server.Stats()
	if st.FetchTimeouts != 1 {
		t.Errorf("FetchTimeouts = %d, want 1", st.FetchTimeouts)
	}
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after timeout, want 0", st.MemoryInUse)
	}

	// The stream idles out and the collector removes it even though the
	// device read is still outstanding.
	if err := n.eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	if got := n.server.ActiveStreams(); got != 0 {
		t.Errorf("ActiveStreams = %d after timeout+idle, want 0", got)
	}
	if st := n.server.Stats(); st.StreamsGCed == 0 {
		t.Error("hung stream was not garbage collected")
	}
}

func TestTransientFetchErrorRetries(t *testing.T) {
	// The first fetch fails transiently once; the retry succeeds, so
	// clients never see the error.
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchRetries = 3
	cfg.RetryBackoff = time.Millisecond
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, MinLen: 1 << 20, From: 1, To: 2}}, cfg)

	if r := startStream(t, n, 0); r.Err != nil {
		t.Fatalf("first waiter: %v", r.Err)
	}
	off := int64(5) * failReq
	for i := 0; i < 8; i++ {
		if r := n.do(t, Request{Disk: 0, Offset: off + int64(i)*failReq, Length: failReq}); r.Err != nil {
			t.Fatalf("read %d: %v", i, r.Err)
		}
	}
	if st := n.server.Stats(); st.FetchRetries != 1 {
		t.Errorf("FetchRetries = %d, want 1", st.FetchRetries)
	}
	if sd.Faults() != 1 {
		t.Errorf("Faults = %d, want 1", sd.Faults())
	}
}

func TestPersistentFetchErrorNotRetried(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchRetries = 3
	cfg.RetryBackoff = time.Millisecond
	n, _ := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, MinLen: 1 << 20, From: 1, To: 2, Persistent: true}}, cfg)

	r := startStream(t, n, 0)
	if !errors.Is(r.Err, blockdev.ErrInjectedPersistent) {
		t.Fatalf("waiter err = %v, want ErrInjectedPersistent", r.Err)
	}
	if st := n.server.Stats(); st.FetchRetries != 0 {
		t.Errorf("FetchRetries = %d for persistent error, want 0", st.FetchRetries)
	}
}

func TestFetchRetriesExhausted(t *testing.T) {
	// Every fetch on disk 0 fails: after FetchRetries re-issues the
	// waiters get the device error, not an infinite retry loop.
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchRetries = 2
	cfg.RetryBackoff = time.Millisecond
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, MinLen: 1 << 20}}, cfg)

	r := startStream(t, n, 0)
	if !errors.Is(r.Err, blockdev.ErrInjected) {
		t.Fatalf("waiter err = %v, want ErrInjected", r.Err)
	}
	if st := n.server.Stats(); st.FetchRetries != 2 {
		t.Errorf("FetchRetries = %d, want 2", st.FetchRetries)
	}
	if sd.Faults() != 3 {
		t.Errorf("Faults = %d, want 3 (initial + 2 retries)", sd.Faults())
	}
	if st := n.server.Stats(); st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after exhausted retries, want 0", st.MemoryInUse)
	}
}

func TestBreakerTripFastFailAndRecovery(t *testing.T) {
	// Device reads 1..4 on disk 0 fail. Three consecutive failures trip
	// the circuit; while open, requests fail fast without touching the
	// device; after the cooldown a probe decides the state.
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 100 * time.Millisecond
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, From: 1, To: 5}}, cfg)

	// Widely spaced 4K reads stay on the direct path (no stream forms).
	const spacing = 8 << 20
	readAt := func(i int) error {
		return n.do(t, Request{Disk: 0, Offset: int64(i) * spacing, Length: 4096}).Err
	}

	for i := 0; i < 3; i++ {
		if err := readAt(i); !errors.Is(err, blockdev.ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	st := n.server.Stats()
	if st.BreakerTrips != 1 || st.DisksDegraded != 1 {
		t.Fatalf("after 3 failures: trips=%d degraded=%d, want 1/1", st.BreakerTrips, st.DisksDegraded)
	}

	// Open: the next request fails fast and never reaches the device.
	if err := readAt(3); !errors.Is(err, ErrDiskDegraded) {
		t.Fatalf("open-circuit read: err = %v, want ErrDiskDegraded", err)
	}
	if sd.Faults() != 3 {
		t.Errorf("device saw %d faults, want 3 (fast-fail bypassed device)", sd.Faults())
	}
	if st := n.server.Stats(); st.BreakerFastFails != 1 {
		t.Errorf("BreakerFastFails = %d, want 1", st.BreakerFastFails)
	}

	// Cooldown elapses; the probe (device read #4) still fails → the
	// circuit re-opens immediately.
	if err := n.eng.RunFor(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := readAt(4); !errors.Is(err, blockdev.ErrInjected) {
		t.Fatalf("probe read: err = %v, want ErrInjected", err)
	}
	if st := n.server.Stats(); st.BreakerTrips != 2 {
		t.Errorf("BreakerTrips = %d after failed probe, want 2", st.BreakerTrips)
	}

	// Second cooldown; the probe (read #5, past the fault window)
	// succeeds and the circuit closes.
	if err := n.eng.RunFor(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := readAt(5); err != nil {
		t.Fatalf("recovery probe: %v", err)
	}
	st = n.server.Stats()
	if st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after recovery, want 0", st.DisksDegraded)
	}
	if err := readAt(6); err != nil {
		t.Errorf("post-recovery read: %v", err)
	}
}

// driveStream issues count sequential reads on disk and returns the
// virtual time of the last completion.
func driveStream(t *testing.T, n *testNode, disk, count int) time.Duration {
	t.Helper()
	completed := 0
	var last time.Duration
	var issue func(i int)
	issue = func(i int) {
		if i >= count {
			return
		}
		err := n.server.Submit(Request{
			Disk: disk, Offset: int64(i) * failReq, Length: failReq,
			Done: func(r Response) {
				if r.Err != nil {
					t.Errorf("disk %d read %d: %v", disk, i, r.Err)
				}
				completed++
				if r.End > last {
					last = r.End
				}
				issue(i + 1)
			},
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	issue(0)
	n.await(t, func() bool { return completed >= count })
	return last
}

func TestDegradedDiskIsolation(t *testing.T) {
	// The ISSUE acceptance scenario: disk 0's fetch hangs permanently.
	// Disk 1's streams must keep completing at full throughput, disk
	// 0's waiter gets a timeout error, the staged buffer is reclaimed,
	// and the hung stream is eventually collected.
	const count = 64
	rules := []blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultHang, MinLen: 1 << 20}}
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchTimeout = 200 * time.Millisecond
	cfg.BreakerThreshold = 1
	cfg.BreakerCooldown = time.Hour // stays degraded for the test

	run := func(rules []blockdev.FaultRule) (time.Duration, *testNode) {
		n, _ := scriptNode(t, twoDiskConfig(), rules, cfg)
		// Start a disk-0 stream; under the hang rules its first fetch
		// never completes.
		off := detectStream(t, n, 0)
		var d0err error
		d0done := false
		if err := n.server.Submit(Request{Disk: 0, Offset: off, Length: failReq,
			Done: func(r Response) { d0err, d0done = r.Err, true }}); err != nil {
			t.Fatal(err)
		}
		elapsed := driveStream(t, n, 1, count)
		n.await(t, func() bool { return d0done })
		if len(rules) > 0 {
			if !errors.Is(d0err, ErrFetchTimeout) {
				t.Errorf("hung disk waiter err = %v, want ErrFetchTimeout", d0err)
			}
		} else if d0err != nil {
			t.Errorf("baseline disk-0 read: %v", d0err)
		}
		return elapsed, n
	}

	baseline, _ := run(nil)
	degraded, n := run(rules)

	// Disk 1 must not slow down because disk 0 is sick. (It may well
	// speed up: the hung disk stops competing for dispatch.)
	if limit := baseline + baseline/4; degraded > limit {
		t.Errorf("disk 1 under degraded disk 0: %v, want <= %v (baseline %v)", degraded, limit, baseline)
	}

	st := n.server.Stats()
	if st.FetchTimeouts == 0 {
		t.Error("no fetch timeouts recorded")
	}
	if st.DisksDegraded != 1 {
		t.Errorf("DisksDegraded = %d, want 1", st.DisksDegraded)
	}

	// New disk-0 requests fail fast; disk 1 keeps serving.
	if err := n.do(t, Request{Disk: 0, Offset: 32 << 20, Length: 4096}).Err; !errors.Is(err, ErrDiskDegraded) {
		t.Errorf("disk 0 request err = %v, want ErrDiskDegraded", err)
	}
	if err := n.do(t, Request{Disk: 1, Offset: int64(count) * failReq, Length: failReq}).Err; err != nil {
		t.Errorf("disk 1 request after degradation: %v", err)
	}

	// Everything drains: staged memory is reclaimed and the hung
	// stream is collected despite its outstanding device read.
	if err := n.eng.RunFor(2 * time.Minute); err != nil {
		t.Fatal(err)
	}
	snap := n.server.Snapshot()
	if snap.Stats.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after drain, want 0", snap.Stats.MemoryInUse)
	}
	if snap.ActiveStreams != 0 {
		t.Errorf("ActiveStreams = %d after drain, want 0", snap.ActiveStreams)
	}
}

func TestRetryDuringTimeoutDropped(t *testing.T) {
	// A fetch that fails transiently and then times out while backing
	// off must not be re-issued: the abandoned flag wins.
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.FetchTimeout = 50 * time.Millisecond
	cfg.FetchRetries = 3
	cfg.RetryBackoff = 100 * time.Millisecond // longer than the deadline
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, MinLen: 1 << 20}}, cfg)

	r := startStream(t, n, 0)
	if !errors.Is(r.Err, ErrFetchTimeout) {
		t.Fatalf("waiter err = %v, want ErrFetchTimeout", r.Err)
	}
	faults := sd.Faults()
	// Drain any pending backoff timers: no further device reads may
	// fire for the abandoned buffer.
	if err := n.eng.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	if sd.Faults() != faults {
		t.Errorf("abandoned fetch was retried: faults %d -> %d", faults, sd.Faults())
	}
	if st := n.server.Stats(); st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d, want 0", st.MemoryInUse)
	}
}
