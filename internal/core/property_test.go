package core

import (
	"testing"
	"testing/quick"

	"seqstream/internal/sim"
)

// genWorkload builds a deterministic pseudo-random request schedule:
// interleaved sequential runs, jumps, duplicates, and stray random
// reads, all derived from one seed.
type genRequest struct {
	off    int64
	length int64
	delay  int // engine events of spacing, 0 = immediate chain
}

func genWorkload(seed uint64, capacity int64, n int) []genRequest {
	rng := sim.NewRand(seed)
	reqs := make([]genRequest, 0, n)
	cursor := int64(0)
	for len(reqs) < n {
		switch rng.Intn(10) {
		case 0: // jump to a random aligned position
			cursor = rng.Int63n(capacity - 16<<20)
			cursor -= cursor % 512
		case 1: // duplicate of the previous request
			if len(reqs) > 0 {
				reqs = append(reqs, reqs[len(reqs)-1])
				continue
			}
		case 2: // small gap (near-sequential skip)
			cursor += int64(rng.Intn(4)) * 64 << 10
		}
		length := int64(rng.Intn(4)+1) * 16 << 10
		if cursor+length > capacity {
			cursor = 0
		}
		reqs = append(reqs, genRequest{off: cursor, length: length, delay: rng.Intn(3)})
		cursor += length
	}
	return reqs
}

// runWorkload pushes the schedule through a fresh node and returns the
// final stats. It fails the test if any request is lost or doubled.
func runWorkload(t *testing.T, seed uint64, cfg Config) Stats {
	t.Helper()
	n := baseNode(t, cfg)
	capacity := n.dev.Capacity(0)
	reqs := genWorkload(seed, capacity, 200)

	completions := make([]int, len(reqs))
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= len(reqs) {
			return
		}
		r := reqs[i]
		err := n.server.Submit(Request{
			Disk: 0, Offset: r.off, Length: r.length,
			Done: func(Response) {
				completions[i]++
				done++
				if r.delay == 0 {
					issue(i + 1)
				} else {
					n.eng.Schedule(sim.Time(r.delay)*100000, func() { issue(i + 1) })
				}
			},
		})
		if err != nil {
			t.Fatalf("seed %d: Submit(%d): %v", seed, i, err)
		}
	}
	issue(0)
	n.await(t, func() bool { return done >= len(reqs) })

	for i, c := range completions {
		if c != 1 {
			t.Fatalf("seed %d: request %d completed %d times", seed, i, c)
		}
	}
	// Drain everything (GC reclaims leftovers) and check quiescent
	// invariants.
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.server.Stats()
	if st.MemoryInUse != 0 {
		t.Errorf("seed %d: MemoryInUse = %d at quiescence", seed, st.MemoryInUse)
	}
	if st.LiveBuffers != 0 {
		t.Errorf("seed %d: LiveBuffers = %d at quiescence", seed, st.LiveBuffers)
	}
	if st.PeakMemory > cfg.Memory {
		t.Errorf("seed %d: PeakMemory %d exceeds M %d", seed, st.PeakMemory, cfg.Memory)
	}
	if got := n.server.DispatchedStreams(); got != 0 {
		t.Errorf("seed %d: %d streams still dispatched", seed, got)
	}
	if n.host.LiveBuffers() != 0 {
		t.Errorf("seed %d: host live buffers = %d", seed, n.host.LiveBuffers())
	}
	return st
}

func propertyConfig(nearSeq bool) Config {
	cfg := DefaultConfig(16<<20, 1<<20)
	if nearSeq {
		cfg.NearSeqWindow = 1 << 20
	}
	return cfg
}

func TestPropertyRandomWorkloadsStrict(t *testing.T) {
	f := func(seedRaw uint32) bool {
		runWorkload(t, uint64(seedRaw), propertyConfig(false))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPropertyRandomWorkloadsNearSeq(t *testing.T) {
	f := func(seedRaw uint32) bool {
		runWorkload(t, uint64(seedRaw), propertyConfig(true))
		return !t.Failed()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Error(err)
	}
}

func TestPropertyDeterminism(t *testing.T) {
	// The same seed must produce byte-identical statistics.
	for _, seed := range []uint64{7, 12345, 1 << 40} {
		a := runWorkload(t, seed, propertyConfig(true))
		b := runWorkload(t, seed, propertyConfig(true))
		if a != b {
			t.Errorf("seed %d: runs diverged:\n%+v\n%+v", seed, a, b)
		}
	}
}

func TestPropertyDeliveredMatchesRequested(t *testing.T) {
	// Bytes delivered must equal the sum of request lengths, for any
	// seed (no short or duplicated deliveries).
	f := func(seedRaw uint32) bool {
		seed := uint64(seedRaw)
		var want int64
		for _, r := range genWorkload(seed, 80*1000*1000*1000/512*512, 200) {
			want += r.length
		}
		st := runWorkload(t, seed, propertyConfig(false))
		if st.BytesDelivered != want {
			t.Errorf("seed %d: delivered %d, want %d", seed, st.BytesDelivered, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Error(err)
	}
}
