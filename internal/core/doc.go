// Package core implements the paper's host-level solution (§4): a
// storage-node server that transparently identifies sequential streams
// (classifier), coalesces their small client requests into large
// read-ahead disk requests issued from a bounded dispatch set
// (scheduler), and stages prefetched data in host memory until it is
// consumed (buffered set).
//
// The four tunables the paper names are exposed directly:
//
//	D — DispatchSize: streams generating disk I/O at a time
//	R — ReadAhead:    bytes per generated disk request
//	N — RequestsPerStream: disk requests a stream issues per residency
//	M — Memory:       host bytes available for staging buffers
//
// with the invariant M ≥ D·R·N (§4.3).
//
// # Sharding and ownership
//
// The scheduler is sharded per disk: Server routes each request to
// shards[disk % NumShards()], and everything request-scoped — the
// classifier state, candidate queue, dispatched set, staged buffers,
// per-disk fairness counters, circuit breakers, and GC cursor — is
// owned by exactly one shard and touched only under that shard's
// mutex. Shards never lock each other; Config.Shards = 1 collapses
// the layout back to a single lock for A/B comparison.
//
// The paper's global bounds survive sharding as lock-free accounting
// on Server: the staging-memory budget M and the dispatch budget D
// are CAS-reserved atomics (memReserve/slotAcquire), and gauges such
// as live streams and degraded disks are plain atomic counters. A
// shard that loses a budget race marks itself blocked and returns;
// whoever releases budget schedules a repump pass that revisits
// blocked shards one lock at a time. When a shard starves on memory
// with no local victim, the pass runs a two-phase cross-shard
// eviction: scan every shard's LRU candidate under its own lock, then
// re-lock only the chosen victim's shard to evict.
//
// # Locking rules
//
// Lock ordering is flat: at most one shard mutex is held at a time,
// except Snapshot, which locks all shards in index order for a
// consistent cut. Completion callbacks, device I/O, and the buffer
// pool are never invoked with a shard lock held — completions are
// batched under the lock and delivered after it is dropped.
//
// Device completions reach the shard through a second, smaller batch
// layer: each completion enqueues onto a per-shard queue guarded by
// its own leaf mutex (never held together with the shard lock), and a
// CAS-elected reaper drains up to Config.CompletionBatch completions
// per shard-lock acquisition, running the delivery flush once per
// batch. CompletionBatch = 1 reproduces the one-lock-per-completion
// discipline for A/B comparison; under the simulator the engine
// thread reaps inline in FIFO order, so event sequences are
// unchanged.
//
// # Staging buffers
//
// When the device implements blockdev.ReaderInto, staging buffers
// come from a size-classed, reference-counted bufpool.Pool instead of
// per-fetch allocation; responses borrow the pooled bytes and return
// them via Response.Release. A fetch abandoned by timeout keeps its
// buffer checked out until the device's late completion, since the
// device may still be writing into it.
//
// A consumer that needs the bytes to outlive its done callback — the
// payload wire path — takes over the reference wholesale with
// Response.TakeBuf instead of copying: the response's Data keeps
// aliasing the buffer, the scheduler's reference is detached, and the
// taker owes the pool exactly one Release after its last use (for the
// wire, after the vectored write drains). TakeBuf plus Release-on-nil
// make the hand-off exactly-once on every path, including errors.
package core
