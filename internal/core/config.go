package core

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/bufpool"
	"seqstream/internal/flight"
	"seqstream/internal/invariants"
	"seqstream/internal/trace"
)

// Config parameterizes a Server.
type Config struct {
	// DispatchSize (D) is the number of streams allowed to generate
	// disk requests concurrently. If zero, it is derived as
	// Memory/(ReadAhead*RequestsPerStream).
	DispatchSize int
	// ReadAhead (R) is the size of every generated disk request.
	ReadAhead int64
	// RequestsPerStream (N) is how many disk requests a stream issues
	// before it is rotated out of the dispatch set.
	RequestsPerStream int
	// Memory (M) bounds the bytes held in staging buffers.
	Memory int64

	// BlockSize is the classifier granularity: one bitmap bit covers
	// one block (default 64 KB). Representing larger blocks with a
	// single bit trades detection precision for bitmap memory (§4.1).
	BlockSize int64
	// RegionBlocks is the width of a dynamically-allocated bitmap
	// region in blocks (the paper's "[B-offset, B+offset]" window, "a
	// few tens" of blocks; default 64).
	RegionBlocks int
	// DetectThreshold is the number of distinct set bits in a region
	// that declares a sequential stream (default 4).
	DetectThreshold int

	// GCPeriod is how often the garbage collector sweeps (§4.3;
	// default 1s).
	GCPeriod time.Duration
	// BufferTimeout frees a staged buffer that has not been touched
	// for this long (default 30s). Only buffers of streams with no
	// in-flight fetch and no waiting clients are collected.
	BufferTimeout time.Duration
	// StreamTimeout removes a classified stream (queue, bitmap
	// entries) that has been idle for this long (default 60s).
	StreamTimeout time.Duration
	// EvictIdle is the minimum idle time before a staged buffer may be
	// reclaimed under memory pressure (LRU, default 500ms). Pressure
	// eviction keeps abandoned prefetches from pinning M while
	// candidate streams wait.
	EvictIdle time.Duration

	// FetchTimeout fails a read-ahead fetch that has been outstanding
	// this long: its waiters receive ErrFetchTimeout, the staged buffer
	// is reclaimed, and a late device completion is ignored. Without it
	// a hung device read pins its stream — and the stream's staged
	// memory — for the life of the process, because the collector skips
	// streams with a fetch in flight. Zero disables (the default: the
	// simulator's devices always complete).
	FetchTimeout time.Duration
	// FetchRetries re-issues a failed fetch up to this many times when
	// the device error is transient (blockdev.IsTransient), with
	// exponential backoff. Zero disables retries.
	FetchRetries int
	// RetryBackoff is the delay before the first fetch retry; it
	// doubles on each subsequent attempt. Defaults to 10ms when
	// FetchRetries is set.
	RetryBackoff time.Duration

	// BreakerThreshold opens a per-disk circuit after this many
	// consecutive device failures (fetch errors, direct-read errors,
	// fetch timeouts) on one disk. While open, that disk's requests
	// fail fast with ErrDiskDegraded and its streams leave the dispatch
	// set, so the remaining disks keep full dispatch — graceful
	// degradation with M ≥ D·R·N still enforced on the healthy set.
	// Zero disables the breaker.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit rejects requests
	// before letting traffic probe the disk again; the first device
	// success closes the circuit, the first failure re-opens it.
	// Defaults to 5s when the breaker is enabled.
	BreakerCooldown time.Duration

	// Policy picks the next stream admitted to the dispatch set. Nil
	// uses the paper's round-robin. With more than one shard the policy
	// is consulted concurrently from several shards; the built-in
	// policies are stateless and safe, custom implementations must be
	// too.
	Policy DispatchPolicy

	// Shards is the number of scheduler shards the disks are divided
	// over. Zero (the default) gives every disk its own shard; values
	// above the disk count are clamped. Shards = 1 reproduces the old
	// single-lock scheduler and exists for A/B benchmarking.
	Shards int

	// CompletionBatch bounds how many queued device completions a
	// shard's reaper processes per lock acquisition. Device callbacks
	// enqueue their completion and the first caller drains the queue
	// in batches of up to this size, each batch under one shard-lock
	// hold — amortizing lock handoffs and flight-recorder records the
	// same way the completion flush batches delivery. Zero defaults to
	// 32; 1 processes completions one per lock hold (the pre-batching
	// behavior, kept for A/B benchmarking).
	CompletionBatch int

	// Pool is the staging buffer pool used when the device supports
	// ReadInto. Nil allocates a private pool; supply one to share
	// staging memory with other components (the ingest path) or to
	// observe pool metrics.
	Pool *bufpool.Pool

	// NearSeqWindow, when positive, lets a request join a classified
	// stream whose expected offset is within this many bytes — the
	// near-sequential streams §4.1 leaves as future work (players that
	// skip container metadata, stride readers). Skipped ranges count
	// as consumed; zero keeps the paper's strict in-order matching.
	NearSeqWindow int64

	// Trace, when non-nil, records client completions, fetches, direct
	// reads, evictions, rotations, and GC events for offline analysis.
	Trace *trace.Tracer

	// Obs, when non-nil, feeds the scheduler's metric families and
	// (optionally) a stream-lifecycle span log. Build it with NewObs
	// over a shared obs.Registry.
	Obs *Obs

	// Flight, when non-nil, is the always-on flight recorder: each
	// scheduler shard stamps its lifecycle events onto ring
	// Flight.Ring(shard index), so a recorder with one ring per shard
	// keeps shard timelines contention-free. Recording is lock-free and
	// allocation-free; see package flight.
	Flight *flight.Recorder

	// Replicas is the replication factor of the data layout: every
	// disk's data is also readable from Replicas-1 mirror disks, chosen
	// at placement time by blockdev.ReplicaDisks. Refcounted bufpool
	// staging is unchanged — a fetch reads from exactly one replica at
	// a time (plus at most one speculative duplicate). 0 and 1 both
	// mean no replication; values above the disk count are rejected at
	// NewServer. Replication is what straggler steering and speculative
	// reads route across, so both require Replicas >= 2.
	Replicas int

	// SteerFactor, when positive, turns on straggler-aware dispatch: a
	// stream's next fetch is routed to its fastest healthy replica when
	// the primary's fetch EWMA exceeds SteerFactor times that replica's
	// (a soft analog of diskBlocked for slow-but-alive disks), and the
	// dispatch rotation deprioritizes candidates on such disks when
	// faster candidates are waiting. Disks with no samples yet are
	// never ranked (an unseeded EWMA reads zero). Requires Replicas >=
	// 2 and WindowSpan > 0; zero disables steering.
	SteerFactor float64
	// SteerMinEwma floors the disk EWMA at which steering (and the
	// rotation's deprioritization, and speculation timer arming)
	// engages, default 1ms: a disk whose fetches complete below it is
	// healthy no matter how its EWMA compares to an even faster
	// peer's, so microsecond-scale jitter on fast devices cannot
	// masquerade as a straggler — and no per-fetch speculation timer
	// is armed for reads that will complete in microseconds.
	SteerMinEwma time.Duration

	// SpecQuantile, when positive, turns on speculative re-issue: an
	// in-flight fetch that has been outstanding longer than this
	// quantile of its disk's windowed fetch latency (not a fixed
	// deadline) is duplicated on a replica; the first completion wins
	// and the loser's buffer is released through the timeout-safe
	// checkout path. Typical values are 0.9..0.99. Requires Replicas >=
	// 2 and WindowSpan > 0; zero disables speculation.
	SpecQuantile float64
	// SpecMinSamples is how many samples the disk's fetch window must
	// hold before its quantile is trusted as a speculation trigger
	// (default 8); below it fetches run unduplicated.
	SpecMinSamples int
	// SpecMinDelay floors the speculation trigger delay (default 1ms),
	// so sub-millisecond latency quantiles on fast devices do not arm
	// a timer per fetch that fires before the read has a chance to
	// complete.
	SpecMinDelay time.Duration

	// SLOTarget, when positive, attaches the SLO engine (package slo):
	// every request gets a delivery deadline derived from SLOTarget and
	// the classified rate R (a full read-ahead is due SLOTarget after
	// submission, shorter requests proportionally sooner), every
	// delivery is scored on-time/late/missed on the shard completion
	// path, and the scores feed per-stream/per-disk/node SLIs plus
	// multi-window burn-rate alerts (see Server.SLO). Zero disables the
	// engine entirely.
	SLOTarget time.Duration
	// SLOLateFactor marks the late/missed boundary: a delivery beyond
	// SLOLateFactor times its deadline counts missed (default
	// slo.DefaultLateFactor).
	SLOLateFactor float64
	// SLOObjective is the on-time delivery objective in (0, 1) the burn
	// rates measure against (default slo.DefaultObjective, 0.999).
	SLOObjective float64
	// SLOFastWindow/SLOMidWindow/SLOSlowWindow are the burn-rate
	// horizons: the fast (paging) alert requires both the fast and mid
	// windows to burn past SLOFastBurn, the slow (ticket) alert watches
	// the slow window against SLOSlowBurn. Defaults 5m/1h/6h.
	SLOFastWindow time.Duration
	SLOMidWindow  time.Duration
	SLOSlowWindow time.Duration
	// SLOFastBurn/SLOSlowBurn are the alert thresholds (defaults
	// slo.DefaultFastBurn 14.4 / slo.DefaultSlowBurn 6).
	SLOFastBurn float64
	SLOSlowBurn float64
	// SLOMinSamples gates alerting on burn-window population (default
	// slo.DefaultMinSamples).
	SLOMinSamples int64

	// WindowSpan, when positive, attaches sliding-window latency
	// telemetry (see LatencyWindows): request latency node-wide and
	// fetch latency node-wide plus per disk, observed beside the
	// cumulative Obs histograms but covering only the last WindowSpan
	// of traffic. Independent of Obs so the health engine can run with
	// metrics off; zero disables windows entirely.
	WindowSpan time.Duration
	// WindowBuckets splits WindowSpan into this many ring slots
	// (default obs.DefaultWindowBuckets, i.e. 12 — a 60s window
	// rotates a 5s slot).
	WindowBuckets int
}

// DefaultConfig returns the §5 defaults for a node with the given
// memory budget and read-ahead; D is derived from M = D*R*N with N=1.
func DefaultConfig(memory, readAhead int64) Config {
	cfg := Config{
		ReadAhead:         readAhead,
		RequestsPerStream: 1,
		Memory:            memory,
	}
	cfg.ApplyDefaults()
	return cfg
}

// ApplyDefaults fills zero fields with the defaults described on each
// field, deriving D from M when unset.
func (c *Config) ApplyDefaults() {
	if c.RequestsPerStream == 0 {
		c.RequestsPerStream = 1
	}
	if c.DispatchSize == 0 && c.ReadAhead > 0 && c.RequestsPerStream > 0 {
		c.DispatchSize = DeriveDispatch(c.Memory, c.ReadAhead, c.RequestsPerStream)
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64 << 10
	}
	if c.RegionBlocks == 0 {
		c.RegionBlocks = 64
	}
	if c.DetectThreshold == 0 {
		c.DetectThreshold = 4
	}
	if c.GCPeriod == 0 {
		c.GCPeriod = time.Second
	}
	if c.BufferTimeout == 0 {
		c.BufferTimeout = 30 * time.Second
	}
	if c.StreamTimeout == 0 {
		c.StreamTimeout = 60 * time.Second
	}
	if c.EvictIdle == 0 {
		c.EvictIdle = 500 * time.Millisecond
	}
	if c.FetchRetries > 0 && c.RetryBackoff == 0 {
		c.RetryBackoff = 10 * time.Millisecond
	}
	if c.BreakerThreshold > 0 && c.BreakerCooldown == 0 {
		c.BreakerCooldown = 5 * time.Second
	}
	if c.Policy == nil {
		c.Policy = RoundRobin{}
	}
	if c.CompletionBatch == 0 {
		c.CompletionBatch = 32
	}
	if c.SpecQuantile > 0 {
		if c.SpecMinSamples == 0 {
			c.SpecMinSamples = 8
		}
		if c.SpecMinDelay == 0 {
			c.SpecMinDelay = time.Millisecond
		}
	}
	if (c.SteerFactor > 0 || c.SpecQuantile > 0) && c.SteerMinEwma == 0 {
		c.SteerMinEwma = time.Millisecond
	}
}

// DeriveDispatch returns the largest D satisfying M >= D*R*N, at least 1.
func DeriveDispatch(memory, readAhead int64, n int) int {
	if readAhead <= 0 || n <= 0 {
		return 1
	}
	d := memory / (readAhead * int64(n))
	if d < 1 {
		d = 1
	}
	// §4.3: a derived dispatch set must satisfy M ≥ D·R·N (D = 1 is
	// the floor even when memory cannot hold one full residency).
	invariants.Check(d == 1 || d*readAhead*int64(n) <= memory,
		"derived D=%d violates M >= D*R*N (M=%d R=%d N=%d)", d, memory, readAhead, n)
	return int(d)
}

// Validate reports configuration errors. It does not mutate the
// config; call ApplyDefaults first for partially-specified configs.
func (c Config) Validate() error {
	switch {
	case c.DispatchSize <= 0:
		return errors.New("core: dispatch size (D) must be positive")
	case c.ReadAhead <= 0:
		return errors.New("core: read-ahead (R) must be positive")
	case c.RequestsPerStream <= 0:
		return errors.New("core: requests per stream (N) must be positive")
	case c.Memory < c.ReadAhead:
		return fmt.Errorf("core: memory (M=%d) must hold at least one read-ahead buffer (R=%d)", c.Memory, c.ReadAhead)
	case c.BlockSize <= 0:
		return errors.New("core: block size must be positive")
	case c.RegionBlocks <= 1:
		return errors.New("core: region must span at least 2 blocks")
	case c.DetectThreshold < 2:
		return errors.New("core: detection threshold must be at least 2")
	case c.DetectThreshold > c.RegionBlocks:
		return errors.New("core: detection threshold exceeds region width")
	case c.GCPeriod <= 0 || c.BufferTimeout <= 0 || c.StreamTimeout <= 0 || c.EvictIdle <= 0:
		return errors.New("core: GC periods must be positive")
	case c.Policy == nil:
		return errors.New("core: nil dispatch policy")
	case c.NearSeqWindow < 0:
		return errors.New("core: near-sequential window must be >= 0")
	case c.FetchTimeout < 0:
		return errors.New("core: fetch timeout must be >= 0")
	case c.FetchRetries < 0:
		return errors.New("core: fetch retries must be >= 0")
	case c.FetchRetries > 0 && c.RetryBackoff <= 0:
		return errors.New("core: retry backoff must be positive with retries enabled")
	case c.BreakerThreshold < 0:
		return errors.New("core: breaker threshold must be >= 0")
	case c.BreakerThreshold > 0 && c.BreakerCooldown <= 0:
		return errors.New("core: breaker cooldown must be positive with the breaker enabled")
	case c.Shards < 0:
		return errors.New("core: shard count must be >= 0")
	case c.CompletionBatch <= 0:
		return errors.New("core: completion batch must be positive")
	case c.WindowSpan < 0:
		return errors.New("core: window span must be >= 0")
	case c.WindowBuckets < 0:
		return errors.New("core: window buckets must be >= 0")
	case c.Replicas < 0:
		return errors.New("core: replicas must be >= 0")
	case c.SteerFactor < 0:
		return errors.New("core: steer factor must be >= 0")
	case c.SteerFactor > 0 && c.Replicas < 2:
		return errors.New("core: steering requires Replicas >= 2")
	case c.SteerFactor > 0 && c.WindowSpan <= 0:
		return errors.New("core: steering requires WindowSpan > 0 (EWMA/window telemetry)")
	case c.SteerMinEwma < 0:
		return errors.New("core: steer EWMA floor must be >= 0")
	case c.SpecQuantile < 0 || c.SpecQuantile >= 1:
		return errors.New("core: speculation quantile must be in [0, 1)")
	case c.SpecQuantile > 0 && c.Replicas < 2:
		return errors.New("core: speculation requires Replicas >= 2")
	case c.SpecQuantile > 0 && c.WindowSpan <= 0:
		return errors.New("core: speculation requires WindowSpan > 0 (windowed quantiles)")
	case c.SpecMinSamples < 0:
		return errors.New("core: speculation min samples must be >= 0")
	case c.SpecMinDelay < 0:
		return errors.New("core: speculation min delay must be >= 0")
	case c.SLOTarget < 0:
		return errors.New("core: SLO target must be >= 0")
	case c.SLOLateFactor < 0 || c.SLOObjective < 0 || c.SLOFastBurn < 0 || c.SLOSlowBurn < 0 || c.SLOMinSamples < 0:
		return errors.New("core: SLO parameters must be >= 0")
	case c.SLOFastWindow < 0 || c.SLOMidWindow < 0 || c.SLOSlowWindow < 0:
		return errors.New("core: SLO burn-rate windows must be >= 0")
	}
	return nil
}

// MemoryFloor returns D*R*N, the memory the paper's invariant requires
// for the configured dispatch set.
func (c Config) MemoryFloor() int64 {
	return int64(c.DispatchSize) * c.ReadAhead * int64(c.RequestsPerStream)
}
