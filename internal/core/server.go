package core

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/bufpool"
	"seqstream/internal/invariants"
	"seqstream/internal/slo"
	"seqstream/internal/trace"
)

// Request is one client read arriving at the storage node.
type Request struct {
	Disk   int
	Offset int64
	Length int64
	// Trace is the request's trace id, allocated at ingress (netserve)
	// or supplied by the client; zero means untraced. It is stamped on
	// the flight-recorder events the request generates.
	Trace uint64
	// Done receives the response. It is never invoked while a shard
	// lock is held; it may submit follow-up requests.
	Done func(Response)
}

// Response reports a completed client read.
type Response struct {
	// Start and End are measured on the server's clock.
	Start time.Duration
	End   time.Duration
	// Data holds the bytes for backends that materialize them
	// (nil on simulated devices).
	Data []byte
	// FromBuffer marks delivery from the buffered set (a staged hit).
	FromBuffer bool
	// Direct marks delivery through the non-sequential direct path.
	Direct bool
	// Err is non-nil when the device read failed.
	Err error

	// pbuf is the pooled buffer backing Data, when the device read
	// landed in pooled memory. Release recycles it.
	pbuf *bufpool.Buf
}

// Release returns the pooled memory backing Data to the buffer pool.
// Call it at most once, after the last use of Data; consumers that
// never call it merely forgo recycling (the memory is garbage
// collected instead). Safe when no pooled buffer is attached.
func (r *Response) Release() {
	r.pbuf.Release()
	r.pbuf = nil
	r.Data = nil
}

// TakeBuf detaches the pooled buffer backing Data and hands its
// reference to the caller, who becomes responsible for the single
// Release (Data itself stays valid — it aliases the returned
// buffer). It returns nil when the data is not pooled, in which case
// nothing needs releasing. The payload wire path uses it to park the
// staged bytes on a response frame without allocating a closure:
// the connection writer releases the buffer only after the vectored
// write has drained it onto the socket.
func (r *Response) TakeBuf() *bufpool.Buf {
	b := r.pbuf
	r.pbuf = nil
	return b
}

// Stats accumulates server counters. MemoryInUse and LiveBuffers are
// gauges; the rest are monotonic.
type Stats struct {
	Requests         int64
	DirectReads      int64
	BufferHits       int64 // served immediately from a staged buffer
	QueuedServed     int64 // served from a fetch the request waited on
	StreamsDetected  int64
	StreamsRetired   int64 // streams that reached end of disk
	StreamsGCed      int64
	Fetches          int64
	BytesFetched     int64
	BytesDelivered   int64
	BuffersFreed     int64
	BuffersGCed      int64
	BuffersEvicted   int64 // reclaimed under memory pressure (LRU)
	NearSeqAccepted  int64 // requests folded into a stream by proximity
	BytesSkipped     int64 // gap bytes credited as consumed (near-seq)
	RegionsGCed      int64
	FetchRetries     int64 // fetches re-issued after transient device errors
	FetchTimeouts    int64 // fetches failed by the FetchTimeout deadline
	BreakerTrips     int64 // per-disk circuits opened
	BreakerFastFails int64 // requests failed fast by an open circuit
	SteeredFetches   int64 // fetches routed to a replica instead of the primary
	Speculations     int64 // duplicate fetches issued on a replica for a slow leg
	SpecWins         int64 // speculative legs that completed first and delivered
	SLOOnTime        int64 // deliveries scored on time against their SLO deadline
	SLOLate          int64 // deliveries past deadline but within the miss boundary
	SLOMissed        int64 // deliveries past the miss boundary, or failed outright
	MemoryInUse      int64
	PeakMemory       int64
	LiveBuffers      int64
	DisksDegraded    int64 // disks with an open circuit (gauge)
}

// add accumulates the monotonic counters of o into st (the gauge
// fields are filled from the server's atomics, not summed).
func (st *Stats) add(o *Stats) {
	st.Requests += o.Requests
	st.DirectReads += o.DirectReads
	st.BufferHits += o.BufferHits
	st.QueuedServed += o.QueuedServed
	st.StreamsDetected += o.StreamsDetected
	st.StreamsRetired += o.StreamsRetired
	st.StreamsGCed += o.StreamsGCed
	st.Fetches += o.Fetches
	st.BytesFetched += o.BytesFetched
	st.BytesDelivered += o.BytesDelivered
	st.BuffersFreed += o.BuffersFreed
	st.BuffersGCed += o.BuffersGCed
	st.BuffersEvicted += o.BuffersEvicted
	st.NearSeqAccepted += o.NearSeqAccepted
	st.BytesSkipped += o.BytesSkipped
	st.RegionsGCed += o.RegionsGCed
	st.FetchRetries += o.FetchRetries
	st.FetchTimeouts += o.FetchTimeouts
	st.BreakerTrips += o.BreakerTrips
	st.BreakerFastFails += o.BreakerFastFails
	st.SteeredFetches += o.SteeredFetches
	st.Speculations += o.Speculations
	st.SpecWins += o.SpecWins
	// SLOOnTime/SLOLate/SLOMissed are filled from the SLO ledger's
	// atomics, not summed across shards.
}

type offKey struct {
	disk int
	off  int64
}

// Server is the storage-node scheduler (§4, Figure 9): classifier →
// dispatch set → disks, with prefetched data staged in the buffered
// set. It is safe for concurrent use; completion callbacks are always
// invoked without any internal lock held.
//
// Internally the scheduler is sharded per disk: each shard owns the
// classifier regions, streams, candidate queue, staged buffers, GC
// cursor, and circuit breaker for its disks behind its own mutex,
// while the two paper-level bounds stay global — the dispatch bound D
// through an atomic slot counter and the memory bound M through an
// atomic byte budget. See shard.go for the ownership rules.
type Server struct {
	cfg   Config
	dev   blockdev.Device
	acct  blockdev.BufferAccounting
	cpu   blockdev.CPUAccounting
	rinto blockdev.ReaderInto
	clock blockdev.Clock
	pool  *bufpool.Pool

	shards []*shard

	// win holds the sliding-window latency telemetry when
	// Config.WindowSpan is positive; nil-checked on every hot path.
	win *LatencyWindows

	// sloLedger is the SLO engine when Config.SLOTarget is positive;
	// every slo.Ledger method is safe on the nil value, so scoring call
	// sites stay unconditional.
	sloLedger *slo.Ledger

	// replicas holds the replica set of every primary disk when
	// Config.Replicas > 1 (nil otherwise): replicas[d][0] == d, the
	// rest are the mirrors blockdev.ReplicaDisks chose at placement
	// time. Immutable after NewServer.
	replicas [][]int

	// diskDown mirrors each disk's breaker-blocked state as lock-free
	// booleans (written by the owning shard on breaker transitions, via
	// publishDiskDown). Replica selection consults it for disks owned
	// by other shards without touching their locks. Nil unless
	// replication is on.
	diskDown []atomic.Bool

	// Global accounting (atomic; see DESIGN.md §10 for the protocol).
	memUsed     atomic.Int64 // staged bytes across shards; never exceeds cfg.Memory
	peakMem     atomic.Int64 // high-water mark of memUsed
	dispatched  atomic.Int64 // dispatch slots in use; never exceeds cfg.DispatchSize
	bufCount    atomic.Int64 // live staged buffers across shards
	liveStreams atomic.Int64 // classified streams across shards
	liveCands   atomic.Int64 // candidate-queue entries across shards
	degraded    atomic.Int64 // disks with an open circuit
	nextID      atomic.Int64 // stream id allocator

	// Cross-shard wakeup: shards blocked on a global budget flag
	// themselves; a release schedules one repump pass off-lock.
	blocked     atomic.Int64
	repumpArmed atomic.Bool
	repumpFn    func()
}

// NewServer builds a server over a device. cfg is defaulted and
// validated.
func NewServer(dev blockdev.Device, clock blockdev.Clock, cfg Config) (*Server, error) {
	if dev == nil {
		return nil, errors.New("core: nil device")
	}
	if clock == nil {
		return nil, errors.New("core: nil clock")
	}
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		dev:   dev,
		clock: clock,
		pool:  cfg.Pool,
	}
	if acct, ok := dev.(blockdev.BufferAccounting); ok {
		s.acct = acct
	}
	if cpu, ok := dev.(blockdev.CPUAccounting); ok {
		s.cpu = cpu
	}
	if ri, ok := dev.(blockdev.ReaderInto); ok {
		// Wrapper devices (fault injectors) expose ReadInto but can only
		// honor it when their inner device does; the gate keeps the
		// pooled path off rather than failing every fetch.
		if g, gated := dev.(blockdev.ReadIntoSupported); !gated || g.SupportsReadInto() {
			s.rinto = ri
			if s.pool == nil {
				s.pool = bufpool.New()
			}
		}
	}
	if cfg.Replicas > 1 {
		if cfg.Replicas > dev.Disks() {
			return nil, fmt.Errorf("core: %d replicas exceed the device's %d disks", cfg.Replicas, dev.Disks())
		}
		s.replicas = make([][]int, dev.Disks())
		for d := range s.replicas {
			s.replicas[d] = blockdev.ReplicaDisks(d, cfg.Replicas, dev.Disks())
		}
		s.diskDown = make([]atomic.Bool, dev.Disks())
	}
	n := cfg.Shards
	if n <= 0 || n > dev.Disks() {
		n = dev.Disks()
	}
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = newShard(s, i)
	}
	if cfg.WindowSpan > 0 {
		win, err := newLatencyWindows(clock.Now, cfg.WindowSpan, cfg.WindowBuckets, dev.Disks())
		if err != nil {
			return nil, err
		}
		s.win = win
		if o := cfg.Obs; o != nil {
			o.registerWindows(win)
		}
	}
	if cfg.SLOTarget > 0 {
		ledger, err := slo.NewLedger(slo.Config{
			Target:        cfg.SLOTarget,
			ReadAhead:     cfg.ReadAhead,
			LateFactor:    cfg.SLOLateFactor,
			Objective:     cfg.SLOObjective,
			FastWindow:    cfg.SLOFastWindow,
			MidWindow:     cfg.SLOMidWindow,
			SlowWindow:    cfg.SLOSlowWindow,
			FastBurn:      cfg.SLOFastBurn,
			SlowBurn:      cfg.SLOSlowBurn,
			WindowBuckets: cfg.WindowBuckets,
			MinSamples:    cfg.SLOMinSamples,
		}, clock.Now, dev.Disks())
		if err != nil {
			return nil, err
		}
		s.sloLedger = ledger
		if o := cfg.Obs; o != nil {
			o.registerSLO(ledger)
		}
	}
	s.repumpFn = s.repumpPass
	return s, nil
}

// shardFor routes a disk to its owning shard.
func (s *Server) shardFor(disk int) *shard {
	return s.shards[disk%len(s.shards)]
}

// flushSLOShard publishes the SLO pending batches of every disk the
// given shard owns, so stats snapshots report exact totals. The caller
// must hold that shard's lock — the same serialization scoring runs
// under. A no-op without an SLO ledger.
func (s *Server) flushSLOShard(shard int) {
	if s.sloLedger == nil {
		return
	}
	for d := shard; d < s.dev.Disks(); d += len(s.shards) {
		s.sloLedger.Flush(d)
	}
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// NumShards returns the number of scheduler shards the node runs
// (Config.Shards resolved against the device's disk count).
func (s *Server) NumShards() int { return len(s.shards) }

// Pool returns the staging buffer pool, or nil when the device does
// not support pooled reads (simulated devices).
func (s *Server) Pool() *bufpool.Pool { return s.pool }

// Disks returns the device's disk count.
func (s *Server) Disks() int { return s.dev.Disks() }

// Windows returns the sliding-window latency telemetry, nil unless
// Config.WindowSpan enabled it. Every LatencyWindows accessor is safe
// on the nil result.
func (s *Server) Windows() *LatencyWindows { return s.win }

// SLO returns the SLO ledger, nil unless Config.SLOTarget enabled it.
// Every slo.Ledger accessor is safe on the nil result.
func (s *Server) SLO() *slo.Ledger { return s.sloLedger }

// BreakerInfo reports one disk's circuit-breaker state for the health
// rollup.
type BreakerInfo struct {
	Disk  int
	State string // "closed", "open", or "half-open"
	// ReopenAt is when an open circuit starts probing again (server
	// clock); zero unless State is "open".
	ReopenAt time.Duration
}

// BreakerInfos lists every disk whose circuit currently exists (the
// breaker map is lazy: a disk appears after its first device failure,
// so absence means closed). Empty when the breaker is disabled. Each
// shard is locked briefly in turn; the result is not a single
// consistent cut, matching Stats.
func (s *Server) BreakerInfos() []BreakerInfo {
	if s.cfg.BreakerThreshold <= 0 {
		return nil
	}
	var out []BreakerInfo
	for _, sh := range s.shards {
		sh.mu.Lock()
		for disk, b := range sh.breakers {
			info := BreakerInfo{Disk: disk}
			switch b.state {
			case breakerOpen:
				info.State = "open"
				info.ReopenAt = b.reopenAt
			case breakerHalfOpen:
				info.State = "half-open"
			default:
				info.State = "closed"
			}
			out = append(out, info)
		}
		sh.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Disk < out[j].Disk })
	return out
}

// Stats returns a snapshot of the counters: the monotonic counters
// summed across shards, the gauges from the global accounting.
func (s *Server) Stats() Stats {
	var st Stats
	for _, sh := range s.shards {
		sh.mu.Lock()
		s.flushSLOShard(sh.idx)
		part := sh.stats
		sh.mu.Unlock()
		st.add(&part)
	}
	st.MemoryInUse = s.memUsed.Load()
	st.PeakMemory = s.peakMem.Load()
	st.LiveBuffers = s.bufCount.Load()
	st.DisksDegraded = s.degraded.Load()
	st.SLOOnTime, st.SLOLate, st.SLOMissed = s.sloLedger.Totals()
	return st
}

// Snapshot couples the counters with the scheduler gauges. Everything
// is read holding every shard lock, so the fields are mutually
// consistent — polling Stats, ActiveStreams, and DispatchedStreams
// separately can interleave with dispatch and observe states that
// never coexisted.
type Snapshot struct {
	Stats             Stats
	ActiveStreams     int
	DispatchedStreams int
	CandidateQueue    int
}

// Snapshot returns a mutually consistent view of counters and gauges.
// Shard locks are taken in index order, so Snapshot may run
// concurrently with itself and with request traffic.
func (s *Server) Snapshot() Snapshot {
	for _, sh := range s.shards {
		sh.mu.Lock()
	}
	var snap Snapshot
	localDispatched := 0
	var localMem int64
	for _, sh := range s.shards {
		s.flushSLOShard(sh.idx)
	}
	// Every shard lock was taken in the loop above; the per-iteration
	// lock set is outside the flow model shardcheck can prove.
	for _, sh := range s.shards {
		snap.Stats.add(&sh.stats)               //lint:allow shardcheck all shard locks held (index-order loop above)
		snap.ActiveStreams += len(sh.streams)   //lint:allow shardcheck all shard locks held (index-order loop above)
		snap.DispatchedStreams += sh.dispatched //lint:allow shardcheck all shard locks held (index-order loop above)
		snap.CandidateQueue += len(sh.candidates)
		localDispatched += sh.dispatched //lint:allow shardcheck all shard locks held (index-order loop above)
		localMem += sh.memUsed           //lint:allow shardcheck all shard locks held (index-order loop above)
	}
	snap.Stats.MemoryInUse = s.memUsed.Load()
	snap.Stats.PeakMemory = s.peakMem.Load()
	snap.Stats.LiveBuffers = s.bufCount.Load()
	snap.Stats.DisksDegraded = s.degraded.Load()
	snap.Stats.SLOOnTime, snap.Stats.SLOLate, snap.Stats.SLOMissed = s.sloLedger.Totals()
	if invariants.Enabled {
		// The only place all locks are held together: the shard-local
		// accounting must sum to the global atomics.
		invariants.Check(int64(localDispatched) == s.dispatched.Load(),
			"shards hold %d dispatch slots but the global counter says %d", localDispatched, s.dispatched.Load())
		invariants.Check(localMem == s.memUsed.Load(),
			"shards stage %d bytes but the global budget says %d", localMem, s.memUsed.Load())
	}
	for i := len(s.shards) - 1; i >= 0; i-- {
		s.shards[i].mu.Unlock()
	}
	return snap
}

// ActiveStreams returns the number of classified streams.
func (s *Server) ActiveStreams() int { return int(s.liveStreams.Load()) }

// DispatchedStreams returns the current dispatch-set size.
func (s *Server) DispatchedStreams() int { return int(s.dispatched.Load()) }

// Close stops the garbage collectors. In-flight requests still
// complete; new submissions are rejected. Buffered span-log entries
// are flushed to the log's sink so shutdown loses no lifecycle events.
func (s *Server) Close() {
	for _, sh := range s.shards {
		sh.mu.Lock()
		if !sh.closed {
			sh.closed = true
			if sh.gcCancel != nil {
				sh.gcCancel()
			}
		}
		sh.mu.Unlock()
	}
	if s.cfg.Obs != nil {
		_ = s.cfg.Obs.Spans().Flush()
	}
}

// Submit routes one client request (Figure 9) to its disk's shard:
// buffered set first, then the stream queues, then the classifier,
// and otherwise the direct path to the disks.
func (s *Server) Submit(req Request) error {
	if err := blockdev.CheckRequest(s.dev, req.Disk, req.Offset, req.Length); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	return s.shardFor(req.Disk).submit(req)
}

// traceEvent records e when tracing is configured.
func (s *Server) traceEvent(e trace.Event) {
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(e)
	}
}

// complete delivers a single response off-lock through the clock.
// Staged-buffer deliveries go through the per-shard batch instead
// (shard.deliver); this path serves the direct reads and failure
// completions that occur one at a time.
func (s *Server) complete(done func(Response), resp Response) {
	if done == nil {
		resp.Release()
		return
	}
	resp.End = s.clock.Now()
	s.clock.Schedule(0, func() { done(resp) })
}

// --- global budget accounting -------------------------------------
//
// The memory bound M and dispatch bound D are properties of the whole
// node, not of one shard, so they live in atomics. Reservations are
// compare-and-swap loops that never overshoot the bound; releases
// wake shards that flagged themselves blocked.

// memWouldFit is the advisory admission gate: it reports whether n
// more staged bytes currently fit under M. A later memReserve may
// still fail if another shard reserves first.
func (s *Server) memWouldFit(n int64) bool {
	return s.memUsed.Load()+n <= s.cfg.Memory
}

// memReserve claims n staged bytes against M, updating the peak
// high-water mark. It reports false — claiming nothing — when the
// reservation would exceed the budget.
func (s *Server) memReserve(n int64) bool {
	for {
		cur := s.memUsed.Load()
		if cur+n > s.cfg.Memory {
			return false
		}
		if !s.memUsed.CompareAndSwap(cur, cur+n) {
			continue
		}
		next := cur + n
		for {
			peak := s.peakMem.Load()
			if next <= peak || s.peakMem.CompareAndSwap(peak, next) {
				break
			}
		}
		return true
	}
}

// memRelease returns n staged bytes to the budget and wakes blocked
// shards.
func (s *Server) memRelease(n int64) {
	s.memUsed.Add(-n)
	s.scheduleRepump()
}

// slotAcquire claims one dispatch slot against D, reporting false
// when the set is full.
func (s *Server) slotAcquire() bool {
	for {
		cur := s.dispatched.Load()
		if cur >= int64(s.cfg.DispatchSize) {
			return false
		}
		if s.dispatched.CompareAndSwap(cur, cur+1) {
			return true
		}
	}
}

// slotRelease returns one dispatch slot and wakes blocked shards.
func (s *Server) slotRelease() {
	s.dispatched.Add(-1)
	s.scheduleRepump()
}

// scheduleRepump arms one off-lock pass over the shards that flagged
// themselves blocked on a global budget. Safe to call under a shard
// lock (the pass runs through the clock, never inline).
func (s *Server) scheduleRepump() {
	if s.blocked.Load() == 0 {
		return
	}
	if !s.repumpArmed.CompareAndSwap(false, true) {
		return
	}
	s.clock.Schedule(0, s.repumpFn)
}

// repumpPass pumps every blocked shard, holding one shard lock at a
// time. When a shard is still starved for memory and holds no local
// eviction victim, an LRU victim is reclaimed from whichever shard
// has one (the cross-shard face of §4.3 pressure eviction) and
// another pass is scheduled.
func (s *Server) repumpPass() {
	s.repumpArmed.Store(false)
	for _, sh := range s.shards {
		if !sh.clearBlocked() {
			continue
		}
		sh.mu.Lock()
		if !sh.closed {
			sh.pump()
			sh.syncGauges()
		}
		sh.mu.Unlock()
		sh.flush()
		if sh.wantPump.Load() && !s.memWouldFit(s.cfg.ReadAhead) {
			if s.evictGlobal() {
				s.scheduleRepump()
			}
		}
	}
}

// evictGlobal frees the least-recently-active evictable staged buffer
// across all shards, holding one shard lock at a time: a scan pass
// records each shard's local LRU victim, then the global victim's
// shard re-finds and frees it (tolerating races by re-checking). It
// reports whether anything was freed.
func (s *Server) evictGlobal() bool {
	victimShard := -1
	var victimAge time.Duration
	for i, sh := range s.shards {
		sh.mu.Lock()
		_, b := sh.findEvictVictim()
		sh.mu.Unlock()
		if b == nil {
			continue
		}
		if victimShard < 0 || b.lastActive < victimAge {
			victimShard, victimAge = i, b.lastActive
		}
	}
	if victimShard < 0 {
		return false
	}
	sh := s.shards[victimShard]
	sh.mu.Lock()
	freed := sh.evictIdleBuffer()
	sh.syncGauges()
	sh.mu.Unlock()
	sh.flush()
	return freed
}

// noteDegradedTransition adjusts the global degraded-disk count when a
// breaker opens (+1) or leaves the open state (-1), and wakes blocked
// shards: a recovering disk raises every shard's fair share.
func (s *Server) noteDegradedTransition(delta int64) {
	s.degraded.Add(delta)
	if delta < 0 {
		s.scheduleRepump()
	}
}
