package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/invariants"
	"seqstream/internal/obs"
	"seqstream/internal/trace"
)

// Request is one client read arriving at the storage node.
type Request struct {
	Disk   int
	Offset int64
	Length int64
	// Done receives the response. It is never invoked while the
	// server lock is held; it may submit follow-up requests.
	Done func(Response)
}

// Response reports a completed client read.
type Response struct {
	// Start and End are measured on the server's clock.
	Start time.Duration
	End   time.Duration
	// Data holds the bytes for backends that materialize them
	// (nil on simulated devices).
	Data []byte
	// FromBuffer marks delivery from the buffered set (a staged hit).
	FromBuffer bool
	// Direct marks delivery through the non-sequential direct path.
	Direct bool
	// Err is non-nil when the device read failed.
	Err error
}

// Stats accumulates server counters. MemoryInUse and LiveBuffers are
// gauges; the rest are monotonic.
type Stats struct {
	Requests         int64
	DirectReads      int64
	BufferHits       int64 // served immediately from a staged buffer
	QueuedServed     int64 // served from a fetch the request waited on
	StreamsDetected  int64
	StreamsRetired   int64 // streams that reached end of disk
	StreamsGCed      int64
	Fetches          int64
	BytesFetched     int64
	BytesDelivered   int64
	BuffersFreed     int64
	BuffersGCed      int64
	BuffersEvicted   int64 // reclaimed under memory pressure (LRU)
	NearSeqAccepted  int64 // requests folded into a stream by proximity
	BytesSkipped     int64 // gap bytes credited as consumed (near-seq)
	RegionsGCed      int64
	FetchRetries     int64 // fetches re-issued after transient device errors
	FetchTimeouts    int64 // fetches failed by the FetchTimeout deadline
	BreakerTrips     int64 // per-disk circuits opened
	BreakerFastFails int64 // requests failed fast by an open circuit
	MemoryInUse      int64
	PeakMemory       int64
	LiveBuffers      int64
	DisksDegraded    int64 // disks with an open circuit (gauge)
}

type offKey struct {
	disk int
	off  int64
}

// Server is the storage-node scheduler (§4, Figure 9): classifier →
// dispatch set → disks, with prefetched data staged in the buffered
// set. It is safe for concurrent use; completion callbacks are always
// invoked without the internal lock held.
type Server struct {
	cfg   Config
	dev   blockdev.Device
	acct  blockdev.BufferAccounting
	cpu   blockdev.CPUAccounting
	clock blockdev.Clock

	mu         sync.Mutex
	cls        *classifier
	byExpected map[offKey]*stream // stream lookup by next expected client offset
	streams    map[int]*stream
	candidates []*stream
	dispatched int
	perDisk    map[int]int   // dispatched streams per disk
	lastOffset map[int]int64 // last fetch end per disk (for policies)
	breakers   map[int]*breaker
	memUsed    int64
	bufCount   int
	nextID     int
	stats      Stats
	gcCancel   func()
	gcArmed    bool
	closed     bool

	// pendingIO collects device calls generated under the lock; they
	// run after the lock is released (flushIO), because real devices
	// may block in ReadAt and their completions need the lock.
	pendingIO []func()
}

// NewServer builds a server over a device. cfg is defaulted and
// validated.
func NewServer(dev blockdev.Device, clock blockdev.Clock, cfg Config) (*Server, error) {
	if dev == nil {
		return nil, errors.New("core: nil device")
	}
	if clock == nil {
		return nil, errors.New("core: nil clock")
	}
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:        cfg,
		dev:        dev,
		clock:      clock,
		cls:        newClassifier(cfg),
		byExpected: make(map[offKey]*stream),
		streams:    make(map[int]*stream),
		perDisk:    make(map[int]int),
		lastOffset: make(map[int]int64),
		breakers:   make(map[int]*breaker),
	}
	if acct, ok := dev.(blockdev.BufferAccounting); ok {
		s.acct = acct
	}
	if cpu, ok := dev.(blockdev.CPUAccounting); ok {
		s.cpu = cpu
	}
	return s, nil
}

// armGC ensures the periodic collector is scheduled while there is
// collectible state, and leaves no timer behind when the server is
// idle (so simulations drain and idle real servers hold no timers).
// Caller holds the lock.
func (s *Server) armGC() {
	if s.gcArmed || s.closed {
		return
	}
	if len(s.streams) == 0 && s.cls.regionCount() == 0 && s.bufCount == 0 {
		return
	}
	s.gcArmed = true
	s.gcCancel = s.clock.Schedule(s.cfg.GCPeriod, s.gcTick)
}

// Config returns the effective configuration.
func (s *Server) Config() Config { return s.cfg }

// Stats returns a snapshot of the counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

// statsLocked assembles the counter snapshot. Caller holds the lock.
func (s *Server) statsLocked() Stats {
	st := s.stats
	st.MemoryInUse = s.memUsed
	st.LiveBuffers = int64(s.bufCount)
	st.DisksDegraded = int64(s.degradedDisks())
	return st
}

// Snapshot couples the counters with the scheduler gauges. Everything
// is read under one lock acquisition, so the fields are mutually
// consistent — polling Stats, ActiveStreams, and DispatchedStreams
// separately can interleave with dispatch and observe states that
// never coexisted.
type Snapshot struct {
	Stats             Stats
	ActiveStreams     int
	DispatchedStreams int
	CandidateQueue    int
}

// Snapshot returns a mutually consistent view of counters and gauges.
func (s *Server) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Snapshot{
		Stats:             s.statsLocked(),
		ActiveStreams:     len(s.streams),
		DispatchedStreams: s.dispatched,
		CandidateQueue:    len(s.candidates),
	}
}

// ActiveStreams returns the number of classified streams.
func (s *Server) ActiveStreams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.streams)
}

// DispatchedStreams returns the current dispatch-set size.
func (s *Server) DispatchedStreams() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dispatched
}

// Close stops the garbage collector. In-flight requests still
// complete; new submissions are rejected.
func (s *Server) Close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	s.closed = true
	if s.gcCancel != nil {
		s.gcCancel()
	}
}

// flushIO runs device calls queued under the lock. It must be called
// after every locked section that may queue I/O (Submit, fetch
// completions, the GC tick), with the lock released.
func (s *Server) flushIO() {
	for {
		s.mu.Lock()
		calls := s.pendingIO
		s.pendingIO = nil
		s.mu.Unlock()
		if len(calls) == 0 {
			return
		}
		for _, fn := range calls {
			fn()
		}
	}
}

// traceEvent records e when tracing is configured.
func (s *Server) traceEvent(e trace.Event) {
	if s.cfg.Trace != nil {
		s.cfg.Trace.Record(e)
	}
}

// complete delivers a response off-lock through the clock so that
// arbitrarily long hit chains cannot recurse.
func (s *Server) complete(done func(Response), resp Response) {
	if done == nil {
		return
	}
	resp.End = s.clock.Now()
	s.clock.Schedule(0, func() { done(resp) })
}

// completeFromMemory delivers a response served out of host memory,
// charging the host CPU cost of the delivery when the device models
// one. Device-path completions are charged by the device itself.
func (s *Server) completeFromMemory(length int64, done func(Response), resp Response) {
	if done == nil {
		return
	}
	if s.cpu == nil {
		s.complete(done, resp)
		return
	}
	s.cpu.ChargeRequest(length, func() {
		resp.End = s.clock.Now()
		done(resp)
	})
}

// Submit routes one client request (Figure 9): buffered set first,
// then the stream queues, then the classifier, and otherwise the
// direct path to the disks.
func (s *Server) Submit(req Request) error {
	if err := blockdev.CheckRequest(s.dev, req.Disk, req.Offset, req.Length); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return errors.New("core: server closed")
	}
	now := s.clock.Now()
	s.stats.Requests++
	if o := s.cfg.Obs; o != nil {
		o.requests.Inc()
	}

	// Degraded path: an open circuit fails the disk's requests fast
	// instead of queuing them behind a sick device, so client threads
	// (and the staging memory behind them) never pile up on it.
	if !s.breakerAllows(req.Disk, now) {
		s.stats.BreakerFastFails++
		if o := s.cfg.Obs; o != nil {
			o.breakerFastFails.Inc()
		}
		s.syncGauges()
		s.mu.Unlock()
		s.complete(req.Done, Response{Start: now, Direct: true, Err: ErrDiskDegraded})
		return nil
	}

	// Stream path: the request continues a classified stream.
	key := offKey{disk: req.Disk, off: req.Offset}
	if st := s.byExpected[key]; st != nil {
		s.acceptStreamRequest(st, req, now)
		s.armGC()
		s.syncGauges()
		s.mu.Unlock()
		s.flushIO()
		return nil
	}

	// Near-sequential path: a stream expecting a nearby offset absorbs
	// the request (skips count as consumed; overlaps re-read staged
	// data).
	if s.cfg.NearSeqWindow > 0 {
		if st := s.lookupNearSeq(req.Disk, req.Offset); st != nil {
			s.acceptNearSeq(st, req, now)
			s.armGC()
			s.syncGauges()
			s.mu.Unlock()
			s.flushIO()
			return nil
		}
	}

	// Classifier path: record the access; on detection, create the
	// stream and admit it to the candidate queue. The triggering
	// request itself is serviced directly (§4.1: requests are issued
	// directly to the disk until a stream is detected).
	if s.cls.observe(req.Disk, req.Offset, req.Length, now) {
		s.createStream(req, now)
	}
	s.directRead(req, now)
	s.armGC()
	s.syncGauges()
	s.mu.Unlock()
	s.flushIO()
	return nil
}

// acceptStreamRequest handles an in-order request of a known stream:
// serve from a ready buffer, or queue it for an in-flight/future
// fetch. Caller holds the lock.
func (s *Server) acceptStreamRequest(st *stream, req Request, now time.Duration) {
	// Advance the expected offset.
	delete(s.byExpected, offKey{disk: st.disk, off: st.nextClient})
	st.nextClient = req.Offset + req.Length
	s.byExpected[offKey{disk: st.disk, off: st.nextClient}] = st
	st.lastActive = now

	covered := false
	for _, b := range st.buffers {
		if !b.covers(req.Offset, req.Length) {
			continue
		}
		if b.ready {
			s.stats.BufferHits++
			if o := s.cfg.Obs; o != nil {
				o.bufferHits.Inc()
			}
			s.serveFromBuffer(st, b, pendingReq{off: req.Offset, length: req.Length, start: now, done: req.Done}, now)
			return
		}
		covered = true // an in-flight fetch will deliver it
		break
	}
	// If the range was fetched before but its buffer has since been
	// dropped (GC), rewind the fetch pointer so it is read again.
	if !covered && req.Offset < st.nextFetch {
		st.nextFetch = req.Offset
	}
	st.queue = append(st.queue, pendingReq{off: req.Offset, length: req.Length, start: now, done: req.Done})

	// A stream with waiting clients and nothing staged or queued for
	// dispatch re-enters the candidate queue (it may have been rotated
	// out with all buffers consumed).
	if !st.dispatched && !st.queued && s.eligible(st) {
		s.enqueueCandidate(st)
		s.pump()
	}
}

// lookupNearSeq returns the stream on disk whose expected offset is
// nearest to off within the configured window, or nil. Caller holds
// the lock.
func (s *Server) lookupNearSeq(disk int, off int64) *stream {
	var best *stream
	var bestDist int64
	for _, st := range s.streams {
		if st.disk != disk {
			continue
		}
		dist := off - st.nextClient
		if dist < 0 {
			dist = -dist
		}
		if dist > s.cfg.NearSeqWindow {
			continue
		}
		if best == nil || dist < bestDist {
			best, bestDist = st, dist
		}
	}
	return best
}

// acceptNearSeq folds a near-sequential request into a stream: a
// backward overlap is served from staged data (or directly) without
// moving the stream; a forward gap marks the skipped range consumed
// and advances the stream. Caller holds the lock.
func (s *Server) acceptNearSeq(st *stream, req Request, now time.Duration) {
	s.stats.NearSeqAccepted++
	if o := s.cfg.Obs; o != nil {
		o.nearSeqAccepted.Inc()
	}
	if req.Offset+req.Length <= st.nextClient {
		// Entirely behind the stream: a re-read. Serve staged data if
		// it is still resident; otherwise go directly to the disk.
		st.lastActive = now
		for _, b := range st.buffers {
			if b.ready && b.covers(req.Offset, req.Length) {
				s.stats.BufferHits++
				if o := s.cfg.Obs; o != nil {
					o.bufferHits.Inc()
				}
				s.serveFromBuffer(st, b,
					pendingReq{off: req.Offset, length: req.Length, start: now, done: req.Done}, now)
				return
			}
		}
		s.directRead(req, now)
		return
	}
	// Forward gap (or partial overlap): credit the skipped range to
	// the buffers that staged it, so they still free when the stream
	// moves past them.
	if gap := req.Offset - st.nextClient; gap > 0 {
		s.stats.BytesSkipped += gap
		for _, b := range append([]*buffer(nil), st.buffers...) {
			if b.start >= req.Offset || b.end <= st.nextClient {
				continue
			}
			covered := req.Offset
			if b.end < covered {
				covered = b.end
			}
			if mark := covered - b.start; mark > b.consumed {
				b.consumed = mark
			}
			if b.ready && b.consumed >= b.size() {
				s.freeBuffer(st, b, false)
			}
		}
	}
	s.acceptStreamRequest(st, req, now)
}

// eligible reports whether a stream may generate more disk requests:
// it has disk left and its staged-ahead window (the per-stream working
// set, §4.3) is below N·R beyond the client's position.
func (s *Server) eligible(st *stream) bool {
	if st.nextFetch >= s.dev.Capacity(st.disk) {
		return false
	}
	if s.diskBlocked(st.disk, s.clock.Now()) {
		// An open circuit keeps the stream out of the dispatch set; it
		// re-enters on the next client request after the disk recovers
		// (or is collected once it idles out).
		return false
	}
	ahead := st.nextFetch - st.nextClient
	return ahead < int64(s.cfg.RequestsPerStream)*s.cfg.ReadAhead
}

// serveFromBuffer completes one request from a ready buffer and frees
// the buffer once fully consumed. Consumption is a watermark relative
// to the buffer start, so duplicate or overlapping reads (near-
// sequential mode) never over-count. Caller holds the lock.
func (s *Server) serveFromBuffer(st *stream, b *buffer, p pendingReq, now time.Duration) {
	if mark := p.off + p.length - b.start; mark > b.consumed {
		b.consumed = mark
	}
	b.lastActive = now
	s.stats.BytesDelivered += p.length
	if o := s.cfg.Obs; o != nil {
		o.bytesDelivered.Add(p.length)
		o.requestLatency.Observe(now - p.start)
		o.span(st.id, st.disk, obs.StageDeliver, p.off, p.length)
	}
	s.traceEvent(trace.Event{Kind: trace.KindClient, Stream: st.id, Disk: st.disk, Offset: p.off,
		Length: p.length, Start: p.start, End: now, Hit: true})
	s.completeFromMemory(p.length, p.done, Response{
		Start:      p.start,
		Data:       b.slice(p.off, p.length),
		FromBuffer: true,
	})
	if b.consumed >= b.size() {
		s.freeBuffer(st, b, false)
		s.maybeRetire(st)
		s.pump()
	}
	// Consumption may have reopened the stream's working-set window.
	if !st.dispatched && !st.queued && s.eligible(st) {
		s.enqueueCandidate(st)
		s.pump()
	}
}

// directRead services a request through the non-sequential path. The
// device call itself is deferred to flushIO. Caller holds the lock.
func (s *Server) directRead(req Request, now time.Duration) {
	s.stats.DirectReads++
	if o := s.cfg.Obs; o != nil {
		o.directReads.Inc()
	}
	s.pendingIO = append(s.pendingIO, func() {
		err := s.dev.ReadAt(req.Disk, req.Offset, req.Length, func(data []byte, derr error) {
			s.mu.Lock()
			s.stats.BytesDelivered += req.Length
			end := s.clock.Now()
			if derr != nil {
				s.noteDiskFailure(req.Disk, end)
			} else {
				s.noteDiskSuccess(req.Disk)
			}
			if o := s.cfg.Obs; o != nil {
				o.bytesDelivered.Add(req.Length)
				o.requestLatency.Observe(end - now)
			}
			errMsg := ""
			if derr != nil {
				errMsg = derr.Error()
			}
			s.traceEvent(trace.Event{Kind: trace.KindDirect, Stream: trace.NoStream, Disk: req.Disk,
				Offset: req.Offset, Length: req.Length, Start: now, End: end, Err: errMsg})
			s.traceEvent(trace.Event{Kind: trace.KindClient, Stream: trace.NoStream, Disk: req.Disk,
				Offset: req.Offset, Length: req.Length, Start: now, End: end, Err: errMsg})
			s.mu.Unlock()
			s.complete(req.Done, Response{Start: now, Data: data, Direct: true, Err: derr})
		})
		if err != nil {
			// Validated at Submit; only a racing capacity change could
			// land here. Fail the request rather than wedging the
			// client.
			s.complete(req.Done, Response{Start: now, Direct: true, Err: err})
		}
	})
}

// createStream registers a new sequential stream whose next expected
// request follows req. Caller holds the lock.
func (s *Server) createStream(req Request, now time.Duration) {
	next := req.Offset + req.Length
	if next >= s.dev.Capacity(req.Disk) {
		return // detected at the very end of the disk: nothing to do
	}
	key := offKey{disk: req.Disk, off: next}
	if s.byExpected[key] != nil {
		return // an existing stream already expects this offset
	}
	st := &stream{
		id:         s.nextID,
		disk:       req.Disk,
		nextClient: next,
		nextFetch:  next,
		lastActive: now,
	}
	s.nextID++
	s.streams[st.id] = st
	s.byExpected[key] = st
	s.stats.StreamsDetected++
	if o := s.cfg.Obs; o != nil {
		o.streamsDetected.Inc()
		o.span(st.id, st.disk, obs.StageClassify, req.Offset, req.Length)
	}
	s.enqueueCandidate(st)
	s.pump()
}

func (s *Server) enqueueCandidate(st *stream) {
	st.queued = true
	s.candidates = append(s.candidates, st)
	s.cfg.Obs.span(st.id, st.disk, obs.StageEnqueue, st.nextFetch, 0)
}

// pump admits candidates into the dispatch set while D and M allow
// (§4.2). Caller holds the lock.
func (s *Server) pump() {
	if invariants.Enabled {
		defer s.checkInvariants()
	}
	for s.dispatched < s.cfg.DispatchSize && len(s.candidates) > 0 {
		if s.memUsed+s.cfg.ReadAhead > s.cfg.Memory {
			// Under memory pressure, reclaim the least-recently-used
			// idle staged buffer before giving up: candidates must not
			// starve behind prefetched data nobody is consuming.
			if !s.evictIdleBuffer() {
				return
			}
			continue
		}
		// Streams are detected in bursts (a disk's cache turns the
		// last detection reads into back-to-back hits), so plain FIFO
		// admission can hand every slot to one disk's streams and idle
		// the rest of the array. The dispatch set is therefore divided
		// fairly: each disk holds at most ceil(D/#disks) slots, and
		// among admittable candidates those on the least-loaded disk
		// win; the policy picks within that set (FIFO for the paper's
		// round-robin). Disks with an open circuit are excluded on both
		// sides: their candidates cannot be admitted, and they do not
		// count toward the fair share, so the healthy disks keep the
		// full dispatch set between them.
		now := s.clock.Now()
		ndisks := s.dev.Disks() - s.degradedDisks()
		if ndisks < 1 {
			ndisks = 1
		}
		maxPerDisk := (s.cfg.DispatchSize + ndisks - 1) / ndisks
		minLoad := -1
		for _, c := range s.candidates {
			if s.diskBlocked(c.disk, now) {
				continue
			}
			load := s.perDisk[c.disk]
			if load >= maxPerDisk {
				continue
			}
			if minLoad < 0 || load < minLoad {
				minLoad = load
			}
		}
		if minLoad < 0 {
			return // every candidate's disk is at its fair share (or blocked)
		}
		eligibleIdx := make([]int, 0, len(s.candidates))
		filtered := make([]*stream, 0, len(s.candidates))
		for i, c := range s.candidates {
			if s.perDisk[c.disk] == minLoad && !s.diskBlocked(c.disk, now) {
				eligibleIdx = append(eligibleIdx, i)
				filtered = append(filtered, c)
			}
		}
		pick := s.cfg.Policy.Next(filtered, s.lastOffset)
		if pick < 0 || pick >= len(filtered) {
			pick = 0
		}
		idx := eligibleIdx[pick]
		st := s.candidates[idx]
		s.candidates = append(s.candidates[:idx], s.candidates[idx+1:]...)
		st.queued = false
		if !s.eligible(st) {
			// Working-set full or disk exhausted: the stream re-enters
			// the queue when consumption advances (acceptStreamRequest)
			// or retires.
			s.maybeRetire(st)
			continue
		}
		st.dispatched = true
		st.issuedInResidency = 0
		s.dispatched++
		s.perDisk[st.disk]++
		s.cfg.Obs.span(st.id, st.disk, obs.StageDispatch, st.nextFetch, 0)
		s.issueFetch(st)
	}
}

// checkInvariants asserts the scheduler's state invariants when the
// `invariants` build tag is on (no-op otherwise): the §4.2 dispatch
// bound D, the §4.3 memory bound M (the runtime face of M ≥ D·R·N),
// and the consistency of the accounting the two bounds rely on. It is
// called from the dispatch path (pump), the completion path
// (onFetchDone), and the GC tick. Caller holds the lock.
func (s *Server) checkInvariants() {
	if !invariants.Enabled {
		return
	}
	invariants.Check(s.memUsed >= 0, "staged memory went negative: %d", s.memUsed)
	invariants.Check(s.memUsed <= s.cfg.Memory,
		"staged bytes %d exceed the memory bound M=%d (D=%d R=%d N=%d)",
		s.memUsed, s.cfg.Memory, s.cfg.DispatchSize, s.cfg.ReadAhead, s.cfg.RequestsPerStream)
	invariants.Check(s.dispatched >= 0 && s.dispatched <= s.cfg.DispatchSize,
		"dispatch set holds %d streams, bound D=%d", s.dispatched, s.cfg.DispatchSize)
	invariants.Check(s.bufCount >= 0, "live buffer count went negative: %d", s.bufCount)

	perDisk := 0
	for _, n := range s.perDisk {
		perDisk += n
	}
	invariants.Check(perDisk == s.dispatched,
		"per-disk dispatch counts sum to %d, dispatch set holds %d", perDisk, s.dispatched)

	var staged int64
	nbuf := 0
	ndispatched := 0
	for _, st := range s.streams {
		for _, b := range st.buffers {
			staged += b.size()
			nbuf++
		}
		if st.dispatched {
			ndispatched++
		}
		invariants.Check(!(st.dispatched && st.queued),
			"stream %d is both dispatched and queued as a candidate", st.id)
		invariants.Check(st.issuedInResidency <= s.cfg.RequestsPerStream,
			"stream %d issued %d fetches in one residency, bound N=%d",
			st.id, st.issuedInResidency, s.cfg.RequestsPerStream)
	}
	invariants.Check(staged == s.memUsed,
		"buffers hold %d bytes but accounting says %d", staged, s.memUsed)
	invariants.Check(nbuf == s.bufCount,
		"%d live buffers but accounting says %d", nbuf, s.bufCount)
	invariants.Check(ndispatched == s.dispatched,
		"%d streams marked dispatched but dispatch counter says %d", ndispatched, s.dispatched)

	for key, st := range s.byExpected {
		invariants.Check(key.disk == st.disk && key.off == st.nextClient,
			"stream %d indexed under (disk=%d, off=%d) but expects (disk=%d, off=%d)",
			st.id, key.disk, key.off, st.disk, st.nextClient)
	}
}

// evictIdleBuffer frees the least-recently-active staged buffer that
// is ready, has no waiter, and has been idle at least EvictIdle. It
// reports whether anything was freed. Caller holds the lock.
func (s *Server) evictIdleBuffer() bool {
	now := s.clock.Now()
	var victim *buffer
	var owner *stream
	for _, st := range s.streams {
		if st.fetchInFlight {
			continue
		}
		for _, b := range st.buffers {
			if !b.ready || now-b.lastActive < s.cfg.EvictIdle {
				continue
			}
			if hasWaiter(st, b) {
				continue
			}
			if victim == nil || b.lastActive < victim.lastActive {
				victim, owner = b, st
			}
		}
	}
	if victim == nil {
		return false
	}
	s.stats.BuffersEvicted++
	if o := s.cfg.Obs; o != nil {
		o.buffersEvicted.Inc()
		o.span(owner.id, victim.disk, obs.StageEvict, victim.start, victim.size())
	}
	s.traceEvent(trace.Event{Kind: trace.KindEvict, Stream: owner.id, Disk: victim.disk,
		Offset: victim.start, Length: victim.size(), Start: victim.issuedAt, End: now})
	s.freeBuffer(owner, victim, false)
	// Unconsumed data was dropped; a later request for it rewinds the
	// fetch pointer (acceptStreamRequest).
	return true
}

// hasWaiter reports whether any queued request of st falls inside b.
func hasWaiter(st *stream, b *buffer) bool {
	for _, p := range st.queue {
		if b.covers(p.off, p.length) {
			return true
		}
	}
	return false
}

// issueFetch generates one R-sized disk request for a dispatched
// stream. Caller holds the lock.
func (s *Server) issueFetch(st *stream) {
	capacity := s.dev.Capacity(st.disk)
	flen := s.cfg.ReadAhead
	if rem := capacity - st.nextFetch; flen > rem {
		flen = rem
	}
	if flen <= 0 {
		s.rotateOut(st)
		return
	}
	b := &buffer{
		disk:       st.disk,
		start:      st.nextFetch,
		end:        st.nextFetch + flen,
		lastActive: s.clock.Now(),
		issuedAt:   s.clock.Now(),
		owner:      st,
	}
	st.buffers = append(st.buffers, b)
	st.nextFetch = b.end
	st.fetchInFlight = true
	st.totalFetched += flen
	s.memUsed += flen
	if s.memUsed > s.stats.PeakMemory {
		s.stats.PeakMemory = s.memUsed
	}
	s.bufCount++
	s.updateAccounting()
	s.stats.Fetches++
	s.stats.BytesFetched += flen
	if o := s.cfg.Obs; o != nil {
		o.fetches.Inc()
		o.bytesFetched.Add(flen)
		o.span(st.id, st.disk, obs.StageFetch, b.start, flen)
	}

	// The device call runs off-lock (flushIO). The stream cannot issue
	// a second fetch meanwhile: fetchInFlight stays set until the
	// completion path clears it.
	s.armFetchDeadline(st, b)
	s.pendingIO = append(s.pendingIO, s.fetchCall(st, b))
}

// fetchCall builds the off-lock device call for a buffer's fetch (and
// its retries). Caller holds the lock.
func (s *Server) fetchCall(st *stream, b *buffer) func() {
	return func() {
		err := s.dev.ReadAt(st.disk, b.start, b.size(), func(data []byte, derr error) {
			s.onFetchDone(st, b, data, derr)
		})
		if err != nil {
			// Validated ranges make this unreachable in practice;
			// treat it as a failed fetch so waiters are not wedged.
			s.onFetchDone(st, b, nil, err)
		}
	}
}

// armFetchDeadline starts the FetchTimeout timer for a buffer's fetch,
// replacing any previous timer. Caller holds the lock.
func (s *Server) armFetchDeadline(st *stream, b *buffer) {
	if s.cfg.FetchTimeout <= 0 {
		return
	}
	if b.cancelTimeout != nil {
		b.cancelTimeout()
	}
	b.cancelTimeout = s.clock.Schedule(s.cfg.FetchTimeout, func() {
		s.onFetchTimeout(st, b)
	})
}

// onFetchTimeout fires when a fetch outlives FetchTimeout: the waiters
// covered by the buffer receive ErrFetchTimeout, the staged memory is
// reclaimed, and the stream leaves the dispatch set so the slot goes to
// a live stream. The late device completion, if it ever arrives, is
// dropped by the abandoned flag. The timeout counts as a device
// failure toward the disk's circuit.
func (s *Server) onFetchTimeout(st *stream, b *buffer) {
	s.mu.Lock()
	if b.ready || b.abandoned {
		s.mu.Unlock()
		return // completed (or already timed out) before the timer ran
	}
	b.abandoned = true
	b.cancelTimeout = nil
	st.fetchInFlight = false
	now := s.clock.Now()
	s.stats.FetchTimeouts++
	if o := s.cfg.Obs; o != nil {
		o.fetchTimeouts.Inc()
	}
	s.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: st.disk, Offset: b.start,
		Length: b.size(), Start: b.issuedAt, End: now, Err: ErrFetchTimeout.Error()})
	s.noteDiskFailure(st.disk, now)
	var failed []pendingReq
	st.queue, failed = splitCovered(st.queue, b)
	s.freeBuffer(st, b, false)
	s.parkStream(st)
	s.checkInvariants()
	s.syncGauges()
	s.mu.Unlock()
	for _, p := range failed {
		s.complete(p.done, Response{Start: p.start, Err: ErrFetchTimeout})
	}
	s.flushIO()
}

// scheduleRetry re-issues a transiently-failed fetch after exponential
// backoff (RetryBackoff doubling per attempt). The buffer stays live —
// memory accounted, waiters queued, fetchInFlight held — so the stream
// cannot double-fetch the range meanwhile. The FetchTimeout deadline
// is NOT re-armed: it bounds the whole fetch, retries included, and
// may fire mid-backoff. Caller holds the lock.
func (s *Server) scheduleRetry(st *stream, b *buffer) {
	s.stats.FetchRetries++
	if o := s.cfg.Obs; o != nil {
		o.fetchRetries.Inc()
	}
	backoff := s.cfg.RetryBackoff << (b.attempts - 1)
	s.clock.Schedule(backoff, func() {
		s.mu.Lock()
		if b.abandoned {
			s.mu.Unlock()
			return // timed out while backing off
		}
		s.pendingIO = append(s.pendingIO, s.fetchCall(st, b))
		s.mu.Unlock()
		s.flushIO()
	})
}

// onFetchDone is the completion path (§4.2). It gives priority to the
// issue path — the next fetch (or the next candidate stream) is issued
// before any pending client requests are completed — so the disks
// never idle behind client completions.
func (s *Server) onFetchDone(st *stream, b *buffer, data []byte, derr error) {
	s.mu.Lock()
	now := s.clock.Now()
	if b.abandoned {
		// The fetch already hit FetchTimeout: memory reclaimed, waiters
		// failed, stream parked. Drop the late completion.
		s.mu.Unlock()
		return
	}
	if derr != nil && b.attempts < s.cfg.FetchRetries && blockdev.IsTransient(derr) {
		// Transient device error with retry budget left: re-issue the
		// same fetch after backoff instead of failing its waiters. The
		// deadline timer stays armed across attempts.
		b.attempts++
		s.scheduleRetry(st, b)
		s.mu.Unlock()
		return
	}
	if b.cancelTimeout != nil {
		b.cancelTimeout()
		b.cancelTimeout = nil
	}
	b.ready = true
	b.data = data
	b.lastActive = now
	fetchErr := ""
	if derr != nil {
		fetchErr = derr.Error()
	}
	if o := s.cfg.Obs; o != nil {
		o.fetchLatency.Observe(now - b.issuedAt)
		o.span(st.id, st.disk, obs.StageStaged, b.start, b.size())
	}
	s.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: st.disk, Offset: b.start,
		Length: b.size(), Start: b.issuedAt, End: now, Err: fetchErr})
	st.fetchInFlight = false
	st.issuedInResidency++
	s.lastOffset[st.disk] = b.end

	if derr != nil {
		// Fail everything waiting on this buffer and drop it.
		s.noteDiskFailure(st.disk, now)
		var failed []pendingReq
		st.queue, failed = splitCovered(st.queue, b)
		s.freeBuffer(st, b, false)
		s.parkStream(st)
		s.checkInvariants()
		s.syncGauges()
		s.mu.Unlock()
		for _, p := range failed {
			s.complete(p.done, Response{Start: p.start, Err: derr})
		}
		s.flushIO()
		return
	}

	s.noteDiskSuccess(st.disk)

	// Issue path first.
	if st.dispatched {
		if st.issuedInResidency < s.cfg.RequestsPerStream &&
			st.nextFetch < s.dev.Capacity(st.disk) &&
			s.memUsed+s.cfg.ReadAhead <= s.cfg.Memory {
			s.issueFetch(st)
		} else {
			s.rotateOut(st)
		}
	}

	// Completion path: serve queued requests now covered by staged
	// data, in order.
	s.drainQueue(st, now)
	s.checkInvariants()
	s.syncGauges()
	s.mu.Unlock()
	s.flushIO()
}

// drainQueue serves the head of the stream queue while ready buffers
// cover it. Caller holds the lock.
func (s *Server) drainQueue(st *stream, now time.Duration) {
	for len(st.queue) > 0 {
		p := st.queue[0]
		var hit *buffer
		for _, b := range st.buffers {
			if b.ready && b.covers(p.off, p.length) {
				hit = b
				break
			}
		}
		if hit == nil {
			return
		}
		st.queue = st.queue[1:]
		s.stats.QueuedServed++
		if o := s.cfg.Obs; o != nil {
			o.queuedServed.Inc()
		}
		s.serveFromBuffer(st, hit, p, now)
	}
}

// splitCovered partitions queue into (kept, covered-by-b).
func splitCovered(queue []pendingReq, b *buffer) (kept, covered []pendingReq) {
	for _, p := range queue {
		if b.covers(p.off, p.length) {
			covered = append(covered, p)
		} else {
			kept = append(kept, p)
		}
	}
	return kept, covered
}

// rotateOut removes a stream from the dispatch set (§4.2: after N
// requests it is replaced by the next sequential stream) and re-queues
// it as a candidate when it still has work. Caller holds the lock.
func (s *Server) rotateOut(st *stream) {
	s.unDispatch(st)
	st.issuedInResidency = 0
	if !st.queued && s.eligible(st) {
		s.enqueueCandidate(st)
	}
	s.maybeRetire(st)
	s.pump()
}

// parkStream removes a stream whose fetch failed (or timed out) from
// the dispatch set without re-admitting it to the candidate queue:
// speculatively prefetching the next window of a stream that just lost
// its staged data — with nobody waiting — only burns a sick disk
// further. The stream re-enters on its next client request (or idles
// out and is collected). Caller holds the lock.
func (s *Server) parkStream(st *stream) {
	s.unDispatch(st)
	st.issuedInResidency = 0
	s.maybeRetire(st)
	s.pump()
}

// unDispatch releases a stream's dispatch slot. Caller holds the lock.
func (s *Server) unDispatch(st *stream) {
	if !st.dispatched {
		return
	}
	st.dispatched = false
	s.dispatched--
	if s.perDisk[st.disk] > 0 {
		s.perDisk[st.disk]--
	}
	// Rotation is worth a timeline entry: dispatch-set churn is the
	// §4.2 mechanism the paper's fairness argument rests on.
	if s.cfg.Obs != nil || s.cfg.Trace != nil {
		now := s.clock.Now()
		if o := s.cfg.Obs; o != nil {
			o.rotations.Inc()
			o.span(st.id, st.disk, obs.StageRotate, st.nextFetch, 0)
		}
		s.traceEvent(trace.Event{Kind: trace.KindRotate, Stream: st.id, Disk: st.disk,
			Offset: st.nextFetch, Start: now, End: now})
	}
}

// freeBuffer releases a staged buffer's memory. Caller holds the lock.
func (s *Server) freeBuffer(st *stream, b *buffer, gc bool) {
	for i, cur := range st.buffers {
		if cur == b {
			st.buffers = append(st.buffers[:i], st.buffers[i+1:]...)
			break
		}
	}
	s.memUsed -= b.size()
	s.bufCount--
	b.data = nil
	if gc {
		s.stats.BuffersGCed++
	} else {
		s.stats.BuffersFreed++
	}
	if o := s.cfg.Obs; o != nil {
		if gc {
			o.buffersGCed.Inc()
		} else {
			o.buffersFreed.Inc()
		}
	}
	s.updateAccounting()
}

// maybeRetire drops a stream that has prefetched to the end of its
// disk and holds no data or waiters. Caller holds the lock.
func (s *Server) maybeRetire(st *stream) {
	if st.dispatched || st.queued || st.fetchInFlight {
		return
	}
	if st.nextFetch < s.dev.Capacity(st.disk) {
		return
	}
	if len(st.buffers) > 0 || len(st.queue) > 0 {
		return
	}
	if _, ok := s.streams[st.id]; !ok {
		return
	}
	delete(s.streams, st.id)
	delete(s.byExpected, offKey{disk: st.disk, off: st.nextClient})
	s.stats.StreamsRetired++
	if o := s.cfg.Obs; o != nil {
		o.streamsRetired.Inc()
		o.span(st.id, st.disk, obs.StageRetire, st.nextClient, 0)
	}
}

func (s *Server) updateAccounting() {
	if s.acct != nil {
		s.acct.SetLiveBuffers(s.bufCount)
	}
}

// gcTick is the periodic garbage collector (§4.3): it frees staged
// buffers that have waited too long for their remaining requests, and
// removes streams (queues, hash entries) that were classified as
// sequential but went idle.
func (s *Server) gcTick() {
	s.mu.Lock()
	s.gcArmed = false
	if s.closed {
		s.mu.Unlock()
		return
	}
	now := s.clock.Now()
	if o := s.cfg.Obs; o != nil {
		o.gcTicks.Inc()
	}

	for id, st := range s.streams {
		// Streams with in-flight fetches or waiting clients are live by
		// definition: a waiter's data is either in flight or the stream
		// is queued/eligible, so it will be served.
		if st.fetchInFlight || len(st.queue) > 0 || st.dispatched {
			continue
		}
		// Free idle staged buffers (prefetched data nobody came back
		// for). The fetch pointer rewinds on a later request for the
		// dropped range (acceptStreamRequest).
		for _, b := range append([]*buffer(nil), st.buffers...) {
			if b.ready && now-b.lastActive > s.cfg.BufferTimeout {
				s.freeBuffer(st, b, true)
			}
		}
		// Drop idle streams entirely: queue, hash entry, candidacy.
		if now-st.lastActive > s.cfg.StreamTimeout {
			for _, b := range append([]*buffer(nil), st.buffers...) {
				s.freeBuffer(st, b, true)
			}
			if st.queued {
				for i, c := range s.candidates {
					if c == st {
						s.candidates = append(s.candidates[:i], s.candidates[i+1:]...)
						break
					}
				}
				st.queued = false
			}
			delete(s.streams, id)
			delete(s.byExpected, offKey{disk: st.disk, off: st.nextClient})
			s.stats.StreamsGCed++
			if o := s.cfg.Obs; o != nil {
				o.streamsGCed.Inc()
				o.span(st.id, st.disk, obs.StageGC, st.nextClient, 0)
			}
			s.traceEvent(trace.Event{Kind: trace.KindGC, Stream: st.id, Disk: st.disk,
				Offset: st.nextClient, Start: st.lastActive, End: now})
		}
	}
	s.stats.RegionsGCed += int64(s.cls.gc(now - s.cfg.StreamTimeout))
	s.pump()
	s.armGC()
	s.checkInvariants()
	s.syncGauges()
	s.mu.Unlock()
	s.flushIO()
}
