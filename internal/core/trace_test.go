package core

import (
	"bytes"
	"strings"
	"testing"

	"seqstream/internal/trace"
)

func TestServerTracing(t *testing.T) {
	tr, err := trace.New(4096)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.Trace = tr
	n := baseNode(t, cfg)

	const req = 64 << 10
	for i := 0; i < 24; i++ {
		n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
	}
	sum := tr.Summarize()
	if sum.Clients != 24 {
		t.Errorf("traced clients = %d, want 24", sum.Clients)
	}
	if sum.Fetches == 0 {
		t.Error("no fetch events traced")
	}
	if sum.Directs != n.server.Config().DetectThreshold {
		t.Errorf("traced directs = %d, want threshold %d", sum.Directs, n.server.Config().DetectThreshold)
	}
	if sum.ClientHit == 0 {
		t.Error("no staged hits traced")
	}
	if sum.Errors != 0 {
		t.Errorf("traced errors = %d", sum.Errors)
	}
	// Latencies must be non-negative and ordered sanely.
	for _, e := range tr.Snapshot() {
		if e.Latency() < 0 {
			t.Fatalf("negative latency: %+v", e)
		}
	}
	// Exports work end to end.
	var csvBuf, jsonBuf bytes.Buffer
	if err := tr.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteJSONL(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(csvBuf.String(), "fetch") {
		t.Error("csv export missing fetch rows")
	}
}

func TestServerTracingDisabledByDefault(t *testing.T) {
	n := baseNode(t, DefaultConfig(64<<20, 1<<20))
	// No tracer: nothing to assert beyond not panicking.
	n.do(t, Request{Disk: 0, Offset: 0, Length: 4096})
}
