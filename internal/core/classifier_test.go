package core

import (
	"testing"
	"time"
)

func classifierConfig() Config {
	cfg := DefaultConfig(64<<20, 1<<20)
	return cfg
}

func TestClassifierDetectsSequential(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	// Threshold is 4: the 4th consecutive block triggers detection.
	for i := int64(0); i < 3; i++ {
		if c.observe(0, i*bs, bs, 0) {
			t.Fatalf("detected after %d blocks, threshold is 4", i+1)
		}
	}
	if !c.observe(0, 3*bs, bs, 0) {
		t.Fatal("4th sequential block not detected")
	}
	// The region is promoted: further bits do not re-detect.
	if c.observe(0, 4*bs, bs, 0) {
		t.Error("promoted region re-detected")
	}
}

func TestClassifierScatteredNotDetected(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	regionSpan := bs * int64(cfg.RegionBlocks)
	// One access per region: never enough set bits anywhere.
	for i := int64(0); i < 100; i++ {
		if c.observe(0, i*regionSpan, bs, 0) {
			t.Fatal("scattered accesses detected as sequential")
		}
	}
	if c.regionCount() != 100 {
		t.Errorf("regions = %d, want 100", c.regionCount())
	}
}

func TestClassifierDuplicatesIgnored(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	// The same block over and over sets one bit; no detection (§4.1:
	// multiple requests to the same block are ignored).
	for i := 0; i < 20; i++ {
		if c.observe(0, 0, bs, 0) {
			t.Fatal("duplicate accesses detected as sequential")
		}
	}
}

func TestClassifierOutOfOrderWithinRegion(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	// Out-of-order but spatially close accesses still accumulate bits
	// (§4.1: only proximity matters, not order).
	order := []int64{3, 0, 2, 1}
	detected := false
	for _, b := range order {
		if c.observe(0, b*bs, bs, 0) {
			detected = true
		}
	}
	if !detected {
		t.Error("out-of-order proximate accesses not detected")
	}
}

func TestClassifierPerDiskIsolation(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	// Two disks interleaving the same offsets: each disk's region
	// accumulates independently.
	for i := int64(0); i < 3; i++ {
		c.observe(0, i*bs, bs, 0)
		c.observe(1, i*bs, bs, 0)
	}
	if !c.observe(0, 3*bs, bs, 0) {
		t.Error("disk 0 stream not detected")
	}
	if !c.observe(1, 3*bs, bs, 0) {
		t.Error("disk 1 stream not detected")
	}
}

func TestClassifierLargeRequestSpansBlocks(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	// One request spanning 4 blocks sets 4 bits at once (§4.1: if the
	// request spans more than one block, all bits are set).
	if !c.observe(0, 0, 4*bs, 0) {
		t.Error("multi-block request should trigger detection immediately")
	}
}

func TestClassifierGC(t *testing.T) {
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	c.observe(0, 0, bs, 0)
	c.observe(0, 100*bs*int64(cfg.RegionBlocks), bs, 5*time.Second)
	if c.regionCount() != 2 {
		t.Fatalf("regions = %d", c.regionCount())
	}
	freed := c.gc(time.Second)
	if freed != 1 || c.regionCount() != 1 {
		t.Errorf("gc freed %d, regions now %d; want 1/1", freed, c.regionCount())
	}
	if c.memoryBytes() <= 0 {
		t.Error("memoryBytes should be positive with a live region")
	}
}

func TestClassifierBitmapMemoryModest(t *testing.T) {
	// The design point of §4.1: dynamically allocated small bitmaps keep
	// memory proportional to the active footprint. 1000 streams touch
	// 1000 regions; each region is RegionBlocks bits.
	cfg := classifierConfig()
	c := newClassifier(cfg)
	bs := cfg.BlockSize
	span := bs * int64(cfg.RegionBlocks)
	for i := int64(0); i < 1000; i++ {
		c.observe(0, i*span, bs, 0)
	}
	perRegion := int64((cfg.RegionBlocks+63)/64) * 8
	if got := c.memoryBytes(); got != 1000*perRegion {
		t.Errorf("memoryBytes = %d, want %d", got, 1000*perRegion)
	}
	if c.memoryBytes() > 1<<20 {
		t.Errorf("bitmap memory %d exceeds 1MB for 1000 regions", c.memoryBytes())
	}
}

func TestPopcount(t *testing.T) {
	if popcount([]uint64{0}) != 0 {
		t.Error("popcount(0) != 0")
	}
	if popcount([]uint64{0xF, 0x3}) != 6 {
		t.Error("popcount mismatch")
	}
}

func TestDispatchPolicies(t *testing.T) {
	a := &stream{disk: 0, nextFetch: 100}
	b := &stream{disk: 0, nextFetch: 2000}
	c := &stream{disk: 1, nextFetch: 50}
	candidates := []*stream{a, b, c}

	if got := (RoundRobin{}).Next(candidates, nil); got != 0 {
		t.Errorf("RoundRobin.Next = %d, want 0", got)
	}

	last := map[int]int64{0: 1900}
	if got := (NearestOffset{}).Next(candidates, last); got != 1 {
		t.Errorf("NearestOffset.Next = %d, want 1 (offset 2000 nearest 1900)", got)
	}
	// With no head history the first candidate wins.
	if got := (NearestOffset{}).Next(candidates, map[int]int64{}); got != 0 {
		t.Errorf("NearestOffset with no history = %d, want 0", got)
	}
}
