package core

import (
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
)

// TestStatsRace hammers Submit from several goroutines while others
// poll every read-side accessor. It uses a real-time MemDevice (the
// sim engine is single-threaded by design) and exists to prove, under
// -race, that Stats/Snapshot/ActiveStreams/DispatchedStreams take a
// consistent view while the write path is hot.
func TestStatsRace(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 50*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(8<<20, 1<<20)
	srv, err := NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const (
		writers  = 4
		readers  = 4
		requests = 200
		req      = 64 << 10
	)
	var wg, pending sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			base := (int64(w) * dev.Capacity(0) / writers) &^ 511
			for i := 0; i < requests; i++ {
				pending.Add(1)
				err := srv.Submit(Request{
					Disk:   0,
					Offset: base + int64(i)*req,
					Length: req,
					Done:   func(Response) { pending.Done() },
				})
				if err != nil {
					pending.Done()
					t.Errorf("Submit: %v", err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := srv.Stats()
				if st.Requests < 0 || st.MemoryInUse < 0 {
					t.Error("negative stats")
					return
				}
				snap := srv.Snapshot()
				if snap.DispatchedStreams > cfg.DispatchSize {
					t.Errorf("dispatched %d > D=%d", snap.DispatchedStreams, cfg.DispatchSize)
					return
				}
				if snap.Stats.Requests < 0 {
					t.Error("negative snapshot counter")
					return
				}
				_ = srv.ActiveStreams()
				_ = srv.DispatchedStreams()
			}
		}()
	}

	pending.Wait()
	close(stop)
	wg.Wait()

	if got := srv.Stats().Requests; got != writers*requests {
		t.Errorf("requests = %d, want %d", got, writers*requests)
	}
}
