package core

import (
	"seqstream/internal/obs"
	"seqstream/internal/slo"
)

// Obs bundles the scheduler's instruments: one counter per Stats
// field, gauges for the live dispatch/memory state, latency histograms
// for the fetch and client-request paths, and an optional span log
// recording each stream's lifecycle. All instruments are atomic, so
// the hot path pays a handful of uncontended atomic adds per request;
// a nil *Obs in Config disables instrumentation entirely.
type Obs struct {
	requests         *obs.Counter
	directReads      *obs.Counter
	bufferHits       *obs.Counter
	queuedServed     *obs.Counter
	streamsDetected  *obs.Counter
	streamsRetired   *obs.Counter
	streamsGCed      *obs.Counter
	fetches          *obs.Counter
	bytesFetched     *obs.Counter
	bytesDelivered   *obs.Counter
	buffersFreed     *obs.Counter
	buffersGCed      *obs.Counter
	buffersEvicted   *obs.Counter
	nearSeqAccepted  *obs.Counter
	rotations        *obs.Counter
	gcTicks          *obs.Counter
	fetchRetries     *obs.Counter
	fetchTimeouts    *obs.Counter
	breakerTrips     *obs.Counter
	breakerFastFails *obs.Counter
	steeredFetches   *obs.Counter
	speculations     *obs.Counter
	specWins         *obs.Counter

	memoryInUse       *obs.Gauge
	peakMemory        *obs.Gauge
	liveBuffers       *obs.Gauge
	dispatchedStreams *obs.Gauge
	activeStreams     *obs.Gauge
	candidateQueue    *obs.Gauge
	degradedDisks     *obs.Gauge

	fetchLatency   *obs.Histogram
	requestLatency *obs.Histogram

	spans *obs.SpanLog

	// reg is retained so the server can register its sliding-window
	// families once the windows exist (they are built per server, with
	// the server's clock, unlike the cumulative instruments above).
	reg *obs.Registry
}

// NewObs registers the scheduler's metric families on reg and attaches
// an optional span log (nil disables span recording). Registration is
// idempotent: repeated servers over one registry share families.
func NewObs(reg *obs.Registry, spans *obs.SpanLog) *Obs {
	return &Obs{
		requests:         reg.Counter("seqstream_core_requests_total", "client requests submitted"),
		directReads:      reg.Counter("seqstream_core_direct_reads_total", "requests serviced on the direct (non-sequential) path"),
		bufferHits:       reg.Counter("seqstream_core_buffer_hits_total", "requests served immediately from a staged buffer"),
		queuedServed:     reg.Counter("seqstream_core_queued_served_total", "requests served from a fetch they waited on"),
		streamsDetected:  reg.Counter("seqstream_core_streams_detected_total", "sequential streams detected by the classifier"),
		streamsRetired:   reg.Counter("seqstream_core_streams_retired_total", "streams that reached end of disk"),
		streamsGCed:      reg.Counter("seqstream_core_streams_gced_total", "idle streams removed by the garbage collector"),
		fetches:          reg.Counter("seqstream_core_fetches_total", "read-ahead disk requests issued"),
		bytesFetched:     reg.Counter("seqstream_core_fetched_bytes_total", "bytes of read-ahead issued to disks"),
		bytesDelivered:   reg.Counter("seqstream_core_delivered_bytes_total", "bytes delivered to clients"),
		buffersFreed:     reg.Counter("seqstream_core_buffers_freed_total", "staged buffers freed after full consumption"),
		buffersGCed:      reg.Counter("seqstream_core_buffers_gced_total", "staged buffers freed by the garbage collector"),
		buffersEvicted:   reg.Counter("seqstream_core_buffers_evicted_total", "staged buffers reclaimed under memory pressure"),
		nearSeqAccepted:  reg.Counter("seqstream_core_nearseq_accepted_total", "requests folded into a stream by proximity"),
		rotations:        reg.Counter("seqstream_core_rotations_total", "streams rotated out of the dispatch set"),
		gcTicks:          reg.Counter("seqstream_core_gc_ticks_total", "garbage collector sweeps"),
		fetchRetries:     reg.Counter("seqstream_core_fetch_retries_total", "fetches re-issued after transient device errors"),
		fetchTimeouts:    reg.Counter("seqstream_core_fetch_timeouts_total", "fetches failed by the fetch deadline"),
		breakerTrips:     reg.Counter("seqstream_core_breaker_trips_total", "per-disk circuits opened"),
		breakerFastFails: reg.Counter("seqstream_core_breaker_fast_fails_total", "requests failed fast by an open circuit"),
		steeredFetches:   reg.Counter("seqstream_core_steered_fetches_total", "fetches routed to a replica instead of the primary"),
		speculations:     reg.Counter("seqstream_core_speculations_total", "duplicate fetches issued on a replica for a slow leg"),
		specWins:         reg.Counter("seqstream_core_spec_wins_total", "speculative legs that completed first and delivered"),

		memoryInUse:       reg.Gauge("seqstream_core_memory_in_use_bytes", "bytes held in staging buffers"),
		peakMemory:        reg.Gauge("seqstream_core_peak_memory_bytes", "high-water mark of staged bytes"),
		liveBuffers:       reg.Gauge("seqstream_core_live_buffers", "staged or in-flight buffers"),
		dispatchedStreams: reg.Gauge("seqstream_core_dispatched_streams", "streams in the dispatch set (bounded by D)"),
		activeStreams:     reg.Gauge("seqstream_core_active_streams", "classified streams"),
		candidateQueue:    reg.Gauge("seqstream_core_candidate_queue_depth", "streams waiting for a dispatch slot"),
		degradedDisks:     reg.Gauge("seqstream_core_degraded_disks", "disks with an open circuit breaker"),

		fetchLatency:   reg.Histogram("seqstream_core_fetch_latency_seconds", "read-ahead disk request latency"),
		requestLatency: reg.Histogram("seqstream_core_request_latency_seconds", "client request service latency"),

		spans: spans,
		reg:   reg,
	}
}

// registerSLO exposes the SLO ledger's node-wide SLIs as registry
// families: cumulative verdict counters plus the fast lateness window,
// all via GaugeFunc — the ledger's state lives in per-disk scoring
// shards (the authoritative atomics and windows), so the registry
// merges them at scrape time rather than double-counting. The window
// cannot register as a live histogram family for the same reason:
// there is no node-wide *WindowedHistogram anymore, only the merged
// snapshot. Re-registration rebinds to the newest server's ledger,
// mirroring registerWindows.
func (o *Obs) registerSLO(l *slo.Ledger) {
	o.reg.GaugeFunc("seqstream_core_slo_on_time_total", "deliveries scored on time against their SLO deadline",
		func() float64 { v, _, _ := l.Totals(); return float64(v) })
	o.reg.GaugeFunc("seqstream_core_slo_late_total", "deliveries past their SLO deadline but within the miss boundary",
		func() float64 { _, v, _ := l.Totals(); return float64(v) })
	o.reg.GaugeFunc("seqstream_core_slo_missed_total", "deliveries past the SLO miss boundary or failed outright",
		func() float64 { _, _, v := l.Totals(); return float64(v) })
	o.reg.GaugeFunc("seqstream_core_slo_fast_window_deliveries", "deliveries scored in the fast burn window",
		func() float64 { return float64(l.FastSnapshot().Count) })
	o.reg.GaugeFunc("seqstream_core_slo_fast_window_violations", "late or missed deliveries in the fast burn window",
		func() float64 {
			s := l.FastSnapshot()
			if v := s.Count - s.Buckets[0]; v > 0 {
				return float64(v)
			}
			return 0
		})
	o.reg.GaugeFunc("seqstream_core_slo_fast_window_p99_lateness_seconds", "p99 delivery lateness past the SLO deadline in the fast burn window (0 = on time)",
		func() float64 {
			s := l.FastSnapshot()
			if s.Count == 0 {
				return 0
			}
			return s.Quantile(0.99).Seconds()
		})
}

// registerWindows exposes the node-wide sliding windows as registry
// families (per-disk windows stay on /debug/health — one family per
// disk would explode the scrape). Re-registration rebinds the family
// to the newest server's windows, mirroring GaugeFunc.
func (o *Obs) registerWindows(win *LatencyWindows) {
	o.reg.Window("seqstream_core_request_latency_window_seconds",
		"client request service latency over the sliding window", win.request)
	o.reg.Window("seqstream_core_fetch_latency_window_seconds",
		"read-ahead disk request latency over the sliding window", win.fetch)
}

// Spans returns the attached span log, or nil.
func (o *Obs) Spans() *obs.SpanLog {
	if o == nil {
		return nil
	}
	return o.spans
}

// span records one lifecycle stage when a span log is attached. Safe
// on a nil receiver so call sites need no double guard.
func (o *Obs) span(stream, disk int, stage obs.Stage, off, length int64) {
	if o == nil || o.spans == nil {
		return
	}
	o.spans.Record(stream, disk, stage, off, length)
}

// syncGauges publishes the scheduler's live state to the gauge
// families. The values are the node-wide ones — the server's atomic
// accounting — so every shard publishes the same global view and the
// gauges never show one shard's slice. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) syncGauges() {
	o := sh.srv.cfg.Obs
	if o == nil {
		return
	}
	srv := sh.srv
	o.memoryInUse.Set(srv.memUsed.Load())
	o.peakMemory.Set(srv.peakMem.Load())
	o.liveBuffers.Set(srv.bufCount.Load())
	o.dispatchedStreams.Set(srv.dispatched.Load())
	o.activeStreams.Set(srv.liveStreams.Load())
	o.candidateQueue.Set(srv.liveCands.Load())
	o.degradedDisks.Set(srv.degraded.Load())
}
