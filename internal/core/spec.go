package core

import (
	"time"

	"seqstream/internal/bufpool"
	"seqstream/internal/flight"
	"seqstream/internal/obs"
	"seqstream/internal/trace"
)

// This file is the straggler-aware dispatch layer: when Config.Replicas
// mirrors stream regions across R disks, fetches can be steered away
// from a slow-but-alive primary (pickFetchDisk) and a fetch that
// overstays its disk's windowed latency quantile can be re-issued
// speculatively on a replica (armSpeculation → onSpecTimer), with the
// first completion winning. Both mechanisms consume the sliding-window
// telemetry (LatencyWindows) and the lock-free breaker mirror
// (Server.diskDown); neither touches another shard's lock inline.

// specFetch is one speculative duplicate of a buffer's fetch, issued
// on a replica of the buffer's disk while the primary leg is still
// outstanding.
type specFetch struct {
	// disk is the replica the duplicate was issued to.
	disk int
	// pbuf is the duplicate's own pooled staging memory, deliberately
	// not accounted against M (like the direct path's transient
	// buffers): a speculation is a bounded, short-lived duplicate, and
	// charging it would let a slow disk shrink the staging budget the
	// healthy disks are using. On a win it swaps into the buffer; the
	// loser leg's bytes are recycled when its late completion arrives.
	pbuf     *bufpool.Buf
	issuedAt time.Duration
	// done marks the spec completion's arrival (win or lose).
	done bool
	// won marks that the spec leg delivered the buffer; the late
	// primary completion then only recycles the pooled bytes stashed
	// back in pbuf and drops its result.
	won bool
}

// replicaSet returns primary's replica set ([primary, mirrors...]),
// or nil when replication is off or the disk is out of range.
func (s *Server) replicaSet(primary int) []int {
	if s.replicas == nil || primary < 0 || primary >= len(s.replicas) {
		return nil
	}
	return s.replicas[primary]
}

// diskDownFast reports the lock-free mirror of disk's breaker-open
// state. False when replication is off (the mirror only exists then)
// or the disk is out of range.
func (s *Server) diskDownFast(disk int) bool {
	if s.diskDown == nil || disk < 0 || disk >= len(s.diskDown) {
		return false
	}
	return s.diskDown[disk].Load()
}

// Replicas returns disk's replica set (primary first), or nil when
// replication is off.
func (s *Server) Replicas(disk int) []int {
	set := s.replicaSet(disk)
	if set == nil {
		return nil
	}
	return append([]int(nil), set...)
}

// pickFetchDisk chooses the disk a dispatched stream's next fetch goes
// to: the primary, unless the primary's circuit is open or its seeded
// fetch EWMA exceeds SteerFactor times the fastest seeded healthy
// replica's. Unseeded replicas are never ranked — an unseeded EWMA
// reads zero, which would make an idle disk look infinitely fast —
// they only serve as a last resort when the primary is down. Every
// 16th pick probes the primary regardless of rank so its EWMA keeps
// tracking reality and recovery is noticed. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) pickFetchDisk(primary int) int {
	srv := sh.srv
	set := srv.replicaSet(primary)
	if len(set) < 2 || srv.cfg.SteerFactor <= 0 || srv.win == nil {
		return primary
	}
	primaryDown := srv.diskDownFast(primary)
	if !primaryDown {
		sh.steerTick++
		if sh.steerTick&0xf == 0 {
			return primary
		}
		if !srv.win.DiskEWMASeeded(primary) {
			return primary
		}
		// A primary below the EWMA floor is healthy however it ranks:
		// sub-floor disparities are device jitter, not straggling, and
		// steering on them costs cross-disk locality for nothing.
		if srv.win.DiskEWMA(primary) <= srv.cfg.SteerMinEwma {
			return primary
		}
	}
	best, fallback := -1, -1
	var bestEwma time.Duration
	for _, d := range set[1:] {
		if srv.diskDownFast(d) {
			continue
		}
		if fallback < 0 {
			fallback = d
		}
		if !srv.win.DiskEWMASeeded(d) {
			continue
		}
		if e := srv.win.DiskEWMA(d); best < 0 || e < bestEwma {
			best, bestEwma = d, e
		}
	}
	if primaryDown {
		if best >= 0 {
			return best
		}
		if fallback >= 0 {
			return fallback
		}
		return primary
	}
	if best < 0 {
		return primary
	}
	if float64(srv.win.DiskEWMA(primary)) <= srv.cfg.SteerFactor*float64(bestEwma) {
		return primary
	}
	return best
}

// steerBaseline returns the minimum seeded fetch EWMA among the
// candidate queue's disks — the reference the soft deprioritization in
// pump compares against — or zero when steering is off or nothing is
// seeded. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) steerBaseline() time.Duration {
	srv := sh.srv
	if srv.cfg.SteerFactor <= 0 || srv.win == nil {
		return 0
	}
	var base time.Duration
	for _, c := range sh.candidates {
		if !srv.win.DiskEWMASeeded(c.disk) {
			continue
		}
		if e := srv.win.DiskEWMA(c.disk); base == 0 || e < base {
			base = e
		}
	}
	return base
}

// diskSlow reports whether disk's seeded fetch EWMA exceeds
// SteerFactor times the baseline — the soft analog of diskBlocked the
// admission loop uses to deprioritize slow-but-alive disks. Unseeded
// disks are never slow (satellite of the unseeded-reads-zero fix),
// and neither is any disk below the SteerMinEwma floor.
func (sh *shard) diskSlow(disk int, baseline time.Duration) bool {
	srv := sh.srv
	if baseline <= 0 || !srv.win.DiskEWMASeeded(disk) {
		return false
	}
	e := srv.win.DiskEWMA(disk)
	if e <= srv.cfg.SteerMinEwma {
		return false
	}
	return float64(e) > srv.cfg.SteerFactor*float64(baseline)
}

// armSpeculation schedules the speculative-trigger timer for a fetch
// just issued on b.readDisk: if the fetch is still outstanding after
// the disk's windowed SpecQuantile latency (floored at SpecMinDelay),
// a duplicate is issued on a replica. No timer is armed before the
// disk's window holds SpecMinSamples fetches — quantiles of a handful
// of samples fire spuriously — or when the quantile estimate is
// unbounded (every sample in the overflow bucket). Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) armSpeculation(st *stream, b *buffer) {
	srv := sh.srv
	if srv.cfg.SpecQuantile <= 0 || srv.win == nil || len(srv.replicaSet(b.disk)) < 2 {
		return
	}
	if srv.win.DiskEWMA(b.readDisk) <= srv.cfg.SteerMinEwma {
		// Same floor as steering: a disk whose fetches complete below
		// SteerMinEwma cannot meaningfully straggle mid-flight, and the
		// per-fetch arm-then-cancel timer is the dominant cost of
		// speculation on a healthy fleet. A disk that does slow down
		// lifts its EWMA past the floor within a few samples and
		// arming resumes.
		return
	}
	s := srv.win.DiskFetch(b.readDisk)
	if s.Count < int64(srv.cfg.SpecMinSamples) {
		return
	}
	delay := s.Quantile(srv.cfg.SpecQuantile)
	if delay < srv.cfg.SpecMinDelay {
		delay = srv.cfg.SpecMinDelay
	}
	if delay > srv.cfg.WindowSpan {
		// An upper bound beyond the whole window is no estimate at all
		// (overflow bucket); the fetch deadline covers pathology.
		return
	}
	b.specCancel = srv.clock.Schedule(delay, func() {
		sh.onSpecTimer(st, b)
	})
}

// onSpecTimer fires when a fetch has been outstanding past its disk's
// latency quantile: issue the duplicate on the best replica. The timer
// races the completion path, so every terminal state re-checks under
// the lock.
func (sh *shard) onSpecTimer(st *stream, b *buffer) {
	srv := sh.srv
	sh.mu.Lock()
	b.specCancel = nil
	if b.ready || b.abandoned || b.spec != nil || sh.closed {
		sh.mu.Unlock()
		return
	}
	disk := sh.pickSpecDisk(b)
	if disk < 0 {
		sh.mu.Unlock()
		return
	}
	now := srv.clock.Now()
	sp := &specFetch{disk: disk, issuedAt: now}
	if srv.rinto != nil {
		sp.pbuf = srv.pool.Get(b.size())
	}
	b.spec = sp
	sh.stats.Speculations++
	if o := srv.cfg.Obs; o != nil {
		o.speculations.Inc()
	}
	// Disk is the slow leg's disk and Dur how long it had been
	// outstanding when the duplicate was armed — the detector-facing
	// half of the record; OpSpecWin carries the replica side.
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpSpeculate, Disk: uint16(b.readDisk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - b.issuedAt})
	}
	sh.pendingIO = append(sh.pendingIO, sh.specCall(st, b, sp))
	sh.mu.Unlock()
	sh.flush()
}

// pickSpecDisk chooses the replica a speculative duplicate goes to:
// the fastest seeded healthy member of the buffer's replica set other
// than the disk the slow leg is on, falling back to any healthy member
// when none is seeded, or -1 when no replica qualifies. Caller holds
// sh.mu.
//
//lint:holds mu
func (sh *shard) pickSpecDisk(b *buffer) int {
	srv := sh.srv
	best, fallback := -1, -1
	var bestEwma time.Duration
	for _, d := range srv.replicaSet(b.disk) {
		if d == b.readDisk || srv.diskDownFast(d) {
			continue
		}
		if !srv.win.DiskEWMASeeded(d) {
			if fallback < 0 {
				fallback = d
			}
			continue
		}
		if e := srv.win.DiskEWMA(d); best < 0 || e < bestEwma {
			best, bestEwma = d, e
		}
	}
	if best >= 0 {
		return best
	}
	return fallback
}

// specCall builds the off-lock device call for a speculative leg,
// mirroring fetchCall. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) specCall(st *stream, b *buffer, sp *specFetch) func() {
	srv := sh.srv
	// Captured under the lock, like fetchCall's: sp.pbuf is repointed
	// at the primary's stashed bytes when this leg wins, and the
	// device write must keep targeting the duplicate's own memory.
	pb := sp.pbuf
	return func() {
		var err error
		if pb != nil {
			err = srv.rinto.ReadInto(sp.disk, b.start, b.size(), pb.Data, func(data []byte, derr error) {
				sh.onSpecDone(st, b, sp, data, derr)
			})
		} else {
			err = srv.dev.ReadAt(sp.disk, b.start, b.size(), func(data []byte, derr error) {
				sh.onSpecDone(st, b, sp, data, derr)
			})
		}
		if err != nil {
			sh.onSpecDone(st, b, sp, nil, err)
		}
	}
}

// onSpecDone is the speculative leg's completion. Outcomes:
//
//   - the primary already delivered (or the buffer timed out): the
//     spec lost — recycle its memory, note the outcome on its disk;
//   - the spec failed while the primary is still in flight: drop it,
//     the primary decides the buffer's fate;
//   - the spec failed after the primary failed terminally: both legs
//     are dead — fail the waiters exactly like a plain fetch error;
//   - the spec succeeded first: it wins — its pooled bytes become the
//     staged data, the primary's bytes are stashed in the spec record
//     when its device call is still writing into them (the late
//     completion recycles them; see onFetchDone) or recycled now.
func (sh *shard) onSpecDone(st *stream, b *buffer, sp *specFetch, data []byte, derr error) {
	srv := sh.srv
	sh.mu.Lock()
	sp.done = true
	now := srv.clock.Now()
	if b.spec != sp || b.ready || b.abandoned {
		// Lost (or the buffer is gone): the device is finished with the
		// duplicate's memory, recycle it.
		sp.pbuf.Release()
		sp.pbuf = nil
		if b.spec == sp {
			b.spec = nil
		}
		sh.noteReadOutcome(sp.disk, derr == nil, now)
		sh.mu.Unlock()
		sh.flush()
		return
	}
	if derr != nil {
		sp.pbuf.Release()
		sp.pbuf = nil
		b.spec = nil
		sh.noteReadOutcome(sp.disk, false, now)
		if !b.primaryFailed {
			// The primary leg is still in flight; it decides.
			sh.mu.Unlock()
			sh.flush()
			return
		}
		// Both legs failed terminally: fail the waiters like the plain
		// error path in onFetchDone.
		if b.cancelTimeout != nil {
			b.cancelTimeout()
			b.cancelTimeout = nil
		}
		st.fetchInFlight = false
		srv.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: sp.disk, Offset: b.start,
			Length: b.size(), Start: sp.issuedAt, End: now, Err: derr.Error()})
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpFetchErr, Err: flight.ErrIO, Disk: uint16(sp.disk),
				Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - sp.issuedAt})
		}
		var failed []pendingReq
		st.queue, failed = splitCovered(st.queue, b)
		sh.freeBuffer(st, b, false)
		sh.parkStream(st)
		sh.checkInvariants()
		sh.syncGauges()
		sh.mu.Unlock()
		for _, p := range failed {
			srv.complete(p.done, Response{Start: p.start, Err: derr})
		}
		sh.flush()
		return
	}

	// The spec leg wins.
	sp.won = true
	if b.cancelTimeout != nil {
		b.cancelTimeout()
		b.cancelTimeout = nil
	}
	winBuf := sp.pbuf
	if b.inDevice {
		// The primary's device call may still be writing into its pooled
		// bytes; stash them in the spec record for the late completion to
		// recycle (onFetchDone's won check).
		sp.pbuf = b.pbuf
	} else {
		// Primary not in the device: it is in retry backoff (the retry
		// closure drops on b.ready) or failed terminally (bytes already
		// recycled). Its memory is safe to recycle now.
		if b.pbuf != nil {
			b.pbuf.Release()
		}
		sp.pbuf = nil
		b.spec = nil
	}
	b.pbuf = winBuf
	b.ready = true
	b.data = data
	if data == nil && b.pbuf != nil {
		// Simulation-style backend: no bytes were materialized.
		b.pbuf.Release()
		b.pbuf = nil
	}
	b.lastActive = now
	st.fetchInFlight = false
	st.issuedInResidency++
	sh.lastOffset[st.disk] = b.end
	sh.stats.SpecWins++
	if o := srv.cfg.Obs; o != nil {
		o.specWins.Inc()
		o.fetchLatency.Observe(now - sp.issuedAt)
		o.span(st.id, st.disk, obs.StageStaged, b.start, b.size())
	}
	if w := srv.win; w != nil {
		w.observeFetch(sp.disk, now-sp.issuedAt)
	}
	srv.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: sp.disk, Offset: b.start,
		Length: b.size(), Start: sp.issuedAt, End: now})
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpSpecWin, Disk: uint16(sp.disk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - sp.issuedAt})
		// The staged event closes the fetch→staged timeline on the
		// replica, so the health detectors see the latency the stream
		// actually experienced rather than a dangling slow fetch.
		sh.fr.Record(flight.Event{Op: flight.OpStaged, Disk: uint16(sp.disk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - sp.issuedAt})
	}
	sh.noteReadOutcome(sp.disk, true, now)

	// Same order as onFetchDone: issue path first, then the waiters.
	if st.dispatched {
		if st.issuedInResidency < srv.cfg.RequestsPerStream &&
			st.nextFetch < srv.dev.Capacity(st.disk) &&
			srv.memWouldFit(srv.cfg.ReadAhead) {
			sh.issueFetch(st)
		} else {
			sh.rotateOut(st)
		}
	}
	sh.drainQueue(st, now)
	sh.checkInvariants()
	sh.syncGauges()
	sh.mu.Unlock()
	sh.flush()
}

// noteReadOutcome books a device read's success or failure with the
// breaker of the disk that served it. Steered and speculative reads
// can land on disks owned by other shards; their outcome is routed to
// the owning shard through the clock — never by taking a second shard
// lock inline, per the one-lock rule. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) noteReadOutcome(disk int, ok bool, now time.Duration) {
	owner := sh.srv.shardFor(disk)
	if owner == sh {
		if ok {
			sh.noteDiskSuccess(disk)
		} else {
			sh.noteDiskFailure(disk, now)
		}
		return
	}
	sh.srv.clock.Schedule(0, func() {
		owner.mu.Lock()
		if owner.closed {
			owner.mu.Unlock()
			return
		}
		if ok {
			owner.noteDiskSuccess(disk)
		} else {
			owner.noteDiskFailure(disk, owner.srv.clock.Now())
		}
		owner.syncGauges()
		owner.mu.Unlock()
	})
}
