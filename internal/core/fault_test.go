package core

import (
	"errors"
	"testing"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// faultNode builds a node whose device fails every Nth read.
func faultNode(t *testing.T, every int64, cfg Config) (*testNode, *blockdev.FaultDevice) {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	simDev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	fdev, err := blockdev.NewFaultDevice(simDev, every)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewSimClock(eng)
	srv, err := NewServer(fdev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return &testNode{eng: eng, host: host, dev: simDev, clock: clock, server: srv}, fdev
}

func TestFaultDeviceValidation(t *testing.T) {
	if _, err := blockdev.NewFaultDevice(nil, 2); err == nil {
		t.Error("nil inner accepted")
	}
	eng := sim.NewEngine()
	host, _ := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	dev, _ := blockdev.NewSimDevice(host)
	if _, err := blockdev.NewFaultDevice(dev, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestDirectReadErrorPropagates(t *testing.T) {
	n, fdev := faultNode(t, 1, DefaultConfig(64<<20, 1<<20))
	r := n.do(t, Request{Disk: 0, Offset: 0, Length: 4096})
	if !errors.Is(r.Err, blockdev.ErrInjected) {
		t.Errorf("err = %v, want ErrInjected", r.Err)
	}
	if fdev.Faults() == 0 {
		t.Error("no faults recorded")
	}
}

func TestFetchErrorFailsWaitersAndRecovers(t *testing.T) {
	// Fault every 5th read: detection reads and some fetches fail, but
	// every submitted request must complete exactly once and the node
	// must keep serving afterwards.
	n, fdev := faultNode(t, 5, DefaultConfig(64<<20, 1<<20))
	const req = 64 << 10
	completions := 0
	failures := 0
	for i := 0; i < 64; i++ {
		r := n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
		completions++
		if r.Err != nil {
			failures++
		}
	}
	if completions != 64 {
		t.Fatalf("completions = %d", completions)
	}
	if failures == 0 {
		t.Error("expected some failures with fault injection on")
	}
	if failures == 64 {
		t.Error("every request failed; recovery broken")
	}

	// Stop faulting: the node must return to full health.
	fdev.StopFaulting()
	healthy := 0
	for i := 64; i < 96; i++ {
		r := n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
		if r.Err == nil {
			healthy++
		}
	}
	if healthy != 32 {
		t.Errorf("healthy completions after recovery = %d/32", healthy)
	}
	// No leaked memory from failed fetches.
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if st := n.server.Stats(); st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after failures", st.MemoryInUse)
	}
}

func TestHeavyFaultsNeverWedgeDispatch(t *testing.T) {
	// Fault every 2nd read under many streams: the dispatch set must
	// keep cycling (failed fetches free their slots).
	n, _ := faultNode(t, 2, DefaultConfig(64<<20, 512<<10))
	const req = 64 << 10
	spacing := n.dev.Capacity(0) / 10
	spacing -= spacing % 512
	completed := 0
	for s := 0; s < 10; s++ {
		for i := 0; i < 8; i++ {
			n.do(t, Request{Disk: 0, Offset: int64(s)*spacing + int64(i)*req, Length: req})
			completed++
		}
	}
	if completed != 80 {
		t.Fatalf("completed = %d", completed)
	}
	if n.server.DispatchedStreams() < 0 {
		t.Error("dispatch accounting corrupted")
	}
}
