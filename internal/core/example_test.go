package core_test

import (
	"fmt"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

// Example builds a simulated storage node, streams 8 MB sequentially
// through the scheduler, and shows that after detection the requests
// are served from staged read-ahead rather than the disk.
func Example() {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		fmt.Println(err)
		return
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		fmt.Println(err)
		return
	}
	// M = 64 MB of staging, R = 1 MB read-ahead, N = 1, D derived.
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), core.DefaultConfig(64<<20, 1<<20))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer node.Close()

	const reqSize = 64 << 10
	const requests = 128
	staged := 0
	done := 0
	var issue func(i int)
	issue = func(i int) {
		if i >= requests {
			return
		}
		node.Submit(core.Request{
			Disk: 0, Offset: int64(i) * reqSize, Length: reqSize,
			Done: func(r core.Response) {
				if r.FromBuffer {
					staged++
				}
				done++
				issue(i + 1)
			},
		})
	}
	issue(0)
	if err := eng.RunWhile(func() bool { return done < requests }); err != nil {
		fmt.Println(err)
		return
	}
	st := node.Stats()
	fmt.Printf("completed %d requests: %d from staged read-ahead, %d detected stream(s)\n",
		done, staged, st.StreamsDetected)
	fmt.Printf("disk requests issued: %d (vs %d client requests)\n",
		st.Fetches+st.DirectReads, requests)
	// Output:
	// completed 128 requests: 124 from staged read-ahead, 1 detected stream(s)
	// disk requests issued: 13 (vs 128 client requests)
}
