package core

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

type ingestNode struct {
	eng  *sim.Engine
	host *iostack.Host
	dev  *blockdev.SimDevice
	ing  *Ingest
}

func newIngestNode(t *testing.T, cfg IngestConfig) *ingestNode {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	ing, err := NewIngest(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(ing.Close)
	return &ingestNode{eng: eng, host: host, dev: dev, ing: ing}
}

func ingestCfg() IngestConfig {
	return IngestConfig{ChunkSize: 1 << 20, Memory: 16 << 20}
}

func TestIngestValidation(t *testing.T) {
	eng := sim.NewEngine()
	host, _ := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	dev, _ := blockdev.NewSimDevice(host)
	clock := blockdev.NewSimClock(eng)
	if _, err := NewIngest(nil, clock, ingestCfg()); err == nil {
		t.Error("nil device accepted")
	}
	if _, err := NewIngest(dev, nil, ingestCfg()); err == nil {
		t.Error("nil clock accepted")
	}
	bad := ingestCfg()
	bad.ChunkSize = 0
	if _, err := NewIngest(dev, clock, bad); err == nil {
		t.Error("zero chunk accepted")
	}
	bad = ingestCfg()
	bad.Memory = bad.ChunkSize - 1
	if _, err := NewIngest(dev, clock, bad); err == nil {
		t.Error("memory below one chunk accepted")
	}
	// Read-only device.
	if _, err := NewIngest(readOnlyDev{}, clock, ingestCfg()); err != blockdev.ErrReadOnly {
		t.Errorf("read-only device err = %v, want ErrReadOnly", err)
	}
}

// readOnlyDev is a Device without Writer support.
type readOnlyDev struct{}

func (readOnlyDev) Disks() int         { return 1 }
func (readOnlyDev) Capacity(int) int64 { return 1 << 20 }
func (readOnlyDev) ReadAt(_ int, _, _ int64, done func([]byte, error)) error {
	if done != nil {
		done(nil, nil)
	}
	return nil
}

func TestIngestCoalescesSequentialWrites(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	const req = 64 << 10
	// 32 sequential 64K writes = 2 full 1MB chunks.
	for i := 0; i < 32; i++ {
		if err := n.ing.Write(0, int64(i)*req, nil, req, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.ing.Stats()
	if st.Writes != 32 || st.BytesAccepted != 32*req {
		t.Errorf("accept stats = %+v", st)
	}
	if st.FullFlushes != 2 || st.Flushes != 2 {
		t.Errorf("flushes = %d (full %d), want 2 chunk flushes", st.Flushes, st.FullFlushes)
	}
	if st.BytesFlushed != 2<<20 {
		t.Errorf("BytesFlushed = %d", st.BytesFlushed)
	}
	// The drive saw 2 large writes, not 32 small ones.
	dsk := n.host.Disk(0).Stats()
	if dsk.Requests != 2 {
		t.Errorf("disk requests = %d, want 2 coalesced writes", dsk.Requests)
	}
	if dsk.BytesWritten != 2<<20 {
		t.Errorf("disk BytesWritten = %d", dsk.BytesWritten)
	}
}

func TestIngestTimedFlush(t *testing.T) {
	cfg := ingestCfg()
	cfg.FlushTimeout = 100 * time.Millisecond
	cfg.GCPeriod = 50 * time.Millisecond
	n := newIngestNode(t, cfg)
	// A partial chunk (3 x 64K) then silence.
	for i := 0; i < 3; i++ {
		if err := n.ing.Write(0, int64(i)*64<<10, nil, 64<<10, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := n.eng.RunFor(time.Second); err != nil {
		t.Fatal(err)
	}
	st := n.ing.Stats()
	if st.TimedFlushes != 1 {
		t.Errorf("TimedFlushes = %d, want 1", st.TimedFlushes)
	}
	if st.BytesFlushed != 3*64<<10 {
		t.Errorf("BytesFlushed = %d", st.BytesFlushed)
	}
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after timed flush", st.MemoryInUse)
	}
	if st.OpenStreams != 0 {
		t.Errorf("OpenStreams = %d after idle GC", st.OpenStreams)
	}
}

func TestIngestMemoryPressureForcesFlush(t *testing.T) {
	cfg := IngestConfig{ChunkSize: 1 << 20, Memory: 2 << 20}
	n := newIngestNode(t, cfg)
	// 4 interleaved streams each staging ~0.9MB: demand 3.6MB > 2MB.
	const req = 64 << 10
	spacing := n.dev.Capacity(0) / 4
	spacing -= spacing % 512
	for round := 0; round < 14; round++ {
		for s := 0; s < 4; s++ {
			off := int64(s)*spacing + int64(round)*req
			if err := n.ing.Write(0, off, nil, req, nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	st := n.ing.Stats()
	if st.ForcedFlushes == 0 {
		t.Error("memory pressure never forced a flush")
	}
	if st.MemoryInUse > 2<<20 {
		t.Errorf("MemoryInUse = %d exceeds budget", st.MemoryInUse)
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestIngestLargeWritePassesThrough(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	if err := n.ing.Write(0, 0, nil, 4<<20, nil); err != nil {
		t.Fatal(err)
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.ing.Stats()
	if st.DirectWrites != 1 {
		t.Errorf("DirectWrites = %d", st.DirectWrites)
	}
	if st.Flushes != 0 {
		t.Errorf("Flushes = %d for a pass-through write", st.Flushes)
	}
}

func TestIngestAckOnFlush(t *testing.T) {
	cfg := ingestCfg()
	cfg.AckOnFlush = true
	n := newIngestNode(t, cfg)
	const req = 64 << 10
	acked := 0
	for i := 0; i < 16; i++ {
		if err := n.ing.Write(0, int64(i)*req, nil, req, func(err error) {
			if err != nil {
				t.Errorf("ack err: %v", err)
			}
			acked++
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Chunk full at 16 x 64K = 1MB: flush happens, acks arrive after
	// the device write completes.
	if acked != 0 {
		t.Fatalf("acks before device write: %d", acked)
	}
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	if acked != 16 {
		t.Errorf("acked = %d, want 16", acked)
	}
}

func TestIngestWriteBehindAcksImmediately(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	acked := false
	if err := n.ing.Write(0, 0, nil, 64<<10, func(err error) {
		if err != nil {
			t.Errorf("ack err: %v", err)
		}
		acked = true
	}); err != nil {
		t.Fatal(err)
	}
	if !acked {
		t.Error("write-behind ack not immediate")
	}
}

func TestIngestFlushAsyncDrains(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	for i := 0; i < 5; i++ {
		if err := n.ing.Write(0, int64(i)*64<<10, nil, 64<<10, nil); err != nil {
			t.Fatal(err)
		}
	}
	n.ing.FlushAsync()
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.ing.Stats()
	if st.BytesFlushed != 5*64<<10 {
		t.Errorf("BytesFlushed = %d", st.BytesFlushed)
	}
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d", st.MemoryInUse)
	}
}

func TestIngestCloseRejectsWrites(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	n.ing.Close()
	n.ing.Close() // idempotent
	if err := n.ing.Write(0, 0, nil, 4096, nil); err == nil {
		t.Error("write after close accepted")
	}
}

func TestIngestValidatesRanges(t *testing.T) {
	n := newIngestNode(t, ingestCfg())
	if err := n.ing.Write(-1, 0, nil, 4096, nil); err == nil {
		t.Error("bad disk accepted")
	}
	if err := n.ing.Write(0, -1, nil, 4096, nil); err == nil {
		t.Error("bad offset accepted")
	}
	if err := n.ing.Write(0, 0, nil, 0, nil); err == nil {
		t.Error("zero length accepted")
	}
	if err := n.ing.Write(0, n.dev.Capacity(0), nil, 4096, nil); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestIngestThroughputBeatsDirectSmallWrites(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	// 10 interleaved ingest streams of 64K writes: coalescing into 1MB
	// chunks must beat issuing the 64K writes directly.
	const streams = 10
	const perStream = 64
	const req = 64 << 10

	direct := func() float64 {
		eng := sim.NewEngine()
		host, _ := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
		spacing := host.DiskCapacity(0) / streams
		spacing -= spacing % 512
		var bytes int64
		for s := 0; s < streams; s++ {
			base := int64(s) * spacing
			var issue func(i int)
			issue = func(i int) {
				if i >= perStream {
					return
				}
				if err := host.WriteAt(0, base+int64(i)*req, req, func(iostack.Result) {
					bytes += req
					issue(i + 1)
				}); err != nil {
					t.Fatal(err)
				}
			}
			issue(0)
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(bytes) / eng.Now().Seconds() / 1e6
	}()

	coalesced := func() float64 {
		n := newIngestNode(t, IngestConfig{ChunkSize: 1 << 20, Memory: 64 << 20})
		spacing := n.dev.Capacity(0) / streams
		spacing -= spacing % 512
		var bytes int64
		// Write-behind acks are immediate, so pace the streams
		// round-robin like the paper's clients.
		for i := 0; i < perStream; i++ {
			for s := 0; s < streams; s++ {
				off := int64(s)*spacing + int64(i)*req
				if err := n.ing.Write(0, off, nil, req, func(error) { bytes += req }); err != nil {
					t.Fatal(err)
				}
			}
		}
		n.ing.FlushAsync()
		if err := n.eng.Run(); err != nil {
			t.Fatal(err)
		}
		return float64(streams*perStream*req) / n.eng.Now().Seconds() / 1e6
	}()

	if coalesced < 2*direct {
		t.Errorf("coalesced ingest %.1f MB/s vs direct %.1f MB/s; want >= 2x", coalesced, direct)
	}
}
