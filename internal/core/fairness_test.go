package core

import (
	"testing"
	"time"
)

// TestResponseTimeFairnessAcrossStreams checks §5.5's observation:
// "average request response time for each stream does not differ
// significantly among streams ... mainly due to the round-robin policy
// we use in placing streams in the dispatch set."
func TestResponseTimeFairnessAcrossStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	const streams = 20
	const requests = 96
	cfg := DefaultConfig(16<<20, 1<<20) // D = 16 < streams: rotation matters
	n := baseNode(t, cfg)
	capacity := n.dev.Capacity(0)
	spacing := capacity / streams
	spacing -= spacing % 512
	const req = 64 << 10

	type acc struct {
		sum   time.Duration
		count int
	}
	perStream := make([]acc, streams)
	completed := 0
	for s := 0; s < streams; s++ {
		s := s
		base := int64(s) * spacing
		var issue func(i int)
		issue = func(i int) {
			if i >= requests {
				return
			}
			if err := n.server.Submit(Request{
				Disk: 0, Offset: base + int64(i)*req, Length: req,
				Done: func(r Response) {
					completed++
					// Skip the detection warmup half.
					if i >= requests/2 {
						perStream[s].sum += r.End - r.Start
						perStream[s].count++
					}
					issue(i + 1)
				},
			}); err != nil {
				t.Fatal(err)
			}
		}
		issue(0)
	}
	n.await(t, func() bool { return completed >= streams*requests })

	var minMean, maxMean time.Duration
	for s, a := range perStream {
		if a.count == 0 {
			t.Fatalf("stream %d recorded nothing", s)
		}
		mean := a.sum / time.Duration(a.count)
		if s == 0 || mean < minMean {
			minMean = mean
		}
		if mean > maxMean {
			maxMean = mean
		}
	}
	// Round-robin keeps per-stream means within a small factor.
	if maxMean > 3*minMean {
		t.Errorf("per-stream mean response spread too wide: min=%v max=%v", minMean, maxMean)
	}
}
