package core

import (
	"testing"
)

// gappedNode builds a node with near-sequential matching enabled.
func gappedNode(t *testing.T, window int64) *testNode {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.NearSeqWindow = window
	return baseNode(t, cfg)
}

func TestNearSeqConfigValidation(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.NearSeqWindow = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative window accepted")
	}
}

// runGapped drives a reader that skips every 4th 64K block (a stride
// pattern) and returns (buffered+queued, direct) response counts after
// the detection phase.
func runGapped(t *testing.T, n *testNode, requests int) (staged, direct int) {
	t.Helper()
	const req = 64 << 10
	block := int64(0)
	for i := 0; i < requests; i++ {
		if (block+1)%4 == 0 {
			block++ // skip every 4th block
		}
		r := n.do(t, Request{Disk: 0, Offset: block * req, Length: req})
		if r.Err != nil {
			t.Fatalf("request %d: %v", i, r.Err)
		}
		if i >= n.server.Config().DetectThreshold {
			if r.FromBuffer {
				staged++
			}
			if r.Direct {
				direct++
			}
		}
		block++
	}
	return staged, direct
}

func TestNearSeqAbsorbsGappedStream(t *testing.T) {
	n := gappedNode(t, 1<<20)
	staged, direct := runGapped(t, n, 48)
	if staged < direct {
		t.Errorf("gapped stream with near-seq: staged=%d direct=%d, want mostly staged", staged, direct)
	}
	st := n.server.Stats()
	if st.NearSeqAccepted == 0 {
		t.Error("no near-seq accepts recorded")
	}
	if st.BytesSkipped == 0 {
		t.Error("no skipped bytes credited")
	}
	if st.StreamsDetected != 1 {
		t.Errorf("StreamsDetected = %d, want 1 (gaps must not spawn new streams)", st.StreamsDetected)
	}
}

func TestStrictModeSendsGapsDirect(t *testing.T) {
	// The paper's strict matcher: the same gapped reader keeps falling
	// off the stream on every skip.
	n := gappedNode(t, 0)
	staged, _ := runGapped(t, n, 48)
	nsStats := n.server.Stats()
	if nsStats.NearSeqAccepted != 0 {
		t.Error("strict mode performed near-seq accepts")
	}
	// And the near-seq node stages strictly more.
	n2 := gappedNode(t, 1<<20)
	staged2, _ := runGapped(t, n2, 48)
	if staged2 <= staged {
		t.Errorf("near-seq staged %d should exceed strict %d", staged2, staged)
	}
}

func TestNearSeqBackwardReread(t *testing.T) {
	n := gappedNode(t, 1<<20)
	const req = 64 << 10
	// Establish a stream and stage data.
	for i := 0; i < 16; i++ {
		n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
	}
	// Re-read a block just behind the stream position.
	r := n.do(t, Request{Disk: 0, Offset: 14 * req, Length: req})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	st := n.server.Stats()
	if st.NearSeqAccepted == 0 {
		t.Error("backward re-read not matched")
	}
	if st.StreamsDetected != 1 {
		t.Errorf("re-read spawned a stream: %d", st.StreamsDetected)
	}
	// The stream continues normally afterwards.
	r = n.do(t, Request{Disk: 0, Offset: 16 * req, Length: req})
	if r.Err != nil || r.Direct {
		t.Errorf("stream broken after re-read: %+v", r)
	}
}

func TestNearSeqMemoryAccountingStaysConsistent(t *testing.T) {
	n := gappedNode(t, 1<<20)
	runGapped(t, n, 96)
	if err := n.eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := n.server.Stats()
	if st.MemoryInUse != 0 {
		t.Errorf("MemoryInUse = %d after drain (skips must credit consumption)", st.MemoryInUse)
	}
	if st.LiveBuffers != 0 {
		t.Errorf("LiveBuffers = %d after drain", st.LiveBuffers)
	}
}

func TestNearSeqOutsideWindowGoesDirect(t *testing.T) {
	n := gappedNode(t, 128<<10)
	const req = 64 << 10
	for i := 0; i < 8; i++ {
		n.do(t, Request{Disk: 0, Offset: int64(i) * req, Length: req})
	}
	// Jump far beyond the window: must not be folded into the stream.
	before := n.server.Stats().NearSeqAccepted
	r := n.do(t, Request{Disk: 0, Offset: 1 << 30, Length: req})
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if n.server.Stats().NearSeqAccepted != before {
		t.Error("far jump was folded into the stream")
	}
}
