package core

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/bufpool"
	"seqstream/internal/invariants"
)

// IngestConfig parameterizes the write-once ingest path: the mirror
// image of the read scheduler for the paper's "storing ... (large) I/O
// streams" workloads. Small sequential client writes are coalesced in
// host memory into chunk-sized device writes, so disks see large
// sequential transfers regardless of how many ingest streams run.
type IngestConfig struct {
	// ChunkSize is the coalesced device write size (the write-side R).
	ChunkSize int64
	// Memory bounds bytes staged across all open chunks.
	Memory int64
	// FlushTimeout flushes a partial chunk that has been idle this
	// long (default 1s).
	FlushTimeout time.Duration
	// GCPeriod is the flush scanner period (default 250ms).
	GCPeriod time.Duration
	// AckOnFlush delays write acknowledgements until the chunk is on
	// the device (write-through semantics). The default acknowledges
	// on staging (write-behind), matching a media-ingest node with a
	// battery-backed buffer.
	AckOnFlush bool
	// Pool, when non-nil, backs chunk staging memory with pooled
	// buffers instead of per-chunk allocations (only meaningful for
	// devices that take materialized data). Share it with the read
	// scheduler's pool so one arena serves both directions.
	Pool *bufpool.Pool
}

// ApplyDefaults fills zero fields.
func (c *IngestConfig) ApplyDefaults() {
	if c.FlushTimeout == 0 {
		c.FlushTimeout = time.Second
	}
	if c.GCPeriod == 0 {
		c.GCPeriod = 250 * time.Millisecond
	}
}

// Validate reports configuration errors.
func (c IngestConfig) Validate() error {
	switch {
	case c.ChunkSize <= 0:
		return errors.New("core: ingest chunk size must be positive")
	case c.Memory < c.ChunkSize:
		return fmt.Errorf("core: ingest memory (%d) must hold one chunk (%d)", c.Memory, c.ChunkSize)
	case c.FlushTimeout <= 0 || c.GCPeriod <= 0:
		return errors.New("core: ingest periods must be positive")
	}
	return nil
}

// IngestStats counts ingest activity.
type IngestStats struct {
	Writes        int64
	BytesAccepted int64
	Flushes       int64
	BytesFlushed  int64
	FullFlushes   int64 // chunk-sized flushes
	TimedFlushes  int64 // partial flushes forced by idleness
	ForcedFlushes int64 // partial flushes forced by memory pressure
	DirectWrites  int64 // non-sequential writes passed straight through
	Errors        int64
	MemoryInUse   int64 // gauge
	OpenStreams   int64 // gauge
}

// wchunk is one open coalescing buffer.
type wchunk struct {
	start  int64
	filled int64
	data   []byte // nil when the device does not take data
	// buf is the pooled memory data appends into (nil without a pool);
	// it is recycled after the device write completes and the acks run.
	buf  *bufpool.Buf
	acks []func(error)
}

// wstream is one detected ingest stream.
type wstream struct {
	disk       int
	next       int64 // expected next client offset
	chunk      *wchunk
	lastActive time.Duration
}

// Ingest coalesces sequential writes. It is safe for concurrent use.
type Ingest struct {
	cfg    IngestConfig
	dev    blockdev.Device
	writer blockdev.Writer
	clock  blockdev.Clock

	mu         sync.Mutex
	byNext     map[offKey]*wstream //lint:guardedby mu
	memUsed    int64               //lint:guardedby mu
	stats      IngestStats         //lint:guardedby mu
	closed     bool                //lint:guardedby mu
	gcArmed    bool                //lint:guardedby mu
	gcCancel   func()              //lint:guardedby mu
	inFlight   int                 //lint:guardedby mu
	idleSignal chan struct{}       //lint:guardedby mu
	pendingIO  []func()            //lint:guardedby mu
}

// NewIngest builds an ingest coalescer over a writable device.
func NewIngest(dev blockdev.Device, clock blockdev.Clock, cfg IngestConfig) (*Ingest, error) {
	if dev == nil {
		return nil, errors.New("core: nil device")
	}
	if clock == nil {
		return nil, errors.New("core: nil clock")
	}
	w, ok := dev.(blockdev.Writer)
	if !ok {
		return nil, blockdev.ErrReadOnly
	}
	cfg.ApplyDefaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Ingest{
		cfg:    cfg,
		dev:    dev,
		writer: w,
		clock:  clock,
		byNext: make(map[offKey]*wstream),
	}, nil
}

// Stats returns a snapshot of the counters.
func (g *Ingest) Stats() IngestStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	st := g.stats
	st.MemoryInUse = g.memUsed
	st.OpenStreams = int64(len(g.byNext))
	return st
}

// Write stages [off, off+len(data) or length) on a disk. Exactly one
// of data or length describes the payload: pass data for real devices,
// or nil data with a positive length for simulated ones. done (may be
// nil) is invoked according to AckOnFlush.
func (g *Ingest) Write(disk int, off int64, data []byte, length int64, done func(error)) error {
	if data != nil {
		length = int64(len(data))
	}
	if err := blockdev.CheckRequest(g.dev, disk, off, length); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return errors.New("core: ingest closed")
	}
	now := g.clock.Now()
	g.stats.Writes++
	g.stats.BytesAccepted += length

	key := offKey{disk: disk, off: off}
	st := g.byNext[key]
	if st == nil {
		// A write that does not continue any stream: it opens a new
		// stream when chunk-aligned progress is plausible, and passes
		// through directly when it alone exceeds the chunk.
		if length >= g.cfg.ChunkSize {
			g.stats.DirectWrites++
			g.directWrite(disk, off, data, length, done)
			g.mu.Unlock()
			g.flushIO()
			return nil
		}
		st = &wstream{disk: disk, next: off}
		g.byNext[key] = st
	}
	delete(g.byNext, offKey{disk: disk, off: st.next})
	st.next = off + length
	st.lastActive = now
	g.byNext[offKey{disk: disk, off: st.next}] = st

	// Stage into the open chunk, splitting across chunk boundaries.
	newChunk := func() *wchunk {
		ch := &wchunk{start: off}
		if data != nil {
			if g.cfg.Pool != nil {
				ch.buf = g.cfg.Pool.Get(g.cfg.ChunkSize)
				ch.data = ch.buf.Data[:0]
			} else {
				ch.data = make([]byte, 0, g.cfg.ChunkSize)
			}
		}
		return ch
	}
	for length > 0 {
		if st.chunk == nil {
			st.chunk = newChunk()
		}
		room := g.cfg.ChunkSize - st.chunk.filled
		take := length
		if take > room {
			take = room
		}
		if g.memUsed+take > g.cfg.Memory {
			// May flush this stream's own chunk; reopen at the current
			// position if so.
			g.forceFlush(take)
			if st.chunk == nil {
				st.chunk = newChunk()
			}
		}
		st.chunk.filled += take
		g.memUsed += take
		if data != nil {
			st.chunk.data = append(st.chunk.data, data[:take]...)
			data = data[take:]
		}
		off += take
		length -= take
		if done != nil && length == 0 && g.cfg.AckOnFlush {
			st.chunk.acks = append(st.chunk.acks, done)
		}
		if st.chunk.filled >= g.cfg.ChunkSize {
			g.stats.FullFlushes++
			g.flushChunk(st)
		}
	}
	g.armGC()
	g.checkInvariants()
	g.mu.Unlock()
	g.flushIO()
	if done != nil && !g.cfg.AckOnFlush {
		done(nil) // write-behind acknowledgement
	}
	return nil
}

// checkInvariants asserts the coalescer's accounting invariants when
// the `invariants` build tag is on. The memory bound itself is soft
// here (forceFlush cannot reclaim chunks already in flight), so the
// hard invariants are the accounting ones. Caller holds the lock.
//
//lint:holds mu
func (g *Ingest) checkInvariants() {
	if !invariants.Enabled {
		return
	}
	invariants.Check(g.memUsed >= 0, "staged ingest memory went negative: %d", g.memUsed)
	invariants.Check(g.inFlight >= 0, "in-flight ingest writes went negative: %d", g.inFlight)
	var open int64
	for key, st := range g.byNext {
		if st.chunk != nil {
			open += st.chunk.filled
			invariants.Check(st.chunk.filled <= g.cfg.ChunkSize,
				"open chunk holds %d bytes, chunk size is %d", st.chunk.filled, g.cfg.ChunkSize)
		}
		invariants.Check(key.disk == st.disk && key.off == st.next,
			"ingest stream indexed under (disk=%d, off=%d) but expects (disk=%d, off=%d)",
			key.disk, key.off, st.disk, st.next)
	}
	invariants.Check(open == g.memUsed,
		"open chunks hold %d bytes but accounting says %d", open, g.memUsed)
}

// directWrite passes a large write straight to the device. Caller
// holds the lock.
//
//lint:holds mu
func (g *Ingest) directWrite(disk int, off int64, data []byte, length int64, done func(error)) {
	g.inFlight++
	g.pendingIO = append(g.pendingIO, func() {
		err := g.writer.WriteAt(disk, off, length, data, func(werr error) {
			g.mu.Lock()
			g.inFlight--
			if werr != nil {
				g.stats.Errors++
			}
			g.mu.Unlock()
			if done != nil && g.cfg.AckOnFlush {
				done(werr)
			}
		})
		if err != nil {
			g.mu.Lock()
			g.inFlight--
			g.stats.Errors++
			g.mu.Unlock()
			if done != nil && g.cfg.AckOnFlush {
				done(err)
			}
		}
	})
	if done != nil && !g.cfg.AckOnFlush {
		done(nil)
	}
}

// flushChunk sends a stream's open chunk to the device. Caller holds
// the lock.
//
//lint:holds mu
func (g *Ingest) flushChunk(st *wstream) {
	ch := st.chunk
	if ch == nil || ch.filled == 0 {
		return
	}
	st.chunk = nil
	g.stats.Flushes++
	g.stats.BytesFlushed += ch.filled
	// Ownership of the chunk memory passes to the device queue here;
	// M bounds the open (appendable) chunks.
	g.memUsed -= ch.filled
	g.inFlight++
	disk := st.disk
	g.pendingIO = append(g.pendingIO, func() {
		err := g.writer.WriteAt(disk, ch.start, ch.filled, ch.data, func(werr error) {
			g.finishFlush(ch, werr)
		})
		if err != nil {
			g.finishFlush(ch, err)
		}
	})
}

func (g *Ingest) finishFlush(ch *wchunk, werr error) {
	g.mu.Lock()
	g.inFlight--
	if werr != nil {
		g.stats.Errors++
	}
	// Capture the signal channel under the lock: Flush swaps it
	// concurrently, so reading the field after Unlock would race.
	var idle chan struct{}
	if g.inFlight == 0 {
		idle = g.idleSignal
	}
	g.mu.Unlock()
	for _, ack := range ch.acks {
		ack(werr)
	}
	// The device and the acks are done with the chunk bytes; recycle.
	ch.buf.Release()
	ch.buf = nil
	ch.data = nil
	if idle != nil {
		select {
		case idle <- struct{}{}:
		default:
		}
	}
}

// forceFlush reclaims staged memory by flushing the least-recently
// active open chunk until `need` bytes fit. Caller holds the lock.
//
//lint:holds mu
func (g *Ingest) forceFlush(need int64) {
	for g.memUsed+need > g.cfg.Memory {
		var victim *wstream
		for _, st := range g.byNext {
			if st.chunk == nil || st.chunk.filled == 0 {
				continue
			}
			if victim == nil || st.lastActive < victim.lastActive {
				victim = st
			}
		}
		if victim == nil {
			return // everything already in flight
		}
		g.stats.ForcedFlushes++
		g.flushChunk(victim)
	}
}

// flushIO issues device calls queued under the lock.
func (g *Ingest) flushIO() {
	for {
		g.mu.Lock()
		calls := g.pendingIO
		g.pendingIO = nil
		g.mu.Unlock()
		if len(calls) == 0 {
			return
		}
		for _, fn := range calls {
			fn()
		}
	}
}

// armGC schedules the flush scanner while open chunks exist. Caller
// holds the lock.
//
//lint:holds mu
func (g *Ingest) armGC() {
	if g.gcArmed || g.closed || len(g.byNext) == 0 {
		return
	}
	g.gcArmed = true
	g.gcCancel = g.clock.Schedule(g.cfg.GCPeriod, g.gcTick)
}

func (g *Ingest) gcTick() {
	g.mu.Lock()
	g.gcArmed = false
	if g.closed {
		g.mu.Unlock()
		return
	}
	now := g.clock.Now()
	for key, st := range g.byNext {
		if now-st.lastActive <= g.cfg.FlushTimeout {
			continue
		}
		if st.chunk != nil && st.chunk.filled > 0 {
			g.stats.TimedFlushes++
			g.flushChunk(st)
		}
		delete(g.byNext, key)
	}
	g.armGC()
	g.checkInvariants()
	g.mu.Unlock()
	g.flushIO()
}

// Flush synchronously pushes every open chunk to the device and waits
// for all in-flight writes to land.
func (g *Ingest) Flush() {
	g.mu.Lock()
	for _, st := range g.byNext {
		if st.chunk != nil && st.chunk.filled > 0 {
			g.flushChunk(st)
		}
	}
	done := make(chan struct{}, 1)
	g.idleSignal = done
	pending := g.inFlight > 0 || len(g.pendingIO) > 0
	g.mu.Unlock()
	g.flushIO()
	if pending {
		g.mu.Lock()
		pending = g.inFlight > 0
		g.mu.Unlock()
		if pending {
			<-done
		}
	}
	g.mu.Lock()
	g.idleSignal = nil
	g.mu.Unlock()
}

// Close flushes outstanding chunks and stops the scanner. The caller
// must ensure the device can still complete writes (for simulated
// devices, run the engine afterwards and call Flush from a goroutine
// only in real time; in simulations prefer FlushAsync + engine run).
func (g *Ingest) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	for _, st := range g.byNext {
		if st.chunk != nil && st.chunk.filled > 0 {
			g.flushChunk(st)
		}
	}
	g.byNext = make(map[offKey]*wstream)
	g.closed = true
	if g.gcCancel != nil {
		g.gcCancel()
	}
	g.mu.Unlock()
	g.flushIO()
}

// FlushAsync pushes every open chunk without waiting (for simulated
// clocks, where waiting must happen by running the engine).
func (g *Ingest) FlushAsync() {
	g.mu.Lock()
	for _, st := range g.byNext {
		if st.chunk != nil && st.chunk.filled > 0 {
			g.flushChunk(st)
		}
	}
	g.mu.Unlock()
	g.flushIO()
}
