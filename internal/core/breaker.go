package core

import (
	"errors"
	"time"

	"seqstream/internal/flight"
)

// ErrDiskDegraded fails a request fast because its disk's circuit
// breaker is open: the disk has failed repeatedly and is cooling down.
var ErrDiskDegraded = errors.New("core: disk degraded (circuit open)")

// ErrFetchTimeout fails the waiters of a read-ahead fetch that stayed
// outstanding past Config.FetchTimeout.
var ErrFetchTimeout = errors.New("core: fetch timed out")

// breakerState is the per-disk circuit state.
type breakerState uint8

const (
	// breakerClosed: healthy, requests flow.
	breakerClosed breakerState = iota
	// breakerOpen: failing, requests fail fast until the cooldown
	// elapses.
	breakerOpen
	// breakerHalfOpen: cooled down, traffic probes the disk; the first
	// device outcome decides between closed and open.
	breakerHalfOpen
)

// breaker is one disk's circuit. Each disk's circuit belongs to the
// shard that owns the disk; all access is under that shard's lock.
// The global count of open circuits lives in Server.degraded so every
// shard's fair-share computation sees disks degraded anywhere — the
// shard adjusts it through Server.noteDegradedTransition on every
// transition into or out of the open state.
type breaker struct {
	state    breakerState
	fails    int           // consecutive device failures
	reopenAt time.Duration // open until this instant (server clock)
	// probing marks that a half-open circuit has already admitted its
	// single probe request; further requests keep failing fast until
	// the probe's device outcome decides the state. probeAt lets a
	// probe that never reports (hung device) go stale after one more
	// cooldown, so the circuit cannot wedge half-open forever.
	probing bool
	probeAt time.Duration
}

// breakerFor returns the disk's circuit, creating it lazily, or nil
// when the breaker is disabled. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) breakerFor(disk int) *breaker {
	if sh.srv.cfg.BreakerThreshold <= 0 {
		return nil
	}
	b := sh.breakers[disk]
	if b == nil {
		b = &breaker{}
		sh.breakers[disk] = b
	}
	return b
}

// breakerAllows reports whether a request for disk may proceed,
// transitioning open → half-open once the cooldown elapses. Caller
// holds sh.mu.
//
//lint:holds mu
func (sh *shard) breakerAllows(disk int, now time.Duration) bool {
	if sh.srv.cfg.BreakerThreshold <= 0 {
		return true
	}
	b := sh.breakers[disk]
	if b == nil || b.state == breakerClosed {
		return true
	}
	if b.state == breakerHalfOpen {
		// Exactly one probe at a time. The first request admitted after
		// the cooldown carries the circuit's fate; admitting every
		// request while half-open (the old behavior) sent a thundering
		// herd to a disk the instant its cooldown elapsed.
		if b.probing && now-b.probeAt < sh.srv.cfg.BreakerCooldown {
			return false
		}
		b.probing = true
		b.probeAt = now
		return true
	}
	if now < b.reopenAt {
		return false
	}
	b.state = breakerHalfOpen
	b.probing = true
	b.probeAt = now
	sh.srv.noteDegradedTransition(-1)
	sh.publishDiskDown(disk)
	return true
}

// diskBlocked reports whether disk is refusing traffic right now (open
// and still cooling down). Dispatch skips blocked disks' streams.
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) diskBlocked(disk int, now time.Duration) bool {
	if sh.srv.cfg.BreakerThreshold <= 0 {
		return false
	}
	b := sh.breakers[disk]
	return b != nil && b.state == breakerOpen && now < b.reopenAt
}

// noteDiskFailure records one device failure on disk, tripping the
// circuit at the threshold (or instantly re-opening a probing one).
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) noteDiskFailure(disk int, now time.Duration) {
	b := sh.breakerFor(disk)
	if b == nil {
		return
	}
	b.fails++
	trip := b.state == breakerHalfOpen ||
		(b.state == breakerClosed && b.fails >= sh.srv.cfg.BreakerThreshold)
	if trip {
		b.state = breakerOpen
		b.probing = false
		b.reopenAt = now + sh.srv.cfg.BreakerCooldown
		sh.srv.noteDegradedTransition(1)
		sh.publishDiskDown(disk)
		sh.stats.BreakerTrips++
		if o := sh.srv.cfg.Obs; o != nil {
			o.breakerTrips.Inc()
		}
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpBreakerOpen, Err: flight.ErrDegraded,
				Disk: uint16(disk), Stream: flight.NoStream, T: now})
		}
	} else if b.state == breakerOpen {
		// Failures of requests already in flight while open extend the
		// cooldown: the disk is still sick.
		b.reopenAt = now + sh.srv.cfg.BreakerCooldown
	}
}

// noteDiskSuccess records one device success on disk, closing a
// probing circuit. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) noteDiskSuccess(disk int) {
	if sh.srv.cfg.BreakerThreshold <= 0 {
		return
	}
	b := sh.breakers[disk]
	if b == nil {
		return
	}
	switch b.state {
	case breakerOpen:
		// A request issued before the trip completed after it. One
		// stale success is not proof of recovery: while the cooldown
		// runs the trip outranks it and the success is ignored; after
		// the cooldown it promotes the circuit to half-open, so the
		// next admitted request still probes before traffic resumes.
		// The circuit never skips straight from open to closed on a
		// stale completion (that let one late success cancel a fresh
		// trip and re-admit the full request load instantly).
		if sh.srv.clock.Now() < b.reopenAt {
			return
		}
		b.state = breakerHalfOpen
		b.probing = false
		sh.srv.noteDegradedTransition(-1)
		sh.publishDiskDown(disk)
	case breakerHalfOpen:
		// The probe came back healthy: the circuit closes.
		b.fails = 0
		b.state = breakerClosed
		b.probing = false
		sh.publishDiskDown(disk)
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpBreakerClose, Disk: uint16(disk),
				Stream: flight.NoStream, T: sh.srv.clock.Now()})
		}
	default:
		b.fails = 0
	}
}

// publishDiskDown mirrors the disk's blocked state into the server's
// lock-free per-disk table after a breaker transition. Replica
// selection on other shards reads it without taking this shard's lock.
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) publishDiskDown(disk int) {
	srv := sh.srv
	if srv.diskDown == nil {
		return
	}
	b := sh.breakers[disk]
	srv.diskDown[disk].Store(b != nil && b.state == breakerOpen)
}
