package core

import (
	"errors"
	"time"
)

// ErrDiskDegraded fails a request fast because its disk's circuit
// breaker is open: the disk has failed repeatedly and is cooling down.
var ErrDiskDegraded = errors.New("core: disk degraded (circuit open)")

// ErrFetchTimeout fails the waiters of a read-ahead fetch that stayed
// outstanding past Config.FetchTimeout.
var ErrFetchTimeout = errors.New("core: fetch timed out")

// breakerState is the per-disk circuit state.
type breakerState uint8

const (
	// breakerClosed: healthy, requests flow.
	breakerClosed breakerState = iota
	// breakerOpen: failing, requests fail fast until the cooldown
	// elapses.
	breakerOpen
	// breakerHalfOpen: cooled down, traffic probes the disk; the first
	// device outcome decides between closed and open.
	breakerHalfOpen
)

// breaker is one disk's circuit. All access is under the server lock.
type breaker struct {
	state    breakerState
	fails    int           // consecutive device failures
	reopenAt time.Duration // open until this instant (server clock)
}

// breakerFor returns the disk's circuit, creating it lazily, or nil
// when the breaker is disabled. Caller holds the lock.
func (s *Server) breakerFor(disk int) *breaker {
	if s.cfg.BreakerThreshold <= 0 {
		return nil
	}
	b := s.breakers[disk]
	if b == nil {
		b = &breaker{}
		s.breakers[disk] = b
	}
	return b
}

// breakerAllows reports whether a request for disk may proceed,
// transitioning open → half-open once the cooldown elapses. Caller
// holds the lock.
func (s *Server) breakerAllows(disk int, now time.Duration) bool {
	if s.cfg.BreakerThreshold <= 0 {
		return true
	}
	b := s.breakers[disk]
	if b == nil || b.state == breakerClosed || b.state == breakerHalfOpen {
		return true
	}
	if now < b.reopenAt {
		return false
	}
	b.state = breakerHalfOpen
	return true
}

// diskBlocked reports whether disk is refusing traffic right now (open
// and still cooling down). Dispatch skips blocked disks' streams.
// Caller holds the lock.
func (s *Server) diskBlocked(disk int, now time.Duration) bool {
	if s.cfg.BreakerThreshold <= 0 {
		return false
	}
	b := s.breakers[disk]
	return b != nil && b.state == breakerOpen && now < b.reopenAt
}

// degradedDisks counts disks whose circuit is open. Caller holds the
// lock.
func (s *Server) degradedDisks() int {
	n := 0
	for _, b := range s.breakers {
		if b.state == breakerOpen {
			n++
		}
	}
	return n
}

// noteDiskFailure records one device failure on disk, tripping the
// circuit at the threshold (or instantly re-opening a probing one).
// Caller holds the lock.
func (s *Server) noteDiskFailure(disk int, now time.Duration) {
	b := s.breakerFor(disk)
	if b == nil {
		return
	}
	b.fails++
	trip := b.state == breakerHalfOpen ||
		(b.state == breakerClosed && b.fails >= s.cfg.BreakerThreshold)
	if trip {
		b.state = breakerOpen
		b.reopenAt = now + s.cfg.BreakerCooldown
		s.stats.BreakerTrips++
		if o := s.cfg.Obs; o != nil {
			o.breakerTrips.Inc()
		}
	} else if b.state == breakerOpen {
		// Failures of requests already in flight while open extend the
		// cooldown: the disk is still sick.
		b.reopenAt = now + s.cfg.BreakerCooldown
	}
}

// noteDiskSuccess records one device success on disk, closing a
// probing circuit. Caller holds the lock.
func (s *Server) noteDiskSuccess(disk int) {
	if s.cfg.BreakerThreshold <= 0 {
		return
	}
	b := s.breakers[disk]
	if b == nil {
		return
	}
	b.fails = 0
	b.state = breakerClosed
}
