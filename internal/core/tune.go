package core

import (
	"errors"
	"time"
)

// NodeSpec describes a storage node for static parameter derivation
// (§5.4: "it is possible to achieve high utilization in different I/O
// subsystem configurations by appropriately setting parameters R, D,
// N, and M").
type NodeSpec struct {
	// Disks is the number of drives behind the node.
	Disks int
	// Memory is the host memory available for staging (M).
	Memory int64
	// MediaRate is the drives' sustained sequential rate in bytes/s.
	MediaRate float64
	// PositionBudget is the average positioning cost per access (seek
	// plus rotational latency). Zero defaults to 13ms, the WD800JD-class
	// figure.
	PositionBudget time.Duration
	// Efficiency is the target fraction of the media rate a dispatched
	// stream's transfers should reach; the read-ahead R is sized so
	// transfer time dominates positioning accordingly. Zero defaults
	// to 0.9.
	Efficiency float64
}

// Tune derives the paper's four parameters from a node description:
//
//   - R: large enough that R/rate ≥ (eff/(1-eff)) × positioning time,
//     rounded up to a power of two (transfer amortizes the seek);
//   - D: M/(R·N), but at least one stream per disk;
//   - N: 1 (rotate every fetch — the §5 default);
//   - M: the given budget.
//
// The returned config validates; callers may tweak fields afterwards.
func Tune(spec NodeSpec) (Config, error) {
	if spec.Disks <= 0 {
		return Config{}, errors.New("core: node needs at least one disk")
	}
	if spec.Memory <= 0 {
		return Config{}, errors.New("core: node needs a memory budget")
	}
	if spec.MediaRate <= 0 {
		return Config{}, errors.New("core: node needs a media rate")
	}
	pos := spec.PositionBudget
	if pos == 0 {
		pos = 13 * time.Millisecond
	}
	eff := spec.Efficiency
	if eff == 0 {
		eff = 0.9
	}
	if eff <= 0 || eff >= 1 {
		return Config{}, errors.New("core: efficiency must be in (0, 1)")
	}

	// Transfer time T = R/rate; utilization = T/(T+pos) >= eff
	// <=> R >= rate * pos * eff/(1-eff).
	r := int64(spec.MediaRate * pos.Seconds() * eff / (1 - eff))
	if r < 64<<10 {
		r = 64 << 10
	}
	p := int64(1)
	for p < r {
		p <<= 1
	}
	r = p
	// R must leave room for at least one buffer per disk in M.
	if max := spec.Memory / int64(spec.Disks); r > max {
		r = largestPow2(max)
	}
	if r < 512 {
		return Config{}, errors.New("core: memory too small to stage one buffer per disk")
	}

	cfg := Config{
		ReadAhead:         r,
		RequestsPerStream: 1,
		Memory:            spec.Memory,
	}
	cfg.ApplyDefaults()
	if cfg.DispatchSize < spec.Disks {
		cfg.DispatchSize = spec.Disks
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

func largestPow2(n int64) int64 {
	p := int64(1)
	for p*2 <= n {
		p <<= 1
	}
	return p
}
