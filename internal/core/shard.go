package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/bufpool"
	"seqstream/internal/flight"
	"seqstream/internal/invariants"
	"seqstream/internal/obs"
	"seqstream/internal/slo"
	"seqstream/internal/trace"
)

// shard is one scheduler shard. Disks are assigned to shards by
// disk % len(shards) (one disk per shard by default), and every
// structure a disk's traffic touches — classifier regions, streams,
// candidate queue, staged buffers, circuit breakers, GC cursor —
// belongs to exactly one shard and is guarded by that shard's mutex.
//
// Ownership and locking rules:
//
//   - All fields below mu are guarded by mu. No code path ever holds
//     two shard locks at once; cross-shard work (Server.Snapshot,
//     Server.evictGlobal) locks shards one at a time or in index
//     order.
//   - The global bounds D and M live in Server atomics
//     (Server.dispatched, Server.memUsed); a shard reserves against
//     them with CAS loops while holding only its own lock.
//   - Client callbacks and device calls never run under mu: they are
//     queued in pendingIO/pendingDone under the lock and drained by
//     flush after it is released.
//   - When a shard cannot make progress because a global budget is
//     exhausted, it flags itself (wantPump) and returns; whichever
//     shard releases the resource schedules a repump pass that pumps
//     the flagged shards off-lock.
type shard struct {
	srv *Server
	idx int

	// fr is this shard's flight-recorder ring (nil when recording is
	// off). The binding is fixed at construction so the hot path pays
	// one nil check, never a map or modulo.
	fr *flight.Ring

	mu         sync.Mutex
	cls        *classifier        //lint:guardedby mu
	byExpected map[offKey]*stream //lint:guardedby mu — stream lookup by next expected client offset
	streams    map[int]*stream    //lint:guardedby mu
	candidates []*stream          //lint:guardedby mu
	dispatched int                //lint:guardedby mu — dispatch slots held by this shard's streams
	perDisk    map[int]int        //lint:guardedby mu — dispatched streams per disk
	lastOffset map[int]int64      //lint:guardedby mu — last fetch end per disk (for policies)
	breakers   map[int]*breaker   //lint:guardedby mu
	memUsed    int64              //lint:guardedby mu — staged bytes owned by this shard
	bufCount   int                //lint:guardedby mu — live buffers owned by this shard
	stats      Stats              //lint:guardedby mu
	gcCancel   func()             //lint:guardedby mu
	gcArmed    bool               //lint:guardedby mu
	closed     bool               //lint:guardedby mu
	steerTick  int                //lint:guardedby mu — steering pick counter (every 16th probes the primary)

	// pendingIO collects device calls generated under the lock; they
	// run after the lock is released (flush), because real devices may
	// block in ReadAt and their completions need the lock.
	pendingIO []func() //lint:guardedby mu
	// pendingDone collects staged-data completions generated under the
	// lock; flush delivers the whole batch after the device calls, so
	// the issue path keeps its priority (§4.2) and delivery costs no
	// per-response timer.
	pendingDone []doneEntry //lint:guardedby mu
	// spareIO/spareDone recycle the drained slices so the steady-state
	// hit path allocates nothing.
	spareIO   []func()    //lint:guardedby mu
	spareDone []doneEntry //lint:guardedby mu

	// compMu guards the device-completion queue. It is a leaf lock:
	// enqueueCompletion takes it from device-callback goroutines with
	// no other lock held, and the reaper takes it only between shard-
	// lock holds, so it never nests inside (or outside) mu.
	compMu sync.Mutex
	// compQ holds device completions awaiting the reaper, in arrival
	// order.
	compQ []completion //lint:guardedby compMu
	// compSpare recycles the drained batch slice so steady-state
	// reaping allocates nothing.
	compSpare []completion //lint:guardedby compMu
	// reaping marks that some goroutine is draining compQ; others just
	// enqueue and leave, which is what amortizes lock handoffs when
	// many device goroutines complete at once.
	reaping atomic.Bool

	// wantPump flags that this shard gave up on admission because a
	// global budget (D or M) was exhausted; Server.repumpPass clears
	// it. Atomic so releases on other shards can read it locklessly.
	wantPump atomic.Bool
	// flushDepth bounds synchronous completion recursion; deep chains
	// are flattened through the clock.
	flushDepth atomic.Int32
	flushFn    func()
}

// doneEntry is one batched client completion.
type doneEntry struct {
	done   func(Response)
	resp   Response
	length int64
}

// maxFlushDepth bounds nested flush calls (completion → Submit →
// flush → …) before the remainder is deferred through the clock.
const maxFlushDepth = 8

func newShard(srv *Server, idx int) *shard {
	sh := &shard{
		srv:        srv,
		idx:        idx,
		fr:         srv.cfg.Flight.Ring(idx),
		cls:        newClassifier(srv.cfg),
		byExpected: make(map[offKey]*stream),
		streams:    make(map[int]*stream),
		perDisk:    make(map[int]int),
		lastOffset: make(map[int]int64),
		breakers:   make(map[int]*breaker),
	}
	sh.flushFn = sh.flushWork
	return sh
}

// markBlocked flags the shard as starved on a global budget so the
// next release repumps it. Callable from any goroutine.
func (sh *shard) markBlocked() {
	if sh.wantPump.CompareAndSwap(false, true) {
		sh.srv.blocked.Add(1)
	}
}

// clearBlocked consumes the blocked flag, reporting whether it was
// set.
func (sh *shard) clearBlocked() bool {
	if sh.wantPump.CompareAndSwap(true, false) {
		sh.srv.blocked.Add(-1)
		return true
	}
	return false
}

// armGC ensures the periodic collector is scheduled while there is
// collectible state, and leaves no timer behind when the shard is
// idle (so simulations drain and idle real servers hold no timers).
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) armGC() {
	if sh.gcArmed || sh.closed {
		return
	}
	if len(sh.streams) == 0 && sh.cls.regionCount() == 0 && sh.bufCount == 0 {
		return
	}
	sh.gcArmed = true
	sh.gcCancel = sh.srv.clock.Schedule(sh.srv.cfg.GCPeriod, sh.gcTick)
}

// flush drains the work queued under the shard lock: device calls
// first, then the batched client completions. Completions may submit
// follow-up requests synchronously; past maxFlushDepth the remainder
// is deferred through the clock so hit chains cannot grow the stack.
// Must be called after every locked section that may queue work, with
// the lock released.
func (sh *shard) flush() {
	if sh.flushDepth.Add(1) > maxFlushDepth {
		sh.flushDepth.Add(-1)
		sh.srv.clock.Schedule(0, sh.flushFn)
		return
	}
	sh.flushWork()
	sh.flushDepth.Add(-1)
}

func (sh *shard) flushWork() {
	for {
		sh.mu.Lock()
		calls, batch := sh.pendingIO, sh.pendingDone
		sh.pendingIO, sh.pendingDone = sh.spareIO, sh.spareDone
		sh.spareIO, sh.spareDone = nil, nil
		sh.mu.Unlock()
		if len(calls) == 0 && len(batch) == 0 {
			sh.recycle(calls, batch)
			return
		}
		for _, fn := range calls {
			fn()
		}
		sh.deliver(batch)
		clear(calls)
		clear(batch)
		sh.recycle(calls, batch)
	}
}

// recycle returns drained slices for reuse so steady-state flushing
// allocates nothing. Under concurrent flushes a slice may be dropped
// to the garbage collector instead, which is only a missed reuse.
func (sh *shard) recycle(calls []func(), batch []doneEntry) {
	sh.mu.Lock()
	if sh.spareIO == nil && calls != nil {
		sh.spareIO = calls[:0]
	}
	if sh.spareDone == nil && batch != nil {
		sh.spareDone = batch[:0]
	}
	sh.mu.Unlock()
}

// deliver completes one batch of staged-data responses. When the
// device models host CPU, each delivery is charged individually (the
// sim's accounting is per request); otherwise the batch completes
// synchronously with no per-response timer.
func (sh *shard) deliver(batch []doneEntry) {
	srv := sh.srv
	if srv.cpu != nil {
		for i := range batch {
			e := batch[i] // copy: the backing array is recycled
			srv.cpu.ChargeRequest(e.length, func() {
				e.resp.End = srv.clock.Now()
				e.done(e.resp)
			})
		}
		return
	}
	for i := range batch {
		e := &batch[i]
		e.resp.End = srv.clock.Now()
		e.done(e.resp)
	}
}

// enqueueDone queues one staged-data completion for the next flush.
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) enqueueDone(done func(Response), resp Response, length int64) {
	if done == nil {
		// Nobody is waiting: drop the delivery (the pooled ref was only
		// attached for a live consumer).
		resp.Release()
		return
	}
	sh.pendingDone = append(sh.pendingDone, doneEntry{done: done, resp: resp, length: length})
}

// submit is Server.Submit routed to the disk's shard; see the flow
// description there.
func (sh *shard) submit(req Request) error {
	srv := sh.srv
	sh.mu.Lock()
	if sh.closed {
		sh.mu.Unlock()
		return errors.New("core: server closed")
	}
	now := srv.clock.Now()
	sh.stats.Requests++
	if o := srv.cfg.Obs; o != nil {
		o.requests.Inc()
	}
	// Edge events (submit/fastfail/direct) are not part of the stream
	// lifecycle chain; they exist to follow an individual traced request
	// end to end, so untraced bulk traffic skips them. This keeps the
	// buffer-hit path at exactly one Record (deliver) per request, which
	// is what makes the always-on recorder affordable.
	if sh.fr != nil && req.Trace != 0 {
		sh.fr.Record(flight.Event{Trace: req.Trace, Op: flight.OpSubmit, Disk: uint16(req.Disk),
			Stream: flight.NoStream, Offset: req.Offset, Length: req.Length, T: now})
	}

	// Degraded path: an open circuit fails the disk's requests fast
	// instead of queuing them behind a sick device, so client threads
	// (and the staging memory behind them) never pile up on it.
	if !sh.breakerAllows(req.Disk, now) {
		sh.stats.BreakerFastFails++
		if o := srv.cfg.Obs; o != nil {
			o.breakerFastFails.Inc()
		}
		if sh.fr != nil && req.Trace != 0 {
			sh.fr.Record(flight.Event{Trace: req.Trace, Op: flight.OpFastFail, Err: flight.ErrDegraded,
				Disk: uint16(req.Disk), Stream: flight.NoStream, Offset: req.Offset, Length: req.Length, T: now})
		}
		sh.syncGauges()
		sh.mu.Unlock()
		srv.complete(req.Done, Response{Start: now, Direct: true, Err: ErrDiskDegraded})
		return nil
	}

	// Stream path: the request continues a classified stream.
	key := offKey{disk: req.Disk, off: req.Offset}
	if st := sh.byExpected[key]; st != nil {
		sh.acceptStreamRequest(st, req, now)
		sh.armGC()
		sh.syncGauges()
		sh.mu.Unlock()
		sh.flush()
		return nil
	}

	// Near-sequential path: a stream expecting a nearby offset absorbs
	// the request (skips count as consumed; overlaps re-read staged
	// data).
	if srv.cfg.NearSeqWindow > 0 {
		if st := sh.lookupNearSeq(req.Disk, req.Offset); st != nil {
			sh.acceptNearSeq(st, req, now)
			sh.armGC()
			sh.syncGauges()
			sh.mu.Unlock()
			sh.flush()
			return nil
		}
	}

	// Classifier path: record the access; on detection, create the
	// stream and admit it to the candidate queue. The triggering
	// request itself is serviced directly (§4.1: requests are issued
	// directly to the disk until a stream is detected).
	if sh.cls.observe(req.Disk, req.Offset, req.Length, now) {
		sh.createStream(req, now)
	}
	sh.directRead(req, now)
	sh.armGC()
	sh.syncGauges()
	sh.mu.Unlock()
	sh.flush()
	return nil
}

// acceptStreamRequest handles an in-order request of a known stream:
// serve from a ready buffer, or queue it for an in-flight/future
// fetch. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) acceptStreamRequest(st *stream, req Request, now time.Duration) {
	// Advance the expected offset.
	delete(sh.byExpected, offKey{disk: st.disk, off: st.nextClient})
	st.nextClient = req.Offset + req.Length
	sh.byExpected[offKey{disk: st.disk, off: st.nextClient}] = st
	st.lastActive = now

	covered := false
	for _, b := range st.buffers {
		if !b.covers(req.Offset, req.Length) {
			continue
		}
		if b.ready {
			sh.stats.BufferHits++
			if o := sh.srv.cfg.Obs; o != nil {
				o.bufferHits.Inc()
			}
			sh.serveFromBuffer(st, b, pendingReq{off: req.Offset, length: req.Length, start: now, trace: req.Trace, done: req.Done}, now)
			return
		}
		covered = true // an in-flight fetch will deliver it
		break
	}
	// If the range was fetched before but its buffer has since been
	// dropped (GC), rewind the fetch pointer so it is read again.
	if !covered && req.Offset < st.nextFetch {
		st.nextFetch = req.Offset
	}
	st.queue = append(st.queue, pendingReq{off: req.Offset, length: req.Length, start: now, trace: req.Trace, done: req.Done})

	// A stream with waiting clients and nothing staged or queued for
	// dispatch re-enters the candidate queue (it may have been rotated
	// out with all buffers consumed).
	if !st.dispatched && !st.queued && sh.eligible(st) {
		sh.enqueueCandidate(st)
		sh.pump()
	}
}

// lookupNearSeq returns the stream on disk whose expected offset is
// nearest to off within the configured window, or nil. Caller holds
// sh.mu.
//
//lint:holds mu
func (sh *shard) lookupNearSeq(disk int, off int64) *stream {
	var best *stream
	var bestDist int64
	for _, st := range sh.streams {
		if st.disk != disk {
			continue
		}
		dist := off - st.nextClient
		if dist < 0 {
			dist = -dist
		}
		if dist > sh.srv.cfg.NearSeqWindow {
			continue
		}
		if best == nil || dist < bestDist {
			best, bestDist = st, dist
		}
	}
	return best
}

// acceptNearSeq folds a near-sequential request into a stream: a
// backward overlap is served from staged data (or directly) without
// moving the stream; a forward gap marks the skipped range consumed
// and advances the stream. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) acceptNearSeq(st *stream, req Request, now time.Duration) {
	sh.stats.NearSeqAccepted++
	if o := sh.srv.cfg.Obs; o != nil {
		o.nearSeqAccepted.Inc()
	}
	if req.Offset+req.Length <= st.nextClient {
		// Entirely behind the stream: a re-read. Serve staged data if
		// it is still resident; otherwise go directly to the disk.
		st.lastActive = now
		for _, b := range st.buffers {
			if b.ready && b.covers(req.Offset, req.Length) {
				sh.stats.BufferHits++
				if o := sh.srv.cfg.Obs; o != nil {
					o.bufferHits.Inc()
				}
				sh.serveFromBuffer(st, b,
					pendingReq{off: req.Offset, length: req.Length, start: now, trace: req.Trace, done: req.Done}, now)
				return
			}
		}
		sh.directRead(req, now)
		return
	}
	// Forward gap (or partial overlap): credit the skipped range to
	// the buffers that staged it, so they still free when the stream
	// moves past them.
	if gap := req.Offset - st.nextClient; gap > 0 {
		sh.stats.BytesSkipped += gap
		for _, b := range append([]*buffer(nil), st.buffers...) {
			if b.start >= req.Offset || b.end <= st.nextClient {
				continue
			}
			covered := req.Offset
			if b.end < covered {
				covered = b.end
			}
			if mark := covered - b.start; mark > b.consumed {
				b.consumed = mark
			}
			if b.ready && b.consumed >= b.size() {
				sh.freeBuffer(st, b, false)
			}
		}
	}
	sh.acceptStreamRequest(st, req, now)
}

// eligible reports whether a stream may generate more disk requests:
// it has disk left and its staged-ahead window (the per-stream working
// set, §4.3) is below N·R beyond the client's position.
func (sh *shard) eligible(st *stream) bool {
	if st.nextFetch >= sh.srv.dev.Capacity(st.disk) {
		return false
	}
	if sh.diskBlocked(st.disk, sh.srv.clock.Now()) {
		// An open circuit keeps the stream out of the dispatch set; it
		// re-enters on the next client request after the disk recovers
		// (or is collected once it idles out).
		return false
	}
	ahead := st.nextFetch - st.nextClient
	return ahead < int64(sh.srv.cfg.RequestsPerStream)*sh.srv.cfg.ReadAhead
}

// serveFromBuffer completes one request from a ready buffer and frees
// the buffer once fully consumed. Consumption is a watermark relative
// to the buffer start, so duplicate or overlapping reads (near-
// sequential mode) never over-count. The completion itself is batched
// (enqueueDone) and carries a reference on the buffer's pooled memory
// when there is one. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) serveFromBuffer(st *stream, b *buffer, p pendingReq, now time.Duration) {
	firstHit := b.consumed == 0
	if mark := p.off + p.length - b.start; mark > b.consumed {
		b.consumed = mark
	}
	b.lastActive = now
	sh.stats.BytesDelivered += p.length
	if o := sh.srv.cfg.Obs; o != nil {
		o.bytesDelivered.Add(p.length)
		o.requestLatency.Observe(now - p.start)
		o.span(st.id, st.disk, obs.StageDeliver, p.off, p.length)
	}
	if w := sh.srv.win; w != nil {
		w.observeRequest(now - p.start)
	}
	sh.scoreDelivery(st.slo, st.disk, int32(st.id), p.trace, p.off, p.length, now-p.start, true, now)
	sh.srv.traceEvent(trace.Event{Kind: trace.KindClient, Stream: st.id, Disk: st.disk, Offset: p.off,
		Length: p.length, Start: p.start, End: now, Hit: true})
	// Deliver events are recorded at buffer granularity — the first
	// request served from each staged buffer — rather than per request:
	// a stream delivering thousands of buffer hits would otherwise
	// flood the bounded ring with identical events and evict the
	// scheduling history the recorder exists to keep. The first hit
	// also carries the interesting latency (it includes any wait for
	// the fetch). Traced requests always record so an individual
	// request can be followed end to end.
	if sh.fr != nil && (p.trace != 0 || firstHit) {
		sh.fr.Record(flight.Event{Trace: p.trace, Op: flight.OpDeliver, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: p.off, Length: p.length, T: now, Dur: now - p.start})
	}
	if p.done != nil {
		resp := Response{
			Start:      p.start,
			Data:       b.slice(p.off, p.length),
			FromBuffer: true,
		}
		if resp.Data != nil && b.pbuf != nil {
			b.pbuf.Retain()
			resp.pbuf = b.pbuf
		}
		sh.enqueueDone(p.done, resp, p.length)
	}
	if b.consumed >= b.size() {
		sh.freeBuffer(st, b, false)
		sh.maybeRetire(st)
		sh.pump()
	}
	// Consumption may have reopened the stream's working-set window.
	if !st.dispatched && !st.queued && sh.eligible(st) {
		sh.enqueueCandidate(st)
		sh.pump()
	}
}

// scoreDelivery scores one successful delivery against the SLO engine
// and records a flight event when it violated its deadline. A no-op
// when Config.SLOTarget is off; lock-free and allocation-free
// otherwise (the buffer-hit path runs through it). Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) scoreDelivery(entry *slo.StreamLedger, disk int, stream int32, tr uint64, off, length int64, lat time.Duration, fromBuffer bool, now time.Duration) {
	l := sh.srv.sloLedger
	if l == nil {
		return
	}
	v, late := l.Score(entry, disk, length, lat, fromBuffer)
	if v == slo.OnTime {
		return
	}
	// Violations are rare by construction (the objective is three
	// nines), so recording each one cannot crowd the flight ring the
	// way per-hit deliver events would.
	if sh.fr != nil {
		op := flight.OpSLOLate
		if v == slo.Missed {
			op = flight.OpSLOMiss
		}
		sh.fr.Record(flight.Event{Trace: tr, Op: op, Disk: uint16(disk),
			Stream: stream, Offset: off, Length: length, T: now, Dur: late})
	}
}

// scoreMiss books a failed delivery as an SLO miss (an errored request
// can never meet its objective) and records the flight event. A no-op
// when Config.SLOTarget is off. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) scoreMiss(entry *slo.StreamLedger, disk int, stream int32, tr uint64, off, length int64, lat time.Duration, now time.Duration) {
	l := sh.srv.sloLedger
	if l == nil {
		return
	}
	late := l.ScoreError(entry, disk, length, lat)
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Trace: tr, Op: flight.OpSLOMiss, Err: flight.ErrIO, Disk: uint16(disk),
			Stream: stream, Offset: off, Length: length, T: now, Dur: late})
	}
}

// directRead services a request through the non-sequential path,
// reading into pooled memory when the device supports it. The device
// call itself is deferred to flush. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) directRead(req Request, now time.Duration) {
	sh.stats.DirectReads++
	if o := sh.srv.cfg.Obs; o != nil {
		o.directReads.Inc()
	}
	srv := sh.srv
	sh.pendingIO = append(sh.pendingIO, func() {
		var pb *bufpool.Buf
		var err error
		if srv.rinto != nil {
			pb = srv.pool.Get(req.Length)
			err = srv.rinto.ReadInto(req.Disk, req.Offset, req.Length, pb.Data, func(data []byte, derr error) {
				sh.onDirectDone(req, now, pb, data, derr)
			})
		} else {
			err = srv.dev.ReadAt(req.Disk, req.Offset, req.Length, func(data []byte, derr error) {
				sh.onDirectDone(req, now, nil, data, derr)
			})
		}
		if err != nil {
			// Validated at Submit; only a racing capacity change could
			// land here. Fail the request rather than wedging the
			// client.
			pb.Release()
			srv.complete(req.Done, Response{Start: now, Direct: true, Err: err})
		}
	})
}

// onDirectDone routes the direct-path device completion through the
// shard's completion reaper, which books it (in a batch, when other
// completions are queued behind it) under the shard lock.
func (sh *shard) onDirectDone(req Request, start time.Duration, pb *bufpool.Buf, data []byte, derr error) {
	sh.enqueueCompletion(completion{kind: compDirect, req: req, start: start, pb: pb, data: data, err: derr})
}

// onDirectDoneLocked books one direct-path delivery and completes it.
// The completion itself is safe under the lock: Server.complete only
// schedules through the clock, never runs the client callback inline.
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) onDirectDoneLocked(req Request, start time.Duration, pb *bufpool.Buf, data []byte, derr error) {
	srv := sh.srv
	sh.stats.BytesDelivered += req.Length
	end := srv.clock.Now()
	if derr != nil {
		sh.noteDiskFailure(req.Disk, end)
	} else {
		sh.noteDiskSuccess(req.Disk)
	}
	if o := srv.cfg.Obs; o != nil {
		o.bytesDelivered.Add(req.Length)
		o.requestLatency.Observe(end - start)
	}
	if w := srv.win; w != nil {
		w.observeRequest(end - start)
	}
	if derr != nil {
		sh.scoreMiss(nil, req.Disk, flight.NoStream, req.Trace, req.Offset, req.Length, end-start, end)
	} else {
		sh.scoreDelivery(nil, req.Disk, flight.NoStream, req.Trace, req.Offset, req.Length, end-start, false, end)
	}
	errMsg := ""
	if derr != nil {
		errMsg = derr.Error()
	}
	srv.traceEvent(trace.Event{Kind: trace.KindDirect, Stream: trace.NoStream, Disk: req.Disk,
		Offset: req.Offset, Length: req.Length, Start: start, End: end, Err: errMsg})
	srv.traceEvent(trace.Event{Kind: trace.KindClient, Stream: trace.NoStream, Disk: req.Disk,
		Offset: req.Offset, Length: req.Length, Start: start, End: end, Err: errMsg})
	if sh.fr != nil && req.Trace != 0 {
		code := flight.ErrNone
		if derr != nil {
			code = flight.ErrIO
		}
		sh.fr.Record(flight.Event{Trace: req.Trace, Op: flight.OpDirect, Err: code, Disk: uint16(req.Disk),
			Stream: flight.NoStream, Offset: req.Offset, Length: req.Length, T: end, Dur: end - start})
	}
	resp := Response{Start: start, Data: data, Direct: true, Err: derr}
	if derr != nil || data == nil {
		pb.Release()
	} else {
		resp.pbuf = pb
	}
	srv.complete(req.Done, resp)
}

// createStream registers a new sequential stream whose next expected
// request follows req. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) createStream(req Request, now time.Duration) {
	srv := sh.srv
	next := req.Offset + req.Length
	if next >= srv.dev.Capacity(req.Disk) {
		return // detected at the very end of the disk: nothing to do
	}
	key := offKey{disk: req.Disk, off: next}
	if sh.byExpected[key] != nil {
		return // an existing stream already expects this offset
	}
	st := &stream{
		id:         int(srv.nextID.Add(1) - 1),
		disk:       req.Disk,
		nextClient: next,
		nextFetch:  next,
		lastActive: now,
	}
	st.slo = srv.sloLedger.Admit(int32(st.id), st.disk, now)
	sh.streams[st.id] = st
	sh.byExpected[key] = st
	srv.liveStreams.Add(1)
	sh.stats.StreamsDetected++
	if o := srv.cfg.Obs; o != nil {
		o.streamsDetected.Inc()
		o.span(st.id, st.disk, obs.StageClassify, req.Offset, req.Length)
	}
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Trace: req.Trace, Op: flight.OpClassify, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: req.Offset, Length: req.Length, T: now})
	}
	sh.enqueueCandidate(st)
	sh.pump()
}

// enqueueCandidate appends st to the candidate queue and marks it
// queued. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) enqueueCandidate(st *stream) {
	st.queued = true
	sh.candidates = append(sh.candidates, st)
	sh.srv.liveCands.Add(1)
	sh.srv.cfg.Obs.span(st.id, st.disk, obs.StageEnqueue, st.nextFetch, 0)
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpEnqueue, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: st.nextFetch, T: sh.srv.clock.Now()})
	}
}

// pump admits candidates into the dispatch set while the global D and
// M budgets allow (§4.2). Fairness is enforced against this shard's
// disks with the global fair share ceil(D / healthy disks), so no
// disk can hold more than its share of the dispatch set no matter how
// the disks are distributed over shards. When a global budget is
// exhausted the shard flags itself for a repump instead of spinning.
// Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) pump() {
	srv := sh.srv
	if invariants.Enabled {
		defer sh.checkInvariants()
	}
	for len(sh.candidates) > 0 {
		if !srv.memWouldFit(srv.cfg.ReadAhead) {
			// Under memory pressure, reclaim the least-recently-used
			// idle staged buffer before giving up: candidates must not
			// starve behind prefetched data nobody is consuming. Only
			// this shard's buffers are visible here; when none qualify
			// the repump pass falls back to a cross-shard eviction.
			if !sh.evictIdleBuffer() {
				sh.markBlocked()
				return
			}
			continue
		}
		// Streams are detected in bursts (a disk's cache turns the
		// last detection reads into back-to-back hits), so plain FIFO
		// admission can hand every slot to one disk's streams and idle
		// the rest of the array. The dispatch set is therefore divided
		// fairly: each disk holds at most ceil(D/#disks) slots, and
		// among admittable candidates those on the least-loaded disk
		// win; the policy picks within that set (FIFO for the paper's
		// round-robin). Disks with an open circuit are excluded on both
		// sides: their candidates cannot be admitted, and they do not
		// count toward the fair share, so the healthy disks keep the
		// full dispatch set between them.
		now := srv.clock.Now()
		ndisks := srv.dev.Disks() - int(srv.degraded.Load())
		if ndisks < 1 {
			ndisks = 1
		}
		maxPerDisk := (srv.cfg.DispatchSize + ndisks - 1) / ndisks
		// Soft deprioritization (the straggler-aware analog of the hard
		// diskBlocked exclusion): candidates on a disk whose windowed
		// fetch EWMA exceeds SteerFactor times the fastest seeded
		// candidate disk yield to healthy candidates first. Unlike an
		// open circuit this never starves the slow disk — when every
		// admissible candidate is slow the filter drops away.
		baseline := sh.steerBaseline()
		skipSlow := baseline > 0
		minLoad := -1
		for {
			for _, c := range sh.candidates {
				if sh.diskBlocked(c.disk, now) {
					continue
				}
				if skipSlow && sh.diskSlow(c.disk, baseline) {
					continue
				}
				load := sh.perDisk[c.disk]
				if load >= maxPerDisk {
					continue
				}
				if minLoad < 0 || load < minLoad {
					minLoad = load
				}
			}
			if minLoad >= 0 || !skipSlow {
				break
			}
			skipSlow = false
		}
		if minLoad < 0 {
			return // every candidate's disk is at its fair share (or blocked)
		}
		if !srv.slotAcquire() {
			// The dispatch set is full globally; a release will repump.
			sh.markBlocked()
			return
		}
		eligibleIdx := make([]int, 0, len(sh.candidates))
		filtered := make([]*stream, 0, len(sh.candidates))
		for i, c := range sh.candidates {
			if sh.perDisk[c.disk] == minLoad && !sh.diskBlocked(c.disk, now) &&
				!(skipSlow && sh.diskSlow(c.disk, baseline)) {
				eligibleIdx = append(eligibleIdx, i)
				filtered = append(filtered, c)
			}
		}
		pick := srv.cfg.Policy.Next(filtered, sh.lastOffset)
		if pick < 0 || pick >= len(filtered) {
			pick = 0
		}
		idx := eligibleIdx[pick]
		st := sh.candidates[idx]
		sh.candidates = append(sh.candidates[:idx], sh.candidates[idx+1:]...)
		srv.liveCands.Add(-1)
		st.queued = false
		if !sh.eligible(st) {
			// Working-set full or disk exhausted: the stream re-enters
			// the queue when consumption advances (acceptStreamRequest)
			// or retires.
			srv.slotRelease()
			sh.maybeRetire(st)
			continue
		}
		st.dispatched = true
		st.issuedInResidency = 0
		sh.dispatched++
		sh.perDisk[st.disk]++
		srv.cfg.Obs.span(st.id, st.disk, obs.StageDispatch, st.nextFetch, 0)
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpDispatch, Disk: uint16(st.disk),
				Stream: int32(st.id), Offset: st.nextFetch, T: now})
		}
		sh.issueFetch(st)
	}
}

// checkInvariants asserts the scheduler's state invariants when the
// `invariants` build tag is on (no-op otherwise): the §4.2 dispatch
// bound D, the §4.3 memory bound M (the runtime face of M ≥ D·R·N),
// and the consistency of the shard-local accounting the global bounds
// rest on. It is called from the dispatch path (pump), the completion
// path (onFetchDone), and the GC tick. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) checkInvariants() {
	if !invariants.Enabled {
		return
	}
	srv := sh.srv
	gmem := srv.memUsed.Load()
	invariants.Check(gmem >= 0, "staged memory went negative: %d", gmem)
	invariants.Check(gmem <= srv.cfg.Memory,
		"staged bytes %d exceed the memory bound M=%d (D=%d R=%d N=%d)",
		gmem, srv.cfg.Memory, srv.cfg.DispatchSize, srv.cfg.ReadAhead, srv.cfg.RequestsPerStream)
	gdisp := srv.dispatched.Load()
	invariants.Check(gdisp >= 0 && gdisp <= int64(srv.cfg.DispatchSize),
		"dispatch set holds %d streams, bound D=%d", gdisp, srv.cfg.DispatchSize)
	invariants.Check(sh.memUsed >= 0, "shard %d staged memory went negative: %d", sh.idx, sh.memUsed)
	invariants.Check(sh.bufCount >= 0, "shard %d live buffer count went negative: %d", sh.idx, sh.bufCount)

	perDisk := 0
	for _, n := range sh.perDisk {
		perDisk += n
	}
	invariants.Check(perDisk == sh.dispatched,
		"shard %d per-disk dispatch counts sum to %d, shard holds %d", sh.idx, perDisk, sh.dispatched)

	var staged int64
	nbuf := 0
	ndispatched := 0
	for _, st := range sh.streams {
		for _, b := range st.buffers {
			staged += b.size()
			nbuf++
		}
		if st.dispatched {
			ndispatched++
		}
		invariants.Check(!(st.dispatched && st.queued),
			"stream %d is both dispatched and queued as a candidate", st.id)
		invariants.Check(st.issuedInResidency <= srv.cfg.RequestsPerStream,
			"stream %d issued %d fetches in one residency, bound N=%d",
			st.id, st.issuedInResidency, srv.cfg.RequestsPerStream)
	}
	invariants.Check(staged == sh.memUsed,
		"shard %d buffers hold %d bytes but accounting says %d", sh.idx, staged, sh.memUsed)
	invariants.Check(nbuf == sh.bufCount,
		"shard %d has %d live buffers but accounting says %d", sh.idx, nbuf, sh.bufCount)
	invariants.Check(ndispatched == sh.dispatched,
		"shard %d has %d streams marked dispatched but counter says %d", sh.idx, ndispatched, sh.dispatched)

	for key, st := range sh.byExpected {
		invariants.Check(key.disk == st.disk && key.off == st.nextClient,
			"stream %d indexed under (disk=%d, off=%d) but expects (disk=%d, off=%d)",
			st.id, key.disk, key.off, st.disk, st.nextClient)
	}
}

// findEvictVictim returns the shard's least-recently-active staged
// buffer that is ready, has no waiter, and has been idle at least
// EvictIdle (with its owner), or nils. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) findEvictVictim() (*stream, *buffer) {
	now := sh.srv.clock.Now()
	var victim *buffer
	var owner *stream
	for _, st := range sh.streams {
		if st.fetchInFlight {
			continue
		}
		for _, b := range st.buffers {
			if !b.ready || now-b.lastActive < sh.srv.cfg.EvictIdle {
				continue
			}
			if hasWaiter(st, b) {
				continue
			}
			if victim == nil || b.lastActive < victim.lastActive {
				victim, owner = b, st
			}
		}
	}
	return owner, victim
}

// evictIdleBuffer frees the shard's LRU evictable staged buffer,
// reporting whether anything was freed. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) evictIdleBuffer() bool {
	owner, victim := sh.findEvictVictim()
	if victim == nil {
		return false
	}
	now := sh.srv.clock.Now()
	sh.stats.BuffersEvicted++
	if o := sh.srv.cfg.Obs; o != nil {
		o.buffersEvicted.Inc()
		o.span(owner.id, victim.disk, obs.StageEvict, victim.start, victim.size())
	}
	sh.srv.traceEvent(trace.Event{Kind: trace.KindEvict, Stream: owner.id, Disk: victim.disk,
		Offset: victim.start, Length: victim.size(), Start: victim.issuedAt, End: now})
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpEvict, Disk: uint16(victim.disk),
			Stream: int32(owner.id), Offset: victim.start, Length: victim.size(), T: now})
	}
	sh.freeBuffer(owner, victim, false)
	// Unconsumed data was dropped; a later request for it rewinds the
	// fetch pointer (acceptStreamRequest).
	return true
}

// hasWaiter reports whether any queued request of st falls inside b.
func hasWaiter(st *stream, b *buffer) bool {
	for _, p := range st.queue {
		if b.covers(p.off, p.length) {
			return true
		}
	}
	return false
}

// issueFetch generates one R-sized disk request for a dispatched
// stream, reserving its bytes against the global budget and drawing
// its staging memory from the pool when the device reads into caller
// buffers. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) issueFetch(st *stream) {
	srv := sh.srv
	capacity := srv.dev.Capacity(st.disk)
	flen := srv.cfg.ReadAhead
	if rem := capacity - st.nextFetch; flen > rem {
		flen = rem
	}
	if flen <= 0 {
		sh.rotateOut(st)
		return
	}
	if !srv.memReserve(flen) {
		// Another shard won the admission-check race for the last
		// bytes; give the slot back and wait for a release.
		sh.markBlocked()
		sh.rotateOut(st)
		return
	}
	b := &buffer{
		disk:       st.disk,
		readDisk:   sh.pickFetchDisk(st.disk),
		start:      st.nextFetch,
		end:        st.nextFetch + flen,
		lastActive: srv.clock.Now(),
		issuedAt:   srv.clock.Now(),
		owner:      st,
	}
	if srv.rinto != nil {
		b.pbuf = srv.pool.Get(flen)
	}
	b.inDevice = true
	if b.readDisk != st.disk {
		sh.stats.SteeredFetches++
		if o := srv.cfg.Obs; o != nil {
			o.steeredFetches.Inc()
		}
	}
	st.buffers = append(st.buffers, b)
	st.nextFetch = b.end
	st.fetchInFlight = true
	st.totalFetched += flen
	sh.memUsed += flen
	sh.bufCount++
	srv.bufCount.Add(1)
	sh.updateAccounting()
	sh.stats.Fetches++
	sh.stats.BytesFetched += flen
	if o := srv.cfg.Obs; o != nil {
		o.fetches.Inc()
		o.bytesFetched.Add(flen)
		o.span(st.id, st.disk, obs.StageFetch, b.start, flen)
	}
	// Device-level events carry the disk the read actually lands on
	// (readDisk), so per-disk latency attribution stays truthful when
	// steering routes around the primary.
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpFetch, Disk: uint16(b.readDisk),
			Stream: int32(st.id), Offset: b.start, Length: flen, T: b.issuedAt})
	}

	// The device call runs off-lock (flush). The stream cannot issue
	// a second fetch meanwhile: fetchInFlight stays set until the
	// completion path clears it.
	sh.armFetchDeadline(st, b)
	sh.armSpeculation(st, b)
	sh.pendingIO = append(sh.pendingIO, sh.fetchCall(st, b))
}

// fetchCall builds the off-lock device call for a buffer's fetch (and
// its retries): into the buffer's pooled memory when it has any,
// through the allocating path otherwise. The pooled buffer is
// captured here, under the lock — NOT read from b.pbuf when the call
// runs: a speculative leg can win between the closure being queued
// and flush executing it (the trigger delay floors at SpecMinDelay,
// which a descheduled flush can overshoot), and the win swaps b.pbuf
// to the winner's bytes while stashing these in the spec record. The
// late primary write must land in its own (stashed) memory, never in
// the winner's live — or worse, already recycled — buffer. Caller
// holds sh.mu.
//
//lint:holds mu
func (sh *shard) fetchCall(st *stream, b *buffer) func() {
	srv := sh.srv
	pb := b.pbuf
	return func() {
		var err error
		if pb != nil {
			err = srv.rinto.ReadInto(b.readDisk, b.start, b.size(), pb.Data, func(data []byte, derr error) {
				sh.onFetchDone(st, b, data, derr)
			})
		} else {
			err = srv.dev.ReadAt(b.readDisk, b.start, b.size(), func(data []byte, derr error) {
				sh.onFetchDone(st, b, data, derr)
			})
		}
		if err != nil {
			// Validated ranges make this unreachable in practice;
			// treat it as a failed fetch so waiters are not wedged.
			sh.onFetchDone(st, b, nil, err)
		}
	}
}

// armFetchDeadline starts the FetchTimeout timer for a buffer's fetch,
// replacing any previous timer. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) armFetchDeadline(st *stream, b *buffer) {
	if sh.srv.cfg.FetchTimeout <= 0 {
		return
	}
	if b.cancelTimeout != nil {
		b.cancelTimeout()
	}
	b.cancelTimeout = sh.srv.clock.Schedule(sh.srv.cfg.FetchTimeout, func() {
		sh.onFetchTimeout(st, b)
	})
}

// onFetchTimeout fires when a fetch outlives FetchTimeout: the waiters
// covered by the buffer receive ErrFetchTimeout, the staged memory is
// reclaimed, and the stream leaves the dispatch set so the slot goes to
// a live stream. The late device completion, if it ever arrives, is
// dropped by the abandoned flag — and is also what recycles the pooled
// memory, because the device may still be writing into it. Only when
// no call is in flight (the fetch was in retry backoff) is the pooled
// buffer released here. The timeout counts as a device failure toward
// the disk's circuit.
func (sh *shard) onFetchTimeout(st *stream, b *buffer) {
	srv := sh.srv
	sh.mu.Lock()
	if b.ready || b.abandoned {
		sh.mu.Unlock()
		return // completed (or already timed out) before the timer ran
	}
	b.abandoned = true
	b.cancelTimeout = nil
	if b.specCancel != nil {
		b.specCancel()
		b.specCancel = nil
	}
	st.fetchInFlight = false
	now := srv.clock.Now()
	sh.stats.FetchTimeouts++
	if o := srv.cfg.Obs; o != nil {
		o.fetchTimeouts.Inc()
	}
	srv.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: st.disk, Offset: b.start,
		Length: b.size(), Start: b.issuedAt, End: now, Err: ErrFetchTimeout.Error()})
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpTimeout, Err: flight.ErrTimeout, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - b.issuedAt})
	}
	sh.noteReadOutcome(b.readDisk, false, now)
	var failed []pendingReq
	st.queue, failed = splitCovered(st.queue, b)
	for _, p := range failed {
		sh.scoreMiss(st.slo, b.readDisk, int32(st.id), p.trace, p.off, p.length, now-p.start, now)
	}
	sh.freeBuffer(st, b, false)
	if !b.inDevice && b.pbuf != nil {
		b.pbuf.Release()
		b.pbuf = nil
	}
	sh.parkStream(st)
	sh.checkInvariants()
	sh.syncGauges()
	sh.mu.Unlock()
	for _, p := range failed {
		srv.complete(p.done, Response{Start: p.start, Err: ErrFetchTimeout})
	}
	sh.flush()
}

// scheduleRetry re-issues a transiently-failed fetch after exponential
// backoff (RetryBackoff doubling per attempt). The buffer stays live —
// memory accounted, waiters queued, fetchInFlight held, pooled bytes
// attached — so the stream cannot double-fetch the range meanwhile.
// The FetchTimeout deadline is NOT re-armed: it bounds the whole
// fetch, retries included, and may fire mid-backoff. Caller holds
// sh.mu.
//
//lint:holds mu
func (sh *shard) scheduleRetry(st *stream, b *buffer) {
	sh.stats.FetchRetries++
	if o := sh.srv.cfg.Obs; o != nil {
		o.fetchRetries.Inc()
	}
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpRetry, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: sh.srv.clock.Now()})
	}
	backoff := sh.srv.cfg.RetryBackoff << (b.attempts - 1)
	sh.srv.clock.Schedule(backoff, func() {
		sh.mu.Lock()
		if b.abandoned || b.ready {
			// Timed out while backing off (pooled bytes already freed), or
			// a speculative leg won meanwhile (its win recycled this leg's
			// bytes); either way the re-issue is dead.
			sh.mu.Unlock()
			return
		}
		b.inDevice = true
		sh.pendingIO = append(sh.pendingIO, sh.fetchCall(st, b))
		sh.mu.Unlock()
		sh.flush()
	})
}

// onFetchDone routes the fetch's device completion through the
// shard's completion reaper, which batches concurrent completions
// under one lock hold.
func (sh *shard) onFetchDone(st *stream, b *buffer, data []byte, derr error) {
	sh.enqueueCompletion(completion{kind: compFetch, st: st, b: b, data: data, err: derr})
}

// onFetchDoneLocked is the completion path (§4.2). It gives priority
// to the issue path — the next fetch (or the next candidate stream)
// is issued before any pending client requests are completed — so the
// disks never idle behind client completions. Failure completions run
// through Server.complete, which is safe under the lock (it only
// schedules through the clock); queued work is drained by the
// reaper's flush after the lock is released. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) onFetchDoneLocked(st *stream, b *buffer, data []byte, derr error) {
	srv := sh.srv
	now := srv.clock.Now()
	b.inDevice = false
	if sp := b.spec; sp != nil && sp.won {
		// A speculative leg already delivered this buffer. The late
		// primary completion only recycles the pooled bytes the device
		// was writing into, stashed in the spec record at win time, and
		// books its outcome with the slow disk's breaker.
		sp.pbuf.Release()
		sp.pbuf = nil
		b.spec = nil
		sh.noteReadOutcome(b.readDisk, derr == nil, now)
		return
	}
	if b.abandoned {
		// The fetch already hit FetchTimeout: memory reclaimed, waiters
		// failed, stream parked. Drop the late completion; the pooled
		// bytes the device was still writing into are safe to recycle
		// only now.
		b.pbuf.Release()
		b.pbuf = nil
		return
	}
	if derr != nil && b.attempts < srv.cfg.FetchRetries && blockdev.IsTransient(derr) {
		// Transient device error with retry budget left: re-issue the
		// same fetch after backoff instead of failing its waiters. The
		// deadline timer stays armed across attempts.
		b.attempts++
		sh.scheduleRetry(st, b)
		return
	}
	if derr != nil && b.spec != nil && !b.spec.done {
		// Terminal primary error while a speculative leg is still in
		// flight: park the buffer on the replica instead of failing its
		// waiters — the duplicate may still deliver the data. The
		// primary's pooled bytes are safe to recycle (its completion
		// just arrived); the fetch deadline stays armed to bound the
		// spec leg. onSpecDone settles the buffer either way.
		b.primaryFailed = true
		if b.pbuf != nil {
			b.pbuf.Release()
			b.pbuf = nil
		}
		sh.noteReadOutcome(b.readDisk, false, now)
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpFetchErr, Err: flight.ErrIO, Disk: uint16(b.readDisk),
				Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - b.issuedAt})
		}
		return
	}
	if b.cancelTimeout != nil {
		b.cancelTimeout()
		b.cancelTimeout = nil
	}
	if b.specCancel != nil {
		b.specCancel()
		b.specCancel = nil
	}
	b.ready = true
	b.data = data
	if data == nil && b.pbuf != nil {
		// The device did not materialize bytes into the pooled buffer
		// (simulation-style backend); nothing references it.
		b.pbuf.Release()
		b.pbuf = nil
	}
	b.lastActive = now
	fetchErr := ""
	if derr != nil {
		fetchErr = derr.Error()
	}
	if o := srv.cfg.Obs; o != nil {
		o.fetchLatency.Observe(now - b.issuedAt)
		o.span(st.id, st.disk, obs.StageStaged, b.start, b.size())
	}
	if w := srv.win; w != nil {
		w.observeFetch(b.readDisk, now-b.issuedAt)
	}
	srv.traceEvent(trace.Event{Kind: trace.KindFetch, Stream: st.id, Disk: b.readDisk, Offset: b.start,
		Length: b.size(), Start: b.issuedAt, End: now, Err: fetchErr})
	if sh.fr != nil {
		op, code := flight.OpStaged, flight.ErrNone
		if derr != nil {
			op, code = flight.OpFetchErr, flight.ErrIO
		}
		sh.fr.Record(flight.Event{Op: op, Err: code, Disk: uint16(b.readDisk),
			Stream: int32(st.id), Offset: b.start, Length: b.size(), T: now, Dur: now - b.issuedAt})
	}
	st.fetchInFlight = false
	st.issuedInResidency++
	sh.lastOffset[st.disk] = b.end

	if derr != nil {
		// Fail everything waiting on this buffer and drop it.
		sh.noteReadOutcome(b.readDisk, false, now)
		var failed []pendingReq
		st.queue, failed = splitCovered(st.queue, b)
		for _, p := range failed {
			sh.scoreMiss(st.slo, b.readDisk, int32(st.id), p.trace, p.off, p.length, now-p.start, now)
		}
		sh.freeBuffer(st, b, false)
		sh.parkStream(st)
		sh.checkInvariants()
		sh.syncGauges()
		for _, p := range failed {
			srv.complete(p.done, Response{Start: p.start, Err: derr})
		}
		return
	}

	sh.noteReadOutcome(b.readDisk, true, now)

	// Issue path first.
	if st.dispatched {
		if st.issuedInResidency < srv.cfg.RequestsPerStream &&
			st.nextFetch < srv.dev.Capacity(st.disk) &&
			srv.memWouldFit(srv.cfg.ReadAhead) {
			sh.issueFetch(st)
		} else {
			sh.rotateOut(st)
		}
	}

	// Completion path: serve queued requests now covered by staged
	// data, in order.
	sh.drainQueue(st, now)
	sh.checkInvariants()
	sh.syncGauges()
}

// drainQueue serves the head of the stream queue while ready buffers
// cover it. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) drainQueue(st *stream, now time.Duration) {
	for len(st.queue) > 0 {
		p := st.queue[0]
		var hit *buffer
		for _, b := range st.buffers {
			if b.ready && b.covers(p.off, p.length) {
				hit = b
				break
			}
		}
		if hit == nil {
			return
		}
		st.queue = st.queue[1:]
		sh.stats.QueuedServed++
		if o := sh.srv.cfg.Obs; o != nil {
			o.queuedServed.Inc()
		}
		sh.serveFromBuffer(st, hit, p, now)
	}
}

// splitCovered partitions queue into (kept, covered-by-b).
func splitCovered(queue []pendingReq, b *buffer) (kept, covered []pendingReq) {
	for _, p := range queue {
		if b.covers(p.off, p.length) {
			covered = append(covered, p)
		} else {
			kept = append(kept, p)
		}
	}
	return kept, covered
}

// rotateOut removes a stream from the dispatch set (§4.2: after N
// requests it is replaced by the next sequential stream) and re-queues
// it as a candidate when it still has work. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) rotateOut(st *stream) {
	sh.unDispatch(st)
	st.issuedInResidency = 0
	if !st.queued && sh.eligible(st) {
		sh.enqueueCandidate(st)
	}
	sh.maybeRetire(st)
	sh.pump()
}

// parkStream removes a stream whose fetch failed (or timed out) from
// the dispatch set without re-admitting it to the candidate queue:
// speculatively prefetching the next window of a stream that just lost
// its staged data — with nobody waiting — only burns a sick disk
// further. The stream re-enters on its next client request (or idles
// out and is collected). Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) parkStream(st *stream) {
	sh.unDispatch(st)
	st.issuedInResidency = 0
	sh.maybeRetire(st)
	sh.pump()
}

// unDispatch releases a stream's dispatch slot, both locally and in
// the global counter. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) unDispatch(st *stream) {
	if !st.dispatched {
		return
	}
	st.dispatched = false
	sh.dispatched--
	sh.srv.slotRelease()
	if sh.perDisk[st.disk] > 0 {
		sh.perDisk[st.disk]--
	}
	// Rotation is worth a timeline entry: dispatch-set churn is the
	// §4.2 mechanism the paper's fairness argument rests on.
	if sh.srv.cfg.Obs != nil || sh.srv.cfg.Trace != nil || sh.fr != nil {
		now := sh.srv.clock.Now()
		if o := sh.srv.cfg.Obs; o != nil {
			o.rotations.Inc()
			o.span(st.id, st.disk, obs.StageRotate, st.nextFetch, 0)
		}
		sh.srv.traceEvent(trace.Event{Kind: trace.KindRotate, Stream: st.id, Disk: st.disk,
			Offset: st.nextFetch, Start: now, End: now})
		if sh.fr != nil {
			sh.fr.Record(flight.Event{Op: flight.OpRotate, Disk: uint16(st.disk),
				Stream: int32(st.id), Offset: st.nextFetch, T: now})
		}
	}
}

// freeBuffer releases a staged buffer's memory: the global budget
// bytes always; the pooled bytes only when no device call can still
// touch them (abandoned fetches recycle through the late completion
// instead). Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) freeBuffer(st *stream, b *buffer, gc bool) {
	for i, cur := range st.buffers {
		if cur == b {
			st.buffers = append(st.buffers[:i], st.buffers[i+1:]...)
			break
		}
	}
	sh.memUsed -= b.size()
	sh.bufCount--
	sh.srv.bufCount.Add(-1)
	sh.srv.memRelease(b.size())
	if b.specCancel != nil {
		b.specCancel()
		b.specCancel = nil
	}
	b.data = nil
	if !b.abandoned && b.pbuf != nil {
		b.pbuf.Release()
		b.pbuf = nil
	}
	if gc {
		sh.stats.BuffersGCed++
	} else {
		sh.stats.BuffersFreed++
	}
	if o := sh.srv.cfg.Obs; o != nil {
		if gc {
			o.buffersGCed.Inc()
		} else {
			o.buffersFreed.Inc()
		}
	}
	sh.updateAccounting()
}

// maybeRetire drops a stream that has prefetched to the end of its
// disk and holds no data or waiters. Caller holds sh.mu.
//
//lint:holds mu
func (sh *shard) maybeRetire(st *stream) {
	if st.dispatched || st.queued || st.fetchInFlight {
		return
	}
	if st.nextFetch < sh.srv.dev.Capacity(st.disk) {
		return
	}
	if len(st.buffers) > 0 || len(st.queue) > 0 {
		return
	}
	if _, ok := sh.streams[st.id]; !ok {
		return
	}
	delete(sh.streams, st.id)
	delete(sh.byExpected, offKey{disk: st.disk, off: st.nextClient})
	sh.srv.sloLedger.Retire(st.slo)
	sh.srv.liveStreams.Add(-1)
	sh.stats.StreamsRetired++
	if o := sh.srv.cfg.Obs; o != nil {
		o.streamsRetired.Inc()
		o.span(st.id, st.disk, obs.StageRetire, st.nextClient, 0)
	}
	if sh.fr != nil {
		sh.fr.Record(flight.Event{Op: flight.OpRetire, Disk: uint16(st.disk),
			Stream: int32(st.id), Offset: st.nextClient, T: sh.srv.clock.Now()})
	}
}

func (sh *shard) updateAccounting() {
	if sh.srv.acct != nil {
		sh.srv.acct.SetLiveBuffers(int(sh.srv.bufCount.Load()))
	}
}

// gcTick is the periodic garbage collector (§4.3) for one shard: it
// frees staged buffers that have waited too long for their remaining
// requests, and removes streams (queues, hash entries) that were
// classified as sequential but went idle.
func (sh *shard) gcTick() {
	srv := sh.srv
	sh.mu.Lock()
	sh.gcArmed = false
	if sh.closed {
		sh.mu.Unlock()
		return
	}
	now := srv.clock.Now()
	if o := srv.cfg.Obs; o != nil {
		o.gcTicks.Inc()
	}

	for id, st := range sh.streams {
		// Streams with in-flight fetches or waiting clients are live by
		// definition: a waiter's data is either in flight or the stream
		// is queued/eligible, so it will be served.
		if st.fetchInFlight || len(st.queue) > 0 || st.dispatched {
			continue
		}
		// Free idle staged buffers (prefetched data nobody came back
		// for). The fetch pointer rewinds on a later request for the
		// dropped range (acceptStreamRequest).
		for _, b := range append([]*buffer(nil), st.buffers...) {
			if b.ready && now-b.lastActive > srv.cfg.BufferTimeout {
				sh.freeBuffer(st, b, true)
			}
		}
		// Drop idle streams entirely: queue, hash entry, candidacy.
		if now-st.lastActive > srv.cfg.StreamTimeout {
			for _, b := range append([]*buffer(nil), st.buffers...) {
				sh.freeBuffer(st, b, true)
			}
			if st.queued {
				for i, c := range sh.candidates {
					if c == st {
						sh.candidates = append(sh.candidates[:i], sh.candidates[i+1:]...)
						break
					}
				}
				st.queued = false
				srv.liveCands.Add(-1)
			}
			delete(sh.streams, id)
			delete(sh.byExpected, offKey{disk: st.disk, off: st.nextClient})
			srv.sloLedger.Retire(st.slo)
			srv.liveStreams.Add(-1)
			sh.stats.StreamsGCed++
			if o := srv.cfg.Obs; o != nil {
				o.streamsGCed.Inc()
				o.span(st.id, st.disk, obs.StageGC, st.nextClient, 0)
			}
			srv.traceEvent(trace.Event{Kind: trace.KindGC, Stream: st.id, Disk: st.disk,
				Offset: st.nextClient, Start: st.lastActive, End: now})
			if sh.fr != nil {
				sh.fr.Record(flight.Event{Op: flight.OpGC, Disk: uint16(st.disk),
					Stream: int32(st.id), Offset: st.nextClient, T: now})
			}
		}
	}
	sh.stats.RegionsGCed += int64(sh.cls.gc(now - srv.cfg.StreamTimeout))
	sh.pump()
	sh.armGC()
	sh.checkInvariants()
	sh.syncGauges()
	sh.mu.Unlock()
	sh.flush()
}
