package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/iostack"
)

// TestBreakerHalfOpenSingleProbe pins the probe-herd bug: a half-open
// circuit must admit exactly one request as the probe, failing the
// rest fast until the probe's outcome decides the state. The old
// breakerAllows returned true for every request while half-open, so a
// sick disk took the full request load the instant its cooldown
// elapsed.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 100 * time.Millisecond
	// Device reads 1..3 fail (tripping the circuit); later reads are
	// healthy, so the single admitted probe succeeds.
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{{Disk: 0, Mode: blockdev.FaultError, From: 1, To: 4}}, cfg)

	const spacing = 8 << 20 // widely spaced 4K reads: no stream forms
	for i := 0; i < 3; i++ {
		if err := n.do(t, Request{Disk: 0, Offset: int64(i) * spacing, Length: 4096}).Err; !errors.Is(err, blockdev.ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	if st := n.server.Stats(); st.BreakerTrips != 1 || st.DisksDegraded != 1 {
		t.Fatalf("after 3 failures: trips=%d degraded=%d, want 1/1", st.BreakerTrips, st.DisksDegraded)
	}

	if err := n.eng.RunFor(150 * time.Millisecond); err != nil {
		t.Fatal(err)
	}

	// Hammer: 20 requests submitted together against the cooled-down
	// circuit, all outstanding before any device outcome. Exactly one
	// may reach the device.
	const hammer = 20
	var okCount, fastFails, other int
	done := 0
	for i := 0; i < hammer; i++ {
		err := n.server.Submit(Request{
			Disk: 0, Offset: int64(10+i) * spacing, Length: 4096,
			Done: func(r Response) {
				switch {
				case r.Err == nil:
					okCount++
				case errors.Is(r.Err, ErrDiskDegraded):
					fastFails++
				default:
					other++
				}
				done++
			},
		})
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	n.await(t, func() bool { return done == hammer })
	if okCount != 1 || fastFails != hammer-1 || other != 0 {
		t.Fatalf("hammer outcomes: ok=%d fastfail=%d other=%d, want 1/%d/0", okCount, fastFails, other, hammer-1)
	}
	if got := sd.Faults(); got != 3 {
		t.Errorf("device faults = %d, want 3 (only the probe reached the device)", got)
	}
	// The successful probe closed the circuit.
	if st := n.server.Stats(); st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after successful probe, want 0", st.DisksDegraded)
	}
	if err := n.do(t, Request{Disk: 0, Offset: 40 * spacing, Length: 4096}).Err; err != nil {
		t.Errorf("post-recovery read: %v", err)
	}
}

// TestBreakerHalfOpenProbeHammerConcurrent is the real-clock, -race
// variant: the probe hangs, so the circuit stays half-open while 50
// goroutines hammer the disk. The device must see exactly one read
// (the probe); everyone else fails fast.
func TestBreakerHalfOpenProbeHammerConcurrent(t *testing.T) {
	mem, err := blockdev.NewMemDevice(1, 1<<30, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	clock := blockdev.NewRealClock()
	sd, err := blockdev.NewScriptDevice(mem, clock, []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultError, From: 1, To: 4},
		{Disk: 0, Mode: blockdev.FaultHang, From: 4, To: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 30 * time.Millisecond
	srv, err := NewServer(sd, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const spacing = 4 << 20
	read := func(i int) error {
		ch := make(chan error, 1)
		if err := srv.Submit(Request{Disk: 0, Offset: int64(i) * spacing, Length: 4096,
			Done: func(r Response) { ch <- r.Err }}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
		select {
		case err := <-ch:
			return err
		case <-time.After(5 * time.Second):
			t.Fatalf("read %d timed out", i)
			return nil
		}
	}

	for i := 0; i < 3; i++ {
		if err := read(i); !errors.Is(err, blockdev.ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	time.Sleep(50 * time.Millisecond) // cooldown elapses

	// One goroutine's request becomes the probe and hangs at the
	// device; the other 49 must all fail fast while it is out.
	const hammer = 50
	var mu sync.Mutex
	var fastFails int
	var wg sync.WaitGroup
	probeErr := make(chan error, hammer)
	for i := 0; i < hammer; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if err := srv.Submit(Request{Disk: 0, Offset: int64(100+i) * spacing, Length: 4096,
				Done: func(r Response) {
					if errors.Is(r.Err, ErrDiskDegraded) {
						mu.Lock()
						fastFails++
						mu.Unlock()
						probeErr <- r.Err
						return
					}
					probeErr <- r.Err
				}}); err != nil {
				t.Errorf("Submit: %v", err)
			}
		}(i)
	}
	wg.Wait()

	// 49 fast-fail completions arrive; the probe's hangs at the device.
	for i := 0; i < hammer-1; i++ {
		select {
		case err := <-probeErr:
			if !errors.Is(err, ErrDiskDegraded) {
				t.Fatalf("hammer completion %d: err = %v, want ErrDiskDegraded", i, err)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("hammer completion %d never arrived (hung=%d)", i, sd.Hung())
		}
	}
	if got := sd.Hung(); got != 1 {
		t.Fatalf("device holds %d reads, want exactly 1 probe", got)
	}
	mu.Lock()
	ff := fastFails
	mu.Unlock()
	if ff != hammer-1 {
		t.Fatalf("fast fails = %d, want %d", ff, hammer-1)
	}

	// Releasing the probe through the device closes the circuit.
	sd.ReleaseHung(nil)
	select {
	case err := <-probeErr:
		if err != nil {
			t.Fatalf("probe completion: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("probe completion never arrived")
	}
	if err := read(200); err != nil {
		t.Errorf("post-recovery read: %v", err)
	}
	if st := srv.Stats(); st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after recovery, want 0", st.DisksDegraded)
	}
}

// TestBreakerStaleSuccessIgnoredWhileCooling pins the stale-success
// bug: a success from a request issued before the trip must not close
// an open breaker mid-cooldown (the old noteDiskSuccess closed it
// instantly, re-admitting the full load on one lucky completion).
func TestBreakerStaleSuccessIgnoredWhileCooling(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = time.Second
	// Read #1 hangs (the pre-trip straggler); reads #2..4 fail and trip
	// the circuit; later reads are healthy.
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{
			{Disk: 0, Mode: blockdev.FaultHang, From: 1, To: 2},
			{Disk: 0, Mode: blockdev.FaultError, From: 2, To: 5},
		}, cfg)

	const spacing = 8 << 20
	var staleErr error
	staleDone := false
	if err := n.server.Submit(Request{Disk: 0, Offset: 0, Length: 4096,
		Done: func(r Response) { staleErr, staleDone = r.Err, true }}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := n.eng.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if staleDone {
		t.Fatal("hung read completed prematurely")
	}

	for i := 1; i <= 3; i++ {
		if err := n.do(t, Request{Disk: 0, Offset: int64(i) * spacing, Length: 4096}).Err; !errors.Is(err, blockdev.ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	if st := n.server.Stats(); st.BreakerTrips != 1 || st.DisksDegraded != 1 {
		t.Fatalf("trips=%d degraded=%d, want 1/1", st.BreakerTrips, st.DisksDegraded)
	}

	// The pre-trip read completes successfully while the circuit cools.
	sd.ReleaseHung(nil)
	n.await(t, func() bool { return staleDone })
	if staleErr != nil {
		t.Fatalf("stale read: %v", staleErr)
	}

	// The circuit must still be open: the stale success is ignored.
	if st := n.server.Stats(); st.DisksDegraded != 1 {
		t.Fatalf("DisksDegraded = %d after stale success, want 1 (still cooling)", st.DisksDegraded)
	}
	if err := n.do(t, Request{Disk: 0, Offset: 10 * spacing, Length: 4096}).Err; !errors.Is(err, ErrDiskDegraded) {
		t.Fatalf("read while cooling: err = %v, want ErrDiskDegraded", err)
	}

	// After the cooldown the normal probe path still runs: one probe,
	// healthy device, circuit closes.
	if err := n.eng.RunFor(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := n.do(t, Request{Disk: 0, Offset: 11 * spacing, Length: 4096}).Err; err != nil {
		t.Fatalf("probe read: %v", err)
	}
	if st := n.server.Stats(); st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after probe, want 0", st.DisksDegraded)
	}
}

// TestBreakerStaleSuccessPromotesHalfOpen covers the post-cooldown
// side of the stale-success fix: a stale success arriving after the
// cooldown promotes the circuit to half-open (the next request still
// probes) rather than closing it outright.
func TestBreakerStaleSuccessPromotesHalfOpen(t *testing.T) {
	cfg := DefaultConfig(64<<20, 1<<20)
	cfg.BreakerThreshold = 3
	cfg.BreakerCooldown = 100 * time.Millisecond
	n, sd := scriptNode(t, iostack.BaseConfig(iostack.Options{}),
		[]blockdev.FaultRule{
			{Disk: 0, Mode: blockdev.FaultHang, From: 1, To: 2},
			{Disk: 0, Mode: blockdev.FaultError, From: 2, To: 5},
		}, cfg)

	const spacing = 8 << 20
	staleDone := false
	if err := n.server.Submit(Request{Disk: 0, Offset: 0, Length: 4096,
		Done: func(r Response) { staleDone = true }}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := n.eng.RunFor(10 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := n.do(t, Request{Disk: 0, Offset: int64(i) * spacing, Length: 4096}).Err; !errors.Is(err, blockdev.ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}

	// Cooldown elapses with no traffic, then the stale success lands.
	if err := n.eng.RunFor(200 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	sd.ReleaseHung(nil)
	n.await(t, func() bool { return staleDone })

	infos := n.server.BreakerInfos()
	if len(infos) != 1 || infos[0].State != "half-open" {
		t.Fatalf("breaker state after post-cooldown stale success = %+v, want half-open", infos)
	}
	if st := n.server.Stats(); st.DisksDegraded != 0 {
		t.Fatalf("DisksDegraded = %d in half-open, want 0", st.DisksDegraded)
	}

	// Two requests submitted together: the first is the probe, the
	// second must still fail fast (the circuit did not skip to closed).
	var errA, errB error
	doneCount := 0
	for i, ep := range []*error{&errA, &errB} {
		if err := n.server.Submit(Request{Disk: 0, Offset: int64(20+i) * spacing, Length: 4096,
			Done: func(r Response) { *ep = r.Err; doneCount++ }}); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	n.await(t, func() bool { return doneCount == 2 })
	if errA != nil {
		t.Fatalf("probe request: %v", errA)
	}
	if !errors.Is(errB, ErrDiskDegraded) {
		t.Fatalf("second half-open request: err = %v, want ErrDiskDegraded", errB)
	}
	if st := n.server.Stats(); st.DisksDegraded != 0 {
		t.Errorf("DisksDegraded = %d after probe closed the circuit, want 0", st.DisksDegraded)
	}
}
