package disk

import (
	"time"

	"seqstream/internal/geom"
)

// SATA1Rate is the SATA-1 interface rate used throughout the paper
// (150 MB/s).
const SATA1Rate = 150e6

// ProfileWD800JD models the paper's testbed drive (§5): WD Caviar SE
// WD800JD with an 8 MB cache. Real-drive firmware keeps a fixed
// segment size and prefetches up to a full segment (§3.1's explanation
// of Figure 5), modeled here as 32 segments of 256 KB with read-ahead
// equal to the segment size.
func ProfileWD800JD(seed uint64) Config {
	return Config{
		Geometry:        geom.WD800JD(),
		CacheSize:       8 << 20,
		SegmentSize:     256 << 10,
		ReadAhead:       256 << 10,
		InterfaceRate:   SATA1Rate,
		CommandOverhead: 300 * time.Microsecond,
		Policy:          FCFS,
		Seed:            seed,
	}
}

// ProfileTuned returns the WD800JD drive with explicit cache geometry,
// used by the §3 simulation sweeps. readAhead follows the paper's
// convention: the number of bytes brought in per miss.
func ProfileTuned(segmentSize, segments, readAhead int64, seed uint64) Config {
	cfg := ProfileWD800JD(seed)
	cfg.SegmentSize = segmentSize
	cfg.CacheSize = segmentSize * segments
	cfg.ReadAhead = readAhead
	return cfg
}
