package disk

import (
	"testing"

	"seqstream/internal/sim"
)

func TestWriteCompletes(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	var res *Result
	if err := d.SubmitWrite(0, 64<<10, func(r Result) { res = &r }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("no completion")
	}
	st := d.Stats()
	if st.BytesWritten != 64<<10 {
		t.Errorf("BytesWritten = %d", st.BytesWritten)
	}
	if st.BytesRead != 0 {
		t.Errorf("BytesRead = %d for a write", st.BytesRead)
	}
	if st.Requests != 1 {
		t.Errorf("Requests = %d", st.Requests)
	}
}

func TestWriteValidation(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	if err := d.SubmitWrite(-1, 4096, nil); err == nil {
		t.Error("negative offset accepted")
	}
	if err := d.SubmitWrite(d.Capacity(), 4096, nil); err == nil {
		t.Error("out-of-range accepted")
	}
}

func TestWriteInvalidatesCache(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil) // 256K segments with prefetch
	// Warm the cache.
	if err := d.Submit(0, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// Overwrite part of the cached range.
	if err := d.SubmitWrite(64<<10, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	// A re-read of the written range must miss (stale segment dropped).
	if err := d.Submit(64<<10, 64<<10, nil); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d; write did not invalidate the segment", st.CacheHits)
	}
}

func TestSequentialWritesFasterThanScattered(t *testing.T) {
	run := func(scatter bool) sim.Time {
		eng := sim.NewEngine()
		d := newDisk(t, eng, nil)
		const n = 32
		for i := int64(0); i < n; i++ {
			off := i * 256 << 10
			if scatter {
				off = i * (d.Capacity() / (n + 1))
				off -= off % 512
			}
			if err := d.SubmitWrite(off, 256<<10, nil); err != nil {
				t.Fatal(err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatal(err)
		}
		return eng.Now()
	}
	seq := run(false)
	scat := run(true)
	if scat < 2*seq {
		t.Errorf("scattered writes (%v) should be >= 2x sequential (%v)", scat, seq)
	}
}

func TestMixedReadWriteQueueOrder(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	var order []string
	if err := d.Submit(0, 4096, func(Result) { order = append(order, "r") }); err != nil {
		t.Fatal(err)
	}
	if err := d.SubmitWrite(1<<20, 4096, func(Result) { order = append(order, "w") }); err != nil {
		t.Fatal(err)
	}
	if err := d.Submit(2<<20, 4096, func(Result) { order = append(order, "r") }); err != nil {
		t.Fatal(err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"r", "w", "r"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FCFS order = %v", order)
		}
	}
}
