package disk

import (
	"errors"
	"testing"
	"time"

	"seqstream/internal/geom"
	"seqstream/internal/sim"
)

func newDisk(t *testing.T, eng *sim.Engine, mutate func(*Config)) *Disk {
	t.Helper()
	cfg := ProfileWD800JD(1)
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := New(eng, cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", nil, true},
		{"no cache", func(c *Config) { c.CacheSize = 0; c.SegmentSize = 0; c.ReadAhead = 0 }, true},
		{"negative cache", func(c *Config) { c.CacheSize = -1 }, false},
		{"zero segment with cache", func(c *Config) { c.SegmentSize = 0 }, false},
		{"segment exceeds cache", func(c *Config) { c.SegmentSize = c.CacheSize * 2 }, false},
		{"negative readahead", func(c *Config) { c.ReadAhead = -1 }, false},
		{"zero interface rate", func(c *Config) { c.InterfaceRate = 0 }, false},
		{"negative overhead", func(c *Config) { c.CommandOverhead = -1 }, false},
		{"bad geometry", func(c *Config) { c.Geometry.RPM = 0 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := ProfileWD800JD(0)
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			if err := cfg.Validate(); (err == nil) != tt.ok {
				t.Errorf("Validate = %v, want ok=%v", err, tt.ok)
			}
		})
	}
}

func TestNewRejectsNilEngine(t *testing.T) {
	if _, err := New(nil, ProfileWD800JD(0)); err == nil {
		t.Fatal("New(nil engine) should fail")
	}
}

func TestSegmentsCount(t *testing.T) {
	cfg := ProfileTuned(256<<10, 32, 256<<10, 0)
	if got := cfg.Segments(); got != 32 {
		t.Errorf("Segments = %d, want 32", got)
	}
	cfg.CacheSize = 0
	if got := cfg.Segments(); got != 0 {
		t.Errorf("Segments (no cache) = %d, want 0", got)
	}
}

func TestSubmitOutOfRange(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	cases := []struct{ off, n int64 }{
		{-1, 4096},
		{0, 0},
		{0, -4},
		{d.Capacity(), 4096},
		{d.Capacity() - 100, 4096},
	}
	for _, c := range cases {
		err := d.Submit(c.off, c.n, nil)
		if !errors.Is(err, ErrOutOfRange) {
			t.Errorf("Submit(%d,%d) = %v, want ErrOutOfRange", c.off, c.n, err)
		}
	}
}

func TestSingleReadCompletes(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	var res *Result
	if err := d.Submit(0, 64<<10, func(r Result) { res = &r }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res == nil {
		t.Fatal("completion not delivered")
	}
	if res.CacheHit {
		t.Error("cold read reported as cache hit")
	}
	if res.End <= res.Start {
		t.Errorf("End %v <= Start %v", res.End, res.Start)
	}
	st := d.Stats()
	if st.Requests != 1 || st.Misses != 1 || st.CacheHits != 0 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesRead != 64<<10 {
		t.Errorf("BytesRead = %d", st.BytesRead)
	}
	if st.BytesMedia != 256<<10 { // read-ahead fills a full segment
		t.Errorf("BytesMedia = %d, want segment fill", st.BytesMedia)
	}
}

func TestReadAheadProducesHits(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil) // 256K segments, RA = 256K
	// Sequential 64K reads: first misses and prefetches 256K; next three
	// hit.
	var completions int
	issue := func(off int64) {
		if err := d.Submit(off, 64<<10, func(Result) { completions++ }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	for i := int64(0); i < 8; i++ {
		issue(i * 64 << 10)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if completions != 8 {
		t.Fatalf("completions = %d", completions)
	}
	st := d.Stats()
	if st.CacheHits != 6 || st.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 6/2", st.CacheHits, st.Misses)
	}
}

func TestNoReadAheadNoHits(t *testing.T) {
	eng := sim.NewEngine()
	// Segment size = request size = read-ahead disables prefetch (§3.1).
	d := newDisk(t, eng, func(c *Config) {
		c.SegmentSize = 64 << 10
		c.CacheSize = 8 << 20
		c.ReadAhead = 64 << 10
	})
	for i := int64(0); i < 8; i++ {
		if err := d.Submit(i*64<<10, 64<<10, nil); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := d.Stats()
	if st.CacheHits != 0 {
		t.Errorf("CacheHits = %d, want 0 with prefetch disabled", st.CacheHits)
	}
}

func TestSequentialFasterThanScattered(t *testing.T) {
	// One stream reading sequentially must finish much faster than the
	// same volume scattered across the disk (seek + rotation per read).
	run := func(scatter bool) sim.Time {
		eng := sim.NewEngine()
		d := newDisk(t, eng, func(c *Config) { c.CacheSize = 0; c.SegmentSize = 0; c.ReadAhead = 0 })
		const n = 64
		for i := int64(0); i < n; i++ {
			off := i * 256 << 10
			if scatter {
				off = i * (d.Capacity() / (n + 1))
				off -= off % 512
			}
			if err := d.Submit(off, 256<<10, nil); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return eng.Now()
	}
	seq := run(false)
	scat := run(true)
	if scat < 2*seq {
		t.Errorf("scattered (%v) should be >= 2x sequential (%v)", scat, seq)
	}
}

func TestSequentialThroughputNearMediaRate(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, func(c *Config) { c.CommandOverhead = 0 })
	const req = 1 << 20
	const n = 64
	for i := int64(0); i < n; i++ {
		if err := d.Submit(i*req, req, nil); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	mbps := float64(n*req) / eng.Now().Seconds() / 1e6
	// Outer-zone media rate is 60 MB/s; interface adds ~40% overhead at
	// most. Expect at least 30 MB/s and no more than 60.
	if mbps < 30 || mbps > 60 {
		t.Errorf("sequential throughput = %.1f MB/s, want 30-60", mbps)
	}
}

func TestThroughputCollapseWithStreams(t *testing.T) {
	// The paper's headline observation (Figs 1, 4, 5): many interleaved
	// sequential streams collapse throughput by >= 4x vs one stream.
	run := func(streams int) float64 {
		eng := sim.NewEngine()
		d := newDisk(t, eng, func(c *Config) {
			c.SegmentSize = 64 << 10
			c.CacheSize = 8 << 20
			c.ReadAhead = 64 << 10 // no prefetch
		})
		spacing := d.Capacity() / int64(streams)
		spacing -= spacing % 512
		next := make([]int64, streams)
		for i := range next {
			next[i] = int64(i) * spacing
		}
		var bytes int64
		const total = 512
		issued := 0
		var issue func(s int)
		issue = func(s int) {
			if issued >= total {
				return
			}
			issued++
			off := next[s]
			next[s] += 64 << 10
			if err := d.Submit(off, 64<<10, func(Result) {
				bytes += 64 << 10
				issue(s) // synchronous client: next request on completion
			}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		for s := 0; s < streams; s++ {
			issue(s)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(bytes) / eng.Now().Seconds() / 1e6
	}
	one := run(1)
	many := run(30)
	if one < 4*many {
		t.Errorf("collapse factor = %.2f (1 stream %.1f MB/s, 30 streams %.1f MB/s), want >= 4", one/many, one, many)
	}
}

func TestSegmentThrashingPathology(t *testing.T) {
	// Fig 7: when streams > segments, large prefetch is WORSE than no
	// prefetch: segments are reclaimed before their prefetched data is
	// used.
	run := func(readAhead int64) float64 {
		eng := sim.NewEngine()
		d := newDisk(t, eng, func(c *Config) {
			c.SegmentSize = 1 << 20
			c.CacheSize = 8 << 20 // 8 segments
			c.ReadAhead = readAhead
		})
		const streams = 32 // far more than 8 segments
		spacing := d.Capacity() / streams
		spacing -= spacing % 512
		next := make([]int64, streams)
		for i := range next {
			next[i] = int64(i) * spacing
		}
		var bytes int64
		issued := 0
		var issue func(s int)
		issue = func(s int) {
			if issued >= 512 {
				return
			}
			issued++
			off := next[s]
			next[s] += 64 << 10
			if err := d.Submit(off, 64<<10, func(Result) {
				bytes += 64 << 10
				issue(s)
			}); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		for s := 0; s < streams; s++ {
			issue(s)
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return float64(bytes) / eng.Now().Seconds() / 1e6
	}
	noPrefetch := run(64 << 10)
	bigPrefetch := run(1 << 20)
	if bigPrefetch >= noPrefetch {
		t.Errorf("thrashing prefetch (%.1f MB/s) should underperform no prefetch (%.1f MB/s)", bigPrefetch, noPrefetch)
	}
}

func TestCLookOrdersByOffset(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, func(c *Config) {
		c.Policy = CLook
		c.CacheSize = 0
		c.SegmentSize = 0
		c.ReadAhead = 0
	})
	var order []int64
	// Build the queue while the disk is busy with a blocker request.
	if err := d.Submit(0, 512, func(Result) {}); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	offs := []int64{50 << 20, 10 << 20, 30 << 20, 70 << 20}
	for _, off := range offs {
		off := off
		if err := d.Submit(off, 512, func(Result) { order = append(order, off) }); err != nil {
			t.Fatalf("Submit: %v", err)
		}
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []int64{10 << 20, 30 << 20, 50 << 20, 70 << 20}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v", order, want)
		}
	}
}

func TestPrefetchEfficiencyStat(t *testing.T) {
	var s Stats
	if s.PrefetchEfficiency() != 1 {
		t.Error("zero stats efficiency should be 1")
	}
	s = Stats{BytesRead: 50, BytesMedia: 100}
	if s.PrefetchEfficiency() != 0.5 {
		t.Errorf("efficiency = %v, want 0.5", s.PrefetchEfficiency())
	}
	s = Stats{BytesRead: 200, BytesMedia: 100} // hits can exceed media bytes
	if s.PrefetchEfficiency() != 1 {
		t.Error("efficiency should clamp at 1")
	}
}

func TestInvalidateCache(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	if err := d.Submit(0, 64<<10, nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	d.InvalidateCache()
	if err := d.Submit(64<<10, 64<<10, nil); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if d.Stats().CacheHits != 0 {
		t.Error("hit after InvalidateCache")
	}
}

func TestLargeRequestStreamsThroughCache(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil) // 256K segments
	var done bool
	if err := d.Submit(0, 2<<20, func(Result) { done = true }); err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !done {
		t.Fatal("large request did not complete")
	}
	if d.Stats().BytesMedia != 2<<20 {
		t.Errorf("BytesMedia = %d, want full request", d.Stats().BytesMedia)
	}
}

func TestQueuePolicyString(t *testing.T) {
	if FCFS.String() != "fcfs" || CLook.String() != "clook" {
		t.Error("policy String() mismatch")
	}
	if QueuePolicy(99).String() == "" {
		t.Error("unknown policy should still format")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() sim.Time {
		eng := sim.NewEngine()
		d := newDisk(t, eng, nil)
		rng := sim.NewRand(9)
		for i := 0; i < 100; i++ {
			off := rng.Int63n(d.Capacity() - 1<<20)
			off -= off % 512
			if err := d.Submit(off, 64<<10, nil); err != nil {
				t.Fatalf("Submit: %v", err)
			}
		}
		if err := eng.Run(); err != nil {
			t.Fatalf("Run: %v", err)
		}
		return eng.Now()
	}
	if run() != run() {
		t.Error("identical runs diverged")
	}
}

func TestGeometryAccessors(t *testing.T) {
	eng := sim.NewEngine()
	d := newDisk(t, eng, nil)
	if d.Geometry() == nil {
		t.Fatal("nil geometry")
	}
	if d.Config().CacheSize != 8<<20 {
		t.Errorf("Config passthrough broken")
	}
	if d.Capacity() != d.Geometry().Capacity() {
		t.Error("capacity mismatch")
	}
	if d.Busy() {
		t.Error("idle disk reports busy")
	}
	if d.QueueLen() != 0 {
		t.Error("idle disk has queued requests")
	}
	_ = geom.BlockSize
	_ = time.Second
}
