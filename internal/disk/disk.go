// Package disk models a commodity disk drive for discrete-event
// simulation: mechanical service times (seek, rotation, media
// transfer), an on-board cache organized as segments, per-access
// read-ahead into segments, and an internal request queue.
//
// The cache model follows §2.1 of the paper: the cache is divided into
// a number of segments (memory chunks holding contiguous data, similar
// to cache lines); prefetching fills a segment beyond the requested
// data; segments are reclaimed LRU, which reproduces the §3 pathology
// where prefetched-but-unconsumed data is evicted when the stream count
// exceeds the segment count.
package disk

import (
	"errors"
	"fmt"
	"time"

	"seqstream/internal/geom"
	"seqstream/internal/sim"
)

// QueuePolicy selects the order in which the internal disk queue is
// serviced.
type QueuePolicy int

const (
	// FCFS services requests in arrival order (commodity default).
	FCFS QueuePolicy = iota + 1
	// CLook services requests in ascending offset order, wrapping
	// around (a one-directional elevator).
	CLook
)

// String implements fmt.Stringer.
func (p QueuePolicy) String() string {
	switch p {
	case FCFS:
		return "fcfs"
	case CLook:
		return "clook"
	default:
		return fmt.Sprintf("QueuePolicy(%d)", int(p))
	}
}

// Config describes a simulated drive.
type Config struct {
	// Geometry holds the mechanical parameters.
	Geometry geom.Config
	// CacheSize is the total on-board cache in bytes.
	CacheSize int64
	// SegmentSize is the size of one cache segment in bytes. The
	// number of segments is CacheSize/SegmentSize.
	SegmentSize int64
	// ReadAhead is the total number of bytes brought into a segment on
	// a cache miss, counted from the start of the missed request. It is
	// clamped to [request length, SegmentSize]. Setting it equal to the
	// request size disables prefetching (§3.1).
	ReadAhead int64
	// InterfaceRate is the host-interface transfer rate in bytes/s
	// (150 MB/s for SATA-1).
	InterfaceRate float64
	// CommandOverhead is the fixed per-command processing time.
	CommandOverhead time.Duration
	// Policy selects queue ordering; FCFS when zero.
	Policy QueuePolicy
	// Seed seeds the rotational-latency generator.
	Seed uint64
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if err := c.Geometry.Validate(); err != nil {
		return err
	}
	switch {
	case c.CacheSize < 0:
		return errors.New("disk: cache size must be >= 0")
	case c.CacheSize > 0 && c.SegmentSize <= 0:
		return errors.New("disk: segment size must be positive when cache present")
	case c.CacheSize > 0 && c.SegmentSize > c.CacheSize:
		return errors.New("disk: segment size exceeds cache size")
	case c.ReadAhead < 0:
		return errors.New("disk: read-ahead must be >= 0")
	case c.InterfaceRate <= 0:
		return errors.New("disk: interface rate must be positive")
	case c.CommandOverhead < 0:
		return errors.New("disk: command overhead must be >= 0")
	}
	return nil
}

// Segments returns the number of cache segments implied by the config.
func (c Config) Segments() int {
	if c.CacheSize <= 0 || c.SegmentSize <= 0 {
		return 0
	}
	return int(c.CacheSize / c.SegmentSize)
}

// Result describes a completed disk request.
type Result struct {
	// Start is when the disk began servicing the request.
	Start sim.Time
	// End is the completion instant.
	End sim.Time
	// CacheHit reports whether the request was served entirely from a
	// cache segment, with no mechanical activity.
	CacheHit bool
}

// Stats accumulates drive-level counters.
type Stats struct {
	Requests     int64
	CacheHits    int64
	Misses       int64
	BytesRead    int64 // bytes delivered to the host
	BytesWritten int64 // bytes written to the platters
	BytesMedia   int64 // bytes moved on the platters (incl. prefetch)
	BusyTime     sim.Time
	SeekTime     sim.Time
	RotTime      sim.Time
}

// PrefetchEfficiency returns the fraction of media bytes that were
// delivered to the host (1.0 means no wasted prefetch).
func (s Stats) PrefetchEfficiency() float64 {
	if s.BytesMedia == 0 {
		return 1
	}
	f := float64(s.BytesRead) / float64(s.BytesMedia)
	if f > 1 {
		f = 1
	}
	return f
}

type pending struct {
	offset int64
	length int64
	write  bool
	done   func(Result)
}

type segment struct {
	start   int64
	end     int64 // exclusive; start==end means invalid
	lastUse sim.Time
	useSeq  uint64
}

// Disk is a simulated drive attached to an event engine. It is not
// safe for concurrent use; all access must happen on the engine's
// event loop, which is single-threaded.
type Disk struct {
	eng  *sim.Engine
	cfg  Config
	g    *geom.Geometry
	rng  *sim.Rand
	segs []segment
	seq  uint64

	queue []pending
	busy  bool

	headCyl    int
	lastEndOff int64 // media position after the last mechanical op
	hasLastEnd bool

	stats Stats
}

// New constructs a disk bound to the engine.
func New(eng *sim.Engine, cfg Config) (*Disk, error) {
	if eng == nil {
		return nil, errors.New("disk: nil engine")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g, err := geom.New(cfg.Geometry)
	if err != nil {
		return nil, err
	}
	if cfg.Policy == 0 {
		cfg.Policy = FCFS
	}
	if cfg.CommandOverhead == 0 {
		cfg.CommandOverhead = 300 * time.Microsecond
	}
	return &Disk{
		eng:  eng,
		cfg:  cfg,
		g:    g,
		rng:  sim.NewRand(cfg.Seed ^ 0xd15c),
		segs: make([]segment, cfg.Segments()),
	}, nil
}

// Config returns the disk's configuration.
func (d *Disk) Config() Config { return d.cfg }

// Geometry returns the drive geometry.
func (d *Disk) Geometry() *geom.Geometry { return d.g }

// Stats returns a copy of the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// QueueLen returns the number of requests waiting (not in service).
func (d *Disk) QueueLen() int { return len(d.queue) }

// Busy reports whether a request is in service.
func (d *Disk) Busy() bool { return d.busy }

// Capacity returns the usable size in bytes.
func (d *Disk) Capacity() int64 { return d.g.Capacity() }

// ErrOutOfRange is returned through the completion when a request falls
// outside the device.
var ErrOutOfRange = errors.New("disk: request out of range")

// Submit enqueues a read of [offset, offset+length). done is invoked on
// the engine loop when the request completes. Submit panics only via
// the engine; invalid requests are reported by returning an error
// immediately.
func (d *Disk) Submit(offset, length int64, done func(Result)) error {
	return d.submit(offset, length, false, done)
}

// SubmitWrite enqueues a write of [offset, offset+length). Writes pay
// the same mechanical costs as reads (seek, rotation, media transfer)
// and invalidate any cached segments they overlap; the drive performs
// no write caching (write-through, as the §4.4 direct-I/O path
// expects).
func (d *Disk) SubmitWrite(offset, length int64, done func(Result)) error {
	return d.submit(offset, length, true, done)
}

func (d *Disk) submit(offset, length int64, write bool, done func(Result)) error {
	if offset < 0 || length <= 0 || offset+length > d.g.Capacity() {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, offset, length, d.g.Capacity())
	}
	d.queue = append(d.queue, pending{offset: offset, length: length, write: write, done: done})
	if !d.busy {
		d.startNext()
	}
	return nil
}

// pickNext removes and returns the next request per the queue policy.
func (d *Disk) pickNext() pending {
	idx := 0
	if d.cfg.Policy == CLook && len(d.queue) > 1 {
		// One-directional sweep: smallest offset >= head position, else
		// wrap to the global smallest.
		headOff := d.lastEndOff
		bestAbove, bestAny := -1, 0
		for i, p := range d.queue {
			if p.offset < d.queue[bestAny].offset {
				bestAny = i
			}
			if p.offset >= headOff {
				if bestAbove < 0 || p.offset < d.queue[bestAbove].offset {
					bestAbove = i
				}
			}
		}
		if bestAbove >= 0 {
			idx = bestAbove
		} else {
			idx = bestAny
		}
	}
	p := d.queue[idx]
	d.queue = append(d.queue[:idx], d.queue[idx+1:]...)
	return p
}

// startNext begins servicing the head of the queue.
func (d *Disk) startNext() {
	if len(d.queue) == 0 {
		d.busy = false
		return
	}
	d.busy = true
	p := d.pickNext()
	start := d.eng.Now()

	svc, hit := d.serviceTime(p)
	d.stats.Requests++
	if !p.write {
		d.stats.BytesRead += p.length
		if hit {
			d.stats.CacheHits++
		} else {
			d.stats.Misses++
		}
	}
	d.stats.BusyTime += svc

	d.eng.Schedule(svc, func() {
		res := Result{Start: start, End: d.eng.Now(), CacheHit: hit}
		if p.done != nil {
			p.done(res)
		}
		d.startNext()
	})
}

// serviceTime computes the service latency for p and applies cache
// side effects (segment fills, LRU touches, head movement).
func (d *Disk) serviceTime(p pending) (time.Duration, bool) {
	ifaceXfer := time.Duration(float64(p.length) / d.cfg.InterfaceRate * float64(time.Second))
	if p.write {
		return d.writeServiceTime(p, ifaceXfer), false
	}
	if si := d.lookup(p.offset, p.length); si >= 0 {
		// Full cache hit: no mechanical work.
		d.touch(si)
		return d.cfg.CommandOverhead + ifaceXfer, true
	}

	// Miss: mechanical read of the request plus read-ahead, filling one
	// segment (or streaming through the cache when the fill exceeds a
	// segment).
	fill := p.length
	if d.cfg.ReadAhead > fill {
		fill = d.cfg.ReadAhead
	}
	if d.cfg.SegmentSize > 0 && fill > d.cfg.SegmentSize {
		fill = d.cfg.SegmentSize
	}
	if fill < p.length {
		fill = p.length // requests larger than a segment stream through
	}
	if rem := d.g.Capacity() - p.offset; fill > rem {
		fill = rem
	}

	var svc time.Duration
	targetCyl := d.g.CylinderOf(p.offset)
	seek := d.g.SeekTime(d.headCyl, targetCyl)
	sequential := d.hasLastEnd && p.offset == d.lastEndOff
	var rot time.Duration
	if !sequential {
		rot = d.rng.Duration(d.g.RotationPeriod())
	}
	// Media and host-interface transfers overlap through the cache
	// (speed matching, §2.1): the slower of the two bounds the request.
	media := d.g.TransferTime(p.offset, fill)
	xfer := media
	if ifaceXfer > xfer {
		xfer = ifaceXfer
	}
	svc = d.cfg.CommandOverhead + seek + rot + xfer
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.BytesMedia += fill

	d.headCyl = d.g.CylinderOf(p.offset + fill)
	d.lastEndOff = p.offset + fill
	d.hasLastEnd = true

	if len(d.segs) > 0 {
		d.fillSegment(p.offset, p.offset+fill)
	}
	return svc, false
}

// writeServiceTime models a write-through write: positioning plus the
// media transfer (overlapped with the interface), invalidating any
// overlapping cached segments.
func (d *Disk) writeServiceTime(p pending, ifaceXfer time.Duration) time.Duration {
	targetCyl := d.g.CylinderOf(p.offset)
	seek := d.g.SeekTime(d.headCyl, targetCyl)
	sequential := d.hasLastEnd && p.offset == d.lastEndOff
	var rot time.Duration
	if !sequential {
		rot = d.rng.Duration(d.g.RotationPeriod())
	}
	media := d.g.TransferTime(p.offset, p.length)
	xfer := media
	if ifaceXfer > xfer {
		xfer = ifaceXfer
	}
	d.stats.SeekTime += seek
	d.stats.RotTime += rot
	d.stats.BytesMedia += p.length
	d.stats.BytesWritten += p.length
	d.headCyl = d.g.CylinderOf(p.offset + p.length)
	d.lastEndOff = p.offset + p.length
	d.hasLastEnd = true

	// Cached read segments overlapping the written range are stale.
	for i := range d.segs {
		s := &d.segs[i]
		if s.end > s.start && p.offset < s.end && p.offset+p.length > s.start {
			d.segs[i] = segment{}
		}
	}
	return d.cfg.CommandOverhead + seek + rot + xfer
}

// lookup returns the index of a segment fully covering [off, off+n), or
// -1.
func (d *Disk) lookup(off, n int64) int {
	for i := range d.segs {
		s := &d.segs[i]
		if s.end > s.start && off >= s.start && off+n <= s.end {
			return i
		}
	}
	return -1
}

// touch refreshes LRU state for a segment.
func (d *Disk) touch(i int) {
	d.seq++
	d.segs[i].lastUse = d.eng.Now()
	d.segs[i].useSeq = d.seq
}

// fillSegment stores [start, end) into a segment, evicting LRU. If an
// existing segment is contiguous with the new range (the stream's
// previous window), it is extended up to the segment size instead, so
// that a stream's recently-read tail stays resident.
func (d *Disk) fillSegment(start, end int64) {
	// Extend a segment ending exactly at start.
	for i := range d.segs {
		s := &d.segs[i]
		if s.end > s.start && s.end == start && end-s.start <= d.cfg.SegmentSize {
			s.end = end
			d.touch(i)
			return
		}
	}
	victim := 0
	for i := range d.segs {
		s := &d.segs[i]
		if s.end == s.start { // invalid: free segment
			victim = i
			break
		}
		if s.useSeq < d.segs[victim].useSeq {
			victim = i
		}
	}
	if end-start > d.cfg.SegmentSize {
		start = end - d.cfg.SegmentSize
	}
	d.segs[victim] = segment{start: start, end: end}
	d.touch(victim)
}

// InvalidateCache drops all cached segments (used by tests and by
// experiment harnesses between runs).
func (d *Disk) InvalidateCache() {
	for i := range d.segs {
		d.segs[i] = segment{}
	}
}
