package netserve

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/bufpool"
	"seqstream/internal/metrics"
)

// Client is a stream-emulating client (§5): it multiplexes many
// sequential streams over one TCP connection, keeps a bounded number
// of outstanding requests per stream, and records per-stream
// throughput and response time. Per the paper, each client "issues
// requests from all streams it emulates as soon as it receives a
// response, never exceeding the maximum number of outstanding I/Os",
// keeping a handle for each pending request.
type Client struct {
	conn net.Conn
	// br buffers the read side; only the read loop touches it (the
	// handshake reply is read before the loop starts).
	br   *bufio.Reader
	rec  *metrics.Recorder
	opts ClientOptions
	// traceBase seeds the per-request trace ids when Tracing is on.
	traceBase uint64
	// payload records that the server granted FeatPayload: responses
	// arrive in v2 frames and payloads land in pooled receive memory
	// the consumer must Release.
	payload bool
	// pool recycles receive buffers in payload mode (nil otherwise).
	pool *bufpool.Pool

	mu           sync.Mutex
	nextID       uint64
	pending      map[uint64]pendingHandle
	closed       bool
	readerExited bool

	readerDone chan struct{}
	readerErr  error
}

type pendingHandle struct {
	stream int
	length int64
	sent   time.Duration
	done   func(Response, time.Duration)
	// cancelTimeout stops the per-request deadline timer (nil when
	// RequestTimeout is disabled).
	cancelTimeout func()
}

// ClientOptions tune a client's failure handling. The zero value —
// wall clock, no deadlines — matches the original trusting behavior.
type ClientOptions struct {
	// Clock timestamps requests and drives the request-timeout timers.
	// Nil uses the wall clock. It must be safe for concurrent use: the
	// read loop queries it from its own goroutine.
	Clock blockdev.Clock
	// RequestTimeout completes a request that has been outstanding this
	// long with StatusTimeout, so a wedged server cannot strand the
	// caller. The response, if it ever arrives, is dropped. Zero waits
	// forever.
	RequestTimeout time.Duration
	// WriteTimeout bounds each request-frame write to the socket. Zero
	// means no deadline.
	WriteTimeout time.Duration
	// Tracing stamps every request with a client-generated trace id
	// (FlagTraced + an 8-byte wire extension), so server-side flight
	// recordings can be correlated with this client's requests. Off by
	// default: untraced requests still get a server-allocated id.
	Tracing bool
	// Payload sends a hello at dial time asking for the v2 payload
	// extension. If the server grants it (ServerOptions.Payload),
	// read responses carry the data in v2 frames and land in pooled
	// receive memory — consumers must Release each response after its
	// last use of Data (RunStreams does this itself). If the server
	// declines, the client falls back to data-less v1 silently; check
	// Payload() for the negotiated outcome.
	Payload bool
}

// ErrDisconnected is the terminal error pending requests are failed
// with when the connection dies under them.
var ErrDisconnected = errors.New("netserve: connection lost")

// Dial connects to a storage node, timestamping requests with the
// wall clock.
func Dial(addr string) (*Client, error) {
	return DialOpts(addr, ClientOptions{})
}

// DialClock connects to a storage node with an injected clock, so
// tests (and simulated deployments) control the latency measurements
// instead of the wall clock.
func DialClock(addr string, clock blockdev.Clock) (*Client, error) {
	return DialOpts(addr, ClientOptions{Clock: clock})
}

// DialOpts connects to a storage node with explicit failure-handling
// options.
func DialOpts(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: %w", err)
	}
	if opts.Clock == nil {
		opts.Clock = blockdev.NewRealClock()
	}
	c := &Client{
		conn:       conn,
		br:         bufio.NewReaderSize(conn, 64<<10),
		rec:        metrics.NewRecorder(),
		opts:       opts,
		pending:    make(map[uint64]pendingHandle),
		readerDone: make(chan struct{}),
	}
	if opts.Tracing {
		c.traceBase = splitmix64(uint64(time.Now().UnixNano()))
	}
	if opts.Payload {
		// Negotiate before the read loop starts, synchronously on the
		// dialing goroutine: hello out, hello back, nothing else is on
		// the wire yet.
		if opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(opts.WriteTimeout))
		}
		if err := WriteHello(conn, Hello{Version: ProtoV2, Feats: FeatPayload}); err != nil {
			conn.Close()
			return nil, fmt.Errorf("netserve: handshake: %w", err)
		}
		hello, err := ReadHello(c.br)
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("netserve: handshake: %w", err)
		}
		if hello.Version >= ProtoV2 && hello.Feats&FeatPayload != 0 {
			c.payload = true
			c.pool = bufpool.New()
		}
	}
	go c.readLoop()
	return c, nil
}

// Payload reports whether the server granted the payload extension at
// dial time (always false unless ClientOptions.Payload asked for it).
func (c *Client) Payload() bool { return c.payload }

// DialRetry dials with up to attempts tries, sleeping between failures
// with doubling, jittered, capped backoff. It returns the last dial
// error when every attempt fails. Storage nodes restart; their clients
// should ride it out instead of dying on the first refused connection.
func DialRetry(addr string, opts ClientOptions, attempts int, backoff time.Duration) (*Client, error) {
	if attempts < 1 {
		attempts = 1
	}
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	const maxBackoff = 2 * time.Second
	var lastErr error
	for i := 0; i < attempts; i++ {
		c, err := DialOpts(addr, opts)
		if err == nil {
			return c, nil
		}
		lastErr = err
		if i == attempts-1 {
			break
		}
		d := backoff << uint(i)
		if d > maxBackoff {
			d = maxBackoff
		}
		// Deterministic per-attempt jitter in [d/2, d]: desynchronizes
		// a fleet of restarting clients without pulling in a PRNG. The
		// modulo runs in uint64 — converting the mixer output to a
		// Duration first can flip it negative and undershoot d/2.
		j := splitmix64(uint64(i) + uint64(time.Now().UnixNano()))
		d = d/2 + time.Duration(j%uint64(d/2+1))
		time.Sleep(d)
	}
	return nil, fmt.Errorf("netserve: dial %s failed after %d attempts: %w", addr, attempts, lastErr)
}

// splitmix64 is the standard 64-bit mixer (public domain), used only
// to spread dial-retry jitter.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Recorder returns the client's metrics.
func (c *Client) Recorder() *metrics.Recorder { return c.rec }

// Close shuts the connection down and waits for the reader.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Go issues one read on behalf of a stream. done (optional) receives
// the response and its measured latency. In payload mode the response
// may hold pooled receive memory: done owns it and must call
// resp.Release after its last use of Data (a nil done releases
// automatically).
func (c *Client) Go(stream int, disk uint16, off, length int64, flags uint16,
	done func(Response, time.Duration)) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("netserve: client closed")
	}
	if c.readerExited {
		// The reader has already failed and drained the pending map; a
		// handle registered now would never be completed.
		err := c.readerErr
		c.mu.Unlock()
		if err == nil {
			err = ErrDisconnected
		}
		return fmt.Errorf("netserve: %w", err)
	}
	id := c.nextID
	c.nextID++
	var tid uint64
	if c.opts.Tracing {
		// Mix the connection's identity into the id stream so two traced
		// clients against one node do not collide; the mixer output is
		// never zero for these inputs in practice, but guard anyway
		// (zero means "untraced" on the wire).
		tid = splitmix64(c.traceBase + id)
		if tid == 0 {
			tid = 1
		}
	}
	h := pendingHandle{
		stream: stream,
		length: length,
		sent:   c.opts.Clock.Now(),
		done:   done,
	}
	if c.opts.RequestTimeout > 0 {
		h.cancelTimeout = c.opts.Clock.Schedule(c.opts.RequestTimeout, func() {
			c.expire(id)
		})
	}
	c.pending[id] = h
	c.mu.Unlock()

	if c.opts.WriteTimeout > 0 {
		c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout))
	}
	err := WriteRequest(c.conn, Request{ID: id, Disk: disk, Flags: flags, Offset: off, Length: length, Trace: tid})
	if err != nil {
		c.mu.Lock()
		h, ok := c.pending[id]
		if ok {
			delete(c.pending, id)
		}
		c.mu.Unlock()
		if !ok {
			// The handle was already completed (request timeout or
			// reader drain) — its callback has run, so returning the
			// write error here would double-complete the request.
			return nil
		}
		if h.cancelTimeout != nil {
			h.cancelTimeout()
		}
		return fmt.Errorf("netserve: %w", err)
	}
	return nil
}

// expire completes a request that outlived RequestTimeout with
// StatusTimeout. The server's response, if it ever arrives, finds no
// handle and is dropped.
func (c *Client) expire(id uint64) {
	c.mu.Lock()
	h, ok := c.pending[id]
	if ok {
		delete(c.pending, id)
	}
	c.mu.Unlock()
	if ok && h.done != nil {
		h.done(Response{ID: id, Status: StatusTimeout}, c.opts.RequestTimeout)
	}
}

// Outstanding returns the number of pending requests.
func (c *Client) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Err returns the reader's terminal error after Close (io.EOF and
// network-closed errors are reported as nil).
func (c *Client) Err() error {
	select {
	case <-c.readerDone:
		return c.readerErr
	default:
		return nil
	}
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		var resp Response
		var err error
		if c.payload {
			resp, err = readResponseV2(c.br, c.pool)
		} else {
			resp, err = ReadResponse(c.br)
		}
		if err != nil {
			c.failPending(err)
			return
		}
		now := c.opts.Clock.Now()
		c.mu.Lock()
		h, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
			if resp.Status == StatusOK {
				c.rec.Record(h.stream, h.length, h.sent, now)
			}
		}
		c.mu.Unlock()
		if !ok {
			// Expired or disconnect-drained before the response landed:
			// nobody will see it, so recycle the receive buffer here.
			resp.Release()
			continue
		}
		if h.cancelTimeout != nil {
			h.cancelTimeout()
		}
		if h.done != nil {
			h.done(resp, now-h.sent)
		} else {
			resp.Release()
		}
	}
}

// failPending drains the pending map when the reader exits, completing
// every outstanding handle with StatusDisconnected. Without this,
// callers counting completions (RunStreams' WaitGroup, streamload's
// issue loops) deadlock forever on requests whose responses can no
// longer arrive.
func (c *Client) failPending(err error) {
	now := c.opts.Clock.Now()
	c.mu.Lock()
	if !c.closed {
		c.readerErr = err
	}
	c.readerExited = true
	orphans := c.pending
	c.pending = make(map[uint64]pendingHandle)
	c.mu.Unlock()
	for id, h := range orphans {
		if h.cancelTimeout != nil {
			h.cancelTimeout()
		}
		if h.done != nil {
			h.done(Response{ID: id, Status: StatusDisconnected}, now-h.sent)
		}
	}
}

// RunStreams drives streams of synchronous sequential reads until each
// has completed `requests` reads, then returns. Streams are spaced
// uniformly across the given disk capacity.
func (c *Client) RunStreams(disk uint16, capacity int64, streams, requests int,
	reqSize int64, flags uint16) error {
	return c.RunStreamsFunc(disk, capacity, streams, requests, reqSize, flags, nil)
}

// RunStreamsFunc is RunStreams with a per-response check: when
// non-nil, check runs on every successful response — while its
// payload (if any) is still valid — and a non-nil error stops that
// stream and is reported. RunStreamsFunc releases each response's
// pooled receive memory itself, after the check.
func (c *Client) RunStreamsFunc(disk uint16, capacity int64, streams, requests int,
	reqSize int64, flags uint16, check func(stream int, resp *Response) error) error {
	if streams <= 0 || requests <= 0 || reqSize <= 0 {
		return errors.New("netserve: bad stream parameters")
	}
	spacing := capacity / int64(streams)
	spacing -= spacing % 512
	if spacing < reqSize {
		// With more streams than capacity/reqSize the spacing rounds
		// toward zero and the streams would trample each other's
		// offsets (at zero, every stream reads the same blocks and the
		// "sequential" workload degenerates entirely).
		return fmt.Errorf("netserve: %d streams over capacity %d leaves spacing %d < request size %d",
			streams, capacity, spacing, reqSize)
	}
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		s := s
		base := int64(s) * spacing
		var issue func(i int)
		issue = func(i int) {
			if i >= requests {
				wg.Done()
				return
			}
			err := c.Go(s, disk, base+int64(i)*reqSize, reqSize, flags,
				func(resp Response, _ time.Duration) {
					if resp.Status != StatusOK {
						resp.Release()
						errs <- fmt.Errorf("netserve: stream %d status %d", s, resp.Status)
						wg.Done()
						return
					}
					if check != nil {
						if cerr := check(s, &resp); cerr != nil {
							resp.Release()
							errs <- cerr
							wg.Done()
							return
						}
					}
					resp.Release()
					issue(i + 1)
				})
			if err != nil {
				errs <- err
				wg.Done()
			}
		}
		issue(0)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
