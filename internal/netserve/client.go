package netserve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/metrics"
)

// Client is a stream-emulating client (§5): it multiplexes many
// sequential streams over one TCP connection, keeps a bounded number
// of outstanding requests per stream, and records per-stream
// throughput and response time. Per the paper, each client "issues
// requests from all streams it emulates as soon as it receives a
// response, never exceeding the maximum number of outstanding I/Os",
// keeping a handle for each pending request.
type Client struct {
	conn  net.Conn
	rec   *metrics.Recorder
	clock blockdev.Clock

	mu      sync.Mutex
	nextID  uint64
	pending map[uint64]pendingHandle
	closed  bool

	readerDone chan struct{}
	readerErr  error
}

type pendingHandle struct {
	stream int
	length int64
	sent   time.Duration
	done   func(Response, time.Duration)
}

// Dial connects to a storage node, timestamping requests with the
// wall clock.
func Dial(addr string) (*Client, error) {
	return DialClock(addr, blockdev.NewRealClock())
}

// DialClock connects to a storage node with an injected clock, so
// tests (and simulated deployments) control the latency measurements
// instead of the wall clock. The clock must be safe for concurrent
// use: the read loop queries it from its own goroutine.
func DialClock(addr string, clock blockdev.Clock) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: %w", err)
	}
	c := &Client{
		conn:       conn,
		rec:        metrics.NewRecorder(),
		clock:      clock,
		pending:    make(map[uint64]pendingHandle),
		readerDone: make(chan struct{}),
	}
	go c.readLoop()
	return c, nil
}

// Recorder returns the client's metrics.
func (c *Client) Recorder() *metrics.Recorder { return c.rec }

// Close shuts the connection down and waits for the reader.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	err := c.conn.Close()
	<-c.readerDone
	return err
}

// Go issues one read on behalf of a stream. done (optional) receives
// the response and its measured latency.
func (c *Client) Go(stream int, disk uint16, off, length int64, flags uint16,
	done func(Response, time.Duration)) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return errors.New("netserve: client closed")
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = pendingHandle{
		stream: stream,
		length: length,
		sent:   c.clock.Now(),
		done:   done,
	}
	c.mu.Unlock()

	err := WriteRequest(c.conn, Request{ID: id, Disk: disk, Flags: flags, Offset: off, Length: length})
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		c.mu.Unlock()
		return fmt.Errorf("netserve: %w", err)
	}
	return nil
}

// Outstanding returns the number of pending requests.
func (c *Client) Outstanding() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// Err returns the reader's terminal error after Close (io.EOF and
// network-closed errors are reported as nil).
func (c *Client) Err() error {
	select {
	case <-c.readerDone:
		return c.readerErr
	default:
		return nil
	}
}

func (c *Client) readLoop() {
	defer close(c.readerDone)
	for {
		resp, err := ReadResponse(c.conn)
		if err != nil {
			c.mu.Lock()
			if !c.closed {
				c.readerErr = err
			}
			c.mu.Unlock()
			return
		}
		now := c.clock.Now()
		c.mu.Lock()
		h, ok := c.pending[resp.ID]
		if ok {
			delete(c.pending, resp.ID)
			if resp.Status == StatusOK {
				c.rec.Record(h.stream, h.length, h.sent, now)
			}
		}
		c.mu.Unlock()
		if ok && h.done != nil {
			h.done(resp, now-h.sent)
		}
	}
}

// RunStreams drives streams of synchronous sequential reads until each
// has completed `requests` reads, then returns. Streams are spaced
// uniformly across the given disk capacity.
func (c *Client) RunStreams(disk uint16, capacity int64, streams, requests int,
	reqSize int64, flags uint16) error {
	if streams <= 0 || requests <= 0 || reqSize <= 0 {
		return errors.New("netserve: bad stream parameters")
	}
	spacing := capacity / int64(streams)
	spacing -= spacing % 512
	var wg sync.WaitGroup
	errs := make(chan error, streams)
	for s := 0; s < streams; s++ {
		wg.Add(1)
		s := s
		base := int64(s) * spacing
		var issue func(i int)
		issue = func(i int) {
			if i >= requests {
				wg.Done()
				return
			}
			err := c.Go(s, disk, base+int64(i)*reqSize, reqSize, flags,
				func(resp Response, _ time.Duration) {
					if resp.Status != StatusOK {
						errs <- fmt.Errorf("netserve: stream %d status %d", s, resp.Status)
						wg.Done()
						return
					}
					issue(i + 1)
				})
			if err != nil {
				errs <- err
				wg.Done()
			}
		}
		issue(0)
	}
	wg.Wait()
	select {
	case err := <-errs:
		return err
	default:
		return nil
	}
}
