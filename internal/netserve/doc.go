// Package netserve implements the storage-node wire protocol of §5:
// clients emulate many sequential streams over TCP against a storage
// node; read responses carry no payload by default (as in the paper,
// so the network does not bottleneck the I/O measurement).
//
// # Protocol versions
//
// Two wire modes coexist on one listening port (DESIGN.md §11). A v1
// client's first bytes are a request frame and everything proceeds as
// data-less fixed-size headers. A v2-capable client opens with an
// 8-byte hello naming the feature bits it wants; the server answers
// with what it grants — nothing, unless it runs with
// ServerOptions.Payload — and a declined client silently falls back
// to v1 (Client.Payload reports the outcome). On a negotiated
// connection every response uses the v2 header, and responses to
// FlagWantData reads carry the staged bytes plus an offset echo that
// lets clients verify the payload against the device pattern.
//
// # Ownership and payload lifetime
//
// Each server connection runs one reader loop and one writer
// goroutine; the writer owns all socket writes, and completion
// callbacks (which arrive on arbitrary scheduler goroutines) only
// enqueue responses. Payload bytes are handed off from the storage
// node's staging pool, not copied: the done callback detaches the
// pooled reference with core.Response.TakeBuf, parks it on the wire
// Response, and the writer sends header and payload in one vectored
// write (net.Buffers), calling Response.Release only after the write
// drains. Release is the single disposal point and is exactly-once by
// construction: TakeBuf nils the scheduler's reference, Release nils
// the wire's.
//
// When a connection dies mid-stream, the writer marks itself broken,
// closes the socket, and keeps consuming the response channel —
// releasing every queued response and counting it in
// ServerStats.DroppedResponses — until the reader closes the channel.
// No response is ever abandoned to the garbage collector with its
// pool accounting open. A reader that stops draining exerts
// backpressure instead of growing memory: the bounded response
// channel caps how many staged buffers the wire can pin, and past
// that completions block until the socket moves or dies.
//
// On the client side, payload responses borrow pooled receive memory;
// a done callback owns its Response and must call Release after its
// last use of Data (RunStreams/RunStreamsFunc release internally,
// after the optional per-response check).
package netserve
