// Package netserve implements the storage-node wire protocol of §5:
// clients emulate many sequential streams over TCP against a storage
// node; read responses carry no payload by default (as in the paper,
// so the network does not bottleneck the I/O measurement), unless the
// client asks for data.
//
// # Ownership and payload lifetime
//
// Each server connection runs one reader loop and one writer
// goroutine; the writer owns all socket writes, and completion
// callbacks (which arrive on arbitrary scheduler goroutines) only
// enqueue responses. Payload bytes are borrowed from the storage
// node's staging pool: whoever disposes of a Response — the writer
// after the frame is on the wire, or the dead-writer drop path —
// must call Response.Release to recycle them. Responses still
// buffered in the channel when a connection dies fall to the garbage
// collector instead, which pooled memory tolerates (a missed recycle,
// not a leak).
package netserve
