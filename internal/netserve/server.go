package netserve

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"seqstream/internal/core"
	"seqstream/internal/flight"
)

// Server accepts stream clients over TCP and routes their reads
// through a core.Server (Figure 9's storage node). It is the §5
// testbed's server half.
type Server struct {
	node   *core.Server
	ingest *core.Ingest
	ln     net.Listener
	opts   ServerOptions

	mu     sync.Mutex
	conns  map[net.Conn]struct{} //lint:guardedby mu
	closed bool                  //lint:guardedby mu
	wg     sync.WaitGroup

	stats  ServerStats //lint:guardedby mu
	obs    atomic.Pointer[Obs]
	flight atomic.Pointer[flight.Recorder]
}

// SetFlight attaches a flight recorder; nil detaches. The server
// becomes the trace-context ingress: it adopts a client-supplied trace
// id or allocates one, records OpIngress/OpRespond around every
// request, and propagates the id into the core.
func (s *Server) SetFlight(rec *flight.Recorder) { s.flight.Store(rec) }

// ServerStats counts server-side activity.
type ServerStats struct {
	Conns     int64
	Requests  int64
	Errors    int64
	BytesRead int64
	// DroppedResponses counts completions discarded because their
	// connection's writer had already exited (dead peer).
	DroppedResponses int64
}

// ServerOptions tune a server's failure handling. The zero value — no
// deadlines — matches the original trusting behavior.
type ServerOptions struct {
	// IdleTimeout closes a connection that sends no request for this
	// long, so silently dead peers cannot pin handler goroutines (and
	// their pending completions) forever. Zero waits forever.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. A peer that stops
	// reading exhausts the response channel's slack and would
	// otherwise wedge the writer permanently. Zero means no deadline.
	WriteTimeout time.Duration
	// Payload enables the v2 payload extension: a client whose hello
	// requests FeatPayload gets read responses carrying the staged
	// bytes in v2 frames, written straight from the refcounted staging
	// buffers via vectored I/O. Off (the default), hellos are still
	// answered — granting nothing — so payload-capable clients fall
	// back to data-less v1 cleanly.
	Payload bool
}

// NewServer wraps a storage node and starts listening on addr
// (host:port; port 0 picks a free port).
func NewServer(node *core.Server, addr string) (*Server, error) {
	return NewServerOpts(node, addr, ServerOptions{})
}

// NewServerOpts wraps a storage node with explicit failure-handling
// options.
func NewServerOpts(node *core.Server, addr string, opts ServerOptions) (*Server, error) {
	if node == nil {
		return nil, errors.New("netserve: nil node")
	}
	if opts.IdleTimeout < 0 || opts.WriteTimeout < 0 {
		return nil, errors.New("netserve: negative timeout")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: %w", err)
	}
	s := &Server{node: node, ln: ln, opts: opts, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// EnableWrites routes FlagWrite requests through the given ingest
// coalescer. Without it, write requests get StatusBadRequest.
func (s *Server) EnableWrites(ing *core.Ingest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingest = ing
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting, closes every connection, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.stats.Conns++
		s.mu.Unlock()
		// One instrument snapshot per connection: the open-connections
		// gauge increments and decrements on the same pointer even if
		// SetObs changes mid-connection.
		o := s.obs.Load()
		if o != nil {
			o.conns.Inc()
			o.openConns.Add(1)
		}
		s.wg.Add(1)
		go s.handle(conn, o)
	}
}

// handle runs one connection: a reader loop decoding requests and a
// writer goroutine serializing responses. o is the instrument snapshot
// taken at accept time (may be nil).
func (s *Server) handle(conn net.Conn, o *Obs) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if o != nil {
			o.openConns.Add(-1)
		}
	}()

	// Handshake probe: a v2 client leads with a hello frame, a v1
	// client's first bytes are a request frame. Peek the magic without
	// consuming, so the v1 path sees its frame intact. The reply is
	// written inline, before the writer goroutine exists, so nothing
	// races the socket.
	br := bufio.NewReaderSize(conn, 32<<10)
	payload := false
	if s.opts.IdleTimeout > 0 {
		conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
	}
	if first, err := br.Peek(4); err == nil && binary.LittleEndian.Uint32(first) == HelloMagic {
		hello, err := ReadHello(br)
		if err != nil {
			return
		}
		reply := Hello{Version: ProtoV1}
		if s.opts.Payload && hello.Version >= ProtoV2 {
			reply.Version = ProtoV2
			reply.Feats = hello.Feats & FeatPayload
		}
		if err := WriteHello(conn, reply); err != nil {
			return
		}
		payload = reply.Feats&FeatPayload != 0
	}

	// Responses are produced by storage-node callbacks on arbitrary
	// goroutines; a single writer serializes them onto the socket with
	// vectored writes and releases each staged buffer only after its
	// frame has drained. Once a write fails the writer keeps consuming
	// — releasing and counting every remaining response as dropped —
	// so each pooled buffer is released exactly once no matter where
	// in the pipeline the disconnect caught it.
	responses := make(chan Response, 128)
	writerDone := make(chan struct{})
	fw := NewResponseWriter(conn, payload)
	go func() {
		defer close(writerDone)
		broken := false
		for resp := range responses {
			if broken {
				resp.Release()
				s.mu.Lock()
				s.stats.DroppedResponses++
				s.mu.Unlock()
				if o != nil {
					o.dropped.Inc()
				}
				continue
			}
			if s.opts.WriteTimeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
			}
			err := fw.WriteResponse(&resp)
			// The payload is on the wire (or lost with the connection);
			// either way its pooled memory can be recycled.
			resp.Release()
			if err != nil {
				// Unblock the reader too: the connection is dead in one
				// direction, so stop consuming requests that can never
				// be answered.
				conn.Close()
				broken = true
			}
		}
	}()
	// send delivers a response to the writer. The writer drains the
	// channel until the reader closes it, so the send always lands;
	// the writerDone arm is a safety net that keeps a completion
	// callback from ever blocking on a channel nobody drains.
	send := func(resp Response) {
		select {
		case responses <- resp:
		case <-writerDone:
			resp.Release()
			s.mu.Lock()
			s.stats.DroppedResponses++
			s.mu.Unlock()
			if o != nil {
				o.dropped.Inc()
			}
		}
	}
	// The reader loop owns closing the response channel, after every
	// submitted request has completed.
	var pending sync.WaitGroup

	for {
		if s.opts.IdleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.IdleTimeout))
		}
		req, err := ReadRequest(br)
		if err != nil {
			break
		}
		s.mu.Lock()
		s.stats.Requests++
		s.mu.Unlock()
		if o != nil {
			o.requests.Inc()
		}

		// Trace ingress: adopt the client's id or allocate one, and
		// stamp the request's entry on the disk's ring so the node-edge
		// events sit beside the shard's scheduling events.
		rec := s.flight.Load()
		var tid uint64
		var ingressAt time.Duration
		if rec != nil {
			tid = req.Trace
			if tid == 0 {
				tid = rec.NextTrace()
			}
			ingressAt = rec.Now()
			rec.RingFor(int(req.Disk)).Record(flight.Event{Trace: tid, Op: flight.OpIngress,
				Disk: req.Disk, Stream: flight.NoStream, Offset: req.Offset, Length: req.Length, T: ingressAt})
		}
		respond := func(code uint8) {
			if rec == nil {
				return
			}
			now := rec.Now()
			rec.RingFor(int(req.Disk)).Record(flight.Event{Trace: tid, Op: flight.OpRespond, Err: code,
				Disk: req.Disk, Stream: flight.NoStream, Offset: req.Offset, Length: req.Length,
				T: now, Dur: now - ingressAt})
		}

		if req.Flags&FlagWrite != 0 {
			s.mu.Lock()
			ing := s.ingest
			s.mu.Unlock()
			if ing == nil {
				respond(flight.ErrIO)
				send(Response{ID: req.ID, Status: StatusBadRequest})
				continue
			}
			pending.Add(1)
			werr := ing.Write(int(req.Disk), req.Offset, nil, req.Length, func(ackErr error) {
				defer pending.Done()
				resp := Response{ID: req.ID, Status: StatusOK}
				if ackErr != nil {
					resp.Status = StatusIOError
					respond(flight.ErrIO)
				} else {
					respond(flight.ErrNone)
					s.mu.Lock()
					s.stats.BytesRead += req.Length // bytes moved either direction
					s.mu.Unlock()
					if o != nil {
						o.readBytes.Add(req.Length)
					}
				}
				send(resp)
			})
			if werr != nil {
				pending.Done()
				s.mu.Lock()
				s.stats.Errors++
				s.mu.Unlock()
				if o != nil {
					o.errors.Inc()
				}
				respond(flight.ErrIO)
				send(Response{ID: req.ID, Status: StatusBadRequest})
			}
			continue
		}

		wantData := req.Flags&FlagWantData != 0
		pending.Add(1)
		submitErr := s.node.Submit(core.Request{
			Disk:   int(req.Disk),
			Offset: req.Offset,
			Length: req.Length,
			Trace:  tid,
			Done: func(r core.Response) {
				defer pending.Done()
				resp := Response{ID: req.ID, Status: StatusOK}
				if r.Err != nil {
					switch {
					case errors.Is(r.Err, core.ErrFetchTimeout):
						resp.Status = StatusTimeout
						respond(flight.ErrTimeout)
					case errors.Is(r.Err, core.ErrDiskDegraded):
						resp.Status = StatusIOError
						respond(flight.ErrDegraded)
					default:
						resp.Status = StatusIOError
						respond(flight.ErrIO)
					}
				} else {
					respond(flight.ErrNone)
					s.mu.Lock()
					s.stats.BytesRead += req.Length
					s.mu.Unlock()
					if o != nil {
						o.readBytes.Add(req.Length)
						o.requestLatency.Observe(r.End - r.Start)
						o.window.Observe(r.End - r.Start)
						o.scoreSLO(req.Length, r.End-r.Start)
					}
					if wantData && r.Data != nil {
						// The frame takes over the storage node's staged
						// buffer (no copy, no closure); the writer
						// releases it once the vectored write drains.
						resp.Data = r.Data
						resp.buf = r.TakeBuf()
						if payload {
							resp.Flags = RespPayload
							resp.Offset = req.Offset
						}
					} else {
						r.Release()
					}
				}
				// A full channel applies backpressure to completions
				// while the writer drains it; a dead writer sheds them
				// instead (send never blocks forever).
				send(resp)
			},
		})
		if submitErr != nil {
			pending.Done()
			s.mu.Lock()
			s.stats.Errors++
			s.mu.Unlock()
			if o != nil {
				o.errors.Inc()
			}
			respond(flight.ErrIO)
			send(Response{ID: req.ID, Status: StatusBadRequest})
		}
	}
	pending.Wait()
	close(responses)
	<-writerDone
}
