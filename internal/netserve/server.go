package netserve

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"seqstream/internal/core"
)

// Server accepts stream clients over TCP and routes their reads
// through a core.Server (Figure 9's storage node). It is the §5
// testbed's server half.
type Server struct {
	node   *core.Server
	ingest *core.Ingest
	ln     net.Listener

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup

	stats ServerStats
	obs   atomic.Pointer[Obs]
}

// ServerStats counts server-side activity.
type ServerStats struct {
	Conns     int64
	Requests  int64
	Errors    int64
	BytesRead int64
}

// NewServer wraps a storage node and starts listening on addr
// (host:port; port 0 picks a free port).
func NewServer(node *core.Server, addr string) (*Server, error) {
	if node == nil {
		return nil, errors.New("netserve: nil node")
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("netserve: %w", err)
	}
	s := &Server{node: node, ln: ln, conns: make(map[net.Conn]struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// EnableWrites routes FlagWrite requests through the given ingest
// coalescer. Without it, write requests get StatusBadRequest.
func (s *Server) EnableWrites(ing *core.Ingest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ingest = ing
}

// Stats returns a snapshot of the counters.
func (s *Server) Stats() ServerStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Close stops accepting, closes every connection, and waits for the
// handlers to drain.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.stats.Conns++
		s.mu.Unlock()
		// One instrument snapshot per connection: the open-connections
		// gauge increments and decrements on the same pointer even if
		// SetObs changes mid-connection.
		o := s.obs.Load()
		if o != nil {
			o.conns.Inc()
			o.openConns.Add(1)
		}
		s.wg.Add(1)
		go s.handle(conn, o)
	}
}

// handle runs one connection: a reader loop decoding requests and a
// writer goroutine serializing responses. o is the instrument snapshot
// taken at accept time (may be nil).
func (s *Server) handle(conn net.Conn, o *Obs) {
	defer s.wg.Done()
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		if o != nil {
			o.openConns.Add(-1)
		}
	}()

	// Responses are produced by storage-node callbacks on arbitrary
	// goroutines; a single writer serializes them onto the socket.
	responses := make(chan Response, 128)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for resp := range responses {
			if err := WriteResponse(conn, resp); err != nil {
				return
			}
		}
	}()
	// The reader loop owns closing the response channel, after every
	// submitted request has completed.
	var pending sync.WaitGroup

	for {
		req, err := ReadRequest(conn)
		if err != nil {
			break
		}
		s.mu.Lock()
		s.stats.Requests++
		s.mu.Unlock()
		if o != nil {
			o.requests.Inc()
		}

		if req.Flags&FlagWrite != 0 {
			s.mu.Lock()
			ing := s.ingest
			s.mu.Unlock()
			if ing == nil {
				responses <- Response{ID: req.ID, Status: StatusBadRequest}
				continue
			}
			pending.Add(1)
			werr := ing.Write(int(req.Disk), req.Offset, nil, req.Length, func(ackErr error) {
				defer pending.Done()
				resp := Response{ID: req.ID, Status: StatusOK}
				if ackErr != nil {
					resp.Status = StatusIOError
				} else {
					s.mu.Lock()
					s.stats.BytesRead += req.Length // bytes moved either direction
					s.mu.Unlock()
					if o != nil {
						o.readBytes.Add(req.Length)
					}
				}
				responses <- resp
			})
			if werr != nil {
				pending.Done()
				s.mu.Lock()
				s.stats.Errors++
				s.mu.Unlock()
				if o != nil {
					o.errors.Inc()
				}
				responses <- Response{ID: req.ID, Status: StatusBadRequest}
			}
			continue
		}

		wantData := req.Flags&FlagWantData != 0
		pending.Add(1)
		submitErr := s.node.Submit(core.Request{
			Disk:   int(req.Disk),
			Offset: req.Offset,
			Length: req.Length,
			Done: func(r core.Response) {
				defer pending.Done()
				resp := Response{ID: req.ID, Status: StatusOK}
				if r.Err != nil {
					resp.Status = StatusIOError
				} else {
					s.mu.Lock()
					s.stats.BytesRead += req.Length
					s.mu.Unlock()
					if o != nil {
						o.readBytes.Add(req.Length)
						o.requestLatency.Observe(r.End - r.Start)
					}
					if wantData && r.Data != nil {
						resp.Data = r.Data
					}
				}
				// A full channel applies backpressure to completions,
				// never blocking the reader indefinitely because the
				// writer drains it.
				responses <- resp
			},
		})
		if submitErr != nil {
			pending.Done()
			s.mu.Lock()
			s.stats.Errors++
			s.mu.Unlock()
			if o != nil {
				o.errors.Inc()
			}
			responses <- Response{ID: req.ID, Status: StatusBadRequest}
		}
	}
	pending.Wait()
	close(responses)
	<-writerDone
}
