package netserve

import (
	"sync"
	"testing"
	"time"
)

// stepClock hands out a scripted sequence of timestamps, one per
// Now() call, so a test controls the latency a client measures.
type stepClock struct {
	mu    sync.Mutex
	steps []time.Duration
	calls int
}

func (c *stepClock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.calls >= len(c.steps) {
		return c.steps[len(c.steps)-1]
	}
	d := c.steps[c.calls]
	c.calls++
	return d
}

func (c *stepClock) Schedule(time.Duration, func()) (cancel func()) {
	return func() {}
}

// TestClientInjectedClock checks that the client measures request
// latency on the injected clock rather than the wall clock: with a
// scripted clock reading 10ms at issue and 25ms at completion, the
// recorded latency must be exactly 15ms.
func TestClientInjectedClock(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	clock := &stepClock{steps: []time.Duration{10 * time.Millisecond, 25 * time.Millisecond}}
	client, err := DialClock(srv.Addr(), clock)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan time.Duration, 1)
	err = client.Go(0, 0, 0, 64<<10, 0, func(resp Response, lat time.Duration) {
		if resp.Status != StatusOK {
			t.Errorf("status = %d", resp.Status)
		}
		done <- lat
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case lat := <-done:
		if lat != 15*time.Millisecond {
			t.Errorf("latency = %v, want 15ms", lat)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request did not complete")
	}

	st := client.Recorder().Stream(0)
	if st == nil {
		t.Fatal("stream 0 not recorded")
	}
	if st.First != 10*time.Millisecond || st.Last != 25*time.Millisecond {
		t.Errorf("recorded interval [%v, %v], want [10ms, 25ms]", st.First, st.Last)
	}
	if st.Bytes != 64<<10 || st.Requests != 1 {
		t.Errorf("recorded %d bytes / %d requests", st.Bytes, st.Requests)
	}
}
