package netserve

import (
	"time"

	"seqstream/internal/obs"
)

// Obs mirrors ServerStats into a metric registry and adds what the
// aggregate counters cannot express: a gauge of open connections and a
// latency histogram over the storage node's per-request service time
// (core.Response End − Start, so it measures the node, not the
// network). Instruments are atomic; the /metrics scraper never takes
// the server lock.
type Obs struct {
	conns     *obs.Counter
	requests  *obs.Counter
	errors    *obs.Counter
	readBytes *obs.Counter
	dropped   *obs.Counter

	openConns *obs.Gauge

	requestLatency *obs.Histogram

	// window, when attached, mirrors requestLatency over a sliding
	// window for the health rollup. Written before serving starts,
	// read by connection goroutines; Observe is nil-safe so the
	// unattached case costs one nil check.
	window *obs.WindowedHistogram
}

// NewObs registers the netserve metric families on reg. Registration
// is idempotent.
func NewObs(reg *obs.Registry) *Obs {
	return &Obs{
		conns:     reg.Counter("seqstream_netserve_connections_total", "client connections accepted"),
		requests:  reg.Counter("seqstream_netserve_requests_total", "wire requests decoded"),
		errors:    reg.Counter("seqstream_netserve_errors_total", "requests rejected before reaching the node"),
		readBytes: reg.Counter("seqstream_netserve_read_bytes_total", "payload bytes served to clients"),
		dropped:   reg.Counter("seqstream_netserve_dropped_responses_total", "responses discarded because the connection writer had exited"),

		openConns: reg.Gauge("seqstream_netserve_open_connections", "currently connected clients"),

		requestLatency: reg.Histogram("seqstream_netserve_request_latency_seconds", "storage-node service time per wire request"),
	}
}

// AttachWindow adds a sliding-window view of the per-request service
// time, registered on reg as
// seqstream_netserve_request_latency_window_seconds. Call it before
// the server starts accepting connections (like SetObs, the field is
// not synchronized against in-flight requests).
func (o *Obs) AttachWindow(reg *obs.Registry, now func() time.Duration, span time.Duration) error {
	w, err := obs.NewWindowedHistogram(now, span, 0)
	if err != nil {
		return err
	}
	o.window = w
	reg.Window("seqstream_netserve_request_latency_window_seconds",
		"storage-node service time per wire request over the sliding window", w)
	return nil
}

// SetObs attaches instruments to the server; nil detaches. The
// pointer is snapshotted per connection at accept time, so attach
// before clients connect to instrument them.
func (s *Server) SetObs(o *Obs) { s.obs.Store(o) }
