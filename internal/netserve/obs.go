package netserve

import (
	"time"

	"seqstream/internal/obs"
)

// Obs mirrors ServerStats into a metric registry and adds what the
// aggregate counters cannot express: a gauge of open connections and a
// latency histogram over the storage node's per-request service time
// (core.Response End − Start, so it measures the node, not the
// network). Instruments are atomic; the /metrics scraper never takes
// the server lock.
type Obs struct {
	conns     *obs.Counter
	requests  *obs.Counter
	errors    *obs.Counter
	readBytes *obs.Counter
	dropped   *obs.Counter

	openConns *obs.Gauge

	requestLatency *obs.Histogram

	// window, when attached, mirrors requestLatency over a sliding
	// window for the health rollup. Written before serving starts,
	// read by connection goroutines; Observe is nil-safe so the
	// unattached case costs one nil check.
	window *obs.WindowedHistogram

	// sloDeadline, when attached, scores each successful wire response
	// against the storage node's deadline model from the client's side
	// of the socket: what the scheduler promised versus what the wire
	// observed. Written before serving starts, like window.
	sloDeadline   func(length int64) time.Duration
	sloOnTime     *obs.Counter
	sloViolations *obs.Counter
}

// NewObs registers the netserve metric families on reg. Registration
// is idempotent.
func NewObs(reg *obs.Registry) *Obs {
	return &Obs{
		conns:     reg.Counter("seqstream_netserve_connections_total", "client connections accepted"),
		requests:  reg.Counter("seqstream_netserve_requests_total", "wire requests decoded"),
		errors:    reg.Counter("seqstream_netserve_errors_total", "requests rejected before reaching the node"),
		readBytes: reg.Counter("seqstream_netserve_read_bytes_total", "payload bytes served to clients"),
		dropped:   reg.Counter("seqstream_netserve_dropped_responses_total", "responses discarded because the connection writer had exited"),

		openConns: reg.Gauge("seqstream_netserve_open_connections", "currently connected clients"),

		requestLatency: reg.Histogram("seqstream_netserve_request_latency_seconds", "storage-node service time per wire request"),
	}
}

// AttachWindow adds a sliding-window view of the per-request service
// time, registered on reg as
// seqstream_netserve_request_latency_window_seconds. Call it before
// the server starts accepting connections (like SetObs, the field is
// not synchronized against in-flight requests).
func (o *Obs) AttachWindow(reg *obs.Registry, now func() time.Duration, span time.Duration) error {
	w, err := obs.NewWindowedHistogram(now, span, 0)
	if err != nil {
		return err
	}
	o.window = w
	reg.Window("seqstream_netserve_request_latency_window_seconds",
		"storage-node service time per wire request over the sliding window", w)
	return nil
}

// AttachSLO adds wire-level delivery scoring: each successful response
// is checked against the node's deadline model (core exposes it via
// (*slo.Ledger).Deadline) and counted on-time or violated. These are
// the counters an external probe would produce — they include queueing
// and completion-path time the scheduler-side ledger scores too, so
// the two views should track each other; divergence means time is
// being lost between the shard completion path and the wire. Call
// before the server starts accepting connections.
func (o *Obs) AttachSLO(reg *obs.Registry, deadline func(length int64) time.Duration) {
	o.sloDeadline = deadline
	o.sloOnTime = reg.Counter("seqstream_netserve_slo_on_time_total",
		"wire responses delivered within the stream deadline model")
	o.sloViolations = reg.Counter("seqstream_netserve_slo_violations_total",
		"wire responses delivered past the stream deadline model")
}

// scoreSLO counts one successful response against the deadline model.
// Nil-safe: without AttachSLO it is a single nil check.
func (o *Obs) scoreSLO(length int64, lat time.Duration) {
	if o == nil || o.sloDeadline == nil {
		return
	}
	if lat > o.sloDeadline(length) {
		o.sloViolations.Inc()
	} else {
		o.sloOnTime.Inc()
	}
}

// SetObs attaches instruments to the server; nil detaches. The
// pointer is snapshotted per connection at accept time, so attach
// before clients connect to instrument them.
func (s *Server) SetObs(o *Obs) { s.obs.Store(o) }
