package netserve

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
)

func TestProtocolRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	req := Request{ID: 42, Disk: 3, Flags: FlagWantData, Offset: 1 << 30, Length: 64 << 10}
	if err := WriteRequest(&buf, req); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got != req {
		t.Errorf("request round trip: got %+v want %+v", got, req)
	}

	resp := Response{ID: 42, Status: StatusOK, Data: []byte("payload")}
	if err := WriteResponse(&buf, resp); err != nil {
		t.Fatal(err)
	}
	rgot, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rgot.ID != 42 || rgot.Status != StatusOK || !bytes.Equal(rgot.Data, resp.Data) {
		t.Errorf("response round trip: got %+v", rgot)
	}
}

func TestProtocolNoPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteResponse(&buf, Response{ID: 1, Status: StatusIOError}); err != nil {
		t.Fatal(err)
	}
	got, err := ReadResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Data != nil {
		t.Error("expected no payload")
	}
}

func TestProtocolBadMagic(t *testing.T) {
	junk := bytes.Repeat([]byte{0xAB}, 64)
	if _, err := ReadRequest(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("ReadRequest err = %v, want ErrBadMagic", err)
	}
	if _, err := ReadResponse(bytes.NewReader(junk)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("ReadResponse err = %v, want ErrBadMagic", err)
	}
}

func TestProtocolShortFrame(t *testing.T) {
	if _, err := ReadRequest(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short request accepted")
	}
	if _, err := ReadResponse(bytes.NewReader(nil)); err != io.EOF {
		t.Errorf("empty response err = %v, want EOF", err)
	}
}

func TestProtocolTooLarge(t *testing.T) {
	var buf bytes.Buffer
	big := Request{ID: 1, Length: MaxLength + 1}
	if err := WriteRequest(&buf, big); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadRequest(&buf); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized request err = %v", err)
	}
	if err := WriteResponse(io.Discard, Response{Data: make([]byte, MaxLength+1)}); !errors.Is(err, ErrTooLarge) {
		t.Errorf("oversized response err = %v", err)
	}
}

// newTestNode builds a real-time storage node over a memory device.
func newTestNode(t *testing.T) *core.Server {
	t.Helper()
	dev, err := blockdev.NewMemDevice(2, 1<<30, 200*time.Microsecond, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64<<20, 1<<20)
	cfg.GCPeriod = 100 * time.Millisecond
	node, err := core.NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node
}

func TestServerClientEndToEnd(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.RunStreams(0, 1<<30, 4, 32, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	rec := client.Recorder()
	if rec.TotalRequests() != 128 {
		t.Errorf("TotalRequests = %d, want 128", rec.TotalRequests())
	}
	if rec.TotalBytes() != 128*64<<10 {
		t.Errorf("TotalBytes = %d", rec.TotalBytes())
	}
	if rec.Streams() != 4 {
		t.Errorf("Streams = %d", rec.Streams())
	}
	st := srv.Stats()
	if st.Requests != 128 || st.Conns != 1 {
		t.Errorf("server stats = %+v", st)
	}
	if client.Outstanding() != 0 {
		t.Errorf("Outstanding = %d after drain", client.Outstanding())
	}
	if client.Err() != nil {
		t.Errorf("client error: %v", client.Err())
	}
}

func TestServerReturnsData(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make(chan Response, 1)
	if err := client.Go(0, 1, 4096, 512, FlagWantData, func(r Response, _ time.Duration) {
		got <- r
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.Status != StatusOK {
			t.Fatalf("status = %d", r.Status)
		}
		if len(r.Data) != 512 {
			t.Fatalf("data length = %d", len(r.Data))
		}
		for i, b := range r.Data {
			if b != blockdev.Pattern(1, 4096+int64(i)) {
				t.Fatalf("data[%d] corrupt", i)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response")
	}
}

func TestServerBadRequest(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make(chan Response, 1)
	// Disk 9 does not exist.
	if err := client.Go(0, 9, 0, 4096, 0, func(r Response, _ time.Duration) { got <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.Status != StatusBadRequest {
			t.Errorf("status = %d, want BadRequest", r.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response")
	}
	if srv.Stats().Errors == 0 {
		t.Error("server did not count the error")
	}
}

func TestServerMultipleClients(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	done := make(chan error, 3)
	for i := 0; i < 3; i++ {
		go func() {
			client, err := Dial(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer client.Close()
			done <- client.RunStreams(0, 1<<30, 2, 16, 64<<10, 0)
		}()
	}
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	if got := srv.Stats().Conns; got != 3 {
		t.Errorf("Conns = %d, want 3", got)
	}
}

func TestServerCloseUnblocksClient(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	// New connections must fail.
	if _, err := Dial(srv.Addr()); err == nil {
		t.Error("Dial after Close succeeded")
	}
}

func TestMemDevice(t *testing.T) {
	if _, err := blockdev.NewMemDevice(0, 1024, 0, false); err == nil {
		t.Error("zero disks accepted")
	}
	if _, err := blockdev.NewMemDevice(1, 0, 0, false); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := blockdev.NewMemDevice(1, 1024, -1, false); err == nil {
		t.Error("negative latency accepted")
	}
	dev, err := blockdev.NewMemDevice(1, 1<<20, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	doneCh := make(chan struct{})
	if err := dev.ReadAt(0, 0, 4096, func(data []byte, err error) {
		if err != nil || data != nil {
			t.Errorf("unexpected data/err: %v %v", data, err)
		}
		close(doneCh)
	}); err != nil {
		t.Fatal(err)
	}
	<-doneCh
	if dev.Reads() != 1 {
		t.Errorf("Reads = %d", dev.Reads())
	}
	if err := dev.ReadAt(0, 1<<20, 1, nil); err == nil {
		t.Error("out-of-range read accepted")
	}
}
