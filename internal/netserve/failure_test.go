package netserve

import (
	"net"
	"runtime"
	"strings"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
)

// checkGoroutines fails the test if goroutines leak past the test's
// own cleanups. Register it first so its cleanup runs last.
func checkGoroutines(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for runtime.NumGoroutine() > before+3 {
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

// faultTestNode builds a real-time storage node whose device routes
// through a scriptable fault injector.
func faultTestNode(t *testing.T, rules []blockdev.FaultRule, tune func(*core.Config)) (*core.Server, *blockdev.ScriptDevice) {
	t.Helper()
	mem, err := blockdev.NewMemDevice(2, 1<<30, 200*time.Microsecond, true)
	if err != nil {
		t.Fatal(err)
	}
	sdev, err := blockdev.NewScriptDevice(mem, blockdev.NewRealClock(), rules)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64<<20, 1<<20)
	cfg.GCPeriod = 100 * time.Millisecond
	if tune != nil {
		tune(&cfg)
	}
	node, err := core.NewServer(sdev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(node.Close)
	return node, sdev
}

func TestRunStreamsRejectsOverCapacity(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// 32 streams over 1 MB leaves 32 KB spacing, less than the 64 KB
	// request size: the streams would trample each other's offsets.
	err = client.RunStreams(0, 1<<20, 32, 4, 64<<10, 0)
	if err == nil {
		t.Fatal("RunStreams accepted spacing < reqSize")
	}
	if !strings.Contains(err.Error(), "spacing") {
		t.Errorf("unexpected error: %v", err)
	}
}

func TestClientDisconnectMidBurstDrainsPending(t *testing.T) {
	checkGoroutines(t)
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	done := make(chan error, 1)
	go func() {
		done <- client.RunStreams(0, 1<<30, 8, 200, 64<<10, 0)
	}()
	time.Sleep(30 * time.Millisecond)
	// Kill the connection out from under the burst. Without the
	// pending-map drain in readLoop, RunStreams' WaitGroup would wait
	// forever on completions that can no longer arrive.
	if err := srv.Close(); err != nil {
		t.Errorf("server Close: %v", err)
	}
	select {
	case err := <-done:
		if err == nil {
			t.Error("RunStreams succeeded across a dead connection")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunStreams deadlocked after disconnect")
	}
	if n := client.Outstanding(); n != 0 {
		t.Errorf("Outstanding = %d after disconnect drain", n)
	}
	if client.Err() == nil {
		t.Error("client reported no terminal error")
	}
}

func TestClientRequestTimeoutOnHungFetch(t *testing.T) {
	checkGoroutines(t)
	// Hang every read-ahead fetch on disk 0; direct 64 KB reads pass.
	node, sdev := faultTestNode(t, []blockdev.FaultRule{
		{Disk: 0, Mode: blockdev.FaultHang, MinLen: 1 << 20},
	}, nil)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// The handler's pending.Wait blocks on the hung fetch's waiter;
	// release it before srv.Close or Close never returns. Registered
	// after the Close defers so it runs first.
	defer sdev.ReleaseHung(nil)
	client, err := DialOpts(srv.Addr(), ClientOptions{RequestTimeout: 300 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	const reqSize = 64 << 10
	do := func(i int) Response {
		t.Helper()
		got := make(chan Response, 1)
		if err := client.Go(0, 0, int64(i)*reqSize, reqSize, 0,
			func(r Response, _ time.Duration) { got <- r }); err != nil {
			t.Fatal(err)
		}
		select {
		case r := <-got:
			return r
		case <-time.After(5 * time.Second):
			t.Fatal("no response (client timeout did not fire)")
			return Response{}
		}
	}
	// Four sequential reads classify the stream and issue the fetch
	// (which hangs); they are themselves served by direct reads.
	for i := 0; i < 4; i++ {
		if r := do(i); r.Status != StatusOK {
			t.Fatalf("detection read %d: status %d", i, r.Status)
		}
	}
	// The fifth read waits on the hung fetch: the client deadline must
	// complete it with StatusTimeout.
	if r := do(4); r.Status != StatusTimeout {
		t.Fatalf("waiter status = %d, want StatusTimeout", r.Status)
	}
	if sdev.Hung() != 1 {
		t.Errorf("Hung = %d, want 1", sdev.Hung())
	}
	if n := client.Outstanding(); n != 0 {
		t.Errorf("Outstanding = %d after timeout", n)
	}
}

func TestServerWriteTimeoutShedsDeadPeer(t *testing.T) {
	checkGoroutines(t)
	node := newTestNode(t)
	srv, err := NewServerOpts(node, "127.0.0.1:0", ServerOptions{
		WriteTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A raw peer that requests payloads and never reads a byte: the
	// socket buffer fills, the writer hits its deadline and exits, and
	// the remaining completions must be shed — not block the handler
	// forever on the response channel.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Shrink our receive window so the server's send buffer fills
	// quickly instead of the kernel absorbing megabytes of responses.
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetReadBuffer(4096)
	}
	// Enough responses to overflow the socket buffers AND the response
	// channel's 128-entry slack, so completions reach the blocking
	// send and must be shed when the writer exits.
	for i := 0; i < 400; i++ {
		req := Request{
			ID:     uint64(i),
			Flags:  FlagWantData,
			Offset: (int64(i) % 100) * (8 << 20), // distinct regions: no stream forms
			Length: 128 << 10,
		}
		if err := WriteRequest(conn, req); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().DroppedResponses == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("no responses shed; stats = %+v", srv.Stats())
		}
		time.Sleep(20 * time.Millisecond)
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()
	select {
	case err := <-closed:
		if err != nil {
			t.Errorf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server Close wedged behind a dead peer")
	}
}

func TestServerIdleTimeoutClosesConnection(t *testing.T) {
	checkGoroutines(t)
	node := newTestNode(t)
	srv, err := NewServerOpts(node, "127.0.0.1:0", ServerOptions{
		IdleTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Send nothing: the server must hang up on its own.
	deadline := time.Now().Add(5 * time.Second)
	for client.Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("idle connection was never closed")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDialRetry(t *testing.T) {
	// Grab a port with no listener behind it.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	start := time.Now()
	if _, err := DialRetry(addr, ClientOptions{}, 3, 10*time.Millisecond); err == nil {
		t.Fatal("DialRetry to dead address succeeded")
	} else if !strings.Contains(err.Error(), "3 attempts") {
		t.Errorf("unexpected error: %v", err)
	}
	// Two backoffs, each at least half its nominal value.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("DialRetry returned after %v, backoff not applied", elapsed)
	}

	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := DialRetry(srv.Addr(), ClientOptions{}, 3, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("DialRetry to live server: %v", err)
	}
	client.Close()
}

func TestEndToEndThroughFaultInjector(t *testing.T) {
	checkGoroutines(t)
	// Every third read-ahead fetch fails transiently; the node's retry
	// path must absorb the faults without any client-visible error.
	node, sdev := faultTestNode(t, []blockdev.FaultRule{
		{Mode: blockdev.FaultError, MinLen: 1 << 20, Every: 3},
	}, func(cfg *core.Config) {
		cfg.FetchRetries = 3
		cfg.RetryBackoff = time.Millisecond
	})
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	if err := client.RunStreams(0, 1<<30, 4, 32, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams through fault injector: %v", err)
	}
	if sdev.Faults() == 0 {
		t.Error("fault injector never fired")
	}
	if got := node.Stats().FetchRetries; got == 0 {
		t.Error("node never retried a fetch")
	}
	if rec := client.Recorder(); rec.TotalRequests() != 128 {
		t.Errorf("TotalRequests = %d, want 128", rec.TotalRequests())
	}
}
