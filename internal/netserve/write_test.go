package netserve

import (
	"bytes"
	"net"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
)

func TestServerWritePathDisabledByDefault(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	got := make(chan Response, 1)
	if err := client.Go(0, 0, 0, 4096, FlagWrite, func(r Response, _ time.Duration) { got <- r }); err != nil {
		t.Fatal(err)
	}
	select {
	case r := <-got:
		if r.Status != StatusBadRequest {
			t.Errorf("status = %d, want BadRequest without ingest", r.Status)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no response")
	}
}

func TestServerWriteStreamsEndToEnd(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 200*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewRealClock(), core.DefaultConfig(64<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ing, err := core.NewIngest(dev, blockdev.NewRealClock(), core.IngestConfig{
		ChunkSize: 1 << 20, Memory: 32 << 20, FlushTimeout: 100 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ing.Close()

	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.EnableWrites(ing)

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// The same stream machinery drives write streams via FlagWrite.
	if err := client.RunStreams(0, 1<<30, 4, 32, 64<<10, FlagWrite); err != nil {
		t.Fatalf("write streams: %v", err)
	}
	ing.Flush()
	st := ing.Stats()
	if st.Writes != 128 {
		t.Errorf("ingest writes = %d, want 128", st.Writes)
	}
	if st.BytesAccepted != 128*64<<10 {
		t.Errorf("BytesAccepted = %d", st.BytesAccepted)
	}
	if st.Flushes == 0 {
		t.Error("nothing flushed")
	}
	if dev.Writes() == 0 {
		t.Error("device saw no writes")
	}
	// Coalescing: far fewer device writes than client writes.
	if dev.Writes() >= 64 {
		t.Errorf("device writes = %d; coalescing ineffective", dev.Writes())
	}
}

func TestServerSurvivesGarbageFrames(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A connection that speaks garbage must be dropped without taking
	// the server down.
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write(bytes.Repeat([]byte{0xDE, 0xAD}, 64)); err != nil {
		t.Fatal(err)
	}
	conn.Close()

	// A well-behaved client still works afterwards.
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 1<<30, 2, 8, 64<<10, 0); err != nil {
		t.Fatalf("healthy client after garbage: %v", err)
	}
}

func TestServerRejectsOversizedFrame(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Length beyond MaxLength: the server must drop the connection.
	if err := WriteRequest(conn, Request{ID: 1, Length: MaxLength + 1}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server answered an oversized frame instead of dropping it")
	}
}
