package netserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"

	"seqstream/internal/bufpool"
)

// Protocol constants.
const (
	// Magic guards both frame directions.
	Magic = 0x53455153 // "SQES"
	// HelloMagic guards the optional handshake frame a v2 client leads
	// with. It is distinct from Magic so a server can tell a hello
	// from a v1 request by peeking the first four bytes.
	HelloMagic = 0x32455153 // "SQE2"
	// MaxLength bounds a single read (16 MB).
	MaxLength = 16 << 20
)

// Protocol versions carried in the hello frame.
const (
	// ProtoV1 is the original framing: data-less v1 response frames
	// (payload only when the client begged with FlagWantData, and even
	// then with no negotiated guarantees).
	ProtoV1 uint16 = 1
	// ProtoV2 adds the negotiated feature set and the extended
	// response framing (flags word + offset echo on payload frames).
	ProtoV2 uint16 = 2
)

// Negotiable feature bits (hello frames).
const (
	// FeatPayload asks for payload-bearing read responses: v2 frames
	// whose payload is written straight from the staged buffer via
	// vectored I/O, with an offset echo the client can verify framing
	// against.
	FeatPayload uint16 = 1 << 0
)

// Response flags (v2 frames only).
const (
	// RespPayload marks a v2 response frame carrying payload framing:
	// an 8-byte offset echo after the fixed header, then the data.
	RespPayload uint32 = 1 << 0
)

// Request flags.
const (
	// FlagWantData asks the server to include the read payload in the
	// response.
	FlagWantData uint16 = 1 << iota
	// FlagWrite marks the request as a write of Length bytes (the
	// ingest path). Payloads are not carried on the wire — mirroring
	// the paper's data-less responses — so the node writes
	// deterministic fill; the flag exercises the full scheduling path.
	FlagWrite
	// FlagTraced marks a request frame that carries an 8-byte trace id
	// after the fixed header. Servers that predate the flag reject the
	// frame (bad magic on the extension bytes), and old clients never
	// set it, so the extension is backward compatible in the direction
	// that matters: new server, any client.
	FlagTraced
)

// Response status codes.
const (
	StatusOK uint32 = iota
	StatusBadRequest
	StatusIOError
	StatusShutdown
	// StatusTimeout is synthesized by the client when a request
	// outlives its per-request deadline; it never crosses the wire.
	StatusTimeout
	// StatusDisconnected is synthesized by the client for requests
	// still pending when the connection dies; it never crosses the
	// wire.
	StatusDisconnected
)

// Fixed wire sizes. Request frames are identical in both versions;
// v2 response frames add a 4-byte flags word to the v1 header, plus
// an 8-byte offset echo when RespPayload is set.
const (
	reqHeaderSize    = 4 + 8 + 2 + 2 + 8 + 4
	respHeaderSize   = 4 + 8 + 4 + 4
	respV2HeaderSize = 4 + 8 + 4 + 4 + 4
	helloSize        = 4 + 2 + 2
)

// Hello is the handshake frame, sent by a v2 client immediately after
// connecting and answered by the server before any responses. Version
// is the highest protocol version the sender speaks; Feats is the
// feature set requested (client) or granted (server). A v1 client
// sends no hello at all — the server detects the absence by peeking
// the first frame's magic — so old clients keep working unchanged.
type Hello struct {
	Version uint16
	Feats   uint16
}

// WriteHello encodes a handshake frame.
func WriteHello(w io.Writer, h Hello) error {
	var buf [helloSize]byte
	binary.LittleEndian.PutUint32(buf[0:], HelloMagic)
	binary.LittleEndian.PutUint16(buf[4:], h.Version)
	binary.LittleEndian.PutUint16(buf[6:], h.Feats)
	_, err := w.Write(buf[:])
	return err
}

// ReadHello decodes a handshake frame.
func ReadHello(r io.Reader) (Hello, error) {
	var buf [helloSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Hello{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != HelloMagic {
		return Hello{}, ErrBadMagic
	}
	return Hello{
		Version: binary.LittleEndian.Uint16(buf[4:]),
		Feats:   binary.LittleEndian.Uint16(buf[6:]),
	}, nil
}

// Request is one client read.
type Request struct {
	ID     uint64
	Disk   uint16
	Flags  uint16
	Offset int64
	Length int64
	// Trace is the request's trace id, carried on the wire only when
	// FlagTraced is set. Zero means "server, allocate one for me".
	Trace uint64
}

// Response answers a request.
type Response struct {
	ID     uint64
	Status uint32
	// Flags carries the v2 response flags (RespPayload). Always zero
	// on v1 frames.
	Flags uint32
	// Offset echoes the request offset on v2 payload frames, so a
	// client can verify framing independently of its own bookkeeping.
	Offset int64
	Data   []byte // nil unless FlagWantData was set and the read succeeded

	// buf is the pooled memory backing Data: on the server the staged
	// buffer detached from the core response (core.Response.TakeBuf),
	// on a payload-mode client the receive buffer. Release drops the
	// single reference this response owns.
	buf *bufpool.Buf
	// release recycles non-pooled backing memory (nil otherwise);
	// retained so custom backends that hand out closures keep working.
	release func()
}

// Release returns the memory backing Data to its pool, if any. The
// server's writer calls it after the vectored write has drained the
// payload onto the wire; payload-mode clients call it after their
// last use of Data. It is safe to call more than once and on
// responses with no pooled payload.
func (r *Response) Release() {
	r.buf.Release()
	r.buf = nil
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.Data = nil
}

// Errors.
var (
	ErrBadMagic = errors.New("netserve: bad magic")
	ErrTooLarge = errors.New("netserve: frame too large")
)

// WriteRequest encodes a request frame: the fixed header, plus the
// 8-byte trace id when FlagTraced is set (the flag is derived from the
// Trace field, so callers just set Trace).
func WriteRequest(w io.Writer, req Request) error {
	if req.Trace != 0 {
		req.Flags |= FlagTraced
	}
	var buf [reqHeaderSize + 8]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint64(buf[4:], req.ID)
	binary.LittleEndian.PutUint16(buf[12:], req.Disk)
	binary.LittleEndian.PutUint16(buf[14:], req.Flags)
	binary.LittleEndian.PutUint64(buf[16:], uint64(req.Offset))
	binary.LittleEndian.PutUint32(buf[24:], uint32(req.Length))
	n := reqHeaderSize
	if req.Flags&FlagTraced != 0 {
		binary.LittleEndian.PutUint64(buf[reqHeaderSize:], req.Trace)
		n += 8
	}
	_, err := w.Write(buf[:n])
	return err
}

// ReadRequest decodes a request frame, reading the trace-id extension
// when FlagTraced is set.
func ReadRequest(r io.Reader) (Request, error) {
	var buf [reqHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Request{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return Request{}, ErrBadMagic
	}
	req := Request{
		ID:     binary.LittleEndian.Uint64(buf[4:]),
		Disk:   binary.LittleEndian.Uint16(buf[12:]),
		Flags:  binary.LittleEndian.Uint16(buf[14:]),
		Offset: int64(binary.LittleEndian.Uint64(buf[16:])),
		Length: int64(binary.LittleEndian.Uint32(buf[24:])),
	}
	if req.Length > MaxLength {
		return Request{}, ErrTooLarge
	}
	if req.Flags&FlagTraced != 0 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Request{}, fmt.Errorf("netserve: trace extension: %w", err)
		}
		req.Trace = binary.LittleEndian.Uint64(ext[:])
	}
	return req, nil
}

// WriteResponse encodes a response frame.
func WriteResponse(w io.Writer, resp Response) error {
	if int64(len(resp.Data)) > MaxLength {
		return ErrTooLarge
	}
	var buf [respHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint64(buf[4:], resp.ID)
	binary.LittleEndian.PutUint32(buf[12:], resp.Status)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(resp.Data)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	if len(resp.Data) > 0 {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	return nil
}

// ResponseWriter serializes response frames for one connection. The
// header (and, on v2 payload frames, the offset echo) and the payload
// reach the socket in a single vectored write (net.Buffers writev)
// straight from the staged buffer — the payload bytes are never
// copied. The scratch header and gather list live on the writer so
// the steady state allocates nothing. Not safe for concurrent use:
// each connection's writer goroutine owns exactly one.
type ResponseWriter struct {
	w       io.Writer
	payload bool // v2 framing negotiated on this connection
	hdr     [respV2HeaderSize + 8]byte
	scratch [2][]byte
	bufs    net.Buffers
}

// NewResponseWriter builds a writer for one connection. payload
// selects v2 framing (negotiated connections); false emits
// byte-identical v1 frames, just gathered into one writev.
func NewResponseWriter(w io.Writer, payload bool) *ResponseWriter {
	return &ResponseWriter{w: w, payload: payload}
}

// WriteResponse encodes and writes one response frame. The caller
// still owns resp's buffer and must Release it afterwards — by then
// the write has drained (or failed), so the pooled bytes are free to
// recycle either way.
func (fw *ResponseWriter) WriteResponse(resp *Response) error {
	if int64(len(resp.Data)) > MaxLength {
		return ErrTooLarge
	}
	binary.LittleEndian.PutUint32(fw.hdr[0:], Magic)
	binary.LittleEndian.PutUint64(fw.hdr[4:], resp.ID)
	binary.LittleEndian.PutUint32(fw.hdr[12:], resp.Status)
	var n int
	if fw.payload {
		binary.LittleEndian.PutUint32(fw.hdr[16:], resp.Flags)
		binary.LittleEndian.PutUint32(fw.hdr[20:], uint32(len(resp.Data)))
		n = respV2HeaderSize
		if resp.Flags&RespPayload != 0 {
			binary.LittleEndian.PutUint64(fw.hdr[n:], uint64(resp.Offset))
			n += 8
		}
	} else {
		binary.LittleEndian.PutUint32(fw.hdr[16:], uint32(len(resp.Data)))
		n = respHeaderSize
	}
	// The gather list is rebuilt from the scratch array every call:
	// WriteTo consumes a net.Buffers as it drains, so yesterday's
	// slice header is spent.
	fw.bufs = net.Buffers(append(fw.scratch[:0], fw.hdr[:n]))
	if len(resp.Data) > 0 {
		fw.bufs = append(fw.bufs, resp.Data)
	}
	_, err := fw.bufs.WriteTo(fw.w)
	return err
}

// ReadResponse decodes a response frame.
func ReadResponse(r io.Reader) (Response, error) {
	var buf [respHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Response{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return Response{}, ErrBadMagic
	}
	resp := Response{
		ID:     binary.LittleEndian.Uint64(buf[4:]),
		Status: binary.LittleEndian.Uint32(buf[12:]),
	}
	n := binary.LittleEndian.Uint32(buf[16:])
	if int64(n) > MaxLength {
		return Response{}, ErrTooLarge
	}
	if n > 0 {
		resp.Data = make([]byte, n)
		if _, err := io.ReadFull(r, resp.Data); err != nil {
			return Response{}, fmt.Errorf("netserve: payload: %w", err)
		}
	}
	return resp, nil
}

// readResponseV2 decodes one v2 response frame. When a pool is
// supplied the payload lands in pooled receive memory that the
// consumer owns via Response.Release; nil falls back to plain
// allocation.
func readResponseV2(r io.Reader, pool *bufpool.Pool) (Response, error) {
	var buf [respV2HeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Response{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return Response{}, ErrBadMagic
	}
	resp := Response{
		ID:     binary.LittleEndian.Uint64(buf[4:]),
		Status: binary.LittleEndian.Uint32(buf[12:]),
		Flags:  binary.LittleEndian.Uint32(buf[16:]),
	}
	n := binary.LittleEndian.Uint32(buf[20:])
	if int64(n) > MaxLength {
		return Response{}, ErrTooLarge
	}
	if resp.Flags&RespPayload != 0 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Response{}, fmt.Errorf("netserve: offset echo: %w", err)
		}
		resp.Offset = int64(binary.LittleEndian.Uint64(ext[:]))
	}
	if n > 0 {
		if pool != nil {
			pb := pool.Get(int64(n))
			if _, err := io.ReadFull(r, pb.Data); err != nil {
				pb.Release()
				return Response{}, fmt.Errorf("netserve: payload: %w", err)
			}
			resp.Data = pb.Data
			resp.buf = pb
		} else {
			resp.Data = make([]byte, n)
			if _, err := io.ReadFull(r, resp.Data); err != nil {
				return Response{}, fmt.Errorf("netserve: payload: %w", err)
			}
		}
	}
	return resp, nil
}
