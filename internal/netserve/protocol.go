package netserve

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Protocol constants.
const (
	// Magic guards both frame directions.
	Magic = 0x53455153 // "SQES"
	// MaxLength bounds a single read (16 MB).
	MaxLength = 16 << 20
)

// Request flags.
const (
	// FlagWantData asks the server to include the read payload in the
	// response.
	FlagWantData uint16 = 1 << iota
	// FlagWrite marks the request as a write of Length bytes (the
	// ingest path). Payloads are not carried on the wire — mirroring
	// the paper's data-less responses — so the node writes
	// deterministic fill; the flag exercises the full scheduling path.
	FlagWrite
	// FlagTraced marks a request frame that carries an 8-byte trace id
	// after the fixed header. Servers that predate the flag reject the
	// frame (bad magic on the extension bytes), and old clients never
	// set it, so the extension is backward compatible in the direction
	// that matters: new server, any client.
	FlagTraced
)

// Response status codes.
const (
	StatusOK uint32 = iota
	StatusBadRequest
	StatusIOError
	StatusShutdown
	// StatusTimeout is synthesized by the client when a request
	// outlives its per-request deadline; it never crosses the wire.
	StatusTimeout
	// StatusDisconnected is synthesized by the client for requests
	// still pending when the connection dies; it never crosses the
	// wire.
	StatusDisconnected
)

// reqHeaderSize and respHeaderSize are the wire sizes.
const (
	reqHeaderSize  = 4 + 8 + 2 + 2 + 8 + 4
	respHeaderSize = 4 + 8 + 4 + 4
)

// Request is one client read.
type Request struct {
	ID     uint64
	Disk   uint16
	Flags  uint16
	Offset int64
	Length int64
	// Trace is the request's trace id, carried on the wire only when
	// FlagTraced is set. Zero means "server, allocate one for me".
	Trace uint64
}

// Response answers a request.
type Response struct {
	ID     uint64
	Status uint32
	Data   []byte // nil unless FlagWantData was set and the read succeeded

	// release recycles the pooled memory backing Data (server side
	// only; nil on decoded responses and non-pooled payloads).
	release func()
}

// Release returns the pooled memory backing Data to its pool, if any.
// The server's writer calls it after the payload is on the wire; it is
// safe to call more than once and on responses with no pooled payload.
func (r *Response) Release() {
	if r.release != nil {
		r.release()
		r.release = nil
	}
	r.Data = nil
}

// Errors.
var (
	ErrBadMagic = errors.New("netserve: bad magic")
	ErrTooLarge = errors.New("netserve: frame too large")
)

// WriteRequest encodes a request frame: the fixed header, plus the
// 8-byte trace id when FlagTraced is set (the flag is derived from the
// Trace field, so callers just set Trace).
func WriteRequest(w io.Writer, req Request) error {
	if req.Trace != 0 {
		req.Flags |= FlagTraced
	}
	var buf [reqHeaderSize + 8]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint64(buf[4:], req.ID)
	binary.LittleEndian.PutUint16(buf[12:], req.Disk)
	binary.LittleEndian.PutUint16(buf[14:], req.Flags)
	binary.LittleEndian.PutUint64(buf[16:], uint64(req.Offset))
	binary.LittleEndian.PutUint32(buf[24:], uint32(req.Length))
	n := reqHeaderSize
	if req.Flags&FlagTraced != 0 {
		binary.LittleEndian.PutUint64(buf[reqHeaderSize:], req.Trace)
		n += 8
	}
	_, err := w.Write(buf[:n])
	return err
}

// ReadRequest decodes a request frame, reading the trace-id extension
// when FlagTraced is set.
func ReadRequest(r io.Reader) (Request, error) {
	var buf [reqHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Request{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return Request{}, ErrBadMagic
	}
	req := Request{
		ID:     binary.LittleEndian.Uint64(buf[4:]),
		Disk:   binary.LittleEndian.Uint16(buf[12:]),
		Flags:  binary.LittleEndian.Uint16(buf[14:]),
		Offset: int64(binary.LittleEndian.Uint64(buf[16:])),
		Length: int64(binary.LittleEndian.Uint32(buf[24:])),
	}
	if req.Length > MaxLength {
		return Request{}, ErrTooLarge
	}
	if req.Flags&FlagTraced != 0 {
		var ext [8]byte
		if _, err := io.ReadFull(r, ext[:]); err != nil {
			return Request{}, fmt.Errorf("netserve: trace extension: %w", err)
		}
		req.Trace = binary.LittleEndian.Uint64(ext[:])
	}
	return req, nil
}

// WriteResponse encodes a response frame.
func WriteResponse(w io.Writer, resp Response) error {
	if int64(len(resp.Data)) > MaxLength {
		return ErrTooLarge
	}
	var buf [respHeaderSize]byte
	binary.LittleEndian.PutUint32(buf[0:], Magic)
	binary.LittleEndian.PutUint64(buf[4:], resp.ID)
	binary.LittleEndian.PutUint32(buf[12:], resp.Status)
	binary.LittleEndian.PutUint32(buf[16:], uint32(len(resp.Data)))
	if _, err := w.Write(buf[:]); err != nil {
		return err
	}
	if len(resp.Data) > 0 {
		if _, err := w.Write(resp.Data); err != nil {
			return err
		}
	}
	return nil
}

// ReadResponse decodes a response frame.
func ReadResponse(r io.Reader) (Response, error) {
	var buf [respHeaderSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return Response{}, err
	}
	if binary.LittleEndian.Uint32(buf[0:]) != Magic {
		return Response{}, ErrBadMagic
	}
	resp := Response{
		ID:     binary.LittleEndian.Uint64(buf[4:]),
		Status: binary.LittleEndian.Uint32(buf[12:]),
	}
	n := binary.LittleEndian.Uint32(buf[16:])
	if int64(n) > MaxLength {
		return Response{}, ErrTooLarge
	}
	if n > 0 {
		resp.Data = make([]byte, n)
		if _, err := io.ReadFull(r, resp.Data); err != nil {
			return Response{}, fmt.Errorf("netserve: payload: %w", err)
		}
	}
	return resp, nil
}
