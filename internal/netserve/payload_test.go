package netserve

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
)

// payloadNode builds a core server over a pattern-filled memory
// device plus a netserve server with the given options.
func payloadNode(t *testing.T, disks int, memory, readAhead int64, opts ServerOptions) (*core.Server, *Server) {
	t.Helper()
	dev, err := blockdev.NewMemDevice(disks, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(memory, readAhead)
	cfg.NearSeqWindow = readAhead
	node, err := core.NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	srv, err := NewServerOpts(node, "127.0.0.1:0", opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return node, srv
}

// TestPayloadNegotiation covers the handshake matrix: both sides
// payload-capable delivers verified bytes in v2 frames with the
// offset echo; a declining server downgrades the client to data-less
// v1; a v1 client against a payload server works unchanged.
func TestPayloadNegotiation(t *testing.T) {
	const req = 64 << 10
	cases := []struct {
		name             string
		server, client   bool
		wantNegotiated   bool
		wantPayloadFrame bool
	}{
		{"both", true, true, true, true},
		{"server-declines", false, true, false, false},
		{"v1-client", true, false, false, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, srv := payloadNode(t, 1, 64<<20, 1<<20, ServerOptions{Payload: tc.server})
			c, err := DialOpts(srv.Addr(), ClientOptions{Payload: tc.client})
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()
			if c.Payload() != tc.wantNegotiated {
				t.Fatalf("negotiated payload = %v, want %v", c.Payload(), tc.wantNegotiated)
			}
			check := func(stream int, resp *Response) error {
				hasFrame := resp.Flags&RespPayload != 0
				if hasFrame != tc.wantPayloadFrame {
					t.Errorf("stream %d: payload framing = %v, want %v", stream, hasFrame, tc.wantPayloadFrame)
				}
				if len(resp.Data) != req {
					t.Errorf("stream %d: %d payload bytes, want %d", stream, len(resp.Data), req)
				}
				if tc.wantPayloadFrame {
					for i, got := range resp.Data {
						if want := blockdev.Pattern(0, resp.Offset+int64(i)); got != want {
							t.Fatalf("stream %d offset %d byte %d: got %#x want %#x",
								stream, resp.Offset, i, got, want)
						}
					}
				}
				return nil
			}
			if err := c.RunStreamsFunc(0, 1<<30, 4, 16, req, FlagWantData, check); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBufferHitZeroAllocWithPayload extends the steady-state
// allocation guard across the wire path: serving a request from an
// already-staged buffer, detaching the pooled buffer onto a v2
// payload frame, writing it with the vectored ResponseWriter, and
// releasing it must not allocate. A regression here means the
// zero-copy hand-off grew a per-response allocation (a closure, a
// gather-list rebuild, a header escape).
func TestBufferHitZeroAllocWithPayload(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64<<20, 1<<20)
	cfg.NearSeqWindow = 1 << 20
	// Park the background sweeps so their timer re-arms cannot be
	// charged to the measured loop.
	cfg.GCPeriod = time.Hour
	cfg.EvictIdle = time.Hour
	srv, err := core.NewServer(dev, blockdev.NewRealClock(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const req = 64 << 10
	fw := NewResponseWriter(discardWriter{}, true)
	var frame Response // reused per completion; the closure below owns it
	var failed atomic.Bool
	ch := make(chan struct{}, 1)
	const target = 14 * req
	done := func(r core.Response) {
		frame = Response{
			ID:     1,
			Status: StatusOK,
			Flags:  RespPayload,
			Offset: target,
			Data:   r.Data,
			buf:    r.TakeBuf(),
		}
		if err := fw.WriteResponse(&frame); err != nil {
			failed.Store(true)
		}
		frame.Release()
		ch <- struct{}{}
	}
	// Establish a stream and stage data well past the re-read block.
	for i := 0; i < 16; i++ {
		if err := srv.Submit(core.Request{Disk: 0, Offset: int64(i) * req, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	}

	avg := testing.AllocsPerRun(200, func() {
		if err := srv.Submit(core.Request{Disk: 0, Offset: target, Length: req, Done: done}); err != nil {
			t.Fatal(err)
		}
		<-ch
	})
	if avg != 0 {
		t.Errorf("payload buffer-hit path allocates: %.2f allocs/op, want 0", avg)
	}
	if failed.Load() {
		t.Fatal("ResponseWriter reported an error")
	}
	if st := srv.Stats(); st.BufferHits == 0 {
		t.Fatalf("no buffer hits recorded (stats: %+v) — the measured path was not the hit path", st)
	}
}

// discardWriter is io.Discard without the ReadFrom fast path, so the
// vectored write exercises net.Buffers' plain consume loop.
type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestSlowReaderBackpressure wedges a payload connection's reader and
// checks that staged buffers pinned by the wire stay bounded: the
// response channel plus the socket give a fixed slack, and beyond it
// completions (and therefore staging) must stall rather than check
// out unbounded pool memory. It runs under -race in CI.
func TestSlowReaderBackpressure(t *testing.T) {
	const (
		memory   = 8 << 20
		ra       = int64(256 << 10)
		req      = int64(64 << 10)
		requests = 1024 // 64 MiB if nothing ever pushed back
	)
	node, srv := payloadNode(t, 1, memory, ra, ServerOptions{Payload: true})

	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteHello(conn, Hello{Version: ProtoV2, Feats: FeatPayload}); err != nil {
		t.Fatal(err)
	}
	if h, err := ReadHello(conn); err != nil || h.Feats&FeatPayload == 0 {
		t.Fatalf("handshake: feats=%v err=%v", h.Feats, err)
	}
	// Issue every request up front and then read nothing: the server
	// completes them into the writer, which fills the socket and the
	// response channel and then blocks.
	for i := 0; i < requests; i++ {
		err := WriteRequest(conn, Request{
			ID: uint64(i), Disk: 0, Flags: FlagWantData,
			Offset: int64(i) * req, Length: req,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	// Wait for the pipeline to wedge: the served-byte counter stops
	// advancing once the writer is stuck and the channel is full.
	last, stable := int64(-1), 0
	for stable < 20 {
		time.Sleep(10 * time.Millisecond)
		if n := srv.Stats().BytesRead; n == last {
			stable++
		} else {
			last, stable = n, 0
		}
	}

	// The budget: M of staging, plus the responses the channel (128)
	// and one in-flight write can pin. Each response retains its whole
	// staging buffer (R), but R/req consecutive responses share one,
	// so the wire can hold at most ~(128+1)/(R/req)+1 detached buffers
	// — call it 40·R with generous slack. Unbounded checkout would
	// blow past this on its way to 64 MiB.
	const budget = memory + 40*ra
	if peak := node.Pool().Stats().PeakBytesOut; peak > budget {
		t.Fatalf("slow reader pinned %d pooled bytes (budget %d): wire backpressure is not bounding checkouts", peak, budget)
	}

	// Release the wedge by killing the connection: the writer's write
	// fails, it drains the channel releasing every queued response
	// exactly once, and the only remaining checkouts are the staged
	// buffers the scheduler itself still owns.
	conn.Close()
	waitWireReleased(t, node)
}

// waitWireReleased polls until every wire-held buffer reference is
// dropped: pool checkouts equal the scheduler's live staged buffers.
// A leak keeps checkouts above; a double release drives them below
// (the pool absorbs it, but the counters diverge) — either way the
// equality never settles and the test fails.
func waitWireReleased(t *testing.T, node *core.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		out := node.Pool().Stats().CheckedOut
		live := node.Stats().LiveBuffers
		if out == live {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool CheckedOut = %d but LiveBuffers = %d: wire path leaked or double-released", out, live)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMidWriteDisconnectReleasesOnce kills a payload client while
// responses are queued and mid-write, then checks the server released
// every in-flight staged buffer exactly once: the writer releases the
// response it was writing, and its drain loop releases everything
// still buffered in the channel. It runs under -race in CI.
func TestMidWriteDisconnectReleasesOnce(t *testing.T) {
	const req = int64(512 << 10)
	node, srv := payloadNode(t, 1, 64<<20, 1<<20, ServerOptions{Payload: true})

	c, err := DialOpts(srv.Addr(), ClientOptions{Payload: true})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Payload() {
		t.Fatal("payload not negotiated")
	}
	// Fire a burst of large async reads and slam the connection shut
	// after the first few complete, so the writer dies with frames
	// queued behind it.
	var done atomic.Int64
	for i := 0; i < 200; i++ {
		err := c.Go(0, 0, int64(i)*req, req, FlagWantData, func(resp Response, _ time.Duration) {
			resp.Release()
			done.Add(1)
		})
		if err != nil {
			break // connection already torn down mid-burst: fine
		}
	}
	for done.Load() < 5 {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	waitWireReleased(t, node)
	if st := srv.Stats(); st.DroppedResponses == 0 {
		t.Logf("note: no responses were dropped (disconnect landed after the burst drained); counters still prove exactly-once release")
	}
}
