package netserve

import (
	"strings"
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/obs"
)

// TestObsMirrorsServerStats drives sequential streams over the wire
// and checks the metric families against the server's own counters,
// including the request-latency histogram fed by the storage node.
func TestObsMirrorsServerStats(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	reg := obs.NewRegistry()
	no := NewObs(reg)
	if err := no.AttachWindow(reg, blockdev.NewRealClock().Now, time.Minute); err != nil {
		t.Fatal(err)
	}
	srv.SetObs(no)

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RunStreams(0, 1<<30, 4, 16, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	client.Close()

	st := srv.Stats()
	if st.Requests == 0 {
		t.Fatal("no requests counted; workload untested")
	}
	vars := reg.Vars()
	for name, want := range map[string]int64{
		"seqstream_netserve_connections_total": st.Conns,
		"seqstream_netserve_requests_total":    st.Requests,
		"seqstream_netserve_errors_total":      st.Errors,
		"seqstream_netserve_read_bytes_total":  st.BytesRead,
	} {
		if got := vars[name]; got != want {
			t.Errorf("%s = %v, want %d (Stats)", name, got, want)
		}
	}

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "seqstream_netserve_request_latency_seconds_count") {
		t.Error("latency histogram family missing from exposition")
	}
	hist, ok := vars["seqstream_netserve_request_latency_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("histogram var missing: %v", vars)
	}
	if hist["count"] != st.Requests {
		t.Errorf("latency observations = %v, want %d", hist["count"], st.Requests)
	}
	win, ok := vars["seqstream_netserve_request_latency_window_seconds"].(map[string]any)
	if !ok {
		t.Fatalf("windowed latency var missing: %v", vars)
	}
	if win["count"] != st.Requests {
		t.Errorf("windowed observations = %v, want %d", win["count"], st.Requests)
	}
}

// TestObsOpenConnectionsGauge checks the gauge rises with a live
// client and returns to zero once every connection drains.
func TestObsOpenConnectionsGauge(t *testing.T) {
	node := newTestNode(t)
	srv, err := NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	srv.SetObs(NewObs(reg))

	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if err := client.RunStreams(0, 1<<30, 1, 4, 64<<10, 0); err != nil {
		t.Fatalf("RunStreams: %v", err)
	}
	if got := reg.Vars()["seqstream_netserve_open_connections"]; got != int64(1) {
		t.Errorf("open_connections = %v with live client", got)
	}
	client.Close()
	srv.Close() // waits for the handler goroutines to drain
	if got := reg.Vars()["seqstream_netserve_open_connections"]; got != int64(0) {
		t.Errorf("open_connections = %v after close", got)
	}
}
