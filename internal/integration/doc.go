// Package integration hosts end-to-end tests that exercise the whole
// stack together: workload generators driving the stream scheduler
// over the simulated I/O hierarchy, with metrics and tracing attached,
// plus the TCP server over real devices. It exports nothing.
package integration
