package integration

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/disk"
	"seqstream/internal/flight"
	"seqstream/internal/geom"
	"seqstream/internal/health"
	"seqstream/internal/iostack"
	"seqstream/internal/metrics"
	"seqstream/internal/netserve"
	"seqstream/internal/sim"
	"seqstream/internal/trace"
	"seqstream/internal/workload"
)

// TestFullSimStack runs workload -> core -> iostack with metrics and
// tracing and cross-checks every layer's accounting.
func TestFullSimStack(t *testing.T) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.MediumConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(256<<20, 1<<20)
	cfg.Trace = tr
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rec := metrics.NewRecorder()
	gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
		return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}, rec)
	if err != nil {
		t.Fatal(err)
	}

	// 4 streams on each of the 8 disks, 64 requests each.
	const perDisk, requests = 4, 64
	const reqSize = 64 << 10
	for d := 0; d < dev.Disks(); d++ {
		specs := workload.UniformStreams(d*perDisk, d, perDisk, dev.Capacity(d), reqSize, requests)
		if err := gen.Add(specs...); err != nil {
			t.Fatal(err)
		}
	}
	finished := false
	if err := gen.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunWhile(func() bool { return !finished }); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("workload never finished")
	}

	total := int64(dev.Disks() * perDisk * requests)
	wantBytes := total * reqSize

	// Layer 1: workload metrics.
	if rec.TotalRequests() != total {
		t.Errorf("recorder requests = %d, want %d", rec.TotalRequests(), total)
	}
	if rec.TotalBytes() != wantBytes {
		t.Errorf("recorder bytes = %d, want %d", rec.TotalBytes(), wantBytes)
	}
	if rec.AggregateMBps() <= 0 {
		t.Error("no aggregate throughput")
	}

	// Drain in-flight prefetches and GC before cross-checking the
	// fetch-level layers (fetch traces record at completion).
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Layer 2: core scheduler stats.
	st := node.Stats()
	if st.Requests != total {
		t.Errorf("core requests = %d, want %d", st.Requests, total)
	}
	if st.BytesDelivered != wantBytes {
		t.Errorf("core delivered = %d, want %d", st.BytesDelivered, wantBytes)
	}
	if st.StreamsDetected != int64(dev.Disks()*perDisk) {
		t.Errorf("streams detected = %d, want %d", st.StreamsDetected, dev.Disks()*perDisk)
	}
	if st.BufferHits+st.QueuedServed == 0 {
		t.Error("nothing served from staged buffers")
	}

	// Layer 3: trace agrees with stats.
	sum := tr.Summarize()
	if int64(sum.Clients) != total {
		t.Errorf("traced clients = %d, want %d", sum.Clients, total)
	}
	if int64(sum.Fetches) != st.Fetches {
		t.Errorf("traced fetches = %d, stats %d", sum.Fetches, st.Fetches)
	}
	if int64(sum.Directs) != st.DirectReads {
		t.Errorf("traced directs = %d, stats %d", sum.Directs, st.DirectReads)
	}

	// Layer 4: simulated drives actually moved the bytes.
	var media int64
	for d := 0; d < host.NumDisks(); d++ {
		media += host.Disk(d).Stats().BytesMedia
	}
	if media < wantBytes/2 {
		t.Errorf("media bytes = %d, implausibly low vs %d delivered", media, wantBytes)
	}

	// Quiescence after full drain.
	if st := node.Stats(); st.MemoryInUse != 0 || st.LiveBuffers != 0 {
		t.Errorf("staging not drained: %+v", st)
	}
}

// TestSchedulerInsensitivityEndToEnd is the paper's headline assertion
// run through the public workload API rather than the experiment
// harness.
func TestSchedulerInsensitivityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(streams int) float64 {
		eng := sim.NewEngine()
		host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		dev, err := blockdev.NewSimDevice(host)
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewServer(dev, blockdev.NewSimClock(eng),
			core.DefaultConfig(int64(streams)*8<<20, 8<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
			return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
				Done: func(core.Response) { done() }})
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Add(workload.UniformStreams(0, 0, streams, dev.Capacity(0), 64<<10, 256)...); err != nil {
			t.Fatal(err)
		}
		done := false
		if err := gen.Start(func() { done = true }); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunWhile(func() bool { return !done }); err != nil {
			t.Fatal(err)
		}
		return gen.Recorder().WallThroughput() / 1e6
	}
	ten := run(10)
	hundred := run(100)
	if hundred < ten/2 {
		t.Errorf("insensitivity broken: 10 streams %.1f MB/s vs 100 streams %.1f MB/s", ten, hundred)
	}
}

// TestNetworkedNodeEndToEnd drives the TCP protocol against a node over
// a memory device and checks the client-side metrics.
func TestNetworkedNodeEndToEnd(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 500*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewRealClock(), core.DefaultConfig(64<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := netserve.NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := netserve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 1<<30, 8, 64, 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	rec := client.Recorder()
	if rec.TotalRequests() != 8*64 {
		t.Errorf("client requests = %d", rec.TotalRequests())
	}
	lat := rec.MergedLatency()
	if lat.Mean() <= 0 {
		t.Error("no latency recorded")
	}
	nodeStats := node.Stats()
	if nodeStats.StreamsDetected == 0 {
		t.Error("no streams detected over TCP")
	}
	if nodeStats.BufferHits+nodeStats.QueuedServed == 0 {
		t.Error("no staged service over TCP")
	}
}

// TestPipelinedClientsThroughScheduler drives streams with more than
// one outstanding request through the scheduler: pipelined in-order
// requests must still be classified and served from staging.
func TestPipelinedClientsThroughScheduler(t *testing.T) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), core.DefaultConfig(128<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
		return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.UniformStreams(0, 0, 6, dev.Capacity(0), 64<<10, 64)
	for i := range specs {
		specs[i].Outstanding = 4
	}
	if err := gen.Add(specs...); err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := gen.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunWhile(func() bool { return !finished }); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("pipelined workload never finished")
	}
	st := node.Stats()
	if st.StreamsDetected != 6 {
		t.Errorf("StreamsDetected = %d, want 6 (pipelining must not break classification)", st.StreamsDetected)
	}
	if st.BufferHits+st.QueuedServed == 0 {
		t.Error("pipelined streams never hit staging")
	}
	if gen.Recorder().TotalRequests() != 6*64 {
		t.Errorf("TotalRequests = %d", gen.Recorder().TotalRequests())
	}
}

// TestFlightLifecycleAcceptance is the tracing tentpole's acceptance
// run: 64 simulated disks, 512 sequential streams, every stream read
// to the exact end of its disk so the scheduler retires it naturally.
// The flight recorder (one ring per scheduler shard, clocked by the
// simulation) must hold a complete
// classify→enqueue→dispatch→fetch→staged→deliver→retire lifecycle for
// every single stream, and the anomaly detectors must come back clean
// on a healthy run.
func TestFlightLifecycleAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("large simulation")
	}
	const (
		diskCap   = 8 << 20 // shrunk drives: streams must reach the exact end
		reqSize   = 64 << 10
		perDisk   = 8 // 64 disks × 8 = 512 streams
		shards    = 8
		ringSlots = 8192
	)
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.LargeConfig(iostack.Options{
		DiskConfig: func(seed uint64) disk.Config {
			cfg := disk.ProfileWD800JD(seed)
			g := geom.WD800JD()
			g.Capacity = diskCap
			g.Cylinders = 512
			cfg.Geometry = g
			return cfg
		},
	}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	if dev.Disks() != 64 {
		t.Fatalf("disks = %d, want 64", dev.Disks())
	}
	clock := blockdev.NewSimClock(eng)
	rec, err := flight.New(clock.Now, shards, ringSlots)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(1<<30, 1<<20)
	cfg.Shards = shards
	cfg.Flight = rec
	// One classifier region per stream slice: the default 4 MB regions
	// would cap the shrunken 8 MB disks at two stream promotions each.
	cfg.RegionBlocks = 16 // 16 × 64 KB blocks = the 1 MB stream slice
	// Collect finished streams quickly so the post-workload drain stays
	// short in simulated time.
	cfg.BufferTimeout = 2 * time.Second
	cfg.StreamTimeout = 4 * time.Second
	node, err := core.NewServer(dev, clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	dev.SetFlight(rec)

	gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
		return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Stream i on each disk owns the disjoint slice
	// [i·1MB, (i+1)·1MB) — one classifier region each, no two streams
	// merge. The last slice ends at the disk's exact capacity, so that
	// stream retires through maybeRetire; the inner streams go idle at
	// their slice end (the scheduler prefetched past it) and are
	// collected by the GC sweep — both are terminal lifecycle events.
	const slice = diskCap / perDisk
	totalStreams := 0
	for d := 0; d < dev.Disks(); d++ {
		for i := 0; i < perDisk; i++ {
			spec := workload.StreamSpec{
				ID:          d*perDisk + i,
				Disk:        d,
				Start:       int64(i) * slice,
				RequestSize: reqSize,
				Requests:    int(slice / reqSize),
			}
			if err := gen.Add(spec); err != nil {
				t.Fatal(err)
			}
			totalStreams++
		}
	}
	if totalStreams != 512 {
		t.Fatalf("streams = %d, want 512", totalStreams)
	}
	finished := false
	if err := gen.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunWhile(func() bool { return !finished }); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("workload never finished")
	}
	// Drain trailing prefetch completions so final deliver/retire events
	// land before the snapshot.
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	st := node.Stats()
	if st.StreamsDetected != 512 {
		t.Fatalf("StreamsDetected = %d, want 512", st.StreamsDetected)
	}
	if st.StreamsRetired+st.StreamsGCed != 512 {
		t.Fatalf("retired %d + gced %d != 512: streams leaked", st.StreamsRetired, st.StreamsGCed)
	}
	if st.StreamsRetired < int64(dev.Disks()) {
		t.Errorf("StreamsRetired = %d, want >= %d (the capacity-reaching stream on each disk)",
			st.StreamsRetired, dev.Disks())
	}

	tl := flight.Analyze(rec.Snapshot().Merged())
	if got := len(tl.Streams); got != 512 {
		t.Fatalf("flight timeline has %d streams, want 512", got)
	}
	incomplete := 0
	for _, id := range tl.StreamIDs() {
		l := tl.Streams[id]
		if !l.Complete() {
			incomplete++
			if incomplete <= 5 {
				t.Errorf("stream %d (disk %d): incomplete lifecycle, missing %v over %d events",
					id, l.Disk, l.Missing(), len(l.Events))
			}
		}
	}
	if incomplete > 0 {
		t.Fatalf("%d/512 streams lack a complete lifecycle", incomplete)
	}
	// A healthy, fair run must not trip the anomaly detectors.
	if anoms := health.Detect(tl.Events, health.DetectorConfig{}); len(anoms) != 0 {
		for _, a := range anoms {
			t.Errorf("unexpected anomaly: %s: %s", a.Kind, a.Detail)
		}
	}
	// Device-level events rode along on the same rings.
	devReads := 0
	for _, e := range tl.Events {
		if e.Op == flight.OpDevRead {
			devReads++
		}
	}
	if devReads == 0 {
		t.Error("no device-read events recorded via SimDevice.SetFlight")
	}
}
