package integration

import (
	"testing"
	"time"

	"seqstream/internal/blockdev"
	"seqstream/internal/core"
	"seqstream/internal/iostack"
	"seqstream/internal/metrics"
	"seqstream/internal/netserve"
	"seqstream/internal/sim"
	"seqstream/internal/trace"
	"seqstream/internal/workload"
)

// TestFullSimStack runs workload -> core -> iostack with metrics and
// tracing and cross-checks every layer's accounting.
func TestFullSimStack(t *testing.T) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.MediumConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.New(1 << 16)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(256<<20, 1<<20)
	cfg.Trace = tr
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	rec := metrics.NewRecorder()
	gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
		return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}, rec)
	if err != nil {
		t.Fatal(err)
	}

	// 4 streams on each of the 8 disks, 64 requests each.
	const perDisk, requests = 4, 64
	const reqSize = 64 << 10
	for d := 0; d < dev.Disks(); d++ {
		specs := workload.UniformStreams(d*perDisk, d, perDisk, dev.Capacity(d), reqSize, requests)
		if err := gen.Add(specs...); err != nil {
			t.Fatal(err)
		}
	}
	finished := false
	if err := gen.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunWhile(func() bool { return !finished }); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("workload never finished")
	}

	total := int64(dev.Disks() * perDisk * requests)
	wantBytes := total * reqSize

	// Layer 1: workload metrics.
	if rec.TotalRequests() != total {
		t.Errorf("recorder requests = %d, want %d", rec.TotalRequests(), total)
	}
	if rec.TotalBytes() != wantBytes {
		t.Errorf("recorder bytes = %d, want %d", rec.TotalBytes(), wantBytes)
	}
	if rec.AggregateMBps() <= 0 {
		t.Error("no aggregate throughput")
	}

	// Drain in-flight prefetches and GC before cross-checking the
	// fetch-level layers (fetch traces record at completion).
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}

	// Layer 2: core scheduler stats.
	st := node.Stats()
	if st.Requests != total {
		t.Errorf("core requests = %d, want %d", st.Requests, total)
	}
	if st.BytesDelivered != wantBytes {
		t.Errorf("core delivered = %d, want %d", st.BytesDelivered, wantBytes)
	}
	if st.StreamsDetected != int64(dev.Disks()*perDisk) {
		t.Errorf("streams detected = %d, want %d", st.StreamsDetected, dev.Disks()*perDisk)
	}
	if st.BufferHits+st.QueuedServed == 0 {
		t.Error("nothing served from staged buffers")
	}

	// Layer 3: trace agrees with stats.
	sum := tr.Summarize()
	if int64(sum.Clients) != total {
		t.Errorf("traced clients = %d, want %d", sum.Clients, total)
	}
	if int64(sum.Fetches) != st.Fetches {
		t.Errorf("traced fetches = %d, stats %d", sum.Fetches, st.Fetches)
	}
	if int64(sum.Directs) != st.DirectReads {
		t.Errorf("traced directs = %d, stats %d", sum.Directs, st.DirectReads)
	}

	// Layer 4: simulated drives actually moved the bytes.
	var media int64
	for d := 0; d < host.NumDisks(); d++ {
		media += host.Disk(d).Stats().BytesMedia
	}
	if media < wantBytes/2 {
		t.Errorf("media bytes = %d, implausibly low vs %d delivered", media, wantBytes)
	}

	// Quiescence after full drain.
	if st := node.Stats(); st.MemoryInUse != 0 || st.LiveBuffers != 0 {
		t.Errorf("staging not drained: %+v", st)
	}
}

// TestSchedulerInsensitivityEndToEnd is the paper's headline assertion
// run through the public workload API rather than the experiment
// harness.
func TestSchedulerInsensitivityEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation sweep")
	}
	run := func(streams int) float64 {
		eng := sim.NewEngine()
		host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
		if err != nil {
			t.Fatal(err)
		}
		dev, err := blockdev.NewSimDevice(host)
		if err != nil {
			t.Fatal(err)
		}
		node, err := core.NewServer(dev, blockdev.NewSimClock(eng),
			core.DefaultConfig(int64(streams)*8<<20, 8<<20))
		if err != nil {
			t.Fatal(err)
		}
		defer node.Close()
		gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
			return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
				Done: func(core.Response) { done() }})
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := gen.Add(workload.UniformStreams(0, 0, streams, dev.Capacity(0), 64<<10, 256)...); err != nil {
			t.Fatal(err)
		}
		done := false
		if err := gen.Start(func() { done = true }); err != nil {
			t.Fatal(err)
		}
		if err := eng.RunWhile(func() bool { return !done }); err != nil {
			t.Fatal(err)
		}
		return gen.Recorder().WallThroughput() / 1e6
	}
	ten := run(10)
	hundred := run(100)
	if hundred < ten/2 {
		t.Errorf("insensitivity broken: 10 streams %.1f MB/s vs 100 streams %.1f MB/s", ten, hundred)
	}
}

// TestNetworkedNodeEndToEnd drives the TCP protocol against a node over
// a memory device and checks the client-side metrics.
func TestNetworkedNodeEndToEnd(t *testing.T) {
	dev, err := blockdev.NewMemDevice(1, 1<<30, 500*time.Microsecond, false)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewRealClock(), core.DefaultConfig(64<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	srv, err := netserve.NewServer(node, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	client, err := netserve.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if err := client.RunStreams(0, 1<<30, 8, 64, 64<<10, 0); err != nil {
		t.Fatal(err)
	}
	rec := client.Recorder()
	if rec.TotalRequests() != 8*64 {
		t.Errorf("client requests = %d", rec.TotalRequests())
	}
	lat := rec.MergedLatency()
	if lat.Mean() <= 0 {
		t.Error("no latency recorded")
	}
	nodeStats := node.Stats()
	if nodeStats.StreamsDetected == 0 {
		t.Error("no streams detected over TCP")
	}
	if nodeStats.BufferHits+nodeStats.QueuedServed == 0 {
		t.Error("no staged service over TCP")
	}
}

// TestPipelinedClientsThroughScheduler drives streams with more than
// one outstanding request through the scheduler: pipelined in-order
// requests must still be classified and served from staging.
func TestPipelinedClientsThroughScheduler(t *testing.T) {
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	dev, err := blockdev.NewSimDevice(host)
	if err != nil {
		t.Fatal(err)
	}
	node, err := core.NewServer(dev, blockdev.NewSimClock(eng), core.DefaultConfig(128<<20, 1<<20))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	gen, err := workload.NewGenerator(blockdev.NewSimClock(eng), func(disk int, off, length int64, done func()) error {
		return node.Submit(core.Request{Disk: disk, Offset: off, Length: length,
			Done: func(core.Response) { done() }})
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	specs := workload.UniformStreams(0, 0, 6, dev.Capacity(0), 64<<10, 64)
	for i := range specs {
		specs[i].Outstanding = 4
	}
	if err := gen.Add(specs...); err != nil {
		t.Fatal(err)
	}
	finished := false
	if err := gen.Start(func() { finished = true }); err != nil {
		t.Fatal(err)
	}
	if err := eng.RunWhile(func() bool { return !finished }); err != nil {
		t.Fatal(err)
	}
	if !finished {
		t.Fatal("pipelined workload never finished")
	}
	st := node.Stats()
	if st.StreamsDetected != 6 {
		t.Errorf("StreamsDetected = %d, want 6 (pipelining must not break classification)", st.StreamsDetected)
	}
	if st.BufferHits+st.QueuedServed == 0 {
		t.Error("pipelined streams never hit staging")
	}
	if gen.Recorder().TotalRequests() != 6*64 {
		t.Errorf("TotalRequests = %d", gen.Recorder().TotalRequests())
	}
}
