package geom

import (
	"errors"
	"fmt"
	"sort"
)

// Zone is one recording zone: a contiguous byte range with a constant
// media transfer rate. Real drives step the rate down in 15-30 zones
// from the outer to the inner diameter.
type Zone struct {
	// Start is the first byte offset of the zone.
	Start int64
	// Rate is the sustained media rate in bytes/second.
	Rate float64
}

// ZoneTable maps offsets to media rates using an explicit zone list.
type ZoneTable struct {
	zones []Zone
	cap   int64
}

// NewZoneTable validates and builds a table covering [0, capacity).
// Zones must start at 0, be sorted, strictly increasing in Start, and
// have positive, non-increasing rates (outer zones are faster).
func NewZoneTable(capacity int64, zones []Zone) (*ZoneTable, error) {
	if capacity <= 0 {
		return nil, errors.New("geom: capacity must be positive")
	}
	if len(zones) == 0 {
		return nil, errors.New("geom: need at least one zone")
	}
	if zones[0].Start != 0 {
		return nil, errors.New("geom: first zone must start at offset 0")
	}
	for i, z := range zones {
		if z.Rate <= 0 {
			return nil, fmt.Errorf("geom: zone %d rate must be positive", i)
		}
		if z.Start >= capacity {
			return nil, fmt.Errorf("geom: zone %d starts beyond capacity", i)
		}
		if i > 0 {
			if z.Start <= zones[i-1].Start {
				return nil, fmt.Errorf("geom: zone %d not sorted", i)
			}
			if z.Rate > zones[i-1].Rate {
				return nil, fmt.Errorf("geom: zone %d rate increases inward", i)
			}
		}
	}
	out := make([]Zone, len(zones))
	copy(out, zones)
	return &ZoneTable{zones: out, cap: capacity}, nil
}

// Zones returns the number of zones.
func (t *ZoneTable) Zones() int { return len(t.zones) }

// Rate returns the media rate at a byte offset (clamped to the table).
func (t *ZoneTable) Rate(off int64) float64 {
	if off < 0 {
		off = 0
	}
	if off >= t.cap {
		off = t.cap - 1
	}
	i := sort.Search(len(t.zones), func(i int) bool { return t.zones[i].Start > off })
	return t.zones[i-1].Rate
}

// ZoneOf returns the index of the zone containing the offset.
func (t *ZoneTable) ZoneOf(off int64) int {
	if off < 0 {
		off = 0
	}
	if off >= t.cap {
		off = t.cap - 1
	}
	return sort.Search(len(t.zones), func(i int) bool { return t.zones[i].Start > off }) - 1
}

// UniformZones builds an n-zone table whose rates step linearly from
// outer to inner — a convenient stand-in when a drive's real zone map
// is unknown.
func UniformZones(capacity int64, n int, outer, inner float64) ([]Zone, error) {
	if n < 1 {
		return nil, errors.New("geom: need at least one zone")
	}
	if outer <= 0 || inner <= 0 || inner > outer {
		return nil, errors.New("geom: need 0 < inner <= outer")
	}
	zones := make([]Zone, n)
	for i := 0; i < n; i++ {
		frac := 0.0
		if n > 1 {
			frac = float64(i) / float64(n-1)
		}
		zones[i] = Zone{
			Start: capacity * int64(i) / int64(n),
			Rate:  outer + frac*(inner-outer),
		}
	}
	return zones, nil
}
