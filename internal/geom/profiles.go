package geom

import "time"

// WD800JD returns the geometry of the Western Digital Caviar SE
// WD800JD used in the paper's testbed (§5): 80 GB, 7200 RPM, 8.9 ms
// average seek, and a measured application-level sequential throughput
// of 55-60 MB/s. The seek curve end points are chosen so the sqrt
// model's average matches the published 8.9 ms figure:
// avg = min + (8/15)(max-min).
func WD800JD() Config {
	return Config{
		Capacity:       80 * 1000 * 1000 * 1000 / BlockSize * BlockSize,
		RPM:            7200,
		Cylinders:      90000,
		SeekMin:        1500 * time.Microsecond,
		SeekMax:        15380 * time.Microsecond, // min + 8/15*(max-min) = 8.9ms
		MediaRateOuter: 60e6,
		MediaRateInner: 30e6,
	}
}

// Generic1TB returns a larger commodity SATA profile used by the
// large-configuration experiments (the introduction's "more than
// 1 TByte" single-spindle disks).
func Generic1TB() Config {
	return Config{
		Capacity:       1000 * 1000 * 1000 * 1000 / BlockSize * BlockSize,
		RPM:            7200,
		Cylinders:      150000,
		SeekMin:        1200 * time.Microsecond,
		SeekMax:        14500 * time.Microsecond,
		MediaRateOuter: 100e6,
		MediaRateInner: 50e6,
	}
}
