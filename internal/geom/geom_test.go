package geom

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func testConfig() Config { return WD800JD() }

func mustGeom(t *testing.T) *Geometry {
	t.Helper()
	g, err := New(testConfig())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return g
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{"valid", func(c *Config) {}, true},
		{"zero capacity", func(c *Config) { c.Capacity = 0 }, false},
		{"negative capacity", func(c *Config) { c.Capacity = -1 }, false},
		{"unaligned capacity", func(c *Config) { c.Capacity = BlockSize + 1 }, false},
		{"zero rpm", func(c *Config) { c.RPM = 0 }, false},
		{"one cylinder", func(c *Config) { c.Cylinders = 1 }, false},
		{"negative seek", func(c *Config) { c.SeekMin = -1 }, false},
		{"max below min", func(c *Config) { c.SeekMax = c.SeekMin - 1 }, false},
		{"zero outer rate", func(c *Config) { c.MediaRateOuter = 0 }, false},
		{"zero inner rate", func(c *Config) { c.MediaRateInner = 0 }, false},
		{"inner above outer", func(c *Config) { c.MediaRateInner = c.MediaRateOuter * 2 }, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := testConfig()
			tt.mutate(&cfg)
			err := cfg.Validate()
			if (err == nil) != tt.ok {
				t.Errorf("Validate() err = %v, want ok=%v", err, tt.ok)
			}
			if _, err2 := New(cfg); (err2 == nil) != tt.ok {
				t.Errorf("New() err = %v, want ok=%v", err2, tt.ok)
			}
		})
	}
}

func TestRotation(t *testing.T) {
	g := mustGeom(t)
	// 7200 RPM => 8.333 ms per revolution.
	rpm := float64(g.Config().RPM)
	want := time.Duration(float64(time.Minute) / rpm)
	if g.RotationPeriod() != want {
		t.Errorf("RotationPeriod = %v, want %v", g.RotationPeriod(), want)
	}
	if g.AvgRotationalLatency() != want/2 {
		t.Errorf("AvgRotationalLatency = %v, want %v", g.AvgRotationalLatency(), want/2)
	}
}

func TestCylinderOfBounds(t *testing.T) {
	g := mustGeom(t)
	if c := g.CylinderOf(-100); c != 0 {
		t.Errorf("CylinderOf(-100) = %d, want 0", c)
	}
	if c := g.CylinderOf(0); c != 0 {
		t.Errorf("CylinderOf(0) = %d, want 0", c)
	}
	if c := g.CylinderOf(g.Capacity()); c != g.Config().Cylinders-1 {
		t.Errorf("CylinderOf(capacity) = %d, want last", c)
	}
	if c := g.CylinderOf(g.Capacity() * 2); c != g.Config().Cylinders-1 {
		t.Errorf("CylinderOf(beyond) = %d, want last", c)
	}
}

func TestCylinderOfMonotonic(t *testing.T) {
	g := mustGeom(t)
	f := func(a, b uint32) bool {
		oa := int64(a) % g.Capacity()
		ob := int64(b) % g.Capacity()
		if oa > ob {
			oa, ob = ob, oa
		}
		return g.CylinderOf(oa) <= g.CylinderOf(ob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSeekTime(t *testing.T) {
	g := mustGeom(t)
	cfg := g.Config()
	if s := g.SeekTime(100, 100); s != 0 {
		t.Errorf("zero-distance seek = %v, want 0", s)
	}
	one := g.SeekTime(0, 1)
	if one < cfg.SeekMin {
		t.Errorf("one-track seek %v below SeekMin %v", one, cfg.SeekMin)
	}
	full := g.SeekTime(0, cfg.Cylinders-1)
	if full != cfg.SeekMax {
		t.Errorf("full-stroke seek = %v, want %v", full, cfg.SeekMax)
	}
	// Symmetry.
	if g.SeekTime(10, 5000) != g.SeekTime(5000, 10) {
		t.Error("seek not symmetric")
	}
}

func TestSeekTimeMonotonicInDistance(t *testing.T) {
	g := mustGeom(t)
	c := g.Config().Cylinders
	f := func(a, b uint32) bool {
		da := int(a) % c
		db := int(b) % c
		if da > db {
			da, db = db, da
		}
		return g.SeekTime(0, da) <= g.SeekTime(0, db)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAvgSeekTimeMatchesPublishedSpec(t *testing.T) {
	g := mustGeom(t)
	avg := g.AvgSeekTime()
	// The WD800JD datasheet average is 8.9 ms; the profile is tuned to it.
	want := 8900 * time.Microsecond
	diff := avg - want
	if diff < 0 {
		diff = -diff
	}
	if diff > 100*time.Microsecond {
		t.Errorf("AvgSeekTime = %v, want within 0.1ms of %v", avg, want)
	}
}

func TestAvgSeekMatchesEmpiricalMean(t *testing.T) {
	// The closed form 8/15 should match a Monte-Carlo estimate of the
	// sqrt curve over random cylinder pairs.
	g := mustGeom(t)
	c := g.Config().Cylinders
	var sum time.Duration
	const n = 20000
	state := uint64(12345)
	next := func() int {
		state = state*6364136223846793005 + 1442695040888963407
		return int(state>>33) % c
	}
	for i := 0; i < n; i++ {
		sum += g.SeekTime(next(), next())
	}
	mean := float64(sum) / n
	want := float64(g.AvgSeekTime())
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("empirical mean %v vs analytic %v", time.Duration(mean), time.Duration(want))
	}
}

func TestMediaRateInterpolation(t *testing.T) {
	g := mustGeom(t)
	cfg := g.Config()
	if r := g.MediaRate(0); r != cfg.MediaRateOuter {
		t.Errorf("MediaRate(0) = %v, want outer %v", r, cfg.MediaRateOuter)
	}
	if r := g.MediaRate(cfg.Capacity); r != cfg.MediaRateInner {
		t.Errorf("MediaRate(cap) = %v, want inner %v", r, cfg.MediaRateInner)
	}
	mid := g.MediaRate(cfg.Capacity / 2)
	wantMid := (cfg.MediaRateOuter + cfg.MediaRateInner) / 2
	if math.Abs(mid-wantMid)/wantMid > 0.001 {
		t.Errorf("MediaRate(mid) = %v, want %v", mid, wantMid)
	}
	// Clamping.
	if g.MediaRate(-5) != cfg.MediaRateOuter {
		t.Error("negative offset should clamp to outer rate")
	}
	if g.MediaRate(cfg.Capacity*3) != cfg.MediaRateInner {
		t.Error("offset beyond capacity should clamp to inner rate")
	}
}

func TestMediaRateMonotonicDecreasing(t *testing.T) {
	g := mustGeom(t)
	f := func(a, b uint32) bool {
		oa := int64(a) % g.Capacity()
		ob := int64(b) % g.Capacity()
		if oa > ob {
			oa, ob = ob, oa
		}
		return g.MediaRate(oa) >= g.MediaRate(ob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransferTime(t *testing.T) {
	g := mustGeom(t)
	if d := g.TransferTime(0, 0); d != 0 {
		t.Errorf("zero transfer = %v", d)
	}
	if d := g.TransferTime(0, -100); d != 0 {
		t.Errorf("negative transfer = %v", d)
	}
	// 60 MB at 60 MB/s outer rate is ~1 s.
	d := g.TransferTime(0, 60e6)
	if math.Abs(float64(d-time.Second)) > float64(10*time.Millisecond) {
		t.Errorf("TransferTime(60MB) = %v, want ~1s", d)
	}
	// Inner transfers are slower.
	if g.TransferTime(g.Capacity()-1, 1<<20) <= g.TransferTime(0, 1<<20) {
		t.Error("inner-zone transfer should be slower than outer")
	}
}

func TestSeekTimeBytes(t *testing.T) {
	g := mustGeom(t)
	if d := g.SeekTimeBytes(0, 0); d != 0 {
		t.Errorf("same-offset seek = %v", d)
	}
	// Offsets within the same cylinder cost nothing.
	if d := g.SeekTimeBytes(0, 100); d != 0 {
		t.Errorf("same-cylinder seek = %v", d)
	}
	far := g.SeekTimeBytes(0, g.Capacity()-1)
	if far != g.Config().SeekMax {
		t.Errorf("full-span byte seek = %v, want %v", far, g.Config().SeekMax)
	}
}

func TestProfiles(t *testing.T) {
	for _, cfg := range []Config{WD800JD(), Generic1TB()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("profile invalid: %v", err)
		}
	}
	if WD800JD().Capacity >= Generic1TB().Capacity {
		t.Error("1TB profile should exceed 80GB profile")
	}
}
