package geom

import (
	"testing"
	"testing/quick"
)

func TestNewZoneTableValidation(t *testing.T) {
	ok := []Zone{{Start: 0, Rate: 60e6}, {Start: 500, Rate: 40e6}}
	if _, err := NewZoneTable(1000, ok); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	bad := []struct {
		name  string
		cap   int64
		zones []Zone
	}{
		{"zero capacity", 0, ok},
		{"empty", 1000, nil},
		{"nonzero first start", 1000, []Zone{{Start: 10, Rate: 1}}},
		{"zero rate", 1000, []Zone{{Start: 0, Rate: 0}}},
		{"start beyond capacity", 1000, []Zone{{Start: 0, Rate: 2}, {Start: 1000, Rate: 1}}},
		{"unsorted", 1000, []Zone{{Start: 0, Rate: 3}, {Start: 500, Rate: 2}, {Start: 400, Rate: 1}}},
		{"rate increases inward", 1000, []Zone{{Start: 0, Rate: 1}, {Start: 500, Rate: 2}}},
	}
	for _, tt := range bad {
		if _, err := NewZoneTable(tt.cap, tt.zones); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
}

func TestZoneTableLookup(t *testing.T) {
	zt, err := NewZoneTable(1000, []Zone{
		{Start: 0, Rate: 60},
		{Start: 400, Rate: 50},
		{Start: 800, Rate: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		off  int64
		rate float64
		zone int
	}{
		{0, 60, 0}, {399, 60, 0}, {400, 50, 1}, {799, 50, 1}, {800, 40, 2}, {999, 40, 2},
		{-5, 60, 0}, {5000, 40, 2}, // clamped
	}
	for _, c := range cases {
		if got := zt.Rate(c.off); got != c.rate {
			t.Errorf("Rate(%d) = %v, want %v", c.off, got, c.rate)
		}
		if got := zt.ZoneOf(c.off); got != c.zone {
			t.Errorf("ZoneOf(%d) = %d, want %d", c.off, got, c.zone)
		}
	}
	if zt.Zones() != 3 {
		t.Errorf("Zones = %d", zt.Zones())
	}
}

func TestUniformZones(t *testing.T) {
	zones, err := UniformZones(1000, 4, 60, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(zones) != 4 || zones[0].Start != 0 || zones[0].Rate != 60 || zones[3].Rate != 30 {
		t.Errorf("zones = %+v", zones)
	}
	if _, err := UniformZones(1000, 0, 60, 30); err == nil {
		t.Error("zero zones accepted")
	}
	if _, err := UniformZones(1000, 4, 30, 60); err == nil {
		t.Error("inner > outer accepted")
	}
	if _, err := UniformZones(1000, 1, 60, 60); err != nil {
		t.Errorf("single zone rejected: %v", err)
	}
}

func TestGeometryWithZoneTable(t *testing.T) {
	cfg := WD800JD()
	zones, err := UniformZones(cfg.Capacity, 16, cfg.MediaRateOuter, cfg.MediaRateInner)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Zones = zones
	g, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g.ZoneCount() != 16 {
		t.Errorf("ZoneCount = %d", g.ZoneCount())
	}
	if got := g.MediaRate(0); got != cfg.MediaRateOuter {
		t.Errorf("outer rate = %v", got)
	}
	if got := g.MediaRate(cfg.Capacity - 1); got != cfg.MediaRateInner {
		t.Errorf("inner rate = %v", got)
	}
	// Stepped: two offsets within one zone share a rate.
	zoneWidth := cfg.Capacity / 16
	if g.MediaRate(10) != g.MediaRate(zoneWidth-512) {
		t.Error("rate varies within a zone")
	}
	// Bad zone config propagates from New.
	cfg.Zones = []Zone{{Start: 5, Rate: 1}}
	if _, err := New(cfg); err == nil {
		t.Error("invalid zone table accepted by New")
	}
}

func TestZoneRateMonotonicProperty(t *testing.T) {
	zones, err := UniformZones(1<<30, 20, 100e6, 50e6)
	if err != nil {
		t.Fatal(err)
	}
	zt, err := NewZoneTable(1<<30, zones)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint32) bool {
		oa, ob := int64(a), int64(b)
		if oa > ob {
			oa, ob = ob, oa
		}
		return zt.Rate(oa) >= zt.Rate(ob)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
