// Package geom models the mechanical geometry of a disk drive: zoned
// logical-to-physical mapping, seek-time curves, rotational latency, and
// per-zone media transfer rates.
//
// The model follows the structure used by workload-driven disk
// simulators (Ruemmler & Wilkes, "An Introduction to Disk Drive
// Modeling"): seek time is a settle-dominated curve in sqrt(distance),
// media rate decreases linearly from the outer to the inner zone, and
// rotational latency is drawn uniformly from one revolution.
package geom

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// BlockSize is the fixed logical block size in bytes.
const BlockSize = 512

// Config describes the mechanical parameters of a drive.
type Config struct {
	// Capacity is the usable size in bytes. Must be a multiple of
	// BlockSize.
	Capacity int64
	// RPM is the spindle speed in revolutions per minute.
	RPM int
	// Cylinders is the number of seek positions.
	Cylinders int
	// SeekMin is a single-track seek (dominated by head settle).
	SeekMin time.Duration
	// SeekMax is a full-stroke seek.
	SeekMax time.Duration
	// MediaRateOuter is the sustained media transfer rate, in bytes per
	// second, at the outermost zone (LBA 0).
	MediaRateOuter float64
	// MediaRateInner is the rate at the innermost zone.
	MediaRateInner float64
	// Zones, when non-empty, replaces the linear outer→inner
	// interpolation with an explicit zone table (validated by New).
	Zones []Zone
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	switch {
	case c.Capacity <= 0:
		return errors.New("geom: capacity must be positive")
	case c.Capacity%BlockSize != 0:
		return fmt.Errorf("geom: capacity %d not a multiple of block size %d", c.Capacity, BlockSize)
	case c.RPM <= 0:
		return errors.New("geom: rpm must be positive")
	case c.Cylinders <= 1:
		return errors.New("geom: need at least 2 cylinders")
	case c.SeekMin < 0 || c.SeekMax < c.SeekMin:
		return errors.New("geom: seek times must satisfy 0 <= min <= max")
	case c.MediaRateOuter <= 0 || c.MediaRateInner <= 0:
		return errors.New("geom: media rates must be positive")
	case c.MediaRateInner > c.MediaRateOuter:
		return errors.New("geom: inner media rate exceeds outer rate")
	}
	return nil
}

// Geometry provides derived timing queries for a validated Config.
type Geometry struct {
	cfg            Config
	bytesPerCyl    float64
	rotationPeriod time.Duration
	zones          *ZoneTable // nil for linear interpolation
}

// New builds a Geometry from a config.
func New(cfg Config) (*Geometry, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	g := &Geometry{
		cfg:            cfg,
		bytesPerCyl:    float64(cfg.Capacity) / float64(cfg.Cylinders),
		rotationPeriod: time.Duration(float64(time.Minute) / float64(cfg.RPM)),
	}
	if len(cfg.Zones) > 0 {
		zt, err := NewZoneTable(cfg.Capacity, cfg.Zones)
		if err != nil {
			return nil, err
		}
		g.zones = zt
	}
	return g, nil
}

// Config returns the configuration the geometry was built from.
func (g *Geometry) Config() Config { return g.cfg }

// Capacity returns the usable size in bytes.
func (g *Geometry) Capacity() int64 { return g.cfg.Capacity }

// RotationPeriod returns the time of one full revolution.
func (g *Geometry) RotationPeriod() time.Duration { return g.rotationPeriod }

// AvgRotationalLatency is half a revolution, the expected wait for a
// random target sector.
func (g *Geometry) AvgRotationalLatency() time.Duration { return g.rotationPeriod / 2 }

// CylinderOf maps a byte offset to its cylinder.
func (g *Geometry) CylinderOf(offset int64) int {
	if offset < 0 {
		return 0
	}
	if offset >= g.cfg.Capacity {
		return g.cfg.Cylinders - 1
	}
	return int(float64(offset) / g.bytesPerCyl)
}

// SeekTime returns the head-movement time between two cylinders using a
// sqrt-distance curve: t = min + (max-min) * sqrt(d / (C-1)).
// A zero-distance seek costs nothing.
func (g *Geometry) SeekTime(fromCyl, toCyl int) time.Duration {
	d := fromCyl - toCyl
	if d < 0 {
		d = -d
	}
	if d == 0 {
		return 0
	}
	frac := math.Sqrt(float64(d) / float64(g.cfg.Cylinders-1))
	return g.cfg.SeekMin + time.Duration(frac*float64(g.cfg.SeekMax-g.cfg.SeekMin))
}

// SeekTimeBytes is SeekTime applied to byte offsets.
func (g *Geometry) SeekTimeBytes(fromOff, toOff int64) time.Duration {
	return g.SeekTime(g.CylinderOf(fromOff), g.CylinderOf(toOff))
}

// AvgSeekTime returns the expected seek time between two independently
// uniform positions. For the sqrt curve the expected value of
// sqrt(d/C) over uniform pairs is 8/15 ≈ 0.533 (E[sqrt(|X-Y|)] with
// X, Y uniform on [0,1] equals 8/15).
func (g *Geometry) AvgSeekTime() time.Duration {
	const expectedSqrtDist = 8.0 / 15.0
	return g.cfg.SeekMin + time.Duration(expectedSqrtDist*float64(g.cfg.SeekMax-g.cfg.SeekMin))
}

// MediaRate returns the sustained media transfer rate, in bytes per
// second, at the given byte offset: the zone table's rate when one is
// configured, else a linear interpolation between the outer and inner
// rates.
func (g *Geometry) MediaRate(offset int64) float64 {
	if g.zones != nil {
		return g.zones.Rate(offset)
	}
	if offset < 0 {
		offset = 0
	}
	if offset > g.cfg.Capacity {
		offset = g.cfg.Capacity
	}
	frac := float64(offset) / float64(g.cfg.Capacity)
	return g.cfg.MediaRateOuter + frac*(g.cfg.MediaRateInner-g.cfg.MediaRateOuter)
}

// ZoneCount returns the number of explicit zones (0 when the linear
// model is in use).
func (g *Geometry) ZoneCount() int {
	if g.zones == nil {
		return 0
	}
	return g.zones.Zones()
}

// TransferTime returns the media time to read or write n bytes starting
// at offset, using the rate at the start of the transfer.
func (g *Geometry) TransferTime(offset int64, n int64) time.Duration {
	if n <= 0 {
		return 0
	}
	rate := g.MediaRate(offset)
	return time.Duration(float64(n) / rate * float64(time.Second))
}
