package flight

import (
	"sync"
	"testing"
	"time"
)

// testClock returns a deterministic monotonic clock.
func testClock() func() time.Duration {
	var mu sync.Mutex
	var t time.Duration
	return func() time.Duration {
		mu.Lock()
		defer mu.Unlock()
		t += time.Microsecond
		return t
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, 1, 0); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(testClock(), 0, 0); err == nil {
		t.Fatal("zero rings accepted")
	}
	rec, err := New(testClock(), 3, 100)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Rings() != 3 {
		t.Fatalf("Rings() = %d, want 3", rec.Rings())
	}
	// perRing rounds up to a power of two.
	if got := len(rec.Ring(0).slots); got != 128 {
		t.Fatalf("ring size = %d, want 128", got)
	}
	rec, err = New(testClock(), 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rec.Ring(0).slots); got != DefaultRingEvents {
		t.Fatalf("default ring size = %d, want %d", got, DefaultRingEvents)
	}
}

func TestRecordRoundTrip(t *testing.T) {
	rec, err := New(testClock(), 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	in := Event{
		Trace:  42,
		Op:     OpStaged,
		Err:    ErrIO,
		Disk:   7,
		Stream: 123,
		Offset: 1 << 40,
		Length: 1 << 20,
		T:      5 * time.Millisecond,
		Dur:    time.Millisecond,
	}
	rec.Ring(1).Record(in)
	snap := rec.Snapshot()
	if len(snap.Rings) != 2 || len(snap.Rings[1]) != 1 {
		t.Fatalf("snapshot shape: %d rings, ring1 has %d events", len(snap.Rings), len(snap.Rings[1]))
	}
	got := snap.Rings[1][0]
	if got.Seq == 0 {
		t.Fatal("Seq was not stamped")
	}
	if got.Shard != 1 {
		t.Fatalf("Shard = %d, want 1", got.Shard)
	}
	in.Seq, in.Shard = got.Seq, got.Shard
	if got != in {
		t.Fatalf("round trip:\n got %+v\nwant %+v", got, in)
	}
}

func TestNegativeFieldsSurvivePacking(t *testing.T) {
	rec, err := New(testClock(), 1, 16)
	if err != nil {
		t.Fatal(err)
	}
	rec.Ring(0).Record(Event{Op: OpEvict, Stream: NoStream, Offset: -1, T: time.Second})
	got := rec.Snapshot().Rings[0][0]
	if got.Stream != NoStream {
		t.Fatalf("Stream = %d, want %d", got.Stream, NoStream)
	}
	if got.Offset != -1 {
		t.Fatalf("Offset = %d, want -1", got.Offset)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	rec, err := New(testClock(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	r := rec.Ring(0)
	for i := 0; i < 20; i++ {
		r.Record(Event{Op: OpFetch, Offset: int64(i)})
	}
	events := rec.Snapshot().Rings[0]
	if len(events) != 8 {
		t.Fatalf("got %d events after wrap, want 8", len(events))
	}
	for i, e := range events {
		if e.Offset != int64(12+i) {
			t.Fatalf("event %d has offset %d, want %d (oldest overwritten first)", i, e.Offset, 12+i)
		}
		if i > 0 && events[i-1].Seq >= e.Seq {
			t.Fatal("snapshot not Seq-ordered")
		}
	}
}

func TestNilReceivers(t *testing.T) {
	var rec *Recorder
	if rec.Now() != 0 || rec.NextTrace() != 0 || rec.Rings() != 0 {
		t.Fatal("nil recorder accessors not zero")
	}
	if rec.Ring(3) != nil || rec.RingFor(9) != nil {
		t.Fatal("nil recorder returned a ring")
	}
	rec.Ring(0).Record(Event{Op: OpFetch}) // must not panic
	snap := rec.Snapshot()
	if snap == nil || len(snap.Rings) != 0 {
		t.Fatal("nil recorder snapshot not empty")
	}
}

func TestRingRouting(t *testing.T) {
	rec, err := New(testClock(), 4, 8)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ring(0) != rec.Ring(4) || rec.RingFor(6) != rec.Ring(2) {
		t.Fatal("ring modulo routing broken")
	}
	if rec.Ring(-3) == nil {
		t.Fatal("negative index panicked past the guard")
	}
}

func TestNextTraceNonZero(t *testing.T) {
	rec, err := New(testClock(), 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	for i := 0; i < 100; i++ {
		id := rec.NextTrace()
		if id == 0 {
			t.Fatal("NextTrace returned the reserved zero id")
		}
		if seen[id] {
			t.Fatalf("NextTrace repeated id %d", id)
		}
		seen[id] = true
	}
}

func TestConcurrentRecordAndSnapshot(t *testing.T) {
	rec, err := New(testClock(), 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	const writers = 8
	const perWriter = 500
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshotter
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				snap := rec.Snapshot()
				for _, ring := range snap.Rings {
					for i := 1; i < len(ring); i++ {
						if ring[i-1].Seq >= ring[i].Seq {
							t.Error("snapshot out of order")
							return
						}
					}
				}
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rec.Ring(w)
			for i := 0; i < perWriter; i++ {
				r.Record(Event{Op: OpFetch, Disk: uint16(w), Offset: int64(i)})
			}
		}(w)
	}
	// Wait for writers, then stop the snapshotter.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	close(stop)
	<-done

	// Final snapshot: every surviving slot must be a whole event.
	total := 0
	for _, ring := range rec.Snapshot().Rings {
		total += len(ring)
		for _, e := range ring {
			if e.Op != OpFetch {
				t.Fatalf("torn event leaked: %+v", e)
			}
		}
	}
	if total != 2*64 {
		t.Fatalf("full rings hold %d events, want %d", total, 2*64)
	}
}

func TestRecordZeroAllocs(t *testing.T) {
	rec, err := New(func() time.Duration { return 0 }, 1, 1024)
	if err != nil {
		t.Fatal(err)
	}
	r := rec.Ring(0)
	e := Event{Trace: 1, Op: OpDeliver, Disk: 3, Stream: 9, Offset: 4096, Length: 512, T: time.Second}
	allocs := testing.AllocsPerRun(1000, func() { r.Record(e) })
	if allocs != 0 {
		t.Fatalf("Record allocates %.1f/op, want 0", allocs)
	}
}

func TestOpAndErrNames(t *testing.T) {
	for op := OpIngress; op < opSentinel; op++ {
		if op.String() == "unknown" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if opSentinel.String() != "unknown" || OpNone.String() != "unknown" {
		t.Fatal("sentinel/none ops should be unknown")
	}
	for _, code := range []uint8{ErrIO, ErrTimeout, ErrDegraded} {
		if ErrName(code) == "" || ErrName(code) == "err?" {
			t.Fatalf("err code %d has no name", code)
		}
	}
	if ErrName(ErrNone) != "" {
		t.Fatal("ErrNone should render empty")
	}
	if ErrName(200) != "err?" {
		t.Fatal("unknown err code should render err?")
	}
}
