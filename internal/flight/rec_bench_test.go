package flight

import (
	"testing"
	"time"
)

func BenchmarkRecord(b *testing.B) {
	rec, _ := New(func() time.Duration { return 0 }, 1, 4096)
	r := rec.Ring(0)
	e := Event{Trace: 1, Op: OpDeliver, Disk: 3, Stream: 9, Offset: 4096, Length: 512, T: time.Second}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Record(e)
	}
}
