package flight

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
)

// Snapshot is one consistent-enough copy of every ring: per-ring event
// slices, each ordered by Seq. "Consistent enough" because the rings
// keep recording while the snapshot walks them — each slot is either a
// whole event or skipped, never torn.
type Snapshot struct {
	Version int       `json:"version"`
	Rings   [][]Event `json:"rings"`
}

// snapshotVersion is the binary format version.
const snapshotVersion = 1

// Snapshot copies every ring. Nil recorders yield an empty snapshot.
func (r *Recorder) Snapshot() *Snapshot {
	s := &Snapshot{Version: snapshotVersion}
	if r == nil {
		return s
	}
	s.Rings = make([][]Event, len(r.rings))
	for i, ring := range r.rings {
		s.Rings[i] = ring.snapshot()
	}
	return s
}

// Merged merges the shard rings into one global timeline ordered by
// the recorder-wide sequence.
func (s *Snapshot) Merged() []Event {
	total := 0
	for _, r := range s.Rings {
		total += len(r)
	}
	out := make([]Event, 0, total)
	for _, r := range s.Rings {
		out = append(out, r...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Binary snapshot format (little endian):
//
//	magic   [4]byte "SQFL"
//	version uint16
//	rings   uint16
//	per ring:
//	  count uint32
//	  count × 56-byte packed events (the 7 slot words)
//
// The shard index is the ring's position; it is not stored per event.

// snapshotMagic guards the binary format.
const snapshotMagic = "SQFL"

// WriteTo encodes the snapshot in the binary format.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var hdr [8]byte
	copy(hdr[:4], snapshotMagic)
	binary.LittleEndian.PutUint16(hdr[4:], uint16(snapshotVersion))
	binary.LittleEndian.PutUint16(hdr[6:], uint16(len(s.Rings)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return n, err
	}
	n += int64(len(hdr))
	var rec [8 * wordsPerEvent]byte
	for _, ring := range s.Rings {
		var cnt [4]byte
		binary.LittleEndian.PutUint32(cnt[:], uint32(len(ring)))
		if _, err := bw.Write(cnt[:]); err != nil {
			return n, err
		}
		n += 4
		for i := range ring {
			var w [wordsPerEvent]uint64
			ring[i].pack(&w)
			for k, v := range w {
				binary.LittleEndian.PutUint64(rec[k*8:], v)
			}
			if _, err := bw.Write(rec[:]); err != nil {
				return n, err
			}
			n += int64(len(rec))
		}
	}
	return n, bw.Flush()
}

// ErrBadSnapshot reports a malformed snapshot input.
var ErrBadSnapshot = errors.New("flight: bad snapshot")

// maxSnapshotRingEvents bounds a decoded ring so a corrupt count field
// cannot drive a giant allocation.
const maxSnapshotRingEvents = 1 << 24

// ReadSnapshot decodes a snapshot in either format, sniffing the first
// byte: '{' selects JSON (the /debug/flight?format=json output),
// anything else the binary format.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	br := bufio.NewReader(r)
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadSnapshot, err)
	}
	if first[0] == '{' {
		var s Snapshot
		if err := json.NewDecoder(br).Decode(&s); err != nil {
			return nil, fmt.Errorf("%w: json: %v", ErrBadSnapshot, err)
		}
		return &s, nil
	}
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadSnapshot, err)
	}
	if string(hdr[:4]) != snapshotMagic {
		return nil, fmt.Errorf("%w: magic %q", ErrBadSnapshot, hdr[:4])
	}
	if v := binary.LittleEndian.Uint16(hdr[4:]); v != snapshotVersion {
		return nil, fmt.Errorf("%w: version %d (want %d)", ErrBadSnapshot, v, snapshotVersion)
	}
	rings := int(binary.LittleEndian.Uint16(hdr[6:]))
	s := &Snapshot{Version: snapshotVersion, Rings: make([][]Event, rings)}
	var rec [8 * wordsPerEvent]byte
	for i := 0; i < rings; i++ {
		var cnt [4]byte
		if _, err := io.ReadFull(br, cnt[:]); err != nil {
			return nil, fmt.Errorf("%w: ring %d count: %v", ErrBadSnapshot, i, err)
		}
		n := binary.LittleEndian.Uint32(cnt[:])
		if n > maxSnapshotRingEvents {
			return nil, fmt.Errorf("%w: ring %d claims %d events", ErrBadSnapshot, i, n)
		}
		events := make([]Event, 0, n)
		for j := uint32(0); j < n; j++ {
			if _, err := io.ReadFull(br, rec[:]); err != nil {
				return nil, fmt.Errorf("%w: ring %d event %d: %v", ErrBadSnapshot, i, j, err)
			}
			var w [wordsPerEvent]uint64
			for k := range w {
				w[k] = binary.LittleEndian.Uint64(rec[k*8:])
			}
			events = append(events, unpack(&w, uint16(i)))
		}
		s.Rings[i] = events
	}
	return s, nil
}

// Handler serves the recorder's snapshot: the binary format by
// default (Content-Type application/octet-stream), JSON with
// ?format=json. Mount it at /debug/flight.
func Handler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		snap := rec.Snapshot()
		if r.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/json; charset=utf-8")
			enc := json.NewEncoder(w)
			_ = enc.Encode(snap)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = snap.WriteTo(w)
	})
}
