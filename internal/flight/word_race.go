//go:build race

package flight

import "sync/atomic"

// word is one slot payload cell. Under the race detector every access
// is atomic, so the seqlock protocol itself is what gets verified —
// the fast build (word_fast.go) uses plain cells guarded by the
// marker double-check instead.
type word struct{ v atomic.Uint64 }

func (w *word) load() uint64   { return w.v.Load() }
func (w *word) store(v uint64) { w.v.Store(v) }
