//go:build !race

package flight

// word is one slot payload cell. In normal builds it is a plain
// uint64: the per-slot seqlock marker (always atomic) brackets every
// write, and the snapshot re-checks the marker after reading, so a
// torn or concurrent read is detected and discarded rather than
// prevented. This shaves the full-barrier cost of seven atomic stores
// off every Record — the difference between a recorder the scheduler
// can keep enabled and one it cannot.
//
// Race builds (word_race.go) swap in atomic cells so `go test -race`
// verifies the surrounding protocol without flagging the seqlock's
// intentional benign race.
type word uint64

func (w *word) load() uint64   { return uint64(*w) }
func (w *word) store(v uint64) { *w = word(v) }
