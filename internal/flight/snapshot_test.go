package flight

import (
	"bytes"
	"encoding/binary"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// populate records a spread of events across the recorder's rings.
func populate(t *testing.T) *Recorder {
	t.Helper()
	rec, err := New(testClock(), 3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rec.RingFor(i).Record(Event{
			Trace:  uint64(i + 1),
			Op:     Op(1 + i%int(opSentinel-1)),
			Disk:   uint16(i),
			Stream: int32(i % 4),
			Offset: int64(i) * 4096,
			Length: 4096,
			T:      time.Duration(i) * time.Millisecond,
			Dur:    time.Duration(i%3) * time.Millisecond,
		})
	}
	return rec
}

func snapshotsEqual(a, b *Snapshot) bool {
	if len(a.Rings) != len(b.Rings) {
		return false
	}
	for i := range a.Rings {
		if len(a.Rings[i]) != len(b.Rings[i]) {
			return false
		}
		for j := range a.Rings[i] {
			if a.Rings[i][j] != b.Rings[i][j] {
				return false
			}
		}
	}
	return true
}

func TestBinaryRoundTrip(t *testing.T) {
	snap := populate(t).Snapshot()
	var buf bytes.Buffer
	if _, err := snap.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != snapshotVersion {
		t.Fatalf("version %d, want %d", got.Version, snapshotVersion)
	}
	if !snapshotsEqual(snap, got) {
		t.Fatalf("binary round trip mismatch:\n got %+v\nwant %+v", got.Rings, snap.Rings)
	}
}

func TestJSONRoundTripViaHandler(t *testing.T) {
	rec := populate(t)
	snap := rec.Snapshot()
	h := Handler(rec)

	// JSON format.
	rr := httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight?format=json", nil))
	if ct := rr.Header().Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("json content type %q", ct)
	}
	got, err := ReadSnapshot(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(snap, got) {
		t.Fatal("json round trip mismatch")
	}

	// Binary format (the default).
	rr = httptest.NewRecorder()
	h.ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/octet-stream" {
		t.Fatalf("binary content type %q", ct)
	}
	got, err = ReadSnapshot(rr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !snapshotsEqual(snap, got) {
		t.Fatal("binary handler round trip mismatch")
	}
}

func TestMergedOrder(t *testing.T) {
	snap := populate(t).Snapshot()
	merged := snap.Merged()
	n := 0
	for _, r := range snap.Rings {
		n += len(r)
	}
	if len(merged) != n {
		t.Fatalf("merged %d events, rings hold %d", len(merged), n)
	}
	for i := 1; i < len(merged); i++ {
		if merged[i-1].Seq >= merged[i].Seq {
			t.Fatal("merged timeline not Seq-ordered")
		}
	}
}

func TestReadSnapshotMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    []byte("NOPE\x01\x00\x01\x00"),
		"bad version":  []byte("SQFL\xff\x00\x01\x00"),
		"short header": []byte("SQ"),
		"truncated":    nil, // built below
		"bad json":     []byte("{not json"),
		"giant ring":   nil, // built below
		"short count":  []byte("SQFL\x01\x00\x01\x00\x02"),
		"short event":  nil, // built below
	}
	// A valid header claiming one ring with one event, then nothing.
	trunc := []byte("SQFL\x01\x00\x01\x00")
	trunc = append(trunc, 1, 0, 0, 0)
	cases["truncated"] = trunc
	// One ring claiming an absurd event count.
	giant := []byte("SQFL\x01\x00\x01\x00")
	var cnt [4]byte
	binary.LittleEndian.PutUint32(cnt[:], maxSnapshotRingEvents+1)
	giant = append(giant, cnt[:]...)
	cases["giant ring"] = giant
	// One ring, one event, but only half the record bytes.
	short := []byte("SQFL\x01\x00\x01\x00")
	short = append(short, 1, 0, 0, 0)
	short = append(short, make([]byte, 20)...)
	cases["short event"] = short

	for name, in := range cases {
		if _, err := ReadSnapshot(bytes.NewReader(in)); !errors.Is(err, ErrBadSnapshot) {
			t.Errorf("%s: error = %v, want ErrBadSnapshot", name, err)
		}
	}
}

func TestReadSnapshotEmptyRecorder(t *testing.T) {
	rec, err := New(testClock(), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := rec.Snapshot().WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rings) != 2 || len(got.Rings[0]) != 0 || len(got.Rings[1]) != 0 {
		t.Fatalf("empty recorder decoded as %+v", got.Rings)
	}
}
