package flight

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// seqEvents stamps ascending Seq values so hand-built timelines order
// the way recorded ones do.
func seqEvents(events []Event) []Event {
	for i := range events {
		events[i].Seq = uint64(i + 1)
	}
	return events
}

// completeStream returns the full lifecycle chain for one stream.
func completeStream(id int32, disk uint16) []Event {
	return []Event{
		{Op: OpClassify, Stream: id, Disk: disk},
		{Op: OpEnqueue, Stream: id, Disk: disk},
		{Op: OpDispatch, Stream: id, Disk: disk},
		{Op: OpFetch, Stream: id, Disk: disk, Length: 1 << 20},
		{Op: OpStaged, Stream: id, Disk: disk, Length: 1 << 20, Dur: time.Millisecond},
		{Op: OpDeliver, Stream: id, Disk: disk, Length: 4096},
		{Op: OpRetire, Stream: id, Disk: disk},
	}
}

func TestAnalyzeLifecycles(t *testing.T) {
	events := append(completeStream(1, 0), completeStream(2, 3)...)
	// Stream 3 never dispatches and has no terminal.
	events = append(events,
		Event{Op: OpClassify, Stream: 3, Disk: 5},
		Event{Op: OpEnqueue, Stream: 3, Disk: 5},
	)
	// Unattributed events must not create streams.
	events = append(events, Event{Op: OpIngress, Stream: NoStream, Disk: 1, Trace: 7})
	tl := Analyze(seqEvents(events))

	if got := tl.StreamIDs(); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("StreamIDs = %v", got)
	}
	for _, id := range []int32{1, 2} {
		l := tl.Streams[id]
		if !l.Complete() {
			t.Fatalf("stream %d incomplete, missing %v", id, l.Missing())
		}
		if l.Terminal() != OpRetire {
			t.Fatalf("stream %d terminal = %v", id, l.Terminal())
		}
	}
	l := tl.Streams[3]
	if l.Complete() {
		t.Fatal("stream 3 should be incomplete")
	}
	if l.Terminal() != OpNone {
		t.Fatalf("stream 3 terminal = %v, want none", l.Terminal())
	}
	missing := l.Missing()
	want := map[Op]bool{OpDispatch: true, OpFetch: true, OpStaged: true, OpDeliver: true, OpRetire: true}
	if len(missing) != len(want) {
		t.Fatalf("stream 3 missing %v", missing)
	}
	for _, op := range missing {
		if !want[op] {
			t.Fatalf("stream 3 unexpectedly missing %v", op)
		}
	}
	if tl.Streams[2].Disk != 3 {
		t.Fatalf("stream 2 disk = %d", tl.Streams[2].Disk)
	}
}

func TestWriteChromeTrace(t *testing.T) {
	events := seqEvents([]Event{
		{Op: OpIngress, Stream: NoStream, Disk: 2, Trace: 5, T: time.Millisecond},
		{Op: OpStaged, Stream: 7, Disk: 2, Shard: 1, T: 3 * time.Millisecond, Dur: 2 * time.Millisecond, Err: ErrIO},
	})
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, events); err != nil {
		t.Fatal(err)
	}
	var out []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, buf.String())
	}
	if len(out) != 2 {
		t.Fatalf("got %d records, want 2", len(out))
	}
	if out[0]["ph"] != "i" || out[0]["name"] != "ingress" {
		t.Fatalf("instant record = %v", out[0])
	}
	if tid := out[0]["tid"].(float64); tid != float64(chromeDiskTidBase+2) {
		t.Fatalf("unattributed tid = %v", tid)
	}
	if out[1]["ph"] != "X" {
		t.Fatalf("span record = %v", out[1])
	}
	if ts := out[1]["ts"].(float64); ts != 1000 { // (3ms - 2ms) in µs
		t.Fatalf("span ts = %v, want 1000", ts)
	}
	if dur := out[1]["dur"].(float64); dur != 2000 {
		t.Fatalf("span dur = %v, want 2000", dur)
	}
	args := out[1]["args"].(map[string]any)
	if args["err"] != "io" {
		t.Fatalf("span args = %v", args)
	}
	if out[1]["pid"].(float64) != 1 || out[1]["tid"].(float64) != 7 {
		t.Fatalf("span rows = pid %v tid %v", out[1]["pid"], out[1]["tid"])
	}
}

func TestWriteChromeTraceEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out []any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil || len(out) != 0 {
		t.Fatalf("empty trace: %v %v", out, err)
	}
}
