// Package flight is the storage node's always-on flight recorder: a
// fixed-memory, lock-free ring of compact binary trace events per
// scheduler shard. Every layer of the request path — netserve ingress,
// the core scheduler, the simulated controller, and the device
// completions — stamps its events with the trace context allocated at
// ingress, so an offline analyzer (cmd/tracetool) can reconstruct each
// stream's full lifecycle from one snapshot.
//
// The recorder is built to sit on the scheduler's hot path:
//
//   - Recording is wait-free and allocation-free. A writer claims a
//     slot with one atomic cursor increment and publishes the event
//     through a per-slot seqlock (an odd marker while the words are
//     being stored, an even generation-stamped marker when complete).
//   - Every slot word is accessed atomically, so recording stays clean
//     under the race detector with concurrent writers and snapshots.
//   - Memory is fixed at construction: rings overwrite their oldest
//     events, and a snapshot simply skips slots that were mid-write.
//
// A torn slot is possible only when a writer stalls for a full ring
// lap while another laps it — the snapshot detects the marker mismatch
// and drops the slot, trading one lost event for a lock-free hot path.
package flight

import (
	"errors"
	"sort"
	"sync/atomic"
	"time"
)

// NoStream marks events not attributed to a classified stream.
const NoStream int32 = -1

// DefaultRingEvents is the per-shard ring capacity used when a caller
// passes zero: 4096 events × 64 B ≈ 256 KiB per shard.
const DefaultRingEvents = 4096

// Op identifies what happened. The values are part of the snapshot
// wire format; append only.
type Op uint8

// Ops, roughly in the order a traced request meets them.
const (
	OpNone Op = iota
	// OpIngress: netserve accepted a request and allocated (or adopted)
	// its trace context.
	OpIngress
	// OpRespond: netserve handed the response to the connection writer.
	OpRespond
	// OpSubmit: the core scheduler accepted the request at its shard.
	OpSubmit
	// OpFastFail: an open circuit breaker failed the request fast.
	OpFastFail
	// OpClassify: the classifier detected a new sequential stream.
	OpClassify
	// OpEnqueue: a stream (re-)entered the candidate queue.
	OpEnqueue
	// OpDispatch: a stream was admitted to the dispatch set.
	OpDispatch
	// OpFetch: a read-ahead disk request was issued.
	OpFetch
	// OpStaged: a fetch completed into the buffered set.
	OpStaged
	// OpFetchErr: a fetch failed terminally.
	OpFetchErr
	// OpRetry: a transiently-failed fetch was re-issued.
	OpRetry
	// OpTimeout: a fetch hit the FetchTimeout deadline.
	OpTimeout
	// OpDeliver: a client request was served from staged memory.
	OpDeliver
	// OpDirect: a direct-path (non-sequential) read completed.
	OpDirect
	// OpEvict: a staged buffer was reclaimed under memory pressure.
	OpEvict
	// OpRotate: a stream rotated out of the dispatch set.
	OpRotate
	// OpGC: an idle stream was collected.
	OpGC
	// OpRetire: a stream consumed its disk to the end.
	OpRetire
	// OpBreakerOpen: a per-disk circuit opened.
	OpBreakerOpen
	// OpBreakerClose: a per-disk circuit closed.
	OpBreakerClose
	// OpCtrlSubmit: the simulated controller accepted a disk request.
	OpCtrlSubmit
	// OpCtrlDone: the simulated controller completed a disk request.
	OpCtrlDone
	// OpDevRead: a device read completed (blockdev layer).
	OpDevRead
	// OpSpeculate: an in-flight fetch outlived its disk's latency
	// quantile and was re-issued on a replica. Disk is the slow disk
	// the original leg was reading; Dur is how long that leg had been
	// outstanding when the duplicate was armed.
	OpSpeculate
	// OpSpecWin: the speculative leg completed first and delivered the
	// fetch. Disk is the winning replica; Dur is the speculative leg's
	// latency.
	OpSpecWin
	// OpReap: a shard's completion reaper drained a batch of device
	// completions under one lock hold. Length is the batch size; only
	// batches of two or more are recorded — the event exists to show
	// amortization actually happening, and a per-completion record
	// would double the ring traffic for no information.
	OpReap
	// OpSLOLate: a delivery blew past its SLO deadline but landed
	// within the miss boundary. Dur is the lateness (time past the
	// deadline), not the request latency.
	OpSLOLate
	// OpSLOMiss: a delivery missed its SLO outright — either it landed
	// beyond LateFactor times the deadline or the request failed. Dur
	// is the lateness; Err carries the failure class when one applied.
	OpSLOMiss

	opSentinel // keep last
)

// String implements fmt.Stringer. It is switch-based rather than
// table-based so the package holds no package-level state.
func (o Op) String() string {
	switch o {
	case OpIngress:
		return "ingress"
	case OpRespond:
		return "respond"
	case OpSubmit:
		return "submit"
	case OpFastFail:
		return "fastfail"
	case OpClassify:
		return "classify"
	case OpEnqueue:
		return "enqueue"
	case OpDispatch:
		return "dispatch"
	case OpFetch:
		return "fetch"
	case OpStaged:
		return "staged"
	case OpFetchErr:
		return "fetcherr"
	case OpRetry:
		return "retry"
	case OpTimeout:
		return "timeout"
	case OpDeliver:
		return "deliver"
	case OpDirect:
		return "direct"
	case OpEvict:
		return "evict"
	case OpRotate:
		return "rotate"
	case OpGC:
		return "gc"
	case OpRetire:
		return "retire"
	case OpBreakerOpen:
		return "breaker_open"
	case OpBreakerClose:
		return "breaker_close"
	case OpCtrlSubmit:
		return "ctrl_submit"
	case OpCtrlDone:
		return "ctrl_done"
	case OpDevRead:
		return "dev_read"
	case OpSpeculate:
		return "speculate"
	case OpSpecWin:
		return "spec_win"
	case OpReap:
		return "reap"
	case OpSLOLate:
		return "slo_late"
	case OpSLOMiss:
		return "slo_miss"
	default:
		return "unknown"
	}
}

// Error codes carried in Event.Err.
const (
	ErrNone uint8 = iota
	// ErrIO: the device (or a lower layer) reported a read error.
	ErrIO
	// ErrTimeout: the fetch deadline fired.
	ErrTimeout
	// ErrDegraded: an open circuit breaker rejected the request.
	ErrDegraded
)

// ErrName renders an Event.Err code.
func ErrName(code uint8) string {
	switch code {
	case ErrNone:
		return ""
	case ErrIO:
		return "io"
	case ErrTimeout:
		return "timeout"
	case ErrDegraded:
		return "degraded"
	default:
		return "err?"
	}
}

// Event is one recorded trace event. Seq is a recorder-unique merge
// key (slot claim × ring count + shard): it orders a ring's events by
// claim and interleaves the rings deterministically even when
// virtual-time runs stamp many events with the same instant. It is
// derived from the seqlock generation at snapshot time — recording
// never touches recorder-global state.
type Event struct {
	Seq    uint64        `json:"seq"`
	Trace  uint64        `json:"trace,omitempty"` // 0 = not client-attributed
	Op     Op            `json:"op"`
	Err    uint8         `json:"err,omitempty"`
	Shard  uint16        `json:"shard"` // ring the event was recorded on
	Disk   uint16        `json:"disk"`
	Stream int32         `json:"stream"` // NoStream when not attributed
	Offset int64         `json:"offset"`
	Length int64         `json:"length,omitempty"`
	T      time.Duration `json:"t"`             // event (completion) time
	Dur    time.Duration `json:"dur,omitempty"` // span duration, 0 for instants
}

// wordsPerEvent is the packed wire size of one event in snapshot
// files. The shard index is implicit in the ring and not packed; Seq
// is included so files round-trip exactly.
const wordsPerEvent = 7

// pack flattens an event into its snapshot wire words.
func (e *Event) pack(w *[wordsPerEvent]uint64) {
	w[0] = e.Seq
	w[1] = e.Trace
	w[2] = uint64(e.Op) | uint64(e.Err)<<8 | uint64(e.Disk)<<16 | uint64(uint32(e.Stream))<<32
	w[3] = uint64(e.Offset)
	w[4] = uint64(e.Length)
	w[5] = uint64(e.T)
	w[6] = uint64(e.Dur)
}

// unpack rebuilds an event from wire words recorded on ring shard.
func unpack(w *[wordsPerEvent]uint64, shard uint16) Event {
	return Event{
		Seq:    w[0],
		Trace:  w[1],
		Op:     Op(w[2] & 0xff),
		Err:    uint8(w[2] >> 8),
		Disk:   uint16(w[2] >> 16),
		Stream: int32(uint32(w[2] >> 32)),
		Shard:  shard,
		Offset: int64(w[3]),
		Length: int64(w[4]),
		T:      time.Duration(w[5]),
		Dur:    time.Duration(w[6]),
	}
}

// slotWords is the in-memory slot payload: the wire words minus Seq,
// which the snapshot derives from the slot's claim generation.
const slotWords = wordsPerEvent - 1

// slot is one seqlock-protected event cell. marker is 0 when the slot
// was never written, 2c+1 while claim c's words are being stored, and
// 2c+2 once claim c is published — so a snapshot can both detect
// in-progress writes and verify the words it read all belong to one
// claim generation. The payload cells are `word`s: plain memory in
// fast builds (the marker double-check discards torn reads), atomic
// under -race.
type slot struct {
	marker atomic.Uint64
	w      [slotWords]word
}

// Ring is one shard's event ring. All methods are safe for concurrent
// use and safe on a nil receiver (recording into a nil ring is a
// no-op), so call sites need no recorder guards.
type Ring struct {
	rec   *Recorder
	shard uint16
	// stride is the recorder's ring count: Seq = claim×stride+shard+1
	// is unique across the recorder and ascending within the ring.
	stride uint64

	cursor atomic.Uint64
	// Pad the cursor onto its own cache line: each shard hammers its
	// own ring's cursor, and rings are allocated independently.
	_ [56]byte

	mask  uint64
	slots []slot
}

// Record claims the next slot and publishes e (e.Seq is ignored; the
// snapshot derives it from the claim). It never blocks, never
// allocates, touches no recorder-global state, and is safe from any
// goroutine.
func (r *Ring) Record(e Event) {
	if r == nil {
		return
	}
	c := r.cursor.Add(1) - 1
	s := &r.slots[c&r.mask]
	s.marker.Store(2*c + 1)
	s.w[0].store(e.Trace)
	s.w[1].store(uint64(e.Op) | uint64(e.Err)<<8 | uint64(e.Disk)<<16 | uint64(uint32(e.Stream))<<32)
	s.w[2].store(uint64(e.Offset))
	s.w[3].store(uint64(e.Length))
	s.w[4].store(uint64(e.T))
	s.w[5].store(uint64(e.Dur))
	s.marker.Store(2*c + 2)
}

// snapshot copies the ring's consistent slots, ordered by Seq. Torn
// slots (a writer mid-publish, or lapped during the read) are skipped.
func (r *Ring) snapshot() []Event {
	out := make([]Event, 0, len(r.slots))
	for i := range r.slots {
		s := &r.slots[i]
		m := s.marker.Load()
		if m == 0 || m&1 == 1 {
			continue // never written, or a write is in progress
		}
		var w [slotWords]uint64
		for k := range w {
			w[k] = s.w[k].load()
		}
		if s.marker.Load() != m {
			continue // lapped mid-read: the words span two claims
		}
		claim := m/2 - 1
		out = append(out, Event{
			Seq:    claim*r.stride + uint64(r.shard) + 1,
			Trace:  w[0],
			Op:     Op(w[1] & 0xff),
			Err:    uint8(w[1] >> 8),
			Disk:   uint16(w[1] >> 16),
			Stream: int32(uint32(w[1] >> 32)),
			Shard:  r.shard,
			Offset: int64(w[2]),
			Length: int64(w[3]),
			T:      time.Duration(w[4]),
			Dur:    time.Duration(w[5]),
		})
	}
	// Ring order is claim order except across the wrap point, so the
	// slice is two already-sorted runs; stdlib sort keeps it obvious.
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Recorder owns the per-shard rings and the trace-id allocator. The
// zero of every counter is reserved: trace id 0 means "untraced" and
// seq starts at 1.
type Recorder struct {
	now   func() time.Duration
	tid   atomic.Uint64
	rings []*Ring
}

// New builds a recorder with `rings` rings of perRing events each
// (perRing is rounded up to a power of two; zero uses
// DefaultRingEvents). now supplies timestamps for layers without their
// own clock — a simulation clock's Now or a real clock's.
func New(now func() time.Duration, rings, perRing int) (*Recorder, error) {
	if now == nil {
		return nil, errors.New("flight: nil clock")
	}
	if rings <= 0 {
		return nil, errors.New("flight: ring count must be positive")
	}
	if perRing <= 0 {
		perRing = DefaultRingEvents
	}
	size := 1
	for size < perRing {
		size <<= 1
	}
	r := &Recorder{now: now, rings: make([]*Ring, rings)}
	for i := range r.rings {
		r.rings[i] = &Ring{
			rec:    r,
			shard:  uint16(i),
			stride: uint64(rings),
			mask:   uint64(size - 1),
			slots:  make([]slot, size),
		}
	}
	return r, nil
}

// Now reads the recorder's clock, for layers that have none of their
// own. Zero on a nil recorder.
func (r *Recorder) Now() time.Duration {
	if r == nil {
		return 0
	}
	return r.now()
}

// NextTrace allocates a fresh nonzero trace id (netserve ingress calls
// this when a client did not supply one). Zero on a nil recorder.
func (r *Recorder) NextTrace() uint64 {
	if r == nil {
		return 0
	}
	return r.tid.Add(1)
}

// Rings returns the ring count, 0 on a nil recorder.
func (r *Recorder) Rings() int {
	if r == nil {
		return 0
	}
	return len(r.rings)
}

// Ring returns ring i (modulo the ring count), nil on a nil recorder —
// so a shard can cache its ring once and record unconditionally.
func (r *Recorder) Ring(i int) *Ring {
	if r == nil {
		return nil
	}
	if i < 0 {
		i = -i
	}
	return r.rings[i%len(r.rings)]
}

// RingFor routes a disk to a ring with the same modulo the core uses
// to route disks to shards, so disk-level events land beside their
// shard's scheduling events whenever the ring and shard counts match.
func (r *Recorder) RingFor(disk int) *Ring { return r.Ring(disk) }
