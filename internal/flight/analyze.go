package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"time"
)

// Timeline is the analyzed form of a merged snapshot: the global
// event order plus per-stream lifecycles. Build it with Analyze.
type Timeline struct {
	// Events is the merged, Seq-ordered global timeline.
	Events []Event
	// Streams maps stream id → lifecycle, for every stream that
	// appears in the events.
	Streams map[int32]*Lifecycle
}

// Lifecycle is everything one stream did, in global order.
type Lifecycle struct {
	Stream int32
	Disk   uint16
	Events []Event
	// Ops counts events per op.
	Ops map[Op]int
}

// lifecycleChain is the op sequence a complete stream lifecycle must
// contain: classify→enqueue→dispatch→fetch→staged→deliver plus a
// terminal op (retire or gc).
func lifecycleChain() []Op {
	return []Op{OpClassify, OpEnqueue, OpDispatch, OpFetch, OpStaged, OpDeliver}
}

// Terminal returns the stream's terminal op (OpRetire or OpGC), or
// OpNone while the stream was still live at snapshot time.
func (l *Lifecycle) Terminal() Op {
	for i := len(l.Events) - 1; i >= 0; i-- {
		switch l.Events[i].Op {
		case OpRetire, OpGC:
			return l.Events[i].Op
		}
	}
	return OpNone
}

// Complete reports whether the lifecycle contains the whole
// classify→…→deliver chain and a terminal event.
func (l *Lifecycle) Complete() bool {
	for _, op := range lifecycleChain() {
		if l.Ops[op] == 0 {
			return false
		}
	}
	return l.Terminal() != OpNone
}

// Missing lists the chain ops (and the terminal) the lifecycle lacks,
// for diagnostics.
func (l *Lifecycle) Missing() []Op {
	var out []Op
	for _, op := range lifecycleChain() {
		if l.Ops[op] == 0 {
			out = append(out, op)
		}
	}
	if l.Terminal() == OpNone {
		out = append(out, OpRetire)
	}
	return out
}

// Analyze merges, orders, and groups events into per-stream
// lifecycles. The input may be a Snapshot.Merged() slice or any event
// list; it is re-sorted by Seq.
func Analyze(events []Event) *Timeline {
	t := &Timeline{
		Events:  append([]Event(nil), events...),
		Streams: make(map[int32]*Lifecycle),
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	for _, e := range t.Events {
		if e.Stream == NoStream {
			continue
		}
		l := t.Streams[e.Stream]
		if l == nil {
			l = &Lifecycle{Stream: e.Stream, Disk: e.Disk, Ops: make(map[Op]int)}
			t.Streams[e.Stream] = l
		}
		l.Events = append(l.Events, e)
		l.Ops[e.Op]++
	}
	return t
}

// StreamIDs returns the analyzed stream ids, sorted.
func (t *Timeline) StreamIDs() []int32 {
	ids := make([]int32, 0, len(t.Streams))
	for id := range t.Streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// --- anomaly detectors ---------------------------------------------

// Anomaly is one detector finding.
type Anomaly struct {
	// Kind is the detector: "rotation-starvation", "m-pressure",
	// "breaker-flap", or "straggler-fetch".
	Kind string `json:"kind"`
	// Stream is the affected stream, NoStream for node/disk findings.
	Stream int32 `json:"stream"`
	// Disk is the affected disk, -1 for node-wide findings.
	Disk int `json:"disk"`
	// Detail is a human-readable description with the numbers.
	Detail string `json:"detail"`
}

// DetectorConfig tunes the anomaly thresholds. The zero value gets
// ApplyDefaults'd by Detect.
type DetectorConfig struct {
	// StarveRotations flags a stream that waited in the candidate
	// queue while at least this many rotations happened node-wide
	// (default 64): the §4.2 round-robin should have reached it.
	StarveRotations int
	// StragglerFactor flags a disk whose median fetch latency exceeds
	// this multiple of its shard's median (default 3.0).
	StragglerFactor float64
	// StragglerMinFetches is the minimum per-disk sample size before a
	// disk can be flagged (default 8).
	StragglerMinFetches int
	// EvictChurnRatio flags M-invariant pressure when evicted bytes
	// exceed this fraction of fetched bytes (default 0.10): staged data
	// is being reclaimed before its stream consumes it.
	EvictChurnRatio float64
	// FlapOpens flags a disk whose breaker opened at least this many
	// times in the snapshot (default 2: open→close→open is a flap).
	FlapOpens int
}

// ApplyDefaults fills zero fields.
func (c *DetectorConfig) ApplyDefaults() {
	if c.StarveRotations == 0 {
		c.StarveRotations = 64
	}
	if c.StragglerFactor == 0 {
		c.StragglerFactor = 3.0
	}
	if c.StragglerMinFetches == 0 {
		c.StragglerMinFetches = 8
	}
	if c.EvictChurnRatio == 0 {
		c.EvictChurnRatio = 0.10
	}
	if c.FlapOpens == 0 {
		c.FlapOpens = 2
	}
}

// Detect runs all four detectors over the timeline.
func (t *Timeline) Detect(cfg DetectorConfig) []Anomaly {
	cfg.ApplyDefaults()
	var out []Anomaly
	out = append(out, t.detectStarvation(cfg)...)
	out = append(out, t.detectMPressure(cfg)...)
	out = append(out, t.detectBreakerFlaps(cfg)...)
	out = append(out, t.detectStragglers(cfg)...)
	return out
}

// detectStarvation flags streams that sat in the candidate queue
// (enqueue → next dispatch, or enqueue → end of snapshot) while the
// node rotated other streams at least StarveRotations times.
func (t *Timeline) detectStarvation(cfg DetectorConfig) []Anomaly {
	// Seq positions of every rotation, ascending (Events is sorted).
	var rotations []uint64
	for _, e := range t.Events {
		if e.Op == OpRotate {
			rotations = append(rotations, e.Seq)
		}
	}
	countBetween := func(lo, hi uint64) int {
		a := sort.Search(len(rotations), func(i int) bool { return rotations[i] > lo })
		b := sort.Search(len(rotations), func(i int) bool { return rotations[i] >= hi })
		if b < a {
			return 0
		}
		return b - a
	}
	var end uint64
	if len(t.Events) > 0 {
		end = t.Events[len(t.Events)-1].Seq + 1
	}
	var out []Anomaly
	for _, id := range t.StreamIDs() {
		l := t.Streams[id]
		waitFrom := uint64(0)
		waiting := false
		worst, worstSince := 0, uint64(0)
		note := func(hi uint64) {
			if n := countBetween(waitFrom, hi); n > worst {
				worst, worstSince = n, waitFrom
			}
		}
		for _, e := range l.Events {
			switch e.Op {
			case OpEnqueue:
				if !waiting {
					waiting, waitFrom = true, e.Seq
				}
			case OpDispatch, OpGC, OpRetire:
				if waiting {
					note(e.Seq)
					waiting = false
				}
			}
		}
		if waiting {
			note(end)
		}
		if worst >= cfg.StarveRotations {
			out = append(out, Anomaly{
				Kind:   "rotation-starvation",
				Stream: id,
				Disk:   int(l.Disk),
				Detail: fmt.Sprintf("stream %d waited through %d rotations (threshold %d) after seq %d",
					id, worst, cfg.StarveRotations, worstSince),
			})
		}
	}
	return out
}

// detectMPressure flags eviction churn: staged bytes reclaimed under
// pressure before their streams consumed them, a sign the workload is
// running at (or past) the M-invariant's edge.
func (t *Timeline) detectMPressure(cfg DetectorConfig) []Anomaly {
	var fetched, evicted int64
	var evicts int
	for _, e := range t.Events {
		switch e.Op {
		case OpFetch:
			fetched += e.Length
		case OpEvict:
			evicted += e.Length
			evicts++
		}
	}
	if fetched == 0 || evicts == 0 {
		return nil
	}
	ratio := float64(evicted) / float64(fetched)
	if ratio < cfg.EvictChurnRatio {
		return nil
	}
	return []Anomaly{{
		Kind:   "m-pressure",
		Stream: NoStream,
		Disk:   -1,
		Detail: fmt.Sprintf("%d evictions reclaimed %d of %d fetched bytes (%.1f%%, threshold %.1f%%): staging memory M is under pressure",
			evicts, evicted, fetched, ratio*100, cfg.EvictChurnRatio*100),
	}}
}

// detectBreakerFlaps flags disks whose circuit opened repeatedly.
func (t *Timeline) detectBreakerFlaps(cfg DetectorConfig) []Anomaly {
	opens := make(map[uint16]int)
	for _, e := range t.Events {
		if e.Op == OpBreakerOpen {
			opens[e.Disk]++
		}
	}
	disks := make([]uint16, 0, len(opens))
	for d := range opens {
		disks = append(disks, d)
	}
	sort.Slice(disks, func(i, j int) bool { return disks[i] < disks[j] })
	var out []Anomaly
	for _, d := range disks {
		if opens[d] >= cfg.FlapOpens {
			out = append(out, Anomaly{
				Kind:   "breaker-flap",
				Stream: NoStream,
				Disk:   int(d),
				Detail: fmt.Sprintf("disk %d's circuit opened %d times (threshold %d)", d, opens[d], cfg.FlapOpens),
			})
		}
	}
	return out
}

// detectStragglers flags disks whose median fetch latency is an
// outlier against their shard's median fetch latency.
func (t *Timeline) detectStragglers(cfg DetectorConfig) []Anomaly {
	byDisk := make(map[uint16][]time.Duration)
	byShard := make(map[uint16][]time.Duration)
	shardOf := make(map[uint16]uint16)
	for _, e := range t.Events {
		if e.Op != OpStaged || e.Dur <= 0 {
			continue
		}
		byDisk[e.Disk] = append(byDisk[e.Disk], e.Dur)
		byShard[e.Shard] = append(byShard[e.Shard], e.Dur)
		shardOf[e.Disk] = e.Shard
	}
	disks := make([]uint16, 0, len(byDisk))
	for d := range byDisk {
		disks = append(disks, d)
	}
	sort.Slice(disks, func(i, j int) bool { return disks[i] < disks[j] })
	var out []Anomaly
	for _, d := range disks {
		lats := byDisk[d]
		if len(lats) < cfg.StragglerMinFetches {
			continue
		}
		shard := shardOf[d]
		base := median(byShard[shard])
		if base <= 0 {
			continue
		}
		m := median(lats)
		if float64(m) >= cfg.StragglerFactor*float64(base) {
			out = append(out, Anomaly{
				Kind:   "straggler-fetch",
				Stream: NoStream,
				Disk:   int(d),
				Detail: fmt.Sprintf("disk %d's median fetch latency %v is %.1fx shard %d's median %v (threshold %.1fx, %d fetches)",
					d, m, float64(m)/float64(base), shard, base, cfg.StragglerFactor, len(lats)),
			})
		}
	}
	return out
}

// median returns the middle element of an unsorted latency sample
// (the sample is sorted in place).
func median(d []time.Duration) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	return d[len(d)/2]
}

// --- chrome trace export -------------------------------------------

// chromeEvent is one chrome://tracing trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDiskTidBase offsets disk-attributed rows away from stream ids
// in the chrome trace's tid space.
const chromeDiskTidBase = 1 << 20

// WriteChromeTrace renders events as a Chrome trace_event JSON array
// for chrome://tracing (or Perfetto). Events with a duration become
// complete ("X") spans ending at T; the rest become instants. Rows are
// grouped by shard (pid) and stream (tid); unattributed events row
// under their disk.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for i, e := range events {
		tid := int64(e.Stream)
		if e.Stream == NoStream {
			tid = chromeDiskTidBase + int64(e.Disk)
		}
		ce := chromeEvent{
			Name: e.Op.String(),
			Pid:  int(e.Shard),
			Tid:  tid,
			Args: map[string]any{
				"seq":    e.Seq,
				"disk":   e.Disk,
				"offset": e.Offset,
				"length": e.Length,
			},
		}
		if e.Trace != 0 {
			ce.Args["trace"] = e.Trace
		}
		if e.Err != ErrNone {
			ce.Args["err"] = ErrName(e.Err)
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Ts = float64(e.T-e.Dur) / float64(time.Microsecond)
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		} else {
			ce.Ph = "i"
			ce.Ts = float64(e.T) / float64(time.Microsecond)
			ce.S = "t"
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := enc.Encode(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
