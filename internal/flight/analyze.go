package flight

import (
	"encoding/json"
	"io"
	"sort"
	"time"
)

// Timeline is the analyzed form of a merged snapshot: the global
// event order plus per-stream lifecycles. Build it with Analyze.
type Timeline struct {
	// Events is the merged, Seq-ordered global timeline.
	Events []Event
	// Streams maps stream id → lifecycle, for every stream that
	// appears in the events.
	Streams map[int32]*Lifecycle
}

// Lifecycle is everything one stream did, in global order.
type Lifecycle struct {
	Stream int32
	Disk   uint16
	Events []Event
	// Ops counts events per op.
	Ops map[Op]int
}

// lifecycleChain is the op sequence a complete stream lifecycle must
// contain: classify→enqueue→dispatch→fetch→staged→deliver plus a
// terminal op (retire or gc).
func lifecycleChain() []Op {
	return []Op{OpClassify, OpEnqueue, OpDispatch, OpFetch, OpStaged, OpDeliver}
}

// Terminal returns the stream's terminal op (OpRetire or OpGC), or
// OpNone while the stream was still live at snapshot time.
func (l *Lifecycle) Terminal() Op {
	for i := len(l.Events) - 1; i >= 0; i-- {
		switch l.Events[i].Op {
		case OpRetire, OpGC:
			return l.Events[i].Op
		}
	}
	return OpNone
}

// Complete reports whether the lifecycle contains the whole
// classify→…→deliver chain and a terminal event.
func (l *Lifecycle) Complete() bool {
	for _, op := range lifecycleChain() {
		if l.Ops[op] == 0 {
			return false
		}
	}
	return l.Terminal() != OpNone
}

// Missing lists the chain ops (and the terminal) the lifecycle lacks,
// for diagnostics.
func (l *Lifecycle) Missing() []Op {
	var out []Op
	for _, op := range lifecycleChain() {
		if l.Ops[op] == 0 {
			out = append(out, op)
		}
	}
	if l.Terminal() == OpNone {
		out = append(out, OpRetire)
	}
	return out
}

// Analyze merges, orders, and groups events into per-stream
// lifecycles. The input may be a Snapshot.Merged() slice or any event
// list; it is re-sorted by Seq.
func Analyze(events []Event) *Timeline {
	t := &Timeline{
		Events:  append([]Event(nil), events...),
		Streams: make(map[int32]*Lifecycle),
	}
	sort.Slice(t.Events, func(i, j int) bool { return t.Events[i].Seq < t.Events[j].Seq })
	for _, e := range t.Events {
		if e.Stream == NoStream {
			continue
		}
		l := t.Streams[e.Stream]
		if l == nil {
			l = &Lifecycle{Stream: e.Stream, Disk: e.Disk, Ops: make(map[Op]int)}
			t.Streams[e.Stream] = l
		}
		l.Events = append(l.Events, e)
		l.Ops[e.Op]++
	}
	return t
}

// StreamIDs returns the analyzed stream ids, sorted.
func (t *Timeline) StreamIDs() []int32 {
	ids := make([]int32, 0, len(t.Streams))
	for id := range t.Streams {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// --- chrome trace export -------------------------------------------

// chromeEvent is one chrome://tracing trace_event record.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int64          `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// chromeDiskTidBase offsets disk-attributed rows away from stream ids
// in the chrome trace's tid space.
const chromeDiskTidBase = 1 << 20

// WriteChromeTrace renders events as a Chrome trace_event JSON array
// for chrome://tracing (or Perfetto). Events with a duration become
// complete ("X") spans ending at T; the rest become instants. Rows are
// grouped by shard (pid) and stream (tid); unattributed events row
// under their disk.
func WriteChromeTrace(w io.Writer, events []Event) error {
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	for i, e := range events {
		tid := int64(e.Stream)
		if e.Stream == NoStream {
			tid = chromeDiskTidBase + int64(e.Disk)
		}
		ce := chromeEvent{
			Name: e.Op.String(),
			Pid:  int(e.Shard),
			Tid:  tid,
			Args: map[string]any{
				"seq":    e.Seq,
				"disk":   e.Disk,
				"offset": e.Offset,
				"length": e.Length,
			},
		}
		if e.Trace != 0 {
			ce.Args["trace"] = e.Trace
		}
		if e.Err != ErrNone {
			ce.Args["err"] = ErrName(e.Err)
		}
		if e.Dur > 0 {
			ce.Ph = "X"
			ce.Ts = float64(e.T-e.Dur) / float64(time.Microsecond)
			ce.Dur = float64(e.Dur) / float64(time.Microsecond)
		} else {
			ce.Ph = "i"
			ce.Ts = float64(e.T) / float64(time.Microsecond)
			ce.S = "t"
		}
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if err := enc.Encode(ce); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
