package flight

import "time"

// Cursor is an incremental reader over one ring: it remembers the next
// slot claim to consume and returns only events published since the
// previous poll, so an in-process consumer (the online health engine)
// can tail the recorder continuously without snapshotting or dumping.
//
// A cursor is single-consumer state — one goroutine per cursor — but
// polling is safe against concurrent writers: it reads slots through
// the same marker double-check the snapshot path uses, and when the
// writers lap it (more than a ring of claims since the last poll) it
// skips forward to the oldest still-live claim and accounts the gap in
// Lost.
type Cursor struct {
	ring *Ring
	next uint64 // next claim to read
	lost uint64 // claims skipped: lapped, torn, or overwritten mid-read
}

// NewCursor returns a cursor positioned at the ring's current write
// cursor, so the first Poll returns only events recorded after this
// call. Nil on a nil ring, keeping call sites unconditional.
func (r *Ring) NewCursor() *Cursor {
	if r == nil {
		return nil
	}
	return &Cursor{ring: r, next: r.cursor.Load()}
}

// Lost returns the number of claims the cursor could not deliver
// because the writers lapped it or overwrote a slot mid-read.
func (c *Cursor) Lost() uint64 {
	if c == nil {
		return 0
	}
	return c.lost
}

// Poll appends every event published since the previous poll to buf
// and returns it, in claim (Seq) order for this ring. If a claim in
// range is still being written, Poll stops before it and resumes there
// next time — the writer finishes within a few stores, so at most one
// poll interval of delay. Nil cursors return buf unchanged.
func (c *Cursor) Poll(buf []Event) []Event {
	if c == nil {
		return buf
	}
	r := c.ring
	cur := r.cursor.Load()
	size := uint64(len(r.slots))
	lo := c.next
	if cur > lo+size {
		// Lapped: claims [lo, cur-size) were overwritten before we got
		// to them. Skip to the oldest claim that can still be live.
		c.lost += cur - size - lo
		lo = cur - size
	}
	for k := lo; k < cur; k++ {
		s := &r.slots[k&r.mask]
		m := s.marker.Load()
		want := 2*k + 2
		if m < want {
			// Claim k is not published yet (mid-write, or the writer
			// has claimed but not stamped). Later claims exist but
			// must wait so the cursor stays in order; retry next poll.
			c.next = k
			return buf
		}
		if m > want {
			// A newer claim overwrote the slot before we read it.
			c.lost++
			continue
		}
		var w [slotWords]uint64
		for i := range w {
			w[i] = s.w[i].load()
		}
		if s.marker.Load() != m {
			c.lost++
			continue
		}
		buf = append(buf, Event{
			Seq:    k*r.stride + uint64(r.shard) + 1,
			Trace:  w[0],
			Op:     Op(w[1] & 0xff),
			Err:    uint8(w[1] >> 8),
			Disk:   uint16(w[1] >> 16),
			Stream: int32(uint32(w[1] >> 32)),
			Shard:  r.shard,
			Offset: int64(w[2]),
			Length: int64(w[3]),
			T:      time.Duration(w[4]),
			Dur:    time.Duration(w[5]),
		})
	}
	c.next = cur
	return buf
}
