package flight

import (
	"sync"
	"testing"
	"time"
)

func TestCursorNil(t *testing.T) {
	var r *Ring
	c := r.NewCursor()
	if c != nil {
		t.Fatal("nil ring should yield nil cursor")
	}
	if got := c.Poll(nil); got != nil {
		t.Fatal("nil cursor Poll should return buf unchanged")
	}
	if c.Lost() != 0 {
		t.Fatal("nil cursor Lost should be zero")
	}
}

func TestCursorIncremental(t *testing.T) {
	clock := func() time.Duration { return 0 }
	rec, err := New(clock, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	ring := rec.Ring(0)

	// Events before the cursor exists are not delivered.
	ring.Record(Event{Op: OpSubmit, Stream: 1})
	c := ring.NewCursor()
	if got := c.Poll(nil); len(got) != 0 {
		t.Fatalf("first poll returned %d pre-cursor events", len(got))
	}

	ring.Record(Event{Op: OpEnqueue, Stream: 2})
	ring.Record(Event{Op: OpDispatch, Stream: 2})
	got := c.Poll(nil)
	if len(got) != 2 {
		t.Fatalf("poll returned %d events, want 2", len(got))
	}
	if got[0].Op != OpEnqueue || got[1].Op != OpDispatch {
		t.Fatalf("poll order wrong: %v then %v", got[0].Op, got[1].Op)
	}
	if got[0].Seq >= got[1].Seq {
		t.Fatalf("seqs not ascending: %d then %d", got[0].Seq, got[1].Seq)
	}
	// Seqs must match what a snapshot of the same ring derives.
	snap := ring.snapshot()
	bySeq := make(map[uint64]Op, len(snap))
	for _, e := range snap {
		bySeq[e.Seq] = e.Op
	}
	for _, e := range got {
		if bySeq[e.Seq] != e.Op {
			t.Fatalf("cursor seq %d op %v disagrees with snapshot %v", e.Seq, e.Op, bySeq[e.Seq])
		}
	}

	// Nothing new: empty poll, position retained.
	if again := c.Poll(nil); len(again) != 0 {
		t.Fatalf("idle poll returned %d events", len(again))
	}
	ring.Record(Event{Op: OpRetire, Stream: 2})
	if final := c.Poll(nil); len(final) != 1 || final[0].Op != OpRetire {
		t.Fatalf("follow-up poll = %+v, want one retire", final)
	}
	if c.Lost() != 0 {
		t.Fatalf("lost = %d, want 0", c.Lost())
	}
}

func TestCursorLapped(t *testing.T) {
	clock := func() time.Duration { return 0 }
	rec, err := New(clock, 1, 8) // 8-slot ring
	if err != nil {
		t.Fatal(err)
	}
	ring := rec.Ring(0)
	c := ring.NewCursor()

	// 20 events through an 8-slot ring: the first 12 are gone.
	for i := 0; i < 20; i++ {
		ring.Record(Event{Op: OpDeliver, Stream: int32(i)})
	}
	got := c.Poll(nil)
	if len(got) != 8 {
		t.Fatalf("lapped poll returned %d events, want 8", len(got))
	}
	for i, e := range got {
		if e.Stream != int32(12+i) {
			t.Fatalf("event %d stream = %d, want %d", i, e.Stream, 12+i)
		}
	}
	if c.Lost() != 12 {
		t.Fatalf("lost = %d, want 12", c.Lost())
	}
}

// TestCursorConcurrent tails a ring under concurrent writers and
// checks every delivered event is well-formed and in order; under
// -race this also exercises the seqlock read protocol.
func TestCursorConcurrent(t *testing.T) {
	clock := func() time.Duration { return 0 }
	rec, err := New(clock, 1, 256)
	if err != nil {
		t.Fatal(err)
	}
	ring := rec.Ring(0)
	c := ring.NewCursor()

	const writers, perWriter = 4, 2000
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				ring.Record(Event{Op: OpDeliver, Stream: int32(w), Offset: int64(i)})
			}
		}(w)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var delivered uint64
	var lastSeq uint64
	buf := make([]Event, 0, 256)
	poll := func() {
		buf = c.Poll(buf[:0])
		for _, e := range buf {
			if e.Seq <= lastSeq {
				t.Errorf("seq went backwards: %d after %d", e.Seq, lastSeq)
				return
			}
			lastSeq = e.Seq
			if e.Op != OpDeliver || e.Stream < 0 || e.Stream >= writers {
				t.Errorf("malformed event: %+v", e)
				return
			}
			delivered++
		}
	}
	for {
		select {
		case <-done:
			poll() // drain what remains
			total := delivered + c.Lost()
			if total != writers*perWriter {
				t.Fatalf("delivered %d + lost %d = %d, want %d",
					delivered, c.Lost(), total, writers*perWriter)
			}
			if delivered == 0 {
				t.Fatal("cursor delivered nothing")
			}
			return
		default:
			poll()
		}
	}
}
