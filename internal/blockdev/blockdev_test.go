package blockdev

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"seqstream/internal/iostack"
	"seqstream/internal/sim"
)

func newSimDevice(t *testing.T) (*sim.Engine, *SimDevice) {
	t.Helper()
	eng := sim.NewEngine()
	host, err := iostack.New(eng, iostack.BaseConfig(iostack.Options{}))
	if err != nil {
		t.Fatalf("iostack.New: %v", err)
	}
	dev, err := NewSimDevice(host)
	if err != nil {
		t.Fatalf("NewSimDevice: %v", err)
	}
	return eng, dev
}

func TestSimClock(t *testing.T) {
	eng := sim.NewEngine()
	c := NewSimClock(eng)
	if c.Now() != 0 {
		t.Error("fresh clock not at zero")
	}
	fired := false
	cancel := c.Schedule(time.Millisecond, func() { fired = true })
	_ = cancel
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !fired || c.Now() != time.Millisecond {
		t.Errorf("fired=%v now=%v", fired, c.Now())
	}
	// Cancellation.
	fired2 := false
	cancel2 := c.Schedule(time.Millisecond, func() { fired2 = true })
	cancel2()
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if fired2 {
		t.Error("cancelled timer fired")
	}
}

func TestSimDevice(t *testing.T) {
	eng, dev := newSimDevice(t)
	if dev.Disks() != 1 {
		t.Errorf("Disks = %d", dev.Disks())
	}
	if dev.Capacity(0) <= 0 {
		t.Error("nonpositive capacity")
	}
	if dev.Host() == nil {
		t.Error("nil host accessor")
	}
	var got bool
	if err := dev.ReadAt(0, 0, 64<<10, func(data []byte, err error) {
		if err != nil {
			t.Errorf("completion err: %v", err)
		}
		if data != nil {
			t.Error("sim device should not materialize data")
		}
		got = true
	}); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("no completion")
	}
	dev.SetLiveBuffers(7)
	if dev.Host().LiveBuffers() != 7 {
		t.Error("SetLiveBuffers not forwarded")
	}
}

func TestSimDeviceBadRequests(t *testing.T) {
	_, dev := newSimDevice(t)
	cases := []struct {
		disk        int
		off, length int64
	}{
		{-1, 0, 4096},
		{1, 0, 4096},
		{0, -1, 4096},
		{0, 0, 0},
		{0, dev.Capacity(0), 4096},
	}
	for _, c := range cases {
		if err := dev.ReadAt(c.disk, c.off, c.length, nil); err == nil {
			t.Errorf("ReadAt(%d,%d,%d) accepted", c.disk, c.off, c.length)
		}
	}
	if _, err := NewSimDevice(nil); err == nil {
		t.Error("nil host accepted")
	}
}

func TestRealClock(t *testing.T) {
	c := NewRealClock()
	t0 := c.Now()
	if t0 < 0 {
		t.Error("negative now")
	}
	var mu sync.Mutex
	fired := false
	done := make(chan struct{})
	c.Schedule(time.Millisecond, func() {
		mu.Lock()
		fired = true
		mu.Unlock()
		close(done)
	})
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timer never fired")
	}
	mu.Lock()
	defer mu.Unlock()
	if !fired {
		t.Error("not fired")
	}
	// Cancellation path.
	cancel := c.Schedule(time.Hour, func() { t.Error("cancelled timer fired") })
	cancel()
}

func writeTestFile(t *testing.T, size int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "disk.img")
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i % 251)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestFileDevice(t *testing.T) {
	path := writeTestFile(t, 1<<20)
	dev, err := OpenFileDevice([]string{path}, 2)
	if err != nil {
		t.Fatalf("OpenFileDevice: %v", err)
	}
	defer dev.Close()

	if dev.Disks() != 1 || dev.Capacity(0) != 1<<20 {
		t.Errorf("disks=%d cap=%d", dev.Disks(), dev.Capacity(0))
	}

	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte((i + 8192) % 251)
	}
	done := make(chan struct{})
	var got []byte
	var gotErr error
	if err := dev.ReadAt(0, 8192, 4096, func(data []byte, err error) {
		got, gotErr = data, err
		close(done)
	}); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed")
	}
	if gotErr != nil {
		t.Fatalf("read err: %v", gotErr)
	}
	if !bytes.Equal(got, want) {
		t.Error("read data mismatch")
	}
}

func TestFileDeviceValidation(t *testing.T) {
	if _, err := OpenFileDevice(nil, 1); err == nil {
		t.Error("no paths accepted")
	}
	if _, err := OpenFileDevice([]string{"/nonexistent/nope"}, 1); err == nil {
		t.Error("missing file accepted")
	}
	path := writeTestFile(t, 4096)
	dev, err := OpenFileDevice([]string{path}, 0) // default workers
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.ReadAt(0, 4096, 1, nil); err == nil {
		t.Error("out-of-range read accepted")
	}
	if err := dev.Close(); err != nil {
		t.Errorf("Close: %v", err)
	}
	if err := dev.Close(); err != nil {
		t.Errorf("double Close: %v", err)
	}
	if err := dev.ReadAt(0, 0, 1, nil); err == nil {
		t.Error("read after close accepted")
	}
}

func TestFileDeviceConcurrentReads(t *testing.T) {
	path := writeTestFile(t, 1<<20)
	dev, err := OpenFileDevice([]string{path}, 4)
	if err != nil {
		t.Fatal(err)
	}
	defer dev.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		off := int64(i) * 16384
		if err := dev.ReadAt(0, off, 4096, func(data []byte, err error) {
			defer wg.Done()
			if err != nil {
				errs <- err
				return
			}
			if len(data) != 4096 {
				errs <- ErrBadRequest
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent read: %v", err)
	}
}
